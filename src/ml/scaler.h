// Feature standardization (zero mean, unit variance per dimension).
#pragma once

#include <iosfwd>

#include "ml/dataset.h"

namespace headtalk::ml {

class StandardScaler {
 public:
  /// Learns per-dimension mean and standard deviation. Dimensions with zero
  /// variance are passed through unscaled.
  void fit(const Dataset& data);

  [[nodiscard]] bool fitted() const noexcept { return !mean_.empty(); }

  /// Standardizes one feature vector (must match the fitted dimension).
  [[nodiscard]] FeatureVector transform(const FeatureVector& x) const;

  /// Standardizes a whole dataset (labels preserved).
  [[nodiscard]] Dataset transform(const Dataset& data) const;

  /// fit + transform in one call.
  [[nodiscard]] Dataset fit_transform(const Dataset& data);

  /// Binary persistence (see ml/serialize.h). Throws SerializationError.
  void save(std::ostream& out) const;
  static StandardScaler load(std::istream& in);

 private:
  FeatureVector mean_;
  FeatureVector inv_std_;
};

}  // namespace headtalk::ml
