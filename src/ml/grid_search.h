// Hyper-parameter selection for the SVM: k-fold cross-validated grid search
// over (C, gamma), matching the paper's "select the best complexity
// parameter for RBF through grid search ... with 10-fold cross validation"
// (§IV-A).
#pragma once

#include <cstdint>
#include <vector>

#include "ml/dataset.h"
#include "ml/svm.h"

namespace headtalk::ml {

struct GridSearchConfig {
  std::vector<double> c_values{0.5, 1.0, 4.0, 16.0};
  /// Multipliers of the default gamma (1/dim).
  std::vector<double> gamma_scales{0.25, 1.0, 4.0};
  std::size_t folds = 5;
  std::uint32_t seed = 1;
};

struct GridSearchResult {
  SvmConfig best;
  double best_cv_accuracy = 0.0;
  /// All evaluated (C, gamma, accuracy) triples, in sweep order.
  struct Trial {
    double c = 0.0;
    double gamma = 0.0;
    double cv_accuracy = 0.0;
  };
  std::vector<Trial> trials;
};

/// Sweeps the grid with stratified k-fold CV and returns the best SvmConfig.
[[nodiscard]] GridSearchResult svm_grid_search(const Dataset& data,
                                               const GridSearchConfig& config = {});

}  // namespace headtalk::ml
