#include "ml/dataset.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace headtalk::ml {

void Dataset::add(FeatureVector x, int label) {
  if (!features.empty() && x.size() != features.front().size()) {
    throw std::invalid_argument("Dataset::add: feature dimension mismatch");
  }
  features.push_back(std::move(x));
  labels.push_back(label);
}

void Dataset::append(const Dataset& other) {
  for (std::size_t i = 0; i < other.size(); ++i) add(other.features[i], other.labels[i]);
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out;
  out.features.reserve(indices.size());
  for (std::size_t i : indices) {
    out.features.push_back(features.at(i));
    out.labels.push_back(labels.at(i));
  }
  return out;
}

std::vector<std::size_t> Dataset::indices_of_label(int label) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == label) out.push_back(i);
  }
  return out;
}

std::vector<int> Dataset::distinct_labels() const {
  std::vector<int> out(labels);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::size_t Dataset::count_label(int label) const {
  return static_cast<std::size_t>(std::count(labels.begin(), labels.end(), label));
}

void Dataset::shuffle(std::mt19937& rng) {
  for (std::size_t i = size(); i > 1; --i) {
    const std::size_t j = std::uniform_int_distribution<std::size_t>(0, i - 1)(rng);
    std::swap(features[i - 1], features[j]);
    std::swap(labels[i - 1], labels[j]);
  }
}

std::pair<Dataset, Dataset> stratified_split(const Dataset& data, double test_fraction,
                                             std::mt19937& rng) {
  if (test_fraction < 0.0 || test_fraction > 1.0) {
    throw std::invalid_argument("stratified_split: fraction must be in [0, 1]");
  }
  std::vector<std::size_t> train_idx, test_idx;
  for (int label : data.distinct_labels()) {
    auto idx = data.indices_of_label(label);
    std::shuffle(idx.begin(), idx.end(), rng);
    std::size_t n_test = static_cast<std::size_t>(test_fraction * static_cast<double>(idx.size()) + 0.5);
    if (idx.size() >= 2 && test_fraction > 0.0) n_test = std::max<std::size_t>(n_test, 1);
    n_test = std::min(n_test, idx.size());
    test_idx.insert(test_idx.end(), idx.begin(), idx.begin() + static_cast<long>(n_test));
    train_idx.insert(train_idx.end(), idx.begin() + static_cast<long>(n_test), idx.end());
  }
  return {data.subset(train_idx), data.subset(test_idx)};
}

std::vector<std::pair<Dataset, Dataset>> stratified_kfold(const Dataset& data,
                                                          std::size_t k,
                                                          std::mt19937& rng) {
  if (k < 2) throw std::invalid_argument("stratified_kfold: k must be >= 2");
  // Assign each sample to a fold, round-robin within its class.
  std::vector<std::size_t> fold_of(data.size(), 0);
  for (int label : data.distinct_labels()) {
    auto idx = data.indices_of_label(label);
    std::shuffle(idx.begin(), idx.end(), rng);
    for (std::size_t i = 0; i < idx.size(); ++i) fold_of[idx[i]] = i % k;
  }
  std::vector<std::pair<Dataset, Dataset>> out;
  out.reserve(k);
  for (std::size_t f = 0; f < k; ++f) {
    std::vector<std::size_t> train_idx, test_idx;
    for (std::size_t i = 0; i < data.size(); ++i) {
      (fold_of[i] == f ? test_idx : train_idx).push_back(i);
    }
    out.emplace_back(data.subset(train_idx), data.subset(test_idx));
  }
  return out;
}

Dataset per_class_subsample(const Dataset& data, std::size_t per_class,
                            std::mt19937& rng) {
  std::vector<std::size_t> keep;
  for (int label : data.distinct_labels()) {
    auto idx = data.indices_of_label(label);
    std::shuffle(idx.begin(), idx.end(), rng);
    const std::size_t n = std::min(per_class, idx.size());
    keep.insert(keep.end(), idx.begin(), idx.begin() + static_cast<long>(n));
  }
  std::sort(keep.begin(), keep.end());
  return data.subset(keep);
}

}  // namespace headtalk::ml
