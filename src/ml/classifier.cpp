#include "ml/classifier.h"

namespace headtalk::ml {

std::vector<int> Classifier::predict_all(const Dataset& data) const {
  std::vector<int> out;
  out.reserve(data.size());
  for (const auto& row : data.features) out.push_back(predict(row));
  return out;
}

}  // namespace headtalk::ml
