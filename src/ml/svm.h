// C-SVC with an RBF kernel, trained by SMO (Platt's sequential minimal
// optimization with the usual working-set heuristics). The paper selects
// SVM over RF/DT/kNN for orientation detection (§IV-A) and tunes the RBF
// complexity parameter by grid search — see grid_search.h.
#pragma once

#include <iosfwd>
#include <vector>

#include "ml/classifier.h"

namespace headtalk::ml {

struct SvmConfig {
  double c = 4.0;        ///< soft-margin penalty
  double gamma = 0.0;    ///< RBF width; <= 0 means 1/dim ("scale"-free default)
  double tolerance = 1e-3;
  std::size_t max_passes = 8;    ///< SMO sweeps without change before stopping
  std::size_t max_iterations = 30000;
};

/// Binary SVM. Labels may be any two distinct integers; `predict` returns
/// the originals and `decision_value` is positive toward the larger label.
class Svm final : public Classifier {
 public:
  explicit Svm(SvmConfig config = {}) : config_(config) {}

  void fit(const Dataset& data) override;
  [[nodiscard]] int predict(const FeatureVector& x) const override;
  [[nodiscard]] double decision_value(const FeatureVector& x) const override;

  [[nodiscard]] std::size_t support_vector_count() const noexcept {
    return support_vectors_.size();
  }
  [[nodiscard]] const SvmConfig& config() const noexcept { return config_; }

  /// Binary persistence of the trained model. Throws SerializationError.
  void save(std::ostream& out) const;
  static Svm load(std::istream& in);

 private:
  [[nodiscard]] double kernel(const FeatureVector& a, const FeatureVector& b) const;

  SvmConfig config_;
  double gamma_ = 1.0;
  std::vector<FeatureVector> support_vectors_;
  std::vector<double> alpha_y_;  ///< alpha_i * y_i per support vector
  double bias_ = 0.0;
  int negative_label_ = 0, positive_label_ = 1;
};

}  // namespace headtalk::ml
