// Model persistence.
//
// A deployed HeadTalk device enrolls once and must survive restarts, so
// every trained model (scaler, SVM, trees/forest, kNN, MLP) serializes to a
// compact tagged binary stream. The format is little-endian, versioned per
// model kind, and validated on load (a corrupt or mismatched stream throws
// SerializationError rather than yielding a silently-broken model).
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace headtalk::ml {

class SerializationError : public std::runtime_error {
 public:
  explicit SerializationError(const std::string& what) : std::runtime_error(what) {}
};

namespace io {

/// Low-level primitives shared by every model's save/load. All throw
/// SerializationError on stream failure or malformed data.
void write_u32(std::ostream& out, std::uint32_t value);
void write_i64(std::ostream& out, std::int64_t value);
void write_f64(std::ostream& out, double value);
void write_f64_vector(std::ostream& out, const std::vector<double>& values);
void write_string(std::ostream& out, const std::string& text);

[[nodiscard]] std::uint32_t read_u32(std::istream& in);
[[nodiscard]] std::int64_t read_i64(std::istream& in);
[[nodiscard]] double read_f64(std::istream& in);
[[nodiscard]] std::vector<double> read_f64_vector(std::istream& in,
                                                  std::size_t max_size = 1u << 26);
[[nodiscard]] std::string read_string(std::istream& in, std::size_t max_size = 1u << 16);

/// Writes/checks a model header: magic tag + format version. A mismatch
/// reports both magic values in hex so a "loaded the wrong file" mistake is
/// diagnosable from the message alone.
void write_header(std::ostream& out, std::uint32_t magic, std::uint32_t version);
void expect_header(std::istream& in, std::uint32_t magic, std::uint32_t version,
                   const char* what);

}  // namespace io

/// Loads a persisted model (any type with a static `load(std::istream&)`)
/// from a file, turning every failure — missing file, wrong magic,
/// truncated payload — into a SerializationError that names the offending
/// path. Use this instead of hand-rolled ifstream + Model::load so error
/// messages always say *which* file was bad.
template <typename Model>
[[nodiscard]] Model load_model_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SerializationError("cannot open model file: " + path.string());
  }
  try {
    return Model::load(in);
  } catch (const SerializationError& error) {
    throw SerializationError(path.string() + ": " + error.what());
  }
}

}  // namespace headtalk::ml
