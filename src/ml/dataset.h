// Feature-matrix containers and split utilities for the classical-ML stack.
#pragma once

#include <cstddef>
#include <random>
#include <span>
#include <utility>
#include <vector>

namespace headtalk::ml {

using FeatureVector = std::vector<double>;

/// A labelled dataset: one feature row per sample plus an integer label.
struct Dataset {
  std::vector<FeatureVector> features;
  std::vector<int> labels;

  [[nodiscard]] std::size_t size() const noexcept { return features.size(); }
  [[nodiscard]] bool empty() const noexcept { return features.empty(); }
  [[nodiscard]] std::size_t dim() const noexcept {
    return features.empty() ? 0 : features.front().size();
  }

  /// Appends one sample. Throws if the dimension disagrees with existing rows.
  void add(FeatureVector x, int label);

  /// Appends all samples of another dataset.
  void append(const Dataset& other);

  /// Rows at the given indices, in order.
  [[nodiscard]] Dataset subset(std::span<const std::size_t> indices) const;

  /// Indices of all samples with the given label.
  [[nodiscard]] std::vector<std::size_t> indices_of_label(int label) const;

  /// Distinct labels, ascending.
  [[nodiscard]] std::vector<int> distinct_labels() const;

  /// Count of samples with the given label.
  [[nodiscard]] std::size_t count_label(int label) const;

  /// In-place Fisher-Yates shuffle of rows.
  void shuffle(std::mt19937& rng);
};

/// Stratified train/test split: each label contributes `test_fraction` of
/// its samples to the test set (at least 1 when it has >= 2 samples).
[[nodiscard]] std::pair<Dataset, Dataset> stratified_split(const Dataset& data,
                                                           double test_fraction,
                                                           std::mt19937& rng);

/// Stratified k folds; returns (train, test) pairs covering each fold once.
[[nodiscard]] std::vector<std::pair<Dataset, Dataset>> stratified_kfold(
    const Dataset& data, std::size_t k, std::mt19937& rng);

/// Per-class subsample: keeps at most `per_class` random samples per label.
[[nodiscard]] Dataset per_class_subsample(const Dataset& data, std::size_t per_class,
                                          std::mt19937& rng);

}  // namespace headtalk::ml
