// Evaluation metrics used throughout §IV: accuracy, precision/recall/F1,
// TPR, FAR (false-acceptance), FRR (false-rejection), confusion counts,
// and the equal error rate (EER) for score-based detectors.
#pragma once

#include <span>
#include <vector>

namespace headtalk::ml {

/// Binary confusion counts with the conventional derived rates. The
/// "positive" class is the class of interest (facing / live-human).
struct BinaryMetrics {
  std::size_t tp = 0, fp = 0, tn = 0, fn = 0;

  [[nodiscard]] std::size_t total() const noexcept { return tp + fp + tn + fn; }
  [[nodiscard]] double accuracy() const;
  [[nodiscard]] double precision() const;
  [[nodiscard]] double recall() const;  ///< == TPR
  [[nodiscard]] double f1() const;
  /// False-acceptance rate: negatives classified positive (FP / (FP+TN)).
  [[nodiscard]] double far() const;
  /// False-rejection rate: positives classified negative (FN / (TP+FN)).
  [[nodiscard]] double frr() const;
};

/// Tallies predictions against ground truth; `positive_label` selects which
/// label counts as positive. Sizes must match.
[[nodiscard]] BinaryMetrics binary_metrics(std::span<const int> y_true,
                                           std::span<const int> y_pred,
                                           int positive_label = 1);

/// Multi-class accuracy (fraction of exact matches).
[[nodiscard]] double accuracy(std::span<const int> y_true, std::span<const int> y_pred);

/// Equal error rate of a score-based detector: scores are higher for the
/// positive class; returns the rate where FAR == FRR (linear interpolation
/// across the threshold sweep) in [0, 1].
[[nodiscard]] double equal_error_rate(std::span<const double> scores,
                                      std::span<const int> labels,
                                      int positive_label = 1);

/// Mean and sample standard deviation of a set of scores (e.g. per-session
/// F1 values reported as "95.92 +/- 1.2").
struct MeanStd {
  double mean = 0.0;
  double std_dev = 0.0;
};
[[nodiscard]] MeanStd mean_std(std::span<const double> values);

}  // namespace headtalk::ml
