#include "ml/sampling.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace headtalk::ml {
namespace {

double squared_distance(const FeatureVector& a, const FeatureVector& b) {
  double d2 = 0.0;
  for (std::size_t j = 0; j < a.size(); ++j) {
    const double d = a[j] - b[j];
    d2 += d * d;
  }
  return d2;
}

// Indices (into `pool`) of the k nearest pool rows to `x`, excluding an
// optional self index.
std::vector<std::size_t> k_nearest(const FeatureVector& x,
                                   const std::vector<const FeatureVector*>& pool,
                                   std::size_t k, std::size_t self_index) {
  std::vector<std::size_t> order;
  order.reserve(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (i != self_index) order.push_back(i);
  }
  k = std::min(k, order.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<long>(k), order.end(),
                    [&](std::size_t a, std::size_t b) {
                      return squared_distance(*pool[a], x) < squared_distance(*pool[b], x);
                    });
  order.resize(k);
  return order;
}

FeatureVector interpolate(const FeatureVector& a, const FeatureVector& b, double t) {
  FeatureVector out(a.size());
  for (std::size_t j = 0; j < a.size(); ++j) out[j] = a[j] + t * (b[j] - a[j]);
  return out;
}

std::size_t resolve_target(const Dataset& data, int minority_label,
                           std::size_t target_count) {
  if (target_count != 0) return target_count;
  std::size_t majority = 0;
  for (int label : data.distinct_labels()) {
    if (label != minority_label) majority = std::max(majority, data.count_label(label));
  }
  return majority;
}

}  // namespace

Dataset smote(const Dataset& data, int minority_label, std::size_t target_count,
              const SamplingConfig& config) {
  const auto minority_idx = data.indices_of_label(minority_label);
  if (minority_idx.size() < 2) {
    throw std::invalid_argument("smote: need at least two minority samples");
  }
  const std::size_t target = resolve_target(data, minority_label, target_count);
  Dataset out = data;
  if (minority_idx.size() >= target) return out;

  std::vector<const FeatureVector*> pool;
  pool.reserve(minority_idx.size());
  for (std::size_t i : minority_idx) pool.push_back(&data.features[i]);

  std::mt19937 rng(config.seed);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  std::uniform_int_distribution<std::size_t> pick(0, pool.size() - 1);
  std::size_t to_make = target - minority_idx.size();
  while (to_make-- > 0) {
    const std::size_t base = pick(rng);
    const auto nn = k_nearest(*pool[base], pool, config.k_neighbours, base);
    const std::size_t mate = nn[std::uniform_int_distribution<std::size_t>(0, nn.size() - 1)(rng)];
    out.add(interpolate(*pool[base], *pool[mate], u01(rng)), minority_label);
  }
  return out;
}

Dataset adasyn(const Dataset& data, int minority_label, std::size_t target_count,
               const SamplingConfig& config) {
  const auto minority_idx = data.indices_of_label(minority_label);
  if (minority_idx.size() < 2) {
    throw std::invalid_argument("adasyn: need at least two minority samples");
  }
  const std::size_t target = resolve_target(data, minority_label, target_count);
  Dataset out = data;
  if (minority_idx.size() >= target) return out;
  const std::size_t to_make = target - minority_idx.size();

  // Difficulty ratio r_i: fraction of majority samples among the k nearest
  // neighbours of each minority sample in the FULL dataset.
  std::vector<const FeatureVector*> all;
  all.reserve(data.size());
  for (const auto& row : data.features) all.push_back(&row);

  std::vector<double> ratio(minority_idx.size(), 0.0);
  double ratio_sum = 0.0;
  for (std::size_t m = 0; m < minority_idx.size(); ++m) {
    const std::size_t i = minority_idx[m];
    const auto nn = k_nearest(data.features[i], all, config.k_neighbours, i);
    std::size_t majority_nn = 0;
    for (std::size_t j : nn) {
      if (data.labels[j] != minority_label) ++majority_nn;
    }
    ratio[m] = nn.empty() ? 0.0 : static_cast<double>(majority_nn) / static_cast<double>(nn.size());
    ratio_sum += ratio[m];
  }

  std::vector<const FeatureVector*> pool;
  pool.reserve(minority_idx.size());
  for (std::size_t i : minority_idx) pool.push_back(&data.features[i]);

  std::mt19937 rng(config.seed);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  for (std::size_t m = 0; m < minority_idx.size(); ++m) {
    // Allocation proportional to difficulty (uniform when all ratios are 0,
    // i.e. the minority class is not crowded by the majority anywhere).
    const double weight =
        ratio_sum > 0.0 ? ratio[m] / ratio_sum : 1.0 / static_cast<double>(minority_idx.size());
    const auto g = static_cast<std::size_t>(std::lround(weight * static_cast<double>(to_make)));
    if (g == 0) continue;
    const auto nn = k_nearest(*pool[m], pool, config.k_neighbours, m);
    if (nn.empty()) continue;
    for (std::size_t s = 0; s < g; ++s) {
      const std::size_t mate =
          nn[std::uniform_int_distribution<std::size_t>(0, nn.size() - 1)(rng)];
      out.add(interpolate(*pool[m], *pool[mate], u01(rng)), minority_label);
    }
  }
  return out;
}

}  // namespace headtalk::ml
