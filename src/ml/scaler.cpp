#include "ml/scaler.h"

#include <cmath>
#include <stdexcept>

#include "ml/serialize.h"

namespace headtalk::ml {
namespace {
constexpr std::uint32_t kScalerMagic = 0x48545343;  // "HTSC"
constexpr std::uint32_t kScalerVersion = 1;
}  // namespace

void StandardScaler::fit(const Dataset& data) {
  if (data.empty()) throw std::invalid_argument("StandardScaler::fit: empty dataset");
  const std::size_t d = data.dim();
  mean_.assign(d, 0.0);
  inv_std_.assign(d, 1.0);
  for (const auto& row : data.features) {
    for (std::size_t j = 0; j < d; ++j) mean_[j] += row[j];
  }
  const double n = static_cast<double>(data.size());
  for (auto& m : mean_) m /= n;
  FeatureVector var(d, 0.0);
  for (const auto& row : data.features) {
    for (std::size_t j = 0; j < d; ++j) {
      const double delta = row[j] - mean_[j];
      var[j] += delta * delta;
    }
  }
  for (std::size_t j = 0; j < d; ++j) {
    const double sd = std::sqrt(var[j] / n);
    inv_std_[j] = sd > 1e-12 ? 1.0 / sd : 1.0;
  }
}

FeatureVector StandardScaler::transform(const FeatureVector& x) const {
  if (x.size() != mean_.size()) {
    throw std::invalid_argument("StandardScaler::transform: dimension mismatch");
  }
  FeatureVector out(x.size());
  for (std::size_t j = 0; j < x.size(); ++j) out[j] = (x[j] - mean_[j]) * inv_std_[j];
  return out;
}

Dataset StandardScaler::transform(const Dataset& data) const {
  Dataset out;
  out.labels = data.labels;
  out.features.reserve(data.size());
  for (const auto& row : data.features) out.features.push_back(transform(row));
  return out;
}

Dataset StandardScaler::fit_transform(const Dataset& data) {
  fit(data);
  return transform(data);
}

void StandardScaler::save(std::ostream& out) const {
  io::write_header(out, kScalerMagic, kScalerVersion);
  io::write_f64_vector(out, mean_);
  io::write_f64_vector(out, inv_std_);
}

StandardScaler StandardScaler::load(std::istream& in) {
  io::expect_header(in, kScalerMagic, kScalerVersion, "StandardScaler");
  StandardScaler scaler;
  scaler.mean_ = io::read_f64_vector(in);
  scaler.inv_std_ = io::read_f64_vector(in);
  if (scaler.mean_.size() != scaler.inv_std_.size()) {
    throw SerializationError("StandardScaler: inconsistent dimensions");
  }
  return scaler;
}

}  // namespace headtalk::ml
