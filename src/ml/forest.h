// Random forest: bagged CART trees with per-split feature subsampling
// (the paper's RF uses bagging with 200 trees, §IV-A).
#pragma once

#include <cstdint>

#include "ml/tree.h"

namespace headtalk::ml {

struct ForestConfig {
  std::size_t tree_count = 200;
  std::size_t max_depth = 12;
  std::size_t min_samples_leaf = 1;
  /// Features per split; 0 = floor(sqrt(d)).
  std::size_t max_features = 0;
  std::uint32_t seed = 1;
};

class RandomForest final : public Classifier {
 public:
  explicit RandomForest(ForestConfig config = {}) : config_(config) {}

  void fit(const Dataset& data) override;
  [[nodiscard]] int predict(const FeatureVector& x) const override;
  /// Mean positive-leaf fraction over the ensemble.
  [[nodiscard]] double decision_value(const FeatureVector& x) const override;

  [[nodiscard]] std::size_t tree_count() const noexcept { return trees_.size(); }

  /// Binary persistence of the fitted ensemble.
  void save(std::ostream& out) const;
  static RandomForest load(std::istream& in);

 private:
  ForestConfig config_;
  std::vector<DecisionTree> trees_;
  int positive_label_ = 1, negative_label_ = 0;
};

}  // namespace headtalk::ml
