// Common classifier interface (binary and multi-class share it; every model
// in this library is used in binary mode by HeadTalk, but the trees/kNN are
// label-agnostic).
#pragma once

#include <memory>
#include <vector>

#include "ml/dataset.h"

namespace headtalk::ml {

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on the dataset (replacing any previous fit).
  virtual void fit(const Dataset& data) = 0;

  /// Predicts the label of one sample.
  [[nodiscard]] virtual int predict(const FeatureVector& x) const = 0;

  /// A continuous confidence for the positive class (higher = more
  /// positive). Models without a natural score return the predicted label.
  [[nodiscard]] virtual double decision_value(const FeatureVector& x) const {
    return static_cast<double>(predict(x));
  }

  /// Predicts every row of a dataset.
  [[nodiscard]] std::vector<int> predict_all(const Dataset& data) const;
};

}  // namespace headtalk::ml
