#include "ml/mlp.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>
#include <stdexcept>

#include "ml/serialize.h"

namespace headtalk::ml {
namespace {

constexpr std::uint32_t kMlpMagic = 0x48544d50;  // "HTMP"
constexpr std::uint32_t kMlpVersion = 1;

double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

void Mlp::initialize(std::size_t input_dim) {
  layers_.clear();
  std::mt19937 rng(config_.seed);
  std::size_t in = input_dim;
  auto make_layer = [&rng](std::size_t fan_in, std::size_t fan_out) {
    Layer l;
    l.in = fan_in;
    l.out = fan_out;
    // He initialization for the ReLU stack.
    const double scale = std::sqrt(2.0 / static_cast<double>(fan_in));
    std::normal_distribution<double> g(0.0, scale);
    l.w.resize(fan_in * fan_out);
    for (auto& v : l.w) v = g(rng);
    l.b.assign(fan_out, 0.0);
    l.vw.assign(fan_in * fan_out, 0.0);
    l.vb.assign(fan_out, 0.0);
    return l;
  };
  for (std::size_t h : config_.hidden_layers) {
    layers_.push_back(make_layer(in, h));
    in = h;
  }
  layers_.push_back(make_layer(in, 1));  // sigmoid logit
}

double Mlp::forward(const FeatureVector& x,
                    std::vector<std::vector<double>>* activations) const {
  std::vector<double> a(x.begin(), x.end());
  if (activations != nullptr) {
    activations->clear();
    activations->push_back(a);
  }
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const Layer& l = layers_[li];
    std::vector<double> z(l.out, 0.0);
    for (std::size_t o = 0; o < l.out; ++o) {
      const double* row = &l.w[o * l.in];
      double acc = l.b[o];
      for (std::size_t i = 0; i < l.in; ++i) acc += row[i] * a[i];
      z[o] = acc;
    }
    const bool last = li + 1 == layers_.size();
    if (!last) {
      for (auto& v : z) v = std::max(0.0, v);  // ReLU
    }
    a = std::move(z);
    if (activations != nullptr) activations->push_back(a);
  }
  return sigmoid(a[0]);
}

void Mlp::train_epochs(const Dataset& data, std::size_t epochs,
                       std::uint32_t shuffle_seed) {
  std::mt19937 rng(shuffle_seed);
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);

  const double lr = config_.learning_rate;
  const double mu = config_.momentum;
  const std::size_t batch = std::max<std::size_t>(1, config_.batch_size);

  // Gradient accumulators matching layer shapes.
  std::vector<std::vector<double>> gw(layers_.size()), gb(layers_.size());
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    gw[li].assign(layers_[li].w.size(), 0.0);
    gb[li].assign(layers_[li].b.size(), 0.0);
  }

  std::vector<std::vector<double>> acts;
  for (std::size_t e = 0; e < epochs; ++e) {
    std::shuffle(order.begin(), order.end(), rng);
    for (std::size_t start = 0; start < order.size(); start += batch) {
      const std::size_t end = std::min(order.size(), start + batch);
      for (auto& g : gw) std::fill(g.begin(), g.end(), 0.0);
      for (auto& g : gb) std::fill(g.begin(), g.end(), 0.0);

      for (std::size_t s = start; s < end; ++s) {
        const std::size_t idx = order[s];
        const double target = data.labels[idx] == positive_label_ ? 1.0 : 0.0;
        const double p = forward(data.features[idx], &acts);

        // BCE with sigmoid output: dL/dz_out = p - target.
        std::vector<double> delta{p - target};
        for (std::size_t li = layers_.size(); li-- > 0;) {
          const Layer& l = layers_[li];
          const auto& a_in = acts[li];
          for (std::size_t o = 0; o < l.out; ++o) {
            gb[li][o] += delta[o];
            double* grow = &gw[li][o * l.in];
            for (std::size_t i = 0; i < l.in; ++i) grow[i] += delta[o] * a_in[i];
          }
          if (li == 0) break;
          // Back-propagate through the ReLU of the previous layer.
          std::vector<double> prev(l.in, 0.0);
          for (std::size_t i = 0; i < l.in; ++i) {
            if (acts[li][i] <= 0.0) continue;  // ReLU gate
            double acc = 0.0;
            for (std::size_t o = 0; o < l.out; ++o) acc += l.w[o * l.in + i] * delta[o];
            prev[i] = acc;
          }
          delta = std::move(prev);
        }
      }

      const double inv_n = 1.0 / static_cast<double>(end - start);
      for (std::size_t li = 0; li < layers_.size(); ++li) {
        Layer& l = layers_[li];
        for (std::size_t k = 0; k < l.w.size(); ++k) {
          const double grad = gw[li][k] * inv_n + config_.l2 * l.w[k];
          l.vw[k] = mu * l.vw[k] - lr * grad;
          l.w[k] += l.vw[k];
        }
        for (std::size_t k = 0; k < l.b.size(); ++k) {
          l.vb[k] = mu * l.vb[k] - lr * gb[li][k] * inv_n;
          l.b[k] += l.vb[k];
        }
      }
    }
  }
}

void Mlp::fit(const Dataset& data) {
  if (data.empty()) throw std::invalid_argument("Mlp::fit: empty dataset");
  const auto classes = data.distinct_labels();
  if (classes.size() != 2) throw std::invalid_argument("Mlp::fit: exactly two classes required");
  negative_label_ = classes[0];
  positive_label_ = classes[1];
  initialize(data.dim());
  train_epochs(data, config_.epochs, config_.seed + 17);
  fitted_ = true;
}

void Mlp::fine_tune(const Dataset& data, std::size_t epochs) {
  if (!fitted_) throw std::logic_error("Mlp::fine_tune: fit() first");
  if (data.empty()) return;
  train_epochs(data, epochs, config_.seed + 7919);
}

double Mlp::decision_value(const FeatureVector& x) const {
  if (!fitted_) throw std::logic_error("Mlp: not fitted");
  return forward(x, nullptr);
}

int Mlp::predict(const FeatureVector& x) const {
  return decision_value(x) >= 0.5 ? positive_label_ : negative_label_;
}

void Mlp::save(std::ostream& out) const {
  if (!fitted_) throw SerializationError("Mlp::save: network not fitted");
  io::write_header(out, kMlpMagic, kMlpVersion);
  io::write_i64(out, negative_label_);
  io::write_i64(out, positive_label_);
  io::write_u32(out, static_cast<std::uint32_t>(layers_.size()));
  for (const auto& layer : layers_) {
    io::write_u32(out, static_cast<std::uint32_t>(layer.in));
    io::write_u32(out, static_cast<std::uint32_t>(layer.out));
    io::write_f64_vector(out, layer.w);
    io::write_f64_vector(out, layer.b);
  }
}

Mlp Mlp::load(std::istream& in) {
  io::expect_header(in, kMlpMagic, kMlpVersion, "Mlp");
  Mlp mlp;
  mlp.negative_label_ = static_cast<int>(io::read_i64(in));
  mlp.positive_label_ = static_cast<int>(io::read_i64(in));
  const auto layer_count = io::read_u32(in);
  if (layer_count == 0 || layer_count > 64) {
    throw SerializationError("Mlp: implausible layer count");
  }
  mlp.layers_.resize(layer_count);
  mlp.config_.hidden_layers.clear();
  for (auto& layer : mlp.layers_) {
    layer.in = io::read_u32(in);
    layer.out = io::read_u32(in);
    layer.w = io::read_f64_vector(in);
    layer.b = io::read_f64_vector(in);
    if (layer.w.size() != layer.in * layer.out || layer.b.size() != layer.out) {
      throw SerializationError("Mlp: layer shape mismatch");
    }
    layer.vw.assign(layer.w.size(), 0.0);
    layer.vb.assign(layer.b.size(), 0.0);
  }
  for (std::size_t li = 0; li + 1 < mlp.layers_.size(); ++li) {
    mlp.config_.hidden_layers.push_back(mlp.layers_[li].out);
  }
  if (mlp.layers_.back().out != 1) {
    throw SerializationError("Mlp: output layer must have one unit");
  }
  mlp.fitted_ = true;
  return mlp;
}

}  // namespace headtalk::ml
