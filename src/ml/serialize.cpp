#include "ml/serialize.h"

#include <bit>
#include <cstdio>
#include <istream>
#include <ostream>

namespace headtalk::ml::io {
namespace {

static_assert(std::endian::native == std::endian::little,
              "serialization assumes a little-endian host");

template <typename T>
void write_pod(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
  if (!out) throw SerializationError("serialize: write failure");
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw SerializationError("serialize: truncated stream");
  return value;
}

}  // namespace

void write_u32(std::ostream& out, std::uint32_t value) { write_pod(out, value); }
void write_i64(std::ostream& out, std::int64_t value) { write_pod(out, value); }
void write_f64(std::ostream& out, double value) { write_pod(out, value); }

void write_f64_vector(std::ostream& out, const std::vector<double>& values) {
  write_u32(out, static_cast<std::uint32_t>(values.size()));
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(double)));
  if (!out) throw SerializationError("serialize: write failure");
}

void write_string(std::ostream& out, const std::string& text) {
  write_u32(out, static_cast<std::uint32_t>(text.size()));
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!out) throw SerializationError("serialize: write failure");
}

std::uint32_t read_u32(std::istream& in) { return read_pod<std::uint32_t>(in); }
std::int64_t read_i64(std::istream& in) { return read_pod<std::int64_t>(in); }
double read_f64(std::istream& in) { return read_pod<double>(in); }

std::vector<double> read_f64_vector(std::istream& in, std::size_t max_size) {
  const auto count = read_u32(in);
  if (count > max_size) throw SerializationError("serialize: vector too large");
  std::vector<double> values(count);
  in.read(reinterpret_cast<char*>(values.data()),
          static_cast<std::streamsize>(count * sizeof(double)));
  if (!in) throw SerializationError("serialize: truncated stream");
  return values;
}

std::string read_string(std::istream& in, std::size_t max_size) {
  const auto count = read_u32(in);
  if (count > max_size) throw SerializationError("serialize: string too large");
  std::string text(count, '\0');
  in.read(text.data(), static_cast<std::streamsize>(count));
  if (!in) throw SerializationError("serialize: truncated stream");
  return text;
}

void write_header(std::ostream& out, std::uint32_t magic, std::uint32_t version) {
  write_u32(out, magic);
  write_u32(out, version);
}

namespace {

std::string hex_u32(std::uint32_t value) {
  char text[11];
  std::snprintf(text, sizeof text, "0x%08x", value);
  return text;
}

}  // namespace

void expect_header(std::istream& in, std::uint32_t magic, std::uint32_t version,
                   const char* what) {
  const auto got_magic = read_u32(in);
  if (got_magic != magic) {
    throw SerializationError(std::string(what) + ": wrong magic tag (got " +
                             hex_u32(got_magic) + ", expected " + hex_u32(magic) + ")");
  }
  const auto got_version = read_u32(in);
  if (got_version != version) {
    throw SerializationError(std::string(what) + ": unsupported format version (got " +
                             std::to_string(got_version) + ", expected " +
                             std::to_string(version) + ")");
  }
}

}  // namespace headtalk::ml::io
