// k-nearest-neighbours classifier (Euclidean metric; the paper uses k = 3).
#pragma once

#include "ml/classifier.h"

namespace headtalk::ml {

struct KnnConfig {
  std::size_t k = 3;
};

class Knn final : public Classifier {
 public:
  explicit Knn(KnnConfig config = {}) : config_(config) {}

  void fit(const Dataset& data) override;
  [[nodiscard]] int predict(const FeatureVector& x) const override;
  /// Fraction of the k neighbours carrying the positive (largest) label.
  [[nodiscard]] double decision_value(const FeatureVector& x) const override;

  /// Binary persistence (stores the reference set).
  void save(std::ostream& out) const;
  static Knn load(std::istream& in);

 private:
  [[nodiscard]] std::vector<std::size_t> neighbours(const FeatureVector& x) const;

  KnnConfig config_;
  Dataset train_;
  int positive_label_ = 1;
};

}  // namespace headtalk::ml
