#include "ml/tree.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "ml/serialize.h"

namespace headtalk::ml {
namespace {

constexpr std::uint32_t kTreeMagic = 0x48544454;  // "HTDT"
constexpr std::uint32_t kTreeVersion = 1;

int majority_label(const Dataset& data, const std::vector<std::size_t>& indices) {
  std::map<int, std::size_t> counts;
  for (std::size_t i : indices) ++counts[data.labels[i]];
  int best = 0;
  std::size_t best_count = 0;
  for (const auto& [label, count] : counts) {
    if (count > best_count) {
      best = label;
      best_count = count;
    }
  }
  return best;
}

double gini(const std::map<int, std::size_t>& counts, std::size_t total) {
  if (total == 0) return 0.0;
  double g = 1.0;
  for (const auto& [label, count] : counts) {
    const double p = static_cast<double>(count) / static_cast<double>(total);
    g -= p * p;
  }
  return g;
}

}  // namespace

void DecisionTree::fit(const Dataset& data) {
  if (data.empty()) throw std::invalid_argument("DecisionTree::fit: empty dataset");
  nodes_.clear();
  depth_ = 0;
  const auto classes = data.distinct_labels();
  positive_label_ = classes.back();
  std::vector<std::size_t> indices(data.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  std::mt19937 rng(config_.seed);
  build(data, indices, 0, rng);
}

std::size_t DecisionTree::build(const Dataset& data, std::vector<std::size_t>& indices,
                                std::size_t depth, std::mt19937& rng) {
  depth_ = std::max(depth_, depth);
  const std::size_t node_index = nodes_.size();
  nodes_.emplace_back();

  std::map<int, std::size_t> counts;
  for (std::size_t i : indices) ++counts[data.labels[i]];
  {
    Node& node = nodes_[node_index];
    node.label = majority_label(data, indices);
    std::size_t pos = 0;
    for (std::size_t i : indices) {
      if (data.labels[i] == positive_label_) ++pos;
    }
    node.positive_fraction =
        indices.empty() ? 0.0 : static_cast<double>(pos) / static_cast<double>(indices.size());
  }

  const bool pure = counts.size() <= 1;
  if (pure || depth >= config_.max_depth || indices.size() < config_.min_samples_split) {
    return node_index;
  }

  // Candidate feature subset (random forests sample sqrt(d) per split).
  const std::size_t d = data.dim();
  std::vector<std::size_t> feats(d);
  for (std::size_t j = 0; j < d; ++j) feats[j] = j;
  std::size_t n_feats = config_.max_features == 0 ? d : std::min(config_.max_features, d);
  if (n_feats < d) {
    std::shuffle(feats.begin(), feats.end(), rng);
    feats.resize(n_feats);
  }

  const double parent_gini = gini(counts, indices.size());
  double best_gain = 1e-9;
  std::size_t best_feature = 0;
  double best_threshold = 0.0;

  std::vector<std::pair<double, int>> column(indices.size());
  for (std::size_t f : feats) {
    for (std::size_t r = 0; r < indices.size(); ++r) {
      column[r] = {data.features[indices[r]][f], data.labels[indices[r]]};
    }
    std::sort(column.begin(), column.end());

    std::map<int, std::size_t> left_counts;
    std::map<int, std::size_t> right_counts = counts;
    for (std::size_t r = 0; r + 1 < column.size(); ++r) {
      ++left_counts[column[r].second];
      if (--right_counts[column[r].second] == 0) right_counts.erase(column[r].second);
      if (column[r].first == column[r + 1].first) continue;  // no boundary here
      const std::size_t nl = r + 1, nr = column.size() - nl;
      if (nl < config_.min_samples_leaf || nr < config_.min_samples_leaf) continue;
      const double w = static_cast<double>(nl) / static_cast<double>(column.size());
      const double split_gini =
          w * gini(left_counts, nl) + (1.0 - w) * gini(right_counts, nr);
      const double gain = parent_gini - split_gini;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = 0.5 * (column[r].first + column[r + 1].first);
      }
    }
  }

  if (best_gain <= 1e-9) return node_index;

  std::vector<std::size_t> left_idx, right_idx;
  for (std::size_t i : indices) {
    (data.features[i][best_feature] <= best_threshold ? left_idx : right_idx).push_back(i);
  }
  if (left_idx.empty() || right_idx.empty()) return node_index;

  indices.clear();
  indices.shrink_to_fit();
  const std::size_t left = build(data, left_idx, depth + 1, rng);
  const std::size_t right = build(data, right_idx, depth + 1, rng);
  Node& node = nodes_[node_index];
  node.leaf = false;
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return node_index;
}

const DecisionTree::Node& DecisionTree::walk(const FeatureVector& x) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree: not fitted");
  std::size_t at = 0;
  while (!nodes_[at].leaf) {
    at = x.at(nodes_[at].feature) <= nodes_[at].threshold ? nodes_[at].left
                                                          : nodes_[at].right;
  }
  return nodes_[at];
}

int DecisionTree::predict(const FeatureVector& x) const { return walk(x).label; }

double DecisionTree::decision_value(const FeatureVector& x) const {
  return walk(x).positive_fraction;
}

void DecisionTree::save(std::ostream& out) const {
  if (nodes_.empty()) throw SerializationError("DecisionTree::save: not fitted");
  io::write_header(out, kTreeMagic, kTreeVersion);
  io::write_i64(out, positive_label_);
  io::write_u32(out, static_cast<std::uint32_t>(depth_));
  io::write_u32(out, static_cast<std::uint32_t>(nodes_.size()));
  for (const auto& node : nodes_) {
    io::write_u32(out, node.leaf ? 1u : 0u);
    io::write_i64(out, node.label);
    io::write_f64(out, node.positive_fraction);
    io::write_u32(out, static_cast<std::uint32_t>(node.feature));
    io::write_f64(out, node.threshold);
    io::write_u32(out, static_cast<std::uint32_t>(node.left));
    io::write_u32(out, static_cast<std::uint32_t>(node.right));
  }
}

DecisionTree DecisionTree::load(std::istream& in) {
  io::expect_header(in, kTreeMagic, kTreeVersion, "DecisionTree");
  DecisionTree tree;
  tree.positive_label_ = static_cast<int>(io::read_i64(in));
  tree.depth_ = io::read_u32(in);
  const auto count = io::read_u32(in);
  if (count == 0 || count > (1u << 24)) {
    throw SerializationError("DecisionTree: implausible node count");
  }
  tree.nodes_.resize(count);
  for (auto& node : tree.nodes_) {
    node.leaf = io::read_u32(in) != 0;
    node.label = static_cast<int>(io::read_i64(in));
    node.positive_fraction = io::read_f64(in);
    node.feature = io::read_u32(in);
    node.threshold = io::read_f64(in);
    node.left = io::read_u32(in);
    node.right = io::read_u32(in);
    if (!node.leaf && (node.left >= count || node.right >= count)) {
      throw SerializationError("DecisionTree: child index out of range");
    }
  }
  return tree;
}

}  // namespace headtalk::ml
