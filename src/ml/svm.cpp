#include "ml/svm.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

#include "ml/serialize.h"

namespace headtalk::ml {
namespace {
constexpr std::uint32_t kSvmMagic = 0x4854534d;  // "HTSM"
constexpr std::uint32_t kSvmVersion = 1;
}  // namespace

double Svm::kernel(const FeatureVector& a, const FeatureVector& b) const {
  double d2 = 0.0;
  for (std::size_t j = 0; j < a.size(); ++j) {
    const double d = a[j] - b[j];
    d2 += d * d;
  }
  return std::exp(-gamma_ * d2);
}

void Svm::fit(const Dataset& data) {
  const auto classes = data.distinct_labels();
  if (classes.size() != 2) {
    throw std::invalid_argument("Svm::fit: exactly two classes required");
  }
  negative_label_ = classes[0];
  positive_label_ = classes[1];
  gamma_ = config_.gamma > 0.0 ? config_.gamma : 1.0 / static_cast<double>(data.dim());

  const std::size_t n = data.size();
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = data.labels[i] == positive_label_ ? 1.0 : -1.0;
  }

  // Cache the full kernel matrix; our training sets are at most a few
  // thousand samples, so this is the fastest simple option.
  std::vector<std::vector<double>> k(n, std::vector<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      k[i][j] = k[j][i] = kernel(data.features[i], data.features[j]);
    }
  }

  std::vector<double> alpha(n, 0.0);
  double b = 0.0;
  const double c = config_.c;
  const double tol = config_.tolerance;

  auto decision = [&](std::size_t i) {
    double f = b;
    for (std::size_t j = 0; j < n; ++j) {
      if (alpha[j] > 0.0) f += alpha[j] * y[j] * k[i][j];
    }
    return f;
  };

  std::mt19937 rng(12345);
  std::size_t passes = 0;
  std::size_t iterations = 0;
  while (passes < config_.max_passes && iterations < config_.max_iterations) {
    std::size_t changed = 0;
    for (std::size_t i = 0; i < n && iterations < config_.max_iterations; ++i) {
      ++iterations;
      const double e_i = decision(i) - y[i];
      const bool violates = (y[i] * e_i < -tol && alpha[i] < c) ||
                            (y[i] * e_i > tol && alpha[i] > 0.0);
      if (!violates) continue;

      std::size_t j = std::uniform_int_distribution<std::size_t>(0, n - 2)(rng);
      if (j >= i) ++j;
      const double e_j = decision(j) - y[j];

      const double ai_old = alpha[i], aj_old = alpha[j];
      double lo, hi;
      if (y[i] != y[j]) {
        lo = std::max(0.0, aj_old - ai_old);
        hi = std::min(c, c + aj_old - ai_old);
      } else {
        lo = std::max(0.0, ai_old + aj_old - c);
        hi = std::min(c, ai_old + aj_old);
      }
      if (lo >= hi) continue;
      const double eta = 2.0 * k[i][j] - k[i][i] - k[j][j];
      if (eta >= 0.0) continue;

      double aj = aj_old - y[j] * (e_i - e_j) / eta;
      aj = std::clamp(aj, lo, hi);
      if (std::abs(aj - aj_old) < 1e-6) continue;
      const double ai = ai_old + y[i] * y[j] * (aj_old - aj);
      alpha[i] = ai;
      alpha[j] = aj;

      const double b1 = b - e_i - y[i] * (ai - ai_old) * k[i][i] -
                        y[j] * (aj - aj_old) * k[i][j];
      const double b2 = b - e_j - y[i] * (ai - ai_old) * k[i][j] -
                        y[j] * (aj - aj_old) * k[j][j];
      if (ai > 0.0 && ai < c) b = b1;
      else if (aj > 0.0 && aj < c) b = b2;
      else b = 0.5 * (b1 + b2);
      ++changed;
    }
    passes = changed == 0 ? passes + 1 : 0;
  }

  support_vectors_.clear();
  alpha_y_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (alpha[i] > 1e-9) {
      support_vectors_.push_back(data.features[i]);
      alpha_y_.push_back(alpha[i] * y[i]);
    }
  }
  bias_ = b;
}

double Svm::decision_value(const FeatureVector& x) const {
  double f = bias_;
  for (std::size_t s = 0; s < support_vectors_.size(); ++s) {
    f += alpha_y_[s] * kernel(support_vectors_[s], x);
  }
  return f;
}

int Svm::predict(const FeatureVector& x) const {
  return decision_value(x) >= 0.0 ? positive_label_ : negative_label_;
}

void Svm::save(std::ostream& out) const {
  io::write_header(out, kSvmMagic, kSvmVersion);
  io::write_f64(out, config_.c);
  io::write_f64(out, gamma_);
  io::write_f64(out, bias_);
  io::write_i64(out, negative_label_);
  io::write_i64(out, positive_label_);
  io::write_f64_vector(out, alpha_y_);
  io::write_u32(out, static_cast<std::uint32_t>(support_vectors_.size()));
  for (const auto& sv : support_vectors_) io::write_f64_vector(out, sv);
}

Svm Svm::load(std::istream& in) {
  io::expect_header(in, kSvmMagic, kSvmVersion, "Svm");
  Svm svm;
  svm.config_.c = io::read_f64(in);
  svm.gamma_ = io::read_f64(in);
  svm.config_.gamma = svm.gamma_;
  svm.bias_ = io::read_f64(in);
  svm.negative_label_ = static_cast<int>(io::read_i64(in));
  svm.positive_label_ = static_cast<int>(io::read_i64(in));
  svm.alpha_y_ = io::read_f64_vector(in);
  const auto sv_count = io::read_u32(in);
  if (sv_count != svm.alpha_y_.size()) {
    throw SerializationError("Svm: support-vector count mismatch");
  }
  svm.support_vectors_.reserve(sv_count);
  for (std::uint32_t i = 0; i < sv_count; ++i) {
    svm.support_vectors_.push_back(io::read_f64_vector(in));
    if (svm.support_vectors_.back().size() != svm.support_vectors_.front().size()) {
      throw SerializationError("Svm: inconsistent support-vector dimension");
    }
  }
  return svm;
}

}  // namespace headtalk::ml
