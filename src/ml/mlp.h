// Feed-forward neural network (ReLU hidden layers, sigmoid output, BCE
// loss, minibatch SGD with momentum).
//
// Stands in for the paper's wav2vec2-based liveness network (§III-A): the
// substitution note in DESIGN.md explains why a compact network over
// log-spectral features preserves the experiment's behaviour. Supports the
// paper's incremental-learning protocol (retraining on a small slice of
// new-domain data, §IV-A1 / §IV-B9) via fine_tune().
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "ml/classifier.h"

namespace headtalk::ml {

struct MlpConfig {
  std::vector<std::size_t> hidden_layers{64, 32};
  double learning_rate = 0.02;
  double momentum = 0.9;
  double l2 = 1e-4;
  std::size_t epochs = 20;
  std::size_t batch_size = 16;
  std::uint32_t seed = 1;
};

class Mlp final : public Classifier {
 public:
  explicit Mlp(MlpConfig config = {}) : config_(config) {}

  /// Trains from a fresh random initialization for config.epochs.
  void fit(const Dataset& data) override;

  /// Continues training the current weights on (typically new-domain) data.
  /// Throws std::logic_error when the network has not been fitted.
  void fine_tune(const Dataset& data, std::size_t epochs);

  [[nodiscard]] int predict(const FeatureVector& x) const override;
  /// P(positive class) in [0, 1].
  [[nodiscard]] double decision_value(const FeatureVector& x) const override;

  [[nodiscard]] const MlpConfig& config() const noexcept { return config_; }

  /// Binary persistence of the trained network (weights + labels).
  void save(std::ostream& out) const;
  static Mlp load(std::istream& in);

 private:
  struct Layer {
    std::size_t in = 0, out = 0;
    std::vector<double> w;   ///< out x in, row-major
    std::vector<double> b;
    std::vector<double> vw;  ///< momentum buffers
    std::vector<double> vb;
  };

  void initialize(std::size_t input_dim);
  void train_epochs(const Dataset& data, std::size_t epochs, std::uint32_t shuffle_seed);
  [[nodiscard]] double forward(const FeatureVector& x,
                               std::vector<std::vector<double>>* activations) const;

  MlpConfig config_;
  std::vector<Layer> layers_;
  int negative_label_ = 0, positive_label_ = 1;
  bool fitted_ = false;
};

}  // namespace headtalk::ml
