#include "ml/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace headtalk::ml {

double BinaryMetrics::accuracy() const {
  const auto n = total();
  return n == 0 ? 0.0 : static_cast<double>(tp + tn) / static_cast<double>(n);
}

double BinaryMetrics::precision() const {
  const auto d = tp + fp;
  return d == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(d);
}

double BinaryMetrics::recall() const {
  const auto d = tp + fn;
  return d == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(d);
}

double BinaryMetrics::f1() const {
  const double p = precision();
  const double r = recall();
  return p + r > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

double BinaryMetrics::far() const {
  const auto d = fp + tn;
  return d == 0 ? 0.0 : static_cast<double>(fp) / static_cast<double>(d);
}

double BinaryMetrics::frr() const {
  const auto d = tp + fn;
  return d == 0 ? 0.0 : static_cast<double>(fn) / static_cast<double>(d);
}

BinaryMetrics binary_metrics(std::span<const int> y_true, std::span<const int> y_pred,
                             int positive_label) {
  if (y_true.size() != y_pred.size()) {
    throw std::invalid_argument("binary_metrics: size mismatch");
  }
  BinaryMetrics m;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    const bool actual = y_true[i] == positive_label;
    const bool predicted = y_pred[i] == positive_label;
    if (actual && predicted) ++m.tp;
    else if (actual && !predicted) ++m.fn;
    else if (!actual && predicted) ++m.fp;
    else ++m.tn;
  }
  return m;
}

double accuracy(std::span<const int> y_true, std::span<const int> y_pred) {
  if (y_true.size() != y_pred.size()) {
    throw std::invalid_argument("accuracy: size mismatch");
  }
  if (y_true.empty()) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    if (y_true[i] == y_pred[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(y_true.size());
}

double equal_error_rate(std::span<const double> scores, std::span<const int> labels,
                        int positive_label) {
  if (scores.size() != labels.size()) {
    throw std::invalid_argument("equal_error_rate: size mismatch");
  }
  std::size_t n_pos = 0, n_neg = 0;
  for (int l : labels) (l == positive_label ? n_pos : n_neg)++;
  if (n_pos == 0 || n_neg == 0) {
    throw std::invalid_argument("equal_error_rate: need both classes");
  }

  // Sweep thresholds at every distinct score, descending: samples with
  // score >= threshold are accepted as positive.
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });

  // Before any acceptance: FRR = 1, FAR = 0.
  double prev_far = 0.0, prev_frr = 1.0;
  std::size_t accepted_pos = 0, accepted_neg = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    (labels[order[i]] == positive_label ? accepted_pos : accepted_neg)++;
    // Only evaluate at boundaries between distinct scores.
    if (i + 1 < order.size() && scores[order[i + 1]] == scores[order[i]]) continue;
    const double cur_far = static_cast<double>(accepted_neg) / static_cast<double>(n_neg);
    const double cur_frr = 1.0 - static_cast<double>(accepted_pos) / static_cast<double>(n_pos);
    if (cur_far >= cur_frr) {
      // Crossed the FAR == FRR point between the previous and current
      // threshold; interpolate linearly on the (FAR - FRR) gap.
      const double prev_gap = prev_frr - prev_far;  // >= 0
      const double cur_gap = cur_far - cur_frr;     // >= 0
      const double t = prev_gap + cur_gap > 0.0 ? prev_gap / (prev_gap + cur_gap) : 0.5;
      const double far_t = prev_far + t * (cur_far - prev_far);
      const double frr_t = prev_frr + t * (cur_frr - prev_frr);
      return 0.5 * (far_t + frr_t);
    }
    prev_far = cur_far;
    prev_frr = cur_frr;
  }
  return prev_far;  // degenerate: all accepted
}

MeanStd mean_std(std::span<const double> values) {
  MeanStd out;
  if (values.empty()) return out;
  for (double v : values) out.mean += v;
  out.mean /= static_cast<double>(values.size());
  if (values.size() < 2) return out;
  double acc = 0.0;
  for (double v : values) acc += (v - out.mean) * (v - out.mean);
  out.std_dev = std::sqrt(acc / static_cast<double>(values.size() - 1));
  return out;
}

}  // namespace headtalk::ml
