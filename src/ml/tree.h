// CART decision tree (Gini impurity, axis-aligned splits).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <random>
#include <vector>

#include "ml/classifier.h"

namespace headtalk::ml {

struct TreeConfig {
  std::size_t max_depth = 5;  ///< the paper caps DT at 5 splits (§IV-A)
  std::size_t min_samples_leaf = 1;
  std::size_t min_samples_split = 2;
  /// Features considered per split; 0 = all (single tree), sqrt(d) is the
  /// usual random-forest choice (see forest.h).
  std::size_t max_features = 0;
  std::uint32_t seed = 1;
};

class DecisionTree final : public Classifier {
 public:
  explicit DecisionTree(TreeConfig config = {}) : config_(config) {}

  void fit(const Dataset& data) override;
  [[nodiscard]] int predict(const FeatureVector& x) const override;
  /// Fraction of training samples at the reached leaf carrying the positive
  /// (largest) label — a crude probability.
  [[nodiscard]] double decision_value(const FeatureVector& x) const override;

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }

  /// Binary persistence of the fitted tree.
  void save(std::ostream& out) const;
  static DecisionTree load(std::istream& in);

 private:
  struct Node {
    bool leaf = true;
    int label = 0;
    double positive_fraction = 0.0;
    std::size_t feature = 0;
    double threshold = 0.0;
    std::size_t left = 0, right = 0;
  };

  std::size_t build(const Dataset& data, std::vector<std::size_t>& indices,
                    std::size_t depth, std::mt19937& rng);
  [[nodiscard]] const Node& walk(const FeatureVector& x) const;

  TreeConfig config_;
  std::vector<Node> nodes_;
  std::size_t depth_ = 0;
  int positive_label_ = 1;
};

}  // namespace headtalk::ml
