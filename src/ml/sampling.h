// Imbalanced-class up-sampling: SMOTE (Chawla et al. [19]) and ADASYN
// (He et al. [37]). The cross-user experiment (§IV-B14) has far fewer
// facing than non-facing samples and the paper selects ADASYN.
#pragma once

#include <cstdint>
#include <random>

#include "ml/dataset.h"

namespace headtalk::ml {

struct SamplingConfig {
  std::size_t k_neighbours = 5;
  std::uint32_t seed = 1;
};

/// SMOTE: synthesizes minority samples by interpolating between each
/// minority sample and one of its k minority neighbours, until the minority
/// class reaches `target_count` (defaults to the majority count when 0).
[[nodiscard]] Dataset smote(const Dataset& data, int minority_label,
                            std::size_t target_count = 0,
                            const SamplingConfig& config = {});

/// ADASYN: like SMOTE but allocates more synthetic samples to minority
/// points whose neighbourhoods are dominated by the majority class
/// (adaptive density weighting).
[[nodiscard]] Dataset adasyn(const Dataset& data, int minority_label,
                             std::size_t target_count = 0,
                             const SamplingConfig& config = {});

}  // namespace headtalk::ml
