#include "ml/grid_search.h"

#include "ml/metrics.h"

namespace headtalk::ml {

GridSearchResult svm_grid_search(const Dataset& data, const GridSearchConfig& config) {
  GridSearchResult result;
  std::mt19937 rng(config.seed);
  const auto folds = stratified_kfold(data, config.folds, rng);
  const double base_gamma = 1.0 / static_cast<double>(data.dim());

  for (double c : config.c_values) {
    for (double gscale : config.gamma_scales) {
      SvmConfig sc;
      sc.c = c;
      sc.gamma = base_gamma * gscale;
      double acc_sum = 0.0;
      for (const auto& [train, test] : folds) {
        Svm svm(sc);
        svm.fit(train);
        acc_sum += accuracy(test.labels, svm.predict_all(test));
      }
      const double cv_acc = acc_sum / static_cast<double>(folds.size());
      result.trials.push_back({c, sc.gamma, cv_acc});
      if (cv_acc > result.best_cv_accuracy) {
        result.best_cv_accuracy = cv_acc;
        result.best = sc;
      }
    }
  }
  return result;
}

}  // namespace headtalk::ml
