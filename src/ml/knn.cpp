#include "ml/knn.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <stdexcept>

#include "ml/serialize.h"

namespace headtalk::ml {
namespace {
constexpr std::uint32_t kKnnMagic = 0x48544b4e;  // "HTKN"
constexpr std::uint32_t kKnnVersion = 1;
}  // namespace

void Knn::fit(const Dataset& data) {
  if (data.empty()) throw std::invalid_argument("Knn::fit: empty dataset");
  train_ = data;
  positive_label_ = data.distinct_labels().back();
}

std::vector<std::size_t> Knn::neighbours(const FeatureVector& x) const {
  if (train_.empty()) throw std::logic_error("Knn: not fitted");
  std::vector<double> dist(train_.size());
  for (std::size_t i = 0; i < train_.size(); ++i) {
    double d2 = 0.0;
    const auto& row = train_.features[i];
    for (std::size_t j = 0; j < row.size(); ++j) {
      const double d = row[j] - x[j];
      d2 += d * d;
    }
    dist[i] = d2;
  }
  std::vector<std::size_t> order(train_.size());
  std::iota(order.begin(), order.end(), 0);
  const std::size_t k = std::min(config_.k, train_.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<long>(k), order.end(),
                    [&](std::size_t a, std::size_t b) { return dist[a] < dist[b]; });
  order.resize(k);
  return order;
}

int Knn::predict(const FeatureVector& x) const {
  std::map<int, std::size_t> votes;
  for (std::size_t i : neighbours(x)) ++votes[train_.labels[i]];
  int best = 0;
  std::size_t best_count = 0;
  for (const auto& [label, count] : votes) {
    if (count > best_count) {
      best = label;
      best_count = count;
    }
  }
  return best;
}

double Knn::decision_value(const FeatureVector& x) const {
  const auto nn = neighbours(x);
  std::size_t pos = 0;
  for (std::size_t i : nn) {
    if (train_.labels[i] == positive_label_) ++pos;
  }
  return nn.empty() ? 0.0 : static_cast<double>(pos) / static_cast<double>(nn.size());
}

void Knn::save(std::ostream& out) const {
  if (train_.empty()) throw SerializationError("Knn::save: not fitted");
  io::write_header(out, kKnnMagic, kKnnVersion);
  io::write_u32(out, static_cast<std::uint32_t>(config_.k));
  io::write_i64(out, positive_label_);
  io::write_u32(out, static_cast<std::uint32_t>(train_.size()));
  for (std::size_t i = 0; i < train_.size(); ++i) {
    io::write_i64(out, train_.labels[i]);
    io::write_f64_vector(out, train_.features[i]);
  }
}

Knn Knn::load(std::istream& in) {
  io::expect_header(in, kKnnMagic, kKnnVersion, "Knn");
  Knn knn;
  knn.config_.k = io::read_u32(in);
  knn.positive_label_ = static_cast<int>(io::read_i64(in));
  const auto count = io::read_u32(in);
  if (count == 0 || count > (1u << 24)) {
    throw SerializationError("Knn: implausible sample count");
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto label = static_cast<int>(io::read_i64(in));
    knn.train_.add(io::read_f64_vector(in), label);
  }
  return knn;
}

}  // namespace headtalk::ml
