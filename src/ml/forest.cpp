#include "ml/forest.h"

#include <cmath>
#include <random>
#include <stdexcept>

#include "ml/serialize.h"

namespace headtalk::ml {
namespace {
constexpr std::uint32_t kForestMagic = 0x48544652;  // "HTFR"
constexpr std::uint32_t kForestVersion = 1;
}  // namespace

void RandomForest::fit(const Dataset& data) {
  if (data.empty()) throw std::invalid_argument("RandomForest::fit: empty dataset");
  const auto classes = data.distinct_labels();
  negative_label_ = classes.front();
  positive_label_ = classes.back();

  trees_.clear();
  trees_.reserve(config_.tree_count);
  std::mt19937 rng(config_.seed);
  std::uniform_int_distribution<std::size_t> pick(0, data.size() - 1);

  const std::size_t max_features =
      config_.max_features != 0
          ? config_.max_features
          : std::max<std::size_t>(1, static_cast<std::size_t>(std::sqrt(
                                         static_cast<double>(data.dim()))));

  for (std::size_t t = 0; t < config_.tree_count; ++t) {
    // Bootstrap sample with replacement.
    Dataset bag;
    bag.features.reserve(data.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
      const std::size_t j = pick(rng);
      bag.features.push_back(data.features[j]);
      bag.labels.push_back(data.labels[j]);
    }
    TreeConfig tc;
    tc.max_depth = config_.max_depth;
    tc.min_samples_leaf = config_.min_samples_leaf;
    tc.max_features = max_features;
    tc.seed = rng();
    DecisionTree tree(tc);
    tree.fit(bag);
    trees_.push_back(std::move(tree));
  }
}

double RandomForest::decision_value(const FeatureVector& x) const {
  if (trees_.empty()) throw std::logic_error("RandomForest: not fitted");
  double acc = 0.0;
  for (const auto& tree : trees_) acc += tree.decision_value(x);
  return acc / static_cast<double>(trees_.size());
}

int RandomForest::predict(const FeatureVector& x) const {
  return decision_value(x) >= 0.5 ? positive_label_ : negative_label_;
}

void RandomForest::save(std::ostream& out) const {
  if (trees_.empty()) throw SerializationError("RandomForest::save: not fitted");
  io::write_header(out, kForestMagic, kForestVersion);
  io::write_i64(out, negative_label_);
  io::write_i64(out, positive_label_);
  io::write_u32(out, static_cast<std::uint32_t>(trees_.size()));
  for (const auto& tree : trees_) tree.save(out);
}

RandomForest RandomForest::load(std::istream& in) {
  io::expect_header(in, kForestMagic, kForestVersion, "RandomForest");
  RandomForest forest;
  forest.negative_label_ = static_cast<int>(io::read_i64(in));
  forest.positive_label_ = static_cast<int>(io::read_i64(in));
  const auto count = io::read_u32(in);
  if (count == 0 || count > 100000) {
    throw SerializationError("RandomForest: implausible tree count");
  }
  forest.trees_.reserve(count);
  for (std::uint32_t t = 0; t < count; ++t) {
    forest.trees_.push_back(DecisionTree::load(in));
  }
  return forest;
}

}  // namespace headtalk::ml
