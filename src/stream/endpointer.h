// Utterance endpointing: VAD frame labels in, utterance segments out.
//
// A pure state machine (idle → onset → in-utterance → hangover) in units
// of VAD frames, deliberately free of audio, clocks, and I/O so every
// transition is unit-testable. Onset needs `onset_frames` consecutive
// active frames before a segment opens (isolated clicks never reach the
// scorer); the segment start then reaches back `pre_roll_frames` — clamped
// to the stream start and to the previous segment's end, so utterances
// never overlap. A gap shorter than `hangover_frames` stays inside one
// segment; a longer one closes it with `post_roll_frames` of trailing
// context. Segments that hit `max_utterance_frames` are force-closed (and
// flagged) so a stuck-active VAD cannot grow an unbounded utterance, and
// segments shorter than `min_utterance_frames` are discarded as glitches.
#pragma once

#include <cstdint>
#include <optional>

namespace headtalk::stream {

struct EndpointerConfig {
  /// Context frames prepended before the confirmed onset (clamped to the
  /// stream start / previous segment end).
  std::size_t pre_roll_frames = 10;
  /// Consecutive active frames required to confirm an onset.
  std::size_t onset_frames = 2;
  /// Inactive frames that close an open segment; shorter gaps merge.
  std::size_t hangover_frames = 15;
  /// Trailing inactive frames kept after the last active frame (≤ hangover).
  std::size_t post_roll_frames = 5;
  /// Segments shorter than this are discarded (counted, not emitted).
  std::size_t min_utterance_frames = 10;
  /// Segments reaching this length are force-closed mid-speech.
  std::size_t max_utterance_frames = 400;
};

/// One closed utterance: [begin_frame, end_frame) in VAD frame indices.
struct Segment {
  std::uint64_t begin_frame = 0;
  std::uint64_t end_frame = 0;
  bool force_closed = false;

  [[nodiscard]] std::uint64_t frames() const noexcept { return end_frame - begin_frame; }
};

class Endpointer {
 public:
  explicit Endpointer(EndpointerConfig config = {});

  /// Consumes one VAD frame label; returns a segment when one just closed.
  std::optional<Segment> on_frame(bool active);

  /// Closes any open segment at the current stream position (end of input).
  std::optional<Segment> flush();

  void reset();

  /// True while a confirmed (or tentative-onset) utterance is open — a
  /// drain should wait for its decision.
  [[nodiscard]] bool in_utterance() const noexcept { return state_ != State::kIdle; }

  /// True while a *confirmed* segment is open (onset already promoted, so
  /// open_begin()/last_active() are meaningful). Tentative onsets — which
  /// may still evaporate without a segment — report false; incremental
  /// consumers that start work on segment_open() never work on a false
  /// start.
  [[nodiscard]] bool segment_open() const noexcept {
    return state_ == State::kInUtterance || state_ == State::kHangover;
  }
  /// Start frame of the open segment (pre-roll applied; only meaningful
  /// while segment_open()).
  [[nodiscard]] std::uint64_t open_begin() const noexcept { return begin_; }
  /// Most recent active frame index of the open segment (only meaningful
  /// while segment_open()). The eventual close end is bounded by
  /// last_active() + 1 + post_roll_frames, which is what lets a streaming
  /// consumer feed ahead of the close without overshooting the segment.
  [[nodiscard]] std::uint64_t last_active() const noexcept { return last_active_; }

  [[nodiscard]] std::uint64_t segments() const noexcept { return segments_; }
  [[nodiscard]] std::uint64_t force_closed() const noexcept { return force_closed_; }
  [[nodiscard]] std::uint64_t discarded() const noexcept { return discarded_; }
  [[nodiscard]] std::uint64_t frames_seen() const noexcept { return next_index_; }
  [[nodiscard]] const EndpointerConfig& config() const noexcept { return config_; }

 private:
  enum class State { kIdle, kOnset, kInUtterance, kHangover };

  /// Closes the open segment at `end` (exclusive); empty when discarded.
  std::optional<Segment> close(std::uint64_t end, bool force);

  EndpointerConfig config_;
  State state_ = State::kIdle;
  std::uint64_t next_index_ = 0;    ///< index the next on_frame() will get
  std::uint64_t onset_start_ = 0;   ///< first frame of the tentative onset run
  std::uint64_t active_run_ = 0;    ///< consecutive active frames in kOnset
  std::uint64_t begin_ = 0;         ///< open segment start (pre-roll applied)
  std::uint64_t last_active_ = 0;   ///< most recent active frame index
  std::uint64_t gap_run_ = 0;       ///< consecutive inactive frames in kHangover
  std::uint64_t last_end_ = 0;      ///< previous segment's end (pre-roll clamp)
  std::uint64_t segments_ = 0;
  std::uint64_t force_closed_ = 0;
  std::uint64_t discarded_ = 0;
};

}  // namespace headtalk::stream
