// Frame-level voice activity detection on the reference channel.
//
// The always-listening threat model (§II) means the device — not the
// client — must find utterances inside a continuous stream before the
// liveness/orientation checks can run. This VAD is the first stage of that
// chain: fixed-length analysis frames are classified active/inactive from
// two cheap cues — short-time energy against an *adaptive* noise floor
// (asymmetric dB-domain tracking, so speech cannot drag the floor up but a
// quieting room is followed quickly) and spectral flatness (diffuse room
// noise is flat; speech is tonal even when it is not loud). A short
// hangover keeps weak utterance tails attached. Segmentation itself —
// onset confirmation, pre-roll, force-close — lives one layer up in
// stream::Endpointer; the VAD only labels frames.
//
// Not thread-safe: one Vad per stream, driven from one thread.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "audio/sample_buffer.h"
#include "dsp/fft.h"

namespace headtalk::stream {

struct VadConfig {
  /// Analysis frame length (also the endpointer's time base).
  double frame_ms = 20.0;
  /// Energy must clear the noise floor by this much to turn a frame active…
  double onset_snr_db = 8.0;
  /// …and stays active down to this margin (hysteresis).
  double offset_snr_db = 4.0;
  /// Absolute gate: frames below this dBFS are never active, whatever the
  /// floor estimate says.
  double min_energy_db = -70.0;
  /// Frames flatter than this (geometric/arithmetic spectral mean over the
  /// speech band) are noise-like even when loud. On a raw single-frame
  /// periodogram, white noise concentrates near exp(-gamma) ~ 0.56 (the
  /// bin powers are exponentially distributed), while voiced speech sits
  /// well under 0.2 — so the gate goes between them, not near 1.
  double flatness_max = 0.4;
  double flatness_low_hz = 150.0;
  double flatness_high_hz = 6000.0;
  /// Initial noise-floor estimate (dBFS) before any audio is seen.
  double noise_floor_init_db = -55.0;
  /// Asymmetric floor tracking (EMA coefficients per frame): rise slowly so
  /// speech cannot become the floor, fall fast so a quieting room is
  /// followed within a few frames.
  double noise_adapt_up = 0.02;
  double noise_adapt_down = 0.2;
  /// Extra damping on the up-adapt for frames loud enough to have fired an
  /// onset (energy >= floor + onset_snr_db) but rejected by the speech
  /// gates — at that level the energy is more likely speech leaking past
  /// the flatness test than a genuinely louder room, so the floor follows
  /// it at noise_adapt_up * this instead of full rate.
  double noise_adapt_up_speech_damping = 0.1;
  /// Raw-inactive frames still reported active after speech (tail hangover).
  std::size_t hangover_frames = 2;
};

/// One classified analysis frame. `index` counts frames from the start of
/// the stream; the diagnostic fields are what the decision was made from.
struct VadFrame {
  std::uint64_t index = 0;
  bool active = false;
  double energy_db = 0.0;
  double noise_floor_db = 0.0;
  /// Spectral flatness of the frame — only when it was actually measured.
  /// Frames far below the energy gate skip the flatness FFT; they report
  /// NaN here (check has_flatness()) instead of a fabricated value that
  /// metrics/log consumers would mistake for a measurement.
  double flatness = std::numeric_limits<double>::quiet_NaN();

  [[nodiscard]] bool has_flatness() const noexcept { return !std::isnan(flatness); }
};

class Vad {
 public:
  explicit Vad(VadConfig config = {}, double sample_rate = audio::kDefaultSampleRate);

  /// Feeds continuous reference-channel audio; returns the frames completed
  /// by this chunk (possibly none — a partial frame is carried over).
  std::vector<VadFrame> push(std::span<const audio::Sample> samples);

  /// Forgets buffered samples and re-initializes the noise floor.
  void reset();

  [[nodiscard]] std::size_t frame_length() const noexcept { return frame_length_; }
  [[nodiscard]] double sample_rate() const noexcept { return sample_rate_; }
  [[nodiscard]] std::uint64_t frames_emitted() const noexcept { return next_index_; }
  [[nodiscard]] double noise_floor_db() const noexcept { return noise_floor_db_; }
  [[nodiscard]] const VadConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] VadFrame classify(std::span<const audio::Sample> frame);

  VadConfig config_;
  double sample_rate_;
  std::size_t frame_length_;
  std::size_t fft_size_;
  std::vector<audio::Sample> pending_;  ///< partial frame carried across push()es
  std::vector<double> magnitude_;
  dsp::FftScratch fft_scratch_;
  double noise_floor_db_;
  bool prev_active_ = false;   ///< hysteresis state (raw decision)
  std::size_t hangover_ = 0;   ///< raw-inactive frames still reported active
  std::uint64_t next_index_ = 0;
};

}  // namespace headtalk::stream
