#include "stream/streaming_detector.h"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace headtalk::stream {
namespace {

obs::Gauge& metric_vad_active() {
  static obs::Gauge& g = obs::Registry::global().gauge("stream.vad.active");
  return g;
}
obs::Counter& metric_segments() {
  static obs::Counter& c = obs::Registry::global().counter("stream.endpoint.segments");
  return c;
}
obs::Counter& metric_force_closed() {
  static obs::Counter& c =
      obs::Registry::global().counter("stream.endpoint.force_closed");
  return c;
}
obs::Counter& metric_discarded() {
  static obs::Counter& c = obs::Registry::global().counter("stream.endpoint.discarded");
  return c;
}
obs::Histogram& metric_decision_latency() {
  static obs::Histogram& h =
      obs::Registry::global().histogram("stream.decision_latency_seconds");
  return h;
}
obs::Histogram& metric_accumulate() {
  // Shared with the batch pipeline's accumulation stage: one instrument
  // for "time spent pushing samples through the incremental extractor",
  // however the samples arrived.
  static obs::Histogram& h =
      core::pipeline_stage_histogram("pipeline.stage.incremental_accumulate_seconds");
  return h;
}

}  // namespace

void StreamRing::reset(std::size_t channels, std::size_t capacity_frames,
                       double sample_rate) {
  channels_ = channels;
  capacity_ = capacity_frames;
  sample_rate_ = sample_rate;
  data_.assign(capacity_ * channels_, 0.0);
  total_ = 0;
  first_ = 0;
}

void StreamRing::seek(std::uint64_t frame) {
  if (total_ != first_) {
    throw std::logic_error("StreamRing: seek on a non-empty ring");
  }
  total_ = frame;
  first_ = frame;
}

void StreamRing::push(std::span<const float> interleaved) {
  if (channels_ == 0 || capacity_ == 0) return;
  const std::size_t frames = interleaved.size() / channels_;
  for (std::size_t f = 0; f < frames; ++f) {
    const std::size_t slot = static_cast<std::size_t>(total_ % capacity_);
    for (std::size_t c = 0; c < channels_; ++c) {
      data_[slot * channels_ + c] =
          static_cast<audio::Sample>(interleaved[f * channels_ + c]);
    }
    ++total_;
  }
}

void StreamRing::push(const audio::MultiBuffer& chunk) {
  if (channels_ == 0 || capacity_ == 0) return;
  for (std::size_t f = 0; f < chunk.frames(); ++f) {
    const std::size_t slot = static_cast<std::size_t>(total_ % capacity_);
    for (std::size_t c = 0; c < channels_; ++c) {
      data_[slot * channels_ + c] = chunk.channel(c)[f];
    }
    ++total_;
  }
}

audio::MultiBuffer StreamRing::extract(std::uint64_t begin, std::uint64_t end) const {
  audio::MultiBuffer capture;
  extract_into(begin, end, capture);
  return capture;
}

void StreamRing::extract_into(std::uint64_t begin, std::uint64_t end,
                              audio::MultiBuffer& out) const {
  begin = std::max(begin, oldest_frame());
  end = std::min<std::uint64_t>(end, total_);
  if (begin > end) begin = end;
  const auto frames = static_cast<std::size_t>(end - begin);
  if (out.channel_count() != channels_ || out.sample_rate() != sample_rate_) {
    out = audio::MultiBuffer(channels_, frames, sample_rate_);
  } else {
    for (std::size_t c = 0; c < channels_; ++c) out.channel(c).resize(frames);
  }
  for (std::uint64_t f = begin; f < end; ++f) {
    const std::size_t slot = static_cast<std::size_t>(f % capacity_);
    for (std::size_t c = 0; c < channels_; ++c) {
      out.channel(c)[static_cast<std::size_t>(f - begin)] =
          data_[slot * channels_ + c];
    }
  }
}

StreamingDetector::StreamingDetector(const core::HeadTalkPipeline& pipeline,
                                     std::size_t channels, double sample_rate,
                                     StreamingDetectorConfig config)
    : pipeline_(pipeline),
      config_(config),
      vad_(config.vad, sample_rate),
      endpointer_(config.endpoint) {
  if (channels == 0) throw std::invalid_argument("StreamingDetector: zero channels");
  // Worst-case extraction span: a force-closed segment of max length (its
  // pre-roll is inside that bound), plus the margin covering chunk lag.
  const std::size_t capacity =
      endpointer_.config().max_utterance_frames * vad_.frame_length() +
      config_.ring_margin_frames;
  ring_.reset(channels, capacity, sample_rate);
  ring_.seek(config_.start_frame);
}

std::vector<DecisionEvent> StreamingDetector::push_interleaved(
    std::span<const float> interleaved) {
  if (ring_.channels() == 0 || interleaved.size() % ring_.channels() != 0) {
    throw std::invalid_argument(
        "StreamingDetector: sample count is not a multiple of the channel count");
  }
  ring_.push(interleaved);
  const std::size_t frames = interleaved.size() / ring_.channels();
  reference_.resize(frames);
  for (std::size_t f = 0; f < frames; ++f) {
    reference_[f] = static_cast<audio::Sample>(interleaved[f * ring_.channels()]);
  }
  std::vector<DecisionEvent> out;
  advance(reference_, out);
  return out;
}

std::vector<DecisionEvent> StreamingDetector::push(const audio::MultiBuffer& chunk) {
  if (chunk.channel_count() != ring_.channels()) {
    throw std::invalid_argument("StreamingDetector: chunk channel count mismatch");
  }
  if (chunk.sample_rate() != vad_.sample_rate()) {
    throw std::invalid_argument("StreamingDetector: chunk sample rate mismatch");
  }
  ring_.push(chunk);
  std::vector<DecisionEvent> out;
  advance(chunk.channel(0).samples(), out);
  return out;
}

std::vector<DecisionEvent> StreamingDetector::flush() {
  std::vector<DecisionEvent> out;
  if (const auto segment = endpointer_.flush()) {
    metric_segments().increment();
    out.push_back(score_segment(*segment));
  }
  metric_vad_active().set(0.0);
  return out;
}

void StreamingDetector::advance(std::span<const audio::Sample> reference,
                                std::vector<DecisionEvent>& out) {
  const auto vad_frames = vad_.push(reference);
  for (const VadFrame& frame : vad_frames) {
    metric_vad_active().set(frame.active ? 1.0 : 0.0);
    const auto segment = endpointer_.on_frame(frame.active);
    if (segment) {
      if (segment->force_closed) metric_force_closed().increment();
      metric_segments().increment();
      out.push_back(score_segment(*segment));
      continue;
    }
    if (config_.mode != core::VaMode::kHeadTalk) continue;
    if (endpointer_.segment_open()) {
      // Incremental accumulation: push this frame's worth of final segment
      // audio through the extractor now, so the eventual close pays only
      // the residual feed plus the O(1) finalize.
      obs::Timer accumulate(&metric_accumulate());
      if (!op_open_) {
        open_op(config_.start_frame +
                endpointer_.open_begin() *
                    static_cast<std::uint64_t>(vad_.frame_length()));
      }
      feed_op_to(feed_target());
    } else if (op_open_ && !endpointer_.in_utterance()) {
      // The open segment was discarded as a glitch (no close emitted):
      // abandon the accumulated state. begin() re-arms the op fully, so
      // nothing else needs unwinding.
      op_open_ = false;
    }
  }
  // Discards happen inside the endpointer; mirror its counter into obs so
  // dashboards see glitch rejections without polling the detector.
  while (discards_reported_ < endpointer_.discarded()) {
    metric_discarded().increment();
    ++discards_reported_;
  }
}

std::uint64_t StreamingDetector::feed_target() const {
  const auto frame_len = static_cast<std::uint64_t>(vad_.frame_length());
  // The close end is bounded by last_active + 1 + post_roll whatever
  // happens next (a later active frame only moves the bound forward), so
  // audio before that bound is certainly part of the segment.
  const std::uint64_t bound =
      endpointer_.last_active() + 1 + endpointer_.config().post_roll_frames;
  const std::uint64_t frames = std::min<std::uint64_t>(endpointer_.frames_seen(), bound);
  return std::min<std::uint64_t>(config_.start_frame + frames * frame_len,
                                 ring_.total_frames());
}

void StreamingDetector::open_op(std::uint64_t begin) {
  op_.begin(pipeline_.incremental_config(), ring_.channels(), vad_.sample_rate());
  op_open_ = true;
  op_truncated_ = 0;
  op_fed_end_ = begin;
  const std::uint64_t oldest = ring_.oldest_frame();
  if (op_fed_end_ < oldest) {
    op_truncated_ = oldest - op_fed_end_;
    op_fed_end_ = oldest;
  }
}

void StreamingDetector::feed_op_to(std::uint64_t target) {
  if (!op_open_) return;
  const std::uint64_t oldest = ring_.oldest_frame();
  if (op_fed_end_ < oldest) {
    // Samples between the last feed and now were overwritten (a chunk far
    // larger than the ring margin); count them and continue from the
    // oldest survivor, exactly like the batch extraction clamp.
    op_truncated_ += oldest - op_fed_end_;
    op_fed_end_ = oldest;
  }
  if (target <= op_fed_end_) return;
  ring_.extract_into(op_fed_end_, target, feed_buffer_);
  op_.push(feed_buffer_);
  op_fed_end_ = target;
}

DecisionEvent StreamingDetector::score_segment(const Segment& segment) {
  obs::ScopedSpan span("stream.score_segment");
  obs::Timer timer(&metric_decision_latency());

  const auto frame_len = static_cast<std::uint64_t>(vad_.frame_length());
  DecisionEvent event;
  event.begin_frame = config_.start_frame + segment.begin_frame * frame_len;
  event.end_frame =
      std::min<std::uint64_t>(config_.start_frame + segment.end_frame * frame_len,
                              ring_.total_frames());
  event.force_closed = segment.force_closed;
  const double fs = vad_.sample_rate();
  event.begin_seconds = static_cast<double>(event.begin_frame) / fs;
  event.end_seconds = static_cast<double>(event.end_frame) / fs;

  if (config_.mode == core::VaMode::kHeadTalk) {
    // Streaming path: the segment's audio is (mostly) already inside the
    // incremental extractor; feed whatever the close added beyond the last
    // per-frame target and run the finalize ladder. The decision latency
    // this timer measures is that residual work — O(1) in segment length.
    if (!op_open_) open_op(event.begin_frame);
    feed_op_to(event.end_frame);
    event.truncated_frames = op_truncated_;
    event.result = pipeline_.finalize_segment(op_, config_.mode, /*followup=*/false,
                                              session_open_,
                                              config_.capture_features
                                                  ? &event.features
                                                  : nullptr);
    op_open_ = false;
  } else {
    const std::uint64_t oldest = ring_.oldest_frame();
    if (event.begin_frame < oldest) {
      event.truncated_frames = oldest - event.begin_frame;
    }
    const audio::MultiBuffer capture =
        ring_.extract(event.begin_frame, event.end_frame);
    event.result = pipeline_.score_capture(capture, config_.mode, /*followup=*/false,
                                           session_open_, workspace_,
                                           config_.capture_features ? &event.features
                                                                    : nullptr);
  }
  session_open_ = event.result.session_open_after;
  event.latency_seconds = timer.stop();
  return event;
}

}  // namespace headtalk::stream
