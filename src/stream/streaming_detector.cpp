#include "stream/streaming_detector.h"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace headtalk::stream {
namespace {

obs::Gauge& metric_vad_active() {
  static obs::Gauge& g = obs::Registry::global().gauge("stream.vad.active");
  return g;
}
obs::Counter& metric_segments() {
  static obs::Counter& c = obs::Registry::global().counter("stream.endpoint.segments");
  return c;
}
obs::Counter& metric_force_closed() {
  static obs::Counter& c =
      obs::Registry::global().counter("stream.endpoint.force_closed");
  return c;
}
obs::Counter& metric_discarded() {
  static obs::Counter& c = obs::Registry::global().counter("stream.endpoint.discarded");
  return c;
}
obs::Histogram& metric_decision_latency() {
  static obs::Histogram& h =
      obs::Registry::global().histogram("stream.decision_latency_seconds");
  return h;
}

}  // namespace

void StreamRing::reset(std::size_t channels, std::size_t capacity_frames,
                       double sample_rate) {
  channels_ = channels;
  capacity_ = capacity_frames;
  sample_rate_ = sample_rate;
  data_.assign(capacity_ * channels_, 0.0);
  total_ = 0;
}

void StreamRing::push(std::span<const float> interleaved) {
  if (channels_ == 0 || capacity_ == 0) return;
  const std::size_t frames = interleaved.size() / channels_;
  for (std::size_t f = 0; f < frames; ++f) {
    const std::size_t slot = static_cast<std::size_t>(total_ % capacity_);
    for (std::size_t c = 0; c < channels_; ++c) {
      data_[slot * channels_ + c] =
          static_cast<audio::Sample>(interleaved[f * channels_ + c]);
    }
    ++total_;
  }
}

void StreamRing::push(const audio::MultiBuffer& chunk) {
  if (channels_ == 0 || capacity_ == 0) return;
  for (std::size_t f = 0; f < chunk.frames(); ++f) {
    const std::size_t slot = static_cast<std::size_t>(total_ % capacity_);
    for (std::size_t c = 0; c < channels_; ++c) {
      data_[slot * channels_ + c] = chunk.channel(c)[f];
    }
    ++total_;
  }
}

audio::MultiBuffer StreamRing::extract(std::uint64_t begin, std::uint64_t end) const {
  begin = std::max(begin, oldest_frame());
  end = std::min<std::uint64_t>(end, total_);
  if (begin > end) begin = end;
  audio::MultiBuffer capture(channels_, static_cast<std::size_t>(end - begin),
                             sample_rate_);
  for (std::uint64_t f = begin; f < end; ++f) {
    const std::size_t slot = static_cast<std::size_t>(f % capacity_);
    for (std::size_t c = 0; c < channels_; ++c) {
      capture.channel(c)[static_cast<std::size_t>(f - begin)] =
          data_[slot * channels_ + c];
    }
  }
  return capture;
}

StreamingDetector::StreamingDetector(const core::HeadTalkPipeline& pipeline,
                                     std::size_t channels, double sample_rate,
                                     StreamingDetectorConfig config)
    : pipeline_(pipeline),
      config_(config),
      vad_(config.vad, sample_rate),
      endpointer_(config.endpoint) {
  if (channels == 0) throw std::invalid_argument("StreamingDetector: zero channels");
  // Worst-case extraction span: a force-closed segment of max length (its
  // pre-roll is inside that bound), plus the margin covering chunk lag.
  const std::size_t capacity =
      endpointer_.config().max_utterance_frames * vad_.frame_length() +
      config_.ring_margin_frames;
  ring_.reset(channels, capacity, sample_rate);
}

std::vector<DecisionEvent> StreamingDetector::push_interleaved(
    std::span<const float> interleaved) {
  if (ring_.channels() == 0 || interleaved.size() % ring_.channels() != 0) {
    throw std::invalid_argument(
        "StreamingDetector: sample count is not a multiple of the channel count");
  }
  ring_.push(interleaved);
  const std::size_t frames = interleaved.size() / ring_.channels();
  reference_.resize(frames);
  for (std::size_t f = 0; f < frames; ++f) {
    reference_[f] = static_cast<audio::Sample>(interleaved[f * ring_.channels()]);
  }
  std::vector<DecisionEvent> out;
  advance(reference_, out);
  return out;
}

std::vector<DecisionEvent> StreamingDetector::push(const audio::MultiBuffer& chunk) {
  if (chunk.channel_count() != ring_.channels()) {
    throw std::invalid_argument("StreamingDetector: chunk channel count mismatch");
  }
  if (chunk.sample_rate() != vad_.sample_rate()) {
    throw std::invalid_argument("StreamingDetector: chunk sample rate mismatch");
  }
  ring_.push(chunk);
  std::vector<DecisionEvent> out;
  advance(chunk.channel(0).samples(), out);
  return out;
}

std::vector<DecisionEvent> StreamingDetector::flush() {
  std::vector<DecisionEvent> out;
  if (const auto segment = endpointer_.flush()) {
    metric_segments().increment();
    out.push_back(score_segment(*segment));
  }
  metric_vad_active().set(0.0);
  return out;
}

void StreamingDetector::advance(std::span<const audio::Sample> reference,
                                std::vector<DecisionEvent>& out) {
  const auto vad_frames = vad_.push(reference);
  for (const VadFrame& frame : vad_frames) {
    metric_vad_active().set(frame.active ? 1.0 : 0.0);
    const auto segment = endpointer_.on_frame(frame.active);
    if (!segment) continue;
    if (segment->force_closed) metric_force_closed().increment();
    metric_segments().increment();
    out.push_back(score_segment(*segment));
  }
  // Discards happen inside the endpointer; mirror its counter into obs so
  // dashboards see glitch rejections without polling the detector.
  while (discards_reported_ < endpointer_.discarded()) {
    metric_discarded().increment();
    ++discards_reported_;
  }
}

DecisionEvent StreamingDetector::score_segment(const Segment& segment) {
  obs::ScopedSpan span("stream.score_segment");
  obs::Timer timer(&metric_decision_latency());

  DecisionEvent event;
  event.begin_frame = segment.begin_frame * vad_.frame_length();
  event.end_frame =
      std::min<std::uint64_t>(segment.end_frame * vad_.frame_length(),
                              ring_.total_frames());
  event.force_closed = segment.force_closed;
  const std::uint64_t oldest = ring_.oldest_frame();
  if (event.begin_frame < oldest) {
    event.truncated_frames = oldest - event.begin_frame;
  }
  const double fs = vad_.sample_rate();
  event.begin_seconds = static_cast<double>(event.begin_frame) / fs;
  event.end_seconds = static_cast<double>(event.end_frame) / fs;

  const audio::MultiBuffer capture = ring_.extract(event.begin_frame, event.end_frame);
  event.result = pipeline_.score_capture(capture, config_.mode, /*followup=*/false,
                                         session_open_, workspace_,
                                         config_.capture_features ? &event.features
                                                                  : nullptr);
  session_open_ = event.result.session_open_after;
  event.latency_seconds = timer.stop();
  return event;
}

}  // namespace headtalk::stream
