// Online detection: continuous multichannel audio in, scored decisions out.
//
// The StreamingDetector is the layer the always-listening deployment was
// missing between raw audio and HeadTalkPipeline::score_capture(): chunks
// of any size go into an absolute-indexed multichannel ring, the reference
// channel runs through the frame-level Vad, the Endpointer turns frame
// labels into utterance segments, and each closed segment is extracted
// from the ring and scored through the resident pipeline with this
// detector's ScoringWorkspace — emitting one DecisionEvent per utterance
// with sample-accurate segment timestamps. The HeadTalk open-session flag
// carries across segments exactly as it does across utterances of one
// serve connection.
//
// Not thread-safe: one detector per stream, driven from one thread. The
// pipeline is shared and only its const scoring entry point is used.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "audio/sample_buffer.h"
#include "core/pipeline.h"
#include "stream/endpointer.h"
#include "stream/vad.h"

namespace headtalk::stream {

struct StreamingDetectorConfig {
  VadConfig vad{};
  EndpointerConfig endpoint{};
  /// Mode segments are scored under (HeadTalk in production).
  core::VaMode mode = core::VaMode::kHeadTalk;
  /// Extra ring capacity (sample frames) beyond the worst-case segment
  /// span, absorbing the lag between a chunk landing in the ring and its
  /// VAD frames being classified. Chunks larger than this margin can cost
  /// a closing segment its oldest samples (counted as truncated_frames).
  std::size_t ring_margin_frames = 48000;
  /// Copy each segment's feature vectors into DecisionEvent::features
  /// (needed by tenant-scoped serving for speaker-identity matching).
  bool capture_features = false;
  /// Absolute sample-frame index of the first frame this detector will be
  /// fed — a resumed or sharded stream keeps globally consistent event
  /// timestamps by passing its offset here. All DecisionEvent frame fields
  /// (and seconds, computed from them) are absolute under this origin; the
  /// arithmetic is 64-bit throughout, so origins past 2^32 are exact.
  std::uint64_t start_frame = 0;
};

/// One scored utterance detected in the stream.
struct DecisionEvent {
  core::PipelineResult result;
  std::uint64_t begin_frame = 0;  ///< absolute sample frame (inclusive)
  std::uint64_t end_frame = 0;    ///< absolute sample frame (exclusive)
  double begin_seconds = 0.0;
  double end_seconds = 0.0;
  bool force_closed = false;
  /// Sample frames the segment lost to ring overwrite (0 in any sanely
  /// sized configuration).
  std::uint64_t truncated_frames = 0;
  /// Endpoint close → decision available (extraction + scoring).
  double latency_seconds = 0.0;
  /// Feature vectors of the scoring pass; only filled when the detector's
  /// config sets capture_features (empty vectors otherwise).
  core::FeatureCapture features;
};

/// Absolute-indexed multichannel sample ring: frame `n` of the stream
/// lives at slot `n % capacity` until overwritten, so a closing segment is
/// extracted by its absolute [begin, end) without any index bookkeeping at
/// the call site. Samples are stored interleaved.
class StreamRing {
 public:
  void reset(std::size_t channels, std::size_t capacity_frames, double sample_rate);

  /// Re-origins an empty ring: the next pushed frame gets absolute index
  /// `frame`. Only valid before any push (or straight after reset).
  void seek(std::uint64_t frame);

  /// `interleaved.size()` must be a multiple of the channel count.
  void push(std::span<const float> interleaved);
  void push(const audio::MultiBuffer& chunk);

  /// Deinterleaves [begin, end) into a capture; `begin` is clamped to the
  /// oldest retained frame (the caller sees the loss via oldest_frame()).
  [[nodiscard]] audio::MultiBuffer extract(std::uint64_t begin, std::uint64_t end) const;

  /// extract() into a caller-owned capture, reusing its channel storage —
  /// the streaming feed path calls this once per VAD frame, so the steady
  /// state is allocation-free.
  void extract_into(std::uint64_t begin, std::uint64_t end,
                    audio::MultiBuffer& out) const;

  [[nodiscard]] std::uint64_t total_frames() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t oldest_frame() const noexcept {
    return total_ > first_ + capacity_ ? total_ - capacity_ : first_;
  }
  [[nodiscard]] std::size_t capacity_frames() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t channels() const noexcept { return channels_; }

 private:
  std::vector<audio::Sample> data_;  ///< capacity_ * channels_, interleaved
  std::size_t channels_ = 0;
  std::size_t capacity_ = 0;
  std::uint64_t total_ = 0;  ///< absolute index one past the newest frame
  std::uint64_t first_ = 0;  ///< absolute index of the first frame ever pushed
  double sample_rate_ = audio::kDefaultSampleRate;
};

class StreamingDetector {
 public:
  /// The pipeline outlives the detector; only const scoring is used.
  StreamingDetector(const core::HeadTalkPipeline& pipeline, std::size_t channels,
                    double sample_rate, StreamingDetectorConfig config = {});

  /// Optional per-thread scoring scratch (see core/scoring_workspace.h);
  /// must outlive the detector and belong to the driving thread.
  void set_workspace(core::ScoringWorkspace* workspace) noexcept {
    workspace_ = workspace;
  }

  /// Feeds one chunk of interleaved float32 frames (the serve wire format);
  /// returns the decisions whose segments closed inside this chunk.
  std::vector<DecisionEvent> push_interleaved(std::span<const float> interleaved);

  /// Same, from a deinterleaved capture (local tools). Channel count and
  /// sample rate must match the detector's.
  std::vector<DecisionEvent> push(const audio::MultiBuffer& chunk);

  /// End of stream: closes and scores any open segment.
  std::vector<DecisionEvent> flush();

  /// True while an utterance is open — a drain should wait for it.
  [[nodiscard]] bool in_utterance() const noexcept { return endpointer_.in_utterance(); }

  [[nodiscard]] std::uint64_t frames_streamed() const noexcept {
    return ring_.total_frames();
  }
  [[nodiscard]] std::uint64_t segments() const noexcept { return endpointer_.segments(); }
  [[nodiscard]] std::uint64_t force_closed() const noexcept {
    return endpointer_.force_closed();
  }
  [[nodiscard]] std::uint64_t discarded() const noexcept {
    return endpointer_.discarded();
  }
  /// HeadTalk open-session flag after the last decision.
  [[nodiscard]] bool session_open() const noexcept { return session_open_; }
  [[nodiscard]] double sample_rate() const noexcept { return vad_.sample_rate(); }
  [[nodiscard]] std::size_t channels() const noexcept { return ring_.channels(); }
  [[nodiscard]] const Vad& vad() const noexcept { return vad_; }
  [[nodiscard]] const StreamingDetectorConfig& config() const noexcept { return config_; }

 private:
  /// Runs VAD + endpointing over reference-channel samples already pushed
  /// to the ring, scoring every segment that closes. In HeadTalk mode the
  /// open segment's samples are fed to the incremental extractor once per
  /// VAD frame, so a close only pays the residual feed + finalize.
  void advance(std::span<const audio::Sample> reference,
               std::vector<DecisionEvent>& out);
  [[nodiscard]] DecisionEvent score_segment(const Segment& segment);

  /// Opens the incremental extractor for a segment starting at absolute
  /// sample frame `begin` (clamped to the ring's oldest retained frame;
  /// the loss accumulates in op_truncated_).
  void open_op(std::uint64_t begin);
  /// Feeds ring samples [fed_end_, target) to the open extractor.
  void feed_op_to(std::uint64_t target);
  /// Absolute sample frame up to which the open segment may be fed now:
  /// the close end can never exceed last_active + 1 + post_roll frames, so
  /// everything before that bound is final segment audio already.
  [[nodiscard]] std::uint64_t feed_target() const;

  const core::HeadTalkPipeline& pipeline_;
  core::ScoringWorkspace* workspace_ = nullptr;  ///< not owned; may be null
  StreamingDetectorConfig config_;
  Vad vad_;
  Endpointer endpointer_;
  StreamRing ring_;
  std::vector<audio::Sample> reference_;  ///< channel-0 scratch for one chunk
  std::uint64_t discards_reported_ = 0;   ///< endpointer discards mirrored to obs
  bool session_open_ = false;
  /// Incremental per-segment extraction state (HeadTalk mode). The op is
  /// begun when the endpointer confirms a segment, fed frame by frame
  /// while the segment is open, finalized (or abandoned, on a discard)
  /// when it ends.
  core::IncrementalExtractor op_;
  bool op_open_ = false;
  std::uint64_t op_fed_end_ = 0;     ///< absolute sample frame fed so far
  std::uint64_t op_truncated_ = 0;   ///< frames the open segment lost to overwrite
  audio::MultiBuffer feed_buffer_;   ///< reused per-frame extraction scratch
};

}  // namespace headtalk::stream
