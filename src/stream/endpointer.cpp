#include "stream/endpointer.h"

#include <algorithm>

namespace headtalk::stream {

Endpointer::Endpointer(EndpointerConfig config) : config_(config) {
  // Degenerate configs collapse to the nearest sane machine rather than
  // dividing time by zero: an onset needs at least one frame, a gap of at
  // least one frame must be able to close, and the trailing context cannot
  // exceed the gap that triggered the close.
  config_.onset_frames = std::max<std::size_t>(1, config_.onset_frames);
  config_.hangover_frames = std::max<std::size_t>(1, config_.hangover_frames);
  config_.post_roll_frames = std::min(config_.post_roll_frames, config_.hangover_frames);
  config_.max_utterance_frames = std::max<std::size_t>(1, config_.max_utterance_frames);
}

void Endpointer::reset() {
  state_ = State::kIdle;
  next_index_ = 0;
  active_run_ = 0;
  gap_run_ = 0;
  last_end_ = 0;
  segments_ = 0;
  force_closed_ = 0;
  discarded_ = 0;
}

std::optional<Segment> Endpointer::close(std::uint64_t end, bool force) {
  state_ = State::kIdle;
  gap_run_ = 0;
  const Segment segment{begin_, end, force};
  last_end_ = end;
  if (segment.frames() < config_.min_utterance_frames) {
    ++discarded_;
    return std::nullopt;
  }
  ++segments_;
  if (force) ++force_closed_;
  return segment;
}

std::optional<Segment> Endpointer::on_frame(bool active) {
  const std::uint64_t index = next_index_++;

  if (state_ == State::kIdle) {
    if (!active) return std::nullopt;
    onset_start_ = index;
    active_run_ = 0;
    state_ = State::kOnset;
    // fall through to the onset handling below for this same frame
  }

  if (state_ == State::kOnset) {
    if (!active) {
      state_ = State::kIdle;  // false start: too short to confirm
      return std::nullopt;
    }
    ++active_run_;
    if (active_run_ < config_.onset_frames) return std::nullopt;
    // Onset confirmed: open the segment with pre-roll, clamped so segments
    // never overlap each other or reach before the stream start. The clamp
    // is against last_end_, which close() records as the *post-rolled* end
    // (last_active + 1 + post_roll, or the force-close boundary) — not the
    // last active frame — so a pre-roll reaching into the previous
    // segment's post-roll tail is cut at the tail's end, never before it.
    // Back-to-back utterances therefore tile: next begin >= previous end.
    const std::uint64_t pre = config_.pre_roll_frames;
    begin_ = onset_start_ > pre ? onset_start_ - pre : 0;
    begin_ = std::max(begin_, last_end_);
    last_active_ = index;
    state_ = State::kInUtterance;
    if (index + 1 - begin_ >= config_.max_utterance_frames) return close(index + 1, true);
    return std::nullopt;
  }

  if (state_ == State::kInUtterance) {
    if (active) {
      last_active_ = index;
    } else {
      gap_run_ = 1;
      state_ = State::kHangover;
    }
    if (index + 1 - begin_ >= config_.max_utterance_frames) return close(index + 1, true);
    return std::nullopt;
  }

  // State::kHangover
  if (active) {
    // Gap shorter than the hangover: same utterance continues.
    last_active_ = index;
    state_ = State::kInUtterance;
    if (index + 1 - begin_ >= config_.max_utterance_frames) return close(index + 1, true);
    return std::nullopt;
  }
  ++gap_run_;
  if (gap_run_ >= config_.hangover_frames) {
    const std::uint64_t end =
        std::min<std::uint64_t>(index + 1, last_active_ + 1 + config_.post_roll_frames);
    return close(end, false);
  }
  if (index + 1 - begin_ >= config_.max_utterance_frames) return close(index + 1, true);
  return std::nullopt;
}

std::optional<Segment> Endpointer::flush() {
  if (state_ == State::kIdle) return std::nullopt;
  if (state_ == State::kOnset) {
    state_ = State::kIdle;  // never confirmed; nothing to emit
    return std::nullopt;
  }
  const std::uint64_t end =
      std::min<std::uint64_t>(next_index_, last_active_ + 1 + config_.post_roll_frames);
  return close(end, false);
}

}  // namespace headtalk::stream
