#include "stream/vad.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/spectral.h"

namespace headtalk::stream {
namespace {

constexpr double kSilenceDb = -120.0;

double rms_db(std::span<const audio::Sample> frame) {
  if (frame.empty()) return kSilenceDb;  // no samples: silence, not 0/0 NaN
  double acc = 0.0;
  for (const audio::Sample x : frame) acc += x * x;
  const double rms = std::sqrt(acc / static_cast<double>(frame.size()));
  if (rms <= 0.0) return kSilenceDb;
  return std::max(kSilenceDb, 20.0 * std::log10(rms));
}

}  // namespace

Vad::Vad(VadConfig config, double sample_rate)
    : config_(config),
      sample_rate_(sample_rate),
      frame_length_(static_cast<std::size_t>(
          std::max(1.0, config.frame_ms * sample_rate / 1000.0))),
      fft_size_(dsp::next_pow2(frame_length_)),
      noise_floor_db_(config.noise_floor_init_db) {
  if (sample_rate <= 0.0) throw std::invalid_argument("Vad: bad sample rate");
  if (config.frame_ms <= 0.0) throw std::invalid_argument("Vad: bad frame_ms");
  pending_.reserve(frame_length_);
}

void Vad::reset() {
  pending_.clear();
  noise_floor_db_ = config_.noise_floor_init_db;
  prev_active_ = false;
  hangover_ = 0;
  next_index_ = 0;
}

std::vector<VadFrame> Vad::push(std::span<const audio::Sample> samples) {
  std::vector<VadFrame> out;
  std::size_t consumed = 0;
  // Top up a partial frame left by the previous push first.
  if (!pending_.empty()) {
    const std::size_t need = frame_length_ - pending_.size();
    const std::size_t take = std::min(need, samples.size());
    pending_.insert(pending_.end(), samples.begin(),
                    samples.begin() + static_cast<std::ptrdiff_t>(take));
    consumed = take;
    if (pending_.size() < frame_length_) return out;
    out.push_back(classify(pending_));
    pending_.clear();
  }
  while (samples.size() - consumed >= frame_length_) {
    out.push_back(classify(samples.subspan(consumed, frame_length_)));
    consumed += frame_length_;
  }
  pending_.insert(pending_.end(), samples.begin() + static_cast<std::ptrdiff_t>(consumed),
                  samples.end());
  return out;
}

VadFrame Vad::classify(std::span<const audio::Sample> frame) {
  VadFrame result;
  result.index = next_index_++;
  result.energy_db = rms_db(frame);

  // The flatness FFT only matters near the decision boundary; frames far
  // below the absolute gate skip it (the common case on an idle stream)
  // and keep the NaN "not measured" marker (see VadFrame::has_flatness).
  if (result.energy_db > config_.min_energy_db - 6.0) {
    dsp::magnitude_spectrum_into(frame, fft_size_, magnitude_, fft_scratch_);
    result.flatness =
        dsp::spectral_flatness(magnitude_, fft_size_, sample_rate_,
                               config_.flatness_low_hz, config_.flatness_high_hz);
  }
  result.noise_floor_db = noise_floor_db_;

  const double snr_needed = prev_active_ ? config_.offset_snr_db : config_.onset_snr_db;
  const bool energetic = result.energy_db >= config_.min_energy_db &&
                         result.energy_db >= noise_floor_db_ + snr_needed;
  // An unmeasured flatness never counts as speech-like; such frames are at
  // least 6 dB under the absolute gate, so they could not be active anyway
  // and the overall decision is unchanged.
  const bool speech_like =
      result.has_flatness() && result.flatness <= config_.flatness_max;
  const bool raw_active = energetic && speech_like;
  prev_active_ = raw_active;

  // Asymmetric floor tracking. Every *reported*-active frame — raw-active
  // or hangover tail — is excluded, not just raw-active ones: hangover
  // frames are inter-word dips and utterance tails whose energy is still
  // mostly speech, and adapting on them let a long utterance ratchet the
  // floor up word by word until its own offsets stopped clearing the SNR
  // margin and the segment broke apart. Inactive frames adapt — up slowly
  // (a loudening room; damped further when the frame is onset-loud, see
  // noise_adapt_up_speech_damping), down fast (a quieting one).
  const bool reported_active = raw_active || hangover_ > 0;
  if (!reported_active) {
    double rate = config_.noise_adapt_down;
    if (result.energy_db > noise_floor_db_) {
      rate = config_.noise_adapt_up;
      if (result.energy_db >= noise_floor_db_ + config_.onset_snr_db) {
        rate *= config_.noise_adapt_up_speech_damping;
      }
    }
    noise_floor_db_ += rate * (result.energy_db - noise_floor_db_);
  }

  if (raw_active) {
    hangover_ = config_.hangover_frames;
    result.active = true;
  } else if (hangover_ > 0) {
    --hangover_;
    result.active = true;  // tail hangover: keep weak endings attached
  }
  return result;
}

}  // namespace headtalk::stream
