#include "sim/datasets.h"

namespace headtalk::sim {

std::vector<SampleSpec> SpecGrid::build() const {
  std::vector<SampleSpec> out;
  out.reserve(rooms.size() * placements.size() * devices.size() * words.size() *
              locations.size() * angles.size() * sessions.size() * repetitions *
              users.size());
  for (auto room : rooms) {
    for (auto placement : placements) {
      for (auto device : devices) {
        for (auto word : words) {
          for (const auto& location : locations) {
            for (double angle : angles) {
              for (unsigned session : sessions) {
                for (unsigned rep = 0; rep < repetitions; ++rep) {
                  for (unsigned user : users) {
                    SampleSpec spec;
                    spec.room = room;
                    spec.placement = placement;
                    spec.device = device;
                    spec.word = word;
                    spec.location = location;
                    spec.angle_deg = angle;
                    spec.session = session;
                    spec.repetition = rep;
                    spec.user_id = user;
                    spec.loudness_db = loudness_db;
                    spec.mouth_height_m = mouth_height_m;
                    spec.replay = replay;
                    spec.ambient_type = ambient_type;
                    spec.ambient_spl_db = ambient_spl_db;
                    spec.occlusion = occlusion;
                    spec.device_height_offset_m = device_height_offset_m;
                    spec.temporal_days = temporal_days;
                    out.push_back(spec);
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return out;
}

ProtocolScale full_protocol() {
  ProtocolScale s;
  s.sessions = 2;
  s.repetitions = 2;
  s.all_locations = true;
  return s;
}

namespace {

SpecGrid scaled_grid(const ProtocolScale& scale) {
  SpecGrid grid;
  grid.sessions.clear();
  for (unsigned s = 0; s < scale.sessions; ++s) grid.sessions.push_back(s);
  grid.repetitions = scale.repetitions;
  grid.locations = scale.all_locations ? all_grid_locations() : middle_grid_locations();
  return grid;
}

}  // namespace

std::vector<SampleSpec> dataset1(const std::vector<RoomId>& rooms,
                                 const std::vector<room::DeviceId>& devices,
                                 const std::vector<speech::WakeWord>& words,
                                 const ProtocolScale& scale) {
  SpecGrid grid = scaled_grid(scale);
  grid.rooms = rooms;
  grid.devices = devices;
  grid.words = words;
  return grid.build();
}

std::vector<SampleSpec> dataset1_extended_angles(const ProtocolScale& scale) {
  SpecGrid grid = scaled_grid(scale);
  grid.angles = extended_angles();
  return grid.build();
}

std::vector<SampleSpec> dataset2_replay(const ProtocolScale& scale) {
  SpecGrid grid = scaled_grid(scale);
  grid.words = {speech::WakeWord::kComputer, speech::WakeWord::kHeyAssistant};
  grid.replay = ReplaySource::kHighEnd;
  grid.mouth_height_m = 1.20;  // loudspeaker on a stand
  return grid.build();
}

std::vector<SampleSpec> dataset3_temporal(double days, const ProtocolScale& scale) {
  SpecGrid grid = scaled_grid(scale);
  grid.locations = middle_grid_locations();
  grid.temporal_days = days;
  return grid.build();
}

std::vector<SampleSpec> dataset4_ambient(room::NoiseType type,
                                         const ProtocolScale& scale, double spl_db) {
  SpecGrid grid = scaled_grid(scale);
  grid.locations = middle_grid_locations();
  grid.sessions = {0};
  grid.repetitions = std::max(2u, scale.repetitions);
  grid.ambient_type = type;
  grid.ambient_spl_db = spl_db;
  return grid.build();
}

std::vector<SampleSpec> dataset5_sitting(const ProtocolScale& scale) {
  SpecGrid grid = scaled_grid(scale);
  grid.locations = middle_grid_locations();
  grid.sessions = {0};
  grid.repetitions = std::max(2u, scale.repetitions);
  grid.mouth_height_m = kSittingMouthHeight;
  return grid.build();
}

std::vector<SampleSpec> dataset6_loudness(double spl_db, const ProtocolScale& scale) {
  SpecGrid grid = scaled_grid(scale);
  grid.locations = middle_grid_locations();
  grid.sessions = {0};
  grid.repetitions = std::max(2u, scale.repetitions);
  grid.loudness_db = spl_db;
  return grid.build();
}

std::vector<SampleSpec> dataset7_objects(OcclusionLevel occlusion, bool raised,
                                         const ProtocolScale& scale) {
  SpecGrid grid = scaled_grid(scale);
  grid.locations = middle_grid_locations();
  grid.sessions = {0};
  grid.repetitions = std::max(2u, scale.repetitions);
  grid.occlusion = occlusion;
  grid.device_height_offset_m = raised ? 0.148 : 0.0;
  return grid.build();
}

std::vector<SampleSpec> dataset8_multi_user(unsigned user_count, unsigned repetitions) {
  SpecGrid grid;
  grid.words = {speech::WakeWord::kHeyAssistant};  // Ahuja et al.'s phrase
  grid.locations = all_grid_locations();
  grid.angles = ahuja_angles();
  grid.sessions = {0};
  grid.repetitions = repetitions;
  grid.users.clear();
  for (unsigned u = 1; u <= user_count; ++u) grid.users.push_back(u);
  return grid.build();
}

}  // namespace headtalk::sim
