#include "sim/experiment.h"

#include <atomic>
#include <set>

#include "core/scoring_workspace.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace headtalk::sim {
namespace {

std::vector<OrientationSample> collect(const Collector& collector,
                                       std::span<const SampleSpec> specs, bool progress,
                                       bool liveness, unsigned jobs) {
  obs::ScopedSpan span(liveness ? "sim.collect_liveness" : "sim.collect_orientation");
  // Pre-sized slots: worker i writes out[i] only, so the result is
  // bit-identical to the serial loop no matter how renders interleave.
  std::vector<OrientationSample> out(specs.size());
  std::atomic<std::size_t> done{0};
  util::parallel_for(specs.size(), util::resolve_jobs(jobs), [&](std::size_t i) {
    // One scoring workspace per pool thread: cache-miss extractions reuse
    // warm scratch buffers across specs (features stay bit-identical).
    thread_local core::ScoringWorkspace workspace;
    out[i].spec = specs[i];
    out[i].features = liveness ? collector.liveness_features(specs[i], &workspace)
                               : collector.orientation_features(specs[i], &workspace);
    const std::size_t finished = done.fetch_add(1, std::memory_order_relaxed) + 1;
    // Intermediate progress at debug (HEADTALK_LOG=debug), completion at
    // info, so default runs print one line per collection, not hundreds.
    if (progress && (finished % 25 == 0 || finished == specs.size())) {
      obs::log(finished == specs.size() ? obs::LogLevel::kInfo : obs::LogLevel::kDebug,
               "sim.collect.progress", {{"done", finished}, {"total", specs.size()}});
    }
  });
  return out;
}

}  // namespace

std::vector<OrientationSample> collect_orientation(const Collector& collector,
                                                   std::span<const SampleSpec> specs,
                                                   bool progress, unsigned jobs) {
  return collect(collector, specs, progress, /*liveness=*/false, jobs);
}

std::vector<OrientationSample> collect_liveness(const Collector& collector,
                                                std::span<const SampleSpec> specs,
                                                bool progress, unsigned jobs) {
  return collect(collector, specs, progress, /*liveness=*/true, jobs);
}

std::vector<OrientationSample> filter(
    std::span<const OrientationSample> samples,
    const std::function<bool(const SampleSpec&)>& predicate) {
  std::vector<OrientationSample> out;
  for (const auto& s : samples) {
    if (predicate(s.spec)) out.push_back(s);
  }
  return out;
}

ml::Dataset facing_dataset(std::span<const OrientationSample> samples,
                           core::FacingDefinition definition) {
  ml::Dataset data;
  for (const auto& s : samples) {
    switch (core::training_arc(definition, s.spec.angle_deg)) {
      case core::TrainingArc::kFacing:
        data.add(s.features, core::kLabelFacing);
        break;
      case core::TrainingArc::kNonFacing:
        data.add(s.features, core::kLabelNonFacing);
        break;
      case core::TrainingArc::kExcluded:
        break;
    }
  }
  return data;
}

ml::Dataset ground_truth_dataset(std::span<const OrientationSample> samples) {
  ml::Dataset data;
  for (const auto& s : samples) {
    data.add(s.features, core::is_facing_ground_truth(s.spec.angle_deg)
                             ? core::kLabelFacing
                             : core::kLabelNonFacing);
  }
  return data;
}

EvalMetrics evaluate_orientation(const core::OrientationClassifierConfig& config,
                                 const ml::Dataset& train, const ml::Dataset& test) {
  core::OrientationClassifier classifier(config);
  classifier.train(train);
  std::vector<int> predictions;
  predictions.reserve(test.size());
  for (const auto& row : test.features) predictions.push_back(classifier.predict(row));
  const auto m = ml::binary_metrics(test.labels, predictions, core::kLabelFacing);
  EvalMetrics out;
  out.accuracy = m.accuracy();
  out.precision = m.precision();
  out.recall = m.recall();
  out.f1 = m.f1();
  out.far = m.far();
  out.frr = m.frr();
  return out;
}

std::vector<EvalMetrics> cross_session_evaluate(
    std::span<const OrientationSample> samples, core::FacingDefinition definition,
    const core::OrientationClassifierConfig& config) {
  std::set<unsigned> sessions;
  for (const auto& s : samples) sessions.insert(s.spec.session);

  std::vector<EvalMetrics> results;
  for (unsigned train_s : sessions) {
    for (unsigned test_s : sessions) {
      if (train_s == test_s) continue;
      const auto train_samples =
          filter(samples, [&](const SampleSpec& s) { return s.session == train_s; });
      const auto test_samples =
          filter(samples, [&](const SampleSpec& s) { return s.session == test_s; });
      const auto train = facing_dataset(train_samples, definition);
      const auto test = facing_dataset(test_samples, definition);
      if (train.empty() || test.empty()) continue;
      results.push_back(evaluate_orientation(config, train, test));
    }
  }
  return results;
}

EvalMetrics mean_metrics(std::span<const EvalMetrics> metrics) {
  EvalMetrics out;
  if (metrics.empty()) return out;
  for (const auto& m : metrics) {
    out.accuracy += m.accuracy;
    out.precision += m.precision;
    out.recall += m.recall;
    out.f1 += m.f1;
    out.far += m.far;
    out.frr += m.frr;
  }
  const double n = static_cast<double>(metrics.size());
  out.accuracy /= n;
  out.precision /= n;
  out.recall /= n;
  out.f1 /= n;
  out.far /= n;
  out.frr /= n;
  return out;
}

}  // namespace headtalk::sim
