// Continuous multi-utterance scene composer for the streaming subsystem.
//
// A streaming scene is a single long multichannel capture: a silent
// lead-in, each requested utterance rendered in the collector's simulated
// room, silence gaps between them, and a tail — with one continuous
// ambient-noise floor laid over the whole stream so utterance boundaries
// are acoustically honest (no per-render noise seams the endpointer could
// key on). The returned truth records where each utterance landed, which
// is what bench_stream_latency scores segmentation recall against.
#pragma once

#include <cstdint>
#include <vector>

#include "audio/sample_buffer.h"
#include "room/noise.h"
#include "sim/collector.h"
#include "sim/spec.h"

namespace headtalk::sim {

struct StreamSceneConfig {
  double lead_in_s = 1.0;  ///< silence before the first utterance
  double gap_s = 0.8;      ///< silence between consecutive utterances
  double tail_s = 0.8;     ///< silence after the last utterance
  /// Continuous ambient floor over the whole stream; < 0 disables it.
  double ambient_spl_db = 36.0;
  room::NoiseType ambient_type = room::NoiseType::kWhite;
  std::uint32_t noise_seed = 0x57AE;
  /// Microphone self-noise on the per-utterance renders.
  bool self_noise = true;
};

/// Ground truth for one utterance inside the composed stream.
struct StreamUtterance {
  SampleSpec spec;
  double begin_seconds = 0.0;
  double end_seconds = 0.0;  ///< exclusive
};

struct StreamScene {
  audio::MultiBuffer audio;
  std::vector<StreamUtterance> utterances;
};

/// Renders each spec through `collector.capture()` (ambient off — the floor
/// is added once over the assembly) and splices them into one continuous
/// capture. Specs must all target the same device/channel geometry.
[[nodiscard]] StreamScene render_stream_scene(const Collector& collector,
                                              const std::vector<SampleSpec>& specs,
                                              const StreamSceneConfig& config = {});

}  // namespace headtalk::sim
