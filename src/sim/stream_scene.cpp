#include "sim/stream_scene.h"

#include <algorithm>
#include <stdexcept>

namespace headtalk::sim {

StreamScene render_stream_scene(const Collector& collector,
                                const std::vector<SampleSpec>& specs,
                                const StreamSceneConfig& config) {
  if (specs.empty()) throw std::invalid_argument("stream scene needs >= 1 spec");
  if (config.lead_in_s < 0.0 || config.gap_s < 0.0 || config.tail_s < 0.0) {
    throw std::invalid_argument("stream scene timings must be non-negative");
  }

  CaptureOptions render;
  render.ambient = false;  // one continuous floor is laid over the assembly
  render.self_noise = config.self_noise;

  std::vector<audio::MultiBuffer> captures;
  captures.reserve(specs.size());
  for (const auto& spec : specs) {
    captures.push_back(collector.capture(spec, render));
    if (captures.back().channel_count() != captures.front().channel_count() ||
        captures.back().sample_rate() != captures.front().sample_rate()) {
      throw std::invalid_argument(
          "stream scene specs must share one device/channel geometry");
    }
  }

  const double fs = captures.front().sample_rate();
  const std::size_t channels = captures.front().channel_count();
  const auto to_frames = [fs](double seconds) {
    return static_cast<std::size_t>(seconds * fs + 0.5);
  };

  std::size_t total = to_frames(config.lead_in_s) + to_frames(config.tail_s) +
                      to_frames(config.gap_s) * (captures.size() - 1);
  for (const auto& capture : captures) total += capture.frames();

  StreamScene scene{audio::MultiBuffer(channels, total, fs), {}};
  scene.utterances.reserve(specs.size());

  std::size_t cursor = to_frames(config.lead_in_s);
  for (std::size_t i = 0; i < captures.size(); ++i) {
    const auto& capture = captures[i];
    for (std::size_t c = 0; c < channels; ++c) {
      std::copy_n(capture.channel(c).samples().data(), capture.frames(),
                  scene.audio.channel(c).samples().data() + cursor);
    }
    StreamUtterance truth;
    truth.spec = specs[i];
    truth.begin_seconds = static_cast<double>(cursor) / fs;
    truth.end_seconds = static_cast<double>(cursor + capture.frames()) / fs;
    scene.utterances.push_back(truth);
    cursor += capture.frames() + to_frames(config.gap_s);
  }

  if (config.ambient_spl_db >= 0.0) {
    room::add_diffuse_noise(scene.audio, config.ambient_type,
                            config.ambient_spl_db, config.noise_seed);
  }
  return scene;
}

}  // namespace headtalk::sim
