// Shared experiment harness: spec collection with progress reporting,
// dataset assembly under facing definitions, and the paper's cross-session
// evaluation protocol (§IV-A: "select one session's data as the training
// set, use the remaining session as the test set, and report the average").
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "core/facing.h"
#include "core/orientation_classifier.h"
#include "ml/dataset.h"
#include "ml/metrics.h"
#include "sim/collector.h"
#include "sim/spec.h"

namespace headtalk::sim {

struct OrientationSample {
  SampleSpec spec;
  ml::FeatureVector features;
};

/// Renders/loads orientation features for every spec. Prints a progress
/// line to stderr when `progress` (rendering is the dominant cost).
///
/// `jobs` workers render concurrently (0 = auto: $HEADTALK_JOBS, else all
/// hardware threads). Each spec renders deterministically and writes into
/// its own pre-sized slot, so the returned vector — order and values — is
/// bit-identical for every jobs count, and downstream train/test splits
/// are unaffected by parallelism.
[[nodiscard]] std::vector<OrientationSample> collect_orientation(
    const Collector& collector, std::span<const SampleSpec> specs,
    bool progress = true, unsigned jobs = 0);

/// Same for liveness features.
[[nodiscard]] std::vector<OrientationSample> collect_liveness(
    const Collector& collector, std::span<const SampleSpec> specs,
    bool progress = true, unsigned jobs = 0);

/// Keeps the samples satisfying a predicate on the spec.
[[nodiscard]] std::vector<OrientationSample> filter(
    std::span<const OrientationSample> samples,
    const std::function<bool(const SampleSpec&)>& predicate);

/// Builds a labelled dataset from the samples whose angle falls in the
/// definition's facing / non-facing training arcs (others are dropped).
[[nodiscard]] ml::Dataset facing_dataset(std::span<const OrientationSample> samples,
                                         core::FacingDefinition definition);

/// Builds a dataset labelled by ground truth (|angle| <= 30 is facing),
/// keeping every sample — used to test borderline angles.
[[nodiscard]] ml::Dataset ground_truth_dataset(std::span<const OrientationSample> samples);

struct EvalMetrics {
  double accuracy = 0.0, precision = 0.0, recall = 0.0, f1 = 0.0;
  double far = 0.0, frr = 0.0;
};

/// Trains the configured classifier on `train` and scores it on `test`
/// (positive class = facing).
[[nodiscard]] EvalMetrics evaluate_orientation(
    const core::OrientationClassifierConfig& config, const ml::Dataset& train,
    const ml::Dataset& test);

/// The paper's cross-session protocol: for each ordered session pair
/// (train_s != test_s), train on facing_dataset(train_s) and test on
/// facing_dataset(test_s); returns the per-pair metrics.
[[nodiscard]] std::vector<EvalMetrics> cross_session_evaluate(
    std::span<const OrientationSample> samples, core::FacingDefinition definition,
    const core::OrientationClassifierConfig& config = {});

/// Averages metric structs.
[[nodiscard]] EvalMetrics mean_metrics(std::span<const EvalMetrics> metrics);

}  // namespace headtalk::sim
