#include "sim/collector.h"

#include <cmath>
#include <memory>
#include <random>

#include "audio/gain.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "room/scene.h"
#include "speech/directivity.h"
#include "speech/loudspeaker.h"
#include "speech/speaker_profile.h"
#include "speech/synthesizer.h"

namespace headtalk::sim {
namespace {

std::uint32_t seed_of(std::string_view key, std::uint32_t base, std::uint32_t salt) {
  return static_cast<std::uint32_t>(fnv1a64(key)) ^ (base * 2654435761u) ^ salt;
}

}  // namespace

Collector::Collector(CollectorConfig config)
    : config_(std::move(config)),
      cache_(config_.cache_enabled ? FeatureCache::default_directory()
                                   : std::filesystem::path{},
             config_.cache_limit_bytes != 0 ? config_.cache_limit_bytes
                                            : FeatureCache::default_limit_bytes()) {}

std::vector<std::size_t> Collector::channels_for(room::DeviceId device) const {
  if (!config_.channels.empty()) return config_.channels;
  return room::DeviceSpec::get(device).default_channels;
}

core::OrientationFeatureExtractor Collector::orientation_extractor(
    const SampleSpec& spec) const {
  const auto device = room::DeviceSpec::get(spec.device);
  const auto channels = channels_for(spec.device);
  core::OrientationFeatureConfig cfg;
  cfg.max_mic_distance_m = device.max_pair_distance(channels);
  return core::OrientationFeatureExtractor(cfg);
}

room::Scene Collector::scene(const SampleSpec& spec) const {
  auto room_model = make_room(spec.room);
  auto pose = placement_pose(spec.room, spec.placement);
  pose.center.z += spec.device_height_offset_m;
  const auto day_tag = static_cast<std::uint32_t>(spec.temporal_days);
  const auto scatter_seed =
      (config_.base_seed * 31u) ^ (static_cast<std::uint32_t>(spec.room) << 8) ^
      (static_cast<std::uint32_t>(spec.placement) << 12) ^ (day_tag * 2246822519u);
  const auto session_seed =
      room_model.dynamic_clutter ? (spec.session + 1) * 2654435761u + day_tag : 0u;
  return room::Scene(room_model, room::DeviceSpec::get(spec.device), pose, scatter_seed,
                     session_seed);
}

speech::SpeakerProfile Collector::speaker(unsigned user_id) const {
  std::mt19937 id_rng(config_.base_seed + 7700 * user_id);
  return speech::SpeakerProfile::random(id_rng);
}

audio::MultiBuffer Collector::capture(const SampleSpec& spec) const {
  return capture(spec, CaptureOptions{});
}

audio::MultiBuffer Collector::capture(const SampleSpec& spec,
                                      const CaptureOptions& capture_options) const {
  obs::ScopedSpan span("sim.render");
  static obs::Histogram& render_seconds =
      obs::Registry::global().histogram("sim.render_seconds");
  obs::Timer timer(&render_seconds);
  const std::string key = spec.key();

  // --- Speaker identity (with temporal drift) ---
  std::mt19937 id_rng(config_.base_seed + 7700 * spec.user_id);
  auto profile = speech::SpeakerProfile::random(id_rng);
  // Other users differ physically, not just acoustically: stature moves the
  // mouth height, and head/torso geometry changes the radiation pattern —
  // both shift the array features and are what makes the cross-user setting
  // (§IV-B14) genuinely harder than same-user. User 0 (the enrolled user)
  // is the calibration reference.
  double mouth_height = spec.mouth_height_m;
  double user_directivity = config_.directivity_strength;
  if (spec.user_id > 0) {
    mouth_height += std::uniform_real_distribution<double>(-0.13, 0.15)(id_rng);
    user_directivity *= std::uniform_real_distribution<double>(0.75, 1.3)(id_rng);
  }
  if (spec.temporal_days > 0.0) {
    std::mt19937 drift_rng(seed_of(key, config_.base_seed, 0x5d5d) ^
                           static_cast<std::uint32_t>(spec.temporal_days * 16.0) ^
                           (7700 * spec.user_id));
    profile = profile.drifted(spec.temporal_days, drift_rng);
  }

  // --- Dry utterance ---
  const auto synth_seed = seed_of(key, config_.base_seed, 0xA001);
  audio::Buffer dry = speech::synthesize_wake_word(spec.word, profile, synth_seed);

  // --- Replay chain (mechanical source) ---
  std::unique_ptr<speech::Directivity> directivity;
  if (spec.replay == ReplaySource::kNone) {
    directivity = std::make_unique<speech::HumanSpeechDirectivity>(user_directivity);
  } else {
    speech::LoudspeakerModel model;
    switch (spec.replay) {
      case ReplaySource::kHighEnd:
        model = speech::LoudspeakerModel::high_end();
        break;
      case ReplaySource::kSmartphone:
        model = speech::LoudspeakerModel::smartphone();
        break;
      default:
        model = speech::LoudspeakerModel::television();
        break;
    }
    dry = speech::replay_through(dry, model, seed_of(key, config_.base_seed, 0xA002));
    directivity = std::make_unique<speech::LoudspeakerDirectivity>(model.diaphragm_radius_m);
  }
  audio::set_spl(dry, spec.loudness_db);

  // --- Scene (room state changes across days and, in dynamic-clutter
  // rooms, across sessions; see scene()) ---
  const room::Scene scene = this->scene(spec);
  const auto& pose = scene.pose();

  // --- Source pose with human placement jitter ---
  std::mt19937 jitter_rng(seed_of(key, config_.base_seed, 0xB003));
  std::normal_distribution<double> gauss(0.0, 1.0);
  auto position = grid_position(spec.room, spec.placement, spec.location, mouth_height);
  position.x += config_.position_jitter_m * gauss(jitter_rng);
  position.y += config_.position_jitter_m * gauss(jitter_rng);
  // Mouth height wobbles trial-to-trial too (posture, head tilt); without
  // this the classifier can latch onto the exact floor-reflection comb
  // positions, which would make any posture change look catastrophic.
  position.z += 1.5 * config_.position_jitter_m * gauss(jitter_rng);
  const double angle =
      spec.angle_deg + config_.angle_jitter_deg * gauss(jitter_rng);
  room::SourcePose source{position, facing_azimuth(position, pose, angle)};

  // --- Render options ---
  room::RenderOptions options;
  options.ism.max_order = config_.ism_order;
  options.rir_length_s = config_.rir_length_s;
  options.noise_seed = seed_of(key, config_.base_seed, 0xC004);
  options.channels = channels_for(spec.device);
  options.add_ambient = capture_options.ambient;
  options.add_self_noise = capture_options.self_noise;
  if (spec.occlusion == OcclusionLevel::kPartial) {
    options.occlusion = room::Occlusion::partial();
  } else if (spec.occlusion == OcclusionLevel::kFull) {
    options.occlusion = room::Occlusion::full();
  }

  auto capture = scene.render(dry, source, *directivity, options);

  // --- Intentional ambient interference (§IV-B10) ---
  // The paper *plays* its noise (white noise / a TV series) in the room, so
  // it reaches the array as a spatially coherent point source — which is
  // what corrupts the inter-channel features, unlike the diffuse room
  // floor. We park the noise loudspeaker off to the device's side.
  if (spec.ambient_spl_db >= 0.0) {
    const double fs = dry.sample_rate();
    auto noise_content =
        room::make_noise(spec.ambient_type, capture.frames(), fs,
                         audio::kFullScaleSplDb, seed_of(key, config_.base_seed, 0xD005));
    const room::Vec3 noise_pos{pose.center.x + 2.0, pose.center.y - 1.0, 0.9};
    const double distance = noise_pos.distance(pose.center);
    // Emit so the level *at the device* matches the requested SPL.
    audio::set_spl(noise_content,
                   spec.ambient_spl_db + 20.0 * std::log10(std::max(1.0, distance)));
    speech::LoudspeakerDirectivity noise_speaker(0.05);
    room::RenderOptions noise_options = options;
    noise_options.add_ambient = false;
    noise_options.add_self_noise = false;
    noise_options.occlusion.reset();
    noise_options.noise_seed = options.noise_seed + 17;
    auto interference = scene.render(
        noise_content, {noise_pos, 0.0}, noise_speaker, noise_options);
    // Trim/pad to the capture length before mixing.
    for (std::size_t c = 0; c < capture.channel_count(); ++c) {
      for (std::size_t i = 0; i < capture.frames() && i < interference.frames(); ++i) {
        capture.channel(c)[i] += interference.channel(c)[i];
      }
    }
  }
  return capture;
}

std::string Collector::cache_key(const SampleSpec& spec, const char* kind) const {
  std::string key = spec.key();
  key += "|kind=";
  key += kind;
  key += "|seed=" + std::to_string(config_.base_seed);
  key += "|ism=" + std::to_string(config_.ism_order);
  key += "|rir=" + std::to_string(config_.rir_length_s);
  key += "|ch=";
  for (std::size_t c : channels_for(spec.device)) {
    key += std::to_string(c);
    key += ',';
  }
  if (config_.directivity_strength != 1.0) {
    key += "|dir=" + std::to_string(config_.directivity_strength);
  }
  if (spec.ambient_spl_db >= 0.0) {
    key += "|ptnoise=1";  // intentional interference renders as a point source
  }
  if (spec.user_id > 0) {
    key += "|uphys=1";  // per-user stature/directivity variation
  }
  if (spec.occlusion != OcclusionLevel::kNone) {
    key += "|occv=2";  // occlusion attenuation constants revision
  }
  if (spec.room == RoomId::kHome) {
    key += "|dyn=2";  // dynamic-clutter movable fraction revision
  }
  // v=9: feature extraction moved into the frame-incremental operator —
  // stateful per-channel band-pass cascades and block-granular silence
  // trim replace the one-shot preprocess, which shifts values at the
  // last-ulp-to-block-boundary level; cached entries from the batch
  // definition must not be mixed in. (v=8 was the SIMD kernel revision.)
  key += "|v=9";  // bump to invalidate old cache entries on format changes
  return key;
}

ml::FeatureVector Collector::orientation_features(
    const SampleSpec& spec, core::ScoringWorkspace* workspace) const {
  obs::ScopedSpan span("sim.orientation_features");
  const auto key = cache_key(spec, "orient2");
  if (auto hit = cache_.load(key)) return *hit;
  const auto raw = capture(spec);
  // The extractor preprocesses internally (same config), so training
  // features share one definition with streamed scoring.
  const auto features =
      orientation_extractor(spec).extract(raw, config_.preprocess, workspace);
  cache_.store(key, features);
  return features;
}

ml::FeatureVector Collector::liveness_features(const SampleSpec& spec,
                                               core::ScoringWorkspace* workspace) const {
  obs::ScopedSpan span("sim.liveness_features");
  const auto key = cache_key(spec, "live");
  if (auto hit = cache_.load(key)) return *hit;
  const auto raw = capture(spec);
  const auto features = core::LivenessFeatureExtractor(config_.liveness)
                            .extract(raw.channel(0), config_.preprocess, workspace);
  cache_.store(key, features);
  return features;
}

}  // namespace headtalk::sim
