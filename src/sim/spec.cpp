#include "sim/spec.h"

#include <cstdio>

namespace headtalk::sim {

std::string_view replay_source_name(ReplaySource source) {
  switch (source) {
    case ReplaySource::kNone:
      return "live";
    case ReplaySource::kHighEnd:
      return "sony";
    case ReplaySource::kSmartphone:
      return "phone";
    case ReplaySource::kTelevision:
      return "tv";
  }
  return "?";
}

std::string_view occlusion_level_name(OcclusionLevel level) {
  switch (level) {
    case OcclusionLevel::kNone:
      return "none";
    case OcclusionLevel::kPartial:
      return "partial";
    case OcclusionLevel::kFull:
      return "full";
  }
  return "?";
}

std::string SampleSpec::key() const {
  char buffer[320];
  std::snprintf(
      buffer, sizeof buffer,
      "room=%s|place=%s|dev=%s|word=%s|loc=%s|ang=%.1f|sess=%u|rep=%u|user=%u|"
      "spl=%.1f|h=%.2f|replay=%s|amb=%d@%.1f|occ=%s|lift=%.3f|days=%.1f",
      std::string(room_id_name(room)).c_str(), std::string(placement_name(placement)).c_str(),
      std::string(room::device_name(device)).c_str(),
      std::string(speech::wake_word_name(word)).c_str(), location.label().c_str(),
      angle_deg, session, repetition, user_id, loudness_db, mouth_height_m,
      std::string(replay_source_name(replay)).c_str(), static_cast<int>(ambient_type),
      ambient_spl_db, std::string(occlusion_level_name(occlusion)).c_str(),
      device_height_offset_m, temporal_days);
  return buffer;
}

std::uint64_t fnv1a64(std::string_view text) noexcept {
  std::uint64_t hash = 14695981039346656037ull;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace headtalk::sim
