// The data-collection protocol of §IV: rooms, device placements, the
// 3 x 3 location grid (radial directions L/M/R at 1/3/5 m), the 14-angle
// rotation sweep, wake words, sessions, loudness.
#pragma once

#include <string>
#include <vector>

#include "room/room.h"
#include "room/scene.h"

namespace headtalk::sim {

/// The 14 spoken angles of the protocol (degrees; 0 = facing the device).
[[nodiscard]] const std::vector<double>& protocol_angles();

/// The protocol angles plus the two verification angles +/-75 collected for
/// the facing-definition experiment (§IV-A2) — 16 angles total.
[[nodiscard]] const std::vector<double>& extended_angles();

/// Ahuja et al.'s 8-angle grid (no +/-15 or +/-30), used by the cross-user
/// dataset (§IV-B14).
[[nodiscard]] const std::vector<double>& ahuja_angles();

enum class RoomId { kLab, kHome };
[[nodiscard]] std::string_view room_id_name(RoomId id);
[[nodiscard]] const std::vector<RoomId>& all_rooms();
[[nodiscard]] room::Room make_room(RoomId id);

/// Device placements within the room (Fig. 8): A = near-wall study table
/// (74 cm), B = coffee table (45 cm), C = work table (75 cm). The home room
/// uses a TV-shelf placement at 83 cm for A.
enum class PlacementId { kA, kB, kC };
[[nodiscard]] std::string_view placement_name(PlacementId id);
[[nodiscard]] room::ArrayPose placement_pose(RoomId room, PlacementId placement);

/// Radial direction of a grid location relative to the device's front axis.
enum class GridRadial { kLeft, kMiddle, kRight };  // -15 / 0 / +15 degrees

struct GridLocation {
  GridRadial radial = GridRadial::kMiddle;
  double distance_m = 3.0;

  [[nodiscard]] std::string label() const;  // e.g. "M3"
};

/// All nine grid locations (L/M/R x 1/3/5 m).
[[nodiscard]] const std::vector<GridLocation>& all_grid_locations();
/// The three middle-radial locations M1, M3, M5 (used by Datasets 3-7).
[[nodiscard]] const std::vector<GridLocation>& middle_grid_locations();

/// World position of a talker's mouth at a grid location (device placement
/// applied; `height` is the mouth height, 1.65 m standing / 1.25 m seated).
[[nodiscard]] room::Vec3 grid_position(RoomId room, PlacementId placement,
                                       const GridLocation& location, double height);

/// Facing azimuth (world frame) of a talker at `position` whose head is
/// rotated `angle_deg` away from the ray toward the device.
[[nodiscard]] double facing_azimuth(const room::Vec3& position,
                                    const room::ArrayPose& device_pose,
                                    double angle_deg);

/// Mouth heights used by the protocol.
inline constexpr double kStandingMouthHeight = 1.65;
inline constexpr double kSittingMouthHeight = 1.25;

/// Default speech loudness of the protocol (dB SPL at 1 m).
inline constexpr double kDefaultLoudnessDb = 70.0;

}  // namespace headtalk::sim
