// Builders for the evaluation corpora of Table II.
//
// SpecGrid is the general Cartesian-product builder (rooms x devices x
// words x locations x angles x sessions x repetitions, with condition
// modifiers); the named dataset_N functions instantiate it to the paper's
// corpora. Scales default to a laptop-friendly subset of the published
// protocol (fewer repetitions/locations); pass full_protocol() to match the
// paper's counts exactly.
#pragma once

#include <vector>

#include "sim/spec.h"

namespace headtalk::sim {

/// The Cartesian-product sample builder.
struct SpecGrid {
  std::vector<RoomId> rooms{RoomId::kLab};
  std::vector<PlacementId> placements{PlacementId::kA};
  std::vector<room::DeviceId> devices{room::DeviceId::kD2};
  std::vector<speech::WakeWord> words{speech::WakeWord::kComputer};
  std::vector<GridLocation> locations = middle_grid_locations();
  std::vector<double> angles = protocol_angles();
  std::vector<unsigned> sessions{0, 1};
  unsigned repetitions = 1;
  std::vector<unsigned> users{0};

  // Condition modifiers applied to every spec.
  double loudness_db = kDefaultLoudnessDb;
  double mouth_height_m = kStandingMouthHeight;
  ReplaySource replay = ReplaySource::kNone;
  room::NoiseType ambient_type = room::NoiseType::kWhite;
  double ambient_spl_db = -1.0;
  OcclusionLevel occlusion = OcclusionLevel::kNone;
  double device_height_offset_m = 0.0;
  double temporal_days = 0.0;

  [[nodiscard]] std::vector<SampleSpec> build() const;
};

/// Scale knobs shared by the named builders.
struct ProtocolScale {
  unsigned sessions = 2;
  unsigned repetitions = 1;      // paper: 2
  bool all_locations = false;    // paper: 9 grid locations; scaled: M1/M3/M5
};
[[nodiscard]] ProtocolScale full_protocol();

/// Dataset-1 slice: live speech across the given rooms/devices/words.
[[nodiscard]] std::vector<SampleSpec> dataset1(const std::vector<RoomId>& rooms,
                                               const std::vector<room::DeviceId>& devices,
                                               const std::vector<speech::WakeWord>& words,
                                               const ProtocolScale& scale = {});

/// Dataset-1 with the two +/-75 degree verification angles added
/// (the §IV-A2 facing-definition study, lab / D2 / "Computer").
[[nodiscard]] std::vector<SampleSpec> dataset1_extended_angles(const ProtocolScale& scale = {});

/// Dataset-2: Sony-loudspeaker replay of two wake words.
[[nodiscard]] std::vector<SampleSpec> dataset2_replay(const ProtocolScale& scale = {});

/// Dataset-3: temporal recollections after `days` (paper: 7 and 30).
[[nodiscard]] std::vector<SampleSpec> dataset3_temporal(double days,
                                                        const ProtocolScale& scale = {});

/// Dataset-4: intentional ambient noise played from a loudspeaker in the
/// room (white or TV babble; the paper uses 45 dB SPL at the device).
[[nodiscard]] std::vector<SampleSpec> dataset4_ambient(room::NoiseType type,
                                                       const ProtocolScale& scale = {},
                                                       double spl_db = 45.0);

/// Dataset-5: speaker seated (mouth height lowered).
[[nodiscard]] std::vector<SampleSpec> dataset5_sitting(const ProtocolScale& scale = {});

/// Dataset-6: loudness variants (paper: 60 and 80 dB SPL).
[[nodiscard]] std::vector<SampleSpec> dataset6_loudness(double spl_db,
                                                        const ProtocolScale& scale = {});

/// Dataset-7: surrounding objects (partial / full occlusion, and full
/// occlusion with the device raised by 14.8 cm).
[[nodiscard]] std::vector<SampleSpec> dataset7_objects(OcclusionLevel occlusion,
                                                       bool raised,
                                                       const ProtocolScale& scale = {});

/// Dataset-8: cross-user corpus in the style of Ahuja et al. [13] —
/// `user_count` distinct speakers, 9 locations, the 8-angle grid, 2 reps.
[[nodiscard]] std::vector<SampleSpec> dataset8_multi_user(unsigned user_count = 10,
                                                          unsigned repetitions = 2);

}  // namespace headtalk::sim
