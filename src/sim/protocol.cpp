#include "sim/protocol.h"

#include <cmath>
#include <stdexcept>

namespace headtalk::sim {

const std::vector<double>& protocol_angles() {
  static const std::vector<double> angles{0.0,   15.0,  -15.0, 30.0,  -30.0,
                                          45.0,  -45.0, 60.0,  -60.0, 90.0,
                                          -90.0, 135.0, -135.0, 180.0};
  return angles;
}

const std::vector<double>& extended_angles() {
  static const std::vector<double> angles = [] {
    auto a = protocol_angles();
    a.push_back(75.0);
    a.push_back(-75.0);
    return a;
  }();
  return angles;
}

const std::vector<double>& ahuja_angles() {
  static const std::vector<double> angles{0.0,   45.0,  -45.0, 90.0,
                                          -90.0, 135.0, -135.0, 180.0};
  return angles;
}

std::string_view room_id_name(RoomId id) {
  switch (id) {
    case RoomId::kLab:
      return "lab";
    case RoomId::kHome:
      return "home";
  }
  return "?";
}

const std::vector<RoomId>& all_rooms() {
  static const std::vector<RoomId> rooms{RoomId::kLab, RoomId::kHome};
  return rooms;
}

room::Room make_room(RoomId id) {
  switch (id) {
    case RoomId::kLab:
      return room::Room::lab();
    case RoomId::kHome:
      return room::Room::home();
  }
  throw std::invalid_argument("make_room: unknown room");
}

std::string_view placement_name(PlacementId id) {
  switch (id) {
    case PlacementId::kA:
      return "A";
    case PlacementId::kB:
      return "B";
    case PlacementId::kC:
      return "C";
  }
  return "?";
}

room::ArrayPose placement_pose(RoomId room_id, PlacementId placement) {
  // The device front axis points into the room along +x in both rooms.
  // All placements keep the full L/M/R x 1-5 m grid inside the room
  // (the +/-15 degree radials swing +/-1.3 m laterally at 5 m).
  if (room_id == RoomId::kLab) {
    switch (placement) {
      case PlacementId::kA:
        return {{0.50, 2.10, 0.74}, 0.0};  // near-wall study table
      case PlacementId::kB:
        return {{0.85, 1.60, 0.45}, 0.0};  // coffee table
      case PlacementId::kC:
        return {{0.55, 2.80, 0.75}, 0.0};  // work table
    }
  } else {
    switch (placement) {
      case PlacementId::kA:
        return {{0.40, 1.50, 0.83}, 0.0};  // near-window TV shelf
      case PlacementId::kB:
        return {{0.80, 1.40, 0.45}, 0.0};
      case PlacementId::kC:
        return {{0.45, 1.65, 0.75}, 0.0};
    }
  }
  throw std::invalid_argument("placement_pose: unknown placement");
}

std::string GridLocation::label() const {
  std::string out;
  switch (radial) {
    case GridRadial::kLeft:
      out = "L";
      break;
    case GridRadial::kMiddle:
      out = "M";
      break;
    case GridRadial::kRight:
      out = "R";
      break;
  }
  out += std::to_string(static_cast<int>(std::lround(distance_m)));
  return out;
}

const std::vector<GridLocation>& all_grid_locations() {
  static const std::vector<GridLocation> locations = [] {
    std::vector<GridLocation> out;
    for (auto radial : {GridRadial::kLeft, GridRadial::kMiddle, GridRadial::kRight}) {
      for (double d : {1.0, 3.0, 5.0}) out.push_back({radial, d});
    }
    return out;
  }();
  return locations;
}

const std::vector<GridLocation>& middle_grid_locations() {
  static const std::vector<GridLocation> locations{{GridRadial::kMiddle, 1.0},
                                                   {GridRadial::kMiddle, 3.0},
                                                   {GridRadial::kMiddle, 5.0}};
  return locations;
}

room::Vec3 grid_position(RoomId room_id, PlacementId placement,
                         const GridLocation& location, double height) {
  const auto pose = placement_pose(room_id, placement);
  double radial_deg = 0.0;
  if (location.radial == GridRadial::kLeft) radial_deg = -15.0;
  if (location.radial == GridRadial::kRight) radial_deg = 15.0;
  // Radial directions fan out around the device's front axis (+x after yaw).
  const double azimuth = pose.yaw_rad + room::deg_to_rad(radial_deg);
  const auto dir = room::azimuth_direction(azimuth);
  return {pose.center.x + dir.x * location.distance_m,
          pose.center.y + dir.y * location.distance_m, height};
}

double facing_azimuth(const room::Vec3& position, const room::ArrayPose& device_pose,
                      double angle_deg) {
  const double toward_device =
      std::atan2(device_pose.center.y - position.y, device_pose.center.x - position.x);
  return toward_device + room::deg_to_rad(angle_deg);
}

}  // namespace headtalk::sim
