// Collector: turns a SampleSpec into a rendered capture and into
// orientation / liveness feature vectors (the simulated equivalent of one
// data-collection trial of §IV). All randomness is derived from the spec,
// so results are deterministic and cacheable.
//
// Thread safety: every method is const and keeps its state (RNGs, scene,
// buffers) on the stack, so one Collector may serve concurrent
// *_features() / capture() calls from the parallel collection engine. The
// only cross-thread rendezvous is FeatureCache::store/load, which is safe
// by construction (unique temp file + atomic rename).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "audio/sample_buffer.h"
#include "core/liveness_features.h"
#include "core/orientation_features.h"
#include "core/preprocess.h"
#include "ml/dataset.h"
#include "room/scene.h"
#include "speech/speaker_profile.h"
#include "sim/feature_cache.h"
#include "sim/spec.h"

namespace headtalk::sim {

struct CollectorConfig {
  /// Identity universe: different base seeds produce different speakers,
  /// rooms-states, and noise draws throughout.
  std::uint32_t base_seed = 20230601;
  int ism_order = 3;
  double rir_length_s = 0.12;
  /// Channels rendered/analyzed. Empty = the device's default 4-channel
  /// subset (the paper's default configuration, §IV-A). The mic-count
  /// ablation passes explicit subsets.
  std::vector<std::size_t> channels;
  /// Position/angle jitter modelling human placement error (§VI notes the
  /// protocol could not hold angles exactly).
  double position_jitter_m = 0.03;
  double angle_jitter_deg = 2.5;
  /// Scales the human head's frequency-dependent front-back attenuation
  /// (1.0 = published fit). Exposed for the directivity-sensitivity
  /// ablation: how much of HeadTalk's signal comes from this mechanism?
  double directivity_strength = 1.0;
  bool cache_enabled = true;
  /// On-disk cache size cap in bytes; 0 defers to $HEADTALK_CACHE_LIMIT_MB
  /// (unset → unlimited). See FeatureCache::default_limit_bytes().
  std::uint64_t cache_limit_bytes = 0;
  core::PreprocessConfig preprocess{};
  core::LivenessFeatureConfig liveness{};
};

/// Per-call render toggles for capture(). The streaming scene composer
/// renders utterances with both off and lays one continuous noise floor
/// over the assembled stream, so utterance boundaries are not betrayed by
/// per-render noise seams.
struct CaptureOptions {
  bool ambient = true;     ///< diffuse room-floor ambient noise
  bool self_noise = true;  ///< microphone self-noise
};

class Collector {
 public:
  explicit Collector(CollectorConfig config = {});

  /// Full multichannel render of one trial (never cached; used by the
  /// pipeline-level examples and runtime benchmarks).
  [[nodiscard]] audio::MultiBuffer capture(const SampleSpec& spec) const;

  /// As above with per-call render toggles.
  [[nodiscard]] audio::MultiBuffer capture(const SampleSpec& spec,
                                           const CaptureOptions& options) const;

  /// Orientation feature vector (preprocess + extract; disk-cached).
  /// `workspace` (optional) supplies per-thread scoring scratch for the
  /// cache-miss path — the parallel collection engine passes one per lane;
  /// features are bit-identical with or without it.
  [[nodiscard]] ml::FeatureVector orientation_features(
      const SampleSpec& spec, core::ScoringWorkspace* workspace = nullptr) const;

  /// Liveness feature vector from channel 0 (disk-cached). `workspace` as
  /// for orientation_features().
  [[nodiscard]] ml::FeatureVector liveness_features(
      const SampleSpec& spec, core::ScoringWorkspace* workspace = nullptr) const;

  /// Builds an orientation-feature extractor matched to the spec's device
  /// (lag window from the selected channels' aperture).
  [[nodiscard]] core::OrientationFeatureExtractor orientation_extractor(
      const SampleSpec& spec) const;

  /// Channels used for a spec's device (config override or device default).
  [[nodiscard]] std::vector<std::size_t> channels_for(room::DeviceId device) const;

  /// The exact Scene capture() would render this spec in (room, placement,
  /// furniture state). Exposed so custom harnesses (e.g. moving-speaker
  /// paths) stay inside the same simulated world the training corpus came
  /// from.
  [[nodiscard]] room::Scene scene(const SampleSpec& spec) const;

  /// The voice profile of a user in this collector's identity universe.
  [[nodiscard]] speech::SpeakerProfile speaker(unsigned user_id) const;

  [[nodiscard]] const CollectorConfig& config() const noexcept { return config_; }

  /// The on-disk feature cache (possibly disabled); exposes hit/miss/store
  /// accounting for `--cache-stats` and the bench perf records.
  [[nodiscard]] const FeatureCache& cache() const noexcept { return cache_; }

 private:
  [[nodiscard]] std::string cache_key(const SampleSpec& spec, const char* kind) const;

  CollectorConfig config_;
  FeatureCache cache_;
};

}  // namespace headtalk::sim
