// On-disk cache of extracted feature vectors.
//
// Rendering a capture is by far the most expensive step of every
// experiment; the feature vectors are tiny. Since a SampleSpec renders
// deterministically, features can be cached across runs AND across
// benchmark binaries — the whole harness pays each render once.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>

#include "ml/dataset.h"

namespace headtalk::sim {

/// Point-in-time cache accounting. `evictions` counts committed entries
/// pruned by the size cap; `evicted_bytes` counts the bytes those entries
/// held plus the bytes of temp files discarded when a store fails
/// mid-write or loses its rename.
struct FeatureCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t evictions = 0;
  std::uint64_t evicted_bytes = 0;
};

class FeatureCache {
 public:
  /// `directory` is created lazily on first store. An empty directory name
  /// disables the cache (loads miss, stores are dropped). `limit_bytes`
  /// caps the on-disk size: once exceeded, the least-recently-used entries
  /// (by mtime; hits refresh it) are pruned. 0 means unlimited.
  explicit FeatureCache(std::filesystem::path directory,
                        std::uint64_t limit_bytes = default_limit_bytes());

  [[nodiscard]] bool enabled() const noexcept { return !directory_.empty(); }

  /// Returns the cached vector for `key`, or nullopt on miss/corruption.
  /// Safe to call from any number of threads concurrently with store().
  [[nodiscard]] std::optional<ml::FeatureVector> load(const std::string& key) const;

  /// Stores a vector under `key` (best-effort; I/O failures are swallowed —
  /// the cache is an optimization, not a correctness dependency). Writes go
  /// to a per-writer unique temp file followed by an atomic rename, so
  /// concurrent stores of the same key — from threads of one process or
  /// from separate bench processes — never corrupt the entry; one complete
  /// file wins.
  void store(const std::string& key, const ml::FeatureVector& features) const;

  /// Default cache location: $HEADTALK_CACHE or ".headtalk_cache".
  [[nodiscard]] static std::filesystem::path default_directory();

  /// Default size cap: $HEADTALK_CACHE_LIMIT_MB (mebibytes; invalid or
  /// unset means 0 = unlimited).
  [[nodiscard]] static std::uint64_t default_limit_bytes();

  /// Prunes committed entries, oldest mtime first, until the directory is
  /// within the size cap. Runs automatically (amortized, every 32nd store);
  /// exposed for tests and for a final sweep at the end of a run. No-op
  /// when disabled or unlimited. Safe against concurrent readers: a pruned
  /// entry simply becomes a miss.
  void prune_now() const;

  [[nodiscard]] std::uint64_t limit_bytes() const noexcept { return limit_bytes_; }

  /// This cache's hit/miss/store accounting (also mirrored into the global
  /// metrics registry as `sim.cache.*`). A disabled cache counts nothing.
  [[nodiscard]] FeatureCacheStats stats() const noexcept;

  [[nodiscard]] const std::filesystem::path& directory() const noexcept {
    return directory_;
  }

 private:
  struct StatCounters {
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> stores{0};
    std::atomic<std::uint64_t> evictions{0};
    std::atomic<std::uint64_t> evicted_bytes{0};
    std::atomic<std::uint64_t> stores_since_prune{0};
  };

  [[nodiscard]] std::filesystem::path path_for(const std::string& key) const;

  std::filesystem::path directory_;
  std::uint64_t limit_bytes_ = 0;
  // shared_ptr keeps FeatureCache copyable; copies share one tally.
  std::shared_ptr<StatCounters> stats_ = std::make_shared<StatCounters>();
};

}  // namespace headtalk::sim
