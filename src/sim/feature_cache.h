// On-disk cache of extracted feature vectors.
//
// Rendering a capture is by far the most expensive step of every
// experiment; the feature vectors are tiny. Since a SampleSpec renders
// deterministically, features can be cached across runs AND across
// benchmark binaries — the whole harness pays each render once.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>

#include "ml/dataset.h"

namespace headtalk::sim {

/// Point-in-time cache accounting. `evicted_bytes` counts the bytes of
/// temp files discarded when a store fails mid-write or loses its rename
/// (the cache never evicts committed entries).
struct FeatureCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t evicted_bytes = 0;
};

class FeatureCache {
 public:
  /// `directory` is created lazily on first store. An empty directory name
  /// disables the cache (loads miss, stores are dropped).
  explicit FeatureCache(std::filesystem::path directory);

  [[nodiscard]] bool enabled() const noexcept { return !directory_.empty(); }

  /// Returns the cached vector for `key`, or nullopt on miss/corruption.
  /// Safe to call from any number of threads concurrently with store().
  [[nodiscard]] std::optional<ml::FeatureVector> load(const std::string& key) const;

  /// Stores a vector under `key` (best-effort; I/O failures are swallowed —
  /// the cache is an optimization, not a correctness dependency). Writes go
  /// to a per-writer unique temp file followed by an atomic rename, so
  /// concurrent stores of the same key — from threads of one process or
  /// from separate bench processes — never corrupt the entry; one complete
  /// file wins.
  void store(const std::string& key, const ml::FeatureVector& features) const;

  /// Default cache location: $HEADTALK_CACHE or ".headtalk_cache".
  [[nodiscard]] static std::filesystem::path default_directory();

  /// This cache's hit/miss/store accounting (also mirrored into the global
  /// metrics registry as `sim.cache.*`). A disabled cache counts nothing.
  [[nodiscard]] FeatureCacheStats stats() const noexcept;

  [[nodiscard]] const std::filesystem::path& directory() const noexcept {
    return directory_;
  }

 private:
  struct StatCounters {
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> stores{0};
    std::atomic<std::uint64_t> evicted_bytes{0};
  };

  [[nodiscard]] std::filesystem::path path_for(const std::string& key) const;

  std::filesystem::path directory_;
  // shared_ptr keeps FeatureCache copyable; copies share one tally.
  std::shared_ptr<StatCounters> stats_ = std::make_shared<StatCounters>();
};

}  // namespace headtalk::sim
