// SampleSpec: a complete, hashable description of one protocol capture —
// who spoke which wake word, where, at what head angle, through what
// hardware, in which room/session, under what interference. Every
// stochastic element of the simulation derives its seed from this spec, so
// a spec renders identically across processes (which makes the on-disk
// feature cache sound).
#pragma once

#include <cstdint>
#include <string>

#include "room/mic_array.h"
#include "room/noise.h"
#include "sim/protocol.h"
#include "speech/phonemes.h"

namespace headtalk::sim {

enum class ReplaySource {
  kNone,        ///< live human talker
  kHighEnd,     ///< Sony-class loudspeaker (Dataset-2)
  kSmartphone,  ///< phone speaker
  kTelevision,  ///< TV speaker (accidental activation)
};
[[nodiscard]] std::string_view replay_source_name(ReplaySource source);

enum class OcclusionLevel { kNone, kPartial, kFull };
[[nodiscard]] std::string_view occlusion_level_name(OcclusionLevel level);

struct SampleSpec {
  RoomId room = RoomId::kLab;
  PlacementId placement = PlacementId::kA;
  room::DeviceId device = room::DeviceId::kD2;
  speech::WakeWord word = speech::WakeWord::kComputer;
  GridLocation location{GridRadial::kMiddle, 3.0};
  /// Head angle relative to the device (degrees; 0 = facing).
  double angle_deg = 0.0;
  unsigned session = 0;
  unsigned repetition = 0;
  /// Speaker identity (0 = the default enrolled user; 1.. = other users).
  unsigned user_id = 0;
  double loudness_db = kDefaultLoudnessDb;
  double mouth_height_m = kStandingMouthHeight;
  ReplaySource replay = ReplaySource::kNone;
  room::NoiseType ambient_type = room::NoiseType::kWhite;
  /// Ambient level; negative = the room's default floor.
  double ambient_spl_db = -1.0;
  OcclusionLevel occlusion = OcclusionLevel::kNone;
  /// Extra device elevation (the "raised" condition of §IV-B13).
  double device_height_offset_m = 0.0;
  /// Days since enrollment (temporal drift, §IV-B9).
  double temporal_days = 0.0;

  /// Canonical text form — the cache key and seed source.
  [[nodiscard]] std::string key() const;
};

/// FNV-1a 64-bit hash of a string (stable across platforms/processes).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view text) noexcept;

}  // namespace headtalk::sim
