#include "sim/feature_cache.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <thread>
#include <vector>

#include <unistd.h>

#include "obs/metrics.h"
#include "sim/spec.h"

namespace headtalk::sim {
namespace {

constexpr std::uint32_t kMagic = 0x48544643;  // "HTFC"

// Process-wide mirrors of the per-instance tallies: every harness binary's
// perf record reports cache effectiveness from these, regardless of how
// many Collector/FeatureCache instances the run created.
obs::Counter& global_hits() {
  static obs::Counter& c = obs::Registry::global().counter("sim.cache.hit");
  return c;
}
obs::Counter& global_misses() {
  static obs::Counter& c = obs::Registry::global().counter("sim.cache.miss");
  return c;
}
obs::Counter& global_stores() {
  static obs::Counter& c = obs::Registry::global().counter("sim.cache.store");
  return c;
}
obs::Counter& global_evictions() {
  static obs::Counter& c = obs::Registry::global().counter("sim.cache.evict");
  return c;
}

/// An entry is re-checked for pruning every this many stores; keeps the
/// directory scan off the per-store hot path.
constexpr std::uint64_t kPruneEveryStores = 32;

}  // namespace

FeatureCache::FeatureCache(std::filesystem::path directory, std::uint64_t limit_bytes)
    : directory_(std::move(directory)), limit_bytes_(limit_bytes) {}

std::filesystem::path FeatureCache::default_directory() {
  if (const char* env = std::getenv("HEADTALK_CACHE"); env != nullptr && *env != '\0') {
    return env;
  }
  return ".headtalk_cache";
}

std::uint64_t FeatureCache::default_limit_bytes() {
  const char* env = std::getenv("HEADTALK_CACHE_LIMIT_MB");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const unsigned long long mebibytes = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') return 0;
  return static_cast<std::uint64_t>(mebibytes) << 20;
}

std::filesystem::path FeatureCache::path_for(const std::string& key) const {
  char name[32];
  std::snprintf(name, sizeof name, "%016llx.bin",
                static_cast<unsigned long long>(fnv1a64(key)));
  return directory_ / name;
}

std::optional<ml::FeatureVector> FeatureCache::load(const std::string& key) const {
  if (!enabled()) return std::nullopt;
  auto result = [&]() -> std::optional<ml::FeatureVector> {
    std::ifstream in(path_for(key), std::ios::binary);
    if (!in) return std::nullopt;

    std::uint32_t magic = 0, key_len = 0;
    std::uint64_t count = 0;
    in.read(reinterpret_cast<char*>(&magic), sizeof magic);
    in.read(reinterpret_cast<char*>(&key_len), sizeof key_len);
    if (!in || magic != kMagic || key_len > 4096) return std::nullopt;
    std::string stored_key(key_len, '\0');
    in.read(stored_key.data(), key_len);
    in.read(reinterpret_cast<char*>(&count), sizeof count);
    if (!in || stored_key != key || count > (1u << 24)) return std::nullopt;

    ml::FeatureVector features(count);
    in.read(reinterpret_cast<char*>(features.data()),
            static_cast<std::streamsize>(count * sizeof(double)));
    if (!in) return std::nullopt;
    return features;
  }();
  if (result.has_value()) {
    stats_->hits.fetch_add(1, std::memory_order_relaxed);
    global_hits().increment();
    // Refresh the entry's mtime so LRU pruning keeps hot entries. Best
    // effort; a racing prune just turns the next load into a miss.
    std::error_code ec;
    std::filesystem::last_write_time(path_for(key),
                                     std::filesystem::file_time_type::clock::now(), ec);
  } else {
    stats_->misses.fetch_add(1, std::memory_order_relaxed);
    global_misses().increment();
  }
  return result;
}

void FeatureCache::store(const std::string& key, const ml::FeatureVector& features) const {
  if (!enabled()) return;
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  if (ec) return;

  // Write to a temp file, then rename: concurrent benches — and, since the
  // parallel collection engine, concurrent threads of one process — share a
  // cache. The temp name must be unique per writer: with a fixed
  // "<hash>.bin.tmp", two writers of the same key interleave their writes
  // and a corrupt file wins the rename.
  const auto final_path = path_for(key);
  static std::atomic<std::uint64_t> store_counter{0};
  char suffix[96];
  std::snprintf(suffix, sizeof suffix, ".%ld.%zx.%llu.tmp",
                static_cast<long>(::getpid()),
                std::hash<std::thread::id>{}(std::this_thread::get_id()),
                static_cast<unsigned long long>(
                    store_counter.fetch_add(1, std::memory_order_relaxed)));
  auto tmp_path = final_path;
  tmp_path += suffix;
  const std::uint64_t entry_bytes = sizeof kMagic + sizeof(std::uint32_t) + key.size() +
                                    sizeof(std::uint64_t) +
                                    features.size() * sizeof(double);
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) return;
    const auto key_len = static_cast<std::uint32_t>(key.size());
    const auto count = static_cast<std::uint64_t>(features.size());
    out.write(reinterpret_cast<const char*>(&kMagic), sizeof kMagic);
    out.write(reinterpret_cast<const char*>(&key_len), sizeof key_len);
    out.write(key.data(), static_cast<std::streamsize>(key.size()));
    out.write(reinterpret_cast<const char*>(&count), sizeof count);
    out.write(reinterpret_cast<const char*>(features.data()),
              static_cast<std::streamsize>(features.size() * sizeof(double)));
    if (!out) {
      std::filesystem::remove(tmp_path, ec);
      stats_->evicted_bytes.fetch_add(entry_bytes, std::memory_order_relaxed);
      return;
    }
  }
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    std::filesystem::remove(tmp_path, ec);
    stats_->evicted_bytes.fetch_add(entry_bytes, std::memory_order_relaxed);
    return;
  }
  stats_->stores.fetch_add(1, std::memory_order_relaxed);
  global_stores().increment();
  if (limit_bytes_ > 0 &&
      stats_->stores_since_prune.fetch_add(1, std::memory_order_relaxed) + 1 >=
          kPruneEveryStores) {
    stats_->stores_since_prune.store(0, std::memory_order_relaxed);
    prune_now();
  }
}

void FeatureCache::prune_now() const {
  if (!enabled() || limit_bytes_ == 0) return;
  struct Entry {
    std::filesystem::path path;
    std::filesystem::file_time_type mtime;
    std::uint64_t bytes = 0;
  };
  std::vector<Entry> entries;
  std::uint64_t total = 0;
  std::error_code ec;
  for (const auto& item : std::filesystem::directory_iterator(directory_, ec)) {
    if (!item.is_regular_file(ec)) continue;
    if (item.path().extension() != ".bin") continue;  // leave in-flight temps alone
    Entry entry;
    entry.path = item.path();
    entry.mtime = item.last_write_time(ec);
    if (ec) continue;
    entry.bytes = item.file_size(ec);
    if (ec) continue;
    total += entry.bytes;
    entries.push_back(std::move(entry));
  }
  if (total <= limit_bytes_) return;

  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.mtime < b.mtime; });
  for (const Entry& entry : entries) {
    if (total <= limit_bytes_) break;
    if (!std::filesystem::remove(entry.path, ec) || ec) continue;
    total -= entry.bytes;
    stats_->evictions.fetch_add(1, std::memory_order_relaxed);
    stats_->evicted_bytes.fetch_add(entry.bytes, std::memory_order_relaxed);
    global_evictions().increment();
  }
}

FeatureCacheStats FeatureCache::stats() const noexcept {
  FeatureCacheStats out;
  out.hits = stats_->hits.load(std::memory_order_relaxed);
  out.misses = stats_->misses.load(std::memory_order_relaxed);
  out.stores = stats_->stores.load(std::memory_order_relaxed);
  out.evictions = stats_->evictions.load(std::memory_order_relaxed);
  out.evicted_bytes = stats_->evicted_bytes.load(std::memory_order_relaxed);
  return out;
}

}  // namespace headtalk::sim
