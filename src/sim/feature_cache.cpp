#include "sim/feature_cache.h"

#include <cstdint>
#include <cstdlib>
#include <fstream>

#include "sim/spec.h"

namespace headtalk::sim {
namespace {

constexpr std::uint32_t kMagic = 0x48544643;  // "HTFC"

}  // namespace

FeatureCache::FeatureCache(std::filesystem::path directory)
    : directory_(std::move(directory)) {}

std::filesystem::path FeatureCache::default_directory() {
  if (const char* env = std::getenv("HEADTALK_CACHE"); env != nullptr && *env != '\0') {
    return env;
  }
  return ".headtalk_cache";
}

std::filesystem::path FeatureCache::path_for(const std::string& key) const {
  char name[32];
  std::snprintf(name, sizeof name, "%016llx.bin",
                static_cast<unsigned long long>(fnv1a64(key)));
  return directory_ / name;
}

std::optional<ml::FeatureVector> FeatureCache::load(const std::string& key) const {
  if (!enabled()) return std::nullopt;
  std::ifstream in(path_for(key), std::ios::binary);
  if (!in) return std::nullopt;

  std::uint32_t magic = 0, key_len = 0;
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  in.read(reinterpret_cast<char*>(&key_len), sizeof key_len);
  if (!in || magic != kMagic || key_len > 4096) return std::nullopt;
  std::string stored_key(key_len, '\0');
  in.read(stored_key.data(), key_len);
  in.read(reinterpret_cast<char*>(&count), sizeof count);
  if (!in || stored_key != key || count > (1u << 24)) return std::nullopt;

  ml::FeatureVector features(count);
  in.read(reinterpret_cast<char*>(features.data()),
          static_cast<std::streamsize>(count * sizeof(double)));
  if (!in) return std::nullopt;
  return features;
}

void FeatureCache::store(const std::string& key, const ml::FeatureVector& features) const {
  if (!enabled()) return;
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  if (ec) return;

  // Write to a temp file, then rename: concurrent benches may share a cache.
  const auto final_path = path_for(key);
  auto tmp_path = final_path;
  tmp_path += ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) return;
    const auto key_len = static_cast<std::uint32_t>(key.size());
    const auto count = static_cast<std::uint64_t>(features.size());
    out.write(reinterpret_cast<const char*>(&kMagic), sizeof kMagic);
    out.write(reinterpret_cast<const char*>(&key_len), sizeof key_len);
    out.write(key.data(), static_cast<std::streamsize>(key.size()));
    out.write(reinterpret_cast<const char*>(&count), sizeof count);
    out.write(reinterpret_cast<const char*>(features.data()),
              static_cast<std::streamsize>(features.size() * sizeof(double)));
    if (!out) return;
  }
  std::filesystem::rename(tmp_path, final_path, ec);
}

}  // namespace headtalk::sim
