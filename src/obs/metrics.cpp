#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/log.h"
#include "util/json.h"

namespace headtalk::obs {
namespace {

// CAS loop instead of std::atomic<double>::fetch_add: the member form is
// C++20 library-optional and this path is never hot enough to matter.
void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

void Gauge::add(double delta) noexcept { atomic_add(value_, delta); }

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  if (bounds_.empty() || !std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument("Histogram: bounds must be non-empty and ascending");
  }
}

void Histogram::observe(double value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
}

double Histogram::sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

double Histogram::quantile(double q) const {
  const auto counts = bucket_counts();
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  if (total == 0) return 0.0;

  const double rank = std::clamp(q, 0.0, 1.0) * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const auto in_bucket = static_cast<double>(counts[i]);
    if (cumulative + in_bucket < rank) {
      cumulative += in_bucket;
      continue;
    }
    if (i >= bounds_.size()) return bounds_.back();  // overflow bucket
    const double lower = i == 0 ? 0.0 : bounds_[i - 1];
    const double upper = bounds_[i];
    const double fraction = in_bucket == 0.0 ? 1.0 : (rank - cumulative) / in_bucket;
    return lower + fraction * (upper - lower);
  }
  return bounds_.back();
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> Histogram::default_seconds_bounds() {
  std::vector<double> bounds;
  for (double edge = 1e-5; edge < 100.0; edge *= 3.0) bounds.push_back(edge);
  return bounds;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name, std::vector<double> upper_bounds) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (upper_bounds.empty()) upper_bounds = Histogram::default_seconds_bounds();
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(upper_bounds)))
             .first;
  }
  return *it->second;
}

void Registry::visit(
    const std::function<void(const std::string&, const Counter&)>& on_counter,
    const std::function<void(const std::string&, const Gauge&)>& on_gauge,
    const std::function<void(const std::string&, const Histogram&)>& on_histogram)
    const {
  std::lock_guard lock(mutex_);
  if (on_counter) {
    for (const auto& [name, counter] : counters_) on_counter(name, *counter);
  }
  if (on_gauge) {
    for (const auto& [name, gauge] : gauges_) on_gauge(name, *gauge);
  }
  if (on_histogram) {
    for (const auto& [name, histogram] : histograms_) on_histogram(name, *histogram);
  }
}

void Registry::write_text(std::ostream& out) const {
  std::lock_guard lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    out << "counter " << name << ' ' << counter->value() << '\n';
  }
  for (const auto& [name, gauge] : gauges_) {
    out << "gauge " << name << ' ' << gauge->value() << '\n';
  }
  for (const auto& [name, histogram] : histograms_) {
    out << "histogram " << name << " count=" << histogram->count()
        << " sum=" << histogram->sum() << " p50=" << histogram->quantile(0.50)
        << " p95=" << histogram->quantile(0.95) << " p99=" << histogram->quantile(0.99)
        << '\n';
  }
}

void Registry::write_json(std::ostream& out) const {
  std::lock_guard lock(mutex_);
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out << (first ? "" : ",") << '"' << util::json_escape(name)
        << "\":" << counter->value();
    first = false;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out << (first ? "" : ",") << '"' << util::json_escape(name)
        << "\":" << gauge->value();
    first = false;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    out << (first ? "" : ",") << '"' << util::json_escape(name) << "\":{"
        << "\"count\":" << histogram->count() << ",\"sum\":" << histogram->sum()
        << ",\"p50\":" << histogram->quantile(0.50)
        << ",\"p95\":" << histogram->quantile(0.95)
        << ",\"p99\":" << histogram->quantile(0.99) << ",\"buckets\":[";
    const auto& bounds = histogram->bounds();
    const auto counts = histogram->bucket_counts();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      out << (i == 0 ? "" : ",") << '[' << bounds[i] << ',' << counts[i] << ']';
    }
    out << "],\"overflow\":" << counts.back() << '}';
    first = false;
  }
  out << "}}";
}

bool Registry::write_json_file(const std::filesystem::path& path) const {
  std::ofstream out(path);
  if (out) {
    write_json(out);
    out << '\n';
  }
  if (!out) {
    log_warn("obs.metrics.write_failed", {{"path", path.string()}});
    return false;
  }
  return true;
}

void Registry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

double Timer::stop() noexcept {
  if (!stopped_) {
    stopped_ = true;
    seconds_ =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
    if (sink_ != nullptr) sink_->observe(seconds_);
  }
  return seconds_;
}

}  // namespace headtalk::obs
