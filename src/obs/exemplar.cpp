#include "obs/exemplar.h"

#include <algorithm>
#include <ostream>

#include "obs/trace.h"
#include "util/json.h"

namespace headtalk::obs {

SlowExemplarRing::SlowExemplarRing(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  exemplars_.reserve(capacity_);
}

SlowExemplarRing& SlowExemplarRing::global() {
  static SlowExemplarRing ring;
  return ring;
}

void SlowExemplarRing::offer(double total_seconds, std::string_view label,
                             std::span<const ExemplarSpan> spans) {
  offered_.fetch_add(1, std::memory_order_relaxed);
  // Fast path: once the ring is full, anything at or below the fastest
  // retained exemplar cannot be admitted — one relaxed load, no lock. The
  // threshold may lag a concurrent admission; that only costs a lock, not
  // correctness (re-checked below).
  if (total_seconds <= threshold_.load(std::memory_order_relaxed)) return;

  std::lock_guard lock(mutex_);
  if (exemplars_.size() >= capacity_ &&
      total_seconds <= exemplars_.back().total_seconds) {
    return;
  }
  Exemplar exemplar;
  exemplar.total_seconds = total_seconds;
  exemplar.captured_us = now_micros();
  exemplar.label = label;
  exemplar.spans.reserve(spans.size());
  for (const auto& span : spans) {
    exemplar.spans.push_back({span.name, span.start_us, span.duration_us});
  }
  const auto at = std::upper_bound(
      exemplars_.begin(), exemplars_.end(), total_seconds,
      [](double value, const Exemplar& e) { return value > e.total_seconds; });
  exemplars_.insert(at, std::move(exemplar));
  if (exemplars_.size() > capacity_) exemplars_.pop_back();
  if (exemplars_.size() >= capacity_) {
    threshold_.store(exemplars_.back().total_seconds, std::memory_order_relaxed);
  }
}

std::vector<Exemplar> SlowExemplarRing::snapshot() const {
  std::lock_guard lock(mutex_);
  return exemplars_;
}

void SlowExemplarRing::write_json(std::ostream& out) const {
  const auto exemplars = snapshot();
  out << '[';
  for (std::size_t i = 0; i < exemplars.size(); ++i) {
    const Exemplar& e = exemplars[i];
    out << (i == 0 ? "" : ",") << "{\"total_seconds\":" << e.total_seconds
        << ",\"captured_us\":" << e.captured_us << ",\"label\":\""
        << util::json_escape(e.label) << "\",\"spans\":[";
    for (std::size_t s = 0; s < e.spans.size(); ++s) {
      out << (s == 0 ? "" : ",") << "{\"name\":\"" << util::json_escape(e.spans[s].name)
          << "\",\"ts\":" << e.spans[s].start_us << ",\"dur\":" << e.spans[s].duration_us
          << '}';
    }
    out << "]}";
  }
  out << ']';
}

std::size_t SlowExemplarRing::size() const {
  std::lock_guard lock(mutex_);
  return exemplars_.size();
}

void SlowExemplarRing::clear() {
  std::lock_guard lock(mutex_);
  exemplars_.clear();
  threshold_.store(0.0, std::memory_order_relaxed);
}

}  // namespace headtalk::obs
