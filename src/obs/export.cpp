#include "obs/export.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/log.h"
#include "util/json.h"

namespace headtalk::obs {
namespace {

/// Shortest round-trip decimal: try %g (compact: "0.1", "1e-05"), fall
/// back to %.17g when 6 significant digits would lose information. Keeps
/// the exposition readable *and* lossless, and gives tests a deterministic
/// expected text.
std::string fmt_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%g", value);
  if (std::strtod(buffer, nullptr) != value) {
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
  }
  return buffer;
}

/// JSON forbids NaN/Infinity; a poisoned gauge must not make the whole
/// snapshot unparseable.
double json_safe(double value) { return std::isfinite(value) ? value : 0.0; }

HistogramSnapshot snapshot_histogram(const Histogram& histogram) {
  HistogramSnapshot out;
  out.bounds = histogram.bounds();
  out.buckets = histogram.bucket_counts();
  // Readers race writers (relaxed atomics): derive count from the buckets
  // we actually copied so `sum(buckets) == count` holds inside a snapshot.
  out.count = 0;
  for (const auto c : out.buckets) out.count += c;
  out.sum = histogram.sum();
  return out;
}

const util::JsonValue& require(const util::JsonValue& object, std::string_view key) {
  const util::JsonValue* value = object.find(key);
  if (value == nullptr) {
    throw std::invalid_argument("metrics snapshot: missing key '" + std::string(key) +
                                "'");
  }
  return *value;
}

std::uint64_t as_u64(const util::JsonValue& value) {
  const double number = value.as_number();
  if (number < 0.0) throw std::invalid_argument("metrics snapshot: negative count");
  return static_cast<std::uint64_t>(number);
}

GaugeMergePolicy policy_for(const std::string& name, const MergeOptions& options) {
  const auto it = options.gauge_overrides.find(name);
  return it != options.gauge_overrides.end() ? it->second : options.default_gauge;
}

}  // namespace

MetricsSnapshot snapshot(const Registry& registry) {
  MetricsSnapshot out;
  registry.visit(
      [&](const std::string& name, const Counter& counter) {
        out.counters.emplace(name, counter.value());
      },
      [&](const std::string& name, const Gauge& gauge) {
        out.gauges.emplace(name, gauge.value());
      },
      [&](const std::string& name, const Histogram& histogram) {
        out.histograms.emplace(name, snapshot_histogram(histogram));
      });
  return out;
}

double snapshot_quantile(const HistogramSnapshot& histogram, double q) {
  std::uint64_t total = 0;
  for (const auto c : histogram.buckets) total += c;
  if (total == 0) return 0.0;
  const double rank =
      std::clamp(q, 0.0, 1.0) * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < histogram.buckets.size(); ++i) {
    const auto in_bucket = static_cast<double>(histogram.buckets[i]);
    if (cumulative + in_bucket < rank) {
      cumulative += in_bucket;
      continue;
    }
    if (i >= histogram.bounds.size()) return histogram.bounds.back();
    const double lower = i == 0 ? 0.0 : histogram.bounds[i - 1];
    const double upper = histogram.bounds[i];
    const double fraction = in_bucket == 0.0 ? 1.0 : (rank - cumulative) / in_bucket;
    return lower + fraction * (upper - lower);
  }
  return histogram.bounds.empty() ? 0.0 : histogram.bounds.back();
}

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void write_prometheus(std::ostream& out, const MetricsSnapshot& snapshot) {
  for (const auto& [name, value] : snapshot.counters) {
    const std::string metric = prometheus_name(name);
    out << "# TYPE " << metric << " counter\n" << metric << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string metric = prometheus_name(name);
    out << "# TYPE " << metric << " gauge\n"
        << metric << ' ' << fmt_double(value) << '\n';
  }
  for (const auto& [name, histogram] : snapshot.histograms) {
    const std::string metric = prometheus_name(name);
    out << "# TYPE " << metric << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < histogram.bounds.size(); ++i) {
      cumulative += i < histogram.buckets.size() ? histogram.buckets[i] : 0;
      out << metric << "_bucket{le=\"" << fmt_double(histogram.bounds[i]) << "\"} "
          << cumulative << '\n';
    }
    if (!histogram.buckets.empty()) cumulative += histogram.buckets.back();
    out << metric << "_bucket{le=\"+Inf\"} " << cumulative << '\n'
        << metric << "_sum " << fmt_double(histogram.sum) << '\n'
        << metric << "_count " << cumulative << '\n';
  }
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  write_prometheus(out, snapshot);
  return out.str();
}

void write_snapshot_json(std::ostream& out, const MetricsSnapshot& snapshot) {
  out << "{\"snapshot_version\":1,\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out << (first ? "" : ",") << '"' << util::json_escape(name) << "\":" << value;
    first = false;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out << (first ? "" : ",") << '"' << util::json_escape(name)
        << "\":" << fmt_double(json_safe(value));
    first = false;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : snapshot.histograms) {
    out << (first ? "" : ",") << '"' << util::json_escape(name) << "\":{\"bounds\":[";
    for (std::size_t i = 0; i < histogram.bounds.size(); ++i) {
      out << (i == 0 ? "" : ",") << fmt_double(histogram.bounds[i]);
    }
    out << "],\"buckets\":[";
    for (std::size_t i = 0; i < histogram.buckets.size(); ++i) {
      out << (i == 0 ? "" : ",") << histogram.buckets[i];
    }
    out << "],\"count\":" << histogram.count
        << ",\"sum\":" << fmt_double(json_safe(histogram.sum)) << '}';
    first = false;
  }
  out << "}}";
}

std::string to_snapshot_json(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  write_snapshot_json(out, snapshot);
  return out.str();
}

bool write_snapshot_json_file(const std::filesystem::path& path,
                              const MetricsSnapshot& snapshot) {
  std::ofstream out(path);
  if (out) {
    write_snapshot_json(out, snapshot);
    out << '\n';
  }
  if (!out) {
    log_warn("obs.export.write_failed", {{"path", path.string()}});
    return false;
  }
  return true;
}

MetricsSnapshot parse_snapshot_json(std::string_view text) {
  const util::JsonValue root = util::JsonValue::parse(text);
  if (!root.is_object()) {
    throw std::invalid_argument("metrics snapshot: root must be an object");
  }
  MetricsSnapshot out;
  for (const auto& [name, value] : require(root, "counters").as_object()) {
    out.counters.emplace(name, as_u64(value));
  }
  for (const auto& [name, value] : require(root, "gauges").as_object()) {
    out.gauges.emplace(name, value.as_number());
  }
  for (const auto& [name, value] : require(root, "histograms").as_object()) {
    HistogramSnapshot histogram;
    for (const auto& bound : require(value, "bounds").as_array()) {
      histogram.bounds.push_back(bound.as_number());
    }
    for (const auto& bucket : require(value, "buckets").as_array()) {
      histogram.buckets.push_back(as_u64(bucket));
    }
    if (histogram.buckets.size() != histogram.bounds.size() + 1) {
      throw std::invalid_argument("metrics snapshot: histogram '" + name +
                                  "' needs bounds.size()+1 buckets");
    }
    histogram.count = as_u64(require(value, "count"));
    histogram.sum = require(value, "sum").as_number();
    out.histograms.emplace(name, std::move(histogram));
  }
  return out;
}

void merge_into(MetricsSnapshot& into, const MetricsSnapshot& from,
                const MergeOptions& options) {
  for (const auto& [name, value] : from.counters) {
    into.counters[name] += value;
  }
  for (const auto& [name, value] : from.gauges) {
    const auto [it, inserted] = into.gauges.emplace(name, value);
    if (inserted) continue;
    switch (policy_for(name, options)) {
      case GaugeMergePolicy::kMax:
        it->second = std::max(it->second, value);
        break;
      case GaugeMergePolicy::kMin:
        it->second = std::min(it->second, value);
        break;
      case GaugeMergePolicy::kSum:
        it->second += value;
        break;
      case GaugeMergePolicy::kLast:
        it->second = value;
        break;
    }
  }
  for (const auto& [name, histogram] : from.histograms) {
    const auto [it, inserted] = into.histograms.emplace(name, histogram);
    if (inserted) continue;
    HistogramSnapshot& target = it->second;
    if (target.bounds != histogram.bounds) {
      throw std::invalid_argument("metrics merge: bounds mismatch for histogram '" +
                                  name + "'");
    }
    for (std::size_t i = 0; i < target.buckets.size(); ++i) {
      target.buckets[i] += histogram.buckets[i];
    }
    target.count += histogram.count;
    target.sum += histogram.sum;
  }
}

MetricsSnapshot merge(const std::vector<MetricsSnapshot>& snapshots,
                      const MergeOptions& options) {
  MetricsSnapshot out;
  for (const auto& snapshot : snapshots) merge_into(out, snapshot, options);
  return out;
}

}  // namespace headtalk::obs
