// Process-wide metrics: monotonic counters, gauges, and fixed-bucket
// histograms with quantile estimates, held in a named registry.
//
// Everything here is dependency-free and thread-safe: counters and
// histogram buckets are relaxed atomics (an increment is one fetch_add),
// and the registry's name lookup takes a mutex only on first access — hot
// paths cache the returned reference in a function-local static. Objects
// returned by the registry live until process exit, so cached references
// never dangle (reset() zeroes values in place, it does not destroy them).
//
// The registry dumps to human-readable text or to JSON; the headtalk_*
// tools expose the JSON dump via `--metrics-out FILE` (cli::ObsSession).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace headtalk::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  void increment() noexcept { add(1); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double value) noexcept { value_.store(value, std::memory_order_relaxed); }
  void add(double delta) noexcept;
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram for non-negative observations (typically
/// seconds). Bucket i covers (bounds[i-1], bounds[i]] with an implicit
/// first edge at 0 and an overflow bucket past bounds.back(). Quantiles
/// interpolate linearly inside the bucket containing the target rank;
/// ranks landing in the overflow bucket report bounds.back().
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept;
  /// q in [0, 1]; returns 0 when the histogram is empty.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  void reset() noexcept;

  /// Default bounds for latency histograms: 10 µs .. ~84 s, ×3 per bucket.
  [[nodiscard]] static std::vector<double> default_seconds_bounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1 (overflow)
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Named instrument registry. Use Registry::global() in production code;
/// tests may construct private registries.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Empty `upper_bounds` selects Histogram::default_seconds_bounds().
  /// Bounds are fixed by the first call for a given name.
  Histogram& histogram(std::string_view name, std::vector<double> upper_bounds = {});

  /// Calls the given callbacks for every registered instrument, in name
  /// order, under the registry lock. Instrument values are read with
  /// relaxed atomics, so a visit concurrent with writers sees a consistent
  /// *set* of instruments and approximately-current values — exactly the
  /// guarantee a live scrape needs. Callbacks must not re-enter the
  /// registry (deadlock). Null callbacks skip that instrument kind.
  void visit(
      const std::function<void(const std::string&, const Counter&)>& on_counter,
      const std::function<void(const std::string&, const Gauge&)>& on_gauge,
      const std::function<void(const std::string&, const Histogram&)>& on_histogram)
      const;

  /// One instrument per line: `counter <name> <value>` etc.
  void write_text(std::ostream& out) const;
  /// {"counters":{...},"gauges":{...},"histograms":{...}}
  void write_json(std::ostream& out) const;
  /// Returns false (after logging a warning) when the file cannot be written.
  bool write_json_file(const std::filesystem::path& path) const;

  /// Zeroes every registered instrument in place (references stay valid).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Elapsed-seconds timer that reports into a histogram exactly once, on
/// stop() or destruction, and hands the measured value back so callers
/// print the same number that was recorded (no printed-vs-recorded drift).
class Timer {
 public:
  explicit Timer(Histogram* sink = nullptr) noexcept
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  ~Timer() { (void)stop(); }

  /// Seconds since construction; records into the sink on the first call.
  double stop() noexcept;

 private:
  Histogram* sink_;
  std::chrono::steady_clock::time_point start_;
  bool stopped_ = false;
  double seconds_ = 0.0;
};

}  // namespace headtalk::obs
