// Scoped-span tracing with Chrome trace-event export.
//
//   obs::set_tracing_enabled(true);            // or --trace-out on the tools
//   { obs::ScopedSpan span("pipeline.preprocess"); ... }
//   obs::Tracer::global().write_chrome_trace_file("trace.json");
//
// The file loads in chrome://tracing and in Perfetto (ui.perfetto.dev) as
// complete ("X") events, one lane per worker thread.
//
// Cost model: when tracing is disabled (the default) a ScopedSpan is one
// relaxed atomic load and two null-pointer writes — safe to leave in the
// hottest paths. When enabled, each span records into a per-thread ring
// (no lock on the record path; registration of a new thread takes a mutex
// once). Rings hold the most recent kRingCapacity spans per thread; older
// spans are overwritten and reported as `dropped` on export. Exiting
// threads return their ring to a free list, so lane ids ("tids") are
// worker slots, not OS thread ids, and total memory stays bounded by the
// peak concurrent thread count.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <iosfwd>

namespace headtalk::obs {

namespace detail {
extern std::atomic<bool> g_tracing_enabled;
}  // namespace detail

[[nodiscard]] inline bool tracing_enabled() noexcept {
  return detail::g_tracing_enabled.load(std::memory_order_relaxed);
}
void set_tracing_enabled(bool enabled) noexcept;

/// Microseconds on the steady clock (arbitrary epoch; only differences and
/// intra-trace ordering are meaningful).
[[nodiscard]] std::uint64_t now_micros() noexcept;

class Tracer {
 public:
  static Tracer& global();

  /// Records one completed span into the calling thread's ring. `name`
  /// must outlive the tracer (string literals in practice).
  void record(const char* name, std::uint64_t start_us, std::uint64_t duration_us);

  /// Chrome trace-event JSON ({"traceEvents":[...]}). Call after the spans
  /// of interest have finished; spans recorded concurrently with the
  /// export may be missed.
  void write_chrome_trace(std::ostream& out) const;
  /// Returns false (after logging a warning) when the file cannot be written.
  bool write_chrome_trace_file(const std::filesystem::path& path) const;

  /// Spans currently held across all rings (capped by ring capacity).
  [[nodiscard]] std::size_t span_count() const;
  /// Spans overwritten because a ring wrapped.
  [[nodiscard]] std::size_t dropped_count() const;

  /// Empties every ring (test helper; do not race with active spans).
  void clear();
};

class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) noexcept
      : name_(tracing_enabled() ? name : nullptr),
        start_us_(name_ != nullptr ? now_micros() : 0) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (name_ != nullptr) {
      Tracer::global().record(name_, start_us_, now_micros() - start_us_);
    }
  }

 private:
  const char* name_;
  std::uint64_t start_us_;
};

}  // namespace headtalk::obs
