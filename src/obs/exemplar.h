// Slow-utterance exemplars: the Chrome-trace spans of the K slowest
// utterances seen so far, retained for live dump via the admin plane's
// /stats.json.
//
// Aggregate histograms (pipeline.stage.*_seconds) say *that* p99 moved;
// an exemplar says *where the time went* inside one concrete slow
// utterance — per-stage spans with real timestamps, loadable straight
// into chrome://tracing. The ring keeps the K slowest by total seconds.
//
// Cost model: offer() first reads one relaxed atomic (the admission
// threshold — the fastest retained total once the ring is full) and
// returns immediately for the common fast utterance; only an utterance
// slow enough to displace an exemplar takes the mutex. That keeps the
// hot scoring path at one load per utterance.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace headtalk::obs {

/// One completed stage inside an utterance, in trace-event terms
/// (microseconds on the steady clock, same epoch as obs::now_micros()).
struct ExemplarSpan {
  const char* name = "";  ///< string literal (pipeline stage name)
  std::uint64_t start_us = 0;
  std::uint64_t duration_us = 0;
};

/// A retained slow utterance.
struct Exemplar {
  double total_seconds = 0.0;
  std::uint64_t captured_us = 0;  ///< end-of-utterance, steady-clock µs
  std::string label;              ///< e.g. decision name or caller tag
  struct Span {
    std::string name;
    std::uint64_t start_us = 0;
    std::uint64_t duration_us = 0;
  };
  std::vector<Span> spans;
};

class SlowExemplarRing {
 public:
  explicit SlowExemplarRing(std::size_t capacity = 8);

  /// Process-wide ring the pipeline reports into (capacity 8).
  static SlowExemplarRing& global();

  /// Offers one finished utterance; retained only while it ranks among the
  /// K slowest. `spans` is copied on admission, never on rejection.
  void offer(double total_seconds, std::string_view label,
             std::span<const ExemplarSpan> spans);

  /// Slowest-first copy of the retained exemplars.
  [[nodiscard]] std::vector<Exemplar> snapshot() const;

  /// JSON array of the retained exemplars, slowest first:
  /// [{"total_seconds":..,"label":"..","captured_us":..,
  ///   "spans":[{"name":"..","ts":..,"dur":..},...]},...]
  /// Span "ts"/"dur" are Chrome trace-event microseconds.
  void write_json(std::ostream& out) const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const;
  /// Utterances offered so far (admitted or not).
  [[nodiscard]] std::uint64_t offered() const noexcept {
    return offered_.load(std::memory_order_relaxed);
  }

  void clear();

 private:
  const std::size_t capacity_;
  /// Admission gate: fastest retained total once full, else 0 (admit all).
  std::atomic<double> threshold_{0.0};
  std::atomic<std::uint64_t> offered_{0};
  mutable std::mutex mutex_;
  std::vector<Exemplar> exemplars_;  ///< sorted slowest-first, <= capacity_
};

}  // namespace headtalk::obs
