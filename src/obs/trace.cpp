#include "obs/trace.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#include <unistd.h>

#include "obs/log.h"
#include "util/json.h"

namespace headtalk::obs {

namespace detail {
std::atomic<bool> g_tracing_enabled{false};
}  // namespace detail

namespace {

constexpr std::size_t kRingCapacity = 4096;

struct SpanRecord {
  const char* name = nullptr;
  std::uint64_t start_us = 0;
  std::uint64_t duration_us = 0;
};

struct ThreadRing {
  std::array<SpanRecord, kRingCapacity> records;
  // Total spans ever written; the release store publishes the record to
  // the exporting thread (which loads with acquire). Slots older than
  // `written - kRingCapacity` are overwritten, i.e. dropped.
  std::atomic<std::uint64_t> written{0};
  std::uint32_t lane = 0;
};

struct RingDirectory {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadRing>> rings;
  std::vector<ThreadRing*> free_rings;

  ThreadRing* acquire() {
    std::lock_guard lock(mutex);
    if (!free_rings.empty()) {
      ThreadRing* ring = free_rings.back();
      free_rings.pop_back();
      return ring;
    }
    rings.push_back(std::make_unique<ThreadRing>());
    rings.back()->lane = static_cast<std::uint32_t>(rings.size());
    return rings.back().get();
  }

  void release(ThreadRing* ring) {
    std::lock_guard lock(mutex);
    free_rings.push_back(ring);
  }
};

RingDirectory& directory() {
  static RingDirectory* dir = new RingDirectory;  // never destroyed: worker
  return *dir;  // threads may outlive static teardown of a plain local
}

// Leases a ring for the lifetime of the thread and returns it to the free
// list on thread exit, so lanes are recycled across short-lived pools.
struct RingLease {
  ThreadRing* ring = directory().acquire();
  ~RingLease() { directory().release(ring); }
};

ThreadRing& thread_ring() {
  thread_local RingLease lease;
  return *lease.ring;
}

}  // namespace

void set_tracing_enabled(bool enabled) noexcept {
  detail::g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

std::uint64_t now_micros() noexcept {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::record(const char* name, std::uint64_t start_us, std::uint64_t duration_us) {
  ThreadRing& ring = thread_ring();
  const std::uint64_t index = ring.written.load(std::memory_order_relaxed);
  ring.records[index % kRingCapacity] = SpanRecord{name, start_us, duration_us};
  ring.written.store(index + 1, std::memory_order_release);
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  auto& dir = directory();
  std::lock_guard lock(dir.mutex);
  const auto pid = static_cast<long>(::getpid());
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& ring : dir.rings) {
    const std::uint64_t written = ring->written.load(std::memory_order_acquire);
    const std::uint64_t held = std::min<std::uint64_t>(written, kRingCapacity);
    for (std::uint64_t i = written - held; i < written; ++i) {
      const SpanRecord& record = ring->records[i % kRingCapacity];
      out << (first ? "" : ",") << "{\"name\":\"" << util::json_escape(record.name)
          << "\",\"cat\":\"headtalk\",\"ph\":\"X\",\"ts\":" << record.start_us
          << ",\"dur\":" << record.duration_us << ",\"pid\":" << pid
          << ",\"tid\":" << ring->lane << '}';
      first = false;
    }
  }
  out << "]}";
}

bool Tracer::write_chrome_trace_file(const std::filesystem::path& path) const {
  std::ofstream out(path);
  if (out) {
    write_chrome_trace(out);
    out << '\n';
  }
  if (!out) {
    log_warn("obs.trace.write_failed", {{"path", path.string()}});
    return false;
  }
  return true;
}

std::size_t Tracer::span_count() const {
  auto& dir = directory();
  std::lock_guard lock(dir.mutex);
  std::size_t total = 0;
  for (const auto& ring : dir.rings) {
    total += static_cast<std::size_t>(
        std::min<std::uint64_t>(ring->written.load(std::memory_order_acquire), kRingCapacity));
  }
  return total;
}

std::size_t Tracer::dropped_count() const {
  auto& dir = directory();
  std::lock_guard lock(dir.mutex);
  std::size_t total = 0;
  for (const auto& ring : dir.rings) {
    const std::uint64_t written = ring->written.load(std::memory_order_acquire);
    if (written > kRingCapacity) total += static_cast<std::size_t>(written - kRingCapacity);
  }
  return total;
}

void Tracer::clear() {
  auto& dir = directory();
  std::lock_guard lock(dir.mutex);
  for (const auto& ring : dir.rings) ring->written.store(0, std::memory_order_release);
}

}  // namespace headtalk::obs
