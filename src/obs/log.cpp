#include "obs/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace headtalk::obs {
namespace {

std::atomic<int>& level_store() {
  static std::atomic<int> level{[] {
    const char* env = std::getenv("HEADTALK_LOG");
    const LogLevel parsed =
        env == nullptr ? LogLevel::kInfo : parse_log_level(env, LogLevel::kInfo);
    return static_cast<int>(parsed);
  }()};
  return level;
}

std::mutex& write_mutex() {
  static std::mutex mutex;
  return mutex;
}

bool needs_quoting(const std::string& value) {
  if (value.empty()) return true;
  for (const char c : value) {
    if (c == ' ' || c == '=' || c == '"' || c == '\t' || c == '\n') return true;
  }
  return false;
}

void append_value(std::string& out, const std::string& value) {
  if (!needs_quoting(value)) {
    out += value;
    return;
  }
  out += '"';
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  out += '"';
}

}  // namespace

std::string_view log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "?";
}

LogLevel parse_log_level(std::string_view text, LogLevel fallback) noexcept {
  if (text == "debug") return LogLevel::kDebug;
  if (text == "info") return LogLevel::kInfo;
  if (text == "warn" || text == "warning") return LogLevel::kWarn;
  if (text == "error") return LogLevel::kError;
  if (text == "off" || text == "none") return LogLevel::kOff;
  return fallback;
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(level_store().load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) noexcept {
  level_store().store(static_cast<int>(level), std::memory_order_relaxed);
}

bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >= level_store().load(std::memory_order_relaxed) &&
         level != LogLevel::kOff;
}

std::string LogField::format_number(double v) {
  char text[32];
  std::snprintf(text, sizeof text, "%.6g", v);
  return text;
}

std::string format_log_line(LogLevel level, std::string_view event,
                            std::initializer_list<LogField> fields) {
  std::string line;
  line.reserve(64);
  line += '[';
  line += log_level_name(level);
  line += "] ";
  line += event;
  for (const auto& field : fields) {
    line += ' ';
    line += field.key;
    line += '=';
    append_value(line, field.value);
  }
  return line;
}

void log(LogLevel level, std::string_view event, std::initializer_list<LogField> fields) {
  if (!log_enabled(level)) return;
  const std::string line = format_log_line(level, event, fields);
  std::lock_guard lock(write_mutex());
  std::fprintf(stderr, "%s\n", line.c_str());
}

}  // namespace headtalk::obs
