// Live metrics exposition and cross-process aggregation.
//
// The MetricsRegistry (obs/metrics.h) is an in-process store; this layer
// turns it into wire formats a running daemon can serve and an aggregator
// can combine:
//
//   - snapshot():        a point-in-time, plain-data copy of a Registry —
//                        safe to render, ship, or merge after the fact.
//   - write_prometheus(): Prometheus text exposition (format 0.0.4):
//                        counters, gauges, and histograms with *cumulative*
//                        `_bucket{le="..."}` series plus `_sum`/`_count`,
//                        ending in le="+Inf". Metric names are the registry
//                        names with every character outside [a-zA-Z0-9_:]
//                        mapped to '_' (so `pipeline.decision.accepted`
//                        scrapes as `pipeline_decision_accepted`).
//   - write_snapshot_json()/parse_snapshot_json(): a lossless JSON form
//                        (per-bucket counts, not quantiles) that round-
//                        trips through parse — the shipping format for
//                        per-shard aggregation.
//   - merge_into():      combines snapshots from N processes: counters
//                        sum, histogram buckets/count/sum add (bounds must
//                        match exactly — a mismatch throws, it is a config
//                        error, not data), gauges combine under a policy
//                        (default kMax; per-name overrides for gauges
//                        where min/sum/last is the meaningful aggregate).
//
// Everything here works on plain structs; nothing holds registry locks
// beyond the initial snapshot, so rendering and merging never stall
// scoring threads.
#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace headtalk::obs {

/// Plain-data copy of one histogram: `buckets` has bounds.size() + 1
/// entries, the last being the overflow (+Inf) bucket, and holds
/// *per-bucket* counts (the Prometheus writer accumulates them).
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  double sum = 0.0;

  bool operator==(const HistogramSnapshot&) const = default;
};

/// Point-in-time copy of a whole registry.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  bool operator==(const MetricsSnapshot&) const = default;
};

/// Copies every instrument of `registry` (Registry::global() by default).
[[nodiscard]] MetricsSnapshot snapshot(const Registry& registry = Registry::global());

/// q in [0, 1] interpolated inside the containing bucket; 0 when empty,
/// bounds.back() for ranks in the overflow bucket — the same estimator the
/// in-process Histogram::quantile uses, applied to shipped data.
[[nodiscard]] double snapshot_quantile(const HistogramSnapshot& histogram, double q);

/// Registry name -> Prometheus metric name ([a-zA-Z0-9_:] survives, the
/// rest becomes '_').
[[nodiscard]] std::string prometheus_name(std::string_view name);

/// Prometheus text exposition format 0.0.4 (one # TYPE line per metric).
void write_prometheus(std::ostream& out, const MetricsSnapshot& snapshot);
[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& snapshot);

/// Lossless JSON form: {"snapshot_version":1,"counters":{...},
/// "gauges":{...},"histograms":{name:{"bounds":[...],"buckets":[...],
/// "count":N,"sum":S}}}. Buckets carry the overflow count as the last
/// element. Parse accepts exactly what write emits (unknown keys inside a
/// histogram object are ignored so the form can grow).
void write_snapshot_json(std::ostream& out, const MetricsSnapshot& snapshot);
[[nodiscard]] std::string to_snapshot_json(const MetricsSnapshot& snapshot);

/// Throws util::JsonError on malformed JSON and std::invalid_argument on a
/// structurally wrong snapshot (missing keys, bucket/bound length skew).
[[nodiscard]] MetricsSnapshot parse_snapshot_json(std::string_view text);

/// Writes the snapshot JSON (plus trailing newline) to `path`; returns
/// false after logging a warning when the file cannot be written. This is
/// what `--metrics-out` emits — the same bytes a /metrics.json scrape of
/// the process would have returned, so offline and live consumers share
/// one format.
bool write_snapshot_json_file(const std::filesystem::path& path,
                              const MetricsSnapshot& snapshot);

/// How two gauge values combine in a merge. Counters always sum and
/// histograms always add per-bucket; gauges are instantaneous readings, so
/// the right combination depends on what the gauge measures (active
/// connections aggregate by sum, a high-water mark by max, ...).
enum class GaugeMergePolicy { kMax, kMin, kSum, kLast };

struct MergeOptions {
  GaugeMergePolicy default_gauge = GaugeMergePolicy::kMax;
  /// Per-name overrides, e.g. {"serve.active_connections", kSum}.
  std::map<std::string, GaugeMergePolicy> gauge_overrides;
};

/// Folds `from` into `into`. Histograms present in both must have
/// identical bounds (std::invalid_argument otherwise, naming the metric);
/// instruments present in only one side are kept as-is.
void merge_into(MetricsSnapshot& into, const MetricsSnapshot& from,
                const MergeOptions& options = {});

/// Convenience: merge of N snapshots (empty input -> empty snapshot).
[[nodiscard]] MetricsSnapshot merge(const std::vector<MetricsSnapshot>& snapshots,
                                    const MergeOptions& options = {});

}  // namespace headtalk::obs
