// Leveled, structured logging: one line per event, `key=value` fields.
//
//   obs::log_info("sim.collect", {{"done", n}, {"total", specs.size()}});
//     -> [info] sim.collect done=25 total=100
//
// The threshold comes from $HEADTALK_LOG (debug|info|warn|error|off;
// default info), parsed once on first use; set_log_level() overrides it at
// runtime. Lines go to stderr under a mutex so concurrent workers never
// interleave. A disabled level costs one relaxed atomic load.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <type_traits>

namespace headtalk::obs {

enum class LogLevel : int { kDebug = 0, kInfo, kWarn, kError, kOff };

[[nodiscard]] std::string_view log_level_name(LogLevel level) noexcept;
/// Case-sensitive names as documented above; unknown text -> `fallback`.
[[nodiscard]] LogLevel parse_log_level(std::string_view text, LogLevel fallback) noexcept;

[[nodiscard]] LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] bool log_enabled(LogLevel level) noexcept;

/// One `key=value` pair. Values containing spaces, '=' or quotes are
/// double-quoted with minimal escaping so lines stay machine-splittable.
struct LogField {
  std::string_view key;
  std::string value;

  LogField(std::string_view k, std::string_view v) : key(k), value(v) {}
  LogField(std::string_view k, const char* v) : key(k), value(v == nullptr ? "" : v) {}
  LogField(std::string_view k, const std::string& v) : key(k), value(v) {}
  LogField(std::string_view k, bool v) : key(k), value(v ? "true" : "false") {}
  template <typename T,
            std::enable_if_t<std::is_arithmetic_v<T> && !std::is_same_v<T, bool>, int> = 0>
  LogField(std::string_view k, T v) : key(k), value(format_number(v)) {}

 private:
  static std::string format_number(double v);
  static std::string format_number(std::uint64_t v) { return std::to_string(v); }
  static std::string format_number(std::int64_t v) { return std::to_string(v); }
  template <typename T>
  static std::string format_number(T v) {
    if constexpr (std::is_floating_point_v<T>) {
      return format_number(static_cast<double>(v));
    } else if constexpr (std::is_signed_v<T>) {
      return format_number(static_cast<std::int64_t>(v));
    } else {
      return format_number(static_cast<std::uint64_t>(v));
    }
  }
};

/// The full line (without trailing newline) exactly as log() writes it;
/// exposed so tests can pin the format.
[[nodiscard]] std::string format_log_line(LogLevel level, std::string_view event,
                                          std::initializer_list<LogField> fields);

/// Writes one line to stderr when `level` passes the threshold.
void log(LogLevel level, std::string_view event,
         std::initializer_list<LogField> fields = {});

inline void log_debug(std::string_view event, std::initializer_list<LogField> fields = {}) {
  log(LogLevel::kDebug, event, fields);
}
inline void log_info(std::string_view event, std::initializer_list<LogField> fields = {}) {
  log(LogLevel::kInfo, event, fields);
}
inline void log_warn(std::string_view event, std::initializer_list<LogField> fields = {}) {
  log(LogLevel::kWarn, event, fields);
}
inline void log_error(std::string_view event, std::initializer_list<LogField> fields = {}) {
  log(LogLevel::kError, event, fields);
}

}  // namespace headtalk::obs
