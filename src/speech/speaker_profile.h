// Per-speaker voice parameters.
//
// The paper's corpus comes from human speakers across many sessions; the
// synthetic substrate models the axes along which real voices (and the same
// voice across days — §IV-B9 temporal drift) vary: pitch, formant scaling,
// speaking rate, breathiness, and micro-instabilities (jitter/shimmer).
#pragma once

#include <cstdint>
#include <random>

namespace headtalk::speech {

struct SpeakerProfile {
  double f0_hz = 120.0;          ///< base pitch
  double f0_declination = 0.15;  ///< fractional pitch drop across an utterance
  double formant_scale = 1.0;    ///< vocal-tract length factor (~0.85 female, ~1.0 male)
  double rate_scale = 1.0;       ///< speaking-rate multiplier (>1 = faster)
  double jitter = 0.01;          ///< cycle-to-cycle F0 perturbation (fraction)
  double shimmer = 0.05;         ///< cycle-to-cycle amplitude perturbation
  double breathiness = 0.08;     ///< aspiration-noise mix into the voiced source
  double fricative_gain = 1.0;   ///< relative strength of fricative noise (HF energy)

  /// Draws a plausible adult voice. Deterministic in the generator state.
  static SpeakerProfile random(std::mt19937& rng);

  /// Returns this voice after `days` of natural drift (slight pitch/formant/
  /// rate movement), used by the temporal-stability experiments. Drift is
  /// deterministic in the rng state and grows sub-linearly with time.
  [[nodiscard]] SpeakerProfile drifted(double days, std::mt19937& rng) const;
};

}  // namespace headtalk::speech
