// Phoneme inventory and wake-word scripts.
//
// The synthesizer is a classic source-filter (formant) design; a phoneme is
// a target configuration — formant frequencies/bandwidths for the vocal
// tract, a noise band for frication, voicing and timing. Values follow
// standard American-English formant tables (Peterson & Barney style),
// rounded; exact phonetic fidelity is not required, broadband speech-like
// structure is.
#pragma once

#include <array>
#include <string>
#include <string_view>
#include <vector>

namespace headtalk::speech {

enum class PhonemeType {
  kVowel,
  kNasal,
  kApproximant,
  kVoicelessFricative,
  kVoicedFricative,
  kPlosive,        ///< voiceless stop: closure silence then burst + aspiration
  kVoicedPlosive,  ///< voiced stop: short closure then voiced release
  kSilence,
};

struct Phoneme {
  std::string symbol;
  PhonemeType type = PhonemeType::kSilence;
  /// First four formant frequencies (Hz); ignored for pure noise segments.
  std::array<double, 4> formants{500.0, 1500.0, 2500.0, 3500.0};
  /// Formant bandwidths (Hz).
  std::array<double, 4> bandwidths{60.0, 90.0, 120.0, 160.0};
  /// Frication noise band (Hz); used by fricatives and plosive bursts.
  double noise_center_hz = 0.0;
  double noise_bandwidth_hz = 0.0;
  bool voiced = false;
  double duration_ms = 80.0;
  double amplitude = 1.0;
};

/// Looks up a phoneme prototype by symbol (e.g. "AA", "S", "T").
/// Throws std::out_of_range for unknown symbols.
[[nodiscard]] const Phoneme& phoneme(std::string_view symbol);

/// The wake words used throughout the paper (§IV "Data Collection").
enum class WakeWord {
  kComputer,      ///< "Computer"
  kAmazon,        ///< "Amazon"
  kHeyAssistant,  ///< "Hey Assistant!"
};

[[nodiscard]] std::string_view wake_word_name(WakeWord word);

/// All three wake words, for dataset sweeps.
[[nodiscard]] const std::vector<WakeWord>& all_wake_words();

/// Phoneme sequence for a wake word.
[[nodiscard]] std::vector<Phoneme> wake_word_script(WakeWord word);

}  // namespace headtalk::speech
