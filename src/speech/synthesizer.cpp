#include "speech/synthesizer.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <random>

#include "audio/gain.h"
#include "dsp/biquad.h"

namespace headtalk::speech {
namespace {

// Klatt-style two-pole resonator with unity DC gain; coefficients are
// re-derived when formant targets move.
class Resonator {
 public:
  void set(double freq_hz, double bandwidth_hz, double sample_rate) {
    const double c = -std::exp(-2.0 * std::numbers::pi * bandwidth_hz / sample_rate);
    const double b = 2.0 * std::exp(-std::numbers::pi * bandwidth_hz / sample_rate) *
                     std::cos(2.0 * std::numbers::pi * freq_hz / sample_rate);
    c_ = c;
    b_ = b;
    a_ = 1.0 - b - c;
  }

  [[nodiscard]] double process(double x) noexcept {
    const double y = a_ * x + b_ * y1_ + c_ * y2_;
    y2_ = y1_;
    y1_ = y;
    return y;
  }

 private:
  double a_ = 1.0, b_ = 0.0, c_ = 0.0;
  double y1_ = 0.0, y2_ = 0.0;
};

// Rosenberg glottal flow derivative over one normalized period.
// `phase` in [0,1); opening fraction 0.4, closing 0.16.
double glottal_derivative(double phase) {
  constexpr double open = 0.40;
  constexpr double close = 0.16;
  if (phase < open) {
    // Rising half-cosine flow -> derivative is a positive sine arch.
    return 0.5 * (std::numbers::pi / open) * std::sin(std::numbers::pi * phase / open);
  }
  if (phase < open + close) {
    // Sharp closing phase: the dominant negative spike of voiced excitation.
    const double u = (phase - open) / close;
    return -(std::numbers::pi / (2.0 * close)) * std::sin(std::numbers::pi * u);
  }
  return 0.0;  // closed phase
}

struct Segment {
  Phoneme phoneme;
  std::size_t start = 0;  // samples
  std::size_t length = 0;
};

}  // namespace

audio::Buffer synthesize(const std::vector<Phoneme>& script,
                         const SpeakerProfile& profile, std::uint32_t seed,
                         const SynthesisConfig& config) {
  const double fs = config.sample_rate;
  std::mt19937 rng(seed);
  std::normal_distribution<double> gauss(0.0, 1.0);
  std::uniform_real_distribution<double> uni(-1.0, 1.0);

  // --- Lay out segments on the sample timeline ---
  std::vector<Segment> segments;
  std::size_t cursor = 0;
  for (const auto& ph : script) {
    Segment seg;
    seg.phoneme = ph;
    const double dur_ms = ph.duration_ms / profile.rate_scale *
                          (1.0 + 0.06 * gauss(rng));  // natural timing variation
    seg.length = static_cast<std::size_t>(std::max(16.0, dur_ms * fs / 1000.0));
    seg.start = cursor;
    cursor += seg.length;
    segments.push_back(seg);
  }
  const std::size_t pad = static_cast<std::size_t>(0.02 * fs);  // leading/trailing room
  const std::size_t total = cursor + 2 * pad;
  audio::Buffer out(total, fs);
  if (segments.empty()) return out;

  // --- Per-sample synthesis state ---
  std::array<Resonator, 4> tract;
  dsp::Biquad fric_filter;  // band-pass for frication noise
  double fric_center = 0.0, fric_bw = 0.0;

  double phase = 0.0;              // glottal phase in [0,1)
  double period_f0 = profile.f0_hz;  // F0 of the current glottal cycle
  double period_amp = 1.0;           // shimmer of the current cycle

  const auto transition_samples =
      static_cast<double>(std::max(1.0, config.transition_ms * fs / 1000.0));
  const int block = static_cast<int>(fs / 1000.0);  // coefficient update cadence: 1 ms
  int block_countdown = 0;

  const double utter_len = static_cast<double>(cursor);

  for (std::size_t si = 0; si < segments.size(); ++si) {
    const Segment& seg = segments[si];
    const Phoneme& ph = seg.phoneme;
    const Phoneme* prev = si > 0 ? &segments[si - 1].phoneme : nullptr;

    const bool is_stop =
        ph.type == PhonemeType::kPlosive || ph.type == PhonemeType::kVoicedPlosive;
    // Stop layout: closure silence, then a burst, then aspiration/voicing.
    const std::size_t closure =
        is_stop ? static_cast<std::size_t>(0.45 * static_cast<double>(seg.length)) : 0;
    const std::size_t burst_len = is_stop ? static_cast<std::size_t>(0.010 * fs) : 0;

    for (std::size_t i = 0; i < seg.length; ++i) {
      const std::size_t n = pad + seg.start + i;
      const double t_in_utterance = static_cast<double>(seg.start + i) / utter_len;

      // --- Formant interpolation across the boundary ---
      double alpha = 1.0;
      if (prev != nullptr && prev->type != PhonemeType::kSilence &&
          static_cast<double>(i) < transition_samples) {
        alpha = static_cast<double>(i) / transition_samples;
      }
      if (block_countdown-- <= 0) {
        block_countdown = block;
        for (std::size_t f = 0; f < 4; ++f) {
          const double from = prev != nullptr ? prev->formants[f] : ph.formants[f];
          const double to = ph.formants[f];
          const double freq =
              (from + (to - from) * alpha) * profile.formant_scale;
          const double from_bw = prev != nullptr ? prev->bandwidths[f] : ph.bandwidths[f];
          const double bw = std::max(40.0, from_bw + (ph.bandwidths[f] - from_bw) * alpha);
          tract[f].set(std::max(80.0, freq), bw, fs);
        }
        if (ph.noise_center_hz > 0.0 &&
            (ph.noise_center_hz != fric_center || ph.noise_bandwidth_hz != fric_bw)) {
          fric_center = ph.noise_center_hz;
          fric_bw = ph.noise_bandwidth_hz;
          // RBJ constant-peak band-pass.
          const double w0 = 2.0 * std::numbers::pi * fric_center / fs;
          const double q = std::max(0.3, fric_center / std::max(100.0, fric_bw));
          const double alpha_f = std::sin(w0) / (2.0 * q);
          const double a0 = 1.0 + alpha_f;
          fric_filter.b0 = alpha_f / a0;
          fric_filter.b1 = 0.0;
          fric_filter.b2 = -alpha_f / a0;
          fric_filter.a1 = -2.0 * std::cos(w0) / a0;
          fric_filter.a2 = (1.0 - alpha_f) / a0;
        }
      }

      // --- Amplitude envelope (attack / release around each segment) ---
      const double edge = 0.008 * fs;
      double env = 1.0;
      env = std::min(env, static_cast<double>(i) / edge);
      env = std::min(env, static_cast<double>(seg.length - i) / edge);
      env = std::clamp(env, 0.0, 1.0) * ph.amplitude;

      double sample = 0.0;

      // --- Voiced source through the vocal tract ---
      const bool voiced_now = ph.voiced && (!is_stop || i >= closure + burst_len);
      if (voiced_now) {
        // Advance the glottal cycle; pick new F0/amplitude at each closure.
        const double f0 = period_f0 * (1.0 - profile.f0_declination * t_in_utterance);
        phase += f0 / fs;
        if (phase >= 1.0) {
          phase -= 1.0;
          period_f0 = profile.f0_hz * (1.0 + profile.jitter * gauss(rng));
          period_amp = 1.0 + profile.shimmer * gauss(rng);
        }
        double source = glottal_derivative(phase) * period_amp;
        source += profile.breathiness * gauss(rng);  // aspiration
        double v = source;
        for (auto& r : tract) v = r.process(v);
        sample += v * env;
      }

      // --- Frication / bursts ---
      double noise_gain = 0.0;
      if (ph.type == PhonemeType::kVoicelessFricative ||
          ph.type == PhonemeType::kVoicedFricative) {
        noise_gain = 1.0;
      } else if (is_stop) {
        if (i >= closure && i < closure + burst_len) {
          noise_gain = 2.5;  // release burst
        } else if (i >= closure + burst_len &&
                   i < closure + burst_len + static_cast<std::size_t>(0.02 * fs) &&
                   ph.type == PhonemeType::kPlosive) {
          noise_gain = 0.6;  // aspiration tail of voiceless stops
        }
      }
      if (noise_gain > 0.0 && ph.noise_center_hz > 0.0) {
        const double n_in = uni(rng);
        sample += fric_filter.process(n_in) * noise_gain * env *
                  profile.fricative_gain * 2.0;
      }

      out[n] += sample;
    }
  }

  // --- Lip radiation: first difference (+6 dB/oct) ---
  double prev_sample = 0.0;
  for (auto& s : out.data()) {
    const double cur = s;
    s = cur - 0.95 * prev_sample;
    prev_sample = cur;
  }

  audio::normalize_peak(out, config.peak);
  return out;
}

audio::Buffer synthesize_wake_word(WakeWord word, const SpeakerProfile& profile,
                                   std::uint32_t seed, const SynthesisConfig& config) {
  return synthesize(wake_word_script(word), profile, seed, config);
}

}  // namespace headtalk::speech
