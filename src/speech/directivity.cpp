#include "speech/directivity.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace headtalk::speech {

std::vector<double> Directivity::band_gains(std::span<const double> centers_hz,
                                            double angle_rad) const {
  std::vector<double> out;
  out.reserve(centers_hz.size());
  for (double f : centers_hz) out.push_back(gain(f, angle_rad));
  return out;
}

double HumanSpeechDirectivity::gain(double frequency_hz, double angle_rad) const {
  const double f = std::max(50.0, frequency_hz);
  // Front-back attenuation in dB, rising with log-frequency:
  // ~5 dB @160 Hz, ~10 dB @1 kHz, ~15 dB @3.2 kHz, ~20 dB @8 kHz.
  const double depth_db =
      std::clamp(5.0 + 2.66 * std::log2(f / 160.0), 2.0, 24.0) * strength_;
  // Flattened cardioid: exponent > 1 keeps the facing cone (±30°) nearly
  // constant while the rear rolls off smoothly.
  const double theta = std::clamp(std::abs(angle_rad), 0.0, std::numbers::pi);
  const double shape = std::pow((1.0 - std::cos(theta)) / 2.0, 1.25);
  return std::pow(10.0, -depth_db * shape / 20.0);
}

double LoudspeakerDirectivity::gain(double frequency_hz, double angle_rad) const {
  // Piston in an infinite baffle: |2 J1(ka sin θ) / (ka sin θ)|, floored so
  // reflections never vanish entirely (real cabinets leak and diffract).
  constexpr double c = 343.0;
  const double theta = std::clamp(std::abs(angle_rad), 0.0, std::numbers::pi);
  const double ka = 2.0 * std::numbers::pi * frequency_hz / c * radius_m_;
  const double x = ka * std::sin(theta);
  double g = 1.0;
  if (x > 1e-9) {
    // J1 via the standard ascending series (small x) / asymptotic form.
    double j1;
    if (x < 12.0) {
      double term = x / 2.0;
      double sum = term;
      for (int k = 1; k < 24; ++k) {
        term *= -(x * x) / (4.0 * k * (k + 1.0));
        sum += term;
      }
      j1 = sum;
    } else {
      j1 = std::sqrt(2.0 / (std::numbers::pi * x)) *
           std::cos(x - 3.0 * std::numbers::pi / 4.0);
    }
    g = std::abs(2.0 * j1 / x);
  }
  // Behind the cabinet an additional broadband shadow applies.
  if (theta > std::numbers::pi / 2.0) {
    const double back = (theta - std::numbers::pi / 2.0) / (std::numbers::pi / 2.0);
    g *= std::pow(10.0, -6.0 * back / 20.0);
  }
  return std::clamp(g, 0.05, 1.0);
}

}  // namespace headtalk::speech
