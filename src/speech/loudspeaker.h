// Mechanical (replay) speaker rendering chain.
//
// §III-A / Fig. 3: audio replayed through a loudspeaker loses the strong
// > 4 kHz content of live speech and gains a more uniform high-band floor,
// plus low-frequency cut and mild nonlinear distortion. This module applies
// that electro-acoustic signature to an utterance, turning a "live" signal
// into what an attacker's replay device would emit.
#pragma once

#include <cstdint>
#include <string>

#include "audio/sample_buffer.h"

namespace headtalk::speech {

/// Electro-acoustic parameters of a replay device.
struct LoudspeakerModel {
  std::string name = "generic";
  double low_cutoff_hz = 150.0;    ///< bass roll-off (driver/enclosure limit)
  double high_cutoff_hz = 4200.0;  ///< start of treble roll-off
  double high_rolloff_db_per_oct = 9.0;
  double drive = 1.6;              ///< tanh soft-clip drive (harmonic distortion)
  double noise_floor_db = -58.0;   ///< electronic hiss relative to full scale
  double diaphragm_radius_m = 0.04;

  /// Sony SRS-X5-class high-end portable speaker (Fig. 3b).
  static LoudspeakerModel high_end();
  /// Samsung Galaxy S21-class smartphone speaker (Fig. 3c).
  static LoudspeakerModel smartphone();
  /// TV-speaker-class source for accidental-activation scenarios.
  static LoudspeakerModel television();
};

/// Renders `input` as emitted by the loudspeaker: band-limiting, soft-clip
/// distortion, and additive hiss (seeded). Output has the same length,
/// sample rate, and peak level as the input.
[[nodiscard]] audio::Buffer replay_through(const audio::Buffer& input,
                                           const LoudspeakerModel& model,
                                           std::uint32_t seed);

}  // namespace headtalk::speech
