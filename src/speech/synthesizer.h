// Formant (source-filter) speech synthesizer.
//
// Produces the wake-word utterances the data-collection protocol needs.
// Voiced segments drive a cascade of four time-varying formant resonators
// with a Rosenberg-style glottal source (jitter/shimmer/aspiration per the
// speaker profile); fricatives and stop bursts inject band-passed noise —
// this supplies the > 4 kHz energy that distinguishes live speech from
// loudspeaker replay (Fig. 3).
#pragma once

#include <cstdint>
#include <vector>

#include "audio/sample_buffer.h"
#include "speech/phonemes.h"
#include "speech/speaker_profile.h"

namespace headtalk::speech {

struct SynthesisConfig {
  double sample_rate = audio::kDefaultSampleRate;
  /// Formant-target interpolation time at phoneme boundaries.
  double transition_ms = 25.0;
  /// Peak normalization target of the rendered utterance.
  double peak = 0.9;
};

/// Renders a phoneme script as audio. `seed` drives every stochastic
/// element (jitter, shimmer, noise), so identical inputs render identical
/// audio; vary the seed for repetition-to-repetition diversity.
[[nodiscard]] audio::Buffer synthesize(const std::vector<Phoneme>& script,
                                       const SpeakerProfile& profile,
                                       std::uint32_t seed,
                                       const SynthesisConfig& config = {});

/// Convenience: renders one of the paper's wake words.
[[nodiscard]] audio::Buffer synthesize_wake_word(WakeWord word,
                                                 const SpeakerProfile& profile,
                                                 std::uint32_t seed,
                                                 const SynthesisConfig& config = {});

}  // namespace headtalk::speech
