#include "speech/phonemes.h"

#include <map>
#include <stdexcept>

namespace headtalk::speech {
namespace {

Phoneme make(std::string symbol, PhonemeType type, std::array<double, 4> formants,
             std::array<double, 4> bandwidths, double duration_ms, double amplitude,
             bool voiced, double noise_center = 0.0, double noise_bw = 0.0) {
  Phoneme p;
  p.symbol = std::move(symbol);
  p.type = type;
  p.formants = formants;
  p.bandwidths = bandwidths;
  p.duration_ms = duration_ms;
  p.amplitude = amplitude;
  p.voiced = voiced;
  p.noise_center_hz = noise_center;
  p.noise_bandwidth_hz = noise_bw;
  return p;
}

const std::map<std::string, Phoneme, std::less<>>& table() {
  static const std::map<std::string, Phoneme, std::less<>> t = [] {
    std::map<std::string, Phoneme, std::less<>> m;
    auto add = [&m](Phoneme p) { m.emplace(p.symbol, std::move(p)); };

    // --- Vowels (F1..F4 Hz / bandwidths Hz) ---
    add(make("AA", PhonemeType::kVowel, {730, 1090, 2440, 3400}, {80, 90, 120, 170}, 110, 1.0, true));   // f(a)ther
    add(make("AE", PhonemeType::kVowel, {660, 1720, 2410, 3400}, {80, 90, 120, 170}, 110, 1.0, true));   // c(a)t
    add(make("AH", PhonemeType::kVowel, {640, 1190, 2390, 3400}, {80, 90, 120, 170}, 80, 0.9, true));    // b(u)t / schwa-ish
    add(make("AX", PhonemeType::kVowel, {500, 1500, 2500, 3400}, {90, 110, 140, 180}, 55, 0.75, true));  // schwa
    add(make("AO", PhonemeType::kVowel, {570, 840, 2410, 3300}, {80, 90, 120, 170}, 105, 1.0, true));    // am(a)zon final-ish
    add(make("EY", PhonemeType::kVowel, {480, 1980, 2550, 3450}, {70, 90, 120, 170}, 130, 1.0, true));   // h(ey)
    add(make("IH", PhonemeType::kVowel, {390, 1990, 2550, 3500}, {70, 90, 120, 170}, 75, 0.9, true));    // b(i)t
    add(make("IY", PhonemeType::kVowel, {270, 2290, 3010, 3600}, {60, 90, 130, 180}, 95, 0.95, true));   // b(ee)t
    add(make("UW", PhonemeType::kVowel, {300, 870, 2240, 3300}, {70, 90, 120, 170}, 100, 0.95, true));   // b(oo)t
    add(make("ER", PhonemeType::kVowel, {490, 1350, 1690, 3300}, {80, 90, 120, 170}, 100, 0.9, true));   // comput(er)

    // --- Nasals ---
    add(make("M", PhonemeType::kNasal, {280, 1100, 2100, 3200}, {60, 150, 200, 250}, 70, 0.5, true));
    add(make("N", PhonemeType::kNasal, {280, 1500, 2400, 3300}, {60, 150, 200, 250}, 65, 0.5, true));

    // --- Approximants / glides ---
    add(make("Y", PhonemeType::kApproximant, {280, 2200, 2950, 3600}, {70, 100, 140, 190}, 45, 0.7, true));
    add(make("W", PhonemeType::kApproximant, {300, 700, 2200, 3200}, {70, 100, 140, 190}, 50, 0.7, true));

    // --- Fricatives (frication band dominates) ---
    add(make("S", PhonemeType::kVoicelessFricative, {300, 1400, 2500, 3500}, {200, 250, 300, 350}, 95, 0.55, false, 6500, 5000));
    add(make("SH", PhonemeType::kVoicelessFricative, {300, 1400, 2300, 3300}, {200, 250, 300, 350}, 95, 0.55, false, 4200, 3500));
    add(make("F", PhonemeType::kVoicelessFricative, {300, 1400, 2500, 3500}, {200, 250, 300, 350}, 80, 0.35, false, 5500, 6500));
    add(make("H", PhonemeType::kVoicelessFricative, {500, 1500, 2500, 3500}, {300, 300, 350, 400}, 60, 0.3, false, 1800, 2600));
    add(make("Z", PhonemeType::kVoicedFricative, {300, 1400, 2500, 3500}, {150, 200, 250, 300}, 85, 0.5, true, 6000, 5000));
    add(make("V", PhonemeType::kVoicedFricative, {300, 1200, 2300, 3300}, {150, 200, 250, 300}, 70, 0.4, true, 4500, 5000));

    // --- Stops ---
    add(make("P", PhonemeType::kPlosive, {400, 1100, 2300, 3300}, {200, 250, 300, 350}, 85, 0.6, false, 1200, 2200));
    add(make("T", PhonemeType::kPlosive, {400, 1600, 2600, 3500}, {200, 250, 300, 350}, 85, 0.65, false, 4500, 4500));
    add(make("K", PhonemeType::kPlosive, {400, 1800, 2200, 3300}, {200, 250, 300, 350}, 90, 0.65, false, 2500, 2800));
    add(make("B", PhonemeType::kVoicedPlosive, {400, 1100, 2300, 3300}, {150, 200, 250, 300}, 70, 0.6, true, 900, 1500));
    add(make("D", PhonemeType::kVoicedPlosive, {400, 1600, 2600, 3500}, {150, 200, 250, 300}, 70, 0.6, true, 3500, 3500));

    // --- Silence / pause ---
    add(make("SIL", PhonemeType::kSilence, {0, 0, 0, 0}, {0, 0, 0, 0}, 60, 0.0, false));

    return m;
  }();
  return t;
}

}  // namespace

const Phoneme& phoneme(std::string_view symbol) {
  const auto& t = table();
  const auto it = t.find(symbol);
  if (it == t.end()) {
    throw std::out_of_range("phoneme: unknown symbol '" + std::string(symbol) + "'");
  }
  return it->second;
}

std::string_view wake_word_name(WakeWord word) {
  switch (word) {
    case WakeWord::kComputer:
      return "Computer";
    case WakeWord::kAmazon:
      return "Amazon";
    case WakeWord::kHeyAssistant:
      return "Hey Assistant!";
  }
  return "?";
}

const std::vector<WakeWord>& all_wake_words() {
  static const std::vector<WakeWord> words{WakeWord::kComputer, WakeWord::kAmazon,
                                           WakeWord::kHeyAssistant};
  return words;
}

std::vector<Phoneme> wake_word_script(WakeWord word) {
  auto seq = [](std::initializer_list<std::string_view> symbols) {
    std::vector<Phoneme> out;
    out.reserve(symbols.size());
    for (auto s : symbols) out.push_back(phoneme(s));
    return out;
  };
  switch (word) {
    case WakeWord::kComputer:  // k-ah-m-P-Y-UW-T-ER
      return seq({"K", "AX", "M", "P", "Y", "UW", "T", "ER"});
    case WakeWord::kAmazon:  // AE-M-AX-Z-AA-N
      return seq({"AE", "M", "AX", "Z", "AA", "N"});
    case WakeWord::kHeyAssistant:  // H-EY (pause) AX-S-IH-S-T-AX-N-T
      return seq({"H", "EY", "SIL", "AX", "S", "IH", "S", "T", "AX", "N", "T"});
  }
  throw std::invalid_argument("wake_word_script: unknown wake word");
}

}  // namespace headtalk::speech
