#include "speech/speaker_profile.h"

#include <algorithm>
#include <cmath>

namespace headtalk::speech {

SpeakerProfile SpeakerProfile::random(std::mt19937& rng) {
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  SpeakerProfile p;
  if (coin(rng) < 0.5) {
    // Male-range voice.
    p.f0_hz = std::uniform_real_distribution<double>(95.0, 140.0)(rng);
    p.formant_scale = std::uniform_real_distribution<double>(0.95, 1.08)(rng);
  } else {
    // Female-range voice.
    p.f0_hz = std::uniform_real_distribution<double>(170.0, 240.0)(rng);
    p.formant_scale = std::uniform_real_distribution<double>(0.82, 0.95)(rng);
  }
  p.f0_declination = std::uniform_real_distribution<double>(0.08, 0.22)(rng);
  p.rate_scale = std::uniform_real_distribution<double>(0.85, 1.15)(rng);
  p.jitter = std::uniform_real_distribution<double>(0.005, 0.02)(rng);
  p.shimmer = std::uniform_real_distribution<double>(0.03, 0.08)(rng);
  p.breathiness = std::uniform_real_distribution<double>(0.04, 0.12)(rng);
  p.fricative_gain = std::uniform_real_distribution<double>(0.8, 1.25)(rng);
  return p;
}

SpeakerProfile SpeakerProfile::drifted(double days, std::mt19937& rng) const {
  SpeakerProfile p = *this;
  // Day-to-day voice variation saturates: a month sounds different from
  // this morning, but not 30x more different than tomorrow does.
  const double scale = std::min(1.0, 0.3 + 0.2 * std::log1p(days));
  std::normal_distribution<double> g(0.0, 1.0);
  p.f0_hz *= 1.0 + 0.04 * scale * g(rng);
  p.formant_scale *= 1.0 + 0.015 * scale * g(rng);
  p.rate_scale *= 1.0 + 0.06 * scale * g(rng);
  p.breathiness = std::clamp(p.breathiness * (1.0 + 0.25 * scale * g(rng)), 0.01, 0.3);
  p.fricative_gain =
      std::clamp(p.fricative_gain * (1.0 + 0.12 * scale * g(rng)), 0.5, 1.6);
  return p;
}

}  // namespace headtalk::speech
