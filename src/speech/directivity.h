// Sound-source radiation patterns.
//
// Insight 2 of the paper: human speech is directional at high frequency and
// near-omnidirectional at low frequency (Monson et al. [51]). The room
// simulator queries a directivity model for the gain of every emission path
// (direct and image reflections), which is precisely the physical mechanism
// that makes facing vs. non-facing captures distinguishable.
#pragma once

#include <memory>
#include <span>
#include <vector>

namespace headtalk::speech {

/// Abstract radiation pattern: linear gain as a function of frequency and
/// the angle between the source's facing direction and the emission
/// direction (0 = straight ahead, pi = directly behind).
class Directivity {
 public:
  virtual ~Directivity() = default;

  /// Linear gain in (0, 1]; gain(f, 0) == 1 for all models.
  [[nodiscard]] virtual double gain(double frequency_hz, double angle_rad) const = 0;

  /// Convenience: gains at several band-centre frequencies.
  [[nodiscard]] std::vector<double> band_gains(std::span<const double> centers_hz,
                                               double angle_rad) const;
};

/// Human head/mouth directivity fit to the published front-back differences
/// (≈5 dB at 160 Hz rising to ≈20 dB at 8 kHz). The angular shape is a
/// flattened cardioid: nearly constant within the ±30° facing zone, rolling
/// off toward the rear.
class HumanSpeechDirectivity final : public Directivity {
 public:
  /// `strength` scales the frequency-dependent front-back attenuation
  /// (1.0 = published fit). Exposed for sensitivity experiments.
  explicit HumanSpeechDirectivity(double strength = 1.0) : strength_(strength) {}

  [[nodiscard]] double gain(double frequency_hz, double angle_rad) const override;

 private:
  double strength_;
};

/// Circular-piston-style loudspeaker directivity: omnidirectional at low
/// frequency, beaming above ~1 kHz. Used for the replay source.
class LoudspeakerDirectivity final : public Directivity {
 public:
  explicit LoudspeakerDirectivity(double diaphragm_radius_m = 0.04)
      : radius_m_(diaphragm_radius_m) {}

  [[nodiscard]] double gain(double frequency_hz, double angle_rad) const override;

 private:
  double radius_m_;
};

/// Perfectly omnidirectional source (reference / ablation).
class OmnidirectionalDirectivity final : public Directivity {
 public:
  [[nodiscard]] double gain(double, double) const override { return 1.0; }
};

}  // namespace headtalk::speech
