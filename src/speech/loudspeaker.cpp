#include "speech/loudspeaker.h"

#include <cmath>
#include <random>

#include "audio/gain.h"
#include "dsp/biquad.h"

namespace headtalk::speech {

LoudspeakerModel LoudspeakerModel::high_end() {
  LoudspeakerModel m;
  m.name = "sony-srs-x5";
  m.low_cutoff_hz = 90.0;
  m.high_cutoff_hz = 4800.0;
  m.high_rolloff_db_per_oct = 8.0;
  m.drive = 1.3;
  m.noise_floor_db = -62.0;
  m.diaphragm_radius_m = 0.045;
  return m;
}

LoudspeakerModel LoudspeakerModel::smartphone() {
  LoudspeakerModel m;
  m.name = "galaxy-s21";
  m.low_cutoff_hz = 350.0;
  m.high_cutoff_hz = 3800.0;
  m.high_rolloff_db_per_oct = 11.0;
  m.drive = 2.2;
  m.noise_floor_db = -54.0;
  m.diaphragm_radius_m = 0.012;
  return m;
}

LoudspeakerModel LoudspeakerModel::television() {
  LoudspeakerModel m;
  m.name = "tv-speaker";
  m.low_cutoff_hz = 180.0;
  m.high_cutoff_hz = 4200.0;
  m.high_rolloff_db_per_oct = 9.0;
  m.drive = 1.8;
  m.noise_floor_db = -56.0;
  m.diaphragm_radius_m = 0.03;
  return m;
}

audio::Buffer replay_through(const audio::Buffer& input, const LoudspeakerModel& model,
                             std::uint32_t seed) {
  const double fs = input.sample_rate();
  const double original_peak = audio::peak(input.samples());
  audio::Buffer out = input;

  // Bass cut: 2nd-order Butterworth high-pass at the enclosure limit.
  auto hp = dsp::butterworth_highpass(2, model.low_cutoff_hz, fs);
  out = hp.filtered(out);

  // Treble roll-off: approximate `high_rolloff_db_per_oct` with a cascade of
  // first-order low-passes at the corner (each contributes ~6 dB/oct).
  const int lp_stages =
      std::max(1, static_cast<int>(std::lround(model.high_rolloff_db_per_oct / 6.0)));
  for (int s = 0; s < lp_stages; ++s) {
    auto lp = dsp::butterworth_lowpass(1, model.high_cutoff_hz, fs);
    out = lp.filtered(out);
  }

  // Driver nonlinearity: odd-harmonic soft clipping. This is what fills the
  // replayed high band with the *uniform* low-level content seen in Fig. 3 —
  // distortion products rather than genuine speech energy.
  const double drive = model.drive;
  const double norm = std::tanh(drive);
  for (auto& s : out.data()) s = std::tanh(drive * s) / norm;

  // Electronic hiss at the device's noise floor.
  std::mt19937 rng(seed);
  std::normal_distribution<double> gauss(0.0, 1.0);
  const double hiss = audio::db_to_amplitude(model.noise_floor_db);
  for (auto& s : out.data()) s += hiss * gauss(rng);

  if (original_peak > 0.0) audio::normalize_peak(out, original_peak);
  return out;
}

}  // namespace headtalk::speech
