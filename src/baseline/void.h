// Baseline: Void-style voice liveness detection (Ahmed et al., USENIX
// Security 2020 — reference [12] of the HeadTalk paper).
//
// Void detects replay attacks from the *shape of the spectral power
// distribution* of a single channel: cumulative power patterns, low-band
// power peaks, and high-band decay, fed to a lightweight classifier. We
// implement its feature spirit (power-distribution statistics rather than
// learned band energies) so the liveness comparison in §II has a concrete
// competitor. The HeadTalk paper notes Void covers at most 2.6 m, whereas
// HeadTalk's detector keeps working at 5 m.
#pragma once

#include "audio/sample_buffer.h"
#include "ml/dataset.h"

namespace headtalk::baseline {

struct VoidFeatureConfig {
  double sample_rate = 16000.0;  ///< Void operates on 16 kHz speech
  std::size_t power_segments = 24;  ///< cumulative-power curve resolution
};

/// Spectral-power-distribution features in the style of Void:
///  - normalized cumulative power curve over `power_segments` points,
///  - low-band (< 1 kHz) peak count and mean spacing,
///  - linearity (R^2) of the cumulative power curve,
///  - high-band decay slope and relative high-band power.
class VoidFeatureExtractor {
 public:
  explicit VoidFeatureExtractor(VoidFeatureConfig config = {}) : config_(config) {}

  [[nodiscard]] ml::FeatureVector extract(const audio::Buffer& channel) const;
  [[nodiscard]] std::size_t dimension() const noexcept {
    return config_.power_segments + 5;
  }

 private:
  VoidFeatureConfig config_;
};

}  // namespace headtalk::baseline
