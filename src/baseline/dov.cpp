#include "baseline/dov.h"

#include <cmath>
#include <stdexcept>

#include "dsp/srp.h"

namespace headtalk::baseline {

int DovFeatureExtractor::effective_max_lag(double sample_rate) const {
  if (config_.max_lag > 0) return config_.max_lag;
  return dsp::srp_max_lag(config_.max_mic_distance_m, sample_rate,
                          config_.speed_of_sound);
}

std::size_t DovFeatureExtractor::dimension(std::size_t channels) const {
  const std::size_t pairs = channels * (channels - 1) / 2;
  const auto lag = static_cast<std::size_t>(effective_max_lag(audio::kDefaultSampleRate));
  return pairs * (2 * lag + 1) + pairs;
}

ml::FeatureVector DovFeatureExtractor::extract(const audio::MultiBuffer& capture) const {
  if (capture.channel_count() < 2) {
    throw std::invalid_argument("DovFeatureExtractor: need >= 2 channels");
  }
  const int max_lag = effective_max_lag(capture.sample_rate());
  const auto gcc = dsp::pairwise_gcc_phat(capture, max_lag);

  ml::FeatureVector features;
  features.reserve(dimension(capture.channel_count()));
  for (const auto& pair : gcc.pairs) {
    features.insert(features.end(), pair.gcc.values.begin(), pair.gcc.values.end());
  }
  for (const auto& pair : gcc.pairs) {
    features.push_back(static_cast<double>(pair.gcc.peak_lag()));
  }
  return features;
}

std::string_view dov_facing_name(DovFacing definition) {
  switch (definition) {
    case DovFacing::kDirectlyFacing:
      return "Directly-Facing";
    case DovFacing::kForwardFacing:
      return "Forward-Facing";
    case DovFacing::kMouthLineOfSight:
      return "Mouth-Line-of-Sight";
  }
  return "?";
}

bool dov_is_facing(DovFacing definition, double angle_deg) {
  const double a = std::abs(angle_deg);
  switch (definition) {
    case DovFacing::kDirectlyFacing:
      return a < 1.0;
    case DovFacing::kForwardFacing:
      return a < 46.0;
    case DovFacing::kMouthLineOfSight:
      return a < 91.0;
  }
  return false;
}

}  // namespace headtalk::baseline
