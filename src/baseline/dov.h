// Baseline: Direction-of-Voice (DoV) estimation after Ahuja et al. [13].
//
// DoV's classifier consumes GCC-PHAT features only (per-pair correlation
// sequences + TDoA) — no SRP-PHAT peak structure and no speech-directivity
// (HLBR / banded low-band) features — and uses different facing
// definitions. HeadTalk's §II comparison claims ~+3% accuracy over this
// approach on the same data; bench_vs_ahuja_baseline reproduces that
// head-to-head.
#pragma once

#include <string_view>
#include <vector>

#include "audio/sample_buffer.h"
#include "ml/dataset.h"

namespace headtalk::baseline {

struct DovFeatureConfig {
  int max_lag = 0;                   ///< 0 = derive from mic spacing
  double max_mic_distance_m = 0.09;
  double speed_of_sound = 340.0;
};

/// GCC-PHAT-only feature extractor (the DoV paper's primary feature).
class DovFeatureExtractor {
 public:
  explicit DovFeatureExtractor(DovFeatureConfig config = {}) : config_(config) {}

  [[nodiscard]] ml::FeatureVector extract(const audio::MultiBuffer& capture) const;
  [[nodiscard]] std::size_t dimension(std::size_t channels) const;
  [[nodiscard]] int effective_max_lag(double sample_rate) const;

 private:
  DovFeatureConfig config_;
};

/// Ahuja et al.'s three facing definitions (§III-B1 of the HeadTalk paper).
enum class DovFacing {
  kDirectlyFacing,    ///< 0 degrees only
  kForwardFacing,     ///< 0 and +/-45
  kMouthLineOfSight,  ///< 0, +/-45, +/-90
};

[[nodiscard]] std::string_view dov_facing_name(DovFacing definition);

/// Whether an angle counts as facing under a DoV definition.
[[nodiscard]] bool dov_is_facing(DovFacing definition, double angle_deg);

}  // namespace headtalk::baseline
