#include "baseline/void.h"

#include <algorithm>
#include <cmath>

#include "audio/resample.h"
#include "dsp/fft.h"
#include "dsp/spectral.h"

namespace headtalk::baseline {

ml::FeatureVector VoidFeatureExtractor::extract(const audio::Buffer& channel) const {
  audio::Buffer x = audio::resample(channel, config_.sample_rate);
  audio::normalize_zero_mean_unit_variance(x);

  const std::size_t nfft = dsp::next_pow2(x.size());
  const auto mag = dsp::magnitude_spectrum(x.samples(), nfft);
  const double fs = config_.sample_rate;

  ml::FeatureVector features;
  features.reserve(dimension());

  // --- Normalized cumulative power curve over [0, Nyquist) ---
  std::vector<double> power(mag.size());
  double total = 0.0;
  for (std::size_t k = 0; k < mag.size(); ++k) {
    power[k] = mag[k] * mag[k];
    total += power[k];
  }
  if (total <= 0.0) total = 1.0;
  const std::size_t segs = config_.power_segments;
  std::vector<double> curve(segs, 0.0);
  double running = 0.0;
  std::size_t bin = 0;
  for (std::size_t s = 0; s < segs; ++s) {
    const std::size_t end = (s + 1) * mag.size() / segs;
    for (; bin < end; ++bin) running += power[bin];
    curve[s] = running / total;
    features.push_back(curve[s]);
  }

  // --- Linearity of the cumulative curve (Void's "power linearity") ---
  // Live speech concentrates power low (concave curve); replay distortion
  // flattens it. R^2 against the straight line through (0,0)-(1,1).
  double ss_res = 0.0, ss_tot = 0.0;
  const double mean_curve =
      std::accumulate(curve.begin(), curve.end(), 0.0) / static_cast<double>(segs);
  for (std::size_t s = 0; s < segs; ++s) {
    const double linear = (static_cast<double>(s) + 1.0) / static_cast<double>(segs);
    ss_res += (curve[s] - linear) * (curve[s] - linear);
    ss_tot += (curve[s] - mean_curve) * (curve[s] - mean_curve);
  }
  features.push_back(ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 0.0);

  // --- Low-band power peaks (< 1 kHz) ---
  const auto low_end = static_cast<std::size_t>(1000.0 / fs * static_cast<double>(nfft));
  std::size_t peak_count = 0;
  double last_peak = 0.0, spacing_acc = 0.0;
  const double threshold = *std::max_element(power.begin(), power.begin() + static_cast<long>(std::min(low_end, power.size()))) * 0.1;
  for (std::size_t k = 1; k + 1 < std::min(low_end, power.size()); ++k) {
    if (power[k] > threshold && power[k] >= power[k - 1] && power[k] > power[k + 1]) {
      const double freq = dsp::bin_frequency(k, nfft, fs);
      if (peak_count > 0) spacing_acc += freq - last_peak;
      last_peak = freq;
      ++peak_count;
    }
  }
  features.push_back(static_cast<double>(peak_count));
  features.push_back(peak_count > 1 ? spacing_acc / static_cast<double>(peak_count - 1)
                                    : 0.0);

  // --- High-band decay + relative power ---
  features.push_back(dsp::spectral_slope_db_per_khz(mag, nfft, fs, 3000.0, 7500.0));
  const double high = dsp::band_energy(mag, nfft, fs, 4000.0, 7900.0);
  const double all = dsp::band_energy(mag, nfft, fs, 100.0, 7900.0);
  features.push_back(all > 0.0 ? high / all : 0.0);

  return features;
}

}  // namespace headtalk::baseline
