// Small fixed-size thread pool plus a parallel_for helper.
//
// The sample-collection stage renders trials that are independent and
// deterministic, so it parallelizes cleanly: workers pull indices from an
// atomic cursor and write into pre-sized output slots, which keeps result
// ordering (and therefore every downstream train/test split) bit-identical
// to the serial path regardless of scheduling.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace headtalk::util {

/// Harness-wide default worker count: $HEADTALK_JOBS if it parses as a
/// positive integer, else std::thread::hardware_concurrency(), else 1.
[[nodiscard]] unsigned default_jobs();

/// Maps a user-supplied jobs value to a concrete worker count:
/// 0 means "auto" (default_jobs()); anything else is used as given.
[[nodiscard]] unsigned resolve_jobs(unsigned requested);

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one).
  explicit ThreadPool(unsigned threads = default_jobs());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw; wrap anything that can (see
  /// parallel_for for the capture-and-rethrow pattern).
  void submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void wait();

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

 private:
  struct QueuedTask {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<QueuedTask> queue_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Runs fn(i) for every i in [0, count) across `jobs` workers (serially
/// when jobs <= 1 or count <= 1). Blocks until all iterations finish; the
/// first exception thrown by any iteration is rethrown in the caller after
/// the remaining workers drain.
void parallel_for(std::size_t count, unsigned jobs,
                  const std::function<void(std::size_t)>& fn);

}  // namespace headtalk::util
