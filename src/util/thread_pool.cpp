#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace headtalk::util {
namespace {

obs::Counter& tasks_executed() {
  static obs::Counter& c = obs::Registry::global().counter("util.pool.tasks");
  return c;
}

obs::Histogram& queue_wait_seconds() {
  static obs::Histogram& h =
      obs::Registry::global().histogram("util.pool.queue_wait_seconds");
  return h;
}

}  // namespace

unsigned default_jobs() {
  if (const char* env = std::getenv("HEADTALK_JOBS"); env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) return static_cast<unsigned>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

unsigned resolve_jobs(unsigned requested) {
  return requested > 0 ? requested : default_jobs();
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(QueuedTask{std::move(task), std::chrono::steady_clock::now()});
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    queue_wait_seconds().observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - task.enqueued)
            .count());
    {
      obs::ScopedSpan span("util.pool.task");
      task.fn();
    }
    tasks_executed().increment();
    {
      std::lock_guard lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(std::size_t count, unsigned jobs,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (jobs <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::atomic<bool> failed{false};

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count || failed.load(std::memory_order_relaxed)) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(jobs, count));
  ThreadPool pool(workers);
  for (unsigned i = 0; i < workers; ++i) pool.submit(worker);
  pool.wait();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace headtalk::util
