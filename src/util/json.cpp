#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace headtalk::util {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing content after JSON document");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const { throw JsonError(what, pos_); }

  void skip_whitespace() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_whitespace();
    JsonValue out;
    switch (peek()) {
      case '{':
        out.value_ = parse_object(depth);
        return out;
      case '[':
        out.value_ = parse_array(depth);
        return out;
      case '"':
        out.value_ = parse_string();
        return out;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        out.value_ = true;
        return out;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        out.value_ = false;
        return out;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        out.value_ = nullptr;
        return out;
      default:
        out.value_ = parse_number();
        return out;
    }
  }

  JsonValue::Object parse_object(int depth) {
    expect('{');
    JsonValue::Object out;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      out.emplace(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      const char next = peek();
      ++pos_;
      if (next == '}') return out;
      if (next != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue::Array parse_array(int depth) {
    expect('[');
    JsonValue::Array out;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    for (;;) {
      out.push_back(parse_value(depth + 1));
      skip_whitespace();
      const char next = peek();
      ++pos_;
      if (next == ']') return out;
      if (next != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          append_utf8(out, parse_hex4());
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) fail("truncated \\u escape");
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code += static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code += static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code += static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("bad \\u escape");
      }
    }
    return code;
  }

  // BMP-only \u decoding (no surrogate-pair recombination); enough for the
  // ASCII the observability layer emits.
  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      pos_ = start;
      fail("bad number");
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("bad number");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("bad number");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    const double value = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(value)) fail("number out of range");
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

bool JsonValue::is_null() const noexcept {
  return std::holds_alternative<std::nullptr_t>(value_);
}
bool JsonValue::is_bool() const noexcept { return std::holds_alternative<bool>(value_); }
bool JsonValue::is_number() const noexcept {
  return std::holds_alternative<double>(value_);
}
bool JsonValue::is_string() const noexcept {
  return std::holds_alternative<std::string>(value_);
}
bool JsonValue::is_array() const noexcept { return std::holds_alternative<Array>(value_); }
bool JsonValue::is_object() const noexcept {
  return std::holds_alternative<Object>(value_);
}

bool JsonValue::as_bool() const {
  if (!is_bool()) throw std::runtime_error("JsonValue: not a bool");
  return std::get<bool>(value_);
}
double JsonValue::as_number() const {
  if (!is_number()) throw std::runtime_error("JsonValue: not a number");
  return std::get<double>(value_);
}
const std::string& JsonValue::as_string() const {
  if (!is_string()) throw std::runtime_error("JsonValue: not a string");
  return std::get<std::string>(value_);
}
const JsonValue::Array& JsonValue::as_array() const {
  if (!is_array()) throw std::runtime_error("JsonValue: not an array");
  return std::get<Array>(value_);
}
const JsonValue::Object& JsonValue::as_object() const {
  if (!is_object()) throw std::runtime_error("JsonValue: not an object");
  return std::get<Object>(value_);
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const auto& object = std::get<Object>(value_);
  const auto it = object.find(std::string(key));
  return it == object.end() ? nullptr : &it->second;
}

}  // namespace headtalk::util
