// Minimal JSON: a string escaper for the observability writers and a
// strict recursive-descent parser used to validate what they emit (trace
// files, metrics dumps, bench perf records). Not a general JSON library —
// no serialization DOM, no comments, no NaN/Infinity extensions.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace headtalk::util {

/// Escapes `text` for placement inside a double-quoted JSON string
/// (quotes, backslashes, and control characters).
[[nodiscard]] std::string json_escape(std::string_view text);

class JsonError : public std::runtime_error {
 public:
  JsonError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " at offset " + std::to_string(offset)),
        offset_(offset) {}
  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  /// Parses exactly one JSON document (trailing whitespace allowed, any
  /// other trailing content is an error). Throws JsonError on malformed
  /// input, including non-finite number literals, which JSON forbids.
  [[nodiscard]] static JsonValue parse(std::string_view text);

  JsonValue() = default;  // null

  [[nodiscard]] bool is_null() const noexcept;
  [[nodiscard]] bool is_bool() const noexcept;
  [[nodiscard]] bool is_number() const noexcept;
  [[nodiscard]] bool is_string() const noexcept;
  [[nodiscard]] bool is_array() const noexcept;
  [[nodiscard]] bool is_object() const noexcept;

  /// Typed accessors; throw std::runtime_error on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

 private:
  friend class JsonParser;
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_{nullptr};
};

}  // namespace headtalk::util
