// Per-user speaker profiles for the multi-tenant identity layer.
//
// "Your Microphone Array Retains Your Identity" (PAPERS.md) shows the
// multichannel features this pipeline already extracts carry per-speaker
// identity. A SpeakerProfile summarizes a user's enrollment captures as a
// per-dimension Gaussian (centroid + sigma-floored spread) over each
// feature family the pipeline computes — orientation and liveness — and
// scores a fresh capture against that summary with a blend of a diagonal
// Mahalanobis proximity and cosine similarity, thresholded at a value
// calibrated from the enrollment set itself (see tenant/enrollment.h).
//
// Profiles serialize through the same ml/serialize.h primitives as the
// trained models: magic + version header, little-endian scalars, length-
// prefixed vectors, validated on load.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/pipeline.h"

namespace headtalk::tenant {

/// What a tenant's utterances must satisfy to un-mute the device.
enum class PolicyRule : std::uint8_t {
  kEnrolledLiveFacing = 0,  ///< pipeline accept AND speaker matches profile
  kLiveFacing = 1,          ///< pipeline accept (source-paper behaviour)
  kAny = 2,                 ///< every utterance passes (stock VA behaviour)
};

[[nodiscard]] std::string_view policy_rule_name(PolicyRule rule);
/// Parses "enrolled_live_facing" | "live_facing" | "any"; throws
/// std::invalid_argument on anything else.
[[nodiscard]] PolicyRule parse_policy_rule(std::string_view text);

/// Tenant ids double as store filenames and metric-name segments, so the
/// charset is strict: 1..64 chars of [A-Za-z0-9._-], not starting with '.'.
[[nodiscard]] bool is_valid_tenant_id(std::string_view id) noexcept;

/// Per-dimension Gaussian summary of one feature family. `spread` holds
/// standard deviations, floored at enrollment so no dimension divides by
/// ~0. Both vectors are empty when the family was not enrolled.
struct FeatureStats {
  std::vector<double> centroid;
  std::vector<double> spread;

  [[nodiscard]] bool empty() const noexcept { return centroid.empty(); }
};

/// Mean squared per-dimension z-score of `x` against the stats (diagonal
/// Mahalanobis distance², normalized by dimension). Requires matching
/// non-zero dimensions.
[[nodiscard]] double mean_squared_z(const FeatureStats& stats, std::span<const double> x);
/// Cosine similarity between `x` and the centroid, in [-1, 1] (0 when
/// either vector is ~zero).
[[nodiscard]] double cosine_similarity(const FeatureStats& stats,
                                       std::span<const double> x);
/// Blended per-family match score in [0, 1]: proximity 1/(1+z²) and
/// shifted cosine (cos+1)/2, weighted equally.
[[nodiscard]] double block_match_score(const FeatureStats& stats,
                                       std::span<const double> x);

struct SpeakerProfile {
  std::string tenant_id;
  PolicyRule rule = PolicyRule::kEnrolledLiveFacing;
  /// Allowed utterances per minute; 0 = unlimited.
  std::uint32_t quota_per_minute = 0;
  /// Accept the speaker when match() >= threshold.
  double threshold = 0.5;
  std::uint32_t enrolled_captures = 0;
  /// Store generation at publish (0 before the profile is published).
  std::uint64_t generation = 0;
  FeatureStats orientation;
  FeatureStats liveness;

  /// Match score in [0, 1] over the feature families present in *both*
  /// the profile and the capture (dimension-matched), averaged. Returns 0
  /// when no family overlaps — an un-scorable capture never matches.
  [[nodiscard]] double match(const core::FeatureCapture& features) const;

  /// True when the capture carries at least one feature family this
  /// profile can score (same family enrolled, same dimension).
  [[nodiscard]] bool can_match(const core::FeatureCapture& features) const;

  void save(std::ostream& out) const;
  [[nodiscard]] static SpeakerProfile load(std::istream& in);
};

}  // namespace headtalk::tenant
