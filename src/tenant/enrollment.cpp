#include "tenant/enrollment.h"

#include <cmath>
#include <vector>

#include "core/liveness_features.h"
#include "core/orientation_features.h"
#include "core/preprocess.h"

namespace headtalk::tenant {
namespace {

/// Mean + sigma-floored stddev over one feature family; all vectors must
/// share the dimension of the first.
FeatureStats summarize(const std::vector<std::span<const double>>& vectors,
                       double sigma_floor_fraction) {
  FeatureStats stats;
  if (vectors.empty()) return stats;
  const std::size_t dim = vectors.front().size();
  for (const auto& v : vectors) {
    if (v.size() != dim) {
      throw EnrollmentError("enrollment: feature dimension varies across captures");
    }
  }
  stats.centroid.assign(dim, 0.0);
  for (const auto& v : vectors) {
    for (std::size_t i = 0; i < dim; ++i) stats.centroid[i] += v[i];
  }
  const double n = static_cast<double>(vectors.size());
  for (double& c : stats.centroid) c /= n;

  stats.spread.assign(dim, 0.0);
  for (const auto& v : vectors) {
    for (std::size_t i = 0; i < dim; ++i) {
      const double d = v[i] - stats.centroid[i];
      stats.spread[i] += d * d;
    }
  }
  double centroid_rms = 0.0;
  for (const double c : stats.centroid) centroid_rms += c * c;
  centroid_rms = std::sqrt(centroid_rms / static_cast<double>(dim));
  const double floor = std::max(1e-6, sigma_floor_fraction * centroid_rms);
  for (double& s : stats.spread) {
    s = std::max(floor, std::sqrt(s / n));
  }
  return stats;
}

}  // namespace

SpeakerProfile enroll_from_features(std::span<const core::FeatureCapture> features,
                                    std::string tenant_id,
                                    const EnrollmentConfig& config) {
  if (!is_valid_tenant_id(tenant_id)) {
    throw EnrollmentError("enrollment: invalid tenant id '" + tenant_id + "'");
  }
  if (features.size() < config.min_captures) {
    throw EnrollmentError("enrollment: " + std::to_string(features.size()) +
                          " capture(s), need at least " +
                          std::to_string(config.min_captures));
  }
  const bool has_orientation = !features.front().orientation.empty();
  const bool has_liveness = !features.front().liveness.empty();
  if (!has_orientation && !has_liveness) {
    throw EnrollmentError("enrollment: captures carry no feature vectors");
  }
  std::vector<std::span<const double>> orientation_vectors;
  std::vector<std::span<const double>> liveness_vectors;
  for (const auto& capture : features) {
    if (capture.orientation.empty() == has_orientation ||
        capture.liveness.empty() == has_liveness) {
      throw EnrollmentError(
          "enrollment: feature families inconsistent across captures");
    }
    if (has_orientation) orientation_vectors.emplace_back(capture.orientation);
    if (has_liveness) liveness_vectors.emplace_back(capture.liveness);
  }

  SpeakerProfile profile;
  profile.tenant_id = std::move(tenant_id);
  profile.rule = config.rule;
  profile.quota_per_minute = config.quota_per_minute;
  profile.enrolled_captures = static_cast<std::uint32_t>(features.size());
  profile.orientation = summarize(orientation_vectors, config.sigma_floor_fraction);
  profile.liveness = summarize(liveness_vectors, config.sigma_floor_fraction);

  // Calibrate: every enrollment capture must re-match its own profile, so
  // the threshold sits a margin below the hardest self-match.
  double min_self = 1.0;
  for (const auto& capture : features) {
    min_self = std::min(min_self, profile.match(capture));
  }
  profile.threshold =
      std::max(config.min_threshold, min_self * config.threshold_margin);
  return profile;
}

SpeakerProfile enroll_profile(const core::PipelineConfig& pipeline_config,
                              std::span<const audio::MultiBuffer> captures,
                              std::string tenant_id, const EnrollmentConfig& config) {
  if (captures.size() < config.min_captures) {
    throw EnrollmentError("enrollment: " + std::to_string(captures.size()) +
                          " capture(s), need at least " +
                          std::to_string(config.min_captures));
  }
  const std::size_t channels = captures.front().channel_count();
  const core::OrientationFeatureExtractor orientation_extractor(
      pipeline_config.orientation_features);
  const core::LivenessFeatureExtractor liveness_extractor(
      pipeline_config.liveness_features);
  std::vector<core::FeatureCapture> features;
  features.reserve(captures.size());
  for (const auto& capture : captures) {
    if (capture.channel_count() != channels) {
      throw EnrollmentError("enrollment: channel count varies across captures");
    }
    // The extractors preprocess internally with the pipeline's config, so
    // enrolled profiles match what streamed scoring computes at match time.
    core::FeatureCapture extracted;
    extracted.liveness =
        liveness_extractor.extract(capture.channel(0), pipeline_config.preprocess);
    // Orientation needs inter-channel structure; a single-channel capture
    // enrolls on liveness features alone.
    if (channels > 1) {
      extracted.orientation =
          orientation_extractor.extract(capture, pipeline_config.preprocess);
    }
    features.push_back(std::move(extracted));
  }
  return enroll_from_features(features, std::move(tenant_id), config);
}

}  // namespace headtalk::tenant
