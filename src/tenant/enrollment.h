// Enrollment: N captures of one speaker -> a SpeakerProfile.
//
// Two entry points. enroll_profile() is the production path: it runs each
// capture through the same preprocessing and feature extractors the
// scoring pipeline uses (built from a core::PipelineConfig — no trained
// classifiers needed, enrollment happens before or independently of
// training) and summarizes the vectors. enroll_from_features() is the
// core: per-dimension mean + sigma-floored standard deviation per feature
// family, plus a threshold calibrated against the enrollment set itself —
// the minimum self-match score scaled by a margin, so every enrollment
// capture re-matches its own profile with room to spare.
#pragma once

#include <span>
#include <stdexcept>
#include <string>

#include "audio/sample_buffer.h"
#include "core/pipeline.h"
#include "tenant/profile.h"

namespace headtalk::tenant {

class EnrollmentError : public std::runtime_error {
 public:
  explicit EnrollmentError(const std::string& what) : std::runtime_error(what) {}
};

struct EnrollmentConfig {
  /// Fewer captures than this throws (a 1-capture "centroid" has no spread).
  std::size_t min_captures = 2;
  /// Per-dimension standard-deviation floor, as a fraction of the feature
  /// family's RMS centroid magnitude (absolute floor 1e-6) — a dimension
  /// that never varied across enrollment must not divide by ~0 at match
  /// time.
  double sigma_floor_fraction = 0.05;
  /// threshold = max(min_threshold, min self-match score * margin).
  double threshold_margin = 0.85;
  double min_threshold = 0.3;
  PolicyRule rule = PolicyRule::kEnrolledLiveFacing;
  std::uint32_t quota_per_minute = 0;  ///< 0 = unlimited
};

/// Summarizes already-extracted feature captures. Every capture must carry
/// the same feature families at the same dimensions; families absent from
/// the first capture must be absent from all.
[[nodiscard]] SpeakerProfile enroll_from_features(
    std::span<const core::FeatureCapture> features, std::string tenant_id,
    const EnrollmentConfig& config = {});

/// Full enrollment path: preprocess + extract (orientation over all
/// channels, liveness over channel 0) with extractors built from
/// `pipeline_config`, then enroll_from_features. All captures must share
/// one channel count.
[[nodiscard]] SpeakerProfile enroll_profile(
    const core::PipelineConfig& pipeline_config,
    std::span<const audio::MultiBuffer> captures, std::string tenant_id,
    const EnrollmentConfig& config = {});

}  // namespace headtalk::tenant
