#include "tenant/metrics.h"

namespace headtalk::tenant {

TenantMetrics::TenantMetrics(std::size_t max_tracked_tenants, obs::Registry* registry)
    : max_tracked_(max_tracked_tenants), registry_(registry) {
  overflow_.allowed = &registry_->counter("tenant._overflow.decisions_allowed");
  overflow_.rejected = &registry_->counter("tenant._overflow.decisions_rejected");
  tracked_gauge_ = &registry_->gauge("tenant.tracked");
  overflowed_gauge_ = &registry_->gauge("tenant.overflowed");
}

void TenantMetrics::record(std::string_view tenant_id, bool allowed) {
  Pair pair;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = series_.find(std::string(tenant_id));
    if (it != series_.end()) {
      pair = it->second;
    } else if (series_.size() < max_tracked_) {
      const std::string prefix = "tenant." + std::string(tenant_id);
      pair.allowed = &registry_->counter(prefix + ".decisions_allowed");
      pair.rejected = &registry_->counter(prefix + ".decisions_rejected");
      series_.emplace(std::string(tenant_id), pair);
      tracked_gauge_->set(static_cast<double>(series_.size()));
    } else {
      pair = overflow_;
      overflow_seen_.insert(std::string(tenant_id));
      overflowed_gauge_->set(static_cast<double>(overflow_seen_.size()));
    }
  }
  (allowed ? pair.allowed : pair.rejected)->increment();
}

std::size_t TenantMetrics::tracked() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return series_.size();
}

}  // namespace headtalk::tenant
