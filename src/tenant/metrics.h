// Per-tenant decision counters with a hard cap on metric-series count.
//
// /metrics must stay scrape-able with thousands of tenants loaded, so at
// most `max_tracked_tenants` tenants (first-seen wins — in practice the
// hot set) get their own `tenant.<id>.decisions_{allowed,rejected}` pair;
// every further tenant lands in the shared `tenant._overflow.*` pair, and
// `tenant.tracked` / `tenant.overflowed` gauges say how much of the
// tail the overflow bucket is hiding. Exact per-tenant counts (uncapped)
// live in the TenantService's own table and surface via /tenants.json.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "obs/metrics.h"

namespace headtalk::tenant {

class TenantMetrics {
 public:
  explicit TenantMetrics(std::size_t max_tracked_tenants = 32,
                         obs::Registry* registry = &obs::Registry::global());

  /// Bumps the tenant's allowed/rejected counter (or the overflow pair).
  void record(std::string_view tenant_id, bool allowed);

  [[nodiscard]] std::size_t tracked() const;
  [[nodiscard]] std::size_t max_tracked() const noexcept { return max_tracked_; }

 private:
  struct Pair {
    obs::Counter* allowed = nullptr;
    obs::Counter* rejected = nullptr;
  };

  std::size_t max_tracked_;
  obs::Registry* registry_;
  Pair overflow_;
  obs::Gauge* tracked_gauge_;
  obs::Gauge* overflowed_gauge_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Pair> series_;
  std::unordered_set<std::string> overflow_seen_;
};

}  // namespace headtalk::tenant
