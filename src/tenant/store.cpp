#include "tenant/store.h"

#include <unistd.h>

#include <fstream>
#include <system_error>
#include <vector>

#include "ml/serialize.h"
#include "obs/log.h"

namespace headtalk::tenant {
namespace {

// 'HTTM' — HeadTalk Tenant Manifest.
constexpr std::uint32_t kManifestMagic = 0x4854544D;
constexpr std::uint32_t kManifestVersion = 1;

constexpr std::string_view kManifestName = "manifest.htm";
constexpr std::string_view kBlobSuffix = ".prof";
constexpr std::string_view kTempPrefix = ".tmp-";

void rename_into_place(const std::filesystem::path& from,
                       const std::filesystem::path& to) {
  std::error_code ec;
  std::filesystem::rename(from, to, ec);
  if (ec) {
    std::filesystem::remove(from, ec);
    throw ml::SerializationError("model store: cannot rename " + from.string() +
                                 " -> " + to.string());
  }
}

}  // namespace

ModelStore::ModelStore(std::filesystem::path directory)
    : directory_(std::move(directory)) {
  std::filesystem::create_directories(directory_);
  live_.store(std::make_shared<const StoreSnapshot>());
}

std::filesystem::path ModelStore::manifest_path(const std::filesystem::path& directory) {
  return directory / kManifestName;
}

std::filesystem::path ModelStore::blob_path(std::string_view tenant_id) const {
  return directory_ / (std::string(tenant_id) + std::string(kBlobSuffix));
}

std::filesystem::path ModelStore::temp_path(std::string_view stem) {
  // pid + per-store sequence: unique among live writers, recognizable as
  // a leftover after a crash.
  return directory_ / (std::string(kTempPrefix) + std::to_string(::getpid()) + "-" +
                       std::to_string(++temp_sequence_) + "-" + std::string(stem));
}

std::uint64_t ModelStore::clean_temp_files() {
  std::uint64_t cleaned = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(directory_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(kTempPrefix, 0) == 0) {
      std::error_code remove_ec;
      if (std::filesystem::remove(entry.path(), remove_ec)) ++cleaned;
    }
  }
  if (cleaned > 0) {
    temp_cleaned_.fetch_add(cleaned, std::memory_order_relaxed);
    obs::log_warn("tenant.store.temp_cleaned",
                  {{"directory", directory_.string()},
                   {"files", cleaned}});
  }
  return cleaned;
}

std::size_t ModelStore::reload() {
  std::lock_guard<std::mutex> lock(publish_mutex_);
  clean_temp_files();

  auto snapshot = std::make_shared<StoreSnapshot>();
  const auto manifest = manifest_path(directory_);
  if (std::filesystem::exists(manifest)) {
    std::ifstream in(manifest, std::ios::binary);
    if (!in) {
      throw ml::SerializationError("model store: cannot open " + manifest.string());
    }
    try {
      ml::io::expect_header(in, kManifestMagic, kManifestVersion, "tenant manifest");
      snapshot->generation = static_cast<std::uint64_t>(ml::io::read_i64(in));
      const std::uint32_t count = ml::io::read_u32(in);
      for (std::uint32_t i = 0; i < count; ++i) {
        const std::string id = ml::io::read_string(in);
        const std::string filename = ml::io::read_string(in);
        const auto manifest_generation =
            static_cast<std::uint64_t>(ml::io::read_i64(in));
        if (!is_valid_tenant_id(id) ||
            filename.find('/') != std::string::npos ||
            filename.rfind(kTempPrefix, 0) == 0) {
          throw ml::SerializationError("tenant manifest: bad entry '" + id + "' -> '" +
                                       filename + "'");
        }
        auto profile = std::make_shared<SpeakerProfile>(
            ml::load_model_file<SpeakerProfile>(directory_ / filename));
        if (profile->tenant_id != id) {
          throw ml::SerializationError("tenant manifest: blob " + filename +
                                       " belongs to '" + profile->tenant_id +
                                       "', manifest says '" + id + "'");
        }
        profile->generation = manifest_generation;
        snapshot->profiles.emplace(id, std::move(profile));
      }
    } catch (const ml::SerializationError& error) {
      throw ml::SerializationError(manifest.string() + ": " + error.what());
    }
  }
  const std::size_t size = snapshot->profiles.size();
  live_.store(std::shared_ptr<const StoreSnapshot>(std::move(snapshot)));
  return size;
}

void ModelStore::write_blob(const SpeakerProfile& profile) {
  const auto temp = temp_path(profile.tenant_id);
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw ml::SerializationError("model store: cannot write " + temp.string());
    }
    profile.save(out);
    out.flush();
    if (!out) {
      throw ml::SerializationError("model store: short write to " + temp.string());
    }
  }
  rename_into_place(temp, blob_path(profile.tenant_id));
}

void ModelStore::write_manifest_locked(const StoreSnapshot& snapshot) {
  const auto temp = temp_path("manifest");
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw ml::SerializationError("model store: cannot write " + temp.string());
    }
    ml::io::write_header(out, kManifestMagic, kManifestVersion);
    ml::io::write_i64(out, static_cast<std::int64_t>(snapshot.generation));
    ml::io::write_u32(out, static_cast<std::uint32_t>(snapshot.profiles.size()));
    for (const auto& [id, profile] : snapshot.profiles) {
      ml::io::write_string(out, id);
      ml::io::write_string(out, id + std::string(kBlobSuffix));
      ml::io::write_i64(out, static_cast<std::int64_t>(profile->generation));
    }
    out.flush();
    if (!out) {
      throw ml::SerializationError("model store: short write to " + temp.string());
    }
  }
  rename_into_place(temp, manifest_path(directory_));
}

std::uint64_t ModelStore::publish(const SpeakerProfile& profile) {
  return publish_many({&profile, 1});
}

std::uint64_t ModelStore::publish_many(std::span<const SpeakerProfile> profiles) {
  std::lock_guard<std::mutex> lock(publish_mutex_);
  const auto current = live_.load();
  auto next = std::make_shared<StoreSnapshot>(*current);
  next->generation = current->generation + 1;
  for (const SpeakerProfile& profile : profiles) {
    if (!is_valid_tenant_id(profile.tenant_id)) {
      throw ml::SerializationError("model store: invalid tenant id '" +
                                   profile.tenant_id + "'");
    }
    auto stored = std::make_shared<SpeakerProfile>(profile);
    stored->generation = next->generation;
    write_blob(*stored);
    next->profiles[stored->tenant_id] = std::move(stored);
  }
  write_manifest_locked(*next);
  const std::uint64_t generation = next->generation;
  live_.store(std::shared_ptr<const StoreSnapshot>(std::move(next)));
  return generation;
}

std::shared_ptr<const SpeakerProfile> ModelStore::lookup(
    std::string_view tenant_id) const {
  const auto snapshot = live_.load();
  const auto it = snapshot->profiles.find(tenant_id);
  return it == snapshot->profiles.end() ? nullptr : it->second;
}

std::shared_ptr<const StoreSnapshot> ModelStore::snapshot() const {
  return live_.load();
}

std::uint64_t ModelStore::generation() const {
  return live_.load()->generation;
}

std::size_t ModelStore::size() const {
  return live_.load()->profiles.size();
}

}  // namespace headtalk::tenant
