// Policy engine: per-tenant rules + quotas over pipeline verdicts.
//
// The pipeline answers "was this utterance live human speech, facing the
// device?". The policy engine turns that into the tenant's final answer:
// does the utterance un-mute *for this user*, given the tenant's rule
// (enrolled+live+facing / live+facing / any), the speaker-identity match
// against the tenant's SpeakerProfile, and the tenant's per-minute
// utterance quota. The PolicyDecision and its reason code travel back to
// the client inside the DECISION frame (serve/protocol.h carries the
// reason as a raw byte so the wire layer stays tenant-agnostic).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/pipeline.h"
#include "tenant/profile.h"

namespace headtalk::tenant {

enum class PolicyReason : std::uint8_t {
  kPipelineVerdict = 0,  ///< the pipeline verdict decided (either way)
  kSpeakerMismatch = 1,  ///< pipeline accepted, speaker did not match
  kQuotaExceeded = 2,    ///< allowed by rule, over the per-minute quota
  kTenantMissing = 3,    ///< tenant vanished from the store mid-session
};

[[nodiscard]] std::string_view policy_reason_name(PolicyReason reason);
/// Maps a wire byte back to a reason (unknown bytes -> kPipelineVerdict).
[[nodiscard]] PolicyReason policy_reason_from_byte(std::uint8_t raw) noexcept;

struct PolicyDecision {
  bool allowed = false;
  PolicyReason reason = PolicyReason::kPipelineVerdict;
  /// Speaker-identity match score; meaningful only when match_evaluated.
  double match_score = 0.0;
  bool match_evaluated = false;
};

/// Cumulative per-tenant outcome counts (exact, uncapped — the admin
/// /tenants.json source; obs exposition is separately capped by
/// TenantMetrics).
struct TenantCounters {
  std::uint64_t allowed = 0;
  std::uint64_t rejected_pipeline = 0;
  std::uint64_t rejected_mismatch = 0;
  std::uint64_t rejected_quota = 0;
};

class PolicyEngine {
 public:
  /// Applies `profile`'s rule + quota to one scored utterance.
  /// `now_seconds` drives the quota window (steady wall seconds; pass a
  /// fake clock in tests). Thread-safe.
  [[nodiscard]] PolicyDecision decide(const SpeakerProfile& profile,
                                      const core::PipelineResult& result,
                                      const core::FeatureCapture& features,
                                      std::int64_t now_seconds);

  /// Convenience: decide() with the real clock.
  [[nodiscard]] PolicyDecision decide(const SpeakerProfile& profile,
                                      const core::PipelineResult& result,
                                      const core::FeatureCapture& features);

  [[nodiscard]] TenantCounters counters(std::string_view tenant_id) const;
  [[nodiscard]] std::unordered_map<std::string, TenantCounters> all_counters() const;

 private:
  struct TenantState {
    std::int64_t window_start = 0;  ///< quota window begin (seconds)
    std::uint32_t used = 0;         ///< allowed utterances in the window
    TenantCounters counters;
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::string, TenantState> states_;
};

}  // namespace headtalk::tenant
