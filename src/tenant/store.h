// Versioned on-disk model store + lock-free in-memory tenant registry.
//
// Layout (one directory):
//
//   manifest.htm        magic/version header, store generation, and one
//                       (tenant id, blob filename, profile generation)
//                       entry per tenant
//   <tenant-id>.prof    one serialized SpeakerProfile per tenant
//   .tmp-*              in-flight writes (crash leftovers are ignored and
//                       cleaned on the next reload)
//
// Every publish writes blobs and a fresh manifest to temp files and
// renames them into place — readers of the directory never observe a torn
// file — then bumps the store generation and swaps the in-memory snapshot.
//
// The in-memory side is an atomic shared_ptr to an immutable Snapshot
// (id -> shared_ptr<const SpeakerProfile>), so scoring threads get O(1)
// lock-free lookups, a reload/publish never blocks them, and a profile a
// stream resolved before a reload stays valid for as long as the stream
// holds the shared_ptr — hot reload without dropping streams. Writers
// (publish/reload) serialize on a mutex.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>

#include "tenant/profile.h"

namespace headtalk::tenant {

/// Heterogeneous-lookup hash so snapshot lookups take string_view without
/// materializing a std::string per request.
struct TransparentStringHash {
  using is_transparent = void;
  [[nodiscard]] std::size_t operator()(std::string_view text) const noexcept {
    return std::hash<std::string_view>{}(text);
  }
};

/// Immutable view of the store at one generation.
struct StoreSnapshot {
  std::uint64_t generation = 0;
  std::unordered_map<std::string, std::shared_ptr<const SpeakerProfile>,
                     TransparentStringHash, std::equal_to<>>
      profiles;
};

/// Atomically swappable shared_ptr slot. This is the same pointer-under-a-
/// spin-bit scheme libstdc++ uses for std::atomic<std::shared_ptr>, except
/// the read path unlocks with release ordering: libstdc++'s load() unlocks
/// relaxed, which leaves no happens-before edge between a reader's pointer
/// read and the next writer's swap — ThreadSanitizer (correctly, per the
/// letter of the memory model) reports that as a data race. The critical
/// section is a refcount bump, so readers only ever spin for the few
/// nanoseconds a concurrent swap is in flight.
class SnapshotSlot {
 public:
  [[nodiscard]] std::shared_ptr<const StoreSnapshot> load() const noexcept {
    lock();
    auto copy = value_;
    unlock();
    return copy;
  }

  void store(std::shared_ptr<const StoreSnapshot> next) noexcept {
    lock();
    value_.swap(next);
    unlock();
    // `next` now holds the previous snapshot; it releases (and possibly
    // destroys) outside the critical section.
  }

 private:
  void lock() const noexcept {
    while (locked_.exchange(true, std::memory_order_acquire)) {
    }
  }
  void unlock() const noexcept {
    locked_.store(false, std::memory_order_release);
  }

  mutable std::atomic<bool> locked_{false};
  std::shared_ptr<const StoreSnapshot> value_;
};

class ModelStore {
 public:
  /// Creates the directory if missing. Does NOT read the disk — call
  /// reload() to populate the snapshot.
  explicit ModelStore(std::filesystem::path directory);

  /// Re-reads manifest + blobs into a fresh snapshot and swaps it in.
  /// A missing manifest is an empty store (generation preserved from the
  /// manifest when present, 0 otherwise); a corrupt or version-skewed
  /// manifest/blob throws ml::SerializationError and leaves the previous
  /// snapshot serving. Leftover .tmp-* files are deleted and counted.
  /// Returns the number of profiles now live.
  std::size_t reload();

  /// Atomically publishes one profile (write-temp + rename blob, then
  /// manifest) and swaps the updated snapshot in. The stored profile's
  /// generation is set to the new store generation, which is returned.
  std::uint64_t publish(const SpeakerProfile& profile);

  /// Publishes a batch under one generation bump and one manifest write.
  std::uint64_t publish_many(std::span<const SpeakerProfile> profiles);

  /// Lock-free O(1): the profile at the current snapshot, or null for an
  /// unknown tenant. The returned pointer stays valid across reloads.
  [[nodiscard]] std::shared_ptr<const SpeakerProfile> lookup(
      std::string_view tenant_id) const;

  /// Lock-free: the whole current snapshot (for admin views/iteration).
  [[nodiscard]] std::shared_ptr<const StoreSnapshot> snapshot() const;

  [[nodiscard]] std::uint64_t generation() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const std::filesystem::path& directory() const noexcept {
    return directory_;
  }
  /// Crash-leftover temp files removed by reload() so far.
  [[nodiscard]] std::uint64_t temp_files_cleaned() const noexcept {
    return temp_cleaned_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] static std::filesystem::path manifest_path(
      const std::filesystem::path& directory);

 private:
  std::filesystem::path blob_path(std::string_view tenant_id) const;
  std::filesystem::path temp_path(std::string_view stem);
  void write_manifest_locked(const StoreSnapshot& snapshot);
  void write_blob(const SpeakerProfile& profile);
  std::uint64_t clean_temp_files();

  std::filesystem::path directory_;
  SnapshotSlot live_;
  std::mutex publish_mutex_;  ///< serializes publish()/reload() writers
  std::uint64_t temp_sequence_ = 0;  ///< under publish_mutex_
  std::atomic<std::uint64_t> temp_cleaned_{0};
};

}  // namespace headtalk::tenant
