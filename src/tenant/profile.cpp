#include "tenant/profile.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ml/serialize.h"

namespace headtalk::tenant {
namespace {

// 'HTSP' — HeadTalk Speaker Profile.
constexpr std::uint32_t kProfileMagic = 0x48545350;
constexpr std::uint32_t kProfileVersion = 1;

void check_stats(const FeatureStats& stats, const char* family) {
  if (stats.centroid.size() != stats.spread.size()) {
    throw ml::SerializationError(std::string("speaker profile: ") + family +
                                 " centroid/spread dimension mismatch");
  }
  for (const double s : stats.spread) {
    if (!(s > 0.0) || !std::isfinite(s)) {
      throw ml::SerializationError(std::string("speaker profile: ") + family +
                                   " spread must be positive and finite");
    }
  }
}

void write_stats(std::ostream& out, const FeatureStats& stats) {
  ml::io::write_f64_vector(out, stats.centroid);
  ml::io::write_f64_vector(out, stats.spread);
}

FeatureStats read_stats(std::istream& in, const char* family) {
  FeatureStats stats;
  stats.centroid = ml::io::read_f64_vector(in);
  stats.spread = ml::io::read_f64_vector(in);
  check_stats(stats, family);
  return stats;
}

bool dimensions_match(const FeatureStats& stats, std::span<const double> x) {
  return !stats.empty() && !x.empty() && stats.centroid.size() == x.size();
}

}  // namespace

std::string_view policy_rule_name(PolicyRule rule) {
  switch (rule) {
    case PolicyRule::kEnrolledLiveFacing:
      return "enrolled_live_facing";
    case PolicyRule::kLiveFacing:
      return "live_facing";
    case PolicyRule::kAny:
      return "any";
  }
  return "?";
}

PolicyRule parse_policy_rule(std::string_view text) {
  if (text == "enrolled_live_facing") return PolicyRule::kEnrolledLiveFacing;
  if (text == "live_facing") return PolicyRule::kLiveFacing;
  if (text == "any") return PolicyRule::kAny;
  throw std::invalid_argument("unknown policy rule '" + std::string(text) +
                              "' (want enrolled_live_facing | live_facing | any)");
}

bool is_valid_tenant_id(std::string_view id) noexcept {
  if (id.empty() || id.size() > 64 || id.front() == '.') return false;
  return std::all_of(id.begin(), id.end(), [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
           c == '.' || c == '_' || c == '-';
  });
}

double mean_squared_z(const FeatureStats& stats, std::span<const double> x) {
  if (!dimensions_match(stats, x)) {
    throw std::invalid_argument("mean_squared_z: dimension mismatch");
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double z = (x[i] - stats.centroid[i]) / stats.spread[i];
    sum += z * z;
  }
  return sum / static_cast<double>(x.size());
}

double cosine_similarity(const FeatureStats& stats, std::span<const double> x) {
  if (!dimensions_match(stats, x)) {
    throw std::invalid_argument("cosine_similarity: dimension mismatch");
  }
  double dot = 0.0, nx = 0.0, nc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    dot += x[i] * stats.centroid[i];
    nx += x[i] * x[i];
    nc += stats.centroid[i] * stats.centroid[i];
  }
  const double denom = std::sqrt(nx) * std::sqrt(nc);
  if (denom < 1e-12) return 0.0;
  return std::clamp(dot / denom, -1.0, 1.0);
}

double block_match_score(const FeatureStats& stats, std::span<const double> x) {
  const double proximity = 1.0 / (1.0 + mean_squared_z(stats, x));
  const double cosine = 0.5 * (cosine_similarity(stats, x) + 1.0);
  return 0.5 * proximity + 0.5 * cosine;
}

double SpeakerProfile::match(const core::FeatureCapture& features) const {
  double sum = 0.0;
  int blocks = 0;
  if (dimensions_match(orientation, features.orientation)) {
    sum += block_match_score(orientation, features.orientation);
    ++blocks;
  }
  if (dimensions_match(liveness, features.liveness)) {
    sum += block_match_score(liveness, features.liveness);
    ++blocks;
  }
  return blocks == 0 ? 0.0 : sum / blocks;
}

bool SpeakerProfile::can_match(const core::FeatureCapture& features) const {
  return dimensions_match(orientation, features.orientation) ||
         dimensions_match(liveness, features.liveness);
}

void SpeakerProfile::save(std::ostream& out) const {
  if (!is_valid_tenant_id(tenant_id)) {
    throw ml::SerializationError("speaker profile: invalid tenant id '" + tenant_id +
                                 "'");
  }
  check_stats(orientation, "orientation");
  check_stats(liveness, "liveness");
  ml::io::write_header(out, kProfileMagic, kProfileVersion);
  ml::io::write_string(out, tenant_id);
  ml::io::write_u32(out, static_cast<std::uint32_t>(rule));
  ml::io::write_u32(out, quota_per_minute);
  ml::io::write_f64(out, threshold);
  ml::io::write_u32(out, enrolled_captures);
  ml::io::write_i64(out, static_cast<std::int64_t>(generation));
  write_stats(out, orientation);
  write_stats(out, liveness);
}

SpeakerProfile SpeakerProfile::load(std::istream& in) {
  ml::io::expect_header(in, kProfileMagic, kProfileVersion, "speaker profile");
  SpeakerProfile profile;
  profile.tenant_id = ml::io::read_string(in);
  if (!is_valid_tenant_id(profile.tenant_id)) {
    throw ml::SerializationError("speaker profile: invalid tenant id '" +
                                 profile.tenant_id + "'");
  }
  const std::uint32_t raw_rule = ml::io::read_u32(in);
  if (raw_rule > static_cast<std::uint32_t>(PolicyRule::kAny)) {
    throw ml::SerializationError("speaker profile: unknown policy rule " +
                                 std::to_string(raw_rule));
  }
  profile.rule = static_cast<PolicyRule>(raw_rule);
  profile.quota_per_minute = ml::io::read_u32(in);
  profile.threshold = ml::io::read_f64(in);
  if (!std::isfinite(profile.threshold)) {
    throw ml::SerializationError("speaker profile: non-finite threshold");
  }
  profile.enrolled_captures = ml::io::read_u32(in);
  profile.generation = static_cast<std::uint64_t>(ml::io::read_i64(in));
  profile.orientation = read_stats(in, "orientation");
  profile.liveness = read_stats(in, "liveness");
  return profile;
}

}  // namespace headtalk::tenant
