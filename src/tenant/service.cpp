#include "tenant/service.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "obs/log.h"

namespace headtalk::tenant {

TenantService::TenantService(std::filesystem::path store_directory,
                             TenantServiceConfig config)
    : config_(config),
      store_(std::move(store_directory)),
      metrics_(config.max_metric_tenants) {
  const std::size_t loaded = store_.reload();
  obs::log_info("tenant.service.loaded",
                {{"directory", store_.directory().string()},
                 {"tenants", loaded},
                 {"generation", store_.generation()}});
}

std::optional<AuthInfo> TenantService::authenticate(std::string_view tenant_id) const {
  if (!is_valid_tenant_id(tenant_id)) return std::nullopt;
  auto profile = store_.lookup(tenant_id);
  if (profile == nullptr) return std::nullopt;
  AuthInfo info;
  info.generation = profile->generation;
  info.rule = profile->rule;
  info.quota_per_minute = profile->quota_per_minute;
  info.profile = std::move(profile);
  return info;
}

PolicyDecision TenantService::decide(std::string_view tenant_id,
                                     const core::PipelineResult& result,
                                     const core::FeatureCapture& features) {
  const auto profile = store_.lookup(tenant_id);
  PolicyDecision decision;
  if (profile == nullptr) {
    decision.allowed = false;
    decision.reason = PolicyReason::kTenantMissing;
  } else {
    decision = policy_.decide(*profile, result, features);
  }
  metrics_.record(tenant_id, decision.allowed);
  return decision;
}

std::size_t TenantService::reload() {
  const std::size_t loaded = store_.reload();
  obs::log_info("tenant.service.reloaded",
                {{"tenants", loaded}, {"generation", store_.generation()}});
  return loaded;
}

std::string TenantService::tenants_json() const {
  const auto snapshot = store_.snapshot();
  const auto counters = policy_.all_counters();

  // Sorted ids so the view is stable across scrapes.
  std::vector<std::string_view> ids;
  ids.reserve(snapshot->profiles.size());
  for (const auto& [id, profile] : snapshot->profiles) ids.push_back(id);
  std::sort(ids.begin(), ids.end());

  std::ostringstream body;
  body << "{\"store_generation\":" << snapshot->generation
       << ",\"tenant_count\":" << snapshot->profiles.size() << ",\"tenants\":[";
  bool first = true;
  for (const auto id : ids) {
    const auto& profile = *snapshot->profiles.find(id)->second;
    TenantCounters c;
    if (const auto it = counters.find(std::string(id)); it != counters.end()) {
      c = it->second;
    }
    body << (first ? "" : ",") << "{\"id\":\"" << id << "\",\"generation\":"
         << profile.generation << ",\"rule\":\"" << policy_rule_name(profile.rule)
         << "\",\"quota_per_minute\":" << profile.quota_per_minute
         << ",\"threshold\":" << profile.threshold
         << ",\"enrolled_captures\":" << profile.enrolled_captures
         << ",\"allowed\":" << c.allowed
         << ",\"rejected_pipeline\":" << c.rejected_pipeline
         << ",\"rejected_mismatch\":" << c.rejected_mismatch
         << ",\"rejected_quota\":" << c.rejected_quota << '}';
    first = false;
  }
  body << "]}";
  return body.str();
}

}  // namespace headtalk::tenant
