#include "tenant/policy.h"

#include <chrono>

namespace headtalk::tenant {

std::string_view policy_reason_name(PolicyReason reason) {
  switch (reason) {
    case PolicyReason::kPipelineVerdict:
      return "pipeline_verdict";
    case PolicyReason::kSpeakerMismatch:
      return "speaker_mismatch";
    case PolicyReason::kQuotaExceeded:
      return "quota_exceeded";
    case PolicyReason::kTenantMissing:
      return "tenant_missing";
  }
  return "?";
}

PolicyReason policy_reason_from_byte(std::uint8_t raw) noexcept {
  return raw <= static_cast<std::uint8_t>(PolicyReason::kTenantMissing)
             ? static_cast<PolicyReason>(raw)
             : PolicyReason::kPipelineVerdict;
}

PolicyDecision PolicyEngine::decide(const SpeakerProfile& profile,
                                    const core::PipelineResult& result,
                                    const core::FeatureCapture& features,
                                    std::int64_t now_seconds) {
  PolicyDecision decision;
  switch (profile.rule) {
    case PolicyRule::kAny:
      decision.allowed = true;
      break;
    case PolicyRule::kLiveFacing:
      decision.allowed = result.decision == core::Decision::kAccepted;
      break;
    case PolicyRule::kEnrolledLiveFacing:
      decision.allowed = result.decision == core::Decision::kAccepted;
      if (decision.allowed) {
        // A follow-up accepted via an open session carries liveness
        // features only; match() scores whatever families overlap.
        decision.match_evaluated = profile.can_match(features);
        decision.match_score = decision.match_evaluated ? profile.match(features) : 0.0;
        if (!decision.match_evaluated || decision.match_score < profile.threshold) {
          decision.allowed = false;
          decision.reason = PolicyReason::kSpeakerMismatch;
        }
      }
      break;
  }

  std::lock_guard<std::mutex> lock(mutex_);
  TenantState& state = states_[profile.tenant_id];
  if (decision.allowed && profile.quota_per_minute > 0) {
    const std::int64_t window = now_seconds / 60;
    if (state.window_start != window) {
      state.window_start = window;
      state.used = 0;
    }
    if (state.used >= profile.quota_per_minute) {
      decision.allowed = false;
      decision.reason = PolicyReason::kQuotaExceeded;
    } else {
      ++state.used;
    }
  }
  if (decision.allowed) {
    ++state.counters.allowed;
  } else {
    switch (decision.reason) {
      case PolicyReason::kSpeakerMismatch:
        ++state.counters.rejected_mismatch;
        break;
      case PolicyReason::kQuotaExceeded:
        ++state.counters.rejected_quota;
        break;
      default:
        ++state.counters.rejected_pipeline;
        break;
    }
  }
  return decision;
}

PolicyDecision PolicyEngine::decide(const SpeakerProfile& profile,
                                    const core::PipelineResult& result,
                                    const core::FeatureCapture& features) {
  const auto now = std::chrono::duration_cast<std::chrono::seconds>(
                       std::chrono::steady_clock::now().time_since_epoch())
                       .count();
  return decide(profile, result, features, static_cast<std::int64_t>(now));
}

TenantCounters PolicyEngine::counters(std::string_view tenant_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = states_.find(std::string(tenant_id));
  return it == states_.end() ? TenantCounters{} : it->second.counters;
}

std::unordered_map<std::string, TenantCounters> PolicyEngine::all_counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unordered_map<std::string, TenantCounters> out;
  out.reserve(states_.size());
  for (const auto& [id, state] : states_) out.emplace(id, state.counters);
  return out;
}

}  // namespace headtalk::tenant
