// TenantService: the one object the serving layer holds for everything
// tenant-scoped — AUTH resolution, per-utterance policy decisions, hot
// reload, and the /tenants.json admin view. It composes the versioned
// ModelStore (lock-free snapshot lookups), the PolicyEngine (rules +
// quotas + exact per-tenant counters), and TenantMetrics (capped obs
// exposition).
//
// Thread-safety: authenticate()/decide() are called from scoring threads
// concurrently with reload() on an admin or signal thread; all of that is
// safe. A profile is re-resolved from the live snapshot on every decide(),
// so a reload takes effect for open streams on their next utterance
// without dropping the connection.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "core/pipeline.h"
#include "tenant/metrics.h"
#include "tenant/policy.h"
#include "tenant/store.h"

namespace headtalk::tenant {

struct TenantServiceConfig {
  /// Cap on per-tenant metric series in the obs registry (TenantMetrics).
  std::size_t max_metric_tenants = 32;
};

/// What AUTH resolution hands back to the session (and the AUTH_OK frame).
struct AuthInfo {
  std::shared_ptr<const SpeakerProfile> profile;
  std::uint64_t generation = 0;
  PolicyRule rule = PolicyRule::kEnrolledLiveFacing;
  std::uint32_t quota_per_minute = 0;
};

class TenantService {
 public:
  /// Opens (creating if needed) the store directory and loads it.
  explicit TenantService(std::filesystem::path store_directory,
                         TenantServiceConfig config = {});

  /// Lock-free profile resolution; nullopt for unknown/invalid ids.
  [[nodiscard]] std::optional<AuthInfo> authenticate(std::string_view tenant_id) const;

  /// Applies the tenant's current policy to one scored utterance. The
  /// profile is re-resolved from the live snapshot (hot-reload semantics);
  /// a tenant deleted since AUTH yields kTenantMissing.
  [[nodiscard]] PolicyDecision decide(std::string_view tenant_id,
                                      const core::PipelineResult& result,
                                      const core::FeatureCapture& features);

  /// Re-reads the store from disk (thread-safe; serving continues on the
  /// old snapshot until the swap). Returns the number of tenants live.
  std::size_t reload();

  [[nodiscard]] ModelStore& store() noexcept { return store_; }
  [[nodiscard]] const ModelStore& store() const noexcept { return store_; }
  [[nodiscard]] std::uint64_t generation() const { return store_.generation(); }
  [[nodiscard]] std::size_t tenant_count() const { return store_.size(); }

  /// Full /tenants.json body: store generation + one row per tenant with
  /// its profile metadata and exact decision counters.
  [[nodiscard]] std::string tenants_json() const;

 private:
  TenantServiceConfig config_;
  ModelStore store_;
  PolicyEngine policy_;
  TenantMetrics metrics_;
};

}  // namespace headtalk::tenant
