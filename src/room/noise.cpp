#include "room/noise.h"

#include <cmath>
#include <numbers>
#include <random>

#include "audio/gain.h"
#include "dsp/biquad.h"

namespace headtalk::room {
namespace {

audio::Buffer white(std::size_t frames, double fs, std::mt19937& rng) {
  audio::Buffer out(frames, fs);
  std::normal_distribution<double> gauss(0.0, 1.0);
  for (auto& s : out.data()) s = gauss(rng);
  return out;
}

// Speech-shaped babble: broadband noise through a vocal-band emphasis,
// multiplied by a slow syllabic envelope plus occasional pauses — a cheap
// but spectrally faithful stand-in for "a TV playing a popular series".
audio::Buffer babble(std::size_t frames, double fs, std::mt19937& rng) {
  audio::Buffer out = white(frames, fs, rng);
  auto speech_band = dsp::butterworth_bandpass(3, 150.0, 6000.0, fs);
  out = speech_band.filtered(out);

  // Syllabic amplitude modulation around 3-5 Hz with sentence-scale pauses.
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  const double syllable_hz = 3.0 + 2.0 * uni(rng);
  const double phase0 = 2.0 * std::numbers::pi * uni(rng);
  double pause_gain = 1.0;
  std::size_t next_pause_check = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (i >= next_pause_check) {
      next_pause_check = i + static_cast<std::size_t>(0.4 * fs);
      pause_gain = uni(rng) < 0.25 ? 0.15 : 1.0;
    }
    const double t = static_cast<double>(i) / fs;
    const double syllabic =
        0.55 + 0.45 * std::sin(2.0 * std::numbers::pi * syllable_hz * t + phase0);
    out[i] *= syllabic * pause_gain;
  }
  return out;
}

audio::Buffer hum(std::size_t frames, double fs, std::mt19937& rng) {
  audio::Buffer out(frames, fs);
  std::normal_distribution<double> gauss(0.0, 1.0);
  // 60 Hz mains fundamental plus harmonics, with broadband rumble.
  for (std::size_t i = 0; i < frames; ++i) {
    const double t = static_cast<double>(i) / fs;
    double s = 0.0;
    s += 1.0 * std::sin(2.0 * std::numbers::pi * 60.0 * t);
    s += 0.5 * std::sin(2.0 * std::numbers::pi * 120.0 * t + 0.7);
    s += 0.25 * std::sin(2.0 * std::numbers::pi * 180.0 * t + 1.9);
    s += 0.4 * gauss(rng);
    out[i] = s;
  }
  auto lp = dsp::butterworth_lowpass(2, 500.0, fs);
  return lp.filtered(out);
}

}  // namespace

audio::Buffer make_noise(NoiseType type, std::size_t frames, double sample_rate,
                         double spl_db, std::uint32_t seed) {
  std::mt19937 rng(seed);
  audio::Buffer out;
  switch (type) {
    case NoiseType::kWhite:
      out = white(frames, sample_rate, rng);
      break;
    case NoiseType::kBabbleTv:
      out = babble(frames, sample_rate, rng);
      break;
    case NoiseType::kApplianceHum:
      out = hum(frames, sample_rate, rng);
      break;
  }
  audio::set_spl(out, spl_db);
  return out;
}

void add_diffuse_noise(audio::MultiBuffer& capture, NoiseType type, double spl_db,
                       std::uint32_t seed) {
  for (std::size_t c = 0; c < capture.channel_count(); ++c) {
    const auto channel_seed = static_cast<std::uint32_t>(seed + 7919 * (c + 1));
    capture.channel(c).add(
        make_noise(type, capture.frames(), capture.sample_rate(), spl_db, channel_seed));
  }
}

}  // namespace headtalk::room
