#include "room/mic_array.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace headtalk::room {
namespace {

std::vector<Vec3> circle(std::size_t count, double radius, double phase_rad = 0.0) {
  std::vector<Vec3> mics;
  mics.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double a =
        phase_rad + 2.0 * std::numbers::pi * static_cast<double>(i) / static_cast<double>(count);
    mics.push_back({radius * std::cos(a), radius * std::sin(a), 0.0});
  }
  return mics;
}

}  // namespace

double DeviceSpec::max_pair_distance(std::span<const std::size_t> channels) const {
  std::vector<std::size_t> all;
  if (channels.empty()) {
    all.resize(mic_positions.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    channels = all;
  }
  double best = 0.0;
  for (std::size_t a = 0; a < channels.size(); ++a) {
    for (std::size_t b = a + 1; b < channels.size(); ++b) {
      best = std::max(best, mic_positions.at(channels[a]).distance(mic_positions.at(channels[b])));
    }
  }
  return best;
}

std::vector<std::size_t> DeviceSpec::spread_channels(std::size_t count) const {
  const std::size_t n = mic_positions.size();
  if (count == 0 || count > n) {
    throw std::invalid_argument("spread_channels: count out of range");
  }
  if (count == 1) return {0};

  // Start with the farthest pair.
  std::size_t best_a = 0, best_b = 1;
  double best_d = -1.0;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      const double d = mic_positions[a].distance(mic_positions[b]);
      if (d > best_d) {
        best_d = d;
        best_a = a;
        best_b = b;
      }
    }
  }
  std::vector<std::size_t> chosen{best_a, best_b};
  while (chosen.size() < count) {
    std::size_t pick = 0;
    double pick_score = -1.0;
    for (std::size_t c = 0; c < n; ++c) {
      if (std::find(chosen.begin(), chosen.end(), c) != chosen.end()) continue;
      double min_d = std::numeric_limits<double>::max();
      for (std::size_t s : chosen) min_d = std::min(min_d, mic_positions[c].distance(mic_positions[s]));
      if (min_d > pick_score) {
        pick_score = min_d;
        pick = c;
      }
    }
    chosen.push_back(pick);
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

DeviceSpec DeviceSpec::d1() {
  DeviceSpec d;
  d.id = DeviceId::kD1;
  d.name = "D1-UMA-8";
  d.mic_positions = circle(6, 0.0425);
  d.mic_positions.push_back({0.0, 0.0, 0.0});  // centre mic (Mic7)
  d.self_noise_spl_db = 29.0;
  d.default_channels = {1, 2, 4, 5};  // Mic2, Mic3, Mic5, Mic6
  return d;
}

DeviceSpec DeviceSpec::d2() {
  DeviceSpec d;
  d.id = DeviceId::kD2;
  d.name = "D2-ReSpeaker-Core";
  d.mic_positions = circle(6, 0.045);
  d.self_noise_spl_db = 30.0;
  d.default_channels = {0, 1, 3, 4};  // Mic1, Mic2, Mic4, Mic5
  return d;
}

DeviceSpec DeviceSpec::d3() {
  DeviceSpec d;
  d.id = DeviceId::kD3;
  d.name = "D3-ReSpeaker-USB";
  d.mic_positions = circle(4, 0.0325);
  d.self_noise_spl_db = 31.5;
  d.default_channels = {0, 1, 2, 3};
  return d;
}

DeviceSpec DeviceSpec::get(DeviceId id) {
  switch (id) {
    case DeviceId::kD1:
      return d1();
    case DeviceId::kD2:
      return d2();
    case DeviceId::kD3:
      return d3();
  }
  throw std::invalid_argument("DeviceSpec::get: unknown device");
}

const std::vector<DeviceId>& all_devices() {
  static const std::vector<DeviceId> ids{DeviceId::kD1, DeviceId::kD2, DeviceId::kD3};
  return ids;
}

std::string_view device_name(DeviceId id) {
  switch (id) {
    case DeviceId::kD1:
      return "D1";
    case DeviceId::kD2:
      return "D2";
    case DeviceId::kD3:
      return "D3";
  }
  return "?";
}

}  // namespace headtalk::room
