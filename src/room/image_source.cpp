#include "room/image_source.h"

#include <cmath>
#include <stdexcept>

namespace headtalk::room {
namespace {

// Image coordinate along one axis for image index i:
//   even i: q = i*L + p (translated copies),
//   odd  i: q = (i+1)*L - p (mirrored copies).
// |i| equals the number of reflections off the two walls of that axis.
double image_coordinate(int i, double p, double length) noexcept {
  if (i % 2 == 0) return static_cast<double>(i) * length + p;
  return static_cast<double>(i + 1) * length - p;
}

}  // namespace

double air_absorption_db_per_m(double frequency_hz) noexcept {
  // ~0.002 dB/m at 1 kHz rising to ~0.17 dB/m at 16 kHz (20 C, 50 % RH).
  const double f_khz = frequency_hz / 1000.0;
  return 0.002 * std::pow(std::max(f_khz, 0.05), 1.6);
}

std::vector<PropagationPath> compute_image_sources(const Room& room, Vec3 source_pos,
                                                   Vec3 facing, Vec3 mic_pos,
                                                   const speech::Directivity& directivity,
                                                   const IsmConfig& config) {
  if (config.max_order < 0) throw std::invalid_argument("ISM: max_order must be >= 0");
  const auto centers = band_centers();

  // Per-axis, per-band amplitude reflection coefficient of one bounce.
  // x/y bounces hit walls; z bounces alternate floor/ceiling, approximated
  // by the geometric mean of the two.
  std::array<double, kBandCount> r_wall{}, r_z{};
  for (std::size_t b = 0; b < kBandCount; ++b) {
    r_wall[b] = std::sqrt(std::max(0.0, 1.0 - room.walls.absorption[b]));
    const double rf = std::sqrt(std::max(0.0, 1.0 - room.floor.absorption[b]));
    const double rc = std::sqrt(std::max(0.0, 1.0 - room.ceiling.absorption[b]));
    r_z[b] = std::sqrt(rf * rc);
  }

  std::vector<PropagationPath> paths;
  const int n = config.max_order;
  paths.reserve(static_cast<std::size_t>((2 * n + 1) * (2 * n + 1)));

  for (int ix = -n; ix <= n; ++ix) {
    for (int iy = -n + std::abs(ix); iy <= n - std::abs(ix); ++iy) {
      const int zbudget = n - std::abs(ix) - std::abs(iy);
      for (int iz = -zbudget; iz <= zbudget; ++iz) {
        const Vec3 img{image_coordinate(ix, source_pos.x, room.dims.x),
                       image_coordinate(iy, source_pos.y, room.dims.y),
                       image_coordinate(iz, source_pos.z, room.dims.z)};
        const Vec3 to_mic = mic_pos - img;
        const double dist = std::max(0.1, to_mic.norm());

        // Mirrored facing: odd image index flips that component.
        Vec3 mirrored = facing;
        if (ix % 2 != 0) mirrored.x = -mirrored.x;
        if (iy % 2 != 0) mirrored.y = -mirrored.y;
        if (iz % 2 != 0) mirrored.z = -mirrored.z;
        const double emission_angle = angle_between(mirrored, to_mic);

        PropagationPath path;
        path.distance_m = dist;
        path.reflection_order = std::abs(ix) + std::abs(iy) + std::abs(iz);

        const double spreading = 1.0 / dist;
        double strongest = 0.0;
        for (std::size_t b = 0; b < kBandCount; ++b) {
          double g = spreading;
          g *= std::pow(r_wall[b], std::abs(ix) + std::abs(iy));
          g *= std::pow(r_z[b], std::abs(iz));
          g *= std::pow(10.0, -air_absorption_db_per_m(centers[b]) * dist / 20.0);
          g *= directivity.gain(centers[b], emission_angle);
          path.band_gain[b] = g;
          strongest = std::max(strongest, g);
        }
        if (strongest >= config.amplitude_floor) paths.push_back(path);
      }
    }
  }
  return paths;
}

}  // namespace headtalk::room
