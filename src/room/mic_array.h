// Prototype device geometries (Table I / Fig. 7).
//
// D1: miniDSP UMA-8 USB array — 7 MEMS mics (6 on a circle + centre),
//     orthogonal spacing 8.5 cm.
// D2: Seeed ReSpeaker Core v2.0 — 6 mics on a circle, spacing 9 cm
//     (the default device; similar to an Amazon Echo Dot layout).
// D3: Seeed ReSpeaker USB Mic Array — 4 mics, spacing 6.5 cm.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "room/geometry.h"

namespace headtalk::room {

enum class DeviceId { kD1, kD2, kD3 };

/// Geometry and noise characteristics of a prototype device.
struct DeviceSpec {
  DeviceId id = DeviceId::kD2;
  std::string name;
  /// Mic positions relative to the array centre, metres, z up.
  std::vector<Vec3> mic_positions;
  /// Device self-noise as an equivalent SPL (dB); D1 records the cleanest
  /// signal (paper measured SNR 25.09 dB vs 24.25 dB for D2, §IV-B4).
  double self_noise_spl_db = 30.0;
  /// The 4-channel subset the paper evaluates with by default (§IV-A):
  /// D1 {Mic2,3,5,6}, D2 {Mic1,2,4,5}, D3 all four. Zero-based indices.
  std::vector<std::size_t> default_channels;

  /// Largest distance between any two mics in `channels` (or all mics when
  /// channels is empty) — sets the SRP lag window (§III-B3).
  [[nodiscard]] double max_pair_distance(std::span<const std::size_t> channels = {}) const;

  /// Greedy channel selection maximizing pairwise spread, used by the
  /// mic-count ablation (§IV-B6): first the farthest pair, then repeatedly
  /// the mic with the greatest minimum distance to those already chosen.
  [[nodiscard]] std::vector<std::size_t> spread_channels(std::size_t count) const;

  static DeviceSpec d1();
  static DeviceSpec d2();
  static DeviceSpec d3();
  static DeviceSpec get(DeviceId id);
};

/// All three devices, for dataset sweeps.
[[nodiscard]] const std::vector<DeviceId>& all_devices();

[[nodiscard]] std::string_view device_name(DeviceId id);

}  // namespace headtalk::room
