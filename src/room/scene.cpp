#include "room/scene.h"

#include <cmath>
#include <random>

#include "audio/gain.h"
#include "dsp/biquad.h"
#include "dsp/fft.h"
#include "dsp/fractional_delay.h"

namespace headtalk::room {

Scene::Scene(Room room, DeviceSpec device, ArrayPose pose, std::uint32_t scatter_seed,
             std::uint32_t session_seed)
    : room_(std::move(room)), device_(std::move(device)), pose_(pose) {
  auto draw = [this](std::mt19937& rng) {
    std::uniform_real_distribution<double> ux(0.3, room_.dims.x - 0.3);
    std::uniform_real_distribution<double> uy(0.3, room_.dims.y - 0.3);
    std::uniform_real_distribution<double> uz(0.2, std::min(1.8, room_.dims.z - 0.2));
    std::uniform_real_distribution<double> urefl(0.08, 0.30);
    std::uniform_real_distribution<double> utilt(0.6, 1.4);
    Scatterer sc;
    sc.position = {ux(rng), uy(rng), uz(rng)};
    // Base reflectivity with a random spectral tilt: soft objects absorb
    // high frequencies, hard ones do not.
    const double base = urefl(rng);
    const double tilt = utilt(rng);
    for (std::size_t b = 0; b < kBandCount; ++b) {
      const double x = static_cast<double>(b) / (kBandCount - 1);
      sc.reflectivity[b] = base * std::pow(tilt, 1.0 - 2.0 * x);
    }
    return sc;
  };

  std::mt19937 rng(scatter_seed);
  scatterers_.reserve(room_.scatterer_count);
  for (std::size_t i = 0; i < room_.scatterer_count; ++i) scatterers_.push_back(draw(rng));

  if (room_.dynamic_clutter && session_seed != 0 && !scatterers_.empty()) {
    // Re-draw the movable half with the session-specific state.
    std::mt19937 session_rng(session_seed);
    const std::size_t movable = std::max<std::size_t>(1, scatterers_.size() / 2);
    for (std::size_t i = scatterers_.size() - movable; i < scatterers_.size(); ++i) {
      scatterers_[i] = draw(session_rng);
    }
  }
}

std::vector<Vec3> Scene::mic_world_positions() const {
  std::vector<Vec3> out;
  out.reserve(device_.mic_positions.size());
  const double c = std::cos(pose_.yaw_rad), s = std::sin(pose_.yaw_rad);
  for (const auto& m : device_.mic_positions) {
    out.push_back({pose_.center.x + c * m.x - s * m.y,
                   pose_.center.y + s * m.x + c * m.y, pose_.center.z + m.z});
  }
  return out;
}

audio::MultiBuffer Scene::render(const audio::Buffer& dry, const SourcePose& source,
                                 const speech::Directivity& directivity,
                                 const RenderOptions& options) const {
  const double fs = dry.sample_rate();
  const auto rir_len = static_cast<std::size_t>(options.rir_length_s * fs);
  const std::size_t out_len = dry.size() + rir_len;
  const std::size_t fft_size = dsp::next_pow2(out_len);
  const auto centers = band_centers();
  const Vec3 facing = azimuth_direction(source.facing_azimuth_rad);

  // The capture per band is BP_b(dry) * rir_b (convolution); filters commute
  // with convolution, so this equals dry * BP_b(rir_b). Applying the band
  // filters to the short RIRs and summing gives ONE full-band RIR per mic —
  // a single FFT convolution instead of one per band.
  const auto dry_spectrum = dsp::rfft_half(dry.samples(), fft_size);
  std::vector<dsp::BiquadCascade> band_filters;
  band_filters.reserve(kBandCount);
  for (std::size_t b = 0; b < kBandCount; ++b) {
    band_filters.push_back(
        dsp::butterworth_bandpass(2, kBandEdges[b], kBandEdges[b + 1], fs));
  }

  auto mics = mic_world_positions();
  if (!options.channels.empty()) {
    std::vector<Vec3> picked;
    picked.reserve(options.channels.size());
    for (std::size_t idx : options.channels) picked.push_back(mics.at(idx));
    mics = std::move(picked);
  }
  audio::MultiBuffer capture(mics.size(), out_len, fs);

  // Occlusion attenuation per band (direct path only).
  std::array<double, kBandCount> occ_gain;
  occ_gain.fill(1.0);
  if (options.occlusion) {
    for (std::size_t b = 0; b < kBandCount; ++b) {
      const double x = static_cast<double>(b) / (kBandCount - 1);
      const double att_db = options.occlusion->low_band_db +
                            (options.occlusion->high_band_db - options.occlusion->low_band_db) * x;
      occ_gain[b] = std::pow(10.0, -att_db / 20.0);
    }
  }

  std::vector<std::vector<audio::Sample>> band_rir(
      kBandCount, std::vector<audio::Sample>(rir_len, 0.0));

  for (std::size_t m = 0; m < mics.size(); ++m) {
    for (auto& r : band_rir) std::fill(r.begin(), r.end(), 0.0);

    // Specular paths from the image-source model.
    const auto paths = compute_image_sources(room_, source.position, facing, mics[m],
                                             directivity, options.ism);
    for (const auto& path : paths) {
      const double delay = path.distance_m / options.ism.speed_of_sound * fs;
      if (delay >= static_cast<double>(rir_len)) continue;
      const bool direct = path.reflection_order == 0;
      for (std::size_t b = 0; b < kBandCount; ++b) {
        const double g = path.band_gain[b] * (direct ? occ_gain[b] : 1.0);
        if (std::abs(g) < 1e-7) continue;
        dsp::add_fractional_impulse(band_rir[b], delay, g);
      }
    }

    // First-order scattering off furniture.
    for (const auto& sc : scatterers_) {
      const double d1 = std::max(0.2, source.position.distance(sc.position));
      const double d2 = std::max(0.2, sc.position.distance(mics[m]));
      const double delay = (d1 + d2) / options.ism.speed_of_sound * fs;
      if (delay >= static_cast<double>(rir_len)) continue;
      const double emission_angle = angle_between(facing, sc.position - source.position);
      for (std::size_t b = 0; b < kBandCount; ++b) {
        const double g = directivity.gain(centers[b], emission_angle) *
                         sc.reflectivity[b] / (d1 * d2);
        if (std::abs(g) < 1e-7) continue;
        dsp::add_fractional_impulse(band_rir[b], delay, g);
      }
    }

    // Collapse bands into one full-band RIR, then convolve once.
    std::vector<audio::Sample> rir(rir_len, 0.0);
    for (std::size_t b = 0; b < kBandCount; ++b) {
      band_filters[b].reset();
      band_filters[b].process(std::span<audio::Sample>(band_rir[b]));
      for (std::size_t i = 0; i < rir_len; ++i) rir[i] += band_rir[b][i];
    }
    auto spec = dsp::rfft_half(rir, fft_size);
    spec.multiply(dry_spectrum);
    auto samples = dsp::irfft_half(spec, out_len);
    capture.channel(m) = audio::Buffer(std::move(samples), fs);
  }

  // --- Noise ---
  if (options.add_ambient) {
    const double spl =
        options.ambient_spl_db >= 0.0 ? options.ambient_spl_db : room_.ambient_noise_spl_db;
    add_diffuse_noise(capture, options.ambient_type, spl, options.noise_seed);
  }
  if (options.add_self_noise) {
    add_diffuse_noise(capture, NoiseType::kWhite, device_.self_noise_spl_db,
                      options.noise_seed + 104729);
  }
  return capture;
}

}  // namespace headtalk::room
