// Ambient noise generators for the evaluation scenarios (§IV-B10).
//
// Two classes of interference exist in the paper's experiments:
//   - diffuse background (the room's default noise floor, or injected white
//     noise) — decorrelated across microphones;
//   - point-source interference (a TV playing a series) — spatially
//     coherent, which is why it hurts the array features more than white
//     noise of the same level. Point-source noise content is produced here
//     and rendered through the Scene like any other source.
#pragma once

#include <cstdint>

#include "audio/sample_buffer.h"

namespace headtalk::room {

enum class NoiseType {
  kWhite,        ///< broadband Gaussian
  kBabbleTv,     ///< speech-shaped babble with level modulation (TV series)
  kApplianceHum, ///< mains hum + machinery rumble (refrigerator, HVAC)
};

/// Generates `frames` samples of the given noise type with calibrated level
/// `spl_db`. Deterministic in `seed`.
[[nodiscard]] audio::Buffer make_noise(NoiseType type, std::size_t frames,
                                       double sample_rate, double spl_db,
                                       std::uint32_t seed);

/// Decorrelated diffuse noise for every channel of a capture (in place).
void add_diffuse_noise(audio::MultiBuffer& capture, NoiseType type, double spl_db,
                       std::uint32_t seed);

}  // namespace headtalk::room
