// Image-source model (ISM) for shoebox rooms.
//
// Enumerates specular reflection paths up to a maximum order. Each path
// carries its travel distance and a per-band amplitude gain combining:
//   - spherical spreading (1/r),
//   - the wall reflection products (sqrt(1 - alpha) per bounce, per band),
//   - atmospheric absorption,
//   - the *source directivity evaluated at the mirrored emission angle* —
//     reflections leave the talker's head at different angles than the
//     direct path, which is exactly the orientation-dependent reverberation
//     structure HeadTalk's features measure (Insight 1, §III-B2).
#pragma once

#include <array>
#include <vector>

#include "room/geometry.h"
#include "room/room.h"
#include "speech/directivity.h"

namespace headtalk::room {

/// One propagation path from source to receiver.
struct PropagationPath {
  double distance_m = 0.0;
  int reflection_order = 0;
  /// Amplitude gain per octave band (all effects folded in).
  std::array<double, kBandCount> band_gain{};
};

struct IsmConfig {
  int max_order = 3;
  double speed_of_sound = 343.0;
  /// Amplitude floor below which paths are dropped (relative to a 1 m
  /// direct path), keeping RIR construction cheap.
  double amplitude_floor = 1e-4;
};

/// Computes all image-source paths from a source at `source_pos` facing the
/// horizontal direction `facing` (unit vector) to a receiver at `mic_pos`,
/// inside `room`. The source radiates with pattern `directivity`; image
/// sources use the correspondingly mirrored facing vector.
[[nodiscard]] std::vector<PropagationPath> compute_image_sources(
    const Room& room, Vec3 source_pos, Vec3 facing, Vec3 mic_pos,
    const speech::Directivity& directivity, const IsmConfig& config = {});

/// Atmospheric attenuation in dB per metre at frequency `f` (simple power-law
/// fit adequate below 16 kHz at room conditions).
[[nodiscard]] double air_absorption_db_per_m(double frequency_hz) noexcept;

}  // namespace headtalk::room
