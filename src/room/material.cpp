#include "room/material.h"

#include <cmath>

namespace headtalk::room {

std::array<double, kBandCount> band_centers() noexcept {
  std::array<double, kBandCount> c{};
  for (std::size_t b = 0; b < kBandCount; ++b) {
    c[b] = std::sqrt(kBandEdges[b] * kBandEdges[b + 1]);
  }
  return c;
}

// Absorption values follow standard published tables (e.g. Everest,
// "Master Handbook of Acoustics"), interpolated onto our band grid:
//                         125    250   500    1k     2k     4k     8k+
Material Material::drywall() {
  return {{0.12, 0.10, 0.06, 0.05, 0.04, 0.05, 0.06}};
}

Material Material::carpet() {
  return {{0.05, 0.08, 0.20, 0.35, 0.50, 0.65, 0.70}};
}

Material Material::acoustic_tile() {
  return {{0.30, 0.45, 0.65, 0.75, 0.80, 0.80, 0.80}};
}

Material Material::gypsum_ceiling() {
  return {{0.15, 0.11, 0.06, 0.04, 0.04, 0.05, 0.06}};
}

Material Material::soft_furnishing() {
  return {{0.20, 0.30, 0.45, 0.55, 0.60, 0.65, 0.65}};
}

}  // namespace headtalk::room
