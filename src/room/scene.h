// Scene: a room + a microphone-array device + furniture scatterers.
//
// Scene::render is the simulated equivalent of "recording a wake word with
// the prototype device": a dry source signal plus a pose and a radiation
// pattern in, a synchronized multichannel 48 kHz capture out. The render
// chain is band-wise convolution with image-source RIRs, first-order
// scattering off furniture, optional occlusion of the direct path
// (§IV-B13), diffuse ambient noise, and device self-noise.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "audio/sample_buffer.h"
#include "room/image_source.h"
#include "room/mic_array.h"
#include "room/noise.h"
#include "room/room.h"
#include "speech/directivity.h"

namespace headtalk::room {

/// Device placement: array centre in world coordinates plus yaw.
struct ArrayPose {
  Vec3 center{0.0, 0.0, 0.74};  // location A: study-table height (§IV)
  double yaw_rad = 0.0;
};

/// Talker (or replay speaker) placement: mouth position plus the horizontal
/// facing azimuth (world frame; 0 = +x).
struct SourcePose {
  Vec3 position{1.0, 1.0, 1.65};
  double facing_azimuth_rad = 0.0;
};

/// Direct-path attenuation by nearby objects (§IV-B13). Attenuation in dB
/// is interpolated across bands from `low_band_db` to `high_band_db`.
struct Occlusion {
  double low_band_db = 0.0;
  double high_band_db = 0.0;

  /// Device partially blocked by an object: sound diffracts around it, so
  /// the loss is mild and mostly high-frequency (the paper's partial-block
  /// condition costs only ~1 point of accuracy, §IV-B13).
  static Occlusion partial() { return {0.5, 3.0}; }
  /// Device fully surrounded/blocked: the direct path is effectively gone
  /// and the capture is dominated by reflections (which is why the paper
  /// sees frontal speech classified as backward, §IV-B13).
  static Occlusion full() { return {18.0, 30.0}; }
};

struct RenderOptions {
  IsmConfig ism{};
  double rir_length_s = 0.12;
  /// Ambient/diffuse noise. A negative SPL means "use the room default".
  bool add_ambient = true;
  NoiseType ambient_type = NoiseType::kWhite;
  double ambient_spl_db = -1.0;
  /// Device electronics noise floor.
  bool add_self_noise = true;
  std::optional<Occlusion> occlusion;
  std::uint32_t noise_seed = 1;
  /// Microphones to render, in order (empty = all device mics). Rendering
  /// only the channels an experiment needs saves one FFT pipeline per
  /// skipped microphone.
  std::vector<std::size_t> channels;
};

class Scene {
 public:
  /// `scatter_seed` fixes the furniture layout; re-seeding models the room
  /// changing between sessions (weeks apart, §IV-B9). For rooms with
  /// `dynamic_clutter`, a non-zero `session_seed` re-draws the movable
  /// third of the scatterers (chairs, doors, people move between sessions
  /// in a lived-in home; large furniture stays put).
  Scene(Room room, DeviceSpec device, ArrayPose pose, std::uint32_t scatter_seed,
        std::uint32_t session_seed = 0);

  [[nodiscard]] const Room& room() const noexcept { return room_; }
  [[nodiscard]] const DeviceSpec& device() const noexcept { return device_; }
  [[nodiscard]] const ArrayPose& pose() const noexcept { return pose_; }

  /// World-space microphone positions (pose applied).
  [[nodiscard]] std::vector<Vec3> mic_world_positions() const;

  /// Renders `dry` emitted from `source` with radiation pattern
  /// `directivity` into an N-channel capture (N = device mic count).
  /// Output length = dry length + RIR length.
  [[nodiscard]] audio::MultiBuffer render(const audio::Buffer& dry,
                                          const SourcePose& source,
                                          const speech::Directivity& directivity,
                                          const RenderOptions& options = {}) const;

 private:
  struct Scatterer {
    Vec3 position;
    std::array<double, kBandCount> reflectivity{};
  };

  Room room_;
  DeviceSpec device_;
  ArrayPose pose_;
  std::vector<Scatterer> scatterers_;
};

}  // namespace headtalk::room
