// Frequency-dependent surface absorption and the octave-band scheme the
// whole room simulator renders in.
#pragma once

#include <array>
#include <cstddef>

namespace headtalk::room {

/// The simulator renders in 7 octave-ish bands spanning the 100 Hz – 16 kHz
/// range the HeadTalk preprocessor keeps (§III).
inline constexpr std::size_t kBandCount = 7;

/// Band edges in Hz: band b spans [kBandEdges[b], kBandEdges[b+1]).
inline constexpr std::array<double, kBandCount + 1> kBandEdges{
    100.0, 250.0, 500.0, 1000.0, 2000.0, 4000.0, 8000.0, 16000.0};

/// Geometric-mean centre frequency of each band.
[[nodiscard]] std::array<double, kBandCount> band_centers() noexcept;

/// Per-band energy absorption coefficients (alpha) of one surface.
struct Material {
  std::array<double, kBandCount> absorption{};

  /// Painted drywall / plaster walls.
  static Material drywall();
  /// Carpet over concrete (absorptive at high frequency).
  static Material carpet();
  /// Acoustic-tile dropped ceiling (the lab has one, §IV).
  static Material acoustic_tile();
  /// Hard ceiling (home).
  static Material gypsum_ceiling();
  /// Furniture / soft clutter (sofa, curtains).
  static Material soft_furnishing();
};

}  // namespace headtalk::room
