// Shoebox room descriptions for the two evaluation environments (§IV):
// a 20'x14' lab with a 10' dropped acoustic-tile ceiling (33 dB SPL ambient)
// and a 33'x10'x8' apartment living room (43 dB SPL ambient, more clutter).
#pragma once

#include <array>
#include <string>

#include "room/geometry.h"
#include "room/material.h"

namespace headtalk::room {

struct Room {
  std::string name = "room";
  /// Interior dimensions, metres: x = length, y = width, z = height.
  Vec3 dims{6.0, 4.0, 3.0};
  Material walls = Material::drywall();
  Material floor = Material::carpet();
  Material ceiling = Material::gypsum_ceiling();
  /// Default ambient noise level in dB SPL.
  double ambient_noise_spl_db = 33.0;
  /// Number of point scatterers modelling furniture / clutter; the home
  /// setting has more, producing the "more intricate reverberation" the
  /// paper observes (§IV-B5).
  std::size_t scatterer_count = 6;
  /// A lived-in home is not static: objects move between data-collection
  /// sessions (chairs, doors, people), so part of the clutter is re-drawn
  /// per session. The lab is a controlled space and stays fixed.
  bool dynamic_clutter = false;

  /// Per-band Eyring reverberation time: T = 0.161 V / (-S ln(1 - alpha)),
  /// with alpha the surface-area-weighted mean absorption.
  [[nodiscard]] std::array<double, kBandCount> eyring_rt60() const;

  /// Surface-area-weighted mean absorption per band.
  [[nodiscard]] std::array<double, kBandCount> mean_absorption() const;

  /// The 280 sq-ft lab (20' x 14' x 10', acoustic-tile ceiling, 33 dB).
  static Room lab();
  /// The apartment living room (33' x 10' x 8', 43 dB, more clutter).
  static Room home();
};

}  // namespace headtalk::room
