// Minimal 3-D vector math for the room simulator.
#pragma once

#include <cmath>

namespace headtalk::room {

struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;

  constexpr Vec3 operator+(const Vec3& o) const noexcept {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(const Vec3& o) const noexcept {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(double s) const noexcept { return {x * s, y * s, z * s}; }

  [[nodiscard]] constexpr double dot(const Vec3& o) const noexcept {
    return x * o.x + y * o.y + z * o.z;
  }
  [[nodiscard]] double norm() const noexcept { return std::sqrt(dot(*this)); }
  [[nodiscard]] Vec3 normalized() const noexcept {
    const double n = norm();
    return n > 0.0 ? Vec3{x / n, y / n, z / n} : Vec3{};
  }
  [[nodiscard]] double distance(const Vec3& o) const noexcept { return (*this - o).norm(); }
};

/// Unit vector in the horizontal plane at `azimuth_rad` (0 = +x axis,
/// counter-clockwise looking down).
[[nodiscard]] inline Vec3 azimuth_direction(double azimuth_rad) noexcept {
  return {std::cos(azimuth_rad), std::sin(azimuth_rad), 0.0};
}

/// Angle between two vectors in [0, pi]; 0 if either is zero-length.
[[nodiscard]] inline double angle_between(const Vec3& a, const Vec3& b) noexcept {
  const double na = a.norm(), nb = b.norm();
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  const double c = a.dot(b) / (na * nb);
  return std::acos(c < -1.0 ? -1.0 : (c > 1.0 ? 1.0 : c));
}

[[nodiscard]] constexpr double deg_to_rad(double deg) noexcept {
  return deg * 3.14159265358979323846 / 180.0;
}
[[nodiscard]] constexpr double rad_to_deg(double rad) noexcept {
  return rad * 180.0 / 3.14159265358979323846;
}

}  // namespace headtalk::room
