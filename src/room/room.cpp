#include "room/room.h"

#include <cmath>

namespace headtalk::room {

std::array<double, kBandCount> Room::mean_absorption() const {
  const double wall_area = 2.0 * dims.z * (dims.x + dims.y);
  const double floor_area = dims.x * dims.y;
  const double total = wall_area + 2.0 * floor_area;
  std::array<double, kBandCount> alpha{};
  for (std::size_t b = 0; b < kBandCount; ++b) {
    alpha[b] = (walls.absorption[b] * wall_area + floor.absorption[b] * floor_area +
                ceiling.absorption[b] * floor_area) /
               total;
  }
  return alpha;
}

std::array<double, kBandCount> Room::eyring_rt60() const {
  const double volume = dims.x * dims.y * dims.z;
  const double wall_area = 2.0 * dims.z * (dims.x + dims.y);
  const double surface = wall_area + 2.0 * dims.x * dims.y;
  const auto alpha = mean_absorption();
  std::array<double, kBandCount> rt{};
  for (std::size_t b = 0; b < kBandCount; ++b) {
    const double a = std::min(alpha[b], 0.99);
    rt[b] = 0.161 * volume / (-surface * std::log(1.0 - a));
  }
  return rt;
}

Room Room::lab() {
  Room r;
  r.name = "lab";
  r.dims = {6.10, 4.27, 3.05};  // 20' x 14' x 10'
  r.walls = Material::drywall();
  r.floor = Material::carpet();
  r.ceiling = Material::acoustic_tile();
  r.ambient_noise_spl_db = 33.0;
  r.scatterer_count = 6;
  return r;
}

Room Room::home() {
  Room r;
  r.name = "home";
  r.dims = {10.06, 3.05, 2.44};  // 33' x 10' x 8'
  r.walls = Material::drywall();
  r.floor = Material::carpet();
  r.ceiling = Material::gypsum_ceiling();
  r.ambient_noise_spl_db = 43.0;
  r.scatterer_count = 14;
  r.dynamic_clutter = true;
  return r;
}

}  // namespace headtalk::room
