#include "audio/gain.h"

#include <cmath>
#include <limits>

namespace headtalk::audio {

double amplitude_to_db(double amplitude) {
  if (amplitude <= 0.0) return -std::numeric_limits<double>::infinity();
  return 20.0 * std::log10(amplitude);
}

double db_to_amplitude(double db) { return std::pow(10.0, db / 20.0); }

double power_to_db(double power) {
  if (power <= 0.0) return -std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(power);
}

double rms(std::span<const Sample> x) {
  if (x.empty()) return 0.0;
  double acc = 0.0;
  for (Sample s : x) acc += s * s;
  return std::sqrt(acc / static_cast<double>(x.size()));
}

double peak(std::span<const Sample> x) {
  double p = 0.0;
  for (Sample s : x) p = std::max(p, std::abs(s));
  return p;
}

double snr_db(std::span<const Sample> signal, std::span<const Sample> noise) {
  const double s = rms(signal);
  const double n = rms(noise);
  if (n <= 0.0) return std::numeric_limits<double>::infinity();
  return amplitude_to_db(s / n);
}

void set_spl(Buffer& x, double spl_db) {
  const double current = rms(x.samples());
  if (current <= 0.0) return;
  const double target = db_to_amplitude(spl_db - kFullScaleSplDb);
  x.scale(target / current);
}

double measure_spl(const Buffer& x) {
  return amplitude_to_db(rms(x.samples())) + kFullScaleSplDb;
}

void normalize_peak(Buffer& x, double target_peak) {
  const double p = peak(x.samples());
  if (p <= 0.0) return;
  x.scale(target_peak / p);
}

}  // namespace headtalk::audio
