#include "audio/resample.h"

#include <cmath>
#include <numbers>

#include "dsp/biquad.h"

namespace headtalk::audio {
namespace {

double sinc(double x) {
  if (std::abs(x) < 1e-12) return 1.0;
  const double px = std::numbers::pi * x;
  return std::sin(px) / px;
}

// Zeroth-order modified Bessel function of the first kind (series expansion),
// used by the Kaiser window.
double bessel_i0(double x) {
  double sum = 1.0;
  double term = 1.0;
  for (int k = 1; k < 32; ++k) {
    term *= (x / (2.0 * k)) * (x / (2.0 * k));
    sum += term;
    if (term < 1e-14 * sum) break;
  }
  return sum;
}

double kaiser(double n, double length, double beta) {
  const double r = 2.0 * n / (length - 1.0) - 1.0;
  const double arg = 1.0 - r * r;
  if (arg < 0.0) return 0.0;
  return bessel_i0(beta * std::sqrt(arg)) / bessel_i0(beta);
}

}  // namespace

Buffer resample(const Buffer& input, double target_rate) {
  if (target_rate <= 0.0) throw std::invalid_argument("resample: bad target rate");
  const double source_rate = input.sample_rate();
  if (source_rate == target_rate || input.empty()) {
    Buffer out = input;
    return out;
  }

  // Fast path for integer decimation (the pipeline's 48 kHz -> 16 kHz hop):
  // a 10th-order Butterworth anti-alias filter (five biquad sections,
  // cutoff at 0.45x the target rate) followed by sample dropping is ~50x
  // cheaper than the general windowed-sinc interpolator below. Order 10
  // keeps content above the new Nyquist >= 30 dB down across the band the
  // liveness features read (see test_resample.cpp stopband test).
  const double factor = source_rate / target_rate;
  const double rounded = std::round(factor);
  if (factor > 1.0 && std::abs(factor - rounded) < 1e-9) {
    const auto step = static_cast<std::size_t>(rounded);
    auto antialias = dsp::butterworth_lowpass(10, 0.45 * target_rate, source_rate);
    Buffer filtered = antialias.filtered(input);
    Buffer out((input.size() + step - 1) / step, target_rate);
    for (std::size_t m = 0; m < out.size(); ++m) out[m] = filtered[m * step];
    return out;
  }

  const double ratio = target_rate / source_rate;
  // Normalized cut-off (1.0 == source Nyquist), slightly below the lower of
  // the two Nyquist frequencies to leave room for the transition band.
  const double cutoff = std::min(1.0, ratio) * 0.95;
  constexpr int kZeroCrossings = 16;  // kernel half-width, in kernel periods
  constexpr double kBeta = 8.0;

  const auto out_frames =
      static_cast<std::size_t>(std::ceil(static_cast<double>(input.size()) * ratio));
  Buffer out(out_frames, target_rate);

  // Kernel half-span measured in *source* samples.
  const double half_span = kZeroCrossings / cutoff;
  for (std::size_t m = 0; m < out_frames; ++m) {
    // Continuous-time source position of output sample m.
    const double t = static_cast<double>(m) / ratio;
    const auto first = static_cast<long>(std::ceil(t - half_span));
    const auto last = static_cast<long>(std::floor(t + half_span));
    double acc = 0.0;
    for (long k = std::max<long>(first, 0);
         k <= std::min<long>(last, static_cast<long>(input.size()) - 1); ++k) {
      const double u = t - static_cast<double>(k);  // source-sample offset
      const double w = kaiser(u + half_span, 2.0 * half_span + 1.0, kBeta);
      acc += input[static_cast<std::size_t>(k)] * cutoff * sinc(cutoff * u) * w;
    }
    out[m] = acc;
  }
  return out;
}

void normalize_zero_mean_unit_variance(Buffer& x) {
  if (x.empty()) return;
  double mean = 0.0;
  for (Sample s : x.samples()) mean += s;
  mean /= static_cast<double>(x.size());
  double var = 0.0;
  for (Sample s : x.samples()) var += (s - mean) * (s - mean);
  var /= static_cast<double>(x.size());
  if (var <= 0.0) {
    for (auto& s : x.data()) s = 0.0;
    return;
  }
  const double inv_std = 1.0 / std::sqrt(var);
  for (auto& s : x.data()) s = (s - mean) * inv_std;
}

}  // namespace headtalk::audio
