#include "audio/wav_io.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>

namespace headtalk::audio {
namespace {

static_assert(std::endian::native == std::endian::little,
              "wav_io assumes a little-endian host");

// Every parse/IO error names the file and the byte offset where reading
// stopped, so a corrupt capture inside a 10k-file corpus is identifiable
// from the message alone.
[[noreturn]] void fail_read(std::istream& in, const std::filesystem::path& path,
                            const std::string& what) {
  in.clear();  // a failed read poisons the stream; clear so tellg() answers
  const auto pos = static_cast<long long>(std::streamoff(in.tellg()));
  std::string message = "read_wav: " + what + " in " + path.string();
  if (pos >= 0) message += " at byte offset " + std::to_string(pos);
  throw std::runtime_error(message);
}

[[noreturn]] void fail_write(std::ostream& out, const std::filesystem::path& path,
                             const std::string& what) {
  out.clear();
  const auto pos = static_cast<long long>(std::streamoff(out.tellp()));
  std::string message = "write_wav: " + what + " on " + path.string();
  if (pos >= 0) message += " at byte offset " + std::to_string(pos);
  throw std::runtime_error(message);
}

template <typename T>
void write_le(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_le(std::istream& in, const std::filesystem::path& path, const char* what) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) fail_read(in, path, std::string("truncated ") + what);
  return value;
}

void write_tag(std::ostream& out, const char (&tag)[5]) { out.write(tag, 4); }

std::array<char, 4> read_tag(std::istream& in, const std::filesystem::path& path,
                             const char* what) {
  std::array<char, 4> tag{};
  in.read(tag.data(), 4);
  if (!in) fail_read(in, path, std::string("truncated ") + what);
  return tag;
}

bool tag_is(const std::array<char, 4>& tag, const char (&expected)[5]) {
  return std::memcmp(tag.data(), expected, 4) == 0;
}

}  // namespace

void write_wav(const std::filesystem::path& path, const MultiBuffer& audio,
               WavEncoding encoding) {
  if (audio.channel_count() == 0) {
    throw std::runtime_error("write_wav: no channels to write to " + path.string());
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_wav: cannot open " + path.string());

  const auto channels = static_cast<std::uint16_t>(audio.channel_count());
  const auto rate = static_cast<std::uint32_t>(audio.sample_rate());
  const std::uint16_t bits = encoding == WavEncoding::kPcm16 ? 16 : 32;
  const std::uint16_t format = encoding == WavEncoding::kPcm16 ? 1 : 3;
  const std::uint16_t block_align = static_cast<std::uint16_t>(channels * bits / 8);
  const auto data_bytes =
      static_cast<std::uint32_t>(audio.frames() * block_align);

  write_tag(out, "RIFF");
  write_le<std::uint32_t>(out, 36 + data_bytes);
  write_tag(out, "WAVE");
  write_tag(out, "fmt ");
  write_le<std::uint32_t>(out, 16);
  write_le<std::uint16_t>(out, format);
  write_le<std::uint16_t>(out, channels);
  write_le<std::uint32_t>(out, rate);
  write_le<std::uint32_t>(out, rate * block_align);
  write_le<std::uint16_t>(out, block_align);
  write_le<std::uint16_t>(out, bits);
  write_tag(out, "data");
  write_le<std::uint32_t>(out, data_bytes);
  if (!out) fail_write(out, path, "header write failure");

  for (std::size_t i = 0; i < audio.frames(); ++i) {
    for (std::size_t c = 0; c < audio.channel_count(); ++c) {
      const double s = audio.channel(c)[i];
      if (encoding == WavEncoding::kPcm16) {
        const double clipped = std::clamp(s, -1.0, 1.0);
        write_le<std::int16_t>(out, static_cast<std::int16_t>(
                                        std::lround(clipped * 32767.0)));
      } else {
        write_le<float>(out, static_cast<float>(s));
      }
    }
  }
  if (!out) fail_write(out, path, "sample write failure");
}

void write_wav(const std::filesystem::path& path, const Buffer& audio,
               WavEncoding encoding) {
  write_wav(path, MultiBuffer(std::vector<Buffer>{audio}), encoding);
}

MultiBuffer read_wav(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_wav: cannot open " + path.string());

  if (!tag_is(read_tag(in, path, "RIFF header"), "RIFF")) {
    fail_read(in, path, "not a RIFF file");
  }
  (void)read_le<std::uint32_t>(in, path, "RIFF size");
  if (!tag_is(read_tag(in, path, "WAVE tag"), "WAVE")) {
    fail_read(in, path, "not a WAVE file");
  }

  std::uint16_t format = 0, channels = 0, bits = 0;
  std::uint32_t rate = 0;
  std::vector<char> data;

  while (in) {
    std::array<char, 4> tag{};
    in.read(tag.data(), 4);
    if (!in) break;
    const auto chunk_size = read_le<std::uint32_t>(in, path, "chunk size");
    if (tag_is(tag, "fmt ")) {
      format = read_le<std::uint16_t>(in, path, "fmt chunk");
      channels = read_le<std::uint16_t>(in, path, "fmt chunk");
      rate = read_le<std::uint32_t>(in, path, "fmt chunk");
      (void)read_le<std::uint32_t>(in, path, "fmt chunk");  // byte rate
      (void)read_le<std::uint16_t>(in, path, "fmt chunk");  // block align
      bits = read_le<std::uint16_t>(in, path, "fmt chunk");
      if (chunk_size > 16) in.seekg(chunk_size - 16, std::ios::cur);
    } else if (tag_is(tag, "data")) {
      data.resize(chunk_size);
      in.read(data.data(), chunk_size);
      if (!in) fail_read(in, path, "truncated data chunk");
    } else {
      in.seekg(chunk_size + (chunk_size & 1u), std::ios::cur);
    }
  }

  if (channels == 0 || rate == 0) fail_read(in, path, "missing fmt chunk");
  const bool pcm16 = format == 1 && bits == 16;
  const bool f32 = format == 3 && bits == 32;
  if (!pcm16 && !f32) {
    fail_read(in, path,
              "unsupported encoding (format " + std::to_string(format) + ", " +
                  std::to_string(bits) + "-bit)");
  }

  const std::size_t bytes_per_sample = bits / 8;
  const std::size_t frame_bytes = bytes_per_sample * channels;
  const std::size_t frames = frame_bytes == 0 ? 0 : data.size() / frame_bytes;

  MultiBuffer out(channels, frames, static_cast<double>(rate));
  const char* p = data.data();
  for (std::size_t i = 0; i < frames; ++i) {
    for (std::size_t c = 0; c < channels; ++c) {
      if (pcm16) {
        std::int16_t v;
        std::memcpy(&v, p, 2);
        out.channel(c)[i] = static_cast<double>(v) / 32767.0;
      } else {
        float v;
        std::memcpy(&v, p, 4);
        out.channel(c)[i] = static_cast<double>(v);
      }
      p += bytes_per_sample;
    }
  }
  return out;
}

}  // namespace headtalk::audio
