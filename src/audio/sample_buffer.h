// Core audio containers shared by every substrate.
//
// A Buffer is a mono signal plus its sample rate; a MultiBuffer is a set of
// equal-length channels captured simultaneously (one per microphone).
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace headtalk::audio {

/// Sample type used throughout the library. Double keeps the DSP chain
/// (FFT, biquads, long convolutions) numerically uncritical.
using Sample = double;

/// Default capture rate of all three prototype devices (48 kHz, §IV).
inline constexpr double kDefaultSampleRate = 48000.0;

/// Rate expected by the liveness network input (paper downsamples to 16 kHz).
inline constexpr double kLivenessSampleRate = 16000.0;

/// A mono audio signal with an associated sample rate.
class Buffer {
 public:
  Buffer() = default;

  /// Creates a zero-filled buffer of `frames` samples at `sample_rate` Hz.
  Buffer(std::size_t frames, double sample_rate);

  /// Wraps existing samples.
  Buffer(std::vector<Sample> samples, double sample_rate);

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] double sample_rate() const noexcept { return sample_rate_; }
  [[nodiscard]] double duration_seconds() const noexcept {
    return sample_rate_ > 0 ? static_cast<double>(samples_.size()) / sample_rate_ : 0.0;
  }

  [[nodiscard]] Sample& operator[](std::size_t i) { return samples_[i]; }
  [[nodiscard]] Sample operator[](std::size_t i) const { return samples_[i]; }

  [[nodiscard]] Sample& at(std::size_t i) { return samples_.at(i); }
  [[nodiscard]] Sample at(std::size_t i) const { return samples_.at(i); }

  [[nodiscard]] std::span<Sample> samples() noexcept { return samples_; }
  [[nodiscard]] std::span<const Sample> samples() const noexcept { return samples_; }
  [[nodiscard]] std::vector<Sample>& data() noexcept { return samples_; }
  [[nodiscard]] const std::vector<Sample>& data() const noexcept { return samples_; }

  void resize(std::size_t frames) { samples_.resize(frames, 0.0); }

  /// Element-wise in-place addition; the other buffer may be shorter.
  /// Throws std::invalid_argument on sample-rate mismatch.
  void add(const Buffer& other);

  /// Multiplies every sample by `gain`.
  void scale(Sample gain) noexcept;

  /// Returns a copy of samples [begin, begin+count), zero-padded past the end.
  [[nodiscard]] Buffer slice(std::size_t begin, std::size_t count) const;

 private:
  std::vector<Sample> samples_;
  double sample_rate_ = kDefaultSampleRate;
};

/// A synchronized multichannel capture: every channel has the same length
/// and sample rate (one channel per microphone of an array).
class MultiBuffer {
 public:
  MultiBuffer() = default;

  /// `channels` zero-filled channels of `frames` samples each.
  MultiBuffer(std::size_t channels, std::size_t frames, double sample_rate);

  /// Builds from per-channel buffers; all must agree in length and rate.
  explicit MultiBuffer(std::vector<Buffer> channels);

  [[nodiscard]] std::size_t channel_count() const noexcept { return channels_.size(); }
  [[nodiscard]] std::size_t frames() const noexcept {
    return channels_.empty() ? 0 : channels_.front().size();
  }
  [[nodiscard]] double sample_rate() const noexcept {
    return channels_.empty() ? kDefaultSampleRate : channels_.front().sample_rate();
  }

  [[nodiscard]] Buffer& channel(std::size_t c) { return channels_.at(c); }
  [[nodiscard]] const Buffer& channel(std::size_t c) const { return channels_.at(c); }

  /// Returns a new MultiBuffer containing only the requested channels,
  /// in the given order (used for the mic-count ablation, Table IV).
  [[nodiscard]] MultiBuffer select_channels(std::span<const std::size_t> indices) const;

  /// Averages all channels into a mono buffer.
  [[nodiscard]] Buffer mixdown() const;

  /// Adds another capture channel-wise (channel counts and rates must
  /// match; the other capture may be shorter).
  void add(const MultiBuffer& other);

 private:
  std::vector<Buffer> channels_;
};

}  // namespace headtalk::audio
