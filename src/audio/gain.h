// Level / loudness utilities: dB conversions, RMS, SPL calibration.
//
// The data-collection protocol of §IV speaks utterances at a calibrated
// sound-pressure level (60 / 70 / 80 dB SPL); the simulator reproduces that
// by scaling source signals against a fixed digital reference level.
#pragma once

#include "audio/sample_buffer.h"

namespace headtalk::audio {

/// Digital full scale (|sample| == 1.0) is mapped to this SPL at 1 m from
/// the source. 94 dB SPL is the conventional 1 Pa calibration point.
inline constexpr double kFullScaleSplDb = 94.0;

/// Converts a linear amplitude ratio to decibels (20*log10).
[[nodiscard]] double amplitude_to_db(double amplitude);

/// Converts decibels to a linear amplitude ratio.
[[nodiscard]] double db_to_amplitude(double db);

/// Converts a power ratio to decibels (10*log10).
[[nodiscard]] double power_to_db(double power);

/// Root-mean-square of a signal (0 for an empty buffer).
[[nodiscard]] double rms(std::span<const Sample> x);

/// Peak absolute sample value.
[[nodiscard]] double peak(std::span<const Sample> x);

/// Signal-to-noise ratio in dB given separate signal and noise buffers.
[[nodiscard]] double snr_db(std::span<const Sample> signal, std::span<const Sample> noise);

/// Scales `x` in place so its RMS corresponds to `spl_db` under the
/// kFullScaleSplDb calibration. No-op on silent input.
void set_spl(Buffer& x, double spl_db);

/// Returns the calibrated SPL of the buffer (-inf for silence).
[[nodiscard]] double measure_spl(const Buffer& x);

/// Scales `x` in place so that its peak is `target_peak` (default 1.0),
/// matching the paper's "normalize the audio amplitude between -1 and 1".
void normalize_peak(Buffer& x, double target_peak = 1.0);

}  // namespace headtalk::audio
