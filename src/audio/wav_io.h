// Minimal RIFF/WAVE reader & writer (PCM16 and IEEE float32).
//
// Used by the examples to export rendered captures for listening /
// inspection, and by tests for round-trip validation. Not a general-purpose
// WAV library: only canonical little-endian files are handled.
#pragma once

#include <filesystem>
#include <string>

#include "audio/sample_buffer.h"

namespace headtalk::audio {

enum class WavEncoding {
  kPcm16,    ///< 16-bit signed integer PCM
  kFloat32,  ///< 32-bit IEEE float
};

/// Writes an interleaved WAV file. Samples are clipped to [-1, 1] for PCM16.
/// Throws std::runtime_error on I/O failure.
void write_wav(const std::filesystem::path& path, const MultiBuffer& audio,
               WavEncoding encoding = WavEncoding::kPcm16);

/// Convenience overload for mono signals.
void write_wav(const std::filesystem::path& path, const Buffer& audio,
               WavEncoding encoding = WavEncoding::kPcm16);

/// Reads a WAV file produced by write_wav (or any canonical PCM16/float32
/// RIFF file). Throws std::runtime_error on malformed input.
[[nodiscard]] MultiBuffer read_wav(const std::filesystem::path& path);

}  // namespace headtalk::audio
