#include "audio/sample_buffer.h"

#include <algorithm>
#include <cmath>

namespace headtalk::audio {

Buffer::Buffer(std::size_t frames, double sample_rate)
    : samples_(frames, 0.0), sample_rate_(sample_rate) {
  if (sample_rate <= 0.0) {
    throw std::invalid_argument("Buffer: sample rate must be positive");
  }
}

Buffer::Buffer(std::vector<Sample> samples, double sample_rate)
    : samples_(std::move(samples)), sample_rate_(sample_rate) {
  if (sample_rate <= 0.0) {
    throw std::invalid_argument("Buffer: sample rate must be positive");
  }
}

void Buffer::add(const Buffer& other) {
  if (other.sample_rate() != sample_rate_) {
    throw std::invalid_argument("Buffer::add: sample-rate mismatch");
  }
  const std::size_t n = std::min(size(), other.size());
  for (std::size_t i = 0; i < n; ++i) samples_[i] += other.samples_[i];
}

void Buffer::scale(Sample gain) noexcept {
  for (auto& s : samples_) s *= gain;
}

Buffer Buffer::slice(std::size_t begin, std::size_t count) const {
  Buffer out(count, sample_rate_);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t src = begin + i;
    out[i] = src < samples_.size() ? samples_[src] : 0.0;
  }
  return out;
}

MultiBuffer::MultiBuffer(std::size_t channels, std::size_t frames, double sample_rate) {
  channels_.reserve(channels);
  for (std::size_t c = 0; c < channels; ++c) channels_.emplace_back(frames, sample_rate);
}

MultiBuffer::MultiBuffer(std::vector<Buffer> channels) : channels_(std::move(channels)) {
  for (const auto& ch : channels_) {
    if (ch.size() != channels_.front().size() ||
        ch.sample_rate() != channels_.front().sample_rate()) {
      throw std::invalid_argument("MultiBuffer: channels must agree in length and rate");
    }
  }
}

MultiBuffer MultiBuffer::select_channels(std::span<const std::size_t> indices) const {
  std::vector<Buffer> picked;
  picked.reserve(indices.size());
  for (std::size_t idx : indices) picked.push_back(channels_.at(idx));
  return MultiBuffer(std::move(picked));
}

void MultiBuffer::add(const MultiBuffer& other) {
  if (other.channel_count() != channel_count()) {
    throw std::invalid_argument("MultiBuffer::add: channel-count mismatch");
  }
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    channels_[c].add(other.channel(c));
  }
}

Buffer MultiBuffer::mixdown() const {
  if (channels_.empty()) return {};
  Buffer out(frames(), sample_rate());
  for (const auto& ch : channels_) out.add(ch);
  out.scale(1.0 / static_cast<double>(channels_.size()));
  return out;
}

}  // namespace headtalk::audio
