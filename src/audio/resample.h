// Sample-rate conversion.
//
// The capture chain runs at 48 kHz; the liveness model consumes 16 kHz audio
// (§III-A: "takes the downsampled 16 kHz speech normalized to zero mean and
// unit variance as input"). We provide a windowed-sinc polyphase resampler
// good enough for integer and rational ratios.
#pragma once

#include "audio/sample_buffer.h"

namespace headtalk::audio {

/// Resamples `input` to `target_rate` using a Kaiser-windowed-sinc kernel.
/// Anti-alias filtering is applied when down-sampling. Returns the input
/// unchanged if the rates already match.
[[nodiscard]] Buffer resample(const Buffer& input, double target_rate);

/// Removes the mean and scales to unit variance (the wav2vec2-style input
/// normalization). Silent signals are left as all zeros.
void normalize_zero_mean_unit_variance(Buffer& x);

}  // namespace headtalk::audio
