#include "serve/load_driver.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <random>
#include <stdexcept>

#include "serve/eventloop/poller.h"
#include "serve/listener.h"
#include "serve/protocol.h"

namespace headtalk::serve {
namespace {

using Clock = std::chrono::steady_clock;

enum class ConnState {
  kClosed,        ///< not connected (waiting for its connect_at)
  kConnecting,    ///< nonblocking connect in flight
  kSending,       ///< blob partially written; awaiting writability
  kAwaitHelloOk,  ///< HELLO flushed; awaiting HELLO_OK
  kAwaitDecision, ///< utterance flushed; awaiting DECISION
  kIdle,          ///< ready to fire the next utterance
  kDone,          ///< closed for good (firing window over)
};

struct Conn {
  int fd = -1;
  ConnState state = ConnState::kClosed;
  ConnState after_send = ConnState::kIdle;  ///< state once the blob flushes
  FrameReader reader;
  const std::vector<std::uint8_t>* blob = nullptr;
  std::size_t blob_off = 0;
  Clock::time_point connect_at{};
  Clock::time_point fire_basis{};  ///< latency zero point of the in-flight utterance
  std::uint32_t interest = 0;
};

struct Driver {
  explicit Driver(const LoadDriverConfig& config) : cfg(config) {}

  const LoadDriverConfig& cfg;
  std::unique_ptr<Poller> poller;
  std::vector<Conn> conns;
  std::vector<Conn*> idle;
  std::deque<Clock::time_point> backlog;  ///< scheduled, unassigned arrivals
  LoadReport report;

  std::vector<std::uint8_t> hello_blob;
  std::vector<std::uint8_t> utterance_blob;

  Clock::time_point start{};
  Clock::time_point window_end{Clock::time_point::max()};
  Clock::time_point next_arrival{Clock::time_point::max()};
  std::uint64_t fired = 0;        ///< utterances assigned to a connection
  std::uint64_t scheduled = 0;    ///< arrivals generated (open loop)
  std::uint64_t outstanding = 0;  ///< fired, DECISION not yet in
  bool window_open = true;

  void set_interest(Conn& c, std::uint32_t want) {
    if (want != c.interest) {
      poller->modify(c.fd, want, &c);
      c.interest = want;
    }
  }

  void close_conn(Conn& c, bool reconnect) {
    if (c.fd >= 0) {
      poller->remove(c.fd);
      close_quietly(c.fd);
      c.fd = -1;
    }
    c.reader = FrameReader();
    c.blob = nullptr;
    c.blob_off = 0;
    c.interest = 0;
    if (reconnect && window_open) {
      c.state = ConnState::kClosed;
      c.connect_at = Clock::now() + std::chrono::milliseconds(50);
    } else {
      c.state = ConnState::kDone;
    }
  }

  /// A request died without a DECISION.
  void lose_inflight(Conn& c) {
    if (c.state == ConnState::kAwaitDecision ||
        (c.state == ConnState::kSending && c.after_send == ConnState::kAwaitDecision)) {
      report.errors += 1;
      outstanding -= 1;
    }
  }

  void start_connect(Conn& c) {
    int fd = -1;
    if (!cfg.socket_path.empty()) {
      fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    } else {
      fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    }
    if (fd < 0) {
      report.connect_failures += 1;
      c.connect_at = Clock::now() + std::chrono::milliseconds(50);
      return;
    }
    int rc;
    if (!cfg.socket_path.empty()) {
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      const std::string text = cfg.socket_path.string();
      if (text.size() >= sizeof(addr.sun_path)) {
        throw std::runtime_error("load: unix socket path too long");
      }
      std::memcpy(addr.sun_path, text.c_str(), text.size() + 1);
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
    } else {
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(static_cast<std::uint16_t>(cfg.tcp_port));
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
    }
    if (rc != 0 && errno != EINPROGRESS) {
      close_quietly(fd);
      report.connect_failures += 1;
      c.connect_at = Clock::now() + std::chrono::milliseconds(50);
      return;
    }
    report.connects += 1;
    c.fd = fd;
    c.interest = 0;
    if (rc == 0) {
      poller->add(fd, 0, &c);
      begin_send(c, hello_blob, ConnState::kAwaitHelloOk);
    } else {
      c.state = ConnState::kConnecting;
      poller->add(fd, Poller::kWrite, &c);
      c.interest = Poller::kWrite;
    }
  }

  void begin_send(Conn& c, const std::vector<std::uint8_t>& blob,
                  ConnState after) {
    c.blob = &blob;
    c.blob_off = 0;
    c.after_send = after;
    c.state = ConnState::kSending;
    continue_send(c);
  }

  void continue_send(Conn& c) {
    while (c.blob_off < c.blob->size()) {
      const ssize_t n = ::send(c.fd, c.blob->data() + c.blob_off,
                               c.blob->size() - c.blob_off,
                               MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n > 0) {
        c.blob_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        set_interest(c, Poller::kRead | Poller::kWrite);
        return;
      }
      lose_inflight(c);
      close_conn(c, /*reconnect=*/true);
      return;
    }
    c.blob = nullptr;
    c.state = c.after_send;
    set_interest(c, Poller::kRead);
  }

  void mark_idle(Conn& c) {
    c.state = ConnState::kIdle;
    idle.push_back(&c);
  }

  /// Fires one utterance on an idle connection; `basis` is the latency
  /// zero point (scheduled arrival for open loop, now for closed loop).
  void fire(Conn& c, Clock::time_point basis) {
    fired += 1;
    outstanding += 1;
    c.fire_basis = basis;
    begin_send(c, utterance_blob, ConnState::kAwaitDecision);
  }

  Conn* pop_idle() {
    while (!idle.empty()) {
      Conn* c = idle.back();
      idle.pop_back();
      if (c->state == ConnState::kIdle) return c;
    }
    return nullptr;
  }

  void on_frame(Conn& c, const Frame& frame) {
    switch (frame.type) {
      case FrameType::kHelloOk:
        if (c.state != ConnState::kAwaitHelloOk) {
          report.protocol_violations += 1;
          close_conn(c, true);
          return;
        }
        mark_idle(c);
        return;
      case FrameType::kDecision: {
        if (c.state != ConnState::kAwaitDecision) {
          // Exactly-one-DECISION contract: an unsolicited decision is a
          // server bug the stress test exists to catch.
          report.protocol_violations += 1;
          close_conn(c, true);
          return;
        }
        report.decisions += 1;
        outstanding -= 1;
        report.latencies_seconds.push_back(
            std::chrono::duration<double>(Clock::now() - c.fire_basis).count());
        mark_idle(c);
        return;
      }
      case FrameType::kBusy:
        report.busy_rejections += 1;
        lose_inflight(c);
        close_conn(c, true);
        return;
      case FrameType::kError:
        lose_inflight(c);
        if (c.state != ConnState::kAwaitDecision) report.errors += 1;
        close_conn(c, true);
        return;
      default:
        report.protocol_violations += 1;
        close_conn(c, true);
        return;
    }
  }

  void on_readable(Conn& c) {
    std::uint8_t buffer[1 << 15];
    while (c.fd >= 0) {
      const ssize_t n = ::recv(c.fd, buffer, sizeof buffer, MSG_DONTWAIT);
      if (n == 0) {
        lose_inflight(c);
        close_conn(c, true);
        return;
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        lose_inflight(c);
        close_conn(c, true);
        return;
      }
      try {
        c.reader.feed(buffer, static_cast<std::size_t>(n));
        while (c.fd >= 0) {
          const auto frame = c.reader.next();
          if (!frame) break;
          on_frame(c, *frame);
        }
      } catch (const ProtocolError&) {
        report.protocol_violations += 1;
        lose_inflight(c);
        close_conn(c, true);
        return;
      }
    }
  }

  void on_event(const PollerEvent& event) {
    Conn& c = *static_cast<Conn*>(event.data);
    if (c.fd < 0) return;
    if (c.state == ConnState::kConnecting && (event.writable || event.error)) {
      int err = 0;
      socklen_t len = sizeof err;
      if (::getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
        report.connect_failures += 1;
        close_conn(c, true);
        return;
      }
      begin_send(c, hello_blob, ConnState::kAwaitHelloOk);
      return;
    }
    if (event.writable && c.state == ConnState::kSending) {
      continue_send(c);
      if (c.fd < 0) return;
    }
    if (event.readable) {
      on_readable(c);
      return;
    }
    if (event.error) {
      lose_inflight(c);
      close_conn(c, true);
    }
  }

  LoadReport run();
};

LoadReport Driver::run() {
  if (cfg.socket_path.empty() && cfg.tcp_port <= 0) {
    throw std::runtime_error("load: no target (socket path or tcp port)");
  }
  poller = Poller::create();
  conns.resize(std::max<std::size_t>(1, cfg.connections));

  std::mt19937 rng(cfg.seed);

  // Pre-encode the wire blobs once; every connection replays the same
  // bytes, so per-utterance generator cost is one send() path.
  Hello hello;
  hello.sample_rate_hz = cfg.sample_rate_hz;
  hello.channels = cfg.channels;
  hello_blob = encode_hello(hello);
  {
    std::uniform_real_distribution<float> amp(-0.5F, 0.5F);
    std::vector<float> interleaved(
        static_cast<std::size_t>(cfg.utterance_frames) * cfg.channels);
    for (float& sample : interleaved) sample = amp(rng);
    utterance_blob = encode_audio_chunk(interleaved, cfg.channels);
    const auto eou = encode_end_of_utterance(false);
    utterance_blob.insert(utterance_blob.end(), eou.begin(), eou.end());
  }

  start = Clock::now();
  // Connection ramp: uniform jitter across the window, not a connect herd.
  std::uniform_int_distribution<std::uint32_t> jitter(0, std::max(1u, cfg.ramp_ms));
  for (auto& c : conns) {
    c.connect_at = cfg.ramp_ms > 0
                       ? start + std::chrono::milliseconds(jitter(rng))
                       : start;
  }

  const std::uint64_t utterance_target =
      cfg.utterances > 0
          ? cfg.utterances
          : (cfg.duration_seconds > 0.0 ? 0 : conns.size());  // 0 = unbounded
  if (cfg.duration_seconds > 0.0) {
    window_end = start + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(cfg.duration_seconds));
  }
  const bool open_loop = cfg.arrival_rps > 0.0;
  if (open_loop) {
    next_arrival = start;
    report.offered_rps = cfg.arrival_rps;
  }

  Clock::time_point grace_end = Clock::time_point::max();
  std::vector<PollerEvent> events(std::max<std::size_t>(64, conns.size()));

  while (true) {
    const auto now = Clock::now();

    // Close the firing window on duration/count.
    if (window_open &&
        ((utterance_target > 0 && fired >= utterance_target) || now >= window_end)) {
      window_open = false;
      grace_end = now + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(cfg.drain_grace_seconds));
    }

    if (window_open) {
      // Bring up due connections.
      for (auto& c : conns) {
        if (c.state == ConnState::kClosed && now >= c.connect_at) start_connect(c);
      }
      if (open_loop) {
        // Generate scheduled arrivals up to now (open loop: completions
        // don't gate this), then assign the backlog to idle connections.
        const auto period = std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(1.0 / cfg.arrival_rps));
        while (next_arrival <= now &&
               (utterance_target == 0 || scheduled < utterance_target)) {
          backlog.push_back(next_arrival);
          scheduled += 1;
          next_arrival += period;
        }
        while (!backlog.empty()) {
          Conn* c = pop_idle();
          if (c == nullptr) break;
          const auto basis = backlog.front();
          backlog.pop_front();
          fire(*c, basis);
        }
      } else {
        while (utterance_target == 0 || fired < utterance_target) {
          Conn* c = pop_idle();
          if (c == nullptr) break;
          fire(*c, now);
        }
      }
    } else {
      // Window closed: idle connections are done; outstanding ones drain.
      Conn* c;
      while ((c = pop_idle()) != nullptr) close_conn(*c, false);
      for (auto& conn : conns) {
        if (conn.state == ConnState::kClosed) conn.state = ConnState::kDone;
      }
      if (outstanding == 0) break;
      if (now >= grace_end) {
        report.abandoned = outstanding;
        break;
      }
    }

    std::size_t open = 0;
    for (const auto& c : conns) {
      if (c.fd >= 0) ++open;
    }
    report.peak_open_connections = std::max(report.peak_open_connections, open);

    // Sleep until the next scheduled thing (arrival, connect, grace) or a
    // socket event.
    auto next_tick = Clock::time_point::max();
    if (window_open) {
      if (open_loop && (utterance_target == 0 || scheduled < utterance_target)) {
        next_tick = std::min(next_tick, next_arrival);
      }
      next_tick = std::min(next_tick, window_end);
      for (const auto& c : conns) {
        if (c.state == ConnState::kClosed) next_tick = std::min(next_tick, c.connect_at);
      }
    } else {
      next_tick = grace_end;
    }
    int timeout_ms = 100;
    if (next_tick != Clock::time_point::max()) {
      const auto delta =
          std::chrono::duration_cast<std::chrono::milliseconds>(next_tick - now)
              .count();
      timeout_ms = static_cast<int>(std::clamp<long long>(delta, 0, 100));
    }
    const int n = poller->wait(events, timeout_ms);
    for (int i = 0; i < n; ++i) on_event(events[static_cast<std::size_t>(i)]);
  }

  for (auto& c : conns) close_conn(c, false);
  report.elapsed_seconds = std::chrono::duration<double>(Clock::now() - start).count();
  report.achieved_rps = report.elapsed_seconds > 0.0
                            ? static_cast<double>(report.decisions) /
                                  report.elapsed_seconds
                            : 0.0;
  return report;
}

}  // namespace

LoadReport run_load(const LoadDriverConfig& config) {
  Driver driver(config);
  return driver.run();
}

}  // namespace headtalk::serve
