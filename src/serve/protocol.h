// Wire protocol of the inference daemon (headtalk_serve).
//
// Every message is a length-prefixed binary frame so a stream socket can
// carry interleaved audio without delimiters or escaping:
//
//   header (8 bytes):
//     u32 payload_len   (bounded; kMaxPayloadBytes)
//     u8  type          (FrameType)
//     u8  flags         (must be 0 in version 1)
//     u16 reserved      (must be 0 in version 1)
//   payload (payload_len bytes, layout per frame type)
//
// Byte order: every multi-byte field — length prefixes, u16/u32/u64
// integers, and IEEE-754 f32/f64 values (serialized via their bit
// patterns) — is LITTLE-ENDIAN on the wire, independent of host byte
// order. The codec byteswaps on big-endian hosts rather than assuming the
// host layout, so captures recorded on one machine parse identically on
// any other; tests pin the format against hand-built LE byte arrays.
//
// A request is HELLO → HELLO_OK, then any number of utterances, each
// AUDIO_CHUNK* followed by END_OF_UTTERANCE and answered with exactly one
// DECISION (or ERROR). Alternatively STREAM_START → STREAM_OK switches the
// connection to auto-endpoint streaming: AUDIO_CHUNKs carry continuous
// audio, the server segments it itself and pushes one STREAM_DECISION per
// detected utterance until STREAM_END → STREAM_SUMMARY. An overloaded
// server answers a fresh connection with BUSY and closes. Decoding is
// strict: unknown types, nonzero
// reserved bits, oversized lengths, short payloads, and trailing payload
// bytes all throw ProtocolError — a malformed client cannot put the
// daemon into an undefined state.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace headtalk::serve {

class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what) : std::runtime_error(what) {}
};

inline constexpr std::uint32_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 8;
/// Hard upper bound on any frame payload (audio chunks included).
inline constexpr std::size_t kMaxPayloadBytes = 4u << 20;

enum class FrameType : std::uint8_t {
  kHello = 1,           ///< client→server: version + stream geometry
  kHelloOk = 2,         ///< server→client: accepted config + limits
  kAudioChunk = 3,      ///< client→server: interleaved float32 samples
  kEndOfUtterance = 4,  ///< client→server: score what has been streamed
  kDecision = 5,        ///< server→client: one verdict per utterance
  kError = 6,           ///< server→client: fatal request error (closes)
  kBusy = 7,            ///< server→client: overloaded, retry later (closes)
  // Auto-endpoint streaming (the always-listening mode): after STREAM_START
  // the server owns segmentation — AUDIO_CHUNKs carry continuous audio, the
  // server's VAD/endpointer finds the utterances, and each one is answered
  // with a STREAM_DECISION (no END_OF_UTTERANCE). STREAM_END returns the
  // connection to per-utterance mode with a STREAM_SUMMARY.
  kStreamStart = 8,     ///< client→server: enter auto-endpoint streaming
  kStreamOk = 9,        ///< server→client: streaming accepted + geometry
  kStreamDecision = 10, ///< server→client: one verdict per detected segment
  kStreamEnd = 11,      ///< client→server: leave streaming, request summary
  kStreamSummary = 12,  ///< server→client: stream totals
  // Tenant-scoped serving: after HELLO_OK a client may bind the
  // connection to a tenant with AUTH. The server answers AUTH_OK (profile
  // generation + policy) or AUTH_REJECT — a *non-fatal* typed status
  // (unknown tenant, duplicate AUTH, AUTH mid-stream, tenants disabled);
  // the connection continues tenant-less so clients can distinguish "not
  // enrolled" from a dropped/busy connection.
  kAuth = 13,           ///< client→server: bind the connection to a tenant
  kAuthOk = 14,         ///< server→client: tenant resolved + policy echo
  kAuthReject = 15,     ///< server→client: AUTH declined (non-fatal)
};

[[nodiscard]] std::string_view frame_type_name(FrameType type);
[[nodiscard]] bool frame_type_known(std::uint8_t raw) noexcept;

/// A decoded frame: validated header + raw payload bytes.
struct Frame {
  FrameType type = FrameType::kError;
  std::vector<std::uint8_t> payload;
};

// ---- typed payloads -------------------------------------------------------

struct Hello {
  std::uint32_t protocol_version = kProtocolVersion;
  std::uint32_t sample_rate_hz = 48000;
  std::uint16_t channels = 4;
};

struct HelloOk {
  std::uint32_t protocol_version = kProtocolVersion;
  std::uint32_t max_chunk_frames = 0;
  std::uint32_t max_utterance_frames = 0;
};

struct AudioChunk {
  std::uint32_t frames = 0;
  std::vector<float> interleaved;  ///< frames * channels samples
};

struct EndOfUtterance {
  bool followup = false;  ///< score as an in-session follow-up command
};

struct DecisionFrame {
  std::uint8_t decision = 0;  ///< core::Decision as integer
  bool live = false;
  bool facing = false;
  bool via_open_session = false;
  double liveness_score = 0.0;
  double orientation_score = 0.0;
  double elapsed_seconds = 0.0;  ///< server-side scoring time
  // Tenant policy verdict. On a tenant-less connection policy_applied is
  // false and policy_allowed simply mirrors the pipeline acceptance; on an
  // AUTH'd connection the policy engine fills all three (policy_reason is
  // a tenant::PolicyReason byte — the wire layer stays tenant-agnostic).
  bool policy_applied = false;
  bool policy_allowed = false;
  std::uint8_t policy_reason = 0;
  /// Speaker-identity match score (0 when no match was evaluated).
  double match_score = 0.0;
};

/// Server acknowledgment of STREAM_START: the segmentation geometry the
/// client can expect decisions to be quantized to.
struct StreamOk {
  /// Samples per VAD analysis frame (decision timestamps are multiples).
  std::uint32_t vad_frame_length = 0;
  /// Largest segment (sample frames) before a force-close.
  std::uint32_t max_segment_frames = 0;
};

/// One auto-endpointed verdict: the DECISION fields plus where in the
/// stream the segment sat and whether it was force-closed at max length.
struct StreamDecisionFrame {
  DecisionFrame decision;
  double begin_seconds = 0.0;
  double end_seconds = 0.0;
  bool force_closed = false;
};

/// Totals for one streaming episode (STREAM_START .. STREAM_END).
struct StreamSummary {
  std::uint64_t frames_streamed = 0;
  std::uint32_t segments = 0;
  std::uint32_t force_closed = 0;
  std::uint32_t discarded = 0;
};

/// Longest tenant id the AUTH frame carries (matches
/// tenant::is_valid_tenant_id's bound).
inline constexpr std::size_t kMaxTenantIdBytes = 64;

struct AuthFrame {
  std::string tenant_id;
};

/// AUTH accepted: the tenant's profile generation and effective policy at
/// bind time (later hot reloads may move the generation — /tenants.json
/// shows the live one).
struct AuthOk {
  std::uint64_t generation = 0;
  std::uint8_t policy_rule = 0;  ///< tenant::PolicyRule byte
  std::uint32_t quota_per_minute = 0;
};

enum class AuthRejectCode : std::uint32_t {
  kUnknownTenant = 1,         ///< no such tenant in the store ("not enrolled")
  kAlreadyAuthenticated = 2,  ///< double AUTH on one connection
  kStreamOpen = 3,            ///< AUTH after a stream/utterance is open
  kTenantsDisabled = 4,       ///< server runs without a tenant store
};

[[nodiscard]] std::string_view auth_reject_code_name(AuthRejectCode code);

/// Non-fatal AUTH refusal: the connection stays usable (tenant-less).
struct AuthReject {
  AuthRejectCode code = AuthRejectCode::kUnknownTenant;
  std::string message;
};

enum class ErrorCode : std::uint32_t {
  kBadRequest = 1,          ///< malformed frame or frame out of order
  kUnsupportedVersion = 2,  ///< HELLO version the server does not speak
  kTooLarge = 3,            ///< chunk/utterance beyond the advertised limits
  kDeadlineExceeded = 4,    ///< request ran past the per-request deadline
  kShuttingDown = 5,        ///< server is draining
  kInternal = 6,            ///< scoring failed server-side
};

[[nodiscard]] std::string_view error_code_name(ErrorCode code);

struct ErrorFrame {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

// ---- encode ---------------------------------------------------------------

[[nodiscard]] std::vector<std::uint8_t> encode_hello(const Hello& hello);
[[nodiscard]] std::vector<std::uint8_t> encode_hello_ok(const HelloOk& ok);
/// `interleaved.size()` must be a nonzero multiple of `channels`.
[[nodiscard]] std::vector<std::uint8_t> encode_audio_chunk(
    std::span<const float> interleaved, std::uint16_t channels);
[[nodiscard]] std::vector<std::uint8_t> encode_end_of_utterance(bool followup);
[[nodiscard]] std::vector<std::uint8_t> encode_decision(const DecisionFrame& decision);
[[nodiscard]] std::vector<std::uint8_t> encode_error(ErrorCode code,
                                                     std::string_view message);
[[nodiscard]] std::vector<std::uint8_t> encode_busy();
[[nodiscard]] std::vector<std::uint8_t> encode_stream_start();
[[nodiscard]] std::vector<std::uint8_t> encode_stream_ok(const StreamOk& ok);
[[nodiscard]] std::vector<std::uint8_t> encode_stream_decision(
    const StreamDecisionFrame& decision);
[[nodiscard]] std::vector<std::uint8_t> encode_stream_end();
[[nodiscard]] std::vector<std::uint8_t> encode_stream_summary(
    const StreamSummary& summary);
[[nodiscard]] std::vector<std::uint8_t> encode_auth(std::string_view tenant_id);
[[nodiscard]] std::vector<std::uint8_t> encode_auth_ok(const AuthOk& ok);
[[nodiscard]] std::vector<std::uint8_t> encode_auth_reject(AuthRejectCode code,
                                                           std::string_view message);

// ---- strict decode --------------------------------------------------------
// Each parser requires the exact frame type and consumes the payload fully;
// anything else throws ProtocolError.

[[nodiscard]] Hello parse_hello(const Frame& frame);
[[nodiscard]] HelloOk parse_hello_ok(const Frame& frame);
/// `channels` comes from the session's HELLO; the chunk length must match.
[[nodiscard]] AudioChunk parse_audio_chunk(const Frame& frame, std::uint16_t channels);
[[nodiscard]] EndOfUtterance parse_end_of_utterance(const Frame& frame);
[[nodiscard]] DecisionFrame parse_decision(const Frame& frame);
[[nodiscard]] ErrorFrame parse_error(const Frame& frame);
void parse_stream_start(const Frame& frame);  ///< validates the empty payload
[[nodiscard]] StreamOk parse_stream_ok(const Frame& frame);
[[nodiscard]] StreamDecisionFrame parse_stream_decision(const Frame& frame);
void parse_stream_end(const Frame& frame);  ///< validates the empty payload
[[nodiscard]] StreamSummary parse_stream_summary(const Frame& frame);
[[nodiscard]] AuthFrame parse_auth(const Frame& frame);
[[nodiscard]] AuthOk parse_auth_ok(const Frame& frame);
[[nodiscard]] AuthReject parse_auth_reject(const Frame& frame);

/// Incremental frame decoder for a byte stream. feed() accepts whatever
/// the socket produced; next() yields completed frames in order. A
/// malformed header or an oversized length throws ProtocolError from
/// feed() — the stream is unrecoverable at that point.
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_payload_bytes = kMaxPayloadBytes)
      : max_payload_bytes_(max_payload_bytes) {}

  void feed(const void* data, std::size_t size);
  [[nodiscard]] std::optional<Frame> next();
  [[nodiscard]] std::size_t buffered_bytes() const noexcept {
    return buffer_.size() - consumed_;
  }

 private:
  /// Validates the header at the current read position (if complete).
  void check_header();

  std::size_t max_payload_bytes_;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
};

}  // namespace headtalk::serve
