#include "serve/protocol.h"

#include <bit>
#include <cstring>

namespace headtalk::serve {
namespace {

static_assert(sizeof(float) == 4 && sizeof(double) == 8,
              "the wire protocol assumes IEEE-754 float sizes");

constexpr std::size_t kMaxErrorMessageBytes = 1024;

constexpr bool kLittleEndianHost = std::endian::native == std::endian::little;

void append_bytes(std::vector<std::uint8_t>& out, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  out.insert(out.end(), p, p + n);
}

void append_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

// All multi-byte fields are serialized least-significant byte first —
// the shift/mask form is byte-order independent, so the wire format stays
// little-endian even on a big-endian host (see protocol.h).
template <typename T>
void append_le(std::vector<std::uint8_t>& out, T v) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void append_u16(std::vector<std::uint8_t>& out, std::uint16_t v) { append_le(out, v); }

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) { append_le(out, v); }

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) { append_le(out, v); }

void append_f64(std::vector<std::uint8_t>& out, double v) {
  append_le(out, std::bit_cast<std::uint64_t>(v));
}

void append_f32_array(std::vector<std::uint8_t>& out, std::span<const float> values) {
  if constexpr (kLittleEndianHost) {
    // The hot path (audio chunks): host layout already matches the wire.
    append_bytes(out, values.data(), values.size() * sizeof(float));
  } else {
    for (const float v : values) append_le(out, std::bit_cast<std::uint32_t>(v));
  }
}

template <typename T>
T load_le(const std::uint8_t* p) {
  T v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<T>(static_cast<T>(p[i]) << (8 * i));
  }
  return v;
}

/// Bounds-checked little-endian payload cursor; every read throws
/// ProtocolError past the end, and finish() rejects trailing bytes.
class ByteCursor {
 public:
  ByteCursor(const std::vector<std::uint8_t>& bytes, const char* what)
      : bytes_(bytes), what_(what) {}

  std::uint8_t read_u8() { return read_le<std::uint8_t>(); }
  std::uint16_t read_u16() { return read_le<std::uint16_t>(); }
  std::uint32_t read_u32() { return read_le<std::uint32_t>(); }
  std::uint64_t read_u64() { return read_le<std::uint64_t>(); }
  double read_f64() { return std::bit_cast<double>(read_le<std::uint64_t>()); }

  void read_f32_array(float* out, std::size_t count) {
    require(count * sizeof(float));
    if constexpr (kLittleEndianHost) {
      std::memcpy(out, bytes_.data() + offset_, count * sizeof(float));
    } else {
      for (std::size_t i = 0; i < count; ++i) {
        out[i] = std::bit_cast<float>(
            load_le<std::uint32_t>(bytes_.data() + offset_ + i * sizeof(float)));
      }
    }
    offset_ += count * sizeof(float);
  }

  std::string read_chars(std::size_t count) {
    require(count);
    std::string text(reinterpret_cast<const char*>(bytes_.data() + offset_), count);
    offset_ += count;
    return text;
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - offset_;
  }

  void finish() {
    if (offset_ != bytes_.size()) {
      throw ProtocolError(std::string(what_) + ": trailing payload bytes");
    }
  }

 private:
  template <typename T>
  T read_le() {
    require(sizeof(T));
    const T value = load_le<T>(bytes_.data() + offset_);
    offset_ += sizeof(T);
    return value;
  }

  void require(std::size_t n) {
    if (bytes_.size() - offset_ < n) {
      throw ProtocolError(std::string(what_) + ": payload truncated");
    }
  }

  const std::vector<std::uint8_t>& bytes_;
  const char* what_;
  std::size_t offset_ = 0;
};

/// Builds `header + payload` with the final length patched in.
std::vector<std::uint8_t> finish_frame(FrameType type,
                                       std::vector<std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderBytes + payload.size());
  append_u32(out, static_cast<std::uint32_t>(payload.size()));
  append_u8(out, static_cast<std::uint8_t>(type));
  append_u8(out, 0);   // flags
  append_u16(out, 0);  // reserved
  append_bytes(out, payload.data(), payload.size());
  return out;
}

void expect_type(const Frame& frame, FrameType type, const char* what) {
  if (frame.type != type) {
    throw ProtocolError(std::string(what) + ": got " +
                        std::string(frame_type_name(frame.type)) + " frame");
  }
}

}  // namespace

std::string_view frame_type_name(FrameType type) {
  switch (type) {
    case FrameType::kHello:
      return "HELLO";
    case FrameType::kHelloOk:
      return "HELLO_OK";
    case FrameType::kAudioChunk:
      return "AUDIO_CHUNK";
    case FrameType::kEndOfUtterance:
      return "END_OF_UTTERANCE";
    case FrameType::kDecision:
      return "DECISION";
    case FrameType::kError:
      return "ERROR";
    case FrameType::kBusy:
      return "BUSY";
    case FrameType::kStreamStart:
      return "STREAM_START";
    case FrameType::kStreamOk:
      return "STREAM_OK";
    case FrameType::kStreamDecision:
      return "STREAM_DECISION";
    case FrameType::kStreamEnd:
      return "STREAM_END";
    case FrameType::kStreamSummary:
      return "STREAM_SUMMARY";
    case FrameType::kAuth:
      return "AUTH";
    case FrameType::kAuthOk:
      return "AUTH_OK";
    case FrameType::kAuthReject:
      return "AUTH_REJECT";
  }
  return "?";
}

bool frame_type_known(std::uint8_t raw) noexcept {
  return raw >= static_cast<std::uint8_t>(FrameType::kHello) &&
         raw <= static_cast<std::uint8_t>(FrameType::kAuthReject);
}

std::string_view auth_reject_code_name(AuthRejectCode code) {
  switch (code) {
    case AuthRejectCode::kUnknownTenant:
      return "unknown-tenant";
    case AuthRejectCode::kAlreadyAuthenticated:
      return "already-authenticated";
    case AuthRejectCode::kStreamOpen:
      return "stream-open";
    case AuthRejectCode::kTenantsDisabled:
      return "tenants-disabled";
  }
  return "?";
}

std::string_view error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest:
      return "bad-request";
    case ErrorCode::kUnsupportedVersion:
      return "unsupported-version";
    case ErrorCode::kTooLarge:
      return "too-large";
    case ErrorCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case ErrorCode::kShuttingDown:
      return "shutting-down";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "?";
}

std::vector<std::uint8_t> encode_hello(const Hello& hello) {
  std::vector<std::uint8_t> payload;
  append_u32(payload, hello.protocol_version);
  append_u32(payload, hello.sample_rate_hz);
  append_u16(payload, hello.channels);
  append_u16(payload, 0);  // reserved
  return finish_frame(FrameType::kHello, std::move(payload));
}

std::vector<std::uint8_t> encode_hello_ok(const HelloOk& ok) {
  std::vector<std::uint8_t> payload;
  append_u32(payload, ok.protocol_version);
  append_u32(payload, ok.max_chunk_frames);
  append_u32(payload, ok.max_utterance_frames);
  return finish_frame(FrameType::kHelloOk, std::move(payload));
}

std::vector<std::uint8_t> encode_audio_chunk(std::span<const float> interleaved,
                                             std::uint16_t channels) {
  if (channels == 0 || interleaved.empty() || interleaved.size() % channels != 0) {
    throw ProtocolError("AUDIO_CHUNK: sample count must be a nonzero multiple "
                        "of the channel count");
  }
  std::vector<std::uint8_t> payload;
  payload.reserve(sizeof(std::uint32_t) + interleaved.size() * sizeof(float));
  append_u32(payload, static_cast<std::uint32_t>(interleaved.size() / channels));
  append_f32_array(payload, interleaved);
  if (payload.size() > kMaxPayloadBytes) {
    throw ProtocolError("AUDIO_CHUNK: chunk larger than kMaxPayloadBytes");
  }
  return finish_frame(FrameType::kAudioChunk, std::move(payload));
}

std::vector<std::uint8_t> encode_end_of_utterance(bool followup) {
  std::vector<std::uint8_t> payload;
  append_u8(payload, followup ? 1 : 0);
  append_u8(payload, 0);
  append_u16(payload, 0);
  return finish_frame(FrameType::kEndOfUtterance, std::move(payload));
}

namespace {

// The DECISION field block is shared verbatim by STREAM_DECISION, so the
// two frames cannot drift apart.
void append_decision_fields(std::vector<std::uint8_t>& payload,
                            const DecisionFrame& decision) {
  append_u8(payload, decision.decision);
  append_u8(payload, decision.live ? 1 : 0);
  append_u8(payload, decision.facing ? 1 : 0);
  append_u8(payload, decision.via_open_session ? 1 : 0);
  append_f64(payload, decision.liveness_score);
  append_f64(payload, decision.orientation_score);
  append_f64(payload, decision.elapsed_seconds);
  append_u8(payload, decision.policy_applied ? 1 : 0);
  append_u8(payload, decision.policy_allowed ? 1 : 0);
  append_u8(payload, decision.policy_reason);
  append_u8(payload, 0);  // reserved
  append_f64(payload, decision.match_score);
}

DecisionFrame read_decision_fields(ByteCursor& in, const char* what) {
  DecisionFrame decision;
  decision.decision = in.read_u8();
  if (decision.decision > 3) {
    throw ProtocolError(std::string(what) + ": unknown decision code");
  }
  const std::uint8_t live = in.read_u8();
  const std::uint8_t facing = in.read_u8();
  const std::uint8_t via = in.read_u8();
  if (live > 1 || facing > 1 || via > 1) {
    throw ProtocolError(std::string(what) + ": bad boolean flag");
  }
  decision.live = live == 1;
  decision.facing = facing == 1;
  decision.via_open_session = via == 1;
  decision.liveness_score = in.read_f64();
  decision.orientation_score = in.read_f64();
  decision.elapsed_seconds = in.read_f64();
  const std::uint8_t applied = in.read_u8();
  const std::uint8_t allowed = in.read_u8();
  if (applied > 1 || allowed > 1) {
    throw ProtocolError(std::string(what) + ": bad policy flag");
  }
  decision.policy_applied = applied == 1;
  decision.policy_allowed = allowed == 1;
  decision.policy_reason = in.read_u8();
  if (in.read_u8() != 0) {
    throw ProtocolError(std::string(what) + ": reserved policy bits set");
  }
  decision.match_score = in.read_f64();
  return decision;
}

}  // namespace

std::vector<std::uint8_t> encode_decision(const DecisionFrame& decision) {
  std::vector<std::uint8_t> payload;
  append_decision_fields(payload, decision);
  return finish_frame(FrameType::kDecision, std::move(payload));
}

std::vector<std::uint8_t> encode_error(ErrorCode code, std::string_view message) {
  if (message.size() > kMaxErrorMessageBytes) {
    message = message.substr(0, kMaxErrorMessageBytes);
  }
  std::vector<std::uint8_t> payload;
  append_u32(payload, static_cast<std::uint32_t>(code));
  append_u32(payload, static_cast<std::uint32_t>(message.size()));
  append_bytes(payload, message.data(), message.size());
  return finish_frame(FrameType::kError, std::move(payload));
}

std::vector<std::uint8_t> encode_busy() { return finish_frame(FrameType::kBusy, {}); }

std::vector<std::uint8_t> encode_stream_start() {
  return finish_frame(FrameType::kStreamStart, {});
}

std::vector<std::uint8_t> encode_stream_ok(const StreamOk& ok) {
  std::vector<std::uint8_t> payload;
  append_u32(payload, ok.vad_frame_length);
  append_u32(payload, ok.max_segment_frames);
  return finish_frame(FrameType::kStreamOk, std::move(payload));
}

std::vector<std::uint8_t> encode_stream_decision(const StreamDecisionFrame& decision) {
  std::vector<std::uint8_t> payload;
  append_decision_fields(payload, decision.decision);
  append_f64(payload, decision.begin_seconds);
  append_f64(payload, decision.end_seconds);
  append_u8(payload, decision.force_closed ? 1 : 0);
  append_u8(payload, 0);
  append_u16(payload, 0);
  return finish_frame(FrameType::kStreamDecision, std::move(payload));
}

std::vector<std::uint8_t> encode_stream_end() {
  return finish_frame(FrameType::kStreamEnd, {});
}

std::vector<std::uint8_t> encode_stream_summary(const StreamSummary& summary) {
  std::vector<std::uint8_t> payload;
  append_u64(payload, summary.frames_streamed);
  append_u32(payload, summary.segments);
  append_u32(payload, summary.force_closed);
  append_u32(payload, summary.discarded);
  append_u32(payload, 0);  // reserved
  return finish_frame(FrameType::kStreamSummary, std::move(payload));
}

std::vector<std::uint8_t> encode_auth(std::string_view tenant_id) {
  if (tenant_id.empty() || tenant_id.size() > kMaxTenantIdBytes) {
    throw ProtocolError("AUTH: tenant id length out of range [1, " +
                        std::to_string(kMaxTenantIdBytes) + "]");
  }
  std::vector<std::uint8_t> payload;
  append_u16(payload, static_cast<std::uint16_t>(tenant_id.size()));
  append_u16(payload, 0);  // reserved
  append_bytes(payload, tenant_id.data(), tenant_id.size());
  return finish_frame(FrameType::kAuth, std::move(payload));
}

std::vector<std::uint8_t> encode_auth_ok(const AuthOk& ok) {
  std::vector<std::uint8_t> payload;
  append_u64(payload, ok.generation);
  append_u8(payload, ok.policy_rule);
  append_u8(payload, 0);   // reserved
  append_u16(payload, 0);  // reserved
  append_u32(payload, ok.quota_per_minute);
  return finish_frame(FrameType::kAuthOk, std::move(payload));
}

std::vector<std::uint8_t> encode_auth_reject(AuthRejectCode code,
                                             std::string_view message) {
  if (message.size() > kMaxErrorMessageBytes) {
    message = message.substr(0, kMaxErrorMessageBytes);
  }
  std::vector<std::uint8_t> payload;
  append_u32(payload, static_cast<std::uint32_t>(code));
  append_u32(payload, static_cast<std::uint32_t>(message.size()));
  append_bytes(payload, message.data(), message.size());
  return finish_frame(FrameType::kAuthReject, std::move(payload));
}

Hello parse_hello(const Frame& frame) {
  expect_type(frame, FrameType::kHello, "HELLO");
  ByteCursor in(frame.payload, "HELLO");
  Hello hello;
  hello.protocol_version = in.read_u32();
  hello.sample_rate_hz = in.read_u32();
  hello.channels = in.read_u16();
  if (in.read_u16() != 0) throw ProtocolError("HELLO: reserved bits set");
  in.finish();
  if (hello.sample_rate_hz < 8000 || hello.sample_rate_hz > 192000) {
    throw ProtocolError("HELLO: sample rate out of range [8000, 192000]");
  }
  if (hello.channels == 0 || hello.channels > 64) {
    throw ProtocolError("HELLO: channel count out of range [1, 64]");
  }
  return hello;
}

HelloOk parse_hello_ok(const Frame& frame) {
  expect_type(frame, FrameType::kHelloOk, "HELLO_OK");
  ByteCursor in(frame.payload, "HELLO_OK");
  HelloOk ok;
  ok.protocol_version = in.read_u32();
  ok.max_chunk_frames = in.read_u32();
  ok.max_utterance_frames = in.read_u32();
  in.finish();
  return ok;
}

AudioChunk parse_audio_chunk(const Frame& frame, std::uint16_t channels) {
  expect_type(frame, FrameType::kAudioChunk, "AUDIO_CHUNK");
  if (channels == 0) throw ProtocolError("AUDIO_CHUNK: zero channel count");
  ByteCursor in(frame.payload, "AUDIO_CHUNK");
  AudioChunk chunk;
  chunk.frames = in.read_u32();
  if (chunk.frames == 0) throw ProtocolError("AUDIO_CHUNK: zero frames");
  const std::size_t samples = static_cast<std::size_t>(chunk.frames) * channels;
  if (in.remaining() != samples * sizeof(float)) {
    throw ProtocolError("AUDIO_CHUNK: payload length does not match frames * "
                        "channels");
  }
  chunk.interleaved.resize(samples);
  in.read_f32_array(chunk.interleaved.data(), samples);
  in.finish();
  return chunk;
}

EndOfUtterance parse_end_of_utterance(const Frame& frame) {
  expect_type(frame, FrameType::kEndOfUtterance, "END_OF_UTTERANCE");
  ByteCursor in(frame.payload, "END_OF_UTTERANCE");
  const std::uint8_t followup = in.read_u8();
  if (followup > 1) throw ProtocolError("END_OF_UTTERANCE: bad followup flag");
  if (in.read_u8() != 0 || in.read_u16() != 0) {
    throw ProtocolError("END_OF_UTTERANCE: reserved bits set");
  }
  in.finish();
  return EndOfUtterance{followup == 1};
}

DecisionFrame parse_decision(const Frame& frame) {
  expect_type(frame, FrameType::kDecision, "DECISION");
  ByteCursor in(frame.payload, "DECISION");
  const DecisionFrame decision = read_decision_fields(in, "DECISION");
  in.finish();
  return decision;
}

ErrorFrame parse_error(const Frame& frame) {
  expect_type(frame, FrameType::kError, "ERROR");
  ByteCursor in(frame.payload, "ERROR");
  ErrorFrame error;
  const std::uint32_t code = in.read_u32();
  if (code < static_cast<std::uint32_t>(ErrorCode::kBadRequest) ||
      code > static_cast<std::uint32_t>(ErrorCode::kInternal)) {
    throw ProtocolError("ERROR: unknown error code");
  }
  error.code = static_cast<ErrorCode>(code);
  const std::uint32_t length = in.read_u32();
  if (length > kMaxErrorMessageBytes || length != in.remaining()) {
    throw ProtocolError("ERROR: bad message length");
  }
  error.message = in.read_chars(length);
  in.finish();
  return error;
}

void parse_stream_start(const Frame& frame) {
  expect_type(frame, FrameType::kStreamStart, "STREAM_START");
  ByteCursor in(frame.payload, "STREAM_START");
  in.finish();  // version-1 payload is empty
}

StreamOk parse_stream_ok(const Frame& frame) {
  expect_type(frame, FrameType::kStreamOk, "STREAM_OK");
  ByteCursor in(frame.payload, "STREAM_OK");
  StreamOk ok;
  ok.vad_frame_length = in.read_u32();
  ok.max_segment_frames = in.read_u32();
  in.finish();
  if (ok.vad_frame_length == 0) {
    throw ProtocolError("STREAM_OK: zero VAD frame length");
  }
  return ok;
}

StreamDecisionFrame parse_stream_decision(const Frame& frame) {
  expect_type(frame, FrameType::kStreamDecision, "STREAM_DECISION");
  ByteCursor in(frame.payload, "STREAM_DECISION");
  StreamDecisionFrame decision;
  decision.decision = read_decision_fields(in, "STREAM_DECISION");
  decision.begin_seconds = in.read_f64();
  decision.end_seconds = in.read_f64();
  const std::uint8_t force = in.read_u8();
  if (force > 1) throw ProtocolError("STREAM_DECISION: bad force_closed flag");
  decision.force_closed = force == 1;
  if (in.read_u8() != 0 || in.read_u16() != 0) {
    throw ProtocolError("STREAM_DECISION: reserved bits set");
  }
  in.finish();
  if (decision.end_seconds < decision.begin_seconds) {
    throw ProtocolError("STREAM_DECISION: segment ends before it begins");
  }
  return decision;
}

void parse_stream_end(const Frame& frame) {
  expect_type(frame, FrameType::kStreamEnd, "STREAM_END");
  ByteCursor in(frame.payload, "STREAM_END");
  in.finish();  // version-1 payload is empty
}

StreamSummary parse_stream_summary(const Frame& frame) {
  expect_type(frame, FrameType::kStreamSummary, "STREAM_SUMMARY");
  ByteCursor in(frame.payload, "STREAM_SUMMARY");
  StreamSummary summary;
  summary.frames_streamed = in.read_u64();
  summary.segments = in.read_u32();
  summary.force_closed = in.read_u32();
  summary.discarded = in.read_u32();
  if (in.read_u32() != 0) throw ProtocolError("STREAM_SUMMARY: reserved bits set");
  in.finish();
  return summary;
}

AuthFrame parse_auth(const Frame& frame) {
  expect_type(frame, FrameType::kAuth, "AUTH");
  ByteCursor in(frame.payload, "AUTH");
  const std::uint16_t length = in.read_u16();
  if (in.read_u16() != 0) throw ProtocolError("AUTH: reserved bits set");
  if (length == 0 || length > kMaxTenantIdBytes || length != in.remaining()) {
    throw ProtocolError("AUTH: bad tenant id length");
  }
  AuthFrame auth;
  auth.tenant_id = in.read_chars(length);
  in.finish();
  return auth;
}

AuthOk parse_auth_ok(const Frame& frame) {
  expect_type(frame, FrameType::kAuthOk, "AUTH_OK");
  ByteCursor in(frame.payload, "AUTH_OK");
  AuthOk ok;
  ok.generation = in.read_u64();
  ok.policy_rule = in.read_u8();
  if (in.read_u8() != 0 || in.read_u16() != 0) {
    throw ProtocolError("AUTH_OK: reserved bits set");
  }
  ok.quota_per_minute = in.read_u32();
  in.finish();
  return ok;
}

AuthReject parse_auth_reject(const Frame& frame) {
  expect_type(frame, FrameType::kAuthReject, "AUTH_REJECT");
  ByteCursor in(frame.payload, "AUTH_REJECT");
  AuthReject reject;
  const std::uint32_t code = in.read_u32();
  if (code < static_cast<std::uint32_t>(AuthRejectCode::kUnknownTenant) ||
      code > static_cast<std::uint32_t>(AuthRejectCode::kTenantsDisabled)) {
    throw ProtocolError("AUTH_REJECT: unknown reject code");
  }
  reject.code = static_cast<AuthRejectCode>(code);
  const std::uint32_t length = in.read_u32();
  if (length > kMaxErrorMessageBytes || length != in.remaining()) {
    throw ProtocolError("AUTH_REJECT: bad message length");
  }
  reject.message = in.read_chars(length);
  in.finish();
  return reject;
}

void FrameReader::feed(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buffer_.insert(buffer_.end(), p, p + size);
  check_header();
}

void FrameReader::check_header() {
  if (buffer_.size() - consumed_ < kFrameHeaderBytes) return;
  const std::uint8_t* header = buffer_.data() + consumed_;
  const std::uint32_t payload_len = load_le<std::uint32_t>(header);
  if (payload_len > max_payload_bytes_) {
    throw ProtocolError("frame: payload length " + std::to_string(payload_len) +
                        " exceeds limit " + std::to_string(max_payload_bytes_));
  }
  if (!frame_type_known(header[4])) {
    throw ProtocolError("frame: unknown type " + std::to_string(header[4]));
  }
  if (header[5] != 0 || header[6] != 0 || header[7] != 0) {
    throw ProtocolError("frame: reserved header bits set");
  }
}

std::optional<Frame> FrameReader::next() {
  if (buffer_.size() - consumed_ < kFrameHeaderBytes) return std::nullopt;
  const std::uint8_t* header = buffer_.data() + consumed_;
  const std::uint32_t payload_len = load_le<std::uint32_t>(header);
  if (buffer_.size() - consumed_ < kFrameHeaderBytes + payload_len) {
    return std::nullopt;
  }
  Frame frame;
  frame.type = static_cast<FrameType>(header[4]);
  frame.payload.assign(header + kFrameHeaderBytes,
                       header + kFrameHeaderBytes + payload_len);
  consumed_ += kFrameHeaderBytes + payload_len;
  // Compact once the dead prefix dominates, keeping feed() amortized O(1).
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  // The next header (if complete) must validate before we hand back control,
  // so garbage after a valid frame fails fast.
  check_header();
  return frame;
}

}  // namespace headtalk::serve
