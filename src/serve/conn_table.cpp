#include "serve/conn_table.h"

namespace headtalk::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t steady_us() noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now().time_since_epoch())
      .count();
}

}  // namespace

void ConnectionTable::Slot::touch() noexcept {
  last_activity_us.store(steady_us(), std::memory_order_relaxed);
}

std::shared_ptr<ConnectionTable::Slot> ConnectionTable::insert() {
  auto slot = std::make_shared<Slot>();
  slot->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  slot->accepted_at = Clock::now();
  slot->touch();
  std::lock_guard lock(mutex_);
  slots_.emplace(slot->id, slot);
  return slot;
}

void ConnectionTable::erase(std::uint64_t id) {
  std::lock_guard lock(mutex_);
  slots_.erase(id);
}

std::size_t ConnectionTable::size() const {
  std::lock_guard lock(mutex_);
  return slots_.size();
}

std::vector<ConnectionInfo> ConnectionTable::snapshot() const {
  const auto now = Clock::now();
  const auto now_us = steady_us();
  std::vector<ConnectionInfo> out;
  std::lock_guard lock(mutex_);
  out.reserve(slots_.size());
  for (const auto& [id, slot] : slots_) {
    ConnectionInfo info;
    info.id = id;
    info.stream_mode = slot->stream_mode.load(std::memory_order_relaxed);
    info.decisions = slot->decisions.load(std::memory_order_relaxed);
    info.age_seconds = std::chrono::duration<double>(now - slot->accepted_at).count();
    const auto last = slot->last_activity_us.load(std::memory_order_relaxed);
    info.idle_seconds =
        last > 0 && now_us > last ? static_cast<double>(now_us - last) * 1e-6 : 0.0;
    out.push_back(info);
  }
  return out;
}

}  // namespace headtalk::serve
