#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace headtalk::serve {
namespace {

void close_quietly(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace

BlockingClient BlockingClient::connect_unix(const std::filesystem::path& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string text = path.string();
  if (text.empty() || text.size() >= sizeof(addr.sun_path)) {
    throw ClientError("bad unix socket path '" + text + "'");
  }
  std::memcpy(addr.sun_path, text.c_str(), text.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw ClientError("socket() failed");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    close_quietly(fd);
    throw ClientError("cannot connect to " + text + ": " + std::strerror(err));
  }
  return BlockingClient(fd);
}

BlockingClient BlockingClient::connect_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw ClientError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    close_quietly(fd);
    throw ClientError("cannot connect to 127.0.0.1:" + std::to_string(port) + ": " +
                      std::strerror(err));
  }
  return BlockingClient(fd);
}

BlockingClient::BlockingClient(BlockingClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      channels_(other.channels_),
      reader_(std::move(other.reader_)) {}

BlockingClient& BlockingClient::operator=(BlockingClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    channels_ = other.channels_;
    reader_ = std::move(other.reader_);
  }
  return *this;
}

BlockingClient::~BlockingClient() { close(); }

void BlockingClient::close() noexcept {
  close_quietly(fd_);
  fd_ = -1;
}

void BlockingClient::send_bytes(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd_, bytes + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ClientError(std::string("send failed: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

Frame BlockingClient::read_frame(int timeout_ms) {
  while (true) {
    try {
      if (auto frame = reader_.next()) return *std::move(frame);
    } catch (const ProtocolError& error) {
      throw ClientError(std::string("malformed server frame: ") + error.what());
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw ClientError(std::string("poll failed: ") + std::strerror(errno));
    }
    if (ready == 0) throw ClientError("timed out waiting for a server frame");
    std::uint8_t buffer[1 << 16];
    const ssize_t n = ::recv(fd_, buffer, sizeof buffer, 0);
    if (n == 0) throw ClientError("server closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ClientError(std::string("recv failed: ") + std::strerror(errno));
    }
    try {
      reader_.feed(buffer, static_cast<std::size_t>(n));
    } catch (const ProtocolError& error) {
      throw ClientError(std::string("malformed server frame: ") + error.what());
    }
  }
}

namespace {

[[noreturn]] void throw_server_reply(const Frame& frame) {
  if (frame.type == FrameType::kBusy) {
    throw ClientError("server is busy (BUSY frame)", /*busy=*/true);
  }
  if (frame.type == FrameType::kError) {
    const ErrorFrame error = parse_error(frame);
    throw ClientError(error.code, "server error (" +
                                      std::string(error_code_name(error.code)) +
                                      "): " + error.message);
  }
  throw ClientError("unexpected server frame: " +
                    std::string(frame_type_name(frame.type)));
}

}  // namespace

HelloOk BlockingClient::hello(const Hello& hello) {
  const auto bytes = encode_hello(hello);
  send_bytes(bytes.data(), bytes.size());
  const Frame reply = read_frame();
  if (reply.type != FrameType::kHelloOk) throw_server_reply(reply);
  channels_ = hello.channels;
  return parse_hello_ok(reply);
}

BlockingClient::AuthResult BlockingClient::auth(std::string_view tenant_id) {
  if (channels_ == 0) throw ClientError("auth() before hello()");
  const auto bytes = encode_auth(tenant_id);
  send_bytes(bytes.data(), bytes.size());
  const Frame reply = read_frame();
  AuthResult result;
  if (reply.type == FrameType::kAuthOk) {
    result.accepted = true;
    result.ok = parse_auth_ok(reply);
    return result;
  }
  if (reply.type == FrameType::kAuthReject) {
    result.accepted = false;
    result.reject = parse_auth_reject(reply);
    return result;
  }
  throw_server_reply(reply);
}

DecisionFrame BlockingClient::score(const audio::MultiBuffer& capture, bool followup,
                                    std::size_t chunk_frames) {
  if (channels_ == 0) throw ClientError("score() before hello()");
  if (capture.channel_count() != channels_) {
    throw ClientError("capture has " + std::to_string(capture.channel_count()) +
                      " channels, HELLO announced " + std::to_string(channels_));
  }
  if (chunk_frames == 0) chunk_frames = 4800;

  std::vector<float> interleaved;
  for (std::size_t begin = 0; begin < capture.frames(); begin += chunk_frames) {
    const std::size_t count = std::min(chunk_frames, capture.frames() - begin);
    interleaved.resize(count * channels_);
    for (std::size_t f = 0; f < count; ++f) {
      for (std::uint16_t c = 0; c < channels_; ++c) {
        interleaved[f * channels_ + c] =
            static_cast<float>(capture.channel(c)[begin + f]);
      }
    }
    const auto chunk = encode_audio_chunk(interleaved, channels_);
    send_bytes(chunk.data(), chunk.size());
  }
  const auto end = encode_end_of_utterance(followup);
  send_bytes(end.data(), end.size());

  const Frame reply = read_frame();
  if (reply.type != FrameType::kDecision) throw_server_reply(reply);
  return parse_decision(reply);
}

std::optional<Frame> BlockingClient::try_read_frame() {
  while (true) {
    try {
      if (auto frame = reader_.next()) return frame;
    } catch (const ProtocolError& error) {
      throw ClientError(std::string("malformed server frame: ") + error.what());
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 0);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw ClientError(std::string("poll failed: ") + std::strerror(errno));
    }
    if (ready == 0) return std::nullopt;
    std::uint8_t buffer[1 << 16];
    const ssize_t n = ::recv(fd_, buffer, sizeof buffer, 0);
    if (n == 0) throw ClientError("server closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ClientError(std::string("recv failed: ") + std::strerror(errno));
    }
    try {
      reader_.feed(buffer, static_cast<std::size_t>(n));
    } catch (const ProtocolError& error) {
      throw ClientError(std::string("malformed server frame: ") + error.what());
    }
  }
}

StreamOk BlockingClient::start_stream() {
  if (channels_ == 0) throw ClientError("start_stream() before hello()");
  const auto bytes = encode_stream_start();
  send_bytes(bytes.data(), bytes.size());
  const Frame reply = read_frame();
  if (reply.type != FrameType::kStreamOk) throw_server_reply(reply);
  return parse_stream_ok(reply);
}

void BlockingClient::stream_audio(const audio::MultiBuffer& chunk,
                                  std::vector<StreamDecisionFrame>& decisions,
                                  std::size_t chunk_frames) {
  if (channels_ == 0) throw ClientError("stream_audio() before hello()");
  if (chunk.channel_count() != channels_) {
    throw ClientError("chunk has " + std::to_string(chunk.channel_count()) +
                      " channels, HELLO announced " + std::to_string(channels_));
  }
  if (chunk_frames == 0) chunk_frames = 4800;

  std::vector<float> interleaved;
  for (std::size_t begin = 0; begin < chunk.frames(); begin += chunk_frames) {
    const std::size_t count = std::min(chunk_frames, chunk.frames() - begin);
    interleaved.resize(count * channels_);
    for (std::size_t f = 0; f < count; ++f) {
      for (std::uint16_t c = 0; c < channels_; ++c) {
        interleaved[f * channels_ + c] =
            static_cast<float>(chunk.channel(c)[begin + f]);
      }
    }
    const auto encoded = encode_audio_chunk(interleaved, channels_);
    send_bytes(encoded.data(), encoded.size());
    // Collect whatever the server has pushed back so far; a write-only
    // loop would let decisions pile up in the socket buffer until it
    // deadlocks against our own sends.
    while (auto frame = try_read_frame()) {
      if (frame->type != FrameType::kStreamDecision) throw_server_reply(*frame);
      decisions.push_back(parse_stream_decision(*frame));
    }
  }
}

StreamSummary BlockingClient::end_stream(std::vector<StreamDecisionFrame>& decisions,
                                         int timeout_ms) {
  if (channels_ == 0) throw ClientError("end_stream() before hello()");
  const auto bytes = encode_stream_end();
  send_bytes(bytes.data(), bytes.size());
  while (true) {
    const Frame frame = read_frame(timeout_ms);
    if (frame.type == FrameType::kStreamDecision) {
      decisions.push_back(parse_stream_decision(frame));
      continue;
    }
    if (frame.type == FrameType::kStreamSummary) return parse_stream_summary(frame);
    throw_server_reply(frame);
  }
}

}  // namespace headtalk::serve
