#include "serve/session.h"

#include <algorithm>
#include <exception>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tenant/service.h"

namespace headtalk::serve {

void SampleRing::reset(std::uint16_t channels, std::size_t capacity_frames,
                       double sample_rate) {
  channels_ = channels;
  capacity_ = capacity_frames;
  sample_rate_ = sample_rate;
  data_.assign(capacity_ * channels_, 0.0f);
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
}

void SampleRing::append(std::span<const float> interleaved) {
  if (channels_ == 0 || capacity_ == 0) return;
  const std::size_t frames = interleaved.size() / channels_;
  // A single append larger than the whole ring keeps only its tail.
  std::size_t start = 0;
  if (frames > capacity_) {
    start = frames - capacity_;
    dropped_ += start;
  }
  for (std::size_t f = start; f < frames; ++f) {
    const std::size_t slot = (head_ + size_) % capacity_;
    std::copy_n(interleaved.data() + f * channels_, channels_,
                data_.data() + slot * channels_);
    if (size_ < capacity_) {
      ++size_;
    } else {
      head_ = (head_ + 1) % capacity_;  // overwrote the oldest frame
      ++dropped_;
    }
  }
}

audio::MultiBuffer SampleRing::snapshot() const {
  audio::MultiBuffer capture(channels_, size_, sample_rate_);
  for (std::size_t f = 0; f < size_; ++f) {
    const std::size_t slot = (head_ + f) % capacity_;
    for (std::uint16_t c = 0; c < channels_; ++c) {
      capture.channel(c)[f] = static_cast<audio::Sample>(data_[slot * channels_ + c]);
    }
  }
  return capture;
}

void SampleRing::clear() noexcept {
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
}

Session::Session(const core::HeadTalkPipeline& pipeline, SessionLimits limits)
    : pipeline_(pipeline), limits_(limits) {}

bool Session::on_bytes(const void* data, std::size_t size) {
  if (state_ == State::kFailed) return false;
  try {
    reader_.feed(data, size);
    drain_frames();
  } catch (const ProtocolError& error) {
    fail(ErrorCode::kBadRequest, error.what());
  }
  return state_ != State::kFailed;
}

void Session::drain_frames() {
  // While a deferred score is out, complete frames stay buffered in the
  // reader: a pipelining client's next utterance is processed in order
  // once the pending DECISION has been emitted (complete_score resumes
  // this drain).
  while (state_ != State::kFailed && !score_pending_) {
    const auto frame = reader_.next();
    if (!frame) break;
    handle_frame(*frame);
  }
}

void Session::complete_score(const core::PipelineResult& result,
                             const core::FeatureCapture& features,
                             double elapsed_seconds) {
  if (!score_pending_) return;
  score_pending_ = false;
  if (state_ == State::kFailed) return;  // failed while the score was out
  session_open_ = result.session_open_after;
  DecisionFrame decision;
  decision.decision = static_cast<std::uint8_t>(result.decision);
  decision.live = result.live;
  decision.facing = result.facing;
  decision.via_open_session = result.via_open_session;
  decision.liveness_score = result.liveness_score;
  decision.orientation_score = result.orientation_score;
  apply_policy(decision, result, features);
  decision.elapsed_seconds = elapsed_seconds;
  const auto bytes = encode_decision(decision);
  output_.insert(output_.end(), bytes.begin(), bytes.end());
  ++decisions_;
  // Frames the client pipelined behind the END_OF_UTTERANCE resume now.
  try {
    drain_frames();
  } catch (const ProtocolError& error) {
    fail(ErrorCode::kBadRequest, error.what());
  }
}

void Session::fail_score(const std::string& message) {
  if (!score_pending_) return;
  score_pending_ = false;
  if (state_ == State::kFailed) return;
  fail(ErrorCode::kInternal, "scoring failed: " + message);
}

std::vector<std::uint8_t> Session::take_output() {
  std::vector<std::uint8_t> out;
  out.swap(output_);
  return out;
}

void Session::handle_frame(const Frame& frame) {
  switch (frame.type) {
    case FrameType::kHello:
      handle_hello(frame);
      return;
    case FrameType::kAuth:
      handle_auth(frame);
      return;
    case FrameType::kAudioChunk:
      handle_chunk(frame);
      return;
    case FrameType::kEndOfUtterance:
      handle_end_of_utterance(frame);
      return;
    case FrameType::kStreamStart:
      handle_stream_start(frame);
      return;
    case FrameType::kStreamEnd:
      handle_stream_end(frame);
      return;
    case FrameType::kHelloOk:
    case FrameType::kDecision:
    case FrameType::kError:
    case FrameType::kBusy:
    case FrameType::kStreamOk:
    case FrameType::kStreamDecision:
    case FrameType::kStreamSummary:
    case FrameType::kAuthOk:
    case FrameType::kAuthReject:
      fail(ErrorCode::kBadRequest,
           std::string("client sent a server-only frame: ") +
               std::string(frame_type_name(frame.type)));
      return;
  }
  fail(ErrorCode::kBadRequest, "unhandled frame type");
}

void Session::handle_hello(const Frame& frame) {
  if (state_ != State::kAwaitHello) {
    fail(ErrorCode::kBadRequest, "duplicate HELLO");
    return;
  }
  const Hello hello = parse_hello(frame);
  if (hello.protocol_version != kProtocolVersion) {
    fail(ErrorCode::kUnsupportedVersion,
         "server speaks protocol version " + std::to_string(kProtocolVersion) +
             ", client sent " + std::to_string(hello.protocol_version));
    return;
  }
  if (hello.channels > limits_.max_channels) {
    fail(ErrorCode::kTooLarge,
         "channel count " + std::to_string(hello.channels) + " exceeds limit " +
             std::to_string(limits_.max_channels));
    return;
  }
  channels_ = hello.channels;
  sample_rate_ = static_cast<double>(hello.sample_rate_hz);
  ring_.reset(channels_, limits_.max_utterance_frames, sample_rate_);
  state_ = State::kStreaming;

  HelloOk ok;
  ok.max_chunk_frames = limits_.max_chunk_frames;
  ok.max_utterance_frames = limits_.max_utterance_frames;
  const auto bytes = encode_hello_ok(ok);
  output_.insert(output_.end(), bytes.begin(), bytes.end());
}

void Session::handle_auth(const Frame& frame) {
  if (state_ != State::kStreaming) {
    // Before HELLO the connection has no negotiated protocol state at all;
    // this stays a hard protocol error like every other pre-HELLO frame.
    fail(ErrorCode::kBadRequest, "AUTH before HELLO");
    return;
  }
  const AuthFrame auth = parse_auth(frame);
  // Everything below is a *non-fatal* refusal: the protocol-hardening
  // contract is that a misplaced or unresolvable AUTH answers a typed
  // AUTH_REJECT and the connection continues tenant-less.
  if (stream_mode_) {
    reject_auth(AuthRejectCode::kStreamOpen, "AUTH while a stream is open");
    return;
  }
  if (ring_.frames() != 0) {
    reject_auth(AuthRejectCode::kStreamOpen, "AUTH with an utterance in flight");
    return;
  }
  if (!tenant_id_.empty()) {
    reject_auth(AuthRejectCode::kAlreadyAuthenticated,
                "connection already bound to tenant '" + tenant_id_ + "'");
    return;
  }
  if (limits_.tenants == nullptr) {
    reject_auth(AuthRejectCode::kTenantsDisabled,
                "server is running without a tenant store");
    return;
  }
  const auto info = limits_.tenants->authenticate(auth.tenant_id);
  if (!info) {
    reject_auth(AuthRejectCode::kUnknownTenant,
                "tenant '" + auth.tenant_id + "' is not enrolled");
    return;
  }
  tenant_id_ = auth.tenant_id;
  static obs::Counter& auths =
      obs::Registry::global().counter("serve.session.auth_ok");
  auths.increment();

  AuthOk ok;
  ok.generation = info->generation;
  ok.policy_rule = static_cast<std::uint8_t>(info->rule);
  ok.quota_per_minute = info->quota_per_minute;
  const auto bytes = encode_auth_ok(ok);
  output_.insert(output_.end(), bytes.begin(), bytes.end());
}

void Session::reject_auth(AuthRejectCode code, const std::string& message) {
  static obs::Counter& rejects =
      obs::Registry::global().counter("serve.session.auth_rejected");
  rejects.increment();
  obs::log_warn("serve.session.auth_reject",
                {{"code", auth_reject_code_name(code)}, {"message", message}});
  const auto bytes = encode_auth_reject(code, message);
  output_.insert(output_.end(), bytes.begin(), bytes.end());
}

void Session::apply_policy(DecisionFrame& decision, const core::PipelineResult& result,
                           const core::FeatureCapture& features) {
  if (tenant_id_.empty() || limits_.tenants == nullptr) {
    decision.policy_applied = false;
    decision.policy_allowed = result.decision == core::Decision::kAccepted;
    return;
  }
  const tenant::PolicyDecision policy =
      limits_.tenants->decide(tenant_id_, result, features);
  decision.policy_applied = true;
  decision.policy_allowed = policy.allowed;
  decision.policy_reason = static_cast<std::uint8_t>(policy.reason);
  decision.match_score = policy.match_score;
  // A policy denial must not leave a HeadTalk session open: a mismatched
  // or over-quota speaker does not get hands-free follow-ups.
  if (!policy.allowed) session_open_ = false;
}

void Session::handle_chunk(const Frame& frame) {
  if (state_ != State::kStreaming) {
    fail(ErrorCode::kBadRequest, "AUDIO_CHUNK before HELLO");
    return;
  }
  const AudioChunk chunk = parse_audio_chunk(frame, channels_);
  if (chunk.frames > limits_.max_chunk_frames) {
    fail(ErrorCode::kTooLarge,
         "chunk of " + std::to_string(chunk.frames) + " frames exceeds limit " +
             std::to_string(limits_.max_chunk_frames));
    return;
  }
  if (stream_mode_) {
    // Auto-endpoint path: the detector owns segmentation; a chunk may close
    // zero or more segments, each answered with a STREAM_DECISION.
    try {
      const auto events = detector_->push_interleaved(chunk.interleaved);
      for (const auto& event : events) emit_stream_decision(event);
    } catch (const std::exception& error) {
      fail(ErrorCode::kInternal, std::string("stream scoring failed: ") + error.what());
    }
    return;
  }
  ring_.append(chunk.interleaved);
}

void Session::handle_end_of_utterance(const Frame& frame) {
  if (state_ != State::kStreaming) {
    fail(ErrorCode::kBadRequest, "END_OF_UTTERANCE before HELLO");
    return;
  }
  if (stream_mode_) {
    fail(ErrorCode::kBadRequest,
         "END_OF_UTTERANCE in streaming mode (the server endpoints)");
    return;
  }
  const EndOfUtterance end = parse_end_of_utterance(frame);
  if (ring_.frames() == 0) {
    fail(ErrorCode::kBadRequest, "END_OF_UTTERANCE with no audio streamed");
    return;
  }
  if (ring_.dropped_frames() > 0) {
    obs::log_warn("serve.session.ring_overflow",
                  {{"dropped_frames", ring_.dropped_frames()},
                   {"kept_frames", ring_.frames()}});
  }

  if (score_hook_) {
    // Deferred path: snapshot the utterance and hand it to the engine's
    // batch scheduler; the DECISION is emitted by complete_score().
    PendingUtterance pending;
    pending.capture = ring_.snapshot();
    pending.followup = end.followup;
    pending.session_open = session_open_;
    pending.want_features = !tenant_id_.empty();
    ring_.clear();
    score_pending_ = true;
    score_hook_(std::move(pending));
    return;
  }

  static obs::Histogram& score_seconds =
      obs::Registry::global().histogram("serve.score_seconds");
  DecisionFrame decision;
  try {
    obs::ScopedSpan span("serve.score_utterance");
    obs::Timer timer(&score_seconds);
    const audio::MultiBuffer capture = ring_.snapshot();
    core::FeatureCapture features;
    const bool want_features = !tenant_id_.empty();
    const core::PipelineResult result =
        pipeline_.score_capture(capture, limits_.mode, end.followup, session_open_,
                                workspace_, want_features ? &features : nullptr);
    session_open_ = result.session_open_after;
    decision.decision = static_cast<std::uint8_t>(result.decision);
    decision.live = result.live;
    decision.facing = result.facing;
    decision.via_open_session = result.via_open_session;
    decision.liveness_score = result.liveness_score;
    decision.orientation_score = result.orientation_score;
    apply_policy(decision, result, features);
    decision.elapsed_seconds = timer.stop();
  } catch (const std::exception& error) {
    fail(ErrorCode::kInternal, std::string("scoring failed: ") + error.what());
    return;
  }
  ring_.clear();
  const auto bytes = encode_decision(decision);
  output_.insert(output_.end(), bytes.begin(), bytes.end());
  ++decisions_;
}

void Session::handle_stream_start(const Frame& frame) {
  if (state_ != State::kStreaming) {
    fail(ErrorCode::kBadRequest, "STREAM_START before HELLO");
    return;
  }
  parse_stream_start(frame);
  if (stream_mode_) {
    fail(ErrorCode::kBadRequest, "duplicate STREAM_START");
    return;
  }
  if (ring_.frames() != 0) {
    fail(ErrorCode::kBadRequest, "STREAM_START with a per-utterance capture buffered");
    return;
  }
  stream::StreamingDetectorConfig config = limits_.stream;
  config.mode = limits_.mode;  // one mode governs both scoring paths
  // An AUTH'd stream needs each segment's feature vectors for the
  // speaker-identity match.
  config.capture_features = !tenant_id_.empty();
  detector_ = std::make_unique<stream::StreamingDetector>(pipeline_, channels_,
                                                          sample_rate_, config);
  detector_->set_workspace(workspace_);
  stream_mode_ = true;

  StreamOk ok;
  ok.vad_frame_length = static_cast<std::uint32_t>(detector_->vad().frame_length());
  ok.max_segment_frames = static_cast<std::uint32_t>(
      config.endpoint.max_utterance_frames * detector_->vad().frame_length());
  const auto bytes = encode_stream_ok(ok);
  output_.insert(output_.end(), bytes.begin(), bytes.end());
}

void Session::handle_stream_end(const Frame& frame) {
  if (state_ != State::kStreaming || !stream_mode_) {
    fail(ErrorCode::kBadRequest, "STREAM_END outside streaming mode");
    return;
  }
  parse_stream_end(frame);
  try {
    const auto events = detector_->flush();
    for (const auto& event : events) emit_stream_decision(event);
  } catch (const std::exception& error) {
    fail(ErrorCode::kInternal, std::string("stream scoring failed: ") + error.what());
    return;
  }
  StreamSummary summary;
  summary.frames_streamed = detector_->frames_streamed();
  summary.segments = static_cast<std::uint32_t>(detector_->segments());
  summary.force_closed = static_cast<std::uint32_t>(detector_->force_closed());
  summary.discarded = static_cast<std::uint32_t>(detector_->discarded());
  const auto bytes = encode_stream_summary(summary);
  output_.insert(output_.end(), bytes.begin(), bytes.end());
  // Back to per-utterance mode; the HeadTalk session flag carries over.
  stream_mode_ = false;
  detector_.reset();
}

void Session::emit_stream_decision(const stream::DecisionEvent& event) {
  StreamDecisionFrame decision;
  decision.decision.decision = static_cast<std::uint8_t>(event.result.decision);
  decision.decision.live = event.result.live;
  decision.decision.facing = event.result.facing;
  decision.decision.via_open_session = event.result.via_open_session;
  decision.decision.liveness_score = event.result.liveness_score;
  decision.decision.orientation_score = event.result.orientation_score;
  decision.decision.elapsed_seconds = event.latency_seconds;
  decision.begin_seconds = event.begin_seconds;
  decision.end_seconds = event.end_seconds;
  decision.force_closed = event.force_closed;
  // Carry the pipeline's session flag first; a policy denial then clears
  // it (a mismatched speaker earns no hands-free follow-ups).
  session_open_ = event.result.session_open_after;
  apply_policy(decision.decision, event.result, event.features);
  if (event.truncated_frames > 0) {
    obs::log_warn("serve.session.stream_truncated",
                  {{"truncated_frames", event.truncated_frames},
                   {"begin_seconds", event.begin_seconds}});
  }
  const auto bytes = encode_stream_decision(decision);
  output_.insert(output_.end(), bytes.begin(), bytes.end());
  ++decisions_;
}

void Session::fail(ErrorCode code, const std::string& message) {
  state_ = State::kFailed;
  static obs::Counter& errors = obs::Registry::global().counter("serve.session.errors");
  errors.increment();
  obs::log_warn("serve.session.error",
                {{"code", error_code_name(code)}, {"message", message}});
  const auto bytes = encode_error(code, message);
  output_.insert(output_.end(), bytes.begin(), bytes.end());
}

}  // namespace headtalk::serve
