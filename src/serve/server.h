// Server core of the inference daemon.
//
// One acceptor thread listens on a Unix-domain socket (and, optionally, a
// TCP loopback port) and pushes accepted connections into a *bounded*
// queue; a fixed pool of worker threads pops connections and drives one
// Session each over blocking-with-timeout socket I/O. When the queue is
// full a fresh connection is answered with a BUSY frame and closed
// immediately — overload degrades to fast rejections, never to unbounded
// queueing or hangs. request_stop() (async-signal-safe: an atomic store
// plus one pipe write) triggers a graceful drain: the listeners close, the
// already-accepted queue is served to completion, in-flight utterances get
// their DECISIONs, then the workers exit.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "serve/session.h"

namespace headtalk::serve {

struct ServerConfig {
  /// Unix-domain socket path; an existing socket file is replaced.
  std::filesystem::path socket_path;
  /// Optional TCP listener on 127.0.0.1:<port>; 0 disables it.
  int tcp_port = 0;
  /// Worker threads (0 = util::resolve_jobs auto default).
  unsigned workers = 0;
  /// Accepted connections allowed to wait for a worker; beyond this a new
  /// connection is answered BUSY and closed.
  std::size_t max_pending = 64;
  /// Per-utterance deadline: from the previous response (or accept) to the
  /// DECISION. Expiry sends ERROR deadline-exceeded and closes.
  int request_deadline_ms = 10000;
  SessionLimits session{};
};

/// Point-in-time counters for tests and the daemon's exit summary.
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t busy_rejections = 0;
  std::uint64_t decisions = 0;
  std::uint64_t session_errors = 0;
  std::uint64_t deadline_expirations = 0;
  std::size_t active_connections = 0;
};

/// One live connection as the admin plane's /stats.json reports it.
struct ConnectionInfo {
  std::uint64_t id = 0;        ///< accept-order id, unique per server run
  bool stream_mode = false;    ///< between STREAM_START and STREAM_END
  std::uint64_t decisions = 0;
  double age_seconds = 0.0;    ///< since accept
  double idle_seconds = 0.0;   ///< since the last bytes from the client
};

class Server {
 public:
  /// The pipeline must stay alive for the server's lifetime; workers only
  /// use its const scoring entry point.
  Server(const core::HeadTalkPipeline& pipeline, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listeners and spawns the acceptor + worker threads. Throws
  /// std::runtime_error when a socket cannot be bound.
  void start();

  /// Async-signal-safe stop trigger (callable from a SIGINT/SIGTERM
  /// handler): marks the server stopping and wakes the acceptor.
  void request_stop() noexcept;

  /// Blocks until request_stop() has been called (from any thread or a
  /// signal handler), then drains and joins everything. Idempotent.
  void wait();

  /// Graceful shutdown: stop accepting, serve the queued and in-flight
  /// connections to completion, join all threads. Idempotent; implies
  /// request_stop().
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return started_.load(std::memory_order_acquire) &&
           !stopped_.load(std::memory_order_acquire);
  }
  /// True once a stop/drain has been requested — the admin plane's
  /// /readyz flips to 503 on this, before in-flight utterances finish.
  [[nodiscard]] bool draining() const noexcept {
    return stopping_.load(std::memory_order_acquire);
  }
  [[nodiscard]] ServerStats stats() const;
  /// Snapshot of the live per-connection table (worker threads update
  /// their own rows with relaxed atomics; this never blocks scoring).
  [[nodiscard]] std::vector<ConnectionInfo> connections() const;
  [[nodiscard]] const ServerConfig& config() const noexcept { return config_; }

 private:
  /// Row in the live connection table. The owning worker writes the
  /// atomics lock-free; the table mutex only guards insert/erase and the
  /// admin snapshot.
  struct ConnectionSlot {
    std::uint64_t id = 0;
    std::chrono::steady_clock::time_point accepted_at{};
    std::atomic<bool> stream_mode{false};
    std::atomic<std::uint64_t> decisions{0};
    std::atomic<std::int64_t> last_activity_us{0};  ///< steady-clock µs
  };

  void acceptor_loop();
  void worker_loop();
  void handle_connection(int fd, core::ScoringWorkspace& workspace);
  /// True when the fd was queued; false when the queue was full (caller
  /// sends BUSY).
  bool try_enqueue(int fd);
  [[nodiscard]] int pop_connection();  ///< -1 once stopping and drained

  const core::HeadTalkPipeline& pipeline_;
  ServerConfig config_;

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};

  std::thread acceptor_;
  std::vector<std::thread> workers_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_ready_;
  std::deque<int> pending_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  std::once_flag stop_once_;

  mutable std::mutex conn_mutex_;
  std::map<std::uint64_t, std::shared_ptr<ConnectionSlot>> conn_table_;
  std::atomic<std::uint64_t> next_conn_id_{0};

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> busy_{0};
  std::atomic<std::uint64_t> decisions_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> deadlines_{0};
  std::atomic<std::size_t> active_{0};
};

}  // namespace headtalk::serve
