// Thread-per-connection serving core of the inference daemon.
//
// One acceptor thread listens on a Unix-domain socket (and, optionally, a
// TCP loopback port) and pushes accepted connections into a *bounded*
// queue; a fixed pool of worker threads pops connections and drives one
// Session each over blocking-with-timeout socket I/O. When the queue is
// full a fresh connection is answered with a BUSY frame and closed
// immediately — overload degrades to fast rejections, never to unbounded
// queueing or hangs. request_stop() (async-signal-safe: an atomic store
// plus one pipe write) triggers a graceful drain: the listeners close, the
// already-accepted queue is served to completion, in-flight utterances get
// their DECISIONs, then the workers exit.
//
// This is one of two interchangeable ServerEngine implementations (see
// serve/engine.h); the epoll reactor in serve/eventloop/ is the other.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <mutex>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "serve/conn_table.h"
#include "serve/engine.h"
#include "serve/session.h"

namespace headtalk::serve {

struct ServerConfig {
  /// Unix-domain socket path; an existing socket file is replaced.
  std::filesystem::path socket_path;
  /// Optional TCP listener on 127.0.0.1:<port>; 0 disables it.
  int tcp_port = 0;
  /// Worker threads (0 = util::resolve_jobs auto default).
  unsigned workers = 0;
  /// Accepted connections allowed to wait for a worker; beyond this a new
  /// connection is answered BUSY and closed.
  std::size_t max_pending = 64;
  /// Per-utterance deadline: from the previous response (or accept) to the
  /// DECISION. Expiry sends ERROR deadline-exceeded and closes.
  int request_deadline_ms = 10000;
  /// Bind the TCP listener SO_REUSEPORT (shard processes sharing a port).
  bool reuseport = false;
  SessionLimits session{};
};

class Server final : public ServerEngine {
 public:
  /// The pipeline must stay alive for the server's lifetime; workers only
  /// use its const scoring entry point.
  Server(const core::HeadTalkPipeline& pipeline, ServerConfig config);
  ~Server() override;

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listeners and spawns the acceptor + worker threads. Throws
  /// std::runtime_error when a socket cannot be bound.
  void start() override;

  /// Async-signal-safe stop trigger (callable from a SIGINT/SIGTERM
  /// handler): marks the server stopping and wakes the acceptor.
  void request_stop() noexcept override;

  /// Blocks until request_stop() has been called (from any thread or a
  /// signal handler), then drains and joins everything. Idempotent.
  void wait() override;

  /// Graceful shutdown: stop accepting, serve the queued and in-flight
  /// connections to completion, join all threads. Idempotent; implies
  /// request_stop().
  void stop() override;

  [[nodiscard]] bool running() const noexcept override {
    return started_.load(std::memory_order_acquire) &&
           !stopped_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool draining() const noexcept override {
    return stopping_.load(std::memory_order_acquire);
  }
  [[nodiscard]] ServerStats stats() const override;
  [[nodiscard]] std::vector<ConnectionInfo> connections() const override;
  [[nodiscard]] const ServerConfig& config() const noexcept { return config_; }

  /// Queues an externally-accepted fd (the shard front's SCM_RIGHTS path)
  /// exactly like a locally-accepted connection: BUSY when the pending
  /// queue is full, shutting-down when draining. The fd is made blocking
  /// first — the worker I/O model expects it.
  void adopt_connection(int fd) override;

 private:
  void acceptor_loop();
  void worker_loop();
  void handle_connection(int fd, core::ScoringWorkspace& workspace);
  /// True when the fd was queued; false when the queue was full (caller
  /// sends BUSY).
  bool try_enqueue(int fd);
  [[nodiscard]] int pop_connection();  ///< -1 once stopping and drained

  const core::HeadTalkPipeline& pipeline_;
  ServerConfig config_;

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};

  std::thread acceptor_;
  std::vector<std::thread> workers_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_ready_;
  std::deque<int> pending_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  std::once_flag stop_once_;

  ConnectionTable conn_table_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> busy_{0};
  std::atomic<std::uint64_t> decisions_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> deadlines_{0};
  std::atomic<std::size_t> active_{0};
};

}  // namespace headtalk::serve
