#include "serve/eventloop/poller.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include <poll.h>
#include <unistd.h>

#if defined(__linux__)
#define HEADTALK_HAVE_EPOLL 1
#include <sys/epoll.h>
#else
#define HEADTALK_HAVE_EPOLL 0
#endif

namespace headtalk::serve {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

#if HEADTALK_HAVE_EPOLL

class EpollPoller final : public Poller {
 public:
  EpollPoller() {
    epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epfd_ < 0) throw_errno("epoll_create1");
  }

  ~EpollPoller() override {
    if (epfd_ >= 0) ::close(epfd_);
  }

  void add(int fd, std::uint32_t interest, void* data) override {
    epoll_event ev = make_event(interest, data);
    if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) throw_errno("epoll_ctl(ADD)");
  }

  void modify(int fd, std::uint32_t interest, void* data) override {
    epoll_event ev = make_event(interest, data);
    if (::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) != 0) throw_errno("epoll_ctl(MOD)");
  }

  void remove(int fd) override {
    // Ignore errors: the fd may already be closed or never registered
    // (remove() is called from teardown paths that must not throw).
    epoll_event ev{};
    (void)::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, &ev);
  }

  int wait(std::span<PollerEvent> out, int timeout_ms) override {
    if (out.empty()) return 0;
    scratch_.resize(out.size());
    int n = ::epoll_wait(epfd_, scratch_.data(), static_cast<int>(scratch_.size()),
                         timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return 0;
      throw_errno("epoll_wait");
    }
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = scratch_[static_cast<std::size_t>(i)];
      PollerEvent& event = out[static_cast<std::size_t>(i)];
      event.data = ev.data.ptr;
      event.readable = (ev.events & EPOLLIN) != 0;
      event.writable = (ev.events & EPOLLOUT) != 0;
      event.error = (ev.events & (EPOLLERR | EPOLLHUP)) != 0;
    }
    return n;
  }

  PollerBackend backend() const noexcept override { return PollerBackend::kEpoll; }

 private:
  static epoll_event make_event(std::uint32_t interest, void* data) {
    epoll_event ev{};
    if (interest & kRead) ev.events |= EPOLLIN;
    if (interest & kWrite) ev.events |= EPOLLOUT;
    ev.data.ptr = data;
    return ev;
  }

  int epfd_ = -1;
  std::vector<epoll_event> scratch_;
};

#endif  // HEADTALK_HAVE_EPOLL

class PollPoller final : public Poller {
 public:
  void add(int fd, std::uint32_t interest, void* data) override {
    if (entries_.contains(fd)) throw std::runtime_error("poll add: fd already watched");
    entries_[fd] = Entry{interest, data};
    dirty_ = true;
  }

  void modify(int fd, std::uint32_t interest, void* data) override {
    auto it = entries_.find(fd);
    if (it == entries_.end()) throw std::runtime_error("poll modify: fd not watched");
    it->second = Entry{interest, data};
    dirty_ = true;
  }

  void remove(int fd) override {
    entries_.erase(fd);
    dirty_ = true;
  }

  int wait(std::span<PollerEvent> out, int timeout_ms) override {
    if (out.empty()) return 0;
    if (dirty_) rebuild();
    int n = ::poll(pollfds_.data(), pollfds_.size(), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return 0;
      throw_errno("poll");
    }
    int emitted = 0;
    for (const pollfd& pfd : pollfds_) {
      if (pfd.revents == 0) continue;
      if (emitted == static_cast<int>(out.size())) break;
      auto it = entries_.find(pfd.fd);
      if (it == entries_.end()) continue;  // removed since the last rebuild
      PollerEvent& event = out[static_cast<std::size_t>(emitted)];
      event.data = it->second.data;
      event.readable = (pfd.revents & POLLIN) != 0;
      event.writable = (pfd.revents & POLLOUT) != 0;
      event.error = (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      ++emitted;
    }
    return emitted;
  }

  PollerBackend backend() const noexcept override { return PollerBackend::kPoll; }

 private:
  struct Entry {
    std::uint32_t interest = 0;
    void* data = nullptr;
  };

  void rebuild() {
    pollfds_.clear();
    pollfds_.reserve(entries_.size());
    for (const auto& [fd, entry] : entries_) {
      pollfd pfd{};
      pfd.fd = fd;
      if (entry.interest & kRead) pfd.events |= POLLIN;
      if (entry.interest & kWrite) pfd.events |= POLLOUT;
      pollfds_.push_back(pfd);
    }
    dirty_ = false;
  }

  std::unordered_map<int, Entry> entries_;
  std::vector<pollfd> pollfds_;
  bool dirty_ = true;
};

}  // namespace

PollerBackend parse_poller_backend(std::string_view text) {
  if (text == "auto") return PollerBackend::kAuto;
  if (text == "epoll") return PollerBackend::kEpoll;
  if (text == "poll") return PollerBackend::kPoll;
  throw std::runtime_error("unknown poller backend: " + std::string(text) +
                           " (expected auto|epoll|poll)");
}

std::string_view poller_backend_name(PollerBackend backend) {
  switch (backend) {
    case PollerBackend::kAuto: return "auto";
    case PollerBackend::kEpoll: return "epoll";
    case PollerBackend::kPoll: return "poll";
  }
  return "?";
}

std::unique_ptr<Poller> Poller::create(PollerBackend backend) {
#if HEADTALK_HAVE_EPOLL
  if (backend == PollerBackend::kAuto || backend == PollerBackend::kEpoll) {
    return std::make_unique<EpollPoller>();
  }
#else
  if (backend == PollerBackend::kEpoll) {
    throw std::runtime_error("epoll backend not available on this platform");
  }
#endif
  return std::make_unique<PollPoller>();
}

}  // namespace headtalk::serve
