// Shard plumbing: one serve port, N single-threaded-ish processes.
//
// The obs Registry, the tenant store and the scoring pipeline are all
// process-global, so scaling past one process's loops means real child
// processes — each with its own engine, admin plane and metrics. Two
// transports get client connections into the children:
//
//   TCP      — every shard binds the same 127.0.0.1 port with SO_REUSEPORT
//              (make_tcp_listener(port, /*reuseport=*/true)); the kernel
//              spreads accepts across the shard listeners. No parent-side
//              data path at all.
//   AF_UNIX  — unix sockets cannot SO_REUSEPORT, so the parent keeps the
//              public socket path and runs a ShardFront: a tiny accept
//              loop that deals each accepted fd round-robin to the shards
//              over SOCK_SEQPACKET socketpairs with SCM_RIGHTS. A
//              ShardFdReceiver thread in each child picks fds off its
//              channel and hands them to ServerEngine::adopt_connection().
//
// Forking happens before any threads exist (the daemon forks shards, THEN
// each child builds its pipeline/engine/admin) — the only fork-safe order.
// Per-shard metrics merge back together offline: each shard's admin plane
// serves /metrics.json and `headtalk_client --admin-merge` folds the
// snapshots with obs::merge.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <thread>
#include <vector>

#include "serve/engine.h"

namespace headtalk::serve {

/// SOCK_SEQPACKET socketpair for parent→child fd passing. Both ends are
/// CLOEXEC; the caller gives child_end to the forked shard (fds survive
/// fork regardless of CLOEXEC) and closes the end it does not keep.
struct ShardChannel {
  int parent_end = -1;
  int child_end = -1;
};
[[nodiscard]] ShardChannel make_shard_channel();

/// Sends `fd` over the channel as SCM_RIGHTS ancillary data (one message
/// per fd — SEQPACKET keeps the boundaries). False when the peer is gone.
/// The caller still owns (and should close) its copy of `fd`.
bool send_fd(int channel, int fd) noexcept;

/// Receives one fd; -1 on EOF (peer closed) or a hard error.
[[nodiscard]] int recv_fd(int channel) noexcept;

/// Parent-side AF_UNIX front: accepts on the public socket path and deals
/// each connection round-robin across the shard channels. A shard whose
/// channel died is skipped; if every shard is gone the connection is
/// closed. Owns the channel fds it is given.
class ShardFront {
 public:
  ShardFront(std::filesystem::path socket_path, std::vector<int> channels);
  ~ShardFront();

  ShardFront(const ShardFront&) = delete;
  ShardFront& operator=(const ShardFront&) = delete;

  /// Binds the public socket and spawns the accept thread. Throws
  /// std::runtime_error on bind failure.
  void start();
  /// Closes the listener and the shard channels (children see EOF), joins.
  /// Idempotent.
  void stop();

  [[nodiscard]] std::uint64_t forwarded() const noexcept {
    return forwarded_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();

  std::filesystem::path socket_path_;
  std::vector<int> channels_;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::thread thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> forwarded_{0};
  std::size_t next_ = 0;
};

/// Child-side receiver: blocks on the channel, adopting every arriving fd
/// into the engine. Exits on channel EOF (the parent front stopped). The
/// engine must outlive the receiver.
class ShardFdReceiver {
 public:
  ShardFdReceiver(int channel, ServerEngine& engine);
  ~ShardFdReceiver();

  ShardFdReceiver(const ShardFdReceiver&) = delete;
  ShardFdReceiver& operator=(const ShardFdReceiver&) = delete;

  void start();
  /// Shuts the channel down (wakes the blocking recvmsg) and joins.
  /// Idempotent.
  void stop();

  [[nodiscard]] std::uint64_t adopted() const noexcept {
    return adopted_.load(std::memory_order_relaxed);
  }

 private:
  void receive_loop();

  int channel_ = -1;
  ServerEngine& engine_;
  std::thread thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> adopted_{0};
};

}  // namespace headtalk::serve
