#include "serve/eventloop/batch_scheduler.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "core/scoring_workspace.h"
#include "obs/metrics.h"

namespace headtalk::serve {

namespace {

using Clock = std::chrono::steady_clock;

obs::Histogram& occupancy_histogram() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "serve.batch.occupancy", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
  return h;
}

obs::Histogram& batch_score_histogram() {
  static obs::Histogram& h =
      obs::Registry::global().histogram("serve.batch.score_seconds");
  return h;
}

}  // namespace

BatchScheduler::BatchScheduler(const core::HeadTalkPipeline& pipeline,
                               BatchSchedulerConfig config)
    : pipeline_(pipeline), config_(config) {
  config_.threads = std::max<std::size_t>(1, config_.threads);
  config_.batch_max = std::max<std::size_t>(1, config_.batch_max);
  threads_.reserve(config_.threads);
  for (std::size_t i = 0; i < config_.threads; ++i) {
    threads_.emplace_back([this] { worker(); });
  }
}

BatchScheduler::~BatchScheduler() { stop(); }

bool BatchScheduler::submit(Job&& job) {
  job.enqueued = Clock::now();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return false;
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
  return true;
}

void BatchScheduler::begin_drain() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
  }
  cv_.notify_all();
}

void BatchScheduler::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      // Already stopping; fall through to join below (idempotent).
    }
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
}

std::uint64_t BatchScheduler::batches_scored() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return batches_;
}

std::uint64_t BatchScheduler::utterances_scored() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return scored_;
}

void BatchScheduler::worker() {
  const auto window = std::chrono::microseconds(config_.window_us);
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    // Gather: wait for the batch to fill or the window (measured from the
    // first job this worker saw) to lapse. A drain or stop closes the
    // batch at whatever occupancy it reached — timely answers beat
    // batching efficiency once the server is going away.
    const auto deadline = Clock::now() + window;
    while (!stopping_ && !draining_ && queue_.size() < config_.batch_max) {
      if (cv_.wait_until(lock, deadline, [this] {
            return stopping_ || draining_ || queue_.size() >= config_.batch_max;
          })) {
        break;
      }
      break;  // window lapsed
    }
    // A sibling worker may have drained the queue while this one gathered
    // (both are notified for the same submission); go back to waiting
    // rather than scoring an empty batch.
    if (queue_.empty()) continue;
    std::vector<Job> jobs;
    const std::size_t take = std::min(queue_.size(), config_.batch_max);
    jobs.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      jobs.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    batches_ += 1;
    scored_ += jobs.size();
    lock.unlock();
    run_batch(std::move(jobs));
    lock.lock();
  }
}

void BatchScheduler::run_batch(std::vector<Job>&& jobs) {
  // One warm workspace per scoring thread, reused across every batch it
  // runs (thread_local: worker threads die only at scheduler stop).
  thread_local core::ScoringWorkspace workspace;

  if (jobs.empty()) return;
  occupancy_histogram().observe(static_cast<double>(jobs.size()));

  std::vector<core::HeadTalkPipeline::BatchRequest> requests;
  requests.reserve(jobs.size());
  for (const Job& job : jobs) {
    core::HeadTalkPipeline::BatchRequest request;
    request.capture = &job.utterance.capture;
    request.followup = job.utterance.followup;
    request.session_active = job.utterance.session_open;
    request.want_features = job.utterance.want_features;
    requests.push_back(request);
  }

  // All jobs in one batch share the daemon mode (the engine submits with
  // its configured mode), but score per-mode groups defensively anyway:
  // score_batch takes one mode for the whole span.
  const auto start = Clock::now();
  std::vector<core::HeadTalkPipeline::BatchOutcome> outcomes;
  std::string batch_error;
  try {
    outcomes = pipeline_.score_batch(requests, jobs.front().mode, &workspace);
  } catch (const std::exception& ex) {
    batch_error = ex.what();
  }
  const auto scored_at = Clock::now();
  batch_score_histogram().observe(
      std::chrono::duration<double>(scored_at - start).count());

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    Outcome outcome;
    outcome.batch_size = jobs.size();
    outcome.elapsed_seconds =
        std::chrono::duration<double>(scored_at - jobs[i].enqueued).count();
    if (batch_error.empty()) {
      outcome.ok = true;
      outcome.result = outcomes[i].result;
      outcome.features = std::move(outcomes[i].features);
    } else {
      // The whole batch failed; retry this job alone so one poisoned
      // capture cannot take its batch-mates down with it.
      try {
        core::HeadTalkPipeline::BatchRequest solo = requests[i];
        auto redo = pipeline_.score_batch({&solo, 1}, jobs[i].mode, &workspace);
        outcome.ok = true;
        outcome.result = redo.front().result;
        outcome.features = std::move(redo.front().features);
      } catch (const std::exception& ex) {
        outcome.ok = false;
        outcome.error = ex.what();
      }
    }
    if (jobs[i].done) jobs[i].done(std::move(outcome));
  }
}

}  // namespace headtalk::serve
