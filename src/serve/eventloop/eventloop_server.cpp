#include "serve/eventloop/eventloop_server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <functional>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "core/scoring_workspace.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "serve/listener.h"

namespace headtalk::serve {
namespace {

using Clock = std::chrono::steady_clock;

// Same instrument names as the threaded engine — the Registry hands back
// one instrument per name, so dashboards see "the serving core" whichever
// engine is running.
obs::Counter& metric_connections() {
  static obs::Counter& c = obs::Registry::global().counter("serve.connections");
  return c;
}
obs::Counter& metric_busy() {
  static obs::Counter& c = obs::Registry::global().counter("serve.busy");
  return c;
}
obs::Gauge& metric_active() {
  static obs::Gauge& g = obs::Registry::global().gauge("serve.active_connections");
  return g;
}
obs::Histogram& metric_request_seconds() {
  static obs::Histogram& h = obs::Registry::global().histogram("serve.request_seconds");
  return h;
}
// Reactor-specific: wall time one loop iteration spends dispatching ready
// events + posted tasks (the "loop latency" a parked connection waits).
obs::Histogram& metric_loop_dispatch_seconds() {
  static obs::Histogram& h =
      obs::Registry::global().histogram("serve.loop.dispatch_seconds");
  return h;
}

std::int64_t steady_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now().time_since_epoch())
      .count();
}

}  // namespace

// ---------------------------------------------------------------------------
// Loop: one reactor thread.

class EventLoopServer::Loop {
 public:
  Loop(EventLoopServer& server, std::size_t index)
      : server_(server), index_(index) {
    if (::pipe2(wake_pipe_, O_CLOEXEC | O_NONBLOCK) != 0) {
      throw std::runtime_error("serve: pipe2() failed for loop wakeup");
    }
    poller_ = Poller::create(server_.config_.poller);
  }

  ~Loop() {
    close_quietly(wake_pipe_[0]);
    close_quietly(wake_pipe_[1]);
  }

  void start() {
    thread_ = std::thread([this] { run(); });
  }

  void join() {
    if (thread_.joinable()) thread_.join();
  }

  /// Async-signal-safe: a full pipe is simply a wakeup already pending.
  void wake() noexcept {
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], "x", 1);
  }

  /// Enqueues a task for the loop thread; false once the loop has exited
  /// (the caller must dispose of any resources the task owned).
  bool post(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(inbox_mutex_);
      if (!accepting_) return false;
      inbox_.push_back(std::move(task));
    }
    wake();
    return true;
  }

  /// Construct-and-register for a dispatched fd; runs on the loop thread.
  void make_conn(int fd);

  /// The resolved poller backend (kAuto settled to a concrete one).
  [[nodiscard]] PollerBackend backend() const noexcept { return poller_->backend(); }

 private:
  struct Watch {
    enum class Kind { kWakeup, kListenerUnix, kListenerTcp, kConn };
    Kind kind = Kind::kConn;
    void* conn = nullptr;  ///< the owning Conn for kConn
  };

  struct Conn {
    Conn(const core::HeadTalkPipeline& pipeline, const SessionLimits& limits)
        : session(pipeline, limits) {}

    int fd = -1;
    Watch watch{Watch::Kind::kConn, nullptr};
    Session session;
    std::shared_ptr<ConnectionTable::Slot> slot;
    std::vector<std::uint8_t> out;  ///< unsent response bytes
    std::size_t out_off = 0;
    Clock::time_point request_start{};
    Clock::time_point deadline{};
    std::uint32_t interest = 0;  ///< currently registered poller mask
    bool closing = false;        ///< close once `out` drains
    /// The score hook could not submit (scheduler already draining); the
    /// loop fails the session once the current on_bytes call unwinds.
    bool submit_failed = false;
  };

  void run();
  void dispatch(const PollerEvent& event);
  void accept_ready(int listener_fd);
  void on_conn_event(Conn* conn, const PollerEvent& event);
  void on_readable(Conn* conn);
  void on_score_done(std::uint64_t conn_id, BatchScheduler::Outcome&& outcome);
  /// Common post-Session bookkeeping: output, counters, deadline resets,
  /// drain close, interest update, flush. May destroy `conn`.
  void after_session_io(Conn* conn, std::size_t decisions_before, bool alive);
  /// Nonblocking send of the buffered output; toggles write interest. May
  /// destroy `conn` (dead peer, or `closing` with the buffer drained).
  void flush(Conn* conn);
  void update_interest(Conn* conn);
  void expire_deadlines();
  void start_drain();
  void run_tasks();
  void destroy(Conn* conn);
  [[nodiscard]] int poll_timeout_ms() const;

  EventLoopServer& server_;
  const std::size_t index_;
  std::unique_ptr<Poller> poller_;
  int wake_pipe_[2] = {-1, -1};
  std::thread thread_;

  std::mutex inbox_mutex_;
  std::vector<std::function<void()>> inbox_;
  bool accepting_ = true;  ///< under inbox_mutex_

  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  core::ScoringWorkspace workspace_;  ///< streaming-mode inline scoring
  bool drain_started_ = false;

  Watch wake_watch_{Watch::Kind::kWakeup, nullptr};
  Watch unix_watch_{Watch::Kind::kListenerUnix, nullptr};
  Watch tcp_watch_{Watch::Kind::kListenerTcp, nullptr};
};

void EventLoopServer::Loop::run() {
  poller_->add(wake_pipe_[0], Poller::kRead, &wake_watch_);
  if (index_ == 0) {
    if (server_.unix_fd_ >= 0) {
      poller_->add(server_.unix_fd_, Poller::kRead, &unix_watch_);
    }
    if (server_.tcp_fd_ >= 0) {
      poller_->add(server_.tcp_fd_, Poller::kRead, &tcp_watch_);
    }
  }

  std::vector<PollerEvent> events(256);
  while (true) {
    if (server_.stopping_.load(std::memory_order_acquire)) {
      start_drain();
      if (conns_.empty()) break;
    }
    const int n = poller_->wait(events, poll_timeout_ms());
    const auto dispatch_start = Clock::now();
    for (int i = 0; i < n; ++i) dispatch(events[static_cast<std::size_t>(i)]);
    run_tasks();
    expire_deadlines();
    if (n > 0) {
      metric_loop_dispatch_seconds().observe(
          std::chrono::duration<double>(Clock::now() - dispatch_start).count());
    }
  }

  // Refuse new tasks, then run what already arrived: adopt tasks observe
  // the stop flag and reject their fd, completion tasks find no conn.
  {
    std::lock_guard<std::mutex> lock(inbox_mutex_);
    accepting_ = false;
  }
  run_tasks();
}

int EventLoopServer::Loop::poll_timeout_ms() const {
  if (conns_.empty()) return -1;  // wakeup pipe / listeners interrupt us
  auto nearest = Clock::time_point::max();
  for (const auto& [id, conn] : conns_) {
    if (!conn->closing) nearest = std::min(nearest, conn->deadline);
  }
  if (nearest == Clock::time_point::max()) return 1000;
  const auto now = Clock::now();
  if (nearest <= now) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(nearest - now).count() + 1;
  return static_cast<int>(std::clamp<long long>(ms, 1, 1000));
}

void EventLoopServer::Loop::dispatch(const PollerEvent& event) {
  auto* watch = static_cast<Watch*>(event.data);
  switch (watch->kind) {
    case Watch::Kind::kWakeup: {
      std::uint8_t buf[256];
      while (::read(wake_pipe_[0], buf, sizeof buf) > 0) {
      }
      break;
    }
    case Watch::Kind::kListenerUnix:
      accept_ready(server_.unix_fd_);
      break;
    case Watch::Kind::kListenerTcp:
      accept_ready(server_.tcp_fd_);
      break;
    case Watch::Kind::kConn:
      on_conn_event(static_cast<Conn*>(watch->conn), event);
      break;
  }
}

void EventLoopServer::Loop::accept_ready(int listener_fd) {
  if (listener_fd < 0) return;
  while (true) {
    const int client =
        ::accept4(listener_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (client < 0) return;  // EAGAIN / transient
    server_.dispatch_fd(client);
  }
}

void EventLoopServer::Loop::make_conn(int fd) {
  if (server_.stopping_.load(std::memory_order_acquire)) {
    // The drain raced the dispatch; this fd was never served.
    send_and_close(fd, encode_error(ErrorCode::kShuttingDown, "server is draining"));
    server_.active_.fetch_sub(1, std::memory_order_relaxed);
    metric_active().set(
        static_cast<double>(server_.active_.load(std::memory_order_relaxed)));
    return;
  }
  auto conn =
      std::make_unique<Conn>(server_.pipeline_, server_.config_.base.session);
  Conn* raw = conn.get();
  raw->fd = fd;
  raw->watch.conn = raw;
  raw->session.set_workspace(&workspace_);
  raw->slot = server_.conn_table_.insert();
  raw->slot->accepted_at = Clock::now();
  raw->slot->last_activity_us.store(steady_us(), std::memory_order_relaxed);
  raw->request_start = Clock::now();
  raw->deadline = raw->request_start +
                  std::chrono::milliseconds(server_.config_.base.request_deadline_ms);

  // Defer END_OF_UTTERANCE scoring into the batch scheduler. The hook runs
  // on this loop thread (inside session.on_bytes / complete_score); the
  // completion hops back here via post() so Session stays loop-confined.
  const std::uint64_t conn_id = raw->slot->id;
  Loop* loop = this;
  raw->session.set_score_hook([loop, raw, conn_id](PendingUtterance&& utterance) {
    BatchScheduler::Job job;
    job.utterance = std::move(utterance);
    job.mode = loop->server_.config_.base.session.mode;
    job.done = [loop, conn_id](BatchScheduler::Outcome&& outcome) {
      loop->server_.inflight_.fetch_sub(1, std::memory_order_relaxed);
      auto boxed =
          std::make_shared<BatchScheduler::Outcome>(std::move(outcome));
      // post() failing means the loop exited; the conn is gone with it.
      (void)loop->post([loop, conn_id, boxed] {
        loop->on_score_done(conn_id, std::move(*boxed));
      });
    };
    // Count before submitting: the scoring thread may run `done` (and
    // decrement) before submit() even returns here.
    loop->server_.inflight_.fetch_add(1, std::memory_order_relaxed);
    if (!loop->server_.scheduler_->submit(std::move(job))) {
      loop->server_.inflight_.fetch_sub(1, std::memory_order_relaxed);
      raw->submit_failed = true;
    }
  });

  conns_.emplace(conn_id, std::move(conn));
  poller_->add(fd, Poller::kRead, &raw->watch);
  raw->interest = Poller::kRead;
}

void EventLoopServer::Loop::on_conn_event(Conn* conn, const PollerEvent& event) {
  if (event.writable && !conn->out.empty()) {
    const std::uint64_t id = conn->slot->id;
    flush(conn);
    // flush() may have destroyed the conn (erasing it from conns_).
    if (conns_.find(id) == conns_.end()) return;
  }
  if (event.readable) {
    on_readable(conn);
    return;  // on_readable handles destruction itself
  }
  if (event.error) destroy(conn);  // peer reset with nothing readable
}

void EventLoopServer::Loop::on_readable(Conn* conn) {
  std::uint8_t buffer[1 << 16];
  const ssize_t n = ::recv(conn->fd, buffer, sizeof buffer, 0);
  if (n == 0) {  // client closed
    destroy(conn);
    return;
  }
  if (n < 0) {
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) return;
    destroy(conn);
    return;
  }
  conn->slot->last_activity_us.store(steady_us(), std::memory_order_relaxed);
  const std::size_t decisions_before = conn->session.decisions_sent();
  const bool alive =
      conn->session.on_bytes(buffer, static_cast<std::size_t>(n));
  after_session_io(conn, decisions_before, alive);
}

void EventLoopServer::Loop::on_score_done(std::uint64_t conn_id,
                                          BatchScheduler::Outcome&& outcome) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;  // deadline/drain closed it; verdict is late
  Conn* conn = it->second.get();
  const std::size_t decisions_before = conn->session.decisions_sent();
  bool alive = true;
  if (outcome.ok) {
    conn->session.complete_score(outcome.result, outcome.features,
                                 outcome.elapsed_seconds);
    alive = !conn->session.finished();
  } else {
    conn->session.fail_score(outcome.error);
    alive = false;
  }
  after_session_io(conn, decisions_before, alive);
}

void EventLoopServer::Loop::after_session_io(Conn* conn,
                                             std::size_t decisions_before,
                                             bool alive) {
  if (conn->submit_failed) {
    conn->submit_failed = false;
    conn->session.fail_score("server is draining");
    alive = false;
  }
  const auto output = conn->session.take_output();
  if (!output.empty()) {
    conn->out.insert(conn->out.end(), output.begin(), output.end());
  }
  conn->slot->stream_mode.store(conn->session.stream_mode(),
                                std::memory_order_relaxed);
  conn->slot->decisions.store(conn->session.decisions_sent(),
                              std::memory_order_relaxed);

  const auto deadline_budget =
      std::chrono::milliseconds(server_.config_.base.request_deadline_ms);
  if (conn->session.stream_mode()) {
    // Auto-endpoint streaming: received audio proves the client is alive;
    // the deadline degrades to a max inter-chunk silence (threaded-engine
    // semantics).
    conn->request_start = Clock::now();
    conn->deadline = conn->request_start + deadline_budget;
  }

  const std::size_t new_decisions =
      conn->session.decisions_sent() - decisions_before;
  if (new_decisions > 0) {
    server_.decisions_.fetch_add(new_decisions, std::memory_order_relaxed);
    metric_request_seconds().observe(
        std::chrono::duration<double>(Clock::now() - conn->request_start).count());
    conn->request_start = Clock::now();
    conn->deadline = conn->request_start + deadline_budget;
    // During a drain, answer what is in flight — including an utterance the
    // client had already pipelined behind this one (score_pending again) —
    // but do not wait for new requests.
    if (server_.stopping_.load(std::memory_order_acquire) &&
        !conn->session.score_pending()) {
      conn->closing = true;
    }
  }
  if (!alive) {
    server_.errors_.fetch_add(1, std::memory_order_relaxed);
    conn->closing = true;
  }
  update_interest(conn);
  flush(conn);  // may destroy conn
}

void EventLoopServer::Loop::flush(Conn* conn) {
  while (conn->out_off < conn->out.size()) {
    const ssize_t n = ::send(conn->fd, conn->out.data() + conn->out_off,
                             conn->out.size() - conn->out_off,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      conn->out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      update_interest(conn);  // park the rest behind write readiness
      return;
    }
    destroy(conn);  // dead peer
    return;
  }
  conn->out.clear();
  conn->out_off = 0;
  if (conn->closing) {
    destroy(conn);
    return;
  }
  update_interest(conn);
}

void EventLoopServer::Loop::update_interest(Conn* conn) {
  std::uint32_t want = 0;
  // Reading pauses while a score is out (responses stay ordered, buffered
  // input bounded) and once the conn is closing.
  if (!conn->closing && !conn->session.score_pending()) want |= Poller::kRead;
  if (conn->out_off < conn->out.size()) want |= Poller::kWrite;
  if (want != conn->interest) {
    poller_->modify(conn->fd, want, &conn->watch);
    conn->interest = want;
  }
}

void EventLoopServer::Loop::expire_deadlines() {
  const auto now = Clock::now();
  std::vector<Conn*> expired;
  for (const auto& [id, conn] : conns_) {
    if (!conn->closing && now >= conn->deadline) expired.push_back(conn.get());
  }
  for (Conn* conn : expired) {
    // Enforced even while the utterance is parked in the batch queue: the
    // conn closes now and the late verdict is dropped on arrival.
    server_.deadlines_.fetch_add(1, std::memory_order_relaxed);
    const auto frame = encode_error(ErrorCode::kDeadlineExceeded,
                                    "no complete request within the deadline");
    conn->out.insert(conn->out.end(), frame.begin(), frame.end());
    conn->closing = true;
    update_interest(conn);
    flush(conn);  // may destroy conn
  }
}

void EventLoopServer::Loop::start_drain() {
  if (drain_started_) return;
  drain_started_ = true;
  // Close the gather windows: utterances already parked in the batch queue
  // score now, so the drain is bounded by scoring time, not window_us.
  // (Called from the loop thread — request_stop() itself must stay
  // async-signal-safe and cannot touch the scheduler's mutex.)
  server_.scheduler_->begin_drain();
  if (index_ == 0) {
    if (server_.unix_fd_ >= 0) {
      poller_->remove(server_.unix_fd_);
      close_quietly(server_.unix_fd_);
      server_.unix_fd_ = -1;
    }
    if (server_.tcp_fd_ >= 0) {
      poller_->remove(server_.tcp_fd_);
      close_quietly(server_.tcp_fd_);
      server_.tcp_fd_ = -1;
    }
  }
  // Idle connections are told and closed now; in-flight ones are owed
  // their DECISIONs first (after_session_io closes them as verdicts land,
  // bounded by their deadlines).
  std::vector<Conn*> idle;
  for (const auto& [id, conn] : conns_) {
    if (!conn->closing && conn->session.idle()) idle.push_back(conn.get());
  }
  const auto frame = encode_error(ErrorCode::kShuttingDown, "server is draining");
  for (Conn* conn : idle) {
    conn->out.insert(conn->out.end(), frame.begin(), frame.end());
    conn->closing = true;
    update_interest(conn);
    flush(conn);  // may destroy conn
  }
}

void EventLoopServer::Loop::run_tasks() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(inbox_mutex_);
    tasks.swap(inbox_);
  }
  for (auto& task : tasks) task();
}

void EventLoopServer::Loop::destroy(Conn* conn) {
  poller_->remove(conn->fd);
  close_quietly(conn->fd);
  server_.conn_table_.erase(conn->slot->id);
  server_.active_.fetch_sub(1, std::memory_order_relaxed);
  metric_active().set(
      static_cast<double>(server_.active_.load(std::memory_order_relaxed)));
  conns_.erase(conn->slot->id);  // frees conn
}

// ---------------------------------------------------------------------------
// EventLoopServer

EventLoopServer::EventLoopServer(const core::HeadTalkPipeline& pipeline,
                                 EventLoopConfig config)
    : pipeline_(pipeline), config_(std::move(config)) {
  config_.loops = std::max<std::size_t>(1, config_.loops);
}

EventLoopServer::~EventLoopServer() {
  if (started_.load(std::memory_order_acquire)) stop();
}

void EventLoopServer::start() {
  if (started_.exchange(true, std::memory_order_acq_rel)) {
    throw std::runtime_error("serve: start() called twice");
  }
  if (::pipe2(stop_pipe_, O_CLOEXEC | O_NONBLOCK) != 0) {
    throw std::runtime_error("serve: pipe2() failed");
  }
  if (!config_.base.socket_path.empty()) {
    unix_fd_ = make_unix_listener(config_.base.socket_path);
    (void)set_nonblocking(unix_fd_);  // accept_ready() loops until EAGAIN
  }
  if (config_.base.tcp_port > 0) {
    tcp_fd_ = make_tcp_listener(config_.base.tcp_port, config_.reuseport);
    (void)set_nonblocking(tcp_fd_);
  }

  BatchSchedulerConfig batch;
  batch.threads = std::max<std::size_t>(1, config_.scoring_threads);
  batch.batch_max = std::max<std::size_t>(1, config_.batch_max);
  batch.window_us = config_.batch_window_us;
  scheduler_ = std::make_unique<BatchScheduler>(pipeline_, batch);

  loops_.reserve(config_.loops);
  for (std::size_t i = 0; i < config_.loops; ++i) {
    loops_.push_back(std::make_unique<Loop>(*this, i));
  }
  for (auto& loop : loops_) loop->start();

  obs::log_info(
      "serve.eventloop.started",
      {{"socket", config_.base.socket_path.string()},
       {"tcp_port", config_.base.tcp_port},
       {"loops", static_cast<std::uint64_t>(config_.loops)},
       {"scoring_threads", static_cast<std::uint64_t>(config_.scoring_threads)},
       {"batch_max", static_cast<std::uint64_t>(config_.batch_max)},
       {"batch_window_us", static_cast<std::uint64_t>(config_.batch_window_us)},
       {"max_connections", static_cast<std::uint64_t>(config_.max_connections)},
       {"poller", std::string(poller_backend_name(loops_.front()->backend()))}});
}

void EventLoopServer::request_stop() noexcept {
  stopping_.store(true, std::memory_order_release);
  if (stop_pipe_[1] >= 0) {
    [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], "x", 1);
  }
  for (auto& loop : loops_) loop->wake();
}

void EventLoopServer::wait() {
  if (!started_.load(std::memory_order_acquire)) return;
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{stop_pipe_[0], POLLIN, 0};
    (void)::poll(&pfd, 1, 1000);
  }
  stop();
}

void EventLoopServer::stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  std::call_once(stop_once_, [this] {
    request_stop();
    for (auto& loop : loops_) loop->join();
    // All loops have exited (every conn closed / drained), so nothing can
    // submit any more: drain the scheduler's residue and join it.
    if (scheduler_) scheduler_->stop();
    close_quietly(stop_pipe_[0]);
    close_quietly(stop_pipe_[1]);
    stop_pipe_[0] = stop_pipe_[1] = -1;
    close_quietly(unix_fd_);
    close_quietly(tcp_fd_);
    unix_fd_ = tcp_fd_ = -1;
    if (!config_.base.socket_path.empty()) {
      std::error_code ec;
      std::filesystem::remove(config_.base.socket_path, ec);
    }
    stopped_.store(true, std::memory_order_release);
    obs::log_info("serve.eventloop.stopped",
                  {{"connections", accepted_.load()},
                   {"decisions", decisions_.load()},
                   {"busy_rejections", busy_.load()},
                   {"batches", scheduler_ ? scheduler_->batches_scored() : 0}});
  });
}

ServerStats EventLoopServer::stats() const {
  ServerStats out;
  out.connections_accepted = accepted_.load(std::memory_order_relaxed);
  out.busy_rejections = busy_.load(std::memory_order_relaxed);
  out.decisions = decisions_.load(std::memory_order_relaxed);
  out.session_errors = errors_.load(std::memory_order_relaxed);
  out.deadline_expirations = deadlines_.load(std::memory_order_relaxed);
  out.active_connections = active_.load(std::memory_order_relaxed);
  out.batches_scored = scheduler_ ? scheduler_->batches_scored() : 0;
  out.scores_in_flight = inflight_.load(std::memory_order_relaxed);
  return out;
}

std::vector<ConnectionInfo> EventLoopServer::connections() const {
  return conn_table_.snapshot();
}

void EventLoopServer::adopt_connection(int fd) {
  if (fd < 0) return;
  if (!running()) {
    send_and_close(fd, encode_error(ErrorCode::kShuttingDown, "server is draining"));
    return;
  }
  // fds arriving over SCM_RIGHTS kept the sender's flags; the reactor
  // needs them nonblocking.
  (void)set_nonblocking(fd);
  dispatch_fd(fd);
}

void EventLoopServer::dispatch_fd(int fd) {
  if (stopping_.load(std::memory_order_acquire)) {
    send_and_close(fd, encode_error(ErrorCode::kShuttingDown, "server is draining"));
    return;
  }
  if (active_.load(std::memory_order_relaxed) >= config_.max_connections) {
    busy_.fetch_add(1, std::memory_order_relaxed);
    metric_busy().increment();
    send_and_close(fd, encode_busy());
    return;
  }
  active_.fetch_add(1, std::memory_order_relaxed);
  metric_active().set(
      static_cast<double>(active_.load(std::memory_order_relaxed)));
  accepted_.fetch_add(1, std::memory_order_relaxed);
  metric_connections().increment();
  const std::size_t target =
      next_loop_.fetch_add(1, std::memory_order_relaxed) % loops_.size();
  Loop* loop = loops_[target].get();
  if (!loop->post([loop, fd] { loop->make_conn(fd); })) {
    // The loop exited under us (stop race): reject like the drain path.
    active_.fetch_sub(1, std::memory_order_relaxed);
    send_and_close(fd, encode_error(ErrorCode::kShuttingDown, "server is draining"));
  }
}

}  // namespace headtalk::serve
