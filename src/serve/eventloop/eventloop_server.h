// Event-loop serving core: epoll reactor + micro-batched scoring.
//
// The thread-per-connection Server (serve/server.h) spends one OS thread —
// stack, scheduler slot, blocking poll — per client, which tops out around
// the worker count. This engine multiplexes thousands of nonblocking
// connections over a handful of loop threads instead:
//
//   * `loops` reactor threads, each running a Poller (epoll on Linux, poll
//     fallback) over its share of connections. Loop 0 also owns the
//     listeners and hands accepted fds round-robin to the loops; a shard
//     front can inject fds directly via adopt_connection().
//   * Frame parsing and streaming-mode (auto-endpoint) scoring run on the
//     loop threads — after the frame-incremental refactor both are cheap.
//     Whole-utterance scoring (END_OF_UTTERANCE) is deferred through the
//     Session score hook into a BatchScheduler, which gathers ready
//     utterances across connections within --batch-window-us (up to
//     --batch-max) and scores them back-to-back on a warm workspace.
//     Completions post back to the owning loop over its wake pipe, so all
//     Session state stays loop-thread-confined.
//   * Writes are buffered and nonblocking: output is sent immediately as
//     far as the socket accepts, the rest parks in a per-connection buffer
//     with EPOLLOUT interest toggled on until it drains. A connection with
//     a score in flight has its read interest dropped (responses stay in
//     order, memory stays bounded); it resumes when the verdict lands.
//
// Semantics match the threaded engine: per-utterance deadlines (reset per
// DECISION; streaming mode resets per received chunk) are enforced even
// while an utterance is parked in the batch queue; saturation (at
// max_connections) answers BUSY and closes; request_stop() drains — idle
// connections get kShuttingDown, in-flight utterances get their DECISIONs,
// then the loops exit.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/pipeline.h"
#include "serve/conn_table.h"
#include "serve/engine.h"
#include "serve/eventloop/batch_scheduler.h"
#include "serve/eventloop/poller.h"
#include "serve/server.h"
#include "serve/session.h"

namespace headtalk::serve {

struct EventLoopConfig {
  /// Socket paths, deadline, session limits — shared with the threaded
  /// engine. (`workers` and `max_pending` are that engine's knobs and are
  /// ignored here; an empty socket_path skips the unix listener, which is
  /// how shard children run fd-passing-only.)
  ServerConfig base{};
  /// Reactor threads. 1 suits a single-core host; the structure scales by
  /// adding loops, not threads-per-connection.
  std::size_t loops = 1;
  /// Scoring threads feeding score_batch (see BatchSchedulerConfig).
  std::size_t scoring_threads = 1;
  std::size_t batch_max = 8;
  std::uint32_t batch_window_us = 500;
  /// Connections held concurrently across all loops; beyond this a new
  /// connection is answered BUSY and closed, exactly like the threaded
  /// engine's full pending queue.
  std::size_t max_connections = 4096;
  PollerBackend poller = PollerBackend::kAuto;
  /// Bind the TCP listener with SO_REUSEPORT so N shard processes can
  /// share one port (the kernel load-balances accepts between them).
  bool reuseport = false;
};

class EventLoopServer final : public ServerEngine {
 public:
  EventLoopServer(const core::HeadTalkPipeline& pipeline, EventLoopConfig config);
  ~EventLoopServer() override;

  EventLoopServer(const EventLoopServer&) = delete;
  EventLoopServer& operator=(const EventLoopServer&) = delete;

  void start() override;
  void request_stop() noexcept override;
  void wait() override;
  void stop() override;

  [[nodiscard]] bool running() const noexcept override {
    return started_.load(std::memory_order_acquire) &&
           !stopped_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool draining() const noexcept override {
    return stopping_.load(std::memory_order_acquire);
  }
  [[nodiscard]] ServerStats stats() const override;
  [[nodiscard]] std::vector<ConnectionInfo> connections() const override;
  [[nodiscard]] const EventLoopConfig& config() const noexcept { return config_; }

  void adopt_connection(int fd) override;

 private:
  class Loop;
  friend class Loop;

  /// Routes a freshly-accepted/adopted fd: BUSY when saturated, shutdown
  /// notice when draining, else round-robin to a loop. Takes fd ownership.
  void dispatch_fd(int fd);

  const core::HeadTalkPipeline& pipeline_;
  EventLoopConfig config_;

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};

  std::unique_ptr<BatchScheduler> scheduler_;
  std::vector<std::unique_ptr<Loop>> loops_;
  std::atomic<std::size_t> next_loop_{0};

  ConnectionTable conn_table_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  std::once_flag stop_once_;

  std::atomic<std::size_t> active_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> busy_{0};
  std::atomic<std::uint64_t> decisions_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> inflight_{0};
  std::atomic<std::uint64_t> deadlines_{0};
};

}  // namespace headtalk::serve
