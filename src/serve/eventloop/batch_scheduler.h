// Micro-batch scoring pool for the event-loop engine.
//
// Loop threads parse frames and submit ready utterances here instead of
// scoring inline; a small pool of scoring threads gathers submissions into
// batches and drives HeadTalkPipeline::score_batch over one warm per-thread
// workspace. Batching trades a bounded queueing delay for cache-warm
// back-to-back scoring:
//
//   * a batch closes when it reaches `batch_max` jobs, or `window_us`
//     after its FIRST job was enqueued — an idle server still answers a
//     lone utterance within one window;
//   * completions are delivered by calling the job's `done` callback from
//     the scoring thread. The engine passes a closure that enqueues onto
//     the owning loop's completion queue and wakes it, so Session state is
//     only ever touched on loop threads.
//
// stop() is a drain, not an abort: every submitted job is scored (stop
// skips the gather window) before the threads exit, which is what lets a
// SIGTERM drain answer utterances already parked in the batch queue.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "serve/session.h"

namespace headtalk::serve {

struct BatchSchedulerConfig {
  /// Scoring threads. One is right for a single-core host; more overlap
  /// scoring with parsing on bigger machines.
  std::size_t threads = 1;
  /// Largest batch handed to score_batch in one call.
  std::size_t batch_max = 8;
  /// Gather window measured from the first job of the forming batch.
  std::uint32_t window_us = 500;
};

class BatchScheduler {
 public:
  /// One scored utterance coming back. `ok == false` means the pipeline
  /// threw; `error` carries the message and result/features are unset.
  struct Outcome {
    bool ok = false;
    core::PipelineResult result{};
    core::FeatureCapture features{};
    /// Wall time from submit to scored (what the DECISION latency field
    /// reports — includes the gather wait, which the client experiences).
    double elapsed_seconds = 0.0;
    /// Jobs in the batch this one was scored with (occupancy telemetry).
    std::size_t batch_size = 0;
    std::string error;
  };

  struct Job {
    PendingUtterance utterance;
    core::VaMode mode = core::VaMode::kHeadTalk;
    /// Invoked exactly once from a scoring thread.
    std::function<void(Outcome&&)> done;
    /// Stamped by submit(); used for the elapsed_seconds report.
    std::chrono::steady_clock::time_point enqueued{};
  };

  BatchScheduler(const core::HeadTalkPipeline& pipeline, BatchSchedulerConfig config);
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Thread-safe. Returns false (job untouched, `done` not called) after
  /// stop() began — callers fail the session instead.
  bool submit(Job&& job);

  /// Enters drain mode: gather windows close immediately (current and
  /// future), so parked utterances score right away instead of waiting out
  /// `window_us`. Submissions stay open — a SIGTERM drain still accepts
  /// the in-flight utterances it is owed. Thread-safe, idempotent.
  void begin_drain();

  /// Scores everything still queued, then joins the pool. Idempotent.
  void stop();

  [[nodiscard]] std::uint64_t batches_scored() const noexcept;
  [[nodiscard]] std::uint64_t utterances_scored() const noexcept;

 private:
  void worker();
  void run_batch(std::vector<Job>&& jobs);

  const core::HeadTalkPipeline& pipeline_;
  BatchSchedulerConfig config_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  bool stopping_ = false;
  bool draining_ = false;
  std::uint64_t batches_ = 0;
  std::uint64_t scored_ = 0;

  std::vector<std::thread> threads_;
};

}  // namespace headtalk::serve
