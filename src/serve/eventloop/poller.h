// Readiness multiplexer behind the event-loop engine.
//
// One Poller watches the fds of one loop thread (listener, wakeup, and
// every connection the loop owns) and reports readiness. Two backends
// implement the same level-triggered contract:
//
//   kEpoll — epoll(7): O(ready) wakeups, the production backend; add/mod/
//            del are O(1) syscalls and wait() scales to thousands of
//            mostly-idle streaming connections.
//   kPoll  — poll(2) over a rebuilt pollfd vector: O(watched) per wait,
//            kept as the portability fallback and to cross-check the
//            epoll path in tests (the engine behaves identically on both).
//
// kAuto picks epoll where it exists (Linux) and poll elsewhere. The
// registered `void*` datum is returned verbatim with each event — the
// engine stores its per-connection struct there and never does an fd
// lookup on the hot path.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

namespace headtalk::serve {

enum class PollerBackend { kAuto, kEpoll, kPoll };

[[nodiscard]] PollerBackend parse_poller_backend(std::string_view text);
[[nodiscard]] std::string_view poller_backend_name(PollerBackend backend);

struct PollerEvent {
  void* data = nullptr;
  bool readable = false;
  bool writable = false;
  /// Error/hangup on the fd (reported even when not subscribed).
  bool error = false;
};

class Poller {
 public:
  /// Interest bits for add()/modify().
  static constexpr std::uint32_t kRead = 1u << 0;
  static constexpr std::uint32_t kWrite = 1u << 1;

  virtual ~Poller() = default;

  /// Registers `fd` with the given interest; `data` is echoed back in
  /// every PollerEvent for it. Throws std::runtime_error on failure.
  virtual void add(int fd, std::uint32_t interest, void* data) = 0;
  /// Updates interest (and datum) for a registered fd.
  virtual void modify(int fd, std::uint32_t interest, void* data) = 0;
  /// Deregisters; safe to call for fds about to be closed.
  virtual void remove(int fd) = 0;

  /// Blocks up to timeout_ms (-1 = forever) and fills `out` with ready
  /// fds; returns the count (0 on timeout). EINTR reports as 0.
  [[nodiscard]] virtual int wait(std::span<PollerEvent> out, int timeout_ms) = 0;

  [[nodiscard]] virtual PollerBackend backend() const noexcept = 0;

  /// Factory; kAuto resolves to epoll on Linux, poll otherwise.
  [[nodiscard]] static std::unique_ptr<Poller> create(
      PollerBackend backend = PollerBackend::kAuto);
};

}  // namespace headtalk::serve
