#include "serve/eventloop/shard.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "obs/log.h"
#include "serve/listener.h"

namespace headtalk::serve {

ShardChannel make_shard_channel() {
  int sv[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_SEQPACKET | SOCK_CLOEXEC, 0, sv) != 0) {
    throw std::runtime_error(std::string("serve: socketpair() failed: ") +
                             std::strerror(errno));
  }
  return ShardChannel{sv[0], sv[1]};
}

bool send_fd(int channel, int fd) noexcept {
  // One data byte so a zero-length packet never gets conflated with EOF.
  char payload = 'f';
  iovec iov{&payload, 1};
  alignas(cmsghdr) char control[CMSG_SPACE(sizeof(int))] = {};
  msghdr msg{};
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  msg.msg_control = control;
  msg.msg_controllen = sizeof control;
  cmsghdr* cmsg = CMSG_FIRSTHDR(&msg);
  cmsg->cmsg_level = SOL_SOCKET;
  cmsg->cmsg_type = SCM_RIGHTS;
  cmsg->cmsg_len = CMSG_LEN(sizeof(int));
  std::memcpy(CMSG_DATA(cmsg), &fd, sizeof(int));
  while (true) {
    const ssize_t n = ::sendmsg(channel, &msg, MSG_NOSIGNAL);
    if (n >= 0) return true;
    if (errno == EINTR) continue;
    return false;
  }
}

int recv_fd(int channel) noexcept {
  char payload = 0;
  iovec iov{&payload, 1};
  alignas(cmsghdr) char control[CMSG_SPACE(sizeof(int))] = {};
  while (true) {
    msghdr msg{};
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;
    msg.msg_control = control;
    msg.msg_controllen = sizeof control;
    const ssize_t n = ::recvmsg(channel, &msg, MSG_CMSG_CLOEXEC);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) return -1;  // peer closed
    for (cmsghdr* cmsg = CMSG_FIRSTHDR(&msg); cmsg != nullptr;
         cmsg = CMSG_NXTHDR(&msg, cmsg)) {
      if (cmsg->cmsg_level == SOL_SOCKET && cmsg->cmsg_type == SCM_RIGHTS &&
          cmsg->cmsg_len >= CMSG_LEN(sizeof(int))) {
        int fd = -1;
        std::memcpy(&fd, CMSG_DATA(cmsg), sizeof(int));
        return fd;
      }
    }
    // A data packet without an fd (shouldn't happen); keep reading.
  }
}

// ---------------------------------------------------------------------------
// ShardFront

ShardFront::ShardFront(std::filesystem::path socket_path, std::vector<int> channels)
    : socket_path_(std::move(socket_path)), channels_(std::move(channels)) {}

ShardFront::~ShardFront() {
  if (started_.load(std::memory_order_acquire)) {
    stop();
  } else {
    for (int channel : channels_) close_quietly(channel);
  }
}

void ShardFront::start() {
  if (started_.exchange(true, std::memory_order_acq_rel)) {
    throw std::runtime_error("serve: shard front started twice");
  }
  if (::pipe2(stop_pipe_, O_CLOEXEC | O_NONBLOCK) != 0) {
    throw std::runtime_error("serve: pipe2() failed");
  }
  listen_fd_ = make_unix_listener(socket_path_);
  thread_ = std::thread([this] { accept_loop(); });
  obs::log_info("serve.shard_front.started",
                {{"socket", socket_path_.string()},
                 {"shards", static_cast<std::uint64_t>(channels_.size())}});
}

void ShardFront::stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], "x", 1);
  if (thread_.joinable()) thread_.join();
  close_quietly(listen_fd_);
  listen_fd_ = -1;
  // Closing the channels is the shard shutdown signal: each child's
  // ShardFdReceiver sees EOF and returns.
  for (int channel : channels_) close_quietly(channel);
  channels_.clear();
  close_quietly(stop_pipe_[0]);
  close_quietly(stop_pipe_[1]);
  stop_pipe_[0] = stop_pipe_[1] = -1;
  std::error_code ec;
  std::filesystem::remove(socket_path_, ec);
  obs::log_info("serve.shard_front.stopped", {{"forwarded", forwarded_.load()}});
}

void ShardFront::accept_loop() {
  while (true) {
    pollfd fds[2] = {{stop_pipe_[0], POLLIN, 0}, {listen_fd_, POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[0].revents != 0) return;  // stop requested
    if ((fds[1].revents & POLLIN) == 0) continue;
    const int client = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (client < 0) continue;
    // Deal round-robin; a dead shard's channel is skipped. The kernel dups
    // the fd into the receiving process, so the local copy closes either
    // way.
    bool delivered = false;
    for (std::size_t attempt = 0; attempt < channels_.size(); ++attempt) {
      const std::size_t index = next_++ % channels_.size();
      if (send_fd(channels_[index], client)) {
        delivered = true;
        break;
      }
    }
    if (delivered) forwarded_.fetch_add(1, std::memory_order_relaxed);
    close_quietly(client);
  }
}

// ---------------------------------------------------------------------------
// ShardFdReceiver

ShardFdReceiver::ShardFdReceiver(int channel, ServerEngine& engine)
    : channel_(channel), engine_(engine) {}

ShardFdReceiver::~ShardFdReceiver() {
  if (started_.load(std::memory_order_acquire)) {
    stop();
  } else {
    close_quietly(channel_);
  }
}

void ShardFdReceiver::start() {
  if (started_.exchange(true, std::memory_order_acq_rel)) {
    throw std::runtime_error("serve: shard receiver started twice");
  }
  thread_ = std::thread([this] { receive_loop(); });
}

void ShardFdReceiver::stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  // shutdown() wakes the blocked recvmsg with EOF; close() alone would
  // race the read.
  (void)::shutdown(channel_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  close_quietly(channel_);
  channel_ = -1;
}

void ShardFdReceiver::receive_loop() {
  while (true) {
    const int fd = recv_fd(channel_);
    if (fd < 0) return;  // parent front stopped (or died)
    adopted_.fetch_add(1, std::memory_order_relaxed);
    engine_.adopt_connection(fd);
  }
}

}  // namespace headtalk::serve
