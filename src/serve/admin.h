// Admin plane of the inference daemon: live observability over HTTP.
//
// A second, tiny listener (`--admin-socket` Unix path and/or
// `--admin-port` on 127.0.0.1) answers plain HTTP/1.0 GETs from its own
// thread — scoring workers are never touched; a scrape costs the daemon
// one registry snapshot under the registry mutex and some formatting on
// the admin thread:
//
//   GET /metrics       Prometheus text exposition (obs/export.h)
//   GET /metrics.json  mergeable JSON snapshot (the per-shard aggregation
//                      wire format — obs::parse_snapshot_json reads it)
//   GET /healthz       200 "ok" while the process serves requests at all
//   GET /readyz        200 "ready" | 503 "not ready" (model loaded and
//                      not draining; flips the moment a drain starts)
//   GET /stats.json    uptime, /proc self-stats (rss, fds, cpu), the live
//                      per-connection table, and the slow-utterance
//                      exemplars (obs/exemplar.h)
//   GET /tenants.json  per-tenant model + decision-counter table (404 when
//                      the daemon runs tenant-less)
//   POST /reload       hot-reloads the tenant model store; the response
//                      reports the new generation. GET answers 405 —
//                      reloads mutate state and must not be scrapeable.
//
// The HTTP dialect is deliberately minimal: request line + headers are
// read and ignored beyond `GET <target>` / `POST <target>` (request
// bodies are ignored), every response carries Content-Length and
// Connection: close, one request per connection — enough for curl,
// Prometheus, and headtalk_client --watch, with no dependency on an HTTP
// library.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "serve/engine.h"

namespace headtalk::serve {

struct AdminConfig {
  /// Unix-domain socket path; empty disables the Unix listener.
  std::filesystem::path socket_path;
  /// Optional TCP listener on 127.0.0.1:<port>; 0 disables it.
  int tcp_port = 0;
  /// Budget for reading one request and writing its response.
  int io_timeout_ms = 2000;
};

struct AdminHooks {
  /// /readyz truth; null means "always ready once started".
  std::function<bool()> ready;
  /// Rows for /stats.json's "connections" array; null means empty.
  std::function<std::vector<ConnectionInfo>()> connections;
  /// Extra JSON *members* appended into the /stats.json object, e.g.
  /// `"decisions":12,"mode":"headtalk"` (no surrounding braces). Null
  /// means none.
  std::function<std::string()> extra_stats;
  /// Full JSON body for GET /tenants.json; null answers 404 (daemon runs
  /// tenant-less).
  std::function<std::string()> tenants;
  /// POST /reload action; returns the JSON response body. Null answers
  /// 404; a thrown exception answers 500 with the message.
  std::function<std::string()> reload;
};

/// Process self-stats read from /proc (Linux); -1 fields when unavailable.
struct SelfStats {
  long long rss_bytes = -1;
  int open_fds = -1;
  double cpu_seconds = -1.0;  ///< utime + stime
};
[[nodiscard]] SelfStats read_self_stats();

/// A routed response, before HTTP framing (exposed for unit tests).
struct AdminResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class AdminServer {
 public:
  AdminServer(AdminConfig config, AdminHooks hooks = {});
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Binds the listener(s) and spawns the admin thread. Throws
  /// std::runtime_error when nothing can be bound (no socket, no port, or
  /// a bind failure).
  void start();
  /// Stops the admin thread and closes the listeners. Idempotent.
  void stop();

  /// Routes one request target to a response (no sockets involved); the
  /// serving thread and the tests share this exact function.
  [[nodiscard]] AdminResponse handle(std::string_view target,
                                     std::string_view method = "GET") const;

  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const AdminConfig& config() const noexcept { return config_; }

 private:
  void serve_loop();
  void serve_one(int fd) const;

  AdminConfig config_;
  AdminHooks hooks_;
  std::chrono::steady_clock::time_point started_at_{};
  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::thread thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  mutable std::atomic<std::uint64_t> requests_{0};
};

/// Minimal blocking HTTP GET against an admin endpoint — the scrape side
/// of the protocol, shared by headtalk_client --watch/--admin-get, the
/// serve bench's scraper thread, and the tests.
struct AdminFetch {
  int status = 0;
  std::string body;
};
[[nodiscard]] AdminFetch admin_get_unix(const std::filesystem::path& socket_path,
                                        std::string_view target, int timeout_ms = 5000);
[[nodiscard]] AdminFetch admin_get_tcp(int port, std::string_view target,
                                       int timeout_ms = 5000);
/// Same wire shape with a POST request line — the trigger side of
/// POST /reload (bodies are not sent; the admin plane ignores them).
[[nodiscard]] AdminFetch admin_post_unix(const std::filesystem::path& socket_path,
                                         std::string_view target, int timeout_ms = 5000);
[[nodiscard]] AdminFetch admin_post_tcp(int port, std::string_view target,
                                        int timeout_ms = 5000);

}  // namespace headtalk::serve
