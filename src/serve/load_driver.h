// Multiplexed load generator for the serving daemon.
//
// BlockingClient does one connection per thread, which cannot express
// "1000 concurrent streaming clients" on a small host. LoadDriver drives
// every connection from ONE thread over the same Poller the event-loop
// engine uses: per-connection nonblocking state machines (connect →
// HELLO → fire utterances → await DECISIONs) with pre-encoded frame
// blobs, so the generator costs almost nothing per connection and the
// measured latencies are the server's.
//
// Two load disciplines:
//   closed loop (arrival_rps == 0) — every connection fires its next
//     utterance the moment the previous DECISION lands; throughput is
//     whatever the server sustains.
//   open loop (arrival_rps > 0) — utterances arrive on a fixed global
//     schedule (k-th at start + k/rps) regardless of completions, the
//     honest way to measure latency under load: if the server falls
//     behind, arrivals backlog and the recorded latency (measured from
//     the *scheduled* arrival instant) grows — no coordinated omission.
//
// Connections ramp in over `ramp_ms` with per-connection jitter instead
// of a thundering connect herd, and are reused across utterances. BUSY
// and ERROR frames close the connection (counted); during the firing
// window it reconnects, mimicking a retrying client fleet.
#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

namespace headtalk::serve {

struct LoadDriverConfig {
  /// Unix target (used when non-empty) …
  std::filesystem::path socket_path;
  /// … or TCP target on 127.0.0.1:<port>.
  int tcp_port = 0;
  /// Concurrent connections to hold open.
  std::size_t connections = 64;
  /// Open-loop global utterance arrival rate; 0 = closed loop.
  double arrival_rps = 0.0;
  /// Stop firing after this many utterances (0 = use duration_seconds).
  std::uint64_t utterances = 0;
  /// Stop firing after this long (0 = use utterances).
  double duration_seconds = 0.0;
  /// Connection ramp window; each connection connects at a uniformly
  /// jittered offset within it. 0 connects everything at once.
  std::uint32_t ramp_ms = 0;
  /// After the firing window closes, how long to wait for outstanding
  /// DECISIONs before giving up on them.
  double drain_grace_seconds = 10.0;
  std::uint16_t channels = 4;
  std::uint32_t sample_rate_hz = 48000;
  /// Length of the synthetic utterance each request carries.
  std::uint32_t utterance_frames = 4800;
  unsigned seed = 1234;
};

struct LoadReport {
  std::uint64_t decisions = 0;
  /// ERROR frames received + protocol/socket failures mid-request.
  std::uint64_t errors = 0;
  std::uint64_t busy_rejections = 0;
  std::uint64_t connects = 0;
  std::uint64_t connect_failures = 0;
  /// Responses that violate the one-DECISION-per-utterance contract (a
  /// DECISION with no request outstanding, or an unknown frame type).
  std::uint64_t protocol_violations = 0;
  /// Utterances fired whose DECISION never arrived (drain grace expired).
  std::uint64_t abandoned = 0;
  double elapsed_seconds = 0.0;
  double offered_rps = 0.0;   ///< scheduled arrival rate (open loop; else 0)
  double achieved_rps = 0.0;  ///< decisions / elapsed
  std::size_t peak_open_connections = 0;
  /// Per-decision latency, scheduled-arrival → DECISION (open loop) or
  /// fire → DECISION (closed loop). Unsorted.
  std::vector<double> latencies_seconds;
};

/// Runs the configured load to completion on the calling thread.
[[nodiscard]] LoadReport run_load(const LoadDriverConfig& config);

}  // namespace headtalk::serve
