#include "serve/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "core/scoring_workspace.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "serve/listener.h"
#include "util/thread_pool.h"

namespace headtalk::serve {
namespace {

using Clock = std::chrono::steady_clock;

// Registry references are resolved once; the instruments live for the
// process lifetime (see obs/metrics.h).
obs::Counter& metric_connections() {
  static obs::Counter& c = obs::Registry::global().counter("serve.connections");
  return c;
}
obs::Counter& metric_busy() {
  static obs::Counter& c = obs::Registry::global().counter("serve.busy");
  return c;
}
obs::Gauge& metric_active() {
  static obs::Gauge& g = obs::Registry::global().gauge("serve.active_connections");
  return g;
}
obs::Histogram& metric_queue_depth() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "serve.queue_depth", {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024});
  return h;
}
obs::Histogram& metric_request_seconds() {
  static obs::Histogram& h = obs::Registry::global().histogram("serve.request_seconds");
  return h;
}

}  // namespace

Server::Server(const core::HeadTalkPipeline& pipeline, ServerConfig config)
    : pipeline_(pipeline), config_(std::move(config)) {}

Server::~Server() {
  if (started_.load(std::memory_order_acquire)) stop();
}

void Server::start() {
  if (started_.exchange(true, std::memory_order_acq_rel)) {
    throw std::runtime_error("serve: start() called twice");
  }
  if (::pipe2(stop_pipe_, O_CLOEXEC | O_NONBLOCK) != 0) {
    throw std::runtime_error("serve: pipe2() failed");
  }
  unix_fd_ = make_unix_listener(config_.socket_path);
  if (config_.tcp_port > 0) tcp_fd_ = make_tcp_listener(config_.tcp_port, config_.reuseport);

  const unsigned workers = util::resolve_jobs(config_.workers);
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  acceptor_ = std::thread([this] { acceptor_loop(); });
  obs::log_info("serve.started",
                {{"socket", config_.socket_path.string()},
                 {"tcp_port", config_.tcp_port},
                 {"workers", workers},
                 {"max_pending", static_cast<std::uint64_t>(config_.max_pending)}});
}

void Server::request_stop() noexcept {
  stopping_.store(true, std::memory_order_release);
  // One byte wakes the acceptor's poll and wait(); write() is
  // async-signal-safe, and O_NONBLOCK means a full pipe is simply ignored.
  if (stop_pipe_[1] >= 0) {
    [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], "x", 1);
  }
}

void Server::wait() {
  if (!started_.load(std::memory_order_acquire)) return;
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{stop_pipe_[0], POLLIN, 0};
    (void)::poll(&pfd, 1, 1000);
  }
  stop();
}

void Server::stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  std::call_once(stop_once_, [this] {
    request_stop();
    if (acceptor_.joinable()) acceptor_.join();
    // Wake every worker; they drain the queue, then exit on the stop flag.
    queue_ready_.notify_all();
    for (auto& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
    // Connections that were queued after the last worker exited (the
    // acceptor may have raced the drain): reject them explicitly.
    std::deque<int> leftover;
    {
      std::lock_guard lock(queue_mutex_);
      leftover.swap(pending_);
    }
    const auto shutting_down =
        encode_error(ErrorCode::kShuttingDown, "server is shutting down");
    for (int fd : leftover) send_and_close(fd, shutting_down);

    close_quietly(stop_pipe_[0]);
    close_quietly(stop_pipe_[1]);
    stop_pipe_[0] = stop_pipe_[1] = -1;
    std::error_code ec;
    std::filesystem::remove(config_.socket_path, ec);
    stopped_.store(true, std::memory_order_release);
    obs::log_info("serve.stopped",
                  {{"connections", accepted_.load()},
                   {"decisions", decisions_.load()},
                   {"busy_rejections", busy_.load()}});
  });
}

std::vector<ConnectionInfo> Server::connections() const {
  return conn_table_.snapshot();
}

ServerStats Server::stats() const {
  ServerStats out;
  out.connections_accepted = accepted_.load(std::memory_order_relaxed);
  out.busy_rejections = busy_.load(std::memory_order_relaxed);
  out.decisions = decisions_.load(std::memory_order_relaxed);
  out.session_errors = errors_.load(std::memory_order_relaxed);
  out.deadline_expirations = deadlines_.load(std::memory_order_relaxed);
  out.active_connections = active_.load(std::memory_order_relaxed);
  return out;
}

void Server::adopt_connection(int fd) {
  if (fd < 0) return;
  if (!running() || stopping_.load(std::memory_order_acquire)) {
    send_and_close(fd, encode_error(ErrorCode::kShuttingDown, "server is draining"));
    return;
  }
  // The worker I/O model is blocking-with-timeout; fds handed over from a
  // nonblocking front must shed O_NONBLOCK.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  if (try_enqueue(fd)) {
    accepted_.fetch_add(1, std::memory_order_relaxed);
    metric_connections().increment();
  } else {
    busy_.fetch_add(1, std::memory_order_relaxed);
    metric_busy().increment();
    send_and_close(fd, encode_busy());
  }
}

void Server::acceptor_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd fds[3];
    nfds_t count = 0;
    fds[count++] = {stop_pipe_[0], POLLIN, 0};
    fds[count++] = {unix_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) fds[count++] = {tcp_fd_, POLLIN, 0};
    const int ready = ::poll(fds, count, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[0].revents != 0) break;  // stop requested
    for (nfds_t i = 1; i < count; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int client = ::accept4(fds[i].fd, nullptr, nullptr, SOCK_CLOEXEC);
      if (client < 0) continue;
      if (stopping_.load(std::memory_order_acquire)) {
        send_and_close(client,
                       encode_error(ErrorCode::kShuttingDown, "server is draining"));
        continue;
      }
      if (try_enqueue(client)) {
        accepted_.fetch_add(1, std::memory_order_relaxed);
        metric_connections().increment();
      } else {
        busy_.fetch_add(1, std::memory_order_relaxed);
        metric_busy().increment();
        send_and_close(client, encode_busy());
      }
    }
  }
  // Stop accepting: new connects now fail instead of queueing invisibly.
  close_quietly(unix_fd_);
  close_quietly(tcp_fd_);
  unix_fd_ = tcp_fd_ = -1;
}

bool Server::try_enqueue(int fd) {
  std::size_t depth = 0;
  {
    std::lock_guard lock(queue_mutex_);
    if (pending_.size() >= config_.max_pending) return false;
    pending_.push_back(fd);
    depth = pending_.size();
  }
  metric_queue_depth().observe(static_cast<double>(depth));
  queue_ready_.notify_one();
  return true;
}

int Server::pop_connection() {
  std::unique_lock lock(queue_mutex_);
  queue_ready_.wait(lock, [this] {
    return !pending_.empty() || stopping_.load(std::memory_order_acquire);
  });
  if (pending_.empty()) return -1;  // stopping and fully drained
  const int fd = pending_.front();
  pending_.pop_front();
  return fd;
}

void Server::worker_loop() {
  // One workspace per worker thread, reused across every connection this
  // worker handles: after the first utterance the scoring scratch and the
  // cached FFT plans are warm for the rest of the worker's lifetime.
  core::ScoringWorkspace workspace;
  while (true) {
    const int fd = pop_connection();
    if (fd < 0) return;
    active_.fetch_add(1, std::memory_order_relaxed);
    metric_active().set(static_cast<double>(active_.load(std::memory_order_relaxed)));
    handle_connection(fd, workspace);
    active_.fetch_sub(1, std::memory_order_relaxed);
    metric_active().set(static_cast<double>(active_.load(std::memory_order_relaxed)));
  }
}

void Server::handle_connection(int fd, core::ScoringWorkspace& workspace) {
  Session session(pipeline_, config_.session);
  session.set_workspace(&workspace);
  const auto deadline_budget = std::chrono::milliseconds(config_.request_deadline_ms);
  Clock::time_point request_start = Clock::now();
  Clock::time_point deadline = request_start + deadline_budget;

  // Register this connection's row in the shared admin table. The worker
  // updates the row's atomics lock-free on every read; the table mutex is
  // touched only here and at teardown.
  auto slot = conn_table_.insert();
  slot->accepted_at = request_start;
  slot->touch();
  struct SlotEraser {
    ConnectionTable* table;
    std::uint64_t id;
    ~SlotEraser() { table->erase(id); }
  } eraser{&conn_table_, slot->id};

  std::uint8_t buffer[1 << 16];
  // Watch the stop pipe alongside the client so a drain is not held hostage
  // by an idle connection waiting out its deadline. Once a drain is seen
  // with an utterance in flight we stop watching (the pipe stays readable)
  // and finish that utterance, bounded by the deadline.
  bool watch_stop = true;

  while (true) {
    const auto now = Clock::now();
    if (now >= deadline) {
      deadlines_.fetch_add(1, std::memory_order_relaxed);
      const auto frame = encode_error(ErrorCode::kDeadlineExceeded,
                                      "no complete request within the deadline");
      (void)send_all(fd, frame.data(), frame.size());
      break;
    }
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    pollfd pfds[2] = {{fd, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    const nfds_t pfd_count = watch_stop ? 2 : 1;
    const int ready = ::poll(pfds, pfd_count, static_cast<int>(remaining.count()) + 1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;  // deadline handled at the top of the loop
    if (pfd_count == 2 && pfds[1].revents != 0 && (pfds[0].revents & POLLIN) == 0) {
      // Drain requested and the client has nothing pending right now.
      if (session.idle()) {
        const auto frame =
            encode_error(ErrorCode::kShuttingDown, "server is draining");
        (void)send_all(fd, frame.data(), frame.size());
        break;
      }
      watch_stop = false;
      continue;
    }
    if ((pfds[0].revents & POLLIN) == 0) continue;

    const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
    if (n == 0) break;  // client closed
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }

    slot->touch();

    const std::size_t decisions_before = session.decisions_sent();
    const bool alive = session.on_bytes(buffer, static_cast<std::size_t>(n));
    const auto output = session.take_output();
    if (!output.empty() && !send_all(fd, output.data(), output.size())) break;
    slot->stream_mode.store(session.stream_mode(), std::memory_order_relaxed);
    slot->decisions.store(session.decisions_sent(), std::memory_order_relaxed);

    if (session.stream_mode()) {
      // Auto-endpoint streaming: the server owns segmentation, so there is
      // no "complete request" for the deadline to bound — a quiet room
      // produces no decisions for minutes. Received audio proves the client
      // is alive; the deadline degrades to a max inter-chunk silence.
      request_start = Clock::now();
      deadline = request_start + deadline_budget;
    }

    const std::size_t new_decisions = session.decisions_sent() - decisions_before;
    if (new_decisions > 0) {
      decisions_.fetch_add(new_decisions, std::memory_order_relaxed);
      metric_request_seconds().observe(
          std::chrono::duration<double>(Clock::now() - request_start).count());
      // A finished utterance resets the per-request clock.
      request_start = Clock::now();
      deadline = request_start + deadline_budget;
      // During a drain, finish the utterance that is in flight but do not
      // wait for the client's next one.
      if (stopping_.load(std::memory_order_acquire)) break;
    }
    if (!alive) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
  }
  close_quietly(fd);
}

}  // namespace headtalk::serve
