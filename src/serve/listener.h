// Socket plumbing shared by the serving engines and the shard front:
// listener construction (Unix / loopback-TCP, optionally SO_REUSEPORT),
// whole-buffer sends, and the one-shot reject path used for BUSY /
// shutting-down frames. Split out of server.cpp so the threaded engine,
// the event-loop engine and the shard runner bind sockets identically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <vector>

namespace headtalk::serve {

/// Binds + listens on a Unix-domain socket (an existing socket file is
/// replaced). Throws std::runtime_error on failure.
[[nodiscard]] int make_unix_listener(const std::filesystem::path& path);

/// Binds + listens on 127.0.0.1:<port>. Loopback only: the daemon carries
/// raw room audio; remote exposure is a deliberate deployment decision
/// (front it with a real proxy), not a flag. With `reuseport` the socket
/// is bound SO_REUSEPORT so N shard processes can share the port and let
/// the kernel spread accepts across them. Throws on failure.
[[nodiscard]] int make_tcp_listener(int port, bool reuseport = false);

/// Sends the whole buffer (blocking fd), retrying short writes and EINTR;
/// false on a dead peer.
bool send_all(int fd, const std::uint8_t* data, std::size_t size);

/// Best-effort single-shot frame for connections rejected before an engine
/// ever owns them (BUSY / shutting-down): one non-blocking send, then
/// close. Always closes `fd`.
void send_and_close(int fd, const std::vector<std::uint8_t>& frame);

void close_quietly(int fd) noexcept;

/// Sets O_NONBLOCK; false on fcntl failure.
bool set_nonblocking(int fd) noexcept;

}  // namespace headtalk::serve
