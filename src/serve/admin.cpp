#include "serve/admin.h"

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <sstream>
#include <stdexcept>

#include "obs/exemplar.h"
#include "obs/export.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace headtalk::serve {
namespace {

using Clock = std::chrono::steady_clock;

void close_quietly(int fd) {
  if (fd >= 0) ::close(fd);
}

bool send_all(int fd, const char* data, std::size_t size, int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  std::size_t sent = 0;
  while (sent < size) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (remaining.count() <= 0) return false;
    pollfd pfd{fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (ready == 0) return false;
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

int make_unix_listener(const std::filesystem::path& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string text = path.string();
  if (text.empty() || text.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("admin: bad unix socket path '" + text + "'");
  }
  std::memcpy(addr.sun_path, text.c_str(), text.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw std::runtime_error("admin: socket() failed");
  std::error_code ec;
  std::filesystem::remove(path, ec);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    close_quietly(fd);
    throw std::runtime_error("admin: cannot bind " + text + ": " + std::strerror(err));
  }
  if (::listen(fd, 16) != 0) {
    close_quietly(fd);
    throw std::runtime_error("admin: listen() failed on " + text);
  }
  return fd;
}

int make_tcp_listener(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw std::runtime_error("admin: socket() failed");
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  // Loopback only, like the scoring listener: metrics and the connection
  // table are operational data, not a public surface.
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    close_quietly(fd);
    throw std::runtime_error("admin: cannot bind 127.0.0.1:" + std::to_string(port) +
                             ": " + std::strerror(err));
  }
  if (::listen(fd, 16) != 0) {
    close_quietly(fd);
    throw std::runtime_error("admin: listen() failed on port " + std::to_string(port));
  }
  return fd;
}

const char* status_text(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

}  // namespace

SelfStats read_self_stats() {
  SelfStats out;
  // Resident set: /proc/self/statm field 2, in pages.
  if (std::FILE* statm = std::fopen("/proc/self/statm", "r")) {
    long long pages_total = 0, pages_resident = 0;
    if (std::fscanf(statm, "%lld %lld", &pages_total, &pages_resident) == 2) {
      out.rss_bytes = pages_resident * ::sysconf(_SC_PAGESIZE);
    }
    std::fclose(statm);
  }
  // Open descriptors: entries of /proc/self/fd minus ".", "..", and the
  // DIR stream's own descriptor.
  if (DIR* dir = ::opendir("/proc/self/fd")) {
    int count = 0;
    while (::readdir(dir) != nullptr) ++count;
    ::closedir(dir);
    out.open_fds = count > 3 ? count - 3 : 0;
  }
  // CPU: utime (14) + stime (15) of /proc/self/stat, in clock ticks. The
  // comm field may contain spaces but is parenthesized — scan past ')'.
  if (std::FILE* stat = std::fopen("/proc/self/stat", "r")) {
    char buffer[1024];
    if (std::fgets(buffer, sizeof buffer, stat) != nullptr) {
      if (const char* close_paren = std::strrchr(buffer, ')')) {
        unsigned long long utime = 0, stime = 0;
        // 11 fields between ')' and utime (state, ppid, ..., majflt_child).
        if (std::sscanf(close_paren + 1,
                        " %*c %*d %*d %*d %*d %*d %*u %*u %*u %*u %*u %llu %llu",
                        &utime, &stime) == 2) {
          out.cpu_seconds = static_cast<double>(utime + stime) /
                            static_cast<double>(::sysconf(_SC_CLK_TCK));
        }
      }
    }
    std::fclose(stat);
  }
  return out;
}

AdminServer::AdminServer(AdminConfig config, AdminHooks hooks)
    : config_(std::move(config)), hooks_(std::move(hooks)) {}

AdminServer::~AdminServer() { stop(); }

void AdminServer::start() {
  if (started_.exchange(true, std::memory_order_acq_rel)) {
    throw std::runtime_error("admin: start() called twice");
  }
  if (config_.socket_path.empty() && config_.tcp_port <= 0) {
    throw std::runtime_error("admin: no socket path and no port to listen on");
  }
  if (::pipe2(stop_pipe_, O_CLOEXEC | O_NONBLOCK) != 0) {
    throw std::runtime_error("admin: pipe2() failed");
  }
  if (!config_.socket_path.empty()) unix_fd_ = make_unix_listener(config_.socket_path);
  if (config_.tcp_port > 0) tcp_fd_ = make_tcp_listener(config_.tcp_port);
  started_at_ = Clock::now();
  thread_ = std::thread([this] { serve_loop(); });
  obs::log_info("admin.started", {{"socket", config_.socket_path.string()},
                                  {"tcp_port", config_.tcp_port}});
}

void AdminServer::stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (!stopping_.exchange(true, std::memory_order_acq_rel)) {
    if (stop_pipe_[1] >= 0) {
      [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], "x", 1);
    }
    if (thread_.joinable()) thread_.join();
    close_quietly(unix_fd_);
    close_quietly(tcp_fd_);
    unix_fd_ = tcp_fd_ = -1;
    close_quietly(stop_pipe_[0]);
    close_quietly(stop_pipe_[1]);
    stop_pipe_[0] = stop_pipe_[1] = -1;
    if (!config_.socket_path.empty()) {
      std::error_code ec;
      std::filesystem::remove(config_.socket_path, ec);
    }
    obs::log_info("admin.stopped", {{"requests", requests_.load()}});
  }
}

AdminResponse AdminServer::handle(std::string_view target,
                                  std::string_view method) const {
  requests_.fetch_add(1, std::memory_order_relaxed);
  // Strip any query string: /metrics?x=y scrapes like /metrics.
  if (const auto query = target.find('?'); query != std::string_view::npos) {
    target = target.substr(0, query);
  }
  AdminResponse response;
  if (target == "/reload") {
    // The only mutating endpoint: POST-only so that scrapers pointed at
    // the wrong path cannot trigger model reloads.
    if (method != "POST") {
      response.status = 405;
      response.body = "/reload requires POST\n";
      return response;
    }
    if (!hooks_.reload) {
      response.status = 404;
      response.body = "reload not available (tenant store disabled)\n";
      return response;
    }
    try {
      response.content_type = "application/json";
      response.body = hooks_.reload();
    } catch (const std::exception& error) {
      response = {500, "text/plain; charset=utf-8",
                  std::string("reload failed: ") + error.what() + "\n"};
    }
    return response;
  }
  if (method != "GET") {
    response.status = 405;
    response.body = "method not allowed\n";
    return response;
  }
  if (target == "/metrics") {
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = obs::to_prometheus(obs::snapshot());
    return response;
  }
  if (target == "/metrics.json") {
    response.content_type = "application/json";
    response.body = obs::to_snapshot_json(obs::snapshot());
    return response;
  }
  if (target == "/healthz") {
    response.body = "ok\n";
    return response;
  }
  if (target == "/readyz") {
    const bool ready = !hooks_.ready || hooks_.ready();
    response.status = ready ? 200 : 503;
    response.body = ready ? "ready\n" : "not ready\n";
    return response;
  }
  if (target == "/tenants.json") {
    if (!hooks_.tenants) {
      response.status = 404;
      response.body = "tenants not available (tenant store disabled)\n";
      return response;
    }
    response.content_type = "application/json";
    response.body = hooks_.tenants();
    return response;
  }
  if (target == "/stats.json") {
    response.content_type = "application/json";
    std::ostringstream body;
    const SelfStats self = read_self_stats();
    body << "{\"uptime_seconds\":"
         << std::chrono::duration<double>(Clock::now() - started_at_).count()
         << ",\"pid\":" << ::getpid() << ",\"rss_bytes\":" << self.rss_bytes
         << ",\"open_fds\":" << self.open_fds << ",\"cpu_seconds\":" << self.cpu_seconds
         << ",\"admin_requests\":" << requests_.load(std::memory_order_relaxed);
    if (hooks_.extra_stats) {
      const std::string extra = hooks_.extra_stats();
      if (!extra.empty()) body << ',' << extra;
    }
    body << ",\"connections\":[";
    if (hooks_.connections) {
      const auto connections = hooks_.connections();
      for (std::size_t i = 0; i < connections.size(); ++i) {
        const ConnectionInfo& c = connections[i];
        body << (i == 0 ? "" : ",") << "{\"id\":" << c.id << ",\"state\":\""
             << (c.stream_mode ? "streaming" : "unary")
             << "\",\"decisions\":" << c.decisions
             << ",\"age_seconds\":" << c.age_seconds
             << ",\"idle_seconds\":" << c.idle_seconds << '}';
      }
    }
    body << "],\"slow_utterances\":";
    obs::SlowExemplarRing::global().write_json(body);
    body << '}';
    response.body = body.str();
    return response;
  }
  response.status = 404;
  response.body = "not found\n";
  return response;
}

void AdminServer::serve_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd fds[3];
    nfds_t count = 0;
    fds[count++] = {stop_pipe_[0], POLLIN, 0};
    if (unix_fd_ >= 0) fds[count++] = {unix_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) fds[count++] = {tcp_fd_, POLLIN, 0};
    const int ready = ::poll(fds, count, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[0].revents != 0) break;
    for (nfds_t i = 1; i < count; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int client = ::accept4(fds[i].fd, nullptr, nullptr,
                                   SOCK_CLOEXEC | SOCK_NONBLOCK);
      if (client < 0) continue;
      serve_one(client);
    }
  }
}

void AdminServer::serve_one(int fd) const {
  // Read until the end of the request head (or the client closes after a
  // bare request line — curl-less scripts may just printf the line).
  std::string request;
  const auto deadline = Clock::now() + std::chrono::milliseconds(config_.io_timeout_ms);
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.find('\n') == std::string::npos) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (remaining.count() <= 0 || request.size() > 8192) break;
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (ready <= 0) {
      if (ready < 0 && errno == EINTR) continue;
      break;
    }
    char buffer[2048];
    const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
    if (n <= 0) {
      // The accepted fd is non-blocking: a spurious wakeup surfaces as
      // EAGAIN here and just means "poll again".
      if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
        continue;
      }
      break;
    }
    request.append(buffer, static_cast<std::size_t>(n));
  }

  AdminResponse response;
  const auto line_end = request.find_first_of("\r\n");
  const std::string line = request.substr(0, line_end);
  std::string_view method;
  if (line.rfind("GET ", 0) == 0) {
    method = "GET";
  } else if (line.rfind("POST ", 0) == 0) {
    method = "POST";
  }
  if (!method.empty()) {
    const std::size_t target_begin = method.size() + 1;
    const auto target_end = line.find(' ', target_begin);
    const std::string target =
        line.substr(target_begin, target_end == std::string::npos
                                      ? std::string::npos
                                      : target_end - target_begin);
    response = handle(target, method);
  } else if (line.empty()) {
    response = {400, "text/plain; charset=utf-8", "bad request\n"};
  } else {
    response = {405, "text/plain; charset=utf-8", "only GET and POST are supported\n"};
  }

  std::ostringstream head;
  head << "HTTP/1.0 " << response.status << ' ' << status_text(response.status)
       << "\r\nContent-Type: " << response.content_type
       << "\r\nContent-Length: " << response.body.size()
       << "\r\nConnection: close\r\n\r\n";
  const std::string head_text = head.str();
  if (send_all(fd, head_text.data(), head_text.size(), config_.io_timeout_ms)) {
    (void)send_all(fd, response.body.data(), response.body.size(),
                   config_.io_timeout_ms);
  }
  close_quietly(fd);
}

namespace {

AdminFetch admin_fetch_fd(int fd, std::string_view method, std::string_view target,
                          int timeout_ms) {
  AdminFetch out;
  const std::string request = std::string(method) + ' ' + std::string(target) +
                              " HTTP/1.0\r\nHost: admin\r\nContent-Length: 0\r\n\r\n";
  if (!send_all(fd, request.data(), request.size(), timeout_ms)) {
    close_quietly(fd);
    throw std::runtime_error("admin client: send failed");
  }
  std::string reply;
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (remaining.count() <= 0) {
      close_quietly(fd);
      throw std::runtime_error("admin client: timed out waiting for the response");
    }
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (ready < 0) {
      if (errno == EINTR) continue;
      close_quietly(fd);
      throw std::runtime_error("admin client: poll failed");
    }
    if (ready == 0) continue;
    char buffer[4096];
    const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      close_quietly(fd);
      throw std::runtime_error("admin client: recv failed");
    }
    if (n == 0) break;  // server closed: response complete
    reply.append(buffer, static_cast<std::size_t>(n));
  }
  close_quietly(fd);

  if (reply.rfind("HTTP/", 0) != 0) {
    throw std::runtime_error("admin client: not an HTTP response");
  }
  const auto space = reply.find(' ');
  if (space != std::string::npos) {
    out.status = std::atoi(reply.c_str() + space + 1);
  }
  const auto body = reply.find("\r\n\r\n");
  out.body = body == std::string::npos ? "" : reply.substr(body + 4);
  return out;
}

int connect_with_timeout(int fd, const sockaddr* addr, socklen_t len, int timeout_ms) {
  if (::connect(fd, addr, len) == 0) return 0;
  if (errno != EINPROGRESS && errno != EAGAIN) return -1;
  pollfd pfd{fd, POLLOUT, 0};
  if (::poll(&pfd, 1, timeout_ms) != 1) return -1;
  int error = 0;
  socklen_t error_len = sizeof error;
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &error_len) != 0) return -1;
  return error == 0 ? 0 : -1;
}

int connect_admin_unix(const std::filesystem::path& socket_path, int timeout_ms) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string text = socket_path.string();
  if (text.empty() || text.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("admin client: bad socket path '" + text + "'");
  }
  std::memcpy(addr.sun_path, text.c_str(), text.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw std::runtime_error("admin client: socket() failed");
  if (connect_with_timeout(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr,
                           timeout_ms) != 0) {
    close_quietly(fd);
    throw std::runtime_error("admin client: cannot connect to " + text);
  }
  return fd;
}

int connect_admin_tcp(int port, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw std::runtime_error("admin client: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (connect_with_timeout(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr,
                           timeout_ms) != 0) {
    close_quietly(fd);
    throw std::runtime_error("admin client: cannot connect to 127.0.0.1:" +
                             std::to_string(port));
  }
  return fd;
}

}  // namespace

AdminFetch admin_get_unix(const std::filesystem::path& socket_path,
                          std::string_view target, int timeout_ms) {
  return admin_fetch_fd(connect_admin_unix(socket_path, timeout_ms), "GET", target,
                        timeout_ms);
}

AdminFetch admin_get_tcp(int port, std::string_view target, int timeout_ms) {
  return admin_fetch_fd(connect_admin_tcp(port, timeout_ms), "GET", target, timeout_ms);
}

AdminFetch admin_post_unix(const std::filesystem::path& socket_path,
                           std::string_view target, int timeout_ms) {
  return admin_fetch_fd(connect_admin_unix(socket_path, timeout_ms), "POST", target,
                        timeout_ms);
}

AdminFetch admin_post_tcp(int port, std::string_view target, int timeout_ms) {
  return admin_fetch_fd(connect_admin_tcp(port, timeout_ms), "POST", target, timeout_ms);
}

}  // namespace headtalk::serve
