#include "serve/listener.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

namespace headtalk::serve {

void close_quietly(int fd) noexcept {
  if (fd >= 0) ::close(fd);
}

bool set_nonblocking(int fd) noexcept {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool send_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void send_and_close(int fd, const std::vector<std::uint8_t>& frame) {
  (void)::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
  close_quietly(fd);
}

int make_unix_listener(const std::filesystem::path& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string text = path.string();
  if (text.empty() || text.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("serve: bad unix socket path '" + text + "'");
  }
  std::memcpy(addr.sun_path, text.c_str(), text.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw std::runtime_error("serve: socket() failed");
  std::error_code ec;
  std::filesystem::remove(path, ec);  // replace a stale socket file
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    close_quietly(fd);
    throw std::runtime_error("serve: cannot bind " + text + ": " +
                             std::strerror(err));
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    close_quietly(fd);
    throw std::runtime_error("serve: listen() failed on " + text);
  }
  return fd;
}

int make_tcp_listener(int port, bool reuseport) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw std::runtime_error("serve: socket() failed");
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (reuseport) {
#ifdef SO_REUSEPORT
    if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) != 0) {
      const int err = errno;
      close_quietly(fd);
      throw std::runtime_error("serve: SO_REUSEPORT failed: " +
                               std::string(std::strerror(err)));
    }
#else
    close_quietly(fd);
    throw std::runtime_error("serve: SO_REUSEPORT not supported on this platform");
#endif
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    close_quietly(fd);
    throw std::runtime_error("serve: cannot bind 127.0.0.1:" + std::to_string(port) +
                             ": " + std::strerror(err));
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    close_quietly(fd);
    throw std::runtime_error("serve: listen() failed on port " + std::to_string(port));
  }
  return fd;
}

}  // namespace headtalk::serve
