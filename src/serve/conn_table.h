// Live per-connection bookkeeping shared by both serving engines.
//
// The threaded Server and the EventLoopServer both feed one of these so
// the admin plane's /stats.json connection table (and headtalk_client
// --watch's conns column) report identically whichever engine is running.
// Each row's hot fields are relaxed atomics written lock-free by the
// thread that owns the connection (a worker thread or a loop thread); the
// table mutex guards only insert/erase and the admin snapshot.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "serve/engine.h"

namespace headtalk::serve {

class ConnectionTable {
 public:
  /// Row in the live connection table. The owning thread writes the
  /// atomics lock-free; the table mutex only guards insert/erase and the
  /// admin snapshot.
  struct Slot {
    std::uint64_t id = 0;
    std::chrono::steady_clock::time_point accepted_at{};
    std::atomic<bool> stream_mode{false};
    std::atomic<std::uint64_t> decisions{0};
    std::atomic<std::int64_t> last_activity_us{0};  ///< steady-clock µs

    /// Stamps last_activity_us with "now" (bytes arrived from the client).
    void touch() noexcept;
  };

  /// Registers a new connection; the returned slot stays valid until
  /// erase(). Ids are unique per table for the process lifetime.
  [[nodiscard]] std::shared_ptr<Slot> insert();
  void erase(std::uint64_t id);

  [[nodiscard]] std::size_t size() const;
  /// Admin snapshot of every live row (ConnectionInfo shape).
  [[nodiscard]] std::vector<ConnectionInfo> snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::uint64_t, std::shared_ptr<Slot>> slots_;
  std::atomic<std::uint64_t> next_id_{0};
};

}  // namespace headtalk::serve
