// Per-connection session engine of the inference daemon.
//
// A Session is a pure state machine over the wire protocol: bytes from the
// socket go in, response bytes come out, and all socket I/O stays in the
// server core — which makes every transition unit-testable without a
// network. Streamed audio accumulates in a bounded ring (oldest frames are
// dropped once the utterance limit is reached; a wake word lives at the
// *end* of a capture), and END_OF_UTTERANCE runs the shared resident
// pipeline via its const, thread-safe scoring entry point while the
// HeadTalk session flag (open session ⇒ follow-ups skip the orientation
// check) stays per-connection.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include <string>

#include "audio/sample_buffer.h"
#include "core/pipeline.h"
#include "serve/protocol.h"
#include "stream/streaming_detector.h"

namespace headtalk::tenant {
class TenantService;
}

namespace headtalk::serve {

struct SessionLimits {
  /// Largest single AUDIO_CHUNK accepted (frames per channel).
  std::uint32_t max_chunk_frames = 1u << 16;
  /// Utterance ring capacity (frames per channel); excess drops oldest.
  std::uint32_t max_utterance_frames = 48000 * 8;
  std::uint16_t max_channels = 16;
  /// Mode the daemon scores under (HeadTalk in production).
  core::VaMode mode = core::VaMode::kHeadTalk;
  /// Segmentation config for the auto-endpoint streaming mode
  /// (STREAM_START). `stream.mode` is ignored — `mode` above governs both
  /// paths.
  stream::StreamingDetectorConfig stream{};
  /// Tenant-scoped serving (AUTH frames). Null runs the daemon tenant-less
  /// (AUTH answers AUTH_REJECT/tenants-disabled). Not owned; must outlive
  /// every session.
  tenant::TenantService* tenants = nullptr;
};

/// Fixed-capacity interleaved multichannel accumulator. Appends past the
/// capacity overwrite the oldest frames (and are counted), so a client
/// streaming more audio than the advertised utterance limit still gets the
/// most recent — wake-word-bearing — span scored.
class SampleRing {
 public:
  void reset(std::uint16_t channels, std::size_t capacity_frames, double sample_rate);

  /// `interleaved.size()` must be a multiple of the channel count.
  void append(std::span<const float> interleaved);

  [[nodiscard]] std::size_t frames() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity_frames() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t dropped_frames() const noexcept { return dropped_; }
  [[nodiscard]] std::uint16_t channels() const noexcept { return channels_; }

  /// Deinterleaves the buffered frames, oldest first.
  [[nodiscard]] audio::MultiBuffer snapshot() const;

  /// Empties the ring (capacity and geometry are kept).
  void clear() noexcept;

 private:
  std::vector<float> data_;  ///< capacity_ * channels_, ring-indexed by frame
  std::uint16_t channels_ = 0;
  std::size_t capacity_ = 0;
  std::size_t head_ = 0;  ///< frame index of the oldest buffered frame
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
  double sample_rate_ = audio::kDefaultSampleRate;
};

/// One utterance handed off for out-of-session scoring (see
/// Session::set_score_hook): the capture snapshot plus the per-connection
/// context score_capture would have been called with.
struct PendingUtterance {
  audio::MultiBuffer capture;
  bool followup = false;
  /// HeadTalk open-session flag at submit time.
  bool session_open = false;
  /// True when the completion must carry the feature vectors (AUTH'd
  /// connection — the policy engine needs them for the identity match).
  bool want_features = false;
};

class Session {
 public:
  /// The pipeline outlives the session and is shared across sessions; only
  /// its const scoring entry point is used.
  Session(const core::HeadTalkPipeline& pipeline, SessionLimits limits = {});

  /// Attaches per-thread scoring scratch (owned by the serve worker, reused
  /// across the consecutive connections that worker handles). Optional —
  /// scoring without a workspace is identical, just allocation-heavier. The
  /// workspace must outlive the session and belong to the driving thread.
  void set_workspace(core::ScoringWorkspace* workspace) noexcept {
    workspace_ = workspace;
    if (detector_) detector_->set_workspace(workspace);
  }

  /// Defers END_OF_UTTERANCE scoring to the caller: instead of scoring
  /// inline, the session snapshots the utterance, calls `hook`, and stops
  /// consuming frames until complete_score()/fail_score() delivers the
  /// verdict (score_pending() is true in between; buffered pipelined
  /// frames resume automatically on completion). This is how the
  /// event-loop engine routes utterances through the micro-batch
  /// scheduler; a null hook (the default) scores inline on the calling
  /// thread, exactly as the threaded engine always has. Streaming-mode
  /// (auto-endpoint) segments are always scored inline — after the
  /// frame-incremental refactor their finalize is O(1), so they never
  /// need to leave the loop thread.
  using ScoreHook = std::function<void(PendingUtterance&&)>;
  void set_score_hook(ScoreHook hook) { score_hook_ = std::move(hook); }

  /// True while an utterance is out with the score hook: the session
  /// buffers further input and emits nothing until the completion lands.
  [[nodiscard]] bool score_pending() const noexcept { return score_pending_; }

  /// Delivers a deferred score: applies tenant policy, emits the DECISION,
  /// and resumes any frames that were buffered while the score was out.
  /// Only valid while score_pending().
  void complete_score(const core::PipelineResult& result,
                      const core::FeatureCapture& features, double elapsed_seconds);

  /// Deferred scoring failed (the pipeline threw): emits a fatal ERROR
  /// frame; the connection should be closed after flushing the output.
  void fail_score(const std::string& message);

  /// Feeds bytes received from the client; any responses are appended to
  /// the pending output (take_output()). Returns false once the session is
  /// finished — a fatal ERROR frame was emitted and the connection should
  /// be closed after flushing the output.
  bool on_bytes(const void* data, std::size_t size);

  /// Moves out the response bytes produced so far.
  [[nodiscard]] std::vector<std::uint8_t> take_output();

  [[nodiscard]] bool finished() const noexcept { return state_ == State::kFailed; }
  [[nodiscard]] std::size_t decisions_sent() const noexcept { return decisions_; }
  [[nodiscard]] bool hello_done() const noexcept { return state_ == State::kStreaming; }
  /// True when no utterance is in flight: nothing buffered in the ring, no
  /// partial frame pending and — in streaming mode — no open segment. A
  /// drain may close an idle connection immediately; a non-idle one is
  /// owed its DECISION first.
  [[nodiscard]] bool idle() const noexcept {
    if (score_pending_) return false;
    if (stream_mode_ && detector_ && detector_->in_utterance()) return false;
    return ring_.frames() == 0 && reader_.buffered_bytes() == 0;
  }
  /// True between STREAM_START and STREAM_END: the server owns
  /// segmentation, so the connection may legitimately sit silent between
  /// utterances (the server's deadline handling keys off this).
  [[nodiscard]] bool stream_mode() const noexcept { return stream_mode_; }
  [[nodiscard]] const SessionLimits& limits() const noexcept { return limits_; }
  /// Tenant this connection AUTH'd as (empty = tenant-less).
  [[nodiscard]] const std::string& tenant_id() const noexcept { return tenant_id_; }
  [[nodiscard]] bool authenticated() const noexcept { return !tenant_id_.empty(); }

 private:
  enum class State { kAwaitHello, kStreaming, kFailed };

  /// Consumes every complete buffered frame (stops early when a deferred
  /// score goes out or the session fails).
  void drain_frames();
  void handle_frame(const Frame& frame);
  void handle_hello(const Frame& frame);
  void handle_auth(const Frame& frame);
  void handle_chunk(const Frame& frame);
  void handle_end_of_utterance(const Frame& frame);
  void handle_stream_start(const Frame& frame);
  void handle_stream_end(const Frame& frame);
  void emit_stream_decision(const stream::DecisionEvent& event);
  /// Fills the DECISION policy fields: the tenant's policy engine on an
  /// AUTH'd connection, a mirror of the pipeline verdict otherwise.
  void apply_policy(DecisionFrame& decision, const core::PipelineResult& result,
                    const core::FeatureCapture& features);
  void reject_auth(AuthRejectCode code, const std::string& message);
  void fail(ErrorCode code, const std::string& message);

  const core::HeadTalkPipeline& pipeline_;
  core::ScoringWorkspace* workspace_ = nullptr;  ///< not owned; may be null
  SessionLimits limits_;
  FrameReader reader_;
  std::vector<std::uint8_t> output_;
  SampleRing ring_;
  std::unique_ptr<stream::StreamingDetector> detector_;  ///< streaming mode only
  State state_ = State::kAwaitHello;
  std::uint16_t channels_ = 0;
  double sample_rate_ = audio::kDefaultSampleRate;
  bool stream_mode_ = false;
  bool session_open_ = false;  ///< HeadTalk open-session flag, per connection
  std::size_t decisions_ = 0;
  ScoreHook score_hook_;        ///< null = score inline (threaded engine)
  bool score_pending_ = false;  ///< an utterance is out with the hook
  /// AUTH state: the id only — the profile is re-resolved per decision
  /// from the service's live snapshot, so a hot reload takes effect for
  /// this connection's next utterance without dropping it.
  std::string tenant_id_;
};

}  // namespace headtalk::serve
