// Minimal blocking client for the inference daemon's wire protocol.
//
// Shared by headtalk_client, bench_serve_throughput, and the serve tests so
// none of them hand-roll framing over raw sockets. One BlockingClient is
// one connection; it is deliberately synchronous (connect, hello, then
// score utterances one at a time) — concurrency comes from running many
// clients, exactly as real load does.
#pragma once

#include <filesystem>
#include <stdexcept>
#include <string>

#include "audio/sample_buffer.h"
#include "serve/protocol.h"

namespace headtalk::serve {

/// Connection-level failure: refused/closed sockets, timeouts, or a
/// server-sent ERROR/BUSY frame (see code()).
class ClientError : public std::runtime_error {
 public:
  explicit ClientError(const std::string& what, bool busy = false)
      : std::runtime_error(what), busy_(busy) {}
  ClientError(ErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code), has_code_(true) {}

  /// True when the failure was a server-sent ERROR frame.
  [[nodiscard]] bool has_code() const noexcept { return has_code_; }
  [[nodiscard]] ErrorCode code() const noexcept { return code_; }
  /// True when the server answered BUSY (overloaded; retry later).
  [[nodiscard]] bool busy() const noexcept { return busy_; }

 private:
  ErrorCode code_ = ErrorCode::kInternal;
  bool has_code_ = false;
  bool busy_ = false;
};

class BlockingClient {
 public:
  [[nodiscard]] static BlockingClient connect_unix(const std::filesystem::path& path);
  [[nodiscard]] static BlockingClient connect_tcp(int port);  ///< 127.0.0.1 only

  BlockingClient(BlockingClient&& other) noexcept;
  BlockingClient& operator=(BlockingClient&& other) noexcept;
  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;
  ~BlockingClient();

  /// Sends HELLO and waits for HELLO_OK. Throws ClientError on ERROR or
  /// BUSY (code() tells which) and on connection failures.
  HelloOk hello(const Hello& hello = {});

  /// Outcome of auth(): exactly one of `ok`/`reject` is meaningful
  /// (`accepted` tells which). An AUTH_REJECT is a non-fatal status — the
  /// connection remains usable tenant-less — so it is returned, not thrown.
  struct AuthResult {
    bool accepted = false;
    AuthOk ok;
    AuthReject reject;
  };

  /// Binds the connection to a tenant (AUTH → AUTH_OK | AUTH_REJECT).
  /// Call after hello() and before any streaming. Throws ClientError on
  /// connection failures or a fatal server ERROR.
  AuthResult auth(std::string_view tenant_id);

  /// Streams one capture as AUDIO_CHUNKs of `chunk_frames` frames,
  /// sends END_OF_UTTERANCE, and waits for the DECISION. The capture's
  /// channel count must match the HELLO.
  DecisionFrame score(const audio::MultiBuffer& capture, bool followup = false,
                      std::size_t chunk_frames = 4800);

  // ---- auto-endpoint streaming (server-side segmentation) ----

  /// Enters streaming mode (STREAM_START → STREAM_OK): the server finds
  /// the utterances itself; no END_OF_UTTERANCE is sent.
  StreamOk start_stream();

  /// Sends continuous audio as AUDIO_CHUNKs and appends any
  /// STREAM_DECISIONs the server has pushed so far (without blocking for
  /// more). Only valid between start_stream() and end_stream().
  void stream_audio(const audio::MultiBuffer& chunk,
                    std::vector<StreamDecisionFrame>& decisions,
                    std::size_t chunk_frames = 4800);

  /// Leaves streaming mode: sends STREAM_END, appends the remaining
  /// STREAM_DECISIONs, and returns the STREAM_SUMMARY.
  StreamSummary end_stream(std::vector<StreamDecisionFrame>& decisions,
                           int timeout_ms = -1);

  // Low-level escape hatches for protocol tests.
  void send_bytes(const void* data, std::size_t size);
  /// Blocks up to `timeout_ms` (-1 = forever) for one complete frame.
  /// Throws ClientError on timeout or when the server closes first.
  [[nodiscard]] Frame read_frame(int timeout_ms = -1);

  void close() noexcept;
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

 private:
  explicit BlockingClient(int fd) : fd_(fd) {}

  /// One complete frame if any is available right now, else nullopt
  /// (never blocks). Throws ClientError on a closed/misbehaving server.
  [[nodiscard]] std::optional<Frame> try_read_frame();

  int fd_ = -1;
  std::uint16_t channels_ = 0;
  FrameReader reader_;
};

}  // namespace headtalk::serve
