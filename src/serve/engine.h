// Engine-neutral serving contract.
//
// headtalk_serve can run its connections through two interchangeable
// cores — the thread-per-connection `Server` (serve/server.h) and the
// epoll reactor `EventLoopServer` (serve/eventloop/eventloop_server.h).
// Everything that sits above a serving core (the admin plane, the shard
// front's fd passing, signal handling in the daemon, smoke scripts) talks
// to this interface so the two engines stay behaviourally interchangeable:
// same stats shape, same per-connection table, same drain contract.
#pragma once

#include <cstdint>
#include <vector>

namespace headtalk::serve {

/// Point-in-time counters for tests and the daemon's exit summary.
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t busy_rejections = 0;
  std::uint64_t decisions = 0;
  std::uint64_t session_errors = 0;
  std::uint64_t deadline_expirations = 0;
  std::size_t active_connections = 0;
  /// score_batch dispatches (event-loop engine; 0 under the threaded one).
  std::uint64_t batches_scored = 0;
  /// Utterances submitted to the batch scheduler and not yet scored
  /// (event-loop engine; always 0 under the threaded one, which scores
  /// inline on the connection's worker thread).
  std::uint64_t scores_in_flight = 0;
};

/// One live connection as the admin plane's /stats.json reports it.
struct ConnectionInfo {
  std::uint64_t id = 0;        ///< accept-order id, unique per server run
  bool stream_mode = false;    ///< between STREAM_START and STREAM_END
  std::uint64_t decisions = 0;
  double age_seconds = 0.0;    ///< since accept
  double idle_seconds = 0.0;   ///< since the last bytes from the client
};

/// The serving-core surface both engines implement. Lifecycle:
/// start() binds and spawns threads; request_stop() is async-signal-safe
/// and triggers a graceful drain (in-flight utterances still get their
/// DECISIONs); wait() blocks until a stop was requested, then drains;
/// stop() drains and joins (idempotent, implies request_stop()).
class ServerEngine {
 public:
  virtual ~ServerEngine() = default;

  virtual void start() = 0;
  virtual void request_stop() noexcept = 0;
  virtual void wait() = 0;
  virtual void stop() = 0;

  [[nodiscard]] virtual bool running() const noexcept = 0;
  /// True once a stop/drain has been requested — the admin plane's
  /// /readyz flips to 503 on this, before in-flight utterances finish.
  [[nodiscard]] virtual bool draining() const noexcept = 0;
  [[nodiscard]] virtual ServerStats stats() const = 0;
  /// Snapshot of the live per-connection table (never blocks scoring).
  [[nodiscard]] virtual std::vector<ConnectionInfo> connections() const = 0;

  /// Hands the engine an already-accepted connection fd (the shard front's
  /// SCM_RIGHTS path). The engine owns the fd from here on — it is served
  /// like a locally-accepted connection, answered BUSY + closed when the
  /// engine is saturated, or closed outright when the engine is stopping.
  virtual void adopt_connection(int fd) = 0;
};

}  // namespace headtalk::serve
