// String <-> enum mappings for the headtalk_* command-line tools.
#pragma once

#include <string_view>

#include "room/mic_array.h"
#include "sim/spec.h"

namespace headtalk::cli {

/// "lab" / "home". Throws std::invalid_argument on anything else.
[[nodiscard]] sim::RoomId parse_room(std::string_view text);

/// "D1" / "D2" / "D3" (case-insensitive).
[[nodiscard]] room::DeviceId parse_device(std::string_view text);

/// "computer" / "amazon" / "hey-assistant".
[[nodiscard]] speech::WakeWord parse_wake_word(std::string_view text);

/// "none" / "sony" / "phone" / "tv".
[[nodiscard]] sim::ReplaySource parse_replay(std::string_view text);

/// "L" / "M" / "R" radial + distance in metres, e.g. "M3".
[[nodiscard]] sim::GridLocation parse_location(std::string_view text);

}  // namespace headtalk::cli
