#include "cli/args.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "obs/export.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace headtalk::cli {

void ArgParser::add_flag(const std::string& name, const std::string& help,
                         std::optional<std::string> default_value) {
  declarations_.emplace_back(name, Flag{help, std::move(default_value), false});
}

void ArgParser::add_switch(const std::string& name, const std::string& help) {
  declarations_.emplace_back(name, Flag{help, std::nullopt, true});
}

const ArgParser::Flag* ArgParser::find(const std::string& name) const {
  for (const auto& [flag_name, flag] : declarations_) {
    if (flag_name == name) return &flag;
  }
  return nullptr;
}

namespace {

/// Plain Levenshtein distance; flag names are short, so the quadratic
/// rolling-row version is plenty.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t substitution = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitution});
    }
  }
  return row[b.size()];
}

}  // namespace

std::string ArgParser::suggest(const std::string& name) const {
  std::string best;
  std::size_t best_distance = std::string::npos;
  for (const auto& [flag_name, flag] : declarations_) {
    const std::size_t distance = edit_distance(name, flag_name);
    if (distance < best_distance) {
      best_distance = distance;
      best = flag_name;
    }
  }
  // Only offer a close match: a typo is 1-2 edits, not a different word.
  const std::size_t threshold = name.size() <= 5 ? 1 : 2;
  if (!best.empty() && best_distance <= threshold) return best;
  return {};
}

void ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token == "--help" || token == "-h") {
      help_requested_ = true;
      return;
    }
    if (token.rfind("--", 0) != 0) {
      throw ArgsError("unexpected positional argument '" + token + "'");
    }
    std::string name = token;
    std::optional<std::string> inline_value;
    if (const auto eq = token.find('='); eq != std::string::npos) {
      name = token.substr(0, eq);
      inline_value = token.substr(eq + 1);
    }
    const Flag* flag = find(name);
    if (flag == nullptr) {
      std::string message = "unknown flag '" + name + "'";
      if (const std::string closest = suggest(name); !closest.empty()) {
        message += " (did you mean '" + closest + "'?)";
      }
      message += "; run with --help for the flag list";
      throw ArgsError(message);
    }
    if (flag->is_switch) {
      if (inline_value) throw ArgsError("switch '" + name + "' takes no value");
      values_[name] = "1";
      continue;
    }
    if (inline_value) {
      values_[name] = *inline_value;
      continue;
    }
    if (i + 1 >= argc) throw ArgsError("flag '" + name + "' needs a value");
    values_[name] = argv[++i];
  }
}

bool ArgParser::has(const std::string& name) const {
  if (values_.contains(name)) return true;
  const Flag* flag = find(name);
  return flag != nullptr && flag->default_value.has_value();
}

std::string ArgParser::get(const std::string& name) const {
  if (const auto it = values_.find(name); it != values_.end()) return it->second;
  const Flag* flag = find(name);
  if (flag == nullptr) throw ArgsError("flag '" + name + "' was never declared");
  if (flag->default_value) return *flag->default_value;
  throw ArgsError("required flag '" + name + "' missing");
}

double ArgParser::get_double(const std::string& name) const {
  const std::string text = get(name);
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    throw ArgsError("flag '" + name + "' expects a number, got '" + text + "'");
  }
  return value;
}

long ArgParser::get_int(const std::string& name) const {
  const std::string text = get(name);
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    throw ArgsError("flag '" + name + "' expects an integer, got '" + text + "'");
  }
  return value;
}

bool ArgParser::get_switch(const std::string& name) const {
  return values_.contains(name);
}

std::string ArgParser::usage() const {
  std::ostringstream out;
  out << program_ << " — " << description_ << "\n\nflags:\n";
  for (const auto& [name, flag] : declarations_) {
    out << "  " << name;
    if (!flag.is_switch) {
      out << " <value>";
      if (flag.default_value) out << " (default: " << *flag.default_value << ")";
    }
    out << "\n      " << flag.help << "\n";
  }
  out << "  --help\n      show this text\n";
  return out.str();
}

void add_jobs_flag(ArgParser& args) {
  args.add_flag("--jobs", "worker threads (0 = auto: $HEADTALK_JOBS or all cores)", "0");
}

unsigned jobs_from(const ArgParser& args) {
  const long requested = args.get_int("--jobs");
  if (requested < 0) throw ArgsError("--jobs must be >= 0");
  return util::resolve_jobs(static_cast<unsigned>(requested));
}

void add_obs_flags(ArgParser& args) {
  args.add_flag("--metrics-out", "write a JSON metrics dump to this file on exit", "");
  args.add_flag("--trace-out",
                "record spans and write Chrome trace-event JSON to this file on exit",
                "");
}

ObsSession::ObsSession(const ArgParser& args)
    : metrics_path_(args.get("--metrics-out")), trace_path_(args.get("--trace-out")) {
  if (!trace_path_.empty()) obs::set_tracing_enabled(true);
}

ObsSession::~ObsSession() {
  if (!trace_path_.empty()) {
    obs::set_tracing_enabled(false);
    if (obs::Tracer::global().write_chrome_trace_file(trace_path_)) {
      obs::log_info("obs.trace.written",
                    {{"path", trace_path_},
                     {"spans", obs::Tracer::global().span_count()},
                     {"dropped", obs::Tracer::global().dropped_count()}});
    }
  }
  if (!metrics_path_.empty()) {
    // The mergeable snapshot form (obs/export.h), not the quantile dump:
    // a file written at exit and a live /metrics.json scrape are the same
    // bytes, so shard aggregation can mix both sources.
    if (obs::write_snapshot_json_file(metrics_path_, obs::snapshot())) {
      obs::log_info("obs.metrics.written", {{"path", metrics_path_}});
    }
  }
}

}  // namespace headtalk::cli
