#include "cli/names.h"

#include <algorithm>
#include <cctype>
#include <stdexcept>
#include <string>

namespace headtalk::cli {
namespace {

std::string lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

[[noreturn]] void bad(const char* what, std::string_view text) {
  throw std::invalid_argument(std::string("unknown ") + what + " '" + std::string(text) + "'");
}

}  // namespace

sim::RoomId parse_room(std::string_view text) {
  const auto t = lower(text);
  if (t == "lab") return sim::RoomId::kLab;
  if (t == "home") return sim::RoomId::kHome;
  bad("room", text);
}

room::DeviceId parse_device(std::string_view text) {
  const auto t = lower(text);
  if (t == "d1") return room::DeviceId::kD1;
  if (t == "d2") return room::DeviceId::kD2;
  if (t == "d3") return room::DeviceId::kD3;
  bad("device", text);
}

speech::WakeWord parse_wake_word(std::string_view text) {
  const auto t = lower(text);
  if (t == "computer") return speech::WakeWord::kComputer;
  if (t == "amazon") return speech::WakeWord::kAmazon;
  if (t == "hey-assistant" || t == "heyassistant" || t == "hey_assistant") {
    return speech::WakeWord::kHeyAssistant;
  }
  bad("wake word", text);
}

sim::ReplaySource parse_replay(std::string_view text) {
  const auto t = lower(text);
  if (t == "none" || t == "live" || t == "human") return sim::ReplaySource::kNone;
  if (t == "sony" || t == "high-end") return sim::ReplaySource::kHighEnd;
  if (t == "phone" || t == "smartphone") return sim::ReplaySource::kSmartphone;
  if (t == "tv" || t == "television") return sim::ReplaySource::kTelevision;
  bad("replay source", text);
}

sim::GridLocation parse_location(std::string_view text) {
  if (text.size() < 2) bad("grid location", text);
  sim::GridLocation location;
  switch (std::toupper(static_cast<unsigned char>(text[0]))) {
    case 'L':
      location.radial = sim::GridRadial::kLeft;
      break;
    case 'M':
      location.radial = sim::GridRadial::kMiddle;
      break;
    case 'R':
      location.radial = sim::GridRadial::kRight;
      break;
    default:
      bad("grid location", text);
  }
  try {
    location.distance_m = std::stod(std::string(text.substr(1)));
  } catch (const std::exception&) {
    bad("grid location", text);
  }
  if (location.distance_m <= 0.0 || location.distance_m > 8.0) {
    bad("grid location", text);
  }
  return location;
}

}  // namespace headtalk::cli
