// Minimal command-line flag parser for the headtalk_* tools.
//
// Supports `--name value`, `--name=value`, and boolean `--name` switches,
// with typed accessors, defaults, required flags, and an auto-generated
// usage string. Unknown flags are an error (typos must not silently run a
// 20-minute simulation with default settings).
#pragma once

#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace headtalk::cli {

class ArgsError : public std::runtime_error {
 public:
  explicit ArgsError(const std::string& what) : std::runtime_error(what) {}
};

class ArgParser {
 public:
  ArgParser(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  /// Declares a string flag. Call all declarations before parse().
  void add_flag(const std::string& name, const std::string& help,
                std::optional<std::string> default_value = std::nullopt);
  /// Declares a boolean switch (false unless present).
  void add_switch(const std::string& name, const std::string& help);

  /// Parses argv. Throws ArgsError on unknown flags, missing values, or
  /// missing required flags. `--help` sets help_requested() instead.
  void parse(int argc, const char* const* argv);

  [[nodiscard]] bool help_requested() const noexcept { return help_requested_; }

  /// Typed accessors (only valid after parse()). get() throws ArgsError if
  /// the flag was neither given nor given a default.
  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] long get_int(const std::string& name) const;
  [[nodiscard]] bool get_switch(const std::string& name) const;
  [[nodiscard]] bool has(const std::string& name) const;

  /// Human-readable usage text.
  [[nodiscard]] std::string usage() const;

 private:
  struct Flag {
    std::string help;
    std::optional<std::string> default_value;
    bool is_switch = false;
  };

  std::string program_;
  std::string description_;
  std::vector<std::pair<std::string, Flag>> declarations_;
  std::map<std::string, std::string> values_;
  bool help_requested_ = false;

  [[nodiscard]] const Flag* find(const std::string& name) const;
  /// Closest declared flag name within a small edit distance ("" if none);
  /// powers the did-you-mean hint on unknown-flag errors.
  [[nodiscard]] std::string suggest(const std::string& name) const;
};

/// Declares the shared `--jobs` flag (default "0" = auto: $HEADTALK_JOBS,
/// else all hardware threads). Used by every tool that renders or extracts
/// features in bulk.
void add_jobs_flag(ArgParser& args);

/// Resolves a declared `--jobs` flag to a concrete worker count (>= 1).
/// Throws ArgsError on negative values.
[[nodiscard]] unsigned jobs_from(const ArgParser& args);

/// Declares the shared observability flags: `--metrics-out FILE` (JSON
/// metrics dump on exit) and `--trace-out FILE` (enables span recording
/// and writes Chrome trace-event JSON on exit).
void add_obs_flags(ArgParser& args);

/// Applies the observability flags declared by add_obs_flags(). Construct
/// one after parse(); the constructor turns tracing on when `--trace-out`
/// was given, and the destructor writes the requested dump files.
class ObsSession {
 public:
  explicit ObsSession(const ArgParser& args);
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;
  ~ObsSession();

 private:
  std::string metrics_path_;
  std::string trace_path_;
};

}  // namespace headtalk::cli
