// Wake-command preprocessing (the "Preprocessing" block of Fig. 2):
// fifth-order Butterworth band-pass keeping 100 Hz – 16 kHz, plus
// energy-based trimming of leading/trailing silence.
#pragma once

#include "audio/sample_buffer.h"

namespace headtalk::core {

struct PreprocessConfig {
  int filter_order = 5;
  double low_hz = 100.0;
  double high_hz = 16000.0;
  /// Trim threshold relative to the capture's peak RMS (dB); <= -120
  /// disables trimming.
  double trim_threshold_db = -35.0;
  double trim_frame_ms = 10.0;
  /// Padding kept around the detected utterance.
  double trim_pad_ms = 40.0;
};

/// Returns the denoised (band-passed, trimmed) capture. All channels are
/// trimmed to the same span so inter-channel delays are preserved.
[[nodiscard]] audio::MultiBuffer preprocess(const audio::MultiBuffer& capture,
                                            const PreprocessConfig& config = {});

/// Mono overload (used by the liveness path, which needs one channel).
[[nodiscard]] audio::Buffer preprocess(const audio::Buffer& capture,
                                       const PreprocessConfig& config = {});

}  // namespace headtalk::core
