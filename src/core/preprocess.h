// Wake-command preprocessing (the "Preprocessing" block of Fig. 2):
// fifth-order Butterworth band-pass keeping 100 Hz – 16 kHz, plus
// energy-based trimming of leading/trailing silence.
#pragma once

#include "audio/sample_buffer.h"

namespace headtalk::core {

struct PreprocessConfig {
  int filter_order = 5;
  double low_hz = 100.0;
  double high_hz = 16000.0;
  /// Trim threshold relative to the capture's peak RMS (dB); <= -120
  /// disables trimming.
  double trim_threshold_db = -35.0;
  double trim_frame_ms = 10.0;
  /// Padding kept around the detected utterance.
  double trim_pad_ms = 40.0;
  /// Absolute silence floor (dBFS, frame RMS). When the loudest frame sits
  /// below it the capture holds no utterance, and the relative threshold
  /// would otherwise latch onto noise wiggle — the capture is returned
  /// band-passed but untrimmed.
  double silence_floor_db = -65.0;
  /// Shortest detected span (ms, before padding) worth trimming to; a
  /// narrower one is a noise blip, not speech — even the shortest wake
  /// word syllable outlasts it — so no trimming happens.
  double min_active_ms = 60.0;
};

/// Returns the denoised (band-passed, trimmed) capture. All channels are
/// trimmed to the same span so inter-channel delays are preserved.
[[nodiscard]] audio::MultiBuffer preprocess(const audio::MultiBuffer& capture,
                                            const PreprocessConfig& config = {});

/// Mono overload (used by the liveness path, which needs one channel).
[[nodiscard]] audio::Buffer preprocess(const audio::Buffer& capture,
                                       const PreprocessConfig& config = {});

}  // namespace headtalk::core
