#include "core/incremental_extractor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "audio/gain.h"
#include "audio/resample.h"
#include "dsp/simd/dispatch.h"
#include "dsp/spectral.h"
#include "dsp/srp.h"
#include "dsp/stats.h"
#include "dsp/stft.h"
#include "obs/metrics.h"

namespace headtalk::core {
namespace {

// Same PHAT regularizer as gcc_phat's default; the coherence sampling
// parameters match PairwiseGccOptions' defaults (the batch extractor only
// ever overrode the floor).
constexpr double kPhatEpsilon = 1e-12;
constexpr std::size_t kCoherenceStride = 4;
constexpr std::size_t kCoherenceBlock = 64;

// Sliding directivity analysis window: ~85 ms of mixdown history per
// block (4096 samples at 48 kHz → 11.7 Hz bins, comfortably finer than
// the 15 Hz chunks of the 20-band low-band statistics).
constexpr double kDirectivityWindowSeconds = 0.08;

obs::Counter& pruned_counter() {
  static obs::Counter& c = obs::Registry::global().counter("dsp.srp.pairs_pruned");
  return c;
}

// Mirrors the block count pair_coherence produces for a given bin count:
// sampled every stride-th bin in groups of `block`, ragged tails shorter
// than block/2 folded away.
std::size_t coherence_block_count(std::size_t bins) {
  std::size_t blocks = 0;
  std::size_t k = 0;
  while (k < bins) {
    std::size_t count = 0;
    for (; count < kCoherenceBlock && k < bins; k += kCoherenceStride, ++count) {
    }
    if (count < kCoherenceBlock / 2) break;
    ++blocks;
  }
  return blocks;
}

// First-maximum argmax over the lag window, as CorrelationSequence::peak_lag.
int window_peak_lag(std::span<const double> values, int max_lag) {
  if (values.empty()) return 0;
  const auto it = std::max_element(values.begin(), values.end());
  return static_cast<int>(std::distance(values.begin(), it)) - max_lag;
}

}  // namespace

void IncrementalExtractor::begin(const IncrementalExtractorConfig& config,
                                 std::size_t channels, double sample_rate) {
  if (channels == 0) {
    throw std::invalid_argument("IncrementalExtractor: need at least one channel");
  }
  if (sample_rate <= 0.0) {
    throw std::invalid_argument("IncrementalExtractor: bad sample rate");
  }
  config_ = config;
  channels_ = channels;
  sample_rate_ = sample_rate;
  open_ = true;
  finalized_ = false;
  pushed_ = 0;

  // Preprocessing: the same band-pass design as core::preprocess, realized
  // as per-channel stateful cascades so chunks filter continuously.
  const double high = std::min(config_.preprocess.high_hz, 0.45 * sample_rate);
  bandpass_.clear();
  bandpass_.reserve(channels);
  for (std::size_t c = 0; c < channels; ++c) {
    bandpass_.push_back(dsp::butterworth_bandpass(config_.preprocess.filter_order,
                                                  config_.preprocess.low_hz, high,
                                                  sample_rate));
  }
  block_len_ = static_cast<std::size_t>(
      std::max(1.0, config_.block_ms * sample_rate / 1000.0));

  orientation_on_ = config_.enable_orientation && channels >= 2;
  max_lag_ = 0;
  pair_count_ = 0;
  std::size_t block_fft = std::max<std::size_t>(2, dsp::next_pow2(block_len_));
  if (orientation_on_) {
    max_lag_ = config_.orientation.max_lag > 0
                   ? config_.orientation.max_lag
                   : dsp::srp_max_lag(config_.orientation.max_mic_distance_m,
                                      sample_rate, config_.orientation.speed_of_sound);
    pair_count_ = channels * (channels - 1) / 2;
    // The per-block transform needs the linear-correlation padding and the
    // full lag window, exactly like the batch pairwise FFT sizing.
    const auto lag = static_cast<std::size_t>(max_lag_);
    block_fft = std::max<std::size_t>(
        2, dsp::next_pow2(std::max(block_len_ + lag + 1, 2 * lag + 1)));
  }

  dsp::RollingStft::Config blocks;
  blocks.channels = channels;
  blocks.frame_size = block_len_;
  blocks.hop_size = block_len_;
  blocks.fft_size = block_fft;
  blocks.window = dsp::WindowType::kRectangular;
  blocks_.reset(blocks);

  envelope_.clear();
  active_begin_ = active_end_ = 0;

  coherence_blocks_ = orientation_on_ ? coherence_block_count(block_fft / 2 + 1) : 0;
  gcc_blocks_.clear();
  coherence_partials_.clear();
  cross_.fft_size = block_fft;
  cross_.bins.assign(block_fft / 2 + 1, dsp::Complex{});

  dir_fft_ = std::max<std::size_t>(
      2, dsp::next_pow2(static_cast<std::size_t>(sample_rate * kDirectivityWindowSeconds)));
  const double top_hz =
      std::max(config_.orientation.high_band_hi, config_.orientation.low_band_hi);
  dir_bins_ = std::min(dir_fft_ / 2 + 1,
                       static_cast<std::size_t>(
                           std::ceil(top_hz * static_cast<double>(dir_fft_) / sample_rate)) +
                           2);
  mix_history_.clear();
  dir_blocks_.clear();

  // Liveness: pick the resampling path once per stream. Integer decimation
  // (the pipeline's 48 kHz → 16 kHz hop) and the passthrough stream
  // sample-by-sample; exotic ratios fall back to buffering the filtered
  // channel and resampling once at finalize.
  liveness_path_ = LivenessPath::kOff;
  decimate_step_ = 1;
  decimate_phase_ = 0;
  live_sum_ = live_sum_sq_ = 0.0;
  live_count_ = 0;
  live_spectra_.clear();
  live_valid_.clear();
  resampled_upto_.clear();
  live_cum_sum_.clear();
  live_cum_sum_sq_.clear();
  live_raw_.clear();
  if (config_.enable_liveness) {
    const double target = config_.liveness.model_sample_rate;
    if (target <= 0.0) {
      throw std::invalid_argument("IncrementalExtractor: bad liveness sample rate");
    }
    const double factor = sample_rate / target;
    const double rounded = std::round(factor);
    if (sample_rate == target) {
      liveness_path_ = LivenessPath::kPassthrough;
    } else if (factor > 1.0 && std::abs(factor - rounded) < 1e-9) {
      liveness_path_ = LivenessPath::kDecimate;
      decimate_step_ = static_cast<std::size_t>(rounded);
      antialias_ = dsp::butterworth_lowpass(10, 0.45 * target, sample_rate);
    } else {
      liveness_path_ = LivenessPath::kBuffered;
    }
    if (liveness_path_ != LivenessPath::kBuffered) {
      dsp::RollingStft::Config stft;
      stft.channels = 1;
      stft.frame_size = config_.liveness.stft_frame;
      stft.hop_size = config_.liveness.stft_hop;
      stft.window = dsp::WindowType::kHann;
      live_stft_.reset(stft);
      live_bins_ = live_stft_.fft_size() / 2 + 1;
      // FFT of the analysis window itself: finalize subtracts the segment
      // mean from every stored frame spectrum as mu * W(f) (linearity), so
      // normalization can happen after the fact without reprocessing.
      live_window_spectrum_ = dsp::rfft_half(
          dsp::shared_window(dsp::WindowType::kHann, config_.liveness.stft_frame),
          live_stft_.fft_size());
    }
  }
}

void IncrementalExtractor::push(const audio::MultiBuffer& chunk) {
  if (!open_) throw std::logic_error("IncrementalExtractor: push before begin");
  if (finalized_) throw std::logic_error("IncrementalExtractor: push after finalize");
  if (chunk.channel_count() == 0 && chunk.frames() == 0) return;
  if (chunk.channel_count() != channels_) {
    throw std::invalid_argument("IncrementalExtractor: channel count mismatch");
  }
  if (chunk.frames() == 0) return;
  if (chunk.sample_rate() != sample_rate_) {
    throw std::invalid_argument("IncrementalExtractor: sample rate mismatch");
  }
  for (std::size_t c = 0; c < channels_; ++c) {
    const auto samples = chunk.channel(c).samples();
    filter_scratch_.assign(samples.begin(), samples.end());
    bandpass_[c].process(filter_scratch_);
    blocks_.push(c, filter_scratch_);
  }
  pushed_ += chunk.frames();
  dsp::RollingStftFrame frame;
  while (blocks_.pop(frame)) process_block(frame);
}

void IncrementalExtractor::accumulate_pair_block(const dsp::HalfSpectrum& x,
                                                 const dsp::HalfSpectrum& y,
                                                 double* coherence_acc) {
  // Partial sums of the block-averaged coherence estimate, in exactly the
  // bin grouping of pair_coherence; finalize forms |Σxy*|²/(Σ|x|²Σ|y|²)
  // from the per-segment sums so the estimate is Welch-averaged over the
  // selected blocks.
  const std::size_t bins = std::min(x.bins.size(), y.bins.size());
  std::size_t k = 0;
  std::size_t cb = 0;
  while (k < bins && cb < coherence_blocks_) {
    double cr = 0.0, ci = 0.0, px = 0.0, py = 0.0;
    std::size_t count = 0;
    for (; count < kCoherenceBlock && k < bins; k += kCoherenceStride, ++count) {
      const double xr = x.bins[k].real();
      const double xi = x.bins[k].imag();
      const double yr = y.bins[k].real();
      const double yi = y.bins[k].imag();
      cr += xr * yr + xi * yi;
      ci += xi * yr - xr * yi;
      px += xr * xr + xi * xi;
      py += yr * yr + yi * yi;
    }
    if (count < kCoherenceBlock / 2) break;
    double* acc = coherence_acc + cb * 4;
    acc[0] += cr;
    acc[1] += ci;
    acc[2] += px;
    acc[3] += py;
    ++cb;
  }
}

void IncrementalExtractor::process_block(const dsp::RollingStftFrame& frame) {
  const std::size_t valid = frame.valid;

  // Block RMS envelope across channels, as preprocess's active_span frames
  // (the block framer's rectangular window leaves the samples untouched).
  double acc = 0.0;
  for (std::size_t c = 0; c < channels_; ++c) {
    const auto& samples = frame.windowed[c];
    for (std::size_t i = 0; i < valid; ++i) acc += samples[i] * samples[i];
  }
  envelope_.push_back(
      std::sqrt(acc / static_cast<double>(std::max<std::size_t>(1, valid) * channels_)));

  if (orientation_on_) {
    const std::size_t window = 2 * static_cast<std::size_t>(max_lag_) + 1;
    const std::size_t bins = cross_.bins.size();
    const std::size_t coh_stride = coherence_blocks_ * 4;
    const std::size_t coh_base = coherence_partials_.size();
    coherence_partials_.resize(coh_base + pair_count_ * coh_stride, 0.0);
    const auto& kernels = dsp::simd::kernels();
    std::size_t pair = 0;
    for (std::size_t i = 0; i + 1 < channels_; ++i) {
      for (std::size_t j = i + 1; j < channels_; ++j, ++pair) {
        accumulate_pair_block(frame.spectra[i], frame.spectra[j],
                              coherence_partials_.data() + coh_base + pair * coh_stride);
        kernels.cross_spectrum(
            reinterpret_cast<const double*>(frame.spectra[i].bins.data()),
            reinterpret_cast<const double*>(frame.spectra[j].bins.data()),
            reinterpret_cast<double*>(cross_.bins.data()), bins,
            /*phat=*/true, kPhatEpsilon);
        dsp::irfft_half_window_into(cross_, max_lag_, lag_window_, fft_scratch_);
        gcc_blocks_.insert(gcc_blocks_.end(), lag_window_.begin(),
                           lag_window_.begin() + static_cast<std::ptrdiff_t>(window));
      }
    }

    // Directivity: the truncated spectrum of the sliding mixdown window.
    // Only the bins the HLBR/banded features read are stored per block.
    for (std::size_t i = 0; i < valid; ++i) {
      double mix = 0.0;
      for (std::size_t c = 0; c < channels_; ++c) mix += frame.windowed[c][i];
      mix_history_.push_back(mix / static_cast<double>(channels_));
    }
    if (mix_history_.size() > dir_fft_) {
      mix_history_.erase(mix_history_.begin(),
                         mix_history_.begin() + static_cast<std::ptrdiff_t>(
                                                    mix_history_.size() - dir_fft_));
    }
    dsp::rfft_half_into(mix_history_, dir_fft_, dir_spectrum_, fft_scratch_);
    for (std::size_t k = 0; k < dir_bins_; ++k) {
      dir_blocks_.push_back(std::abs(dir_spectrum_.bins[k]));
    }
  }

  if (liveness_path_ != LivenessPath::kOff) {
    feed_liveness({frame.windowed[0].data(), valid});
    if (liveness_path_ != LivenessPath::kBuffered) {
      resampled_upto_.push_back(live_count_);
      live_cum_sum_.push_back(live_sum_);
      live_cum_sum_sq_.push_back(live_sum_sq_);
    }
  }
}

void IncrementalExtractor::feed_liveness(std::span<const audio::Sample> samples) {
  switch (liveness_path_) {
    case LivenessPath::kOff:
      return;
    case LivenessPath::kBuffered:
      live_raw_.insert(live_raw_.end(), samples.begin(), samples.end());
      return;
    case LivenessPath::kPassthrough:
      for (const double x : samples) {
        live_sum_ += x;
        live_sum_sq_ += x * x;
      }
      live_count_ += samples.size();
      live_stft_.push(0, samples);
      break;
    case LivenessPath::kDecimate: {
      // Streaming form of the batch fast path: stateful anti-alias cascade
      // followed by phase-0 sample keeping (out[m] = filtered[m*step]).
      std::vector<audio::Sample> emitted;
      emitted.reserve(samples.size() / decimate_step_ + 1);
      for (const double x : samples) {
        const double y = antialias_.process(x);
        if (decimate_phase_ == 0) {
          emitted.push_back(y);
          live_sum_ += y;
          live_sum_sq_ += y * y;
        }
        decimate_phase_ = (decimate_phase_ + 1) % decimate_step_;
      }
      live_count_ += emitted.size();
      live_stft_.push(0, emitted);
      break;
    }
  }
  drain_liveness_frames();
}

void IncrementalExtractor::drain_liveness_frames() {
  dsp::RollingStftFrame frame;
  while (live_stft_.pop(frame)) {
    const auto& bins = frame.spectra[0].bins;
    live_spectra_.insert(live_spectra_.end(), bins.begin(), bins.end());
    live_valid_.push_back(frame.valid);
  }
}

void IncrementalExtractor::finalize_shared() {
  if (finalized_) return;
  if (!open_) throw std::logic_error("IncrementalExtractor: finalize before begin");
  blocks_.finish();
  dsp::RollingStftFrame frame;
  while (blocks_.pop(frame)) process_block(frame);
  if (liveness_path_ == LivenessPath::kPassthrough ||
      liveness_path_ == LivenessPath::kDecimate) {
    live_stft_.finish();
    drain_liveness_frames();
  }
  select_active_blocks();
  finalized_ = true;
}

void IncrementalExtractor::select_active_blocks() {
  // Block-granular form of preprocess's active_span: same relative
  // threshold, silence floor, minimum span, and padding rules — applied
  // to the per-block envelope instead of 10 ms frames.
  const std::size_t blocks = envelope_.size();
  active_begin_ = 0;
  active_end_ = blocks;
  if (blocks == 0 || config_.preprocess.trim_threshold_db <= -120.0) return;
  const double peak = *std::max_element(envelope_.begin(), envelope_.end());
  if (peak <= audio::db_to_amplitude(config_.preprocess.silence_floor_db)) return;
  const double threshold =
      peak * audio::db_to_amplitude(config_.preprocess.trim_threshold_db);
  std::size_t first = blocks, last = 0;
  for (std::size_t b = 0; b < blocks; ++b) {
    if (envelope_[b] >= threshold) {
      first = std::min(first, b);
      last = b;
    }
  }
  if (first > last) return;
  const auto min_active_samples = static_cast<std::size_t>(
      config_.preprocess.min_active_ms * sample_rate_ / 1000.0);
  if ((last - first + 1) * block_len_ < min_active_samples) return;
  const auto pad_samples = static_cast<std::size_t>(
      config_.preprocess.trim_pad_ms * sample_rate_ / 1000.0);
  const std::size_t pad_blocks = (pad_samples + block_len_ - 1) / block_len_;
  active_begin_ = first > pad_blocks ? first - pad_blocks : 0;
  active_end_ = std::min(blocks, last + 1 + pad_blocks);
}

ml::FeatureVector IncrementalExtractor::finalize_orientation() {
  finalize_shared();
  if (channels_ < 2) {
    throw std::invalid_argument("IncrementalExtractor: need >= 2 channels");
  }
  if (!orientation_on_) {
    throw std::logic_error("IncrementalExtractor: orientation stage disabled");
  }
  const std::size_t window = 2 * static_cast<std::size_t>(max_lag_) + 1;
  const std::size_t count = active_end_ - active_begin_;

  ml::FeatureVector features;

  // Mean lag window per pair over the selected blocks, then the segment
  // coherence from the summed cross/power partials. A segment with no
  // selected blocks carries no pairwise evidence: its coherence reads 0,
  // so with a floor set every pair prunes to the neutral zero window.
  std::vector<std::vector<double>> pair_windows(pair_count_,
                                                std::vector<double>(window, 0.0));
  std::vector<bool> pruned(pair_count_, false);
  const std::size_t coh_stride = coherence_blocks_ * 4;
  for (std::size_t p = 0; p < pair_count_; ++p) {
    auto& values = pair_windows[p];
    for (std::size_t b = active_begin_; b < active_end_; ++b) {
      const double* src = gcc_blocks_.data() + (b * pair_count_ + p) * window;
      for (std::size_t k = 0; k < window; ++k) values[k] += src[k];
    }
    if (count > 0) {
      const double inv = 1.0 / static_cast<double>(count);
      for (auto& v : values) v *= inv;
    }
    if (config_.orientation.coherence_floor > 0.0) {
      double total = 0.0;
      std::size_t cblocks = 0;
      if (count > 0) {
        for (std::size_t cb = 0; cb < coherence_blocks_; ++cb) {
          double cr = 0.0, ci = 0.0, px = 0.0, py = 0.0;
          for (std::size_t b = active_begin_; b < active_end_; ++b) {
            const double* acc =
                coherence_partials_.data() + b * pair_count_ * coh_stride + p * coh_stride + cb * 4;
            cr += acc[0];
            ci += acc[1];
            px += acc[2];
            py += acc[3];
          }
          total += (cr * cr + ci * ci) / (px * py + 1e-300);
          ++cblocks;
        }
      }
      const double coherence =
          count == 0 ? 0.0
                     : (cblocks > 0 ? total / static_cast<double>(cblocks) : 1.0);
      if (coherence < config_.orientation.coherence_floor) {
        pruned[p] = true;
        std::fill(values.begin(), values.end(), 0.0);
        pruned_counter().increment();
      }
    }
  }

  std::vector<double> srp(window, 0.0);
  const auto& accumulate = dsp::simd::kernels().accumulate;
  for (std::size_t p = 0; p < pair_count_; ++p) {
    if (pruned[p]) continue;
    accumulate(srp.data(), pair_windows[p].data(), window);
  }

  const auto peaks = dsp::top_peaks(srp, config_.orientation.srp_peaks);
  features.insert(features.end(), peaks.begin(), peaks.end());
  const auto srp_stats = dsp::summary_statistics(srp);
  features.insert(features.end(), srp_stats.begin(), srp_stats.end());

  for (const auto& values : pair_windows) {
    features.insert(features.end(), values.begin(), values.end());
  }
  for (std::size_t p = 0; p < pair_count_; ++p) {
    features.push_back(pruned[p] ? 0.0
                                 : static_cast<double>(
                                       window_peak_lag(pair_windows[p], max_lag_)));
  }
  for (const auto& values : pair_windows) {
    const auto stats = dsp::summary_statistics(values);
    features.insert(features.end(), stats.begin(), stats.end());
  }

  // Directivity from the mean of the per-block sliding-window spectra,
  // normalized to the speech-band mean level exactly as the batch path.
  std::vector<double> magnitude(dir_fft_ / 2 + 1, 0.0);
  if (count > 0) {
    for (std::size_t b = active_begin_; b < active_end_; ++b) {
      const double* src = dir_blocks_.data() + b * dir_bins_;
      for (std::size_t k = 0; k < dir_bins_; ++k) magnitude[k] += src[k];
    }
    const double inv = 1.0 / static_cast<double>(count);
    for (std::size_t k = 0; k < dir_bins_; ++k) magnitude[k] *= inv;
  }
  const double reference =
      dsp::band_mean_magnitude(magnitude, dir_fft_, sample_rate_,
                               config_.orientation.low_band_lo,
                               config_.orientation.high_band_hi);
  if (reference > 0.0) {
    for (auto& m : magnitude) m /= reference;
  }
  features.push_back(dsp::high_low_band_ratio(
      magnitude, dir_fft_, sample_rate_, config_.orientation.low_band_lo,
      config_.orientation.low_band_hi, config_.orientation.high_band_lo,
      config_.orientation.high_band_hi));
  const auto banded = dsp::banded_statistics(
      magnitude, dir_fft_, sample_rate_, config_.orientation.low_band_lo,
      config_.orientation.low_band_hi, config_.orientation.low_band_chunks);
  features.insert(features.end(), banded.begin(), banded.end());

  return features;
}

ml::FeatureVector IncrementalExtractor::finalize_liveness() {
  finalize_shared();
  if (liveness_path_ == LivenessPath::kOff) {
    throw std::logic_error("IncrementalExtractor: liveness stage disabled");
  }
  return liveness_path_ == LivenessPath::kBuffered ? liveness_from_buffered()
                                                   : liveness_from_streamed();
}

ml::FeatureVector IncrementalExtractor::liveness_from_streamed() const {
  const std::size_t bins = live_bins_;
  std::vector<double> mean_mag(bins, 0.0);

  const std::size_t b0 = active_begin_, b1 = active_end_;
  const std::size_t r0 = b0 == 0 ? 0 : resampled_upto_[b0 - 1];
  const std::size_t r1 = b1 == 0 ? 0 : resampled_upto_[b1 - 1];
  const std::size_t total = live_count_;
  const std::size_t n = r1 - r0;
  const double sum =
      (b1 ? live_cum_sum_[b1 - 1] : 0.0) - (b0 ? live_cum_sum_[b0 - 1] : 0.0);
  const double sum_sq =
      (b1 ? live_cum_sum_sq_[b1 - 1] : 0.0) - (b0 ? live_cum_sum_sq_[b0 - 1] : 0.0);

  if (n > 0) {
    const double mu = sum / static_cast<double>(n);
    const double var = sum_sq / static_cast<double>(n) - mu * mu;
    // var <= 0 keeps the zero spectrum, matching the batch convention of
    // zeroing a constant signal in normalize_zero_mean_unit_variance.
    if (var > 0.0) {
      const double inv_sigma = 1.0 / std::sqrt(var);
      const std::size_t frame = live_stft_.frame_size();
      const std::size_t hop = live_stft_.hop_size();
      // Frames fully inside the trimmed span; the zero-padded tail frames
      // only count when the span runs to the stream end (where the batch
      // framing would have produced them too).
      std::vector<std::size_t> selected;
      for (std::size_t f = 0; f < live_valid_.size(); ++f) {
        const std::size_t start = f * hop;
        if (start >= r0 && start < r1 && (start + frame <= r1 || r1 == total)) {
          selected.push_back(f);
        }
      }
      if (selected.empty()) {
        for (std::size_t f = 0; f < live_valid_.size(); ++f) selected.push_back(f);
      }
      if (!selected.empty()) {
        for (const std::size_t f : selected) {
          const dsp::Complex* spec = live_spectra_.data() + f * bins;
          // Mean removal by linearity: FFT(w·(x−mu)) = FFT(w·x) − mu·W,
          // where W is the window's own spectrum (truncated for padded
          // tail frames, whose valid region is shorter than the window).
          dsp::HalfSpectrum truncated;
          const dsp::HalfSpectrum* w = &live_window_spectrum_;
          if (live_valid_[f] < frame) {
            const auto& coeffs =
                dsp::shared_window(dsp::WindowType::kHann, frame);
            const std::vector<audio::Sample> head(
                coeffs.begin(),
                coeffs.begin() + static_cast<std::ptrdiff_t>(live_valid_[f]));
            truncated = dsp::rfft_half(head, live_stft_.fft_size());
            w = &truncated;
          }
          for (std::size_t k = 0; k < bins; ++k) {
            const double re = spec[k].real() - mu * w->bins[k].real();
            const double im = spec[k].imag() - mu * w->bins[k].imag();
            mean_mag[k] += std::sqrt(re * re + im * im) * inv_sigma;
          }
        }
        const double inv = 1.0 / static_cast<double>(selected.size());
        for (auto& m : mean_mag) m *= inv;
      }
    }
  }

  ml::FeatureVector features;
  liveness_features_from(mean_mag, live_stft_.fft_size(), features);
  return features;
}

ml::FeatureVector IncrementalExtractor::liveness_from_buffered() const {
  // Non-integer resampling ratios have no streaming decimator; the
  // filtered channel was buffered, so finalize runs the batch-style chain
  // on the trimmed span in one shot. Chunk invariance still holds — the
  // buffer contents never depend on push() boundaries.
  const std::size_t t0 = std::min(live_raw_.size(), active_begin_ * block_len_);
  const std::size_t t1 = std::min(live_raw_.size(), active_end_ * block_len_);
  audio::Buffer segment(
      std::vector<audio::Sample>(live_raw_.begin() + static_cast<std::ptrdiff_t>(t0),
                                 live_raw_.begin() + static_cast<std::ptrdiff_t>(t1)),
      sample_rate_);
  audio::Buffer x = audio::resample(segment, config_.liveness.model_sample_rate);
  audio::normalize_zero_mean_unit_variance(x);
  dsp::StftConfig stft_config;
  stft_config.frame_size = config_.liveness.stft_frame;
  stft_config.hop_size = config_.liveness.stft_hop;
  const auto spectrogram = dsp::stft(x, stft_config);
  auto mean_mag = spectrogram.mean_magnitude();
  const std::size_t nfft =
      spectrogram.fft_size != 0
          ? spectrogram.fft_size
          : std::max<std::size_t>(2, dsp::next_pow2(config_.liveness.stft_frame));
  if (mean_mag.size() != nfft / 2 + 1) mean_mag.assign(nfft / 2 + 1, 0.0);
  ml::FeatureVector features;
  liveness_features_from(mean_mag, nfft, features);
  return features;
}

void IncrementalExtractor::liveness_features_from(std::span<const double> mean_magnitude,
                                                  std::size_t fft_size,
                                                  ml::FeatureVector& out) const {
  const double fs = config_.liveness.model_sample_rate;
  out.reserve(config_.liveness.log_bands + 6);
  const auto bands =
      dsp::log_band_energies(mean_magnitude, fft_size, fs, config_.liveness.band_lo,
                             config_.liveness.band_hi, config_.liveness.log_bands);
  out.insert(out.end(), bands.begin(), bands.end());
  out.push_back(dsp::spectral_slope_db_per_khz(mean_magnitude, fft_size, fs, 2000.0, 7900.0));
  out.push_back(dsp::spectral_slope_db_per_khz(mean_magnitude, fft_size, fs, 500.0, 4000.0));
  out.push_back(dsp::spectral_centroid(mean_magnitude, fft_size, fs));
  out.push_back(dsp::spectral_flatness(mean_magnitude, fft_size, fs, 4000.0, 7900.0));
  out.push_back(dsp::spectral_rolloff(mean_magnitude, fft_size, fs, 0.95));
  const double low = dsp::band_energy(mean_magnitude, fft_size, fs, 100.0, 4000.0);
  const double high = dsp::band_energy(mean_magnitude, fft_size, fs, 4000.0, 7900.0);
  out.push_back(low > 0.0 ? high / low : 0.0);
}

}  // namespace headtalk::core
