// Facing / non-facing classifier: feature standardization + one of the four
// model families the paper compares (§IV-A). SVM wins the comparison and is
// the default.
#pragma once

#include <memory>

#include "core/facing.h"
#include "ml/classifier.h"
#include "ml/forest.h"
#include "ml/knn.h"
#include "ml/scaler.h"
#include "ml/svm.h"
#include "ml/tree.h"

namespace headtalk::core {

enum class ClassifierKind { kSvm, kRandomForest, kDecisionTree, kKnn };

[[nodiscard]] std::string_view classifier_kind_name(ClassifierKind kind);

struct OrientationClassifierConfig {
  ClassifierKind kind = ClassifierKind::kSvm;
  ml::SvmConfig svm{};
  /// When true, (C, gamma) are selected by cross-validated grid search on
  /// the training data (the paper's LIBSVM protocol, §IV-A). Costs extra
  /// training time; off by default.
  bool tune_svm = false;
  ml::ForestConfig forest{};
  ml::TreeConfig tree{.max_depth = 5};  // the paper's DT setting
  ml::KnnConfig knn{.k = 3};            // the paper's kNN setting
};

class OrientationClassifier {
 public:
  explicit OrientationClassifier(OrientationClassifierConfig config = {});

  /// Trains on orientation features labelled kLabelFacing / kLabelNonFacing.
  void train(const ml::Dataset& data);

  [[nodiscard]] bool trained() const noexcept { return model_ != nullptr; }

  /// Predicted label (kLabelFacing or kLabelNonFacing).
  [[nodiscard]] int predict(const ml::FeatureVector& features) const;
  [[nodiscard]] bool is_facing(const ml::FeatureVector& features) const {
    return predict(features) == kLabelFacing;
  }
  /// Continuous confidence toward facing (model-specific scale).
  [[nodiscard]] double score(const ml::FeatureVector& features) const;

  [[nodiscard]] const OrientationClassifierConfig& config() const noexcept {
    return config_;
  }

  /// Persists the trained classifier (kind tag + scaler + model); all four
  /// model families round-trip.
  void save(std::ostream& out) const;
  static OrientationClassifier load(std::istream& in);

 private:
  OrientationClassifierConfig config_;
  ml::StandardScaler scaler_;
  std::unique_ptr<ml::Classifier> model_;
};

}  // namespace headtalk::core
