#include "core/orientation_classifier.h"

#include <stdexcept>

#include "ml/grid_search.h"
#include "ml/serialize.h"

namespace headtalk::core {

std::string_view classifier_kind_name(ClassifierKind kind) {
  switch (kind) {
    case ClassifierKind::kSvm:
      return "SVM";
    case ClassifierKind::kRandomForest:
      return "RF";
    case ClassifierKind::kDecisionTree:
      return "DT";
    case ClassifierKind::kKnn:
      return "kNN";
  }
  return "?";
}

OrientationClassifier::OrientationClassifier(OrientationClassifierConfig config)
    : config_(std::move(config)) {}

void OrientationClassifier::train(const ml::Dataset& data) {
  if (data.empty()) {
    throw std::invalid_argument("OrientationClassifier::train: empty dataset");
  }
  const auto scaled = scaler_.fit_transform(data);
  switch (config_.kind) {
    case ClassifierKind::kSvm: {
      ml::SvmConfig svm_config = config_.svm;
      if (config_.tune_svm) {
        svm_config = ml::svm_grid_search(scaled).best;
      }
      model_ = std::make_unique<ml::Svm>(svm_config);
      break;
    }
    case ClassifierKind::kRandomForest:
      model_ = std::make_unique<ml::RandomForest>(config_.forest);
      break;
    case ClassifierKind::kDecisionTree:
      model_ = std::make_unique<ml::DecisionTree>(config_.tree);
      break;
    case ClassifierKind::kKnn:
      model_ = std::make_unique<ml::Knn>(config_.knn);
      break;
  }
  model_->fit(scaled);
}

int OrientationClassifier::predict(const ml::FeatureVector& features) const {
  if (!trained()) throw std::logic_error("OrientationClassifier: not trained");
  return model_->predict(scaler_.transform(features));
}

double OrientationClassifier::score(const ml::FeatureVector& features) const {
  if (!trained()) throw std::logic_error("OrientationClassifier: not trained");
  return model_->decision_value(scaler_.transform(features));
}

void OrientationClassifier::save(std::ostream& out) const {
  if (!trained()) throw std::logic_error("OrientationClassifier::save: not trained");
  ml::io::write_u32(out, static_cast<std::uint32_t>(config_.kind));
  scaler_.save(out);
  switch (config_.kind) {
    case ClassifierKind::kSvm:
      static_cast<const ml::Svm&>(*model_).save(out);
      break;
    case ClassifierKind::kRandomForest:
      static_cast<const ml::RandomForest&>(*model_).save(out);
      break;
    case ClassifierKind::kDecisionTree:
      static_cast<const ml::DecisionTree&>(*model_).save(out);
      break;
    case ClassifierKind::kKnn:
      static_cast<const ml::Knn&>(*model_).save(out);
      break;
  }
}

OrientationClassifier OrientationClassifier::load(std::istream& in) {
  OrientationClassifier classifier;
  const auto kind = static_cast<ClassifierKind>(ml::io::read_u32(in));
  classifier.config_.kind = kind;
  classifier.scaler_ = ml::StandardScaler::load(in);
  switch (kind) {
    case ClassifierKind::kSvm:
      classifier.model_ = std::make_unique<ml::Svm>(ml::Svm::load(in));
      break;
    case ClassifierKind::kRandomForest:
      classifier.model_ = std::make_unique<ml::RandomForest>(ml::RandomForest::load(in));
      break;
    case ClassifierKind::kDecisionTree:
      classifier.model_ = std::make_unique<ml::DecisionTree>(ml::DecisionTree::load(in));
      break;
    case ClassifierKind::kKnn:
      classifier.model_ = std::make_unique<ml::Knn>(ml::Knn::load(in));
      break;
    default:
      throw ml::SerializationError("OrientationClassifier: unknown model kind");
  }
  return classifier;
}

}  // namespace headtalk::core
