// Orientation feature extraction (§III-B3).
//
// From a preprocessed multichannel capture:
//   Speech reverberation features —
//     * weighted SRP-PHAT over the array's physical lag window: the top-3
//       peak values (Fig. 6b shows 3-4 reverberation peaks) and the five
//       summary statistics of the sequence;
//     * per-microphone-pair GCC-PHAT sequences (all lags) + the TDoA of
//       each pair (for a 4-channel array and a 13-sample window:
//       6 x 27 + 6 = 168 values, matching the paper's count) and summary
//       statistics of each pair's sequence.
//   Speech directivity features —
//     * high/low band ratio HLBR (low band 100–400 Hz, high 500–4000 Hz);
//     * the low band split into 20 chunks with {mean, RMS, std} each.
#pragma once

#include <vector>

#include "audio/sample_buffer.h"
#include "core/preprocess.h"
#include "ml/dataset.h"

namespace headtalk::core {

class ScoringWorkspace;

struct OrientationFeatureConfig {
  /// Lag window half-width in samples; 0 = derive from the mic spacing as
  /// ceil(d * fs / c) (§III-B3: ±12/13/10 samples for D1/D2/D3 at 48 kHz).
  int max_lag = 0;
  double max_mic_distance_m = 0.09;  ///< used when max_lag == 0
  double speed_of_sound = 340.0;     ///< the paper's value
  /// Directivity bands.
  double low_band_lo = 100.0, low_band_hi = 400.0;
  double high_band_lo = 500.0, high_band_hi = 4000.0;
  std::size_t low_band_chunks = 20;
  /// Number of top SRP peaks kept.
  std::size_t srp_peaks = 3;
  /// Mean cross-spectral coherence below which a microphone pair is pruned
  /// from the GCC/SRP block (its sequence zeroed, its TDoA reported as 0).
  /// A dead or disconnected capsule decorrelates against every live
  /// channel (block coherence ~1/64 ≈ 0.016) while live reverberant pairs
  /// measure 0.2-0.4 on rendered captures, so 0.05 rejects only pairs that
  /// carry no directional information anyway. Set 0 to disable the
  /// estimate entirely.
  double coherence_floor = 0.05;
};

class OrientationFeatureExtractor {
 public:
  explicit OrientationFeatureExtractor(OrientationFeatureConfig config = {})
      : config_(config) {}

  /// Extracts the feature vector from a capture. The capture is band-passed
  /// and silence-trimmed internally (default PreprocessConfig) by the
  /// incremental operator this call delegates to, so the result is
  /// identical to streaming the same capture frame by frame. The feature
  /// length depends only on the channel count and lag window, so captures
  /// from the same device configuration are mutually consistent.
  ///
  /// `workspace` (optional) supplies reusable scratch buffers; passing one
  /// makes repeated extractions allocation-free after warm-up and never
  /// changes the result — features are bit-identical with or without it.
  [[nodiscard]] ml::FeatureVector extract(const audio::MultiBuffer& capture,
                                          ScoringWorkspace* workspace = nullptr) const;

  /// extract() with explicit preprocessing parameters (filter band and
  /// trim rules) — what the pipeline and trainers use so batch and
  /// streamed scoring share one preprocessing definition.
  [[nodiscard]] ml::FeatureVector extract(const audio::MultiBuffer& capture,
                                          const PreprocessConfig& preprocess,
                                          ScoringWorkspace* workspace = nullptr) const;

  /// Feature dimension for a given channel count.
  [[nodiscard]] std::size_t dimension(std::size_t channels) const;

  [[nodiscard]] int effective_max_lag(double sample_rate) const;

  [[nodiscard]] const OrientationFeatureConfig& config() const noexcept { return config_; }

 private:
  OrientationFeatureConfig config_;
};

}  // namespace headtalk::core
