// Frame-incremental feature extraction: the streaming form of the
// preprocess + orientation + liveness feature chain.
//
// The batch extractors see a finished segment and recompute everything
// from scratch — O(segment) work after the endpointer closes. This
// operator instead consumes audio in arbitrary chunks as it arrives and
// folds each hop-aligned analysis block into running accumulators:
//
//   * band-pass biquad state carried per channel (the Fig. 2 preprocessing
//     filter, applied sample-by-sample);
//   * per-block GCC-PHAT lag windows and cross-spectral coherence partial
//     sums for every microphone pair (SRP and the pair features are means
//     over the selected blocks at finalize);
//   * per-block directivity spectra of a sliding mixdown window (HLBR and
//     the banded low-band statistics);
//   * a streaming 16 kHz decimator feeding a rolling STFT plus running
//     Σx/Σx² for the liveness normalization.
//
// Silence trimming happens lazily: every block also records its RMS
// envelope, and finalize selects the active block span with the same
// threshold rules as core::preprocess (at block rather than 10 ms
// granularity). Pre-roll blocks may therefore be accumulated before the
// utterance is confirmed and post-roll blocks after it ends — the trim
// keeps the decision independent of how generously the endpointer fed.
//
// The block sequence — and hence every finalized feature — is invariant
// to push() chunking: state transitions depend only on cumulative sample
// counts. The batch extractors delegate to this operator, so streamed and
// pre-segmented scoring agree bit for bit by construction.
//
// Lifecycle: begin() → push()* → finalize_*() (either order, idempotent)
// → begin() again. Not thread-safe; one operator per stream/thread.
#pragma once

#include <cstddef>
#include <vector>

#include "audio/sample_buffer.h"
#include "core/liveness_features.h"
#include "core/orientation_features.h"
#include "core/preprocess.h"
#include "dsp/biquad.h"
#include "dsp/fft.h"
#include "dsp/rolling_stft.h"
#include "ml/dataset.h"

namespace headtalk::core {

struct IncrementalExtractorConfig {
  PreprocessConfig preprocess{};
  OrientationFeatureConfig orientation{};
  LivenessFeatureConfig liveness{};
  /// Disable a stage to skip its per-block work and storage entirely
  /// (the single-feature wrapper extractors each enable only their own).
  bool enable_orientation = true;
  bool enable_liveness = true;
  /// Analysis block length (ms): the envelope/trim granularity and the
  /// update cadence of every accumulator. 20 ms matches the streaming
  /// VAD frame, so one endpointer frame is one accumulator update.
  double block_ms = 20.0;
};

class IncrementalExtractor {
 public:
  IncrementalExtractor() = default;

  /// Starts a new segment. Resets all accumulators and filter state.
  void begin(const IncrementalExtractorConfig& config, std::size_t channels,
             double sample_rate);

  /// Feeds the next chunk of the segment (any length, including empty).
  /// Channel count and sample rate must match begin().
  void push(const audio::MultiBuffer& chunk);

  /// Finalizes and returns the liveness feature vector (layout identical
  /// to LivenessFeatureExtractor::dimension()). Constant-time in the
  /// segment length up to the trim scan and the per-block reductions.
  [[nodiscard]] ml::FeatureVector finalize_liveness();

  /// Finalizes and returns the orientation feature vector (layout
  /// identical to OrientationFeatureExtractor::dimension(channels)).
  /// Throws std::invalid_argument when begun with fewer than 2 channels.
  [[nodiscard]] ml::FeatureVector finalize_orientation();

  [[nodiscard]] bool open() const noexcept { return open_; }
  [[nodiscard]] std::size_t channels() const noexcept { return channels_; }
  [[nodiscard]] double sample_rate() const noexcept { return sample_rate_; }
  /// Samples accepted per channel since begin().
  [[nodiscard]] std::size_t samples_pushed() const noexcept { return pushed_; }
  /// Analysis blocks fully accumulated so far.
  [[nodiscard]] std::size_t blocks_accumulated() const noexcept {
    return envelope_.size();
  }
  [[nodiscard]] const IncrementalExtractorConfig& config() const noexcept {
    return config_;
  }

 private:
  enum class LivenessPath { kOff, kPassthrough, kDecimate, kBuffered };

  void process_block(const dsp::RollingStftFrame& frame);
  void accumulate_pair_block(const dsp::HalfSpectrum& x, const dsp::HalfSpectrum& y,
                             double* coherence_acc);
  void feed_liveness(std::span<const audio::Sample> samples);
  void drain_liveness_frames();
  void finalize_shared();
  void select_active_blocks();
  [[nodiscard]] ml::FeatureVector liveness_from_streamed() const;
  [[nodiscard]] ml::FeatureVector liveness_from_buffered() const;
  void liveness_features_from(std::span<const double> mean_magnitude,
                              std::size_t fft_size, ml::FeatureVector& out) const;

  IncrementalExtractorConfig config_{};
  std::size_t channels_ = 0;
  double sample_rate_ = 0.0;
  bool open_ = false;
  bool finalized_ = false;

  // Preprocessing: per-channel band-pass state and the block framer.
  std::vector<dsp::BiquadCascade> bandpass_;
  std::vector<audio::Sample> filter_scratch_;
  dsp::RollingStft blocks_;
  std::size_t block_len_ = 0;
  std::size_t pushed_ = 0;

  // Per-block envelope (RMS across channels), for the lazy trim.
  std::vector<double> envelope_;
  std::size_t active_begin_ = 0, active_end_ = 0;  ///< selected [b0, b1)

  // Orientation accumulators.
  bool orientation_on_ = false;
  int max_lag_ = 0;
  std::size_t pair_count_ = 0;
  std::size_t coherence_blocks_ = 0;  ///< sampled-bin blocks per pair_coherence pass
  std::vector<double> gcc_blocks_;    ///< [block][pair][2*max_lag+1]
  std::vector<double> coherence_partials_;  ///< [block][pair][cblock][cr,ci,px,py]
  dsp::HalfSpectrum cross_;
  std::vector<double> lag_window_;
  dsp::FftScratch fft_scratch_;

  // Directivity: sliding mixdown window → per-block truncated spectrum.
  std::size_t dir_fft_ = 0;
  std::size_t dir_bins_ = 0;  ///< bins stored per block (covers the feature bands)
  std::vector<audio::Sample> mix_history_;
  dsp::HalfSpectrum dir_spectrum_;
  std::vector<double> dir_blocks_;  ///< [block][dir_bins_]

  // Liveness accumulators.
  LivenessPath liveness_path_ = LivenessPath::kOff;
  dsp::BiquadCascade antialias_;
  std::size_t decimate_step_ = 1;
  std::size_t decimate_phase_ = 0;
  dsp::RollingStft live_stft_;
  std::size_t live_bins_ = 0;
  std::vector<dsp::Complex> live_spectra_;  ///< [frame][live_bins_]
  std::vector<std::size_t> live_valid_;     ///< valid samples per stored frame
  double live_sum_ = 0.0, live_sum_sq_ = 0.0;
  std::size_t live_count_ = 0;  ///< resampled samples emitted so far
  std::vector<std::size_t> resampled_upto_;  ///< cumulative live_count_ per block
  std::vector<double> live_cum_sum_, live_cum_sum_sq_;  ///< cumulative per block
  std::vector<audio::Sample> live_raw_;  ///< kBuffered: filtered channel 0
  dsp::HalfSpectrum live_window_spectrum_;  ///< FFT of the full analysis window
};

}  // namespace headtalk::core
