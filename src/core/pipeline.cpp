#include "core/pipeline.h"

#include <stdexcept>

#include "core/scoring_workspace.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace headtalk::core {
namespace {

// Registry lookups happen once; the references stay valid for the process
// lifetime (the registry never destroys instruments).
void count_decision(Decision decision) {
  static obs::Counter& accepted =
      obs::Registry::global().counter("pipeline.decision.accepted");
  static obs::Counter& muted =
      obs::Registry::global().counter("pipeline.decision.rejected_muted");
  static obs::Counter& replay =
      obs::Registry::global().counter("pipeline.decision.rejected_replay");
  static obs::Counter& not_facing =
      obs::Registry::global().counter("pipeline.decision.rejected_not_facing");
  switch (decision) {
    case Decision::kAccepted:
      accepted.increment();
      break;
    case Decision::kRejectedMuted:
      muted.increment();
      break;
    case Decision::kRejectedReplay:
      replay.increment();
      break;
    case Decision::kRejectedNotFacing:
      not_facing.increment();
      break;
  }
}

}  // namespace

std::string_view va_mode_name(VaMode mode) {
  switch (mode) {
    case VaMode::kNormal:
      return "normal";
    case VaMode::kMute:
      return "mute";
    case VaMode::kHeadTalk:
      return "headtalk";
  }
  return "?";
}

std::string_view decision_name(Decision decision) {
  switch (decision) {
    case Decision::kAccepted:
      return "accepted";
    case Decision::kRejectedMuted:
      return "rejected-muted";
    case Decision::kRejectedReplay:
      return "rejected-replay";
    case Decision::kRejectedNotFacing:
      return "rejected-not-facing";
  }
  return "?";
}

HeadTalkPipeline::HeadTalkPipeline(OrientationClassifier orientation,
                                   LivenessDetector liveness, PipelineConfig config)
    : orientation_(std::move(orientation)),
      liveness_(std::move(liveness)),
      config_(std::move(config)),
      orientation_extractor_(config_.orientation_features),
      liveness_extractor_(config_.liveness_features) {
  if (!orientation_.trained() || !liveness_.trained()) {
    throw std::invalid_argument("HeadTalkPipeline: both detectors must be trained");
  }
}

void HeadTalkPipeline::set_mode(VaMode mode) noexcept {
  mode_ = mode;
  session_active_ = false;
}

PipelineResult HeadTalkPipeline::evaluate(const audio::MultiBuffer& capture,
                                          bool followup) {
  const PipelineResult result =
      score_capture(capture, mode_, followup, session_active_);
  session_active_ = result.session_open_after;
  return result;
}

PipelineResult HeadTalkPipeline::score_capture(const audio::MultiBuffer& capture,
                                               VaMode mode, bool followup,
                                               bool session_active,
                                               ScoringWorkspace* workspace) const {
  obs::ScopedSpan span("pipeline.evaluate");
  static obs::Histogram& evaluate_seconds =
      obs::Registry::global().histogram("pipeline.evaluate_seconds");
  obs::Timer timer(&evaluate_seconds);
  const PipelineResult result =
      evaluate_stages(capture, mode, followup, session_active, workspace);
  count_decision(result.decision);
  return result;
}

std::vector<PipelineResult> HeadTalkPipeline::score_batch(
    std::span<const audio::MultiBuffer> captures, VaMode mode,
    ScoringWorkspace* workspace) const {
  // Every capture in a batch is an independent wake word; the shared
  // workspace (caller's or a batch-local one) is what makes the batch
  // cheaper than isolated calls, not any cross-capture state.
  ScoringWorkspace local;
  ScoringWorkspace* ws = workspace != nullptr ? workspace : &local;
  std::vector<PipelineResult> results;
  results.reserve(captures.size());
  for (const auto& capture : captures) {
    results.push_back(
        score_capture(capture, mode, /*followup=*/false, /*session_active=*/false, ws));
  }
  return results;
}

PipelineResult HeadTalkPipeline::evaluate_stages(const audio::MultiBuffer& capture,
                                                 VaMode mode, bool followup,
                                                 bool session_active,
                                                 ScoringWorkspace* workspace) const {
  PipelineResult result;
  result.session_open_after = session_active;
  if (mode == VaMode::kMute) {
    result.decision = Decision::kRejectedMuted;
    return result;
  }
  if (mode == VaMode::kNormal) {
    result.decision = Decision::kAccepted;
    return result;
  }

  // --- HeadTalk mode ---
  const auto denoised = [&] {
    obs::ScopedSpan stage("pipeline.preprocess");
    return preprocess(capture, config_.preprocess);
  }();

  // Liveness first (Fig. 2): a replayed wake word is rejected outright,
  // whether or not a session is open — a session belongs to a human.
  result.liveness_checked = true;
  const auto liveness_features = [&] {
    obs::ScopedSpan stage("pipeline.liveness_features");
    return liveness_extractor_.extract(denoised.channel(0), workspace);
  }();
  {
    obs::ScopedSpan stage("pipeline.liveness_score");
    result.liveness_score = liveness_.score(liveness_features);
  }
  result.live = result.liveness_score >= liveness_.config().threshold;
  if (!result.live) {
    result.decision = Decision::kRejectedReplay;
    result.session_open_after = false;
    return result;
  }

  if (followup && session_active) {
    result.via_open_session = true;
    result.decision = Decision::kAccepted;
    return result;
  }

  result.orientation_checked = true;
  const auto features = [&] {
    obs::ScopedSpan stage("pipeline.orientation_features");
    return orientation_extractor_.extract(denoised, workspace);
  }();
  {
    obs::ScopedSpan stage("pipeline.orientation_score");
    result.orientation_score = orientation_.score(features);
    result.facing = orientation_.is_facing(features);
  }
  if (!result.facing) {
    result.decision = Decision::kRejectedNotFacing;
    return result;
  }
  result.decision = Decision::kAccepted;
  result.session_open_after = true;
  return result;
}

PipelineResult HeadTalkPipeline::process_wake_word(const audio::MultiBuffer& capture) {
  return evaluate(capture, /*followup=*/false);
}

PipelineResult HeadTalkPipeline::process_followup(const audio::MultiBuffer& capture) {
  return evaluate(capture, /*followup=*/true);
}

}  // namespace headtalk::core
