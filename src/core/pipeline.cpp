#include "core/pipeline.h"

#include <stdexcept>

namespace headtalk::core {

std::string_view va_mode_name(VaMode mode) {
  switch (mode) {
    case VaMode::kNormal:
      return "normal";
    case VaMode::kMute:
      return "mute";
    case VaMode::kHeadTalk:
      return "headtalk";
  }
  return "?";
}

std::string_view decision_name(Decision decision) {
  switch (decision) {
    case Decision::kAccepted:
      return "accepted";
    case Decision::kRejectedMuted:
      return "rejected-muted";
    case Decision::kRejectedReplay:
      return "rejected-replay";
    case Decision::kRejectedNotFacing:
      return "rejected-not-facing";
  }
  return "?";
}

HeadTalkPipeline::HeadTalkPipeline(OrientationClassifier orientation,
                                   LivenessDetector liveness, PipelineConfig config)
    : orientation_(std::move(orientation)),
      liveness_(std::move(liveness)),
      config_(std::move(config)),
      orientation_extractor_(config_.orientation_features),
      liveness_extractor_(config_.liveness_features) {
  if (!orientation_.trained() || !liveness_.trained()) {
    throw std::invalid_argument("HeadTalkPipeline: both detectors must be trained");
  }
}

void HeadTalkPipeline::set_mode(VaMode mode) noexcept {
  mode_ = mode;
  session_active_ = false;
}

PipelineResult HeadTalkPipeline::evaluate(const audio::MultiBuffer& capture,
                                          bool followup) {
  PipelineResult result;
  if (mode_ == VaMode::kMute) {
    result.decision = Decision::kRejectedMuted;
    return result;
  }
  if (mode_ == VaMode::kNormal) {
    result.decision = Decision::kAccepted;
    return result;
  }

  // --- HeadTalk mode ---
  const auto denoised = preprocess(capture, config_.preprocess);

  // Liveness first (Fig. 2): a replayed wake word is rejected outright,
  // whether or not a session is open — a session belongs to a human.
  result.liveness_checked = true;
  result.liveness_score =
      liveness_.score(liveness_extractor_.extract(denoised.channel(0)));
  result.live = result.liveness_score >= liveness_.config().threshold;
  if (!result.live) {
    result.decision = Decision::kRejectedReplay;
    session_active_ = false;
    return result;
  }

  if (followup && session_active_) {
    result.via_open_session = true;
    result.decision = Decision::kAccepted;
    return result;
  }

  result.orientation_checked = true;
  const auto features = orientation_extractor_.extract(denoised);
  result.orientation_score = orientation_.score(features);
  result.facing = orientation_.is_facing(features);
  if (!result.facing) {
    result.decision = Decision::kRejectedNotFacing;
    return result;
  }
  result.decision = Decision::kAccepted;
  session_active_ = true;
  return result;
}

PipelineResult HeadTalkPipeline::process_wake_word(const audio::MultiBuffer& capture) {
  return evaluate(capture, /*followup=*/false);
}

PipelineResult HeadTalkPipeline::process_followup(const audio::MultiBuffer& capture) {
  return evaluate(capture, /*followup=*/true);
}

}  // namespace headtalk::core
