#include "core/pipeline.h"

#include <stdexcept>

#include "core/scoring_workspace.h"
#include "obs/exemplar.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace headtalk::core {
namespace {

// Registry lookups happen once; the references stay valid for the process
// lifetime (the registry never destroys instruments).
void count_decision(Decision decision) {
  static obs::Counter& accepted =
      obs::Registry::global().counter("pipeline.decision.accepted");
  static obs::Counter& muted =
      obs::Registry::global().counter("pipeline.decision.rejected_muted");
  static obs::Counter& replay =
      obs::Registry::global().counter("pipeline.decision.rejected_replay");
  static obs::Counter& not_facing =
      obs::Registry::global().counter("pipeline.decision.rejected_not_facing");
  switch (decision) {
    case Decision::kAccepted:
      accepted.increment();
      break;
    case Decision::kRejectedMuted:
      muted.increment();
      break;
    case Decision::kRejectedReplay:
      replay.increment();
      break;
    case Decision::kRejectedNotFacing:
      not_facing.increment();
      break;
  }
}

// Bucket bounds for the per-stage latency histograms: 25 µs .. ~3.3 s,
// ×2 per bucket — fine enough that a 3 ms warm orientation stage moving
// by ~20% lands in a different bucket (the default seconds bounds are ×3
// and would smear that). Documented in README "Observability".
std::vector<double> stage_bounds() {
  std::vector<double> bounds;
  for (double edge = 25e-6; edge < 4.0; edge *= 2.0) bounds.push_back(edge);
  return bounds;
}

obs::Histogram& stage_histogram(const char* name) {
  return obs::Registry::global().histogram(name, stage_bounds());
}

// Per-utterance stage record: every stage that ran, with start/duration in
// trace microseconds. Thread-local so the const scoring path can fill it
// without widening any signature; score_capture resets it per utterance
// and offers it to the slow-utterance exemplar ring.
struct StageRecord {
  static constexpr std::size_t kMaxStages = 5;
  obs::ExemplarSpan spans[kMaxStages];
  std::size_t count = 0;

  void add(const char* name, std::uint64_t start_us, std::uint64_t duration_us) {
    if (count < kMaxStages) spans[count++] = {name, start_us, duration_us};
  }
  [[nodiscard]] std::span<const obs::ExemplarSpan> view() const {
    return {spans, count};
  }
};

thread_local StageRecord t_stages;

/// Times one pipeline stage into (a) the span tracer, (b) the stage's
/// live histogram, and (c) the thread's StageRecord — all three read the
/// same clock interval, so the trace, the scrape, and the exemplar can
/// never disagree about where the time went.
class StageTimer {
 public:
  StageTimer(const char* name, obs::Histogram& sink) noexcept
      : name_(name), sink_(sink), span_(name), start_us_(obs::now_micros()) {}
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;
  ~StageTimer() {
    const std::uint64_t duration_us = obs::now_micros() - start_us_;
    sink_.observe(static_cast<double>(duration_us) * 1e-6);
    t_stages.add(name_, start_us_, duration_us);
  }

 private:
  const char* name_;
  obs::Histogram& sink_;
  obs::ScopedSpan span_;
  std::uint64_t start_us_;
};

}  // namespace

std::string_view va_mode_name(VaMode mode) {
  switch (mode) {
    case VaMode::kNormal:
      return "normal";
    case VaMode::kMute:
      return "mute";
    case VaMode::kHeadTalk:
      return "headtalk";
  }
  return "?";
}

std::string_view decision_name(Decision decision) {
  switch (decision) {
    case Decision::kAccepted:
      return "accepted";
    case Decision::kRejectedMuted:
      return "rejected-muted";
    case Decision::kRejectedReplay:
      return "rejected-replay";
    case Decision::kRejectedNotFacing:
      return "rejected-not-facing";
  }
  return "?";
}

HeadTalkPipeline::HeadTalkPipeline(OrientationClassifier orientation,
                                   LivenessDetector liveness, PipelineConfig config)
    : orientation_(std::move(orientation)),
      liveness_(std::move(liveness)),
      config_(std::move(config)) {
  if (!orientation_.trained() || !liveness_.trained()) {
    throw std::invalid_argument("HeadTalkPipeline: both detectors must be trained");
  }
  incremental_config_.preprocess = config_.preprocess;
  incremental_config_.orientation = config_.orientation_features;
  incremental_config_.liveness = config_.liveness_features;
}

void HeadTalkPipeline::set_mode(VaMode mode) noexcept {
  mode_ = mode;
  session_active_ = false;
}

PipelineResult HeadTalkPipeline::evaluate(const audio::MultiBuffer& capture,
                                          bool followup) {
  const PipelineResult result =
      score_capture(capture, mode_, followup, session_active_);
  session_active_ = result.session_open_after;
  return result;
}

PipelineResult HeadTalkPipeline::score_capture(const audio::MultiBuffer& capture,
                                               VaMode mode, bool followup,
                                               bool session_active,
                                               ScoringWorkspace* workspace,
                                               FeatureCapture* features_out) const {
  obs::ScopedSpan span("pipeline.evaluate");
  static obs::Histogram& evaluate_seconds =
      obs::Registry::global().histogram("pipeline.evaluate_seconds");
  obs::Timer timer(&evaluate_seconds);
  t_stages.count = 0;
  const PipelineResult result =
      evaluate_stages(capture, mode, followup, session_active, workspace, features_out);
  count_decision(result.decision);
  // Offer the utterance to the slow-exemplar ring (one relaxed load when
  // it is not among the K slowest). Normal/Mute verdicts run no stages and
  // would only dilute the ring, so they are not offered.
  if (t_stages.count > 0) {
    obs::SlowExemplarRing::global().offer(timer.stop(), decision_name(result.decision),
                                          t_stages.view());
  }
  return result;
}

std::vector<PipelineResult> HeadTalkPipeline::score_batch(
    std::span<const audio::MultiBuffer> captures, VaMode mode,
    ScoringWorkspace* workspace) const {
  // Every capture in a batch is an independent wake word; the shared
  // workspace (caller's or a batch-local one) is what makes the batch
  // cheaper than isolated calls, not any cross-capture state.
  ScoringWorkspace local;
  ScoringWorkspace* ws = workspace != nullptr ? workspace : &local;
  std::vector<PipelineResult> results;
  results.reserve(captures.size());
  for (const auto& capture : captures) {
    results.push_back(
        score_capture(capture, mode, /*followup=*/false, /*session_active=*/false, ws));
  }
  return results;
}

std::vector<HeadTalkPipeline::BatchOutcome> HeadTalkPipeline::score_batch(
    std::span<const BatchRequest> requests, VaMode mode,
    ScoringWorkspace* workspace) const {
  ScoringWorkspace local;
  ScoringWorkspace* ws = workspace != nullptr ? workspace : &local;
  std::vector<BatchOutcome> outcomes;
  outcomes.reserve(requests.size());
  for (const auto& request : requests) {
    BatchOutcome outcome;
    outcome.result =
        score_capture(*request.capture, mode, request.followup, request.session_active,
                      ws, request.want_features ? &outcome.features : nullptr);
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

PipelineResult HeadTalkPipeline::evaluate_stages(const audio::MultiBuffer& capture,
                                                 VaMode mode, bool followup,
                                                 bool session_active,
                                                 ScoringWorkspace* workspace,
                                                 FeatureCapture* features_out) const {
  if (mode != VaMode::kHeadTalk) {
    // Normal/Mute verdicts run no stages; skip the accumulation entirely.
    PipelineResult result;
    result.session_open_after = session_active;
    if (features_out != nullptr) {
      features_out->liveness.clear();
      features_out->orientation.clear();
    }
    result.decision =
        mode == VaMode::kMute ? Decision::kRejectedMuted : Decision::kAccepted;
    return result;
  }

  // --- HeadTalk mode ---
  // The capture runs through the same incremental operator the streaming
  // layer feeds frame by frame (here in one push); the decision then comes
  // from the shared finalize ladder, so batch and streamed scoring cannot
  // diverge. Each stage reports through StageTimer: span tracer +
  // per-stage live histogram + the utterance's exemplar record, from one
  // clock interval.
  IncrementalExtractor local;
  IncrementalExtractor& extractor = [&]() -> IncrementalExtractor& {
    if (workspace == nullptr) return local;
    workspace->note_use();
    return workspace->incremental();
  }();
  {
    static obs::Histogram& seconds =
        stage_histogram("pipeline.stage.incremental_accumulate_seconds");
    StageTimer stage("pipeline.incremental_accumulate", seconds);
    extractor.begin(incremental_config_, capture.channel_count(),
                    capture.sample_rate());
    extractor.push(capture);
  }
  return finalize_stages(extractor, mode, followup, session_active, features_out);
}

PipelineResult HeadTalkPipeline::finalize_stages(IncrementalExtractor& extractor,
                                                 VaMode mode, bool followup,
                                                 bool session_active,
                                                 FeatureCapture* features_out) const {
  PipelineResult result;
  result.session_open_after = session_active;
  if (features_out != nullptr) {
    features_out->liveness.clear();
    features_out->orientation.clear();
  }
  if (mode == VaMode::kMute) {
    result.decision = Decision::kRejectedMuted;
    return result;
  }
  if (mode == VaMode::kNormal) {
    result.decision = Decision::kAccepted;
    return result;
  }

  // Liveness first (Fig. 2): a replayed wake word is rejected outright,
  // whether or not a session is open — a session belongs to a human.
  result.liveness_checked = true;
  const auto liveness_features = [&] {
    static obs::Histogram& seconds =
        stage_histogram("pipeline.stage.liveness_features_seconds");
    StageTimer stage("pipeline.liveness_features", seconds);
    return extractor.finalize_liveness();
  }();
  if (features_out != nullptr) features_out->liveness = liveness_features;
  {
    static obs::Histogram& seconds =
        stage_histogram("pipeline.stage.liveness_score_seconds");
    StageTimer stage("pipeline.liveness_score", seconds);
    result.liveness_score = liveness_.score(liveness_features);
  }
  result.live = result.liveness_score >= liveness_.config().threshold;
  if (!result.live) {
    result.decision = Decision::kRejectedReplay;
    result.session_open_after = false;
    return result;
  }

  if (followup && session_active) {
    result.via_open_session = true;
    result.decision = Decision::kAccepted;
    return result;
  }

  result.orientation_checked = true;
  const auto features = [&] {
    static obs::Histogram& seconds =
        stage_histogram("pipeline.stage.orientation_features_seconds");
    StageTimer stage("pipeline.orientation_features", seconds);
    return extractor.finalize_orientation();
  }();
  if (features_out != nullptr) features_out->orientation = features;
  {
    static obs::Histogram& seconds =
        stage_histogram("pipeline.stage.orientation_score_seconds");
    StageTimer stage("pipeline.orientation_score", seconds);
    result.orientation_score = orientation_.score(features);
    result.facing = orientation_.is_facing(features);
  }
  if (!result.facing) {
    result.decision = Decision::kRejectedNotFacing;
    return result;
  }
  result.decision = Decision::kAccepted;
  result.session_open_after = true;
  return result;
}

PipelineResult HeadTalkPipeline::finalize_segment(IncrementalExtractor& extractor,
                                                  VaMode mode, bool followup,
                                                  bool session_active,
                                                  FeatureCapture* features_out) const {
  obs::ScopedSpan span("pipeline.finalize");
  static obs::Histogram& finalize_seconds =
      obs::Registry::global().histogram("pipeline.finalize_seconds");
  obs::Timer timer(&finalize_seconds);
  t_stages.count = 0;
  const PipelineResult result =
      finalize_stages(extractor, mode, followup, session_active, features_out);
  count_decision(result.decision);
  if (t_stages.count > 0) {
    obs::SlowExemplarRing::global().offer(timer.stop(), decision_name(result.decision),
                                          t_stages.view());
  }
  return result;
}

obs::Histogram& pipeline_stage_histogram(const char* name) {
  return stage_histogram(name);
}

PipelineResult HeadTalkPipeline::process_wake_word(const audio::MultiBuffer& capture) {
  return evaluate(capture, /*followup=*/false);
}

PipelineResult HeadTalkPipeline::process_followup(const audio::MultiBuffer& capture) {
  return evaluate(capture, /*followup=*/true);
}

}  // namespace headtalk::core
