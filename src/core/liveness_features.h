// Liveness (human vs. mechanical speaker) feature extraction (§III-A).
//
// The discriminative physics (Fig. 3): live speech has genuine high-band
// (> 4 kHz) energy with an exponential decay around 4 kHz, while replayed
// audio has a weaker, flatter high band made of distortion products. We
// summarize a single preprocessed channel — downsampled to 16 kHz and
// normalized to zero mean / unit variance, exactly the wav2vec2 input
// convention the paper uses — into log band energies plus spectral shape
// measures that carry that signature.
#pragma once

#include "audio/sample_buffer.h"
#include "core/preprocess.h"
#include "ml/dataset.h"

namespace headtalk::core {

class ScoringWorkspace;

struct LivenessFeatureConfig {
  double model_sample_rate = audio::kLivenessSampleRate;  // 16 kHz
  std::size_t log_bands = 32;       ///< equal-width bands over [100, 7900] Hz
  double band_lo = 100.0;
  double band_hi = 7900.0;
  std::size_t stft_frame = 512;     ///< 32 ms analysis frames at 16 kHz
  std::size_t stft_hop = 256;
};

class LivenessFeatureExtractor {
 public:
  explicit LivenessFeatureExtractor(LivenessFeatureConfig config = {})
      : config_(config) {}

  /// Extracts features from one channel of a capture (any sample rate; the
  /// channel is band-passed, silence-trimmed with a default
  /// PreprocessConfig, and resampled internally by the incremental
  /// operator this call delegates to — identical to streaming the channel
  /// frame by frame). `workspace` (optional) supplies reusable scratch;
  /// it never changes the result.
  [[nodiscard]] ml::FeatureVector extract(const audio::Buffer& channel,
                                          ScoringWorkspace* workspace = nullptr) const;

  /// extract() with explicit preprocessing parameters, so trainers and the
  /// pipeline share one preprocessing definition with streamed scoring.
  [[nodiscard]] ml::FeatureVector extract(const audio::Buffer& channel,
                                          const PreprocessConfig& preprocess,
                                          ScoringWorkspace* workspace = nullptr) const;

  [[nodiscard]] std::size_t dimension() const noexcept {
    return config_.log_bands + 6;
  }

  [[nodiscard]] const LivenessFeatureConfig& config() const noexcept { return config_; }

 private:
  LivenessFeatureConfig config_;
};

}  // namespace headtalk::core
