// The HeadTalk privacy-control pipeline (Fig. 1 + Fig. 2).
//
// Modes:
//   Normal   — every detected wake word is accepted (stock VA behaviour).
//   Mute     — microphones disabled; everything rejected.
//   HeadTalk — a wake word is accepted only if (1) the liveness detector
//              classifies it as live human speech and (2) the orientation
//              classifier says the speaker is facing the device. Once a
//              session is open, follow-up commands need not face the device
//              (§I: "the user does not need to continuously face the device
//              for the remaining session").
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "audio/sample_buffer.h"
#include "core/incremental_extractor.h"
#include "core/liveness_detector.h"
#include "core/liveness_features.h"
#include "core/orientation_classifier.h"
#include "core/orientation_features.h"
#include "core/preprocess.h"

namespace headtalk::obs {
class Histogram;
}

namespace headtalk::core {

enum class VaMode { kNormal, kMute, kHeadTalk };

[[nodiscard]] std::string_view va_mode_name(VaMode mode);

enum class Decision {
  kAccepted,           ///< wake word accepted; audio may go to the cloud
  kRejectedMuted,      ///< device is in mute mode
  kRejectedReplay,     ///< liveness check failed (mechanical speaker)
  kRejectedNotFacing,  ///< live human, but not facing the device
};

[[nodiscard]] std::string_view decision_name(Decision decision);

struct PipelineResult {
  Decision decision = Decision::kRejectedMuted;
  bool liveness_checked = false;
  bool live = false;
  double liveness_score = 0.0;
  bool orientation_checked = false;
  bool facing = false;
  double orientation_score = 0.0;
  /// True when the acceptance came from an already-open session.
  bool via_open_session = false;
  /// Session state a caller should carry into the next utterance (an
  /// accepted facing wake word opens it, a replay closes it).
  bool session_open_after = false;
};

struct PipelineConfig {
  PreprocessConfig preprocess{};
  OrientationFeatureConfig orientation_features{};
  LivenessFeatureConfig liveness_features{};
};

/// The feature vectors a scoring pass computed, exposed for layers that
/// need them beyond the verdict (speaker-identity matching in tenant/).
/// A vector is empty when its stage did not run — orientation is skipped
/// for replays and for follow-ups accepted via an open session, and
/// Normal/Mute verdicts run no stages at all.
struct FeatureCapture {
  std::vector<double> liveness;
  std::vector<double> orientation;

  [[nodiscard]] bool empty() const noexcept {
    return liveness.empty() && orientation.empty();
  }
};

/// Owns the two trained detectors and applies the mode state machine.
class HeadTalkPipeline {
 public:
  HeadTalkPipeline(OrientationClassifier orientation, LivenessDetector liveness,
                   PipelineConfig config = {});

  [[nodiscard]] VaMode mode() const noexcept { return mode_; }
  void set_mode(VaMode mode) noexcept;

  [[nodiscard]] bool session_active() const noexcept { return session_active_; }
  /// Ends the current interaction session (e.g. VA timeout).
  void end_session() noexcept { session_active_ = false; }

  /// Processes a detected wake-word capture under the current mode. A
  /// successful HeadTalk acceptance opens a session.
  [[nodiscard]] PipelineResult process_wake_word(const audio::MultiBuffer& capture);

  /// Processes a follow-up command within an open session (HeadTalk mode
  /// accepts it without the orientation check; other modes behave as for a
  /// wake word).
  [[nodiscard]] PipelineResult process_followup(const audio::MultiBuffer& capture);

  /// Stateless, thread-safe scoring used by the serving layer: evaluates
  /// one capture under `mode` with the caller's session flag instead of the
  /// pipeline's own. The models and extractors are only read, so any number
  /// of threads may score against one resident pipeline concurrently;
  /// `result.session_open_after` is the state the caller carries forward.
  ///
  /// `workspace` (optional) supplies per-thread scratch reused across
  /// calls (see core/scoring_workspace.h); it never changes the result.
  /// Each workspace must be used by at most one thread at a time.
  ///
  /// `features_out` (optional) receives copies of the feature vectors the
  /// stages computed (see FeatureCapture); passing null costs nothing.
  [[nodiscard]] PipelineResult score_capture(const audio::MultiBuffer& capture,
                                             VaMode mode, bool followup,
                                             bool session_active,
                                             ScoringWorkspace* workspace = nullptr,
                                             FeatureCapture* features_out = nullptr) const;

  /// One entry of a context-carrying batch: the capture plus the
  /// per-connection flags score_capture would have been called with. The
  /// capture is borrowed — it must stay alive for the score_batch call.
  struct BatchRequest {
    const audio::MultiBuffer* capture = nullptr;
    bool followup = false;
    bool session_active = false;
    /// True to copy the stage feature vectors into BatchOutcome::features
    /// (tenant identity matching); false costs nothing.
    bool want_features = false;
  };

  struct BatchOutcome {
    PipelineResult result;
    FeatureCapture features;  ///< filled only when want_features was set
  };

  /// Scores a batch of independent wake-word captures (no follow-up or
  /// session context) under `mode`, sharing one workspace across the whole
  /// batch so every capture after the first reuses warm scratch buffers
  /// and cached FFT plans. Results are index-aligned with `captures` and
  /// identical to scoring each capture individually.
  [[nodiscard]] std::vector<PipelineResult> score_batch(
      std::span<const audio::MultiBuffer> captures, VaMode mode,
      ScoringWorkspace* workspace = nullptr) const;

  /// Context-carrying batch entry point used by the event-loop engine's
  /// micro-batch scheduler: utterances gathered across connections are
  /// scored back-to-back over one warm workspace, each under its own
  /// follow-up/session flags. Outcomes are index-aligned with `requests`
  /// and bit-identical to per-utterance score_capture calls.
  [[nodiscard]] std::vector<BatchOutcome> score_batch(
      std::span<const BatchRequest> requests, VaMode mode,
      ScoringWorkspace* workspace = nullptr) const;

  /// Streaming entry point, the counterpart of score_capture for audio
  /// that was already fed through an IncrementalExtractor frame by frame:
  /// runs only the finalize + classify ladder on the accumulated state, so
  /// the post-endpoint cost is O(1) in the segment length. The extractor
  /// must have been begun with incremental_config() (or an equivalent
  /// config) and fed the segment's samples. Stateless with respect to the
  /// pipeline, exactly like score_capture.
  [[nodiscard]] PipelineResult finalize_segment(IncrementalExtractor& extractor,
                                                VaMode mode, bool followup,
                                                bool session_active,
                                                FeatureCapture* features_out = nullptr) const;

  /// The extractor configuration score_capture itself accumulates with —
  /// feed an IncrementalExtractor with this and finalize_segment() agrees
  /// with score_capture() on the same samples bit for bit.
  [[nodiscard]] const IncrementalExtractorConfig& incremental_config() const noexcept {
    return incremental_config_;
  }

  [[nodiscard]] const OrientationClassifier& orientation() const noexcept {
    return orientation_;
  }
  [[nodiscard]] const LivenessDetector& liveness() const noexcept { return liveness_; }
  [[nodiscard]] const PipelineConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] PipelineResult evaluate(const audio::MultiBuffer& capture,
                                        bool followup);
  [[nodiscard]] PipelineResult evaluate_stages(const audio::MultiBuffer& capture,
                                               VaMode mode, bool followup,
                                               bool session_active,
                                               ScoringWorkspace* workspace,
                                               FeatureCapture* features_out) const;
  [[nodiscard]] PipelineResult finalize_stages(IncrementalExtractor& extractor,
                                               VaMode mode, bool followup,
                                               bool session_active,
                                               FeatureCapture* features_out) const;

  OrientationClassifier orientation_;
  LivenessDetector liveness_;
  PipelineConfig config_;
  IncrementalExtractorConfig incremental_config_;
  VaMode mode_ = VaMode::kNormal;
  bool session_active_ = false;
};

/// Stage-latency histogram registered under `name` with the pipeline's
/// shared stage bucket bounds (25 µs – ~3.3 s, ×2 per bucket). The
/// streaming layer times its per-frame incremental accumulation into
/// "pipeline.stage.incremental_accumulate_seconds" through this, so batch
/// and streamed accumulation share one instrument.
[[nodiscard]] obs::Histogram& pipeline_stage_histogram(const char* name);

}  // namespace headtalk::core
