#include "core/preprocess.h"

#include <algorithm>
#include <cmath>

#include "audio/gain.h"
#include "dsp/biquad.h"

namespace headtalk::core {
namespace {

// Finds the [first, last) sample span whose frame RMS exceeds the threshold
// relative to the loudest frame, on an energy envelope shared by channels.
std::pair<std::size_t, std::size_t> active_span(const audio::MultiBuffer& capture,
                                                const PreprocessConfig& config) {
  const std::size_t frames = capture.frames();
  if (frames == 0 || config.trim_threshold_db <= -120.0) return {0, frames};
  const auto frame_len = static_cast<std::size_t>(
      std::max(1.0, config.trim_frame_ms * capture.sample_rate() / 1000.0));

  std::vector<double> envelope;
  for (std::size_t start = 0; start < frames; start += frame_len) {
    const std::size_t end = std::min(frames, start + frame_len);
    double acc = 0.0;
    for (std::size_t c = 0; c < capture.channel_count(); ++c) {
      for (std::size_t i = start; i < end; ++i) {
        acc += capture.channel(c)[i] * capture.channel(c)[i];
      }
    }
    envelope.push_back(std::sqrt(acc / static_cast<double>((end - start) * capture.channel_count())));
  }
  const double peak = *std::max_element(envelope.begin(), envelope.end());
  if (peak <= audio::db_to_amplitude(config.silence_floor_db)) return {0, frames};
  const double threshold = peak * audio::db_to_amplitude(config.trim_threshold_db);

  std::size_t first_frame = envelope.size(), last_frame = 0;
  for (std::size_t f = 0; f < envelope.size(); ++f) {
    if (envelope[f] >= threshold) {
      first_frame = std::min(first_frame, f);
      last_frame = f;
    }
  }
  if (first_frame > last_frame) return {0, frames};
  const auto min_active_frames = static_cast<std::size_t>(
      config.min_active_ms * capture.sample_rate() / 1000.0);
  if ((last_frame - first_frame + 1) * frame_len < min_active_frames) {
    return {0, frames};
  }

  const auto pad =
      static_cast<std::size_t>(config.trim_pad_ms * capture.sample_rate() / 1000.0);
  const std::size_t begin_sample =
      first_frame * frame_len > pad ? first_frame * frame_len - pad : 0;
  const std::size_t end_sample = std::min(frames, (last_frame + 1) * frame_len + pad);
  return {begin_sample, end_sample};
}

}  // namespace

audio::MultiBuffer preprocess(const audio::MultiBuffer& capture,
                              const PreprocessConfig& config) {
  const double fs = capture.sample_rate();
  const double high = std::min(config.high_hz, 0.45 * fs);
  audio::MultiBuffer filtered(capture.channel_count(), capture.frames(), fs);
  for (std::size_t c = 0; c < capture.channel_count(); ++c) {
    auto bp = dsp::butterworth_bandpass(config.filter_order, config.low_hz, high, fs);
    filtered.channel(c) = bp.filtered(capture.channel(c));
  }
  const auto [begin, end] = active_span(filtered, config);
  if (begin == 0 && end == filtered.frames()) return filtered;

  audio::MultiBuffer trimmed(filtered.channel_count(), end - begin, fs);
  for (std::size_t c = 0; c < filtered.channel_count(); ++c) {
    trimmed.channel(c) = filtered.channel(c).slice(begin, end - begin);
  }
  return trimmed;
}

audio::Buffer preprocess(const audio::Buffer& capture, const PreprocessConfig& config) {
  audio::MultiBuffer wrapped(std::vector<audio::Buffer>{capture});
  return preprocess(wrapped, config).channel(0);
}

}  // namespace headtalk::core
