#include "core/orientation_features.h"

#include <cmath>
#include <stdexcept>

#include "core/scoring_workspace.h"
#include "dsp/fft.h"
#include "dsp/spectral.h"
#include "dsp/srp.h"
#include "dsp/stats.h"

namespace headtalk::core {

int OrientationFeatureExtractor::effective_max_lag(double sample_rate) const {
  if (config_.max_lag > 0) return config_.max_lag;
  return dsp::srp_max_lag(config_.max_mic_distance_m, sample_rate,
                          config_.speed_of_sound);
}

std::size_t OrientationFeatureExtractor::dimension(std::size_t channels) const {
  const std::size_t pairs = channels * (channels - 1) / 2;
  // Lag-window length is only known with a sample rate; assume the default
  // capture rate, which every prototype device uses.
  const auto lag = static_cast<std::size_t>(effective_max_lag(audio::kDefaultSampleRate));
  const std::size_t seq_len = 2 * lag + 1;
  return config_.srp_peaks + 5        // SRP peaks + SRP summary stats
         + pairs * seq_len + pairs    // GCC sequences + TDoAs
         + pairs * 5                  // per-pair GCC summary stats
         + 1                          // HLBR
         + 3 * config_.low_band_chunks;
}

ml::FeatureVector OrientationFeatureExtractor::extract(
    const audio::MultiBuffer& capture, ScoringWorkspace* workspace) const {
  if (capture.channel_count() < 2) {
    throw std::invalid_argument("OrientationFeatureExtractor: need >= 2 channels");
  }
  const double fs = capture.sample_rate();
  const int max_lag = effective_max_lag(fs);

  ml::FeatureVector features;
  features.reserve(dimension(capture.channel_count()));

  // --- Speech reverberation: SRP-PHAT + pairwise GCC-PHAT ---
  // With a workspace the pair GCCs land in its reusable buffers (every
  // element is rewritten per call, so results match the local path bit for
  // bit); without one, fall back to per-call allocation.
  dsp::PairwiseGccOptions gcc_options;
  gcc_options.coherence_floor = config_.coherence_floor;
  dsp::PairwiseGcc local_gcc;
  dsp::PairwiseGcc* gcc_out = &local_gcc;
  if (workspace != nullptr) {
    workspace->note_use();
    gcc_out = &workspace->gcc();
    dsp::pairwise_gcc_phat_into(capture, max_lag, *gcc_out, workspace->srp(),
                                gcc_options);
  } else {
    local_gcc = dsp::pairwise_gcc_phat(capture, max_lag, gcc_options);
  }
  const auto& gcc = *gcc_out;
  const auto srp = dsp::srp_phat(gcc);

  const auto peaks = dsp::top_peaks(srp.values, config_.srp_peaks);
  features.insert(features.end(), peaks.begin(), peaks.end());
  const auto srp_stats = dsp::summary_statistics(srp.values);
  features.insert(features.end(), srp_stats.begin(), srp_stats.end());

  for (const auto& pair : gcc.pairs) {
    features.insert(features.end(), pair.gcc.values.begin(), pair.gcc.values.end());
  }
  for (const auto& pair : gcc.pairs) {
    // A pruned pair's zeroed window has no meaningful argmax; report a
    // neutral TDoA instead of the window edge max_element would pick.
    features.push_back(pair.pruned ? 0.0 : static_cast<double>(pair.gcc.peak_lag()));
  }
  for (const auto& pair : gcc.pairs) {
    const auto stats = dsp::summary_statistics(pair.gcc.values);
    features.insert(features.end(), stats.begin(), stats.end());
  }

  // --- Speech directivity: HLBR + banded low-band statistics ---
  // The spectrum is normalized to the speech-band mean level (as in the
  // paper's Fig. 5, "the spectrum was normalized"): the GCC/SRP block is
  // already scale-invariant through the PHAT weighting, and un-normalized
  // band magnitudes would make the classifier level-dependent — a 60 dB
  // utterance must not look like a different orientation than an 80 dB one.
  const auto mono = capture.mixdown();
  const std::size_t fft_size = dsp::next_pow2(mono.size());
  std::vector<double> magnitude;
  if (workspace != nullptr) {
    dsp::magnitude_spectrum_into(mono.samples(), fft_size, magnitude, workspace->fft());
  } else {
    magnitude = dsp::magnitude_spectrum(mono.samples(), fft_size);
  }
  const double reference = dsp::band_mean_magnitude(
      magnitude, fft_size, fs, config_.low_band_lo, config_.high_band_hi);
  if (reference > 0.0) {
    for (auto& m : magnitude) m /= reference;
  }
  features.push_back(dsp::high_low_band_ratio(magnitude, fft_size, fs,
                                              config_.low_band_lo, config_.low_band_hi,
                                              config_.high_band_lo, config_.high_band_hi));
  const auto banded =
      dsp::banded_statistics(magnitude, fft_size, fs, config_.low_band_lo,
                             config_.low_band_hi, config_.low_band_chunks);
  features.insert(features.end(), banded.begin(), banded.end());

  return features;
}

}  // namespace headtalk::core
