#include "core/orientation_features.h"

#include <stdexcept>

#include "core/incremental_extractor.h"
#include "core/scoring_workspace.h"
#include "dsp/srp.h"

namespace headtalk::core {

int OrientationFeatureExtractor::effective_max_lag(double sample_rate) const {
  if (config_.max_lag > 0) return config_.max_lag;
  return dsp::srp_max_lag(config_.max_mic_distance_m, sample_rate,
                          config_.speed_of_sound);
}

std::size_t OrientationFeatureExtractor::dimension(std::size_t channels) const {
  const std::size_t pairs = channels * (channels - 1) / 2;
  // Lag-window length is only known with a sample rate; assume the default
  // capture rate, which every prototype device uses.
  const auto lag = static_cast<std::size_t>(effective_max_lag(audio::kDefaultSampleRate));
  const std::size_t seq_len = 2 * lag + 1;
  return config_.srp_peaks + 5        // SRP peaks + SRP summary stats
         + pairs * seq_len + pairs    // GCC sequences + TDoAs
         + pairs * 5                  // per-pair GCC summary stats
         + 1                          // HLBR
         + 3 * config_.low_band_chunks;
}

ml::FeatureVector OrientationFeatureExtractor::extract(
    const audio::MultiBuffer& capture, ScoringWorkspace* workspace) const {
  return extract(capture, PreprocessConfig{}, workspace);
}

ml::FeatureVector OrientationFeatureExtractor::extract(
    const audio::MultiBuffer& capture, const PreprocessConfig& preprocess,
    ScoringWorkspace* workspace) const {
  if (capture.channel_count() < 2) {
    throw std::invalid_argument("OrientationFeatureExtractor: need >= 2 channels");
  }
  // One definition for batch and streamed extraction: run the whole
  // capture through the incremental operator in a single push. Chunk
  // invariance makes this bit-identical to frame-by-frame streaming.
  IncrementalExtractorConfig op_config;
  op_config.preprocess = preprocess;
  op_config.orientation = config_;
  op_config.enable_liveness = false;
  IncrementalExtractor local;
  IncrementalExtractor* op = &local;
  if (workspace != nullptr) {
    workspace->note_use();
    op = &workspace->incremental();
  }
  op->begin(op_config, capture.channel_count(), capture.sample_rate());
  op->push(capture);
  return op->finalize_orientation();
}

}  // namespace headtalk::core
