#include "core/liveness_features.h"

#include "audio/resample.h"
#include "core/scoring_workspace.h"
#include "dsp/spectral.h"
#include "dsp/stft.h"

namespace headtalk::core {

ml::FeatureVector LivenessFeatureExtractor::extract(const audio::Buffer& channel,
                                                    ScoringWorkspace* workspace) const {
  audio::Buffer x = audio::resample(channel, config_.model_sample_rate);
  audio::normalize_zero_mean_unit_variance(x);

  dsp::StftConfig stft_config;
  stft_config.frame_size = config_.stft_frame;
  stft_config.hop_size = config_.stft_hop;
  dsp::FftScratch local_scratch;
  if (workspace != nullptr) workspace->note_use();
  const auto spectrogram = dsp::stft(
      x, stft_config, workspace != nullptr ? workspace->fft() : local_scratch);
  const auto mean_mag = spectrogram.mean_magnitude();
  const double fs = config_.model_sample_rate;
  const std::size_t nfft = spectrogram.fft_size;

  ml::FeatureVector features;
  features.reserve(dimension());

  const auto bands = dsp::log_band_energies(mean_mag, nfft, fs, config_.band_lo,
                                            config_.band_hi, config_.log_bands);
  features.insert(features.end(), bands.begin(), bands.end());

  // Spectral shape: the >4 kHz decay signature plus noise-likeness of the
  // high band (distortion products are noise-like).
  features.push_back(dsp::spectral_slope_db_per_khz(mean_mag, nfft, fs, 2000.0, 7900.0));
  features.push_back(dsp::spectral_slope_db_per_khz(mean_mag, nfft, fs, 500.0, 4000.0));
  features.push_back(dsp::spectral_centroid(mean_mag, nfft, fs));
  features.push_back(dsp::spectral_flatness(mean_mag, nfft, fs, 4000.0, 7900.0));
  features.push_back(dsp::spectral_rolloff(mean_mag, nfft, fs, 0.95));
  const double low = dsp::band_energy(mean_mag, nfft, fs, 100.0, 4000.0);
  const double high = dsp::band_energy(mean_mag, nfft, fs, 4000.0, 7900.0);
  features.push_back(low > 0.0 ? high / low : 0.0);

  return features;
}

}  // namespace headtalk::core
