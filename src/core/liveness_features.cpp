#include "core/liveness_features.h"

#include "core/incremental_extractor.h"
#include "core/scoring_workspace.h"

namespace headtalk::core {

ml::FeatureVector LivenessFeatureExtractor::extract(const audio::Buffer& channel,
                                                    ScoringWorkspace* workspace) const {
  return extract(channel, PreprocessConfig{}, workspace);
}

ml::FeatureVector LivenessFeatureExtractor::extract(const audio::Buffer& channel,
                                                    const PreprocessConfig& preprocess,
                                                    ScoringWorkspace* workspace) const {
  // One definition for batch and streamed extraction: the whole channel
  // goes through the incremental operator in a single push (chunk
  // invariance makes this bit-identical to frame-by-frame streaming).
  IncrementalExtractorConfig op_config;
  op_config.preprocess = preprocess;
  op_config.liveness = config_;
  op_config.enable_orientation = false;
  IncrementalExtractor local;
  IncrementalExtractor* op = &local;
  if (workspace != nullptr) {
    workspace->note_use();
    op = &workspace->incremental();
  }
  audio::MultiBuffer wrapped(std::vector<audio::Buffer>{channel});
  op->begin(op_config, 1, channel.sample_rate());
  op->push(wrapped);
  return op->finalize_liveness();
}

}  // namespace headtalk::core
