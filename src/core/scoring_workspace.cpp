#include "core/scoring_workspace.h"

#include "obs/metrics.h"

namespace headtalk::core {

void ScoringWorkspace::note_use() {
  static obs::Counter& use = obs::Registry::global().counter("core.workspace.use");
  static obs::Counter& reuse = obs::Registry::global().counter("core.workspace.reuse");
  use.increment();
  if (uses_ > 0) reuse.increment();
  ++uses_;
}

}  // namespace headtalk::core
