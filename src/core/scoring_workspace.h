// Per-thread scratch state for repeated pipeline scoring.
//
// One utterance scored through the HeadTalk pipeline runs a dozen FFTs,
// C(n,2) GCC correlations, and an STFT; without reuse each of those
// allocates its spectra and scratch buffers fresh. A ScoringWorkspace owns
// all of that mutable state so a worker thread that scores utterance after
// utterance (a serve worker, a --jobs lane in sim/collector or
// headtalk_infer, a score_batch() call) touches the allocator only until
// the buffers reach steady-state size. FFT twiddle tables live in the
// process-wide dsp::FftPlanCache, not here — the workspace holds only the
// per-call mutable buffers.
//
// NOT thread-safe: create one workspace per worker thread. Reuse is
// observable via the `core.workspace.use` / `core.workspace.reuse`
// counters (obs registry). All workspace-accepting entry points are
// bit-identical to their workspace-free equivalents.
#pragma once

#include <cstdint>

#include "core/incremental_extractor.h"
#include "dsp/srp.h"

namespace headtalk::core {

class ScoringWorkspace {
 public:
  /// Called by the extractors at the top of each extraction to account
  /// workspace traffic; every call after the first counts as a reuse.
  void note_use();

  /// Number of extractions served so far.
  [[nodiscard]] std::uint64_t uses() const noexcept { return uses_; }

  [[nodiscard]] dsp::SrpWorkspace& srp() noexcept { return srp_; }
  [[nodiscard]] dsp::PairwiseGcc& gcc() noexcept { return gcc_; }
  [[nodiscard]] dsp::FftScratch& fft() noexcept { return fft_; }
  /// The incremental extractor state (see core/incremental_extractor.h);
  /// the pipeline and the wrapper extractors begin()/finalize it per
  /// capture, so its internal buffers stay warm across utterances.
  [[nodiscard]] IncrementalExtractor& incremental() noexcept { return incremental_; }

 private:
  dsp::SrpWorkspace srp_;
  dsp::PairwiseGcc gcc_;
  dsp::FftScratch fft_;
  IncrementalExtractor incremental_;
  std::uint64_t uses_ = 0;
};

}  // namespace headtalk::core
