// Facing / non-facing orientation definitions.
//
// HeadTalk defines the facing zone as [-30°, +30°] aligned with the human
// immediate field of view, and treats (30°, 90°) as a soft "blind zone"
// (§III-B1). §IV-A2 evaluates four training-arc definitions; Definition-4
// (train facing on {0, ±15, ±30}, non-facing on {±90, ±135, 180}, leaving
// the borderline arc out of training) performs best and is the default.
#pragma once

#include <string_view>
#include <vector>

namespace headtalk::core {

/// Angle labels used by the data-collection protocol, degrees. A sample's
/// angle is the speaker's head direction relative to the ray toward the
/// device; 0 = directly facing it.
enum class FacingDefinition {
  kDefinition1,  ///< facing {0,±15,±30,±45}; non-facing {±60,±75,±90,±135,180}
  kDefinition2,  ///< facing {0,±15,±30};     non-facing {±60,±75,±90,±135,180}
  kDefinition3,  ///< facing {0,±15,±30};     non-facing {±75,±90,±135,180}
  kDefinition4,  ///< facing {0,±15,±30};     non-facing {±90,±135,180}
};

[[nodiscard]] std::string_view facing_definition_name(FacingDefinition def);

/// All four definitions (Table III sweep).
[[nodiscard]] const std::vector<FacingDefinition>& all_facing_definitions();

/// Ground truth: is |angle| within the paper's facing zone ([-30, 30])?
[[nodiscard]] bool is_facing_ground_truth(double angle_deg);

/// Training-set membership under a definition. Angles in neither arc are
/// excluded from training (the "soft boundary").
enum class TrainingArc { kFacing, kNonFacing, kExcluded };
[[nodiscard]] TrainingArc training_arc(FacingDefinition def, double angle_deg);

/// Class labels used by the orientation classifier.
inline constexpr int kLabelNonFacing = 0;
inline constexpr int kLabelFacing = 1;

}  // namespace headtalk::core
