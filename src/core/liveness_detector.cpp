#include "core/liveness_detector.h"

#include <stdexcept>

#include "ml/serialize.h"

namespace headtalk::core {

LivenessDetector::LivenessDetector(LivenessDetectorConfig config)
    : config_(config), network_(config.mlp) {}

void LivenessDetector::train(const ml::Dataset& data) {
  if (data.empty()) throw std::invalid_argument("LivenessDetector::train: empty dataset");
  network_ = ml::Mlp(config_.mlp);
  network_.fit(scaler_.fit_transform(data));
  trained_ = true;
}

void LivenessDetector::incremental_update(const ml::Dataset& data, std::size_t epochs) {
  if (!trained_) throw std::logic_error("LivenessDetector::incremental_update: train() first");
  network_.fine_tune(scaler_.transform(data), epochs);
}

double LivenessDetector::score(const ml::FeatureVector& features) const {
  if (!trained_) throw std::logic_error("LivenessDetector: not trained");
  return network_.decision_value(scaler_.transform(features));
}

void LivenessDetector::save(std::ostream& out) const {
  if (!trained_) throw std::logic_error("LivenessDetector::save: not trained");
  ml::io::write_f64(out, config_.threshold);
  scaler_.save(out);
  network_.save(out);
}

LivenessDetector LivenessDetector::load(std::istream& in) {
  LivenessDetector detector;
  detector.config_.threshold = ml::io::read_f64(in);
  detector.scaler_ = ml::StandardScaler::load(in);
  detector.network_ = ml::Mlp::load(in);
  detector.trained_ = true;
  return detector;
}

}  // namespace headtalk::core
