// Liveness detector: human speech vs. mechanical-speaker replay (§III-A),
// with the paper's incremental-learning protocol for domain adaptation
// (§IV-A1: retraining on 20 % of new-domain data recovers the EER).
#pragma once

#include <iosfwd>

#include "ml/dataset.h"
#include "ml/mlp.h"
#include "ml/scaler.h"

namespace headtalk::core {

/// Class labels for liveness features.
inline constexpr int kLabelReplay = 0;
inline constexpr int kLabelLive = 1;

struct LivenessDetectorConfig {
  ml::MlpConfig mlp{};
  double threshold = 0.5;  ///< accept as live when score >= threshold
};

class LivenessDetector {
 public:
  explicit LivenessDetector(LivenessDetectorConfig config = {});

  /// Trains from scratch on features labelled kLabelLive / kLabelReplay.
  void train(const ml::Dataset& data);

  /// Incremental learning: continues training the current network on
  /// new-domain samples (the scaler is kept fixed so old and new features
  /// share one space).
  void incremental_update(const ml::Dataset& data, std::size_t epochs = 10);

  [[nodiscard]] bool trained() const noexcept { return trained_; }

  /// P(live human) in [0, 1].
  [[nodiscard]] double score(const ml::FeatureVector& features) const;
  [[nodiscard]] bool is_live(const ml::FeatureVector& features) const {
    return score(features) >= config_.threshold;
  }

  [[nodiscard]] const LivenessDetectorConfig& config() const noexcept { return config_; }

  /// Persists the trained detector (scaler + network + threshold).
  void save(std::ostream& out) const;
  static LivenessDetector load(std::istream& in);

 private:
  LivenessDetectorConfig config_;
  ml::StandardScaler scaler_;
  ml::Mlp network_;
  bool trained_ = false;
};

}  // namespace headtalk::core
