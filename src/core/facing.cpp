#include "core/facing.h"

#include <algorithm>
#include <cmath>

namespace headtalk::core {
namespace {

bool angle_in(double angle_deg, std::initializer_list<double> magnitudes) {
  const double a = std::abs(angle_deg);
  return std::any_of(magnitudes.begin(), magnitudes.end(),
                     [a](double m) { return std::abs(a - m) < 1.0; });
}

}  // namespace

std::string_view facing_definition_name(FacingDefinition def) {
  switch (def) {
    case FacingDefinition::kDefinition1:
      return "Definition-1";
    case FacingDefinition::kDefinition2:
      return "Definition-2";
    case FacingDefinition::kDefinition3:
      return "Definition-3";
    case FacingDefinition::kDefinition4:
      return "Definition-4";
  }
  return "?";
}

const std::vector<FacingDefinition>& all_facing_definitions() {
  static const std::vector<FacingDefinition> defs{
      FacingDefinition::kDefinition1, FacingDefinition::kDefinition2,
      FacingDefinition::kDefinition3, FacingDefinition::kDefinition4};
  return defs;
}

bool is_facing_ground_truth(double angle_deg) {
  double a = std::fmod(std::abs(angle_deg), 360.0);
  if (a > 180.0) a = 360.0 - a;
  return a <= 30.0 + 1e-9;
}

TrainingArc training_arc(FacingDefinition def, double angle_deg) {
  switch (def) {
    case FacingDefinition::kDefinition1:
      if (angle_in(angle_deg, {0.0, 15.0, 30.0, 45.0})) return TrainingArc::kFacing;
      if (angle_in(angle_deg, {60.0, 75.0, 90.0, 135.0, 180.0})) return TrainingArc::kNonFacing;
      return TrainingArc::kExcluded;
    case FacingDefinition::kDefinition2:
      if (angle_in(angle_deg, {0.0, 15.0, 30.0})) return TrainingArc::kFacing;
      if (angle_in(angle_deg, {60.0, 75.0, 90.0, 135.0, 180.0})) return TrainingArc::kNonFacing;
      return TrainingArc::kExcluded;
    case FacingDefinition::kDefinition3:
      if (angle_in(angle_deg, {0.0, 15.0, 30.0})) return TrainingArc::kFacing;
      if (angle_in(angle_deg, {75.0, 90.0, 135.0, 180.0})) return TrainingArc::kNonFacing;
      return TrainingArc::kExcluded;
    case FacingDefinition::kDefinition4:
      if (angle_in(angle_deg, {0.0, 15.0, 30.0})) return TrainingArc::kFacing;
      if (angle_in(angle_deg, {90.0, 135.0, 180.0})) return TrainingArc::kNonFacing;
      return TrainingArc::kExcluded;
  }
  return TrainingArc::kExcluded;
}

}  // namespace headtalk::core
