#include "dsp/srp.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace headtalk::dsp {

PairwiseGcc pairwise_gcc_phat(const audio::MultiBuffer& capture, int max_lag) {
  PairwiseGcc out;
  out.max_lag = max_lag;
  const std::size_t n = capture.channel_count();
  if (n == 0) return out;

  // One forward FFT per channel, shared across all pairs.
  const std::size_t fft_size = std::max<std::size_t>(
      2, next_pow2(capture.frames() + static_cast<std::size_t>(max_lag) + 1));
  std::vector<HalfSpectrum> spectra;
  spectra.reserve(n);
  for (std::size_t c = 0; c < n; ++c) {
    spectra.push_back(rfft_half(capture.channel(c).samples(), fft_size));
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      out.pairs.push_back(PairwiseGcc::Pair{
          i, j, gcc_phat_from_spectra(spectra[i], spectra[j], max_lag)});
    }
  }
  return out;
}

CorrelationSequence srp_phat(const PairwiseGcc& gcc) {
  CorrelationSequence srp;
  srp.max_lag = gcc.max_lag;
  srp.values.assign(2 * static_cast<std::size_t>(gcc.max_lag) + 1, 0.0);
  for (const auto& pair : gcc.pairs) {
    for (std::size_t k = 0; k < srp.values.size(); ++k) {
      srp.values[k] += pair.gcc.values[k];
    }
  }
  return srp;
}

CorrelationSequence srp_phat(const audio::MultiBuffer& capture, int max_lag) {
  return srp_phat(pairwise_gcc_phat(capture, max_lag));
}

int srp_max_lag(double max_mic_distance_m, double sample_rate, double speed_of_sound) {
  if (max_mic_distance_m <= 0.0 || sample_rate <= 0.0 || speed_of_sound <= 0.0) {
    throw std::invalid_argument("srp_max_lag: arguments must be positive");
  }
  // Tolerant ceiling: d * fs / c that lands on an integer (e.g. D1's
  // 0.085 m * 48 kHz / 340 = 12.0) must not round up from FP noise.
  const double n = max_mic_distance_m * sample_rate / speed_of_sound;
  return std::max(1, static_cast<int>(std::ceil(n - 1e-9)));
}

std::vector<double> top_peaks(const std::vector<double>& seq, std::size_t k,
                              std::size_t min_separation) {
  struct Peak {
    std::size_t index;
    double value;
  };
  std::vector<Peak> peaks;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const bool left_ok = i == 0 || seq[i] >= seq[i - 1];
    const bool right_ok = i + 1 == seq.size() || seq[i] > seq[i + 1];
    if (left_ok && right_ok) peaks.push_back({i, seq[i]});
  }
  std::sort(peaks.begin(), peaks.end(),
            [](const Peak& a, const Peak& b) { return a.value > b.value; });

  std::vector<Peak> kept;
  for (const auto& p : peaks) {
    const bool far_enough = std::all_of(kept.begin(), kept.end(), [&](const Peak& q) {
      const std::size_t d = p.index > q.index ? p.index - q.index : q.index - p.index;
      return d >= min_separation;
    });
    if (far_enough) kept.push_back(p);
    if (kept.size() == k) break;
  }

  std::vector<double> out;
  out.reserve(k);
  for (const auto& p : kept) out.push_back(p.value);
  while (out.size() < k) out.push_back(0.0);  // pad when fewer peaks exist
  return out;
}

}  // namespace headtalk::dsp
