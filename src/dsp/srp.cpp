#include "dsp/srp.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "dsp/simd/dispatch.h"
#include "obs/metrics.h"

namespace headtalk::dsp {
namespace {

obs::Counter& pruned_counter() {
  static obs::Counter& c = obs::Registry::global().counter("dsp.srp.pairs_pruned");
  return c;
}

// The shared transform sizing: covers the linear-correlation padding and
// the full lag window (see correlation.cpp: negative lags wrap to the tail).
std::size_t pairwise_fft_size(std::size_t frames, std::size_t lag) {
  return std::max<std::size_t>(2, next_pow2(std::max(frames + lag + 1, 2 * lag + 1)));
}

// Block-averaged magnitude-squared coherence |sum XY*|^2/(sum|X|^2 sum|Y|^2),
// sampled every `stride`-th bin, `block` samples per block. Single-bin
// coherence is identically 1, so the averaging inside each block is what
// makes this a detector: independent noise decorrelates to ~1/block while
// genuinely coupled channels stay near 1.
double pair_coherence(const HalfSpectrum& x, const HalfSpectrum& y,
                      std::size_t stride, std::size_t block) {
  const std::size_t bins = std::min(x.bins.size(), y.bins.size());
  if (stride == 0) stride = 1;
  if (block < 2) block = 2;
  double total = 0.0;
  std::size_t blocks = 0;
  std::size_t k = 0;
  while (k < bins) {
    double cr = 0.0, ci = 0.0, px = 0.0, py = 0.0;
    std::size_t count = 0;
    for (; count < block && k < bins; k += stride, ++count) {
      const double xr = x.bins[k].real();
      const double xi = x.bins[k].imag();
      const double yr = y.bins[k].real();
      const double yi = y.bins[k].imag();
      cr += xr * yr + xi * yi;
      ci += xi * yr - xr * yi;
      px += xr * xr + xi * xi;
      py += yr * yr + yi * yi;
    }
    // A ragged tail block with too few samples would read as spuriously
    // coherent; fold it away instead.
    if (count < block / 2) break;
    total += (cr * cr + ci * ci) / (px * py + 1e-300);
    ++blocks;
  }
  return blocks > 0 ? total / static_cast<double>(blocks) : 1.0;
}

}  // namespace

PairwiseGcc pairwise_gcc_phat(const audio::MultiBuffer& capture, int max_lag,
                              const PairwiseGccOptions& options) {
  PairwiseGcc out;
  SrpWorkspace workspace;
  pairwise_gcc_phat_into(capture, max_lag, out, workspace, options);
  return out;
}

void pairwise_gcc_phat_into(const audio::MultiBuffer& capture, int max_lag,
                            PairwiseGcc& out, SrpWorkspace& workspace,
                            const PairwiseGccOptions& options) {
  if (max_lag < 0) throw std::invalid_argument("pairwise_gcc_phat: max_lag must be >= 0");
  out.max_lag = max_lag;
  const std::size_t n = capture.channel_count();
  out.pairs.resize(n >= 2 ? n * (n - 1) / 2 : 0);
  if (n == 0) return;

  // One forward FFT per channel, shared across all pairs.
  const std::size_t lag = static_cast<std::size_t>(max_lag);
  const std::size_t fft_size = pairwise_fft_size(capture.frames(), lag);
  auto& spectra = workspace.spectra;
  if (spectra.size() < n) spectra.resize(n);
  for (std::size_t c = 0; c < n; ++c) {
    rfft_half_into(capture.channel(c).samples(), fft_size, spectra[c], workspace.fft);
  }
  const std::size_t window = 2 * lag + 1;
  std::size_t pair_idx = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      auto& pair = out.pairs[pair_idx++];
      pair.i = i;
      pair.j = j;
      pair.coherence = 1.0;
      pair.pruned = false;
      if (options.coherence_floor > 0.0) {
        pair.coherence = pair_coherence(spectra[i], spectra[j],
                                        options.coherence_stride,
                                        options.coherence_block);
        if (pair.coherence < options.coherence_floor) {
          pair.pruned = true;
          pair.gcc.max_lag = max_lag;
          pair.gcc.values.assign(window, 0.0);
          pruned_counter().increment();
          continue;
        }
      }
      gcc_phat_from_spectra_into(spectra[i], spectra[j], max_lag, pair.gcc,
                                 workspace.correlation);
    }
  }
}

CorrelationSequence srp_phat(const PairwiseGcc& gcc) {
  CorrelationSequence srp;
  srp.max_lag = gcc.max_lag;
  srp.values.assign(2 * static_cast<std::size_t>(gcc.max_lag) + 1, 0.0);
  const auto& accumulate = simd::kernels().accumulate;
  for (const auto& pair : gcc.pairs) {
    if (pair.pruned) continue;  // zeroed window; skip the pass entirely
    accumulate(srp.values.data(), pair.gcc.values.data(), srp.values.size());
  }
  return srp;
}

CorrelationSequence srp_phat(const audio::MultiBuffer& capture, int max_lag) {
  return srp_phat(pairwise_gcc_phat(capture, max_lag));
}

SrpSearchResult srp_peak_search(const audio::MultiBuffer& capture,
                                const SrpSearchConfig& config,
                                SrpWorkspace& workspace) {
  if (config.max_lag < 1) {
    throw std::invalid_argument("srp_peak_search: max_lag must be >= 1");
  }
  if (config.coarse_stride < 1 || config.refine_radius < 0) {
    throw std::invalid_argument("srp_peak_search: bad stride/radius");
  }
  SrpSearchResult result;
  const std::size_t n = capture.channel_count();
  if (n < 2 || capture.frames() == 0) return result;

  const int max_lag = config.max_lag;
  const std::size_t lag = static_cast<std::size_t>(max_lag);
  const std::size_t fft_size = pairwise_fft_size(capture.frames(), lag);
  const std::size_t half = fft_size / 2;

  auto& spectra = workspace.spectra;
  if (spectra.size() < n) spectra.resize(n);
  for (std::size_t c = 0; c < n; ++c) {
    rfft_half_into(capture.channel(c).samples(), fft_size, spectra[c], workspace.fft);
  }

  // Sum the PHAT-weighted cross spectra of all (unpruned) pairs once; by
  // linearity the steered power of the sum equals the dense SRP sequence.
  const auto& kernels = simd::kernels();
  auto& combined = workspace.combined;
  combined.fft_size = fft_size;
  combined.bins.assign(half + 1, Complex{});
  auto& cross = workspace.correlation.cross;
  cross.fft_size = fft_size;
  cross.bins.resize(half + 1);
  const auto& opts = config.pair_options;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (opts.coherence_floor > 0.0 &&
          pair_coherence(spectra[i], spectra[j], opts.coherence_stride,
                         opts.coherence_block) < opts.coherence_floor) {
        ++result.pairs_pruned;
        pruned_counter().increment();
        continue;
      }
      kernels.cross_spectrum(reinterpret_cast<const double*>(spectra[i].bins.data()),
                             reinterpret_cast<const double*>(spectra[j].bins.data()),
                             reinterpret_cast<double*>(cross.bins.data()),
                             half + 1, /*phat=*/true, config.epsilon);
      kernels.accumulate(reinterpret_cast<double*>(combined.bins.data()),
                         reinterpret_cast<const double*>(cross.bins.data()),
                         2 * (half + 1));
    }
  }

  auto& rotation = workspace.rotation;
  rotation.resize(half + 1);
  const std::size_t window = 2 * lag + 1;
  std::vector<char> seen(window, 0);
  double best_value = 0.0;
  int best_lag = 0;
  bool any = false;
  const double inv_n = 1.0 / static_cast<double>(fft_size);

  const auto evaluate = [&](int tau) {
    const std::size_t slot = static_cast<std::size_t>(tau + max_lag);
    if (seen[slot]) return;
    seen[slot] = 1;
    ++result.evaluated;
    const double angle =
        2.0 * std::numbers::pi * static_cast<double>(tau) * inv_n;
    kernels.rotation_table(reinterpret_cast<double*>(rotation.data()), half + 1,
                           std::cos(angle), std::sin(angle));
    double sum = combined.bins[0].real();
    sum += (tau % 2 == 0 ? 1.0 : -1.0) * combined.bins[half].real();
    if (half >= 2) {
      sum += 2.0 * kernels.steered_sum(
                       reinterpret_cast<const double*>(combined.bins.data()) + 2,
                       reinterpret_cast<const double*>(rotation.data()) + 2,
                       half - 1);
    }
    const double value = sum * inv_n;
    if (!any || value > best_value) {
      any = true;
      best_value = value;
      best_lag = tau;
    }
  };

  // Coarse pass: every coarse_stride-th lag, endpoints always included.
  for (int tau = -max_lag; tau <= max_lag; tau += config.coarse_stride) {
    evaluate(tau);
  }
  evaluate(max_lag);
  // Fine pass around the coarse winner.
  const int center = best_lag;
  for (int tau = std::max(-max_lag, center - config.refine_radius);
       tau <= std::min(max_lag, center + config.refine_radius); ++tau) {
    evaluate(tau);
  }

  result.peak_lag = best_lag;
  result.peak_value = best_value;
  return result;
}

int srp_max_lag(double max_mic_distance_m, double sample_rate, double speed_of_sound) {
  if (max_mic_distance_m <= 0.0 || sample_rate <= 0.0 || speed_of_sound <= 0.0) {
    throw std::invalid_argument("srp_max_lag: arguments must be positive");
  }
  // Tolerant ceiling: d * fs / c that lands on an integer (e.g. D1's
  // 0.085 m * 48 kHz / 340 = 12.0) must not round up from FP noise.
  const double n = max_mic_distance_m * sample_rate / speed_of_sound;
  return std::max(1, static_cast<int>(std::ceil(n - 1e-9)));
}

std::vector<double> top_peaks(const std::vector<double>& seq, std::size_t k,
                              std::size_t min_separation) {
  struct Peak {
    std::size_t index;
    double value;
  };
  std::vector<Peak> peaks;
  // Interior samples only: the first/last lag of a truncated correlation
  // window carries boundary artifacts, not genuine response power.
  for (std::size_t i = 1; i + 1 < seq.size(); ++i) {
    if (seq[i] >= seq[i - 1] && seq[i] > seq[i + 1]) peaks.push_back({i, seq[i]});
  }
  std::sort(peaks.begin(), peaks.end(),
            [](const Peak& a, const Peak& b) { return a.value > b.value; });

  std::vector<Peak> kept;
  for (const auto& p : peaks) {
    const bool far_enough = std::all_of(kept.begin(), kept.end(), [&](const Peak& q) {
      const std::size_t d = p.index > q.index ? p.index - q.index : q.index - p.index;
      return d >= min_separation;
    });
    if (far_enough) kept.push_back(p);
    if (kept.size() == k) break;
  }

  std::vector<double> out;
  out.reserve(k);
  for (const auto& p : kept) out.push_back(p.value);
  while (out.size() < k) out.push_back(0.0);  // pad when fewer peaks exist
  return out;
}

}  // namespace headtalk::dsp
