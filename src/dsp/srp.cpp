#include "dsp/srp.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace headtalk::dsp {

PairwiseGcc pairwise_gcc_phat(const audio::MultiBuffer& capture, int max_lag) {
  PairwiseGcc out;
  SrpWorkspace workspace;
  pairwise_gcc_phat_into(capture, max_lag, out, workspace);
  return out;
}

void pairwise_gcc_phat_into(const audio::MultiBuffer& capture, int max_lag,
                            PairwiseGcc& out, SrpWorkspace& workspace) {
  if (max_lag < 0) throw std::invalid_argument("pairwise_gcc_phat: max_lag must be >= 0");
  out.max_lag = max_lag;
  const std::size_t n = capture.channel_count();
  out.pairs.resize(n >= 2 ? n * (n - 1) / 2 : 0);
  if (n == 0) return;

  // One forward FFT per channel, shared across all pairs. The transform
  // must cover both the linear-correlation padding and the lag window
  // itself (see correlation.cpp: negative lags wrap to the tail).
  const std::size_t lag = static_cast<std::size_t>(max_lag);
  const std::size_t fft_size = std::max<std::size_t>(
      2, next_pow2(std::max(capture.frames() + lag + 1, 2 * lag + 1)));
  auto& spectra = workspace.spectra;
  if (spectra.size() < n) spectra.resize(n);
  for (std::size_t c = 0; c < n; ++c) {
    rfft_half_into(capture.channel(c).samples(), fft_size, spectra[c], workspace.fft);
  }
  std::size_t pair_idx = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      auto& pair = out.pairs[pair_idx++];
      pair.i = i;
      pair.j = j;
      gcc_phat_from_spectra_into(spectra[i], spectra[j], max_lag, pair.gcc,
                                 workspace.correlation);
    }
  }
}

CorrelationSequence srp_phat(const PairwiseGcc& gcc) {
  CorrelationSequence srp;
  srp.max_lag = gcc.max_lag;
  srp.values.assign(2 * static_cast<std::size_t>(gcc.max_lag) + 1, 0.0);
  for (const auto& pair : gcc.pairs) {
    for (std::size_t k = 0; k < srp.values.size(); ++k) {
      srp.values[k] += pair.gcc.values[k];
    }
  }
  return srp;
}

CorrelationSequence srp_phat(const audio::MultiBuffer& capture, int max_lag) {
  return srp_phat(pairwise_gcc_phat(capture, max_lag));
}

int srp_max_lag(double max_mic_distance_m, double sample_rate, double speed_of_sound) {
  if (max_mic_distance_m <= 0.0 || sample_rate <= 0.0 || speed_of_sound <= 0.0) {
    throw std::invalid_argument("srp_max_lag: arguments must be positive");
  }
  // Tolerant ceiling: d * fs / c that lands on an integer (e.g. D1's
  // 0.085 m * 48 kHz / 340 = 12.0) must not round up from FP noise.
  const double n = max_mic_distance_m * sample_rate / speed_of_sound;
  return std::max(1, static_cast<int>(std::ceil(n - 1e-9)));
}

std::vector<double> top_peaks(const std::vector<double>& seq, std::size_t k,
                              std::size_t min_separation) {
  struct Peak {
    std::size_t index;
    double value;
  };
  std::vector<Peak> peaks;
  // Interior samples only: the first/last lag of a truncated correlation
  // window carries boundary artifacts, not genuine response power.
  for (std::size_t i = 1; i + 1 < seq.size(); ++i) {
    if (seq[i] >= seq[i - 1] && seq[i] > seq[i + 1]) peaks.push_back({i, seq[i]});
  }
  std::sort(peaks.begin(), peaks.end(),
            [](const Peak& a, const Peak& b) { return a.value > b.value; });

  std::vector<Peak> kept;
  for (const auto& p : peaks) {
    const bool far_enough = std::all_of(kept.begin(), kept.end(), [&](const Peak& q) {
      const std::size_t d = p.index > q.index ? p.index - q.index : q.index - p.index;
      return d >= min_separation;
    });
    if (far_enough) kept.push_back(p);
    if (kept.size() == k) break;
  }

  std::vector<double> out;
  out.reserve(k);
  for (const auto& p : kept) out.push_back(p.value);
  while (out.size() < k) out.push_back(0.0);  // pad when fewer peaks exist
  return out;
}

}  // namespace headtalk::dsp
