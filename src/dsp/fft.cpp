#include "dsp/fft.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/fft_plan.h"
#include "dsp/simd/dispatch.h"

namespace headtalk::dsp {
namespace {

bool is_pow2(std::size_t n) noexcept { return n != 0 && (n & (n - 1)) == 0; }

}  // namespace

std::size_t next_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft(std::vector<Complex>& x) { FftPlanCache::global().get(x.size())->forward(x); }

void ifft(std::vector<Complex>& x) { FftPlanCache::global().get(x.size())->inverse(x); }

std::vector<Complex> rfft(std::span<const audio::Sample> x, std::size_t fft_size) {
  if (fft_size == 0) fft_size = next_pow2(x.size());
  if (!is_pow2(fft_size) || fft_size < x.size()) {
    throw std::invalid_argument("rfft: fft_size must be a power of two >= input size");
  }
  std::vector<Complex> spec(fft_size, Complex{});
  for (std::size_t i = 0; i < x.size(); ++i) spec[i] = Complex(x[i], 0.0);
  fft(spec);
  return spec;
}

std::vector<audio::Sample> irfft(std::vector<Complex> spectrum, std::size_t out_size) {
  ifft(spectrum);
  if (out_size == 0) out_size = spectrum.size();
  std::vector<audio::Sample> out(out_size);
  for (std::size_t i = 0; i < out_size && i < spectrum.size(); ++i) {
    out[i] = spectrum[i].real();
  }
  return out;
}

void HalfSpectrum::multiply(const HalfSpectrum& other) {
  if (other.fft_size != fft_size) {
    throw std::invalid_argument("HalfSpectrum::multiply: size mismatch");
  }
  for (std::size_t i = 0; i < bins.size(); ++i) bins[i] *= other.bins[i];
}

void HalfSpectrum::add_product(const HalfSpectrum& a, const HalfSpectrum& b) {
  if (a.fft_size != fft_size || b.fft_size != fft_size) {
    throw std::invalid_argument("HalfSpectrum::add_product: size mismatch");
  }
  for (std::size_t i = 0; i < bins.size(); ++i) bins[i] += a.bins[i] * b.bins[i];
}

void rfft_half_into(std::span<const audio::Sample> x, std::size_t fft_size,
                    HalfSpectrum& out, FftScratch& scratch) {
  if (fft_size == 0) fft_size = std::max<std::size_t>(2, next_pow2(x.size()));
  if (next_pow2(fft_size) != fft_size || fft_size < x.size() || fft_size < 2) {
    throw std::invalid_argument("rfft_half: fft_size must be a power of two >= max(2, input size)");
  }
  const std::size_t half = fft_size / 2;
  const auto plan = FftPlanCache::global().get(half);

  // Pack even samples into the real part, odd into the imaginary part.
  auto& z = scratch.packed;
  z.resize(half);  // every entry is written below
  for (std::size_t n = 0; n < half; ++n) {
    const double re = 2 * n < x.size() ? x[2 * n] : 0.0;
    const double im = 2 * n + 1 < x.size() ? x[2 * n + 1] : 0.0;
    z[n] = Complex(re, im);
  }
  plan->forward(z);

  out.fft_size = fft_size;
  out.bins.resize(half + 1);
  // Plan entry k for a packed transform of size `half` is exp(-i*pi*k/half)
  // = exp(-2*pi*i*k/fft_size), exactly the unpack rotation needed here.
  const auto w = plan->real_pack_twiddles();
  // Interior bins through the dispatched kernel; the k=0 and k=half edges
  // both fold onto z[0] and stay scalar.
  simd::kernels().rfft_unpack(reinterpret_cast<const double*>(z.data()),
                              reinterpret_cast<const double*>(w.data()),
                              reinterpret_cast<double*>(out.bins.data()), half);
  for (const std::size_t k : {std::size_t{0}, half}) {
    const Complex zk = k < half ? z[k] : z[0];
    const Complex zr = std::conj(z[(half - k) % half]);
    const Complex even = 0.5 * (zk + zr);
    const Complex odd = Complex(0.0, -0.5) * (zk - zr);
    out.bins[k] = even + w[k] * odd;
  }
}

HalfSpectrum rfft_half(std::span<const audio::Sample> x, std::size_t fft_size) {
  HalfSpectrum out;
  FftScratch scratch;
  rfft_half_into(x, fft_size, out, scratch);
  return out;
}

void irfft_half_into(const HalfSpectrum& spectrum, std::size_t out_size,
                     std::vector<audio::Sample>& out, FftScratch& scratch) {
  const std::size_t n = spectrum.fft_size;
  const std::size_t half = n / 2;
  if (n < 2 || !is_pow2(n) || spectrum.bins.size() != half + 1) {
    throw std::invalid_argument("irfft_half: malformed spectrum");
  }
  if (out_size == 0) out_size = n;

  // Repack the one-sided spectrum into the half-size complex transform.
  const auto plan = FftPlanCache::global().get(half);
  const auto w = plan->real_pack_twiddles();
  auto& z = scratch.packed;
  z.resize(half);
  simd::kernels().irfft_repack(
      reinterpret_cast<const double*>(spectrum.bins.data()),
      reinterpret_cast<const double*>(w.data()),
      reinterpret_cast<double*>(z.data()), half);
  plan->inverse(z);

  out.assign(out_size, 0.0);
  for (std::size_t m = 0; m < out_size; ++m) {
    const std::size_t idx = m / 2;
    if (idx >= half) break;
    out[m] = (m % 2 == 0) ? z[idx].real() : z[idx].imag();
  }
}

std::vector<audio::Sample> irfft_half(const HalfSpectrum& spectrum, std::size_t out_size) {
  std::vector<audio::Sample> out;
  FftScratch scratch;
  irfft_half_into(spectrum, out_size, out, scratch);
  return out;
}

void irfft_half_window_into(const HalfSpectrum& spectrum, int max_lag,
                            std::vector<double>& out, FftScratch& scratch) {
  const std::size_t n = spectrum.fft_size;
  const std::size_t half = n / 2;
  if (n < 2 || !is_pow2(n) || spectrum.bins.size() != half + 1) {
    throw std::invalid_argument("irfft_half_window: malformed spectrum");
  }
  if (max_lag < 0) throw std::invalid_argument("irfft_half_window: max_lag must be >= 0");
  const std::size_t lag = static_cast<std::size_t>(max_lag);
  const std::size_t window = 2 * lag + 1;
  if (n < window) {
    throw std::invalid_argument(
        "irfft_half_window: fft_size must be >= 2*max_lag + 1");
  }

  const auto plan = FftPlanCache::global().get(half);
  const auto w = plan->real_pack_twiddles();
  auto& z = scratch.packed;
  z.resize(half);
  simd::kernels().irfft_repack(
      reinterpret_cast<const double*>(spectrum.bins.data()),
      reinterpret_cast<const double*>(w.data()),
      reinterpret_cast<double*>(z.data()), half);

  // Window sample m lives in packed slot m/2 (even samples in the real
  // part, odd in the imaginary part), so the ±max_lag window needs only the
  // first lag/2+1 and last (lag+1)/2 slots of the inverse — the pruned
  // transform computes exactly those, bit-identical to a full inverse.
  const std::size_t front = lag / 2 + 1;
  const std::size_t tail = std::max<std::size_t>(1, (lag + 1) / 2);
  if (front + tail > half) {
    plan->inverse(z);
  } else {
    plan->inverse_pruned(z, front, tail);
  }

  out.resize(window);
  for (int l = -max_lag; l <= max_lag; ++l) {
    const std::size_t m =
        l >= 0 ? static_cast<std::size_t>(l) : n - static_cast<std::size_t>(-l);
    const std::size_t idx = m / 2;
    out[static_cast<std::size_t>(l + max_lag)] =
        (m % 2 == 0) ? z[idx].real() : z[idx].imag();
  }
}

void magnitude_spectrum_into(std::span<const audio::Sample> x, std::size_t fft_size,
                             std::vector<double>& out, FftScratch& scratch) {
  rfft_half_into(x, fft_size, scratch.half, scratch);
  out.resize(scratch.half.bins.size());
  // sqrt(re^2 + im^2) via the dispatched kernel — last-ulp different from
  // the previous std::abs (hypot) but ~6x faster and level-identical
  // (IEEE sqrt is correctly rounded on every dispatch level).
  simd::kernels().magnitudes(
      reinterpret_cast<const double*>(scratch.half.bins.data()), out.size(),
      out.data());
}

std::vector<double> magnitude_spectrum(std::span<const audio::Sample> x,
                                       std::size_t fft_size) {
  std::vector<double> mag;
  FftScratch scratch;
  magnitude_spectrum_into(x, fft_size, mag, scratch);
  return mag;
}

double bin_frequency(std::size_t k, std::size_t fft_size, double sample_rate) noexcept {
  return static_cast<double>(k) * sample_rate / static_cast<double>(fft_size);
}

}  // namespace headtalk::dsp
