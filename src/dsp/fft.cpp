#include "dsp/fft.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace headtalk::dsp {
namespace {

bool is_pow2(std::size_t n) noexcept { return n != 0 && (n & (n - 1)) == 0; }

// Core iterative Cooley-Tukey butterfly; sign = -1 forward, +1 inverse.
void transform(std::vector<Complex>& x, int sign) {
  const std::size_t n = x.size();
  if (!is_pow2(n)) throw std::invalid_argument("fft: size must be a power of two");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = sign * 2.0 * std::numbers::pi / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = x[i + k];
        const Complex v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

}  // namespace

std::size_t next_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft(std::vector<Complex>& x) { transform(x, -1); }

void ifft(std::vector<Complex>& x) {
  transform(x, +1);
  const double inv = 1.0 / static_cast<double>(x.size());
  for (auto& v : x) v *= inv;
}

std::vector<Complex> rfft(std::span<const audio::Sample> x, std::size_t fft_size) {
  if (fft_size == 0) fft_size = next_pow2(x.size());
  if (!is_pow2(fft_size) || fft_size < x.size()) {
    throw std::invalid_argument("rfft: fft_size must be a power of two >= input size");
  }
  std::vector<Complex> spec(fft_size, Complex{});
  for (std::size_t i = 0; i < x.size(); ++i) spec[i] = Complex(x[i], 0.0);
  fft(spec);
  return spec;
}

std::vector<audio::Sample> irfft(std::vector<Complex> spectrum, std::size_t out_size) {
  ifft(spectrum);
  if (out_size == 0) out_size = spectrum.size();
  std::vector<audio::Sample> out(out_size);
  for (std::size_t i = 0; i < out_size && i < spectrum.size(); ++i) {
    out[i] = spectrum[i].real();
  }
  return out;
}

void HalfSpectrum::multiply(const HalfSpectrum& other) {
  if (other.fft_size != fft_size) {
    throw std::invalid_argument("HalfSpectrum::multiply: size mismatch");
  }
  for (std::size_t i = 0; i < bins.size(); ++i) bins[i] *= other.bins[i];
}

void HalfSpectrum::add_product(const HalfSpectrum& a, const HalfSpectrum& b) {
  if (a.fft_size != fft_size || b.fft_size != fft_size) {
    throw std::invalid_argument("HalfSpectrum::add_product: size mismatch");
  }
  for (std::size_t i = 0; i < bins.size(); ++i) bins[i] += a.bins[i] * b.bins[i];
}

HalfSpectrum rfft_half(std::span<const audio::Sample> x, std::size_t fft_size) {
  if (fft_size == 0) fft_size = std::max<std::size_t>(2, next_pow2(x.size()));
  if (next_pow2(fft_size) != fft_size || fft_size < x.size() || fft_size < 2) {
    throw std::invalid_argument("rfft_half: fft_size must be a power of two >= max(2, input size)");
  }
  const std::size_t half = fft_size / 2;

  // Pack even samples into the real part, odd into the imaginary part.
  std::vector<Complex> z(half, Complex{});
  for (std::size_t n = 0; n < half; ++n) {
    const double re = 2 * n < x.size() ? x[2 * n] : 0.0;
    const double im = 2 * n + 1 < x.size() ? x[2 * n + 1] : 0.0;
    z[n] = Complex(re, im);
  }
  fft(z);

  HalfSpectrum out;
  out.fft_size = fft_size;
  out.bins.resize(half + 1);
  const double step = -2.0 * std::numbers::pi / static_cast<double>(fft_size);
  for (std::size_t k = 0; k <= half; ++k) {
    const Complex zk = k < half ? z[k] : z[0];
    const Complex zr = std::conj(z[(half - k) % half]);
    const Complex even = 0.5 * (zk + zr);
    const Complex odd = Complex(0.0, -0.5) * (zk - zr);
    const Complex w = std::polar(1.0, step * static_cast<double>(k));
    out.bins[k] = even + w * odd;
  }
  return out;
}

std::vector<audio::Sample> irfft_half(const HalfSpectrum& spectrum, std::size_t out_size) {
  const std::size_t n = spectrum.fft_size;
  const std::size_t half = n / 2;
  if (spectrum.bins.size() != half + 1) {
    throw std::invalid_argument("irfft_half: malformed spectrum");
  }
  if (out_size == 0) out_size = n;

  // Repack the one-sided spectrum into the half-size complex transform.
  std::vector<Complex> z(half, Complex{});
  const double step = 2.0 * std::numbers::pi / static_cast<double>(n);
  for (std::size_t k = 0; k < half; ++k) {
    const Complex xk = spectrum.bins[k];
    const Complex xr = std::conj(spectrum.bins[half - k]);
    const Complex even = 0.5 * (xk + xr);
    const Complex odd = 0.5 * (xk - xr) * std::polar(1.0, step * static_cast<double>(k));
    z[k] = even + Complex(0.0, 1.0) * odd;
  }
  ifft(z);

  std::vector<audio::Sample> out(out_size, 0.0);
  for (std::size_t m = 0; m < out_size; ++m) {
    const std::size_t idx = m / 2;
    if (idx >= half) break;
    out[m] = (m % 2 == 0) ? z[idx].real() : z[idx].imag();
  }
  return out;
}

std::vector<double> magnitude_spectrum(std::span<const audio::Sample> x,
                                       std::size_t fft_size) {
  const auto spec = rfft_half(x, fft_size == 0 ? 0 : fft_size);
  std::vector<double> mag(spec.bins.size());
  for (std::size_t k = 0; k < mag.size(); ++k) mag[k] = std::abs(spec.bins[k]);
  return mag;
}

double bin_frequency(std::size_t k, std::size_t fft_size, double sample_rate) noexcept {
  return static_cast<double>(k) * sample_rate / static_cast<double>(fft_size);
}

}  // namespace headtalk::dsp
