#include "dsp/spectral.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/fft.h"

namespace headtalk::dsp {
namespace {

// Converts a frequency range to the one-sided spectrum bin range
// [first, last) — half-open, so adjacent bands tile the spectrum: a bin
// whose center frequency equals high_hz belongs to the *next* band.
//
// Both bounds subtract a small tolerance (in bins) before the ceil. Band
// edges are routinely computed with floating-point arithmetic
// (low_hz + width * c), so an edge that should coincide with a bin
// frequency can land a few ulps above it; a bare ceil then shifts that
// edge by a whole bin — the boundary bin gets double-counted by one
// neighbouring band and dropped from the other, breaking band additivity.
//
// high_hz above the Nyquist frequency is an explicit clamp to the whole
// remaining spectrum (every representable bin lies below it, including
// the Nyquist bin). low_hz at or above Nyquist selects nothing that
// exists and throws.
std::pair<std::size_t, std::size_t> bin_range(std::size_t bins, std::size_t fft_size,
                                              double sample_rate, double low_hz,
                                              double high_hz) {
  if (low_hz < 0.0 || high_hz <= low_hz) {
    throw std::invalid_argument("spectral: bad frequency range");
  }
  const double nyquist = sample_rate / 2.0;
  if (low_hz >= nyquist) {
    throw std::invalid_argument("spectral: low_hz at or above Nyquist");
  }
  const double hz_per_bin = sample_rate / static_cast<double>(fft_size);
  constexpr double kBinTolerance = 1e-9;  // fraction of a bin
  auto first = static_cast<std::size_t>(
      std::max(0.0, std::ceil(low_hz / hz_per_bin - kBinTolerance)));
  std::size_t last;
  if (high_hz > nyquist) {
    last = bins;
  } else {
    last = static_cast<std::size_t>(
        std::max(0.0, std::ceil(high_hz / hz_per_bin - kBinTolerance)));
  }
  first = std::min(first, bins);
  last = std::min(last, bins);
  return {first, last};
}

}  // namespace

double band_mean_magnitude(std::span<const double> magnitude, std::size_t fft_size,
                           double sample_rate, double low_hz, double high_hz) {
  const auto [first, last] =
      bin_range(magnitude.size(), fft_size, sample_rate, low_hz, high_hz);
  if (first >= last) return 0.0;
  double acc = 0.0;
  for (std::size_t k = first; k < last; ++k) acc += magnitude[k];
  return acc / static_cast<double>(last - first);
}

double band_energy(std::span<const double> magnitude, std::size_t fft_size,
                   double sample_rate, double low_hz, double high_hz) {
  const auto [first, last] =
      bin_range(magnitude.size(), fft_size, sample_rate, low_hz, high_hz);
  double acc = 0.0;
  for (std::size_t k = first; k < last; ++k) acc += magnitude[k] * magnitude[k];
  return acc;
}

double high_low_band_ratio(std::span<const double> magnitude, std::size_t fft_size,
                           double sample_rate, double low_band_lo, double low_band_hi,
                           double high_band_lo, double high_band_hi) {
  const double low =
      band_mean_magnitude(magnitude, fft_size, sample_rate, low_band_lo, low_band_hi);
  const double high =
      band_mean_magnitude(magnitude, fft_size, sample_rate, high_band_lo, high_band_hi);
  return low > 0.0 ? high / low : 0.0;
}

std::vector<double> banded_statistics(std::span<const double> magnitude,
                                      std::size_t fft_size, double sample_rate,
                                      double low_hz, double high_hz,
                                      std::size_t chunks) {
  if (chunks == 0) throw std::invalid_argument("banded_statistics: chunks must be > 0");
  std::vector<double> out;
  out.reserve(3 * chunks);
  const double width = (high_hz - low_hz) / static_cast<double>(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const double lo = low_hz + width * static_cast<double>(c);
    const double hi = lo + width;
    const auto [first, last] = bin_range(magnitude.size(), fft_size, sample_rate, lo, hi);
    double m = 0.0, rms = 0.0, var = 0.0;
    const std::size_t n = last > first ? last - first : 0;
    if (n > 0) {
      for (std::size_t k = first; k < last; ++k) {
        m += magnitude[k];
        rms += magnitude[k] * magnitude[k];
      }
      m /= static_cast<double>(n);
      rms = std::sqrt(rms / static_cast<double>(n));
      for (std::size_t k = first; k < last; ++k) var += (magnitude[k] - m) * (magnitude[k] - m);
      var /= static_cast<double>(n);
    }
    out.push_back(m);
    out.push_back(rms);
    out.push_back(std::sqrt(var));
  }
  return out;
}

std::vector<double> log_band_energies(std::span<const double> magnitude,
                                      std::size_t fft_size, double sample_rate,
                                      double low_hz, double high_hz, std::size_t bands,
                                      double floor_db) {
  if (bands == 0) throw std::invalid_argument("log_band_energies: bands must be > 0");
  std::vector<double> energies(bands, 0.0);
  const double width = (high_hz - low_hz) / static_cast<double>(bands);
  double max_e = 0.0;
  for (std::size_t b = 0; b < bands; ++b) {
    const double lo = low_hz + width * static_cast<double>(b);
    energies[b] = band_energy(magnitude, fft_size, sample_rate, lo, lo + width);
    max_e = std::max(max_e, energies[b]);
  }
  const double floor = max_e * std::pow(10.0, -floor_db / 10.0);
  for (auto& e : energies) {
    e = 10.0 * std::log10(std::max(e, std::max(floor, 1e-300)));
  }
  return energies;
}

double spectral_centroid(std::span<const double> magnitude, std::size_t fft_size,
                         double sample_rate) {
  double num = 0.0, den = 0.0;
  for (std::size_t k = 0; k < magnitude.size(); ++k) {
    const double f = bin_frequency(k, fft_size, sample_rate);
    num += f * magnitude[k];
    den += magnitude[k];
  }
  return den > 0.0 ? num / den : 0.0;
}

double spectral_flatness(std::span<const double> magnitude, std::size_t fft_size,
                         double sample_rate, double low_hz, double high_hz) {
  const auto [first, last] =
      bin_range(magnitude.size(), fft_size, sample_rate, low_hz, high_hz);
  if (first >= last) return 0.0;
  double log_acc = 0.0, lin_acc = 0.0;
  const std::size_t n = last - first;
  for (std::size_t k = first; k < last; ++k) {
    const double p = std::max(magnitude[k] * magnitude[k], 1e-300);
    log_acc += std::log(p);
    lin_acc += p;
  }
  const double geo = std::exp(log_acc / static_cast<double>(n));
  const double arith = lin_acc / static_cast<double>(n);
  return arith > 0.0 ? geo / arith : 0.0;
}

double spectral_rolloff(std::span<const double> magnitude, std::size_t fft_size,
                        double sample_rate, double fraction) {
  double total = 0.0;
  for (double m : magnitude) total += m * m;
  if (total <= 0.0) return 0.0;
  double acc = 0.0;
  for (std::size_t k = 0; k < magnitude.size(); ++k) {
    acc += magnitude[k] * magnitude[k];
    if (acc >= fraction * total) return bin_frequency(k, fft_size, sample_rate);
  }
  return bin_frequency(magnitude.size() - 1, fft_size, sample_rate);
}

double spectral_slope_db_per_khz(std::span<const double> magnitude,
                                 std::size_t fft_size, double sample_rate,
                                 double low_hz, double high_hz) {
  const auto [first, last] =
      bin_range(magnitude.size(), fft_size, sample_rate, low_hz, high_hz);
  if (last - first < 2) return 0.0;
  // Least squares of y = 20*log10(|X|) against x = f in kHz.
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  const auto n = static_cast<double>(last - first);
  for (std::size_t k = first; k < last; ++k) {
    const double x = bin_frequency(k, fft_size, sample_rate) / 1000.0;
    const double y = 20.0 * std::log10(std::max(magnitude[k], 1e-300));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double denom = n * sxx - sx * sx;
  return denom != 0.0 ? (n * sxy - sx * sy) / denom : 0.0;
}

}  // namespace headtalk::dsp
