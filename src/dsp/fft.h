// Radix-2 iterative FFT and helpers.
//
// Everything downstream (GCC-PHAT, SRP-PHAT, spectra, fast convolution)
// funnels through this module: power-of-two complex transforms with a
// real-input convenience wrapper. All transforms run off cached plans
// (precomputed twiddle/bit-reversal tables, see fft_plan.h); the *_into
// variants additionally reuse caller-owned scratch so hot loops allocate
// nothing after warm-up.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "audio/sample_buffer.h"

namespace headtalk::dsp {

using Complex = std::complex<double>;

/// Smallest power of two >= n (returns 1 for n == 0).
[[nodiscard]] std::size_t next_pow2(std::size_t n) noexcept;

/// In-place forward FFT. `x.size()` must be a power of two.
/// Throws std::invalid_argument otherwise.
void fft(std::vector<Complex>& x);

/// In-place inverse FFT (includes the 1/N scaling).
void ifft(std::vector<Complex>& x);

/// Forward FFT of a real signal, zero-padded to `fft_size` (power of two,
/// defaults to next_pow2(x.size())). Returns the full complex spectrum of
/// length fft_size (conjugate-symmetric).
[[nodiscard]] std::vector<Complex> rfft(std::span<const audio::Sample> x,
                                        std::size_t fft_size = 0);

/// Inverse of rfft: returns the real part of the inverse transform,
/// truncated to `out_size` samples (0 = full fft length).
[[nodiscard]] std::vector<audio::Sample> irfft(std::vector<Complex> spectrum,
                                               std::size_t out_size = 0);

/// One-sided ("half") spectrum of a real signal: bins 0..N/2 inclusive.
/// Produced by rfft_half; multiply element-wise and invert with irfft_half.
struct HalfSpectrum {
  std::vector<Complex> bins;  ///< size fft_size/2 + 1
  std::size_t fft_size = 0;

  /// Element-wise product (sizes must match).
  void multiply(const HalfSpectrum& other);
  /// Element-wise accumulate of a*b into this.
  void add_product(const HalfSpectrum& a, const HalfSpectrum& b);
};

/// Real-input FFT via the packed N/2 complex transform — ~2x faster than
/// rfft for the same input. fft_size must be a power of two >= 2.
[[nodiscard]] HalfSpectrum rfft_half(std::span<const audio::Sample> x,
                                     std::size_t fft_size = 0);

/// Inverse of rfft_half; returns `out_size` real samples (0 = fft_size).
[[nodiscard]] std::vector<audio::Sample> irfft_half(const HalfSpectrum& spectrum,
                                                    std::size_t out_size = 0);

/// Caller-owned scratch for the packed real transforms. Reusing one across
/// calls keeps the hot path allocation-free once the buffers reach their
/// steady-state sizes. Not thread-safe: one scratch per thread.
struct FftScratch {
  std::vector<Complex> packed;  ///< N/2 packed complex workspace
  HalfSpectrum half;            ///< spectrum scratch for magnitude_spectrum_into
};

/// rfft_half writing into caller-owned output/scratch. Results are
/// bit-identical to the value-returning overload.
void rfft_half_into(std::span<const audio::Sample> x, std::size_t fft_size,
                    HalfSpectrum& out, FftScratch& scratch);

/// irfft_half writing into caller-owned output/scratch (out_size 0 = full
/// fft length). Results are bit-identical to the value-returning overload.
void irfft_half_into(const HalfSpectrum& spectrum, std::size_t out_size,
                     std::vector<audio::Sample>& out, FftScratch& scratch);

/// Inverse of rfft_half evaluated only on the symmetric lag window
/// [-max_lag, +max_lag] of the *circular* result: out[k] holds inverse
/// sample (k - max_lag) mod fft_size, so out has 2*max_lag+1 entries in
/// lag order. Uses an output-pruned inverse transform, so for windows much
/// shorter than fft_size (the GCC-PHAT case: ±13 lags of a 16384-point
/// transform) this skips over half of the butterfly work while computing
/// the exact same butterflies as slicing a full irfft_half (bit-identical
/// on scalar/SSE2; within 1 ulp on FMA builds, where compiler contraction
/// of the scalar tail may differ between the two paths). Throws when
/// fft_size < 2*max_lag + 1 (the window would alias).
void irfft_half_window_into(const HalfSpectrum& spectrum, int max_lag,
                            std::vector<double>& out, FftScratch& scratch);

/// Magnitudes of the one-sided spectrum (bins 0 .. fft_size/2 inclusive).
[[nodiscard]] std::vector<double> magnitude_spectrum(
    std::span<const audio::Sample> x, std::size_t fft_size = 0);

/// magnitude_spectrum writing into caller-owned output/scratch.
void magnitude_spectrum_into(std::span<const audio::Sample> x, std::size_t fft_size,
                             std::vector<double>& out, FftScratch& scratch);

/// Frequency in Hz of one-sided spectrum bin `k` at the given fft size/rate.
[[nodiscard]] double bin_frequency(std::size_t k, std::size_t fft_size,
                                   double sample_rate) noexcept;

}  // namespace headtalk::dsp
