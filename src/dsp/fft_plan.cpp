#include "dsp/fft_plan.h"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <utility>

#include "dsp/simd/dispatch.h"
#include "obs/metrics.h"

namespace headtalk::dsp {
namespace {

bool is_pow2(std::size_t n) noexcept { return n != 0 && (n & (n - 1)) == 0; }

obs::Counter& hit_counter() {
  static obs::Counter& c = obs::Registry::global().counter("dsp.fft_plan.hit");
  return c;
}

obs::Counter& miss_counter() {
  static obs::Counter& c = obs::Registry::global().counter("dsp.fft_plan.miss");
  return c;
}

}  // namespace

FftPlan::FftPlan(std::size_t size) : size_(size) {
  if (!is_pow2(size)) {
    throw std::invalid_argument("fft: size must be a power of two");
  }

  bit_reverse_.resize(size);
  bit_reverse_[0] = 0;
  for (std::size_t i = 1, j = 0; i < size; ++i) {
    std::size_t bit = size >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    bit_reverse_[i] = static_cast<std::uint32_t>(j);
  }

  // Stage-packed butterflies: for each stage len the len/2 factors
  // exp(-2*pi*i*k/len). Direct polar() per entry is more accurate than the
  // incremental w *= wlen recurrence (error does not accumulate along k).
  twiddles_.reserve(size > 1 ? size - 1 : 0);
  for (std::size_t len = 2; len <= size; len <<= 1) {
    const double angle = -2.0 * std::numbers::pi / static_cast<double>(len);
    for (std::size_t k = 0; k < len / 2; ++k) {
      twiddles_.push_back(std::polar(1.0, angle * static_cast<double>(k)));
    }
  }

  pack_twiddles_.resize(size + 1);
  const double pack_step = -std::numbers::pi / static_cast<double>(size);
  for (std::size_t k = 0; k <= size; ++k) {
    pack_twiddles_[k] = std::polar(1.0, pack_step * static_cast<double>(k));
  }
}

void FftPlan::transform(std::vector<Complex>& x, bool inverse) const {
  if (x.size() != size_) {
    throw std::invalid_argument("FftPlan: buffer size does not match plan size");
  }
  for (std::size_t i = 1; i < size_; ++i) {
    const std::size_t j = bit_reverse_[i];
    if (i < j) std::swap(x[i], x[j]);
  }

  // std::complex guarantees the array layout is interleaved doubles, which
  // is what the dispatched kernels operate on.
  const auto& kernels = simd::kernels();
  auto* data = reinterpret_cast<double*>(x.data());
  const auto* stage = reinterpret_cast<const double*>(twiddles_.data());
  for (std::size_t len = 2; len <= size_; len <<= 1) {
    const std::size_t half = len / 2;
    kernels.butterfly_stage(data, size_, len, 0, half, stage, inverse);
    stage += 2 * half;
  }

  if (inverse) {
    kernels.scale(data, 2 * size_, 1.0 / static_cast<double>(size_));
  }
}

void FftPlan::inverse_pruned(std::vector<Complex>& x, std::size_t front,
                             std::size_t tail) const {
  if (x.size() != size_) {
    throw std::invalid_argument("FftPlan: buffer size does not match plan size");
  }
  if (front == 0 || tail == 0 || front + tail > size_) {
    throw std::invalid_argument("FftPlan: bad pruning window");
  }
  for (std::size_t i = 1; i < size_; ++i) {
    const std::size_t j = bit_reverse_[i];
    if (i < j) std::swap(x[i], x[j]);
  }

  // Output pruning by transform decomposition: the combine stage of size
  // `len` computes outputs k and k+len/2 from butterfly k, so the needed
  // output set {0..front-1} ∪ {size-tail..size-1} maps onto butterflies
  // k in [0, front) ∪ [len/2 - tail, len/2) — and each half-size
  // sub-transform needs exactly the same front/tail pattern of *its*
  // outputs, recursively. Stages small enough that the two ranges overlap
  // are computed in full; every skipped butterfly feeds only unneeded
  // outputs, so the survivors are bit-identical to a full inverse.
  const auto& kernels = simd::kernels();
  auto* data = reinterpret_cast<double*>(x.data());
  const auto* stage = reinterpret_cast<const double*>(twiddles_.data());
  for (std::size_t len = 2; len <= size_; len <<= 1) {
    const std::size_t half = len / 2;
    if (front + tail >= half) {
      kernels.butterfly_stage(data, size_, len, 0, half, stage, /*conjugate=*/true);
    } else {
      kernels.butterfly_stage(data, size_, len, 0, front, stage, /*conjugate=*/true);
      kernels.butterfly_stage(data, size_, len, half - tail, half, stage,
                              /*conjugate=*/true);
    }
    stage += 2 * half;
  }

  const double factor = 1.0 / static_cast<double>(size_);
  kernels.scale(data, 2 * front, factor);
  kernels.scale(data + 2 * (size_ - tail), 2 * tail, factor);
}

void FftPlan::forward(std::vector<Complex>& x) const { transform(x, /*inverse=*/false); }

void FftPlan::inverse(std::vector<Complex>& x) const { transform(x, /*inverse=*/true); }

FftPlanCache& FftPlanCache::global() {
  static FftPlanCache cache;
  return cache;
}

std::shared_ptr<const FftPlan> FftPlanCache::get(std::size_t size) {
  if (!enabled_.load(std::memory_order_relaxed)) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    miss_counter().increment();
    return std::make_shared<const FftPlan>(size);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (auto it = plans_.find(size); it != plans_.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    hit_counter().increment();
    return it->second;
  }
  // Construct before insert so an invalid size never pollutes the map.
  auto plan = std::make_shared<const FftPlan>(size);
  misses_.fetch_add(1, std::memory_order_relaxed);
  miss_counter().increment();
  plans_.emplace(size, plan);
  return plan;
}

FftPlanCacheStats FftPlanCache::stats() const {
  FftPlanCacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  out.plans = plans_.size();
  return out;
}

bool FftPlanCache::set_enabled(bool enabled) noexcept {
  return enabled_.exchange(enabled, std::memory_order_relaxed);
}

bool FftPlanCache::enabled() const noexcept {
  return enabled_.load(std::memory_order_relaxed);
}

void FftPlanCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  plans_.clear();
}

}  // namespace headtalk::dsp
