#include "dsp/stft.h"

#include <stdexcept>

#include "dsp/fft.h"

namespace headtalk::dsp {

std::vector<double> Spectrogram::mean_magnitude() const {
  std::vector<double> mean(bin_count(), 0.0);
  if (frames.empty()) return mean;
  for (const auto& f : frames) {
    for (std::size_t k = 0; k < mean.size(); ++k) mean[k] += f[k];
  }
  for (auto& v : mean) v /= static_cast<double>(frames.size());
  return mean;
}

Spectrogram stft(const audio::Buffer& x, const StftConfig& config) {
  FftScratch scratch;
  return stft(x, config, scratch);
}

Spectrogram stft(const audio::Buffer& x, const StftConfig& config,
                 FftScratch& scratch) {
  if (config.hop_size == 0) throw std::invalid_argument("stft: hop_size must be > 0");
  if (next_pow2(config.frame_size) != config.frame_size) {
    throw std::invalid_argument("stft: frame_size must be a power of two");
  }
  Spectrogram out;
  out.fft_size = config.frame_size;
  out.sample_rate = x.sample_rate();
  if (x.empty()) return out;

  const auto& window = shared_window(config.window, config.frame_size);
  std::vector<audio::Sample> frame(config.frame_size);
  for (std::size_t start = 0; start < x.size(); start += config.hop_size) {
    for (std::size_t i = 0; i < config.frame_size; ++i) {
      const std::size_t src = start + i;
      frame[i] = src < x.size() ? x[src] * window[i] : 0.0;
    }
    out.frames.emplace_back();
    magnitude_spectrum_into(frame, config.frame_size, out.frames.back(), scratch);
    if (start + config.frame_size >= x.size()) break;
  }
  return out;
}

}  // namespace headtalk::dsp
