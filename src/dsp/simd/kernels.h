// Kernel table shared by every SIMD dispatch level.
//
// All kernels operate on interleaved complex data (`double*` viewing a
// `std::complex<double>` array: re0, im0, re1, im1, …) — the layout
// std::complex guarantees — so the same pointers serve scalar loops and
// packed vector loads. Sizes are in *complex elements* unless a parameter
// says otherwise. Each level (scalar / SSE2 / AVX2) provides one immutable
// table; dispatch.h selects between them at runtime.
#pragma once

#include <cstddef>

namespace headtalk::dsp::simd {

struct Kernels {
  /// Display name ("scalar", "sse2", "avx2").
  const char* name;

  /// One radix-2 decimation-in-time stage over `n` interleaved complexes
  /// already in bit-reversed block order. For every block of `len`
  /// complexes, performs the butterflies k in [k_begin, k_end) (k_end <=
  /// len/2):
  ///   w = twiddles[k] (conjugated when `conjugate`)
  ///   u = x[i+k]; v = x[i+k+len/2] * w
  ///   x[i+k] = u + v; x[i+k+len/2] = u - v
  /// `twiddles` points at the stage's interleaved table (len/2 entries).
  /// The k-range parameters let the pruned inverse reuse the same kernel
  /// for partial stages.
  void (*butterfly_stage)(double* x, std::size_t n, std::size_t len,
                          std::size_t k_begin, std::size_t k_end,
                          const double* twiddles, bool conjugate);

  /// values[i] *= factor for i in [0, count) — count is in doubles.
  void (*scale)(double* values, std::size_t count, double factor);

  /// acc[i] += src[i] for i in [0, count) — count is in doubles.
  void (*accumulate)(double* acc, const double* src, std::size_t count);

  /// out[k] = x[k] * conj(y[k]) over `bins` complexes; when `phat`, the
  /// product is normalized to unit magnitude (zero when |c| <= epsilon).
  /// `out` may alias neither input.
  void (*cross_spectrum)(const double* x, const double* y, double* out,
                         std::size_t bins, bool phat, double epsilon);

  /// out[k] = sqrt(re^2 + im^2) over `bins` complexes.
  void (*magnitudes)(const double* x, std::size_t bins, double* out);

  /// Returns sum_k (x[2k]*rot[2k] - x[2k+1]*rot[2k+1]) over `bins`
  /// complexes — the real part of <x, conj(rot)> used by the steered SRP
  /// power evaluation.
  double (*steered_sum)(const double* x, const double* rot, std::size_t bins);

  /// Fills rot[0..bins) with the interleaved phasors step^k (rot[0] = 1)
  /// via four independent stride-4 recurrence chains seeded exactly; all
  /// levels share this implementation so the table is level-identical up
  /// to autovectorization rounding.
  void (*rotation_table)(double* rot, std::size_t bins, double step_re,
                         double step_im);

  /// Real-FFT unpack: given the forward transform `z` of the even/odd
  /// packed sequence (half complexes) and the interleaved pack twiddles
  /// `w` (half+1 entries of exp(-i*pi*k/half)), writes spectrum bins
  /// k in [1, half) as out[k] = E_k + w_k * O_k where
  ///   E_k = (z[k] + conj(z[half-k])) / 2
  ///   O_k = -i * (z[k] - conj(z[half-k])) / 2.
  /// Bins 0 and half (pure-real edge cases) are the caller's job.
  void (*rfft_unpack)(const double* z, const double* w, double* out,
                      std::size_t half);

  /// Inverse of rfft_unpack: from spectrum bins[0..half] (interleaved,
  /// half+1 complexes) rebuilds the packed sequence
  ///   z[k] = E_k + i * O_k,  E_k = (b[k] + conj(b[half-k])) / 2,
  ///   O_k = (b[k] - conj(b[half-k])) / 2 * conj(w[k])
  /// for k in [0, half).
  void (*irfft_repack)(const double* bins, const double* w, double* z,
                       std::size_t half);
};

/// Reference kernels — compiled with vectorization disabled.
const Kernels& scalar_kernels() noexcept;

#if defined(__x86_64__) || defined(__i386__) || defined(_M_X64) || defined(_M_IX86)
#define HEADTALK_SIMD_X86 1
/// Same source as scalar, compiled for the SSE2 baseline with the
/// autovectorizer on.
const Kernels& sse2_kernels() noexcept;
/// AVX2+FMA: hand-written intrinsics for the butterfly / PHAT / steering
/// loops, autovectorized code for the rest.
const Kernels& avx2_kernels() noexcept;
#endif

}  // namespace headtalk::dsp::simd
