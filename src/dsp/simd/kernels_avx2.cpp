// AVX2+FMA kernels. The butterfly / PHAT-weighting / magnitude / steering
// loops are hand-written intrinsics (the complex-multiply shuffle pattern
// defeats the autovectorizer's cost model); the rest reuse the generic
// bodies, which this TU's -mavx2 -mfma flags let the compiler vectorize.
//
// Numerics: fmaddsub/fmsubadd contract one multiply-add per complex
// product into a single rounding, so results differ from the scalar
// reference in the last ulps — inside the <=1e-9 relative contract
// enforced by tests/dsp/test_simd.cpp. Everything else (add/sub/sqrt/div)
// is IEEE-identical to scalar.
#include "dsp/simd/kernels.h"

#if defined(HEADTALK_SIMD_X86)

#include <immintrin.h>

#include <cmath>
#include <cstddef>

namespace headtalk::dsp::simd {

#define HEADTALK_SIMD_NS avx2_impl
#include "dsp/simd/kernels_impl.inl"
#undef HEADTALK_SIMD_NS

namespace {

// Sign mask that negates the imaginary (odd) lanes of an interleaved
// complex vector. _mm256_set_pd lists lanes high-to-low.
inline __m256d odd_lane_sign_mask() {
  return _mm256_set_pd(-0.0, 0.0, -0.0, 0.0);
}

void butterfly_stage_avx2(double* x, std::size_t n, std::size_t len,
                          std::size_t k_begin, std::size_t k_end,
                          const double* twiddles, bool conjugate) {
  const std::size_t half = len / 2;
  const std::size_t count = k_end - k_begin;
  if (count < 2) {
    avx2_impl::butterfly_stage_generic(x, n, len, k_begin, k_end, twiddles,
                                       conjugate);
    return;
  }
  const __m256d conj_mask =
      conjugate ? odd_lane_sign_mask() : _mm256_setzero_pd();
  const double sign = conjugate ? -1.0 : 1.0;
  const std::size_t vec_end = k_begin + (count & ~std::size_t{1});
  for (std::size_t i = 0; i < n; i += len) {
    double* a = x + 2 * (i + k_begin);
    double* b = x + 2 * (i + k_begin + half);
    const double* t = twiddles + 2 * k_begin;
    std::size_t k = k_begin;
    for (; k < vec_end; k += 2, a += 4, b += 4, t += 4) {
      const __m256d w = _mm256_xor_pd(_mm256_loadu_pd(t), conj_mask);
      const __m256d bv = _mm256_loadu_pd(b);
      const __m256d av = _mm256_loadu_pd(a);
      const __m256d wr = _mm256_movedup_pd(w);
      const __m256d wi = _mm256_permute_pd(w, 0b1111);
      const __m256d bswap = _mm256_permute_pd(bv, 0b0101);
      // v = b * w: even lanes br*wr - bi*wi, odd lanes bi*wr + br*wi.
      const __m256d v = _mm256_fmaddsub_pd(bv, wr, _mm256_mul_pd(bswap, wi));
      _mm256_storeu_pd(a, _mm256_add_pd(av, v));
      _mm256_storeu_pd(b, _mm256_sub_pd(av, v));
    }
    for (; k < k_end; ++k, a += 2, b += 2, t += 2) {
      const double wr = t[0];
      const double wi = sign * t[1];
      const double vr = b[0] * wr - b[1] * wi;
      const double vi = b[0] * wi + b[1] * wr;
      const double ur = a[0];
      const double ui = a[1];
      a[0] = ur + vr;
      a[1] = ui + vi;
      b[0] = ur - vr;
      b[1] = ui - vi;
    }
  }
}

void cross_spectrum_avx2(const double* x, const double* y, double* out,
                         std::size_t bins, bool phat, double epsilon) {
  const std::size_t vec_bins = bins & ~std::size_t{1};
  const __m256d eps = _mm256_set1_pd(epsilon);
  std::size_t k = 0;
  for (; k < vec_bins; k += 2) {
    const __m256d xv = _mm256_loadu_pd(x + 2 * k);
    const __m256d yv = _mm256_loadu_pd(y + 2 * k);
    const __m256d yr = _mm256_movedup_pd(yv);
    const __m256d yi = _mm256_permute_pd(yv, 0b1111);
    const __m256d xswap = _mm256_permute_pd(xv, 0b0101);
    // c = x * conj(y): even lanes xr*yr + xi*yi, odd lanes xi*yr - xr*yi.
    const __m256d c = _mm256_fmsubadd_pd(xv, yr, _mm256_mul_pd(xswap, yi));
    if (phat) {
      const __m256d sq = _mm256_mul_pd(c, c);
      const __m256d mag2 = _mm256_add_pd(sq, _mm256_permute_pd(sq, 0b0101));
      const __m256d mag = _mm256_sqrt_pd(mag2);
      const __m256d keep = _mm256_cmp_pd(mag, eps, _CMP_GT_OQ);
      // Lanes with |c| <= eps divide by ~0 (inf/NaN) and are masked to 0.
      _mm256_storeu_pd(out + 2 * k,
                       _mm256_and_pd(keep, _mm256_div_pd(c, mag)));
    } else {
      _mm256_storeu_pd(out + 2 * k, c);
    }
  }
  if (k < bins) {
    avx2_impl::cross_spectrum_generic(x + 2 * k, y + 2 * k, out + 2 * k,
                                      bins - k, phat, epsilon);
  }
}

void magnitudes_avx2(const double* x, std::size_t bins, double* out) {
  const std::size_t vec_bins = bins & ~std::size_t{3};
  std::size_t k = 0;
  for (; k < vec_bins; k += 4) {
    const __m256d a = _mm256_loadu_pd(x + 2 * k);      // c0, c1
    const __m256d b = _mm256_loadu_pd(x + 2 * k + 4);  // c2, c3
    const __m256d h =
        _mm256_hadd_pd(_mm256_mul_pd(a, a), _mm256_mul_pd(b, b));
    // hadd interleaves pairs as [m0, m2, m1, m3]; restore order.
    const __m256d mag2 = _mm256_permute4x64_pd(h, _MM_SHUFFLE(3, 1, 2, 0));
    _mm256_storeu_pd(out + k, _mm256_sqrt_pd(mag2));
  }
  if (k < bins) avx2_impl::magnitudes_generic(x + 2 * k, bins - k, out + k);
}

void accumulate_avx2(double* acc, const double* src, std::size_t count) {
  const std::size_t vec_count = count & ~std::size_t{3};
  std::size_t i = 0;
  for (; i < vec_count; i += 4) {
    _mm256_storeu_pd(
        acc + i, _mm256_add_pd(_mm256_loadu_pd(acc + i), _mm256_loadu_pd(src + i)));
  }
  for (; i < count; ++i) acc[i] += src[i];
}

double steered_sum_avx2(const double* x, const double* rot, std::size_t bins) {
  const __m256d sign = odd_lane_sign_mask();
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  const std::size_t vec_bins = bins & ~std::size_t{3};
  std::size_t k = 0;
  for (; k < vec_bins; k += 4) {
    const __m256d p0 = _mm256_mul_pd(_mm256_loadu_pd(x + 2 * k),
                                     _mm256_loadu_pd(rot + 2 * k));
    const __m256d p1 = _mm256_mul_pd(_mm256_loadu_pd(x + 2 * k + 4),
                                     _mm256_loadu_pd(rot + 2 * k + 4));
    acc0 = _mm256_add_pd(acc0, _mm256_xor_pd(p0, sign));
    acc1 = _mm256_add_pd(acc1, _mm256_xor_pd(p1, sign));
  }
  const __m256d accv = _mm256_add_pd(acc0, acc1);
  const __m128d lanes =
      _mm_add_pd(_mm256_castpd256_pd128(accv), _mm256_extractf128_pd(accv, 1));
  double acc = _mm_cvtsd_f64(lanes) + _mm_cvtsd_f64(_mm_unpackhi_pd(lanes, lanes));
  for (; k < bins; ++k) {
    acc += x[2 * k] * rot[2 * k] - x[2 * k + 1] * rot[2 * k + 1];
  }
  return acc;
}

}  // namespace

const Kernels& avx2_kernels() noexcept {
  static constexpr Kernels table{
      "avx2",
      &butterfly_stage_avx2,
      &avx2_impl::scale_generic,
      &accumulate_avx2,
      &cross_spectrum_avx2,
      &magnitudes_avx2,
      &steered_sum_avx2,
      &avx2_impl::rotation_table_generic,
      &avx2_impl::rfft_unpack_generic,
      &avx2_impl::irfft_repack_generic,
  };
  return table;
}

}  // namespace headtalk::dsp::simd

#endif  // HEADTALK_SIMD_X86
