// Generic raw-double kernel bodies, included once per dispatch level with
// HEADTALK_SIMD_NS set to the level's namespace. Every level runs these
// exact algorithms; the TUs differ only in compiler ISA flags (and AVX2
// overrides a few of them with intrinsics that compute the same formulas).
// Keep the arithmetic here in plain double expressions — std::complex
// operator* routes through the Annex-G __muldc3 helper, which costs ~2x
// and defeats vectorization.
//
// Expects: <cstddef>, <cmath> already included; namespace
// headtalk::dsp::simd open.

namespace HEADTALK_SIMD_NS {

inline void butterfly_stage_generic(double* x, std::size_t n, std::size_t len,
                                    std::size_t k_begin, std::size_t k_end,
                                    const double* twiddles, bool conjugate) {
  const std::size_t half = len / 2;
  // Conjugation folds into the twiddle imaginary part; multiplying by
  // +/-1.0 is exact so both directions round identically.
  const double sign = conjugate ? -1.0 : 1.0;
  for (std::size_t i = 0; i < n; i += len) {
    double* a = x + 2 * (i + k_begin);
    double* b = x + 2 * (i + k_begin + half);
    const double* t = twiddles + 2 * k_begin;
    for (std::size_t k = k_begin; k < k_end; ++k) {
      const double wr = t[0];
      const double wi = sign * t[1];
      const double br = b[0];
      const double bi = b[1];
      const double vr = br * wr - bi * wi;
      const double vi = br * wi + bi * wr;
      const double ur = a[0];
      const double ui = a[1];
      a[0] = ur + vr;
      a[1] = ui + vi;
      b[0] = ur - vr;
      b[1] = ui - vi;
      a += 2;
      b += 2;
      t += 2;
    }
  }
}

inline void scale_generic(double* values, std::size_t count, double factor) {
  for (std::size_t i = 0; i < count; ++i) values[i] *= factor;
}

inline void accumulate_generic(double* acc, const double* src, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) acc[i] += src[i];
}

inline void cross_spectrum_generic(const double* x, const double* y, double* out,
                                   std::size_t bins, bool phat, double epsilon) {
  if (phat) {
    for (std::size_t k = 0; k < bins; ++k) {
      const double xr = x[2 * k];
      const double xi = x[2 * k + 1];
      const double yr = y[2 * k];
      const double yi = y[2 * k + 1];
      const double cr = xr * yr + xi * yi;
      const double ci = xi * yr - xr * yi;
      const double mag = std::sqrt(cr * cr + ci * ci);
      if (mag > epsilon) {
        out[2 * k] = cr / mag;
        out[2 * k + 1] = ci / mag;
      } else {
        out[2 * k] = 0.0;
        out[2 * k + 1] = 0.0;
      }
    }
  } else {
    for (std::size_t k = 0; k < bins; ++k) {
      const double xr = x[2 * k];
      const double xi = x[2 * k + 1];
      const double yr = y[2 * k];
      const double yi = y[2 * k + 1];
      out[2 * k] = xr * yr + xi * yi;
      out[2 * k + 1] = xi * yr - xr * yi;
    }
  }
}

inline void magnitudes_generic(const double* x, std::size_t bins, double* out) {
  for (std::size_t k = 0; k < bins; ++k) {
    const double re = x[2 * k];
    const double im = x[2 * k + 1];
    out[k] = std::sqrt(re * re + im * im);
  }
}

inline double steered_sum_generic(const double* x, const double* rot,
                                  std::size_t bins) {
  double acc = 0.0;
  for (std::size_t k = 0; k < bins; ++k) {
    acc += x[2 * k] * rot[2 * k] - x[2 * k + 1] * rot[2 * k + 1];
  }
  return acc;
}

inline void rotation_table_generic(double* rot, std::size_t bins, double step_re,
                                   double step_im) {
  if (bins == 0) return;
  // Seed the first four entries exactly, then run four independent
  // stride-4 chains u[k] = u[k-4] * step^4 — independent chains keep the
  // loop vectorizable and bound the recurrence error growth.
  rot[0] = 1.0;
  rot[1] = 0.0;
  for (std::size_t k = 1; k < bins && k < 4; ++k) {
    const double pr = rot[2 * (k - 1)];
    const double pi = rot[2 * (k - 1) + 1];
    rot[2 * k] = pr * step_re - pi * step_im;
    rot[2 * k + 1] = pr * step_im + pi * step_re;
  }
  if (bins <= 4) return;
  const double s2r = step_re * step_re - step_im * step_im;
  const double s2i = 2.0 * step_re * step_im;
  const double s4r = s2r * s2r - s2i * s2i;
  const double s4i = 2.0 * s2r * s2i;
  for (std::size_t k = 4; k < bins; ++k) {
    const double pr = rot[2 * (k - 4)];
    const double pi = rot[2 * (k - 4) + 1];
    rot[2 * k] = pr * s4r - pi * s4i;
    rot[2 * k + 1] = pr * s4i + pi * s4r;
  }
}

inline void rfft_unpack_generic(const double* z, const double* w, double* out,
                                std::size_t half) {
  for (std::size_t k = 1; k < half; ++k) {
    const double ar = z[2 * k];
    const double ai = z[2 * k + 1];
    const double br = z[2 * (half - k)];
    const double bi = z[2 * (half - k) + 1];
    const double er = 0.5 * (ar + br);
    const double ei = 0.5 * (ai - bi);
    const double odr = 0.5 * (ai + bi);
    const double odi = -0.5 * (ar - br);
    const double wr = w[2 * k];
    const double wi = w[2 * k + 1];
    out[2 * k] = er + odr * wr - odi * wi;
    out[2 * k + 1] = ei + odr * wi + odi * wr;
  }
}

inline void irfft_repack_generic(const double* bins_data, const double* w,
                                 double* z, std::size_t half) {
  for (std::size_t k = 0; k < half; ++k) {
    const double ar = bins_data[2 * k];
    const double ai = bins_data[2 * k + 1];
    const double br = bins_data[2 * (half - k)];
    const double bi = bins_data[2 * (half - k) + 1];
    const double er = 0.5 * (ar + br);
    const double ei = 0.5 * (ai - bi);
    const double dr = 0.5 * (ar - br);
    const double di = 0.5 * (ai + bi);
    const double wr = w[2 * k];
    const double wi = -w[2 * k + 1];  // conj(pack twiddle)
    const double odr = dr * wr - di * wi;
    const double odi = dr * wi + di * wr;
    z[2 * k] = er - odi;
    z[2 * k + 1] = ei + odr;
  }
}

}  // namespace HEADTALK_SIMD_NS
