// Runtime SIMD dispatch for the DSP hot-path kernels.
//
// The scoring hot path (FFT butterflies, GCC-PHAT weighting, SRP
// accumulation) runs the same few inner loops millions of times per
// second. Each loop has one reference implementation (scalar, compiled
// with vectorization disabled) and ISA-tuned variants (SSE2, AVX2+FMA)
// built from the same source so every level computes the same algorithm.
// The active level is picked once per process: the best level the CPU
// supports (CPUID), clamped by the HEADTALK_SIMD environment variable.
//
//   HEADTALK_SIMD=off|scalar   force the scalar reference kernels
//   HEADTALK_SIMD=sse2         cap at SSE2
//   HEADTALK_SIMD=avx2         cap at AVX2 (errors down to best supported)
//   unset / auto               best supported level
//
// Numerical contract: all levels agree bit-for-bit on element-wise kernels
// (accumulate, scale) and to <= 1e-9 relative on reduction/transform
// kernels (FMA contraction and vector-lane summation reorder the
// roundings). The equivalence suite (tests/dsp/test_simd.cpp, ctest label
// `simd-equivalence`) enforces this on every level the host supports.
#pragma once

#include "dsp/simd/kernels.h"

namespace headtalk::dsp::simd {

enum class Level { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

[[nodiscard]] const char* level_name(Level level) noexcept;

/// Parses a HEADTALK_SIMD value; returns false for unknown spellings.
/// Accepts "off"/"scalar"/"none" (scalar), "sse2", "avx2", "auto"/"best"
/// (best supported), case-sensitive lower-case like the rest of the env.
bool parse_level(const char* text, Level& out, bool& is_auto) noexcept;

/// Highest level this CPU can execute (compile-time capped on non-x86).
[[nodiscard]] Level max_supported_level() noexcept;

/// The level the kernels currently dispatch to. First call resolves it
/// from CPUID + $HEADTALK_SIMD and latches the result.
[[nodiscard]] Level active_level() noexcept;

/// Forces a dispatch level (clamped to max_supported_level()); returns the
/// previous level. For tests that sweep levels in-process — not intended
/// for concurrent use while transforms are in flight on other threads.
Level set_level(Level level) noexcept;

/// Kernel table of the active level. The pointer stays valid forever
/// (tables are immutable statics); re-fetch after set_level().
[[nodiscard]] const Kernels& kernels() noexcept;

}  // namespace headtalk::dsp::simd
