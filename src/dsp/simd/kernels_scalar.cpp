// Scalar reference kernels. This TU is compiled with the loop and SLP
// vectorizers disabled (see src/dsp/CMakeLists.txt) so it is a genuine
// one-lane reference for the equivalence suite, not whatever the
// autovectorizer happened to emit.
#include "dsp/simd/kernels.h"

#include <cmath>
#include <cstddef>

namespace headtalk::dsp::simd {

#define HEADTALK_SIMD_NS scalar_impl
#include "dsp/simd/kernels_impl.inl"
#undef HEADTALK_SIMD_NS

const Kernels& scalar_kernels() noexcept {
  static constexpr Kernels table{
      "scalar",
      &scalar_impl::butterfly_stage_generic,
      &scalar_impl::scale_generic,
      &scalar_impl::accumulate_generic,
      &scalar_impl::cross_spectrum_generic,
      &scalar_impl::magnitudes_generic,
      &scalar_impl::steered_sum_generic,
      &scalar_impl::rotation_table_generic,
      &scalar_impl::rfft_unpack_generic,
      &scalar_impl::irfft_repack_generic,
  };
  return table;
}

}  // namespace headtalk::dsp::simd
