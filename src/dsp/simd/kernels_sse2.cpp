// SSE2-level kernels: the shared generic bodies compiled at the x86-64
// SSE2 baseline with the autovectorizer enabled (default -O2 flags, no
// extra ISA options). No FMA at this level, so every rounding matches the
// scalar reference bit-for-bit; only instruction selection differs.
#include "dsp/simd/kernels.h"

#if defined(HEADTALK_SIMD_X86)

#include <cmath>
#include <cstddef>

namespace headtalk::dsp::simd {

#define HEADTALK_SIMD_NS sse2_impl
#include "dsp/simd/kernels_impl.inl"
#undef HEADTALK_SIMD_NS

const Kernels& sse2_kernels() noexcept {
  static constexpr Kernels table{
      "sse2",
      &sse2_impl::butterfly_stage_generic,
      &sse2_impl::scale_generic,
      &sse2_impl::accumulate_generic,
      &sse2_impl::cross_spectrum_generic,
      &sse2_impl::magnitudes_generic,
      &sse2_impl::steered_sum_generic,
      &sse2_impl::rotation_table_generic,
      &sse2_impl::rfft_unpack_generic,
      &sse2_impl::irfft_repack_generic,
  };
  return table;
}

}  // namespace headtalk::dsp::simd

#endif  // HEADTALK_SIMD_X86
