#include "dsp/simd/dispatch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace headtalk::dsp::simd {
namespace {

const Kernels* table_for(Level level) noexcept {
#if defined(HEADTALK_SIMD_X86)
  switch (level) {
    case Level::kAvx2:
      return &avx2_kernels();
    case Level::kSse2:
      return &sse2_kernels();
    case Level::kScalar:
      break;
  }
#else
  (void)level;
#endif
  return &scalar_kernels();
}

Level detect_max_supported() noexcept {
#if defined(HEADTALK_SIMD_X86) && defined(__GNUC__)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Level::kAvx2;
  }
  if (__builtin_cpu_supports("sse2")) return Level::kSse2;
#endif
  return Level::kScalar;
}

Level clamp_to_supported(Level level) noexcept {
  const Level max = max_supported_level();
  return static_cast<int>(level) > static_cast<int>(max) ? max : level;
}

Level resolve_initial() noexcept {
  Level level = max_supported_level();
  if (const char* env = std::getenv("HEADTALK_SIMD"); env != nullptr && *env != '\0') {
    Level requested{};
    bool is_auto = false;
    if (!parse_level(env, requested, is_auto)) {
      std::fprintf(stderr,
                   "headtalk: ignoring unrecognized HEADTALK_SIMD=%s "
                   "(expected off|scalar|sse2|avx2|auto)\n",
                   env);
    } else if (!is_auto) {
      level = clamp_to_supported(requested);
      if (level != requested) {
        std::fprintf(stderr,
                     "headtalk: HEADTALK_SIMD=%s not supported on this CPU; "
                     "using %s\n",
                     env, level_name(level));
      }
    }
  }
  return level;
}

// The active kernel table. Resolved lazily on first use; set_level swaps
// it for tests. Relaxed ordering is enough — the table pointers are
// immutable statics and readers only need *some* valid table.
std::atomic<const Kernels*> g_active{nullptr};
std::atomic<int> g_level{-1};

const Kernels* ensure_resolved() noexcept {
  const Kernels* table = g_active.load(std::memory_order_acquire);
  if (table != nullptr) return table;
  const Level level = resolve_initial();
  table = table_for(level);
  // First writer wins; a concurrent resolver computes the same answer.
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
  g_active.store(table, std::memory_order_release);
  return table;
}

}  // namespace

const char* level_name(Level level) noexcept {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse2:
      return "sse2";
    case Level::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool parse_level(const char* text, Level& out, bool& is_auto) noexcept {
  is_auto = false;
  if (text == nullptr) return false;
  if (std::strcmp(text, "off") == 0 || std::strcmp(text, "scalar") == 0 ||
      std::strcmp(text, "none") == 0) {
    out = Level::kScalar;
    return true;
  }
  if (std::strcmp(text, "sse2") == 0) {
    out = Level::kSse2;
    return true;
  }
  if (std::strcmp(text, "avx2") == 0) {
    out = Level::kAvx2;
    return true;
  }
  if (std::strcmp(text, "auto") == 0 || std::strcmp(text, "best") == 0) {
    out = max_supported_level();
    is_auto = true;
    return true;
  }
  return false;
}

Level max_supported_level() noexcept {
  static const Level detected = detect_max_supported();
  return detected;
}

Level active_level() noexcept {
  ensure_resolved();
  return static_cast<Level>(g_level.load(std::memory_order_relaxed));
}

Level set_level(Level level) noexcept {
  const Level previous = active_level();
  const Level clamped = clamp_to_supported(level);
  g_level.store(static_cast<int>(clamped), std::memory_order_relaxed);
  g_active.store(table_for(clamped), std::memory_order_release);
  return previous;
}

const Kernels& kernels() noexcept { return *ensure_resolved(); }

}  // namespace headtalk::dsp::simd
