// Cross-correlation and GCC-PHAT (Knapp & Carter [40]).
//
// GCC-PHAT whitens the cross-power spectrum before the inverse transform so
// the correlation peak marks the time-difference-of-arrival (TDoA) even in
// reverberation. HeadTalk uses the GCC sequences of all microphone pairs
// both directly (feature vectors) and summed into SRP-PHAT (see srp.h).
#pragma once

#include <span>
#include <vector>

#include "audio/sample_buffer.h"
#include "dsp/fft.h"

namespace headtalk::dsp {

/// A correlation sequence over the symmetric lag window [-max_lag, +max_lag].
struct CorrelationSequence {
  std::vector<double> values;  ///< 2*max_lag+1 values; index max_lag == lag 0
  int max_lag = 0;

  [[nodiscard]] double at_lag(int lag) const { return values.at(static_cast<std::size_t>(lag + max_lag)); }
  [[nodiscard]] std::size_t size() const noexcept { return values.size(); }

  /// Lag (in samples) of the largest value.
  [[nodiscard]] int peak_lag() const;
  /// Largest value.
  [[nodiscard]] double peak_value() const;
};

/// Plain (unwhitened) cross-correlation of x and y over [-max_lag, max_lag],
/// computed in the frequency domain.
[[nodiscard]] CorrelationSequence cross_correlation(std::span<const audio::Sample> x,
                                                    std::span<const audio::Sample> y,
                                                    int max_lag);

/// GCC-PHAT of x and y over [-max_lag, max_lag] (Eq. 5 of the paper).
/// `epsilon` regularizes the phase-transform weighting for near-zero bins.
[[nodiscard]] CorrelationSequence gcc_phat(std::span<const audio::Sample> x,
                                           std::span<const audio::Sample> y,
                                           int max_lag, double epsilon = 1e-12);

/// GCC-PHAT from precomputed half-spectra (both at the same fft size, which
/// must be >= signal length + max_lag + 1). Avoids recomputing channel FFTs
/// when correlating many microphone pairs of the same capture.
///
/// Throws std::invalid_argument when fft_size < 2*max_lag + 1: negative
/// lags wrap to index fft_size - |lag| of the circular correlation, so a
/// shorter transform would silently alias them into the positive-lag
/// region instead of reading real negative-lag values.
[[nodiscard]] CorrelationSequence gcc_phat_from_spectra(const HalfSpectrum& x,
                                                        const HalfSpectrum& y,
                                                        int max_lag,
                                                        double epsilon = 1e-12);

/// Reusable scratch for repeated spectrum-domain correlations (the cross
/// spectrum, its inverse transform, and the FFT workspace). One per thread.
struct CorrelationWorkspace {
  HalfSpectrum cross;
  std::vector<audio::Sample> inverse;
  FftScratch fft;
};

/// gcc_phat_from_spectra writing into caller-owned output/scratch; results
/// are bit-identical to the value-returning overload.
void gcc_phat_from_spectra_into(const HalfSpectrum& x, const HalfSpectrum& y,
                                int max_lag, CorrelationSequence& out,
                                CorrelationWorkspace& workspace,
                                double epsilon = 1e-12);

/// TDoA estimate in samples: lag of the GCC-PHAT peak (positive means the
/// signal reaches x after y).
[[nodiscard]] int tdoa_samples(std::span<const audio::Sample> x,
                               std::span<const audio::Sample> y, int max_lag);

}  // namespace headtalk::dsp
