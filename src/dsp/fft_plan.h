// Cached FFT plans: precomputed twiddle factors and bit-reversal tables.
//
// Building a radix-2 plan costs ~2N sin/cos evaluations — comparable to the
// butterflies themselves — and every scoring path in the repo (GCC-PHAT,
// SRP-PHAT, STFT, fast convolution) transforms the same handful of sizes
// over and over. FftPlanCache interns one immutable plan per size behind a
// mutex and hands out shared_ptrs, so concurrent serve workers share tables
// without copying and a plan stays valid even if the cache is cleared while
// a transform is in flight.
//
// Plans are pure lookup tables: forward()/inverse() keep all mutable state
// in the caller's buffer, so one plan may be used from any number of
// threads at once. Cache traffic is observable via the
// `dsp.fft_plan.hit` / `dsp.fft_plan.miss` counters (obs registry) and the
// local stats() snapshot.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "dsp/fft.h"

namespace headtalk::dsp {

/// An immutable radix-2 FFT plan for one power-of-two size.
class FftPlan {
 public:
  /// Throws std::invalid_argument unless `size` is a power of two.
  explicit FftPlan(std::size_t size);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// In-place forward transform; `x.size()` must equal size().
  void forward(std::vector<Complex>& x) const;
  /// In-place inverse transform (includes the 1/N scaling).
  void inverse(std::vector<Complex>& x) const;

  /// Output-pruned inverse transform: only outputs x[0..front) and
  /// x[size-tail..size) are produced (including their 1/N scaling); every
  /// other slot is left with unspecified garbage. The pruning is *exact* —
  /// it computes the same butterflies as a full inverse(), so the outputs
  /// match bit-for-bit whenever both paths compile with the same FP
  /// contraction (on FMA builds without contraction they agree to 1 ulp) —
  /// because the needed index set is self-similar across combine stages,
  /// so whole butterfly ranges can be skipped without approximation. Used
  /// by the
  /// GCC lag-window inverse, which keeps only ±max_lag of the
  /// cross-correlation: for a 16384-point packed transform and the
  /// array's 13-sample lag span this skips ~55% of the butterfly work.
  /// front + tail must be <= size; front, tail >= 1.
  void inverse_pruned(std::vector<Complex>& x, std::size_t front,
                      std::size_t tail) const;

  /// Twiddles for the real-FFT pack/unpack step of a *packed* transform of
  /// this plan's size: entry k = exp(-i*pi*k/size), k = 0..size inclusive.
  /// rfft_half on fft_size N uses the plan of size N/2 and reads entry k
  /// as exp(-2*pi*i*k/N); irfft_half uses the conjugate.
  [[nodiscard]] std::span<const Complex> real_pack_twiddles() const noexcept {
    return pack_twiddles_;
  }

 private:
  void transform(std::vector<Complex>& x, bool inverse) const;

  std::size_t size_;
  std::vector<std::uint32_t> bit_reverse_;  ///< permutation, size entries
  std::vector<Complex> twiddles_;  ///< forward stage tables, packed len=2..N
  std::vector<Complex> pack_twiddles_;  ///< size+1 real-pack factors
};

/// Snapshot of cache traffic since process start (or the last clear() does
/// not reset these — they are cumulative like the obs counters).
struct FftPlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::size_t plans = 0;  ///< currently interned plan count
};

/// Thread-safe interning cache, one plan per size. Use the process-global
/// instance; tests may disable it to force cold (plan-per-call) behaviour.
class FftPlanCache {
 public:
  static FftPlanCache& global();

  /// Returns the interned plan for `size`, building it on first use.
  /// When the cache is disabled, builds a fresh plan every call (counted
  /// as a miss). Throws std::invalid_argument for non-power-of-two sizes.
  [[nodiscard]] std::shared_ptr<const FftPlan> get(std::size_t size);

  [[nodiscard]] FftPlanCacheStats stats() const;

  /// Enables/disables interning; returns the previous setting. Disabling
  /// does not drop already-interned plans (call clear() for that).
  bool set_enabled(bool enabled) noexcept;
  [[nodiscard]] bool enabled() const noexcept;

  /// Drops all interned plans. In-flight users keep theirs alive via the
  /// shared_ptr; subsequent get() calls rebuild.
  void clear();

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::size_t, std::shared_ptr<const FftPlan>> plans_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<bool> enabled_{true};
};

}  // namespace headtalk::dsp
