#include "dsp/stats.h"

#include <algorithm>
#include <cmath>

namespace headtalk::dsp {

double mean(std::span<const double> x) {
  if (x.empty()) return 0.0;
  double acc = 0.0;
  for (double v : x) acc += v;
  return acc / static_cast<double>(x.size());
}

double variance(std::span<const double> x) {
  if (x.empty()) return 0.0;
  const double m = mean(x);
  double acc = 0.0;
  for (double v : x) acc += (v - m) * (v - m);
  return acc / static_cast<double>(x.size());
}

double standard_deviation(std::span<const double> x) { return std::sqrt(variance(x)); }

double skewness(std::span<const double> x) {
  if (x.size() < 2) return 0.0;
  const double m = mean(x);
  const double sd = standard_deviation(x);
  if (sd <= 0.0) return 0.0;
  double acc = 0.0;
  for (double v : x) {
    const double z = (v - m) / sd;
    acc += z * z * z;  // plain multiplies: std::pow per element dominated this loop
  }
  return acc / static_cast<double>(x.size());
}

double kurtosis(std::span<const double> x) {
  if (x.size() < 2) return 0.0;
  const double m = mean(x);
  const double var = variance(x);
  if (var <= 0.0) return 0.0;
  double acc = 0.0;
  for (double v : x) {
    const double d2 = (v - m) * (v - m);
    acc += d2 * d2;
  }
  return acc / (static_cast<double>(x.size()) * var * var) - 3.0;
}

double mean_absolute_deviation(std::span<const double> x) {
  if (x.empty()) return 0.0;
  const double m = mean(x);
  double acc = 0.0;
  for (double v : x) acc += std::abs(v - m);
  return acc / static_cast<double>(x.size());
}

double maximum(std::span<const double> x) {
  if (x.empty()) return 0.0;
  return *std::max_element(x.begin(), x.end());
}

double minimum(std::span<const double> x) {
  if (x.empty()) return 0.0;
  return *std::min_element(x.begin(), x.end());
}

double root_mean_square(std::span<const double> x) {
  if (x.empty()) return 0.0;
  double acc = 0.0;
  for (double v : x) acc += v * v;
  return std::sqrt(acc / static_cast<double>(x.size()));
}

std::vector<double> summary_statistics(std::span<const double> x) {
  return {kurtosis(x), skewness(x), maximum(x), mean_absolute_deviation(x),
          standard_deviation(x)};
}

}  // namespace headtalk::dsp
