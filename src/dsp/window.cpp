#include "dsp/window.h"

#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <numbers>
#include <stdexcept>
#include <utility>

namespace headtalk::dsp {

std::vector<double> make_window(WindowType type, std::size_t length) {
  std::vector<double> w(length, 1.0);
  if (length == 0) return w;
  const double n = static_cast<double>(length);
  constexpr double tau = 2.0 * std::numbers::pi;
  for (std::size_t i = 0; i < length; ++i) {
    const double x = static_cast<double>(i) / n;
    switch (type) {
      case WindowType::kRectangular:
        w[i] = 1.0;
        break;
      case WindowType::kHann:
        w[i] = 0.5 - 0.5 * std::cos(tau * x);
        break;
      case WindowType::kHamming:
        w[i] = 0.54 - 0.46 * std::cos(tau * x);
        break;
      case WindowType::kBlackman:
        w[i] = 0.42 - 0.5 * std::cos(tau * x) + 0.08 * std::cos(2.0 * tau * x);
        break;
    }
  }
  return w;
}

const std::vector<double>& shared_window(WindowType type, std::size_t length) {
  // Entries are never erased, so returned references stay valid forever.
  static std::mutex mutex;
  static std::map<std::pair<std::uint32_t, std::size_t>,
                  std::unique_ptr<const std::vector<double>>>
      cache;
  const auto key = std::make_pair(static_cast<std::uint32_t>(type), length);
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, std::make_unique<const std::vector<double>>(
                                make_window(type, length)))
             .first;
  }
  return *it->second;
}

void apply_window(std::span<audio::Sample> frame, std::span<const double> window) {
  if (frame.size() != window.size()) {
    throw std::invalid_argument("apply_window: size mismatch");
  }
  for (std::size_t i = 0; i < frame.size(); ++i) frame[i] *= window[i];
}

}  // namespace headtalk::dsp
