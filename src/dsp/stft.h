// Short-time Fourier transform: framing + per-frame magnitude spectra.
#pragma once

#include <cstddef>
#include <vector>

#include "audio/sample_buffer.h"
#include "dsp/fft.h"
#include "dsp/window.h"

namespace headtalk::dsp {

struct StftConfig {
  std::size_t frame_size = 1024;   ///< analysis window length (power of two)
  std::size_t hop_size = 512;      ///< frame advance
  WindowType window = WindowType::kHann;
};

/// A magnitude spectrogram: frames x (frame_size/2 + 1) bins.
struct Spectrogram {
  std::vector<std::vector<double>> frames;  ///< magnitude per frame
  std::size_t fft_size = 0;
  double sample_rate = 0.0;

  [[nodiscard]] std::size_t frame_count() const noexcept { return frames.size(); }
  [[nodiscard]] std::size_t bin_count() const noexcept {
    return frames.empty() ? 0 : frames.front().size();
  }

  /// Mean magnitude per bin across all frames.
  [[nodiscard]] std::vector<double> mean_magnitude() const;
};

/// Computes the magnitude spectrogram of `x`. The final partial frame is
/// zero-padded. Throws on a non-power-of-two frame size or zero hop.
[[nodiscard]] Spectrogram stft(const audio::Buffer& x, const StftConfig& config = {});

/// stft reusing caller-owned FFT scratch across frames (and across calls);
/// results are bit-identical to the scratch-less overload.
[[nodiscard]] Spectrogram stft(const audio::Buffer& x, const StftConfig& config,
                               FftScratch& scratch);

}  // namespace headtalk::dsp
