// Linear convolution (direct and FFT-based).
//
// Room simulation renders a capture as speech ⊛ RIR per microphone; RIRs are
// thousands of taps long, so the FFT path is the workhorse.
#pragma once

#include <span>
#include <vector>

#include "audio/sample_buffer.h"

namespace headtalk::dsp {

/// Direct O(N*M) convolution; output length N+M-1. Intended for short
/// kernels and as a reference for tests.
[[nodiscard]] std::vector<audio::Sample> convolve_direct(
    std::span<const audio::Sample> x, std::span<const audio::Sample> h);

/// FFT-based convolution; output length N+M-1. Identical (to numerical
/// precision) to convolve_direct.
[[nodiscard]] std::vector<audio::Sample> convolve_fft(
    std::span<const audio::Sample> x, std::span<const audio::Sample> h);

/// Convolves a buffer with an impulse response, preserving sample rate.
/// `trim_to_input` keeps only the first x.size() samples (the usual choice
/// when applying a room impulse response to a finite utterance).
[[nodiscard]] audio::Buffer convolve(const audio::Buffer& x,
                                     std::span<const audio::Sample> h,
                                     bool trim_to_input = false);

}  // namespace headtalk::dsp
