// Rolling multichannel STFT: hop-aligned block processing for streaming
// feature extraction.
//
// The batch dsp::stft sees the whole signal at once; RollingStft consumes
// it in arbitrary chunks and emits exactly the same frames — each analysis
// frame becomes available the moment its last sample arrives, so per-frame
// work can interleave with capture I/O instead of piling up behind the
// endpointer. State (the partial frame spanning a chunk boundary) is
// carried across push() calls, making the emitted frame sequence invariant
// to how the caller chunks the input: one push of N samples and N pushes
// of 1 sample produce bit-identical spectra.
//
// Frames are complex half-spectra (not magnitudes): downstream consumers
// need the phase for cross-spectral statistics (GCC-PHAT, coherence) and
// for exact post-hoc mean removal, and |.| is cheap to take later.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "audio/sample_buffer.h"
#include "dsp/fft.h"
#include "dsp/window.h"

namespace headtalk::dsp {

/// One emitted analysis frame. The spans point into buffers owned by the
/// operator and stay valid until the next push()/pop()/reset().
struct RollingStftFrame {
  /// Frame index (0-based); the frame covers samples
  /// [index * hop_size, index * hop_size + valid).
  std::size_t index = 0;
  /// Samples actually present; < frame_size only for the zero-padded
  /// trailing frames emitted after finish().
  std::size_t valid = 0;
  /// Windowed, zero-padded time-domain frame per channel (frame_size each).
  std::span<const std::vector<audio::Sample>> windowed;
  /// Half spectrum of the windowed frame per channel, at fft_size.
  std::span<const HalfSpectrum> spectra;
};

class RollingStft {
 public:
  struct Config {
    std::size_t channels = 1;
    std::size_t frame_size = 1024;  ///< analysis window length
    std::size_t hop_size = 512;     ///< frame advance
    /// Transform length; 0 = next_pow2(frame_size). May exceed frame_size
    /// when the consumer needs linear-correlation headroom (GCC lags).
    std::size_t fft_size = 0;
    WindowType window = WindowType::kHann;
  };

  /// Re-arms the operator for a new stream. Throws std::invalid_argument
  /// on zero channels/hop or an fft_size smaller than frame_size.
  void reset(const Config& config);

  /// Appends samples to one channel. Every channel must receive the same
  /// number of samples between pop() sweeps (callers feed synchronized
  /// multichannel chunks, so this holds naturally).
  void push(std::size_t channel, std::span<const audio::Sample> samples);

  /// Declares end-of-stream: the remaining partial frames become poppable,
  /// zero-padded exactly as dsp::stft pads the batch signal's tail.
  void finish();

  /// Pops the next frame if one is complete (or, after finish(), if the
  /// batch framing rule still owes one). Returns false when the operator
  /// is waiting for more input — or, after finish(), when drained.
  [[nodiscard]] bool pop(RollingStftFrame& frame);

  [[nodiscard]] std::size_t channels() const noexcept { return config_.channels; }
  [[nodiscard]] std::size_t frame_size() const noexcept { return config_.frame_size; }
  [[nodiscard]] std::size_t hop_size() const noexcept { return config_.hop_size; }
  [[nodiscard]] std::size_t fft_size() const noexcept { return fft_size_; }
  /// Samples pushed per channel so far (the minimum across channels).
  [[nodiscard]] std::size_t samples_pushed() const noexcept;
  /// Frames emitted so far.
  [[nodiscard]] std::size_t frames_emitted() const noexcept { return emitted_; }
  [[nodiscard]] bool finished() const noexcept { return finished_; }

 private:
  void compact();

  Config config_{};
  std::size_t fft_size_ = 0;
  std::vector<std::vector<audio::Sample>> buffers_;  ///< per-channel pending samples
  std::size_t base_ = 0;      ///< absolute stream index of buffers_[c][0]
  std::size_t emitted_ = 0;   ///< frames popped so far
  bool finished_ = false;
  const std::vector<double>* window_ = nullptr;       ///< interned coefficients
  std::vector<std::vector<audio::Sample>> windowed_;  ///< per-channel frame scratch
  std::vector<HalfSpectrum> spectra_;                 ///< per-channel spectrum scratch
  FftScratch fft_scratch_;
};

}  // namespace headtalk::dsp
