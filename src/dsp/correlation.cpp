#include "dsp/correlation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/fft.h"

namespace headtalk::dsp {
namespace {

// Shared core: computes IFFT( W(f) * X(f) * conj(Y(f)) ) and extracts the
// symmetric lag window. `phat` selects phase-transform weighting.
CorrelationSequence correlate_spectra(const HalfSpectrum& xs, const HalfSpectrum& ys,
                                      int max_lag, bool phat, double epsilon) {
  if (max_lag < 0) throw std::invalid_argument("correlate: max_lag must be >= 0");
  const std::size_t n = xs.fft_size;
  HalfSpectrum cross;
  cross.fft_size = n;
  cross.bins.resize(xs.bins.size());
  for (std::size_t i = 0; i < cross.bins.size(); ++i) {
    Complex c = xs.bins[i] * std::conj(ys.bins[i]);
    if (phat) {
      const double mag = std::abs(c);
      c = mag > epsilon ? c / mag : Complex{0.0, 0.0};
    }
    cross.bins[i] = c;
  }
  const auto r = irfft_half(cross);

  CorrelationSequence out;
  out.max_lag = max_lag;
  out.values.resize(2 * static_cast<std::size_t>(max_lag) + 1);
  for (int lag = -max_lag; lag <= max_lag; ++lag) {
    // Negative lags wrap to the tail of the circular correlation.
    const std::size_t idx = lag >= 0 ? static_cast<std::size_t>(lag)
                                     : n - static_cast<std::size_t>(-lag);
    out.values[static_cast<std::size_t>(lag + max_lag)] = idx < r.size() ? r[idx] : 0.0;
  }
  return out;
}

CorrelationSequence correlate(std::span<const audio::Sample> x,
                              std::span<const audio::Sample> y, int max_lag,
                              bool phat, double epsilon) {
  if (max_lag < 0) throw std::invalid_argument("correlate: max_lag must be >= 0");
  if (x.empty() || y.empty()) {
    return CorrelationSequence{std::vector<double>(2 * max_lag + 1, 0.0), max_lag};
  }
  const std::size_t n = std::max<std::size_t>(
      2, next_pow2(std::max(x.size(), y.size()) + static_cast<std::size_t>(max_lag) + 1));
  return correlate_spectra(rfft_half(x, n), rfft_half(y, n), max_lag, phat, epsilon);
}

}  // namespace

int CorrelationSequence::peak_lag() const {
  if (values.empty()) return 0;
  const auto it = std::max_element(values.begin(), values.end());
  return static_cast<int>(std::distance(values.begin(), it)) - max_lag;
}

double CorrelationSequence::peak_value() const {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

CorrelationSequence cross_correlation(std::span<const audio::Sample> x,
                                      std::span<const audio::Sample> y, int max_lag) {
  return correlate(x, y, max_lag, /*phat=*/false, 0.0);
}

CorrelationSequence gcc_phat(std::span<const audio::Sample> x,
                             std::span<const audio::Sample> y, int max_lag,
                             double epsilon) {
  return correlate(x, y, max_lag, /*phat=*/true, epsilon);
}

CorrelationSequence gcc_phat_from_spectra(const HalfSpectrum& x, const HalfSpectrum& y,
                                          int max_lag, double epsilon) {
  if (x.fft_size != y.fft_size) {
    throw std::invalid_argument("gcc_phat_from_spectra: fft-size mismatch");
  }
  return correlate_spectra(x, y, max_lag, /*phat=*/true, epsilon);
}

int tdoa_samples(std::span<const audio::Sample> x, std::span<const audio::Sample> y,
                 int max_lag) {
  return gcc_phat(x, y, max_lag).peak_lag();
}

}  // namespace headtalk::dsp
