#include "dsp/correlation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/fft.h"
#include "dsp/simd/dispatch.h"

namespace headtalk::dsp {
namespace {

// Shared core: computes IFFT( W(f) * X(f) * conj(Y(f)) ) and extracts the
// symmetric lag window. `phat` selects phase-transform weighting.
void correlate_spectra_into(const HalfSpectrum& xs, const HalfSpectrum& ys,
                            int max_lag, bool phat, double epsilon,
                            CorrelationSequence& out, CorrelationWorkspace& ws) {
  if (max_lag < 0) throw std::invalid_argument("correlate: max_lag must be >= 0");
  if (xs.fft_size != ys.fft_size || xs.bins.size() != ys.bins.size()) {
    throw std::invalid_argument("correlate: fft-size mismatch");
  }
  const std::size_t n = xs.fft_size;
  const std::size_t window = 2 * static_cast<std::size_t>(max_lag) + 1;
  // Negative lags wrap to index n - |lag| of the circular correlation; a
  // transform shorter than the lag window would alias them into the
  // positive-lag region, corrupting the output silently.
  if (n < window) {
    throw std::invalid_argument(
        "correlate: fft_size must be >= 2*max_lag + 1 to cover the lag window");
  }
  ws.cross.fft_size = n;
  ws.cross.bins.resize(xs.bins.size());
  // Cross spectrum and PHAT weighting run through the dispatched kernel
  // (the per-bin normalize is one of the three dominant scoring loops);
  // the inverse transform computes only the ±max_lag window.
  simd::kernels().cross_spectrum(
      reinterpret_cast<const double*>(xs.bins.data()),
      reinterpret_cast<const double*>(ys.bins.data()),
      reinterpret_cast<double*>(ws.cross.bins.data()), ws.cross.bins.size(),
      phat, epsilon);
  out.max_lag = max_lag;
  irfft_half_window_into(ws.cross, max_lag, out.values, ws.fft);
}

CorrelationSequence correlate(std::span<const audio::Sample> x,
                              std::span<const audio::Sample> y, int max_lag,
                              bool phat, double epsilon) {
  if (max_lag < 0) throw std::invalid_argument("correlate: max_lag must be >= 0");
  if (x.empty() || y.empty()) {
    return CorrelationSequence{std::vector<double>(2 * max_lag + 1, 0.0), max_lag};
  }
  // The transform must cover both the linear-correlation padding and the
  // full lag window (short signals with a wide window need the latter).
  const std::size_t lag = static_cast<std::size_t>(max_lag);
  const std::size_t needed =
      std::max(std::max(x.size(), y.size()) + lag + 1, 2 * lag + 1);
  const std::size_t n = std::max<std::size_t>(2, next_pow2(needed));
  CorrelationSequence out;
  CorrelationWorkspace ws;
  correlate_spectra_into(rfft_half(x, n), rfft_half(y, n), max_lag, phat, epsilon,
                         out, ws);
  return out;
}

}  // namespace

int CorrelationSequence::peak_lag() const {
  if (values.empty()) return 0;
  const auto it = std::max_element(values.begin(), values.end());
  return static_cast<int>(std::distance(values.begin(), it)) - max_lag;
}

double CorrelationSequence::peak_value() const {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

CorrelationSequence cross_correlation(std::span<const audio::Sample> x,
                                      std::span<const audio::Sample> y, int max_lag) {
  return correlate(x, y, max_lag, /*phat=*/false, 0.0);
}

CorrelationSequence gcc_phat(std::span<const audio::Sample> x,
                             std::span<const audio::Sample> y, int max_lag,
                             double epsilon) {
  return correlate(x, y, max_lag, /*phat=*/true, epsilon);
}

CorrelationSequence gcc_phat_from_spectra(const HalfSpectrum& x, const HalfSpectrum& y,
                                          int max_lag, double epsilon) {
  CorrelationSequence out;
  CorrelationWorkspace ws;
  gcc_phat_from_spectra_into(x, y, max_lag, out, ws, epsilon);
  return out;
}

void gcc_phat_from_spectra_into(const HalfSpectrum& x, const HalfSpectrum& y,
                                int max_lag, CorrelationSequence& out,
                                CorrelationWorkspace& workspace, double epsilon) {
  correlate_spectra_into(x, y, max_lag, /*phat=*/true, epsilon, out, workspace);
}

int tdoa_samples(std::span<const audio::Sample> x, std::span<const audio::Sample> y,
                 int max_lag) {
  return gcc_phat(x, y, max_lag).peak_lag();
}

}  // namespace headtalk::dsp
