// Statistical summaries used as classifier features (§III-B3: kurtosis,
// skewness, maximum, mean absolute deviation, standard deviation of the
// SRP and GCC sequences).
#pragma once

#include <span>
#include <vector>

namespace headtalk::dsp {

[[nodiscard]] double mean(std::span<const double> x);
[[nodiscard]] double variance(std::span<const double> x);        ///< population variance
[[nodiscard]] double standard_deviation(std::span<const double> x);
[[nodiscard]] double skewness(std::span<const double> x);        ///< 0 for constant input
[[nodiscard]] double kurtosis(std::span<const double> x);        ///< excess kurtosis; 0 for constant input
[[nodiscard]] double mean_absolute_deviation(std::span<const double> x);
[[nodiscard]] double maximum(std::span<const double> x);         ///< 0 for empty input
[[nodiscard]] double minimum(std::span<const double> x);         ///< 0 for empty input
[[nodiscard]] double root_mean_square(std::span<const double> x);

/// The five summary statistics the paper lists, in a fixed order:
/// {kurtosis, skewness, maximum, MAD, std}.
[[nodiscard]] std::vector<double> summary_statistics(std::span<const double> x);

}  // namespace headtalk::dsp
