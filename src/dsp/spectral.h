// Spectral measurements: band energies, high/low-band ratio (HLBR),
// centroid, flatness, roll-off, slope, and log band energies.
//
// HLBR and the 20-chunk low-band statistics are orientation features
// (§III-B3 "Speech Directivity"); the log-band/slope measures feed the
// liveness detector (§III-A keys on the 4 kHz+ energy distribution).
//
// Every frequency band is half-open [low_hz, high_hz) over bin center
// frequencies, with a small floating-point tolerance at the edges so
// computed band boundaries that coincide with a bin frequency resolve the
// same way regardless of rounding error. A high_hz above Nyquist is
// clamped to the whole remaining spectrum; a low_hz at or above Nyquist
// throws std::invalid_argument.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "audio/sample_buffer.h"

namespace headtalk::dsp {

/// Mean magnitude of the spectrum bins falling in [low_hz, high_hz).
[[nodiscard]] double band_mean_magnitude(std::span<const double> magnitude,
                                         std::size_t fft_size, double sample_rate,
                                         double low_hz, double high_hz);

/// Sum of squared magnitudes in [low_hz, high_hz) (band energy).
[[nodiscard]] double band_energy(std::span<const double> magnitude,
                                 std::size_t fft_size, double sample_rate,
                                 double low_hz, double high_hz);

/// High-to-low band ratio: mean |X| of the high band divided by mean |X| of
/// the low band. Returns 0 when the low band is silent.
[[nodiscard]] double high_low_band_ratio(std::span<const double> magnitude,
                                         std::size_t fft_size, double sample_rate,
                                         double low_band_lo, double low_band_hi,
                                         double high_band_lo, double high_band_hi);

/// Splits [low_hz, high_hz) into `chunks` equal bands and returns, for each,
/// {mean, RMS, std} of the contained magnitudes — 3*chunks values.
[[nodiscard]] std::vector<double> banded_statistics(std::span<const double> magnitude,
                                                    std::size_t fft_size,
                                                    double sample_rate, double low_hz,
                                                    double high_hz, std::size_t chunks);

/// Log10 band energies over `bands` equal-width bands spanning
/// [low_hz, high_hz), floored at `floor_db` dB below the maximum band.
[[nodiscard]] std::vector<double> log_band_energies(std::span<const double> magnitude,
                                                    std::size_t fft_size,
                                                    double sample_rate, double low_hz,
                                                    double high_hz, std::size_t bands,
                                                    double floor_db = 80.0);

/// Amplitude-weighted mean frequency (Hz).
[[nodiscard]] double spectral_centroid(std::span<const double> magnitude,
                                       std::size_t fft_size, double sample_rate);

/// Geometric/arithmetic mean ratio of the power spectrum in [low_hz, high_hz)
/// — near 1 for noise-like, near 0 for tonal content.
[[nodiscard]] double spectral_flatness(std::span<const double> magnitude,
                                       std::size_t fft_size, double sample_rate,
                                       double low_hz, double high_hz);

/// Frequency below which `fraction` (e.g. 0.95) of total spectral energy lies.
[[nodiscard]] double spectral_rolloff(std::span<const double> magnitude,
                                      std::size_t fft_size, double sample_rate,
                                      double fraction = 0.95);

/// Least-squares slope of log-magnitude vs. frequency (dB per kHz) over
/// [low_hz, high_hz) — captures the >4 kHz decay difference of Fig. 3.
[[nodiscard]] double spectral_slope_db_per_khz(std::span<const double> magnitude,
                                               std::size_t fft_size, double sample_rate,
                                               double low_hz, double high_hz);

}  // namespace headtalk::dsp
