// IIR biquad sections and Butterworth filter design.
//
// The preprocessing stage of HeadTalk (§III) applies a fifth-order
// Butterworth band-pass keeping 100 Hz – 16 kHz. We realise Butterworth
// low/high-pass of arbitrary order as a cascade of second-order sections
// (RBJ bilinear-transform forms), and band-pass as a high-pass/low-pass
// cascade, which is how such wideband "band-pass" filters are built in
// practice (the pass band spans more than 7 octaves).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "audio/sample_buffer.h"

namespace headtalk::dsp {

/// One direct-form-II-transposed second-order section.
/// Coefficients are normalized so a0 == 1.
struct Biquad {
  double b0 = 1.0, b1 = 0.0, b2 = 0.0;
  double a1 = 0.0, a2 = 0.0;

  /// Processes one sample and updates the internal state.
  [[nodiscard]] audio::Sample process(audio::Sample x) noexcept;

  /// Clears the delay line.
  void reset() noexcept { z1_ = z2_ = 0.0; }

 private:
  double z1_ = 0.0, z2_ = 0.0;
};

/// A cascade of biquad sections applied in sequence.
class BiquadCascade {
 public:
  BiquadCascade() = default;
  explicit BiquadCascade(std::vector<Biquad> sections) : sections_(std::move(sections)) {}

  [[nodiscard]] std::size_t section_count() const noexcept { return sections_.size(); }

  [[nodiscard]] audio::Sample process(audio::Sample x) noexcept;
  void reset() noexcept;

  /// Filters a whole buffer (stateful; call reset() between signals).
  void process(std::span<audio::Sample> x) noexcept;

  /// Convenience: returns a filtered copy with filter state reset first.
  [[nodiscard]] audio::Buffer filtered(const audio::Buffer& x);

  /// Complex magnitude response at normalized angular frequency `w` (rad).
  [[nodiscard]] double magnitude_response(double w) const;

 private:
  std::vector<Biquad> sections_;
};

/// Butterworth low-pass of the given order (>=1) with cut-off `cutoff_hz`.
[[nodiscard]] BiquadCascade butterworth_lowpass(int order, double cutoff_hz,
                                                double sample_rate);

/// Butterworth high-pass of the given order (>=1) with cut-off `cutoff_hz`.
[[nodiscard]] BiquadCascade butterworth_highpass(int order, double cutoff_hz,
                                                 double sample_rate);

/// Wideband Butterworth band-pass: high-pass at `low_hz` cascaded with
/// low-pass at `high_hz`, each of the given order.
[[nodiscard]] BiquadCascade butterworth_bandpass(int order, double low_hz,
                                                 double high_hz, double sample_rate);

}  // namespace headtalk::dsp
