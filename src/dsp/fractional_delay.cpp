#include "dsp/fractional_delay.h"

#include <cmath>
#include <numbers>

namespace headtalk::dsp {
namespace {

double windowed_sinc(double x, int half_width) {
  if (std::abs(x) >= half_width) return 0.0;
  const double px = std::numbers::pi * x;
  const double sinc = std::abs(x) < 1e-12 ? 1.0 : std::sin(px) / px;
  // Hann window over [-half_width, half_width].
  const double w = 0.5 + 0.5 * std::cos(px / half_width);
  return sinc * w;
}

}  // namespace

void add_fractional_impulse(std::span<audio::Sample> target, double delay_samples,
                            double amplitude, int half_width) {
  const auto center = static_cast<long>(std::floor(delay_samples));
  for (long k = center - half_width; k <= center + half_width + 1; ++k) {
    if (k < 0 || k >= static_cast<long>(target.size())) continue;
    const double x = static_cast<double>(k) - delay_samples;
    target[static_cast<std::size_t>(k)] += amplitude * windowed_sinc(x, half_width);
  }
}

std::vector<audio::Sample> fractional_delay(std::span<const audio::Sample> x,
                                            double delay_samples, int half_width) {
  std::vector<audio::Sample> out(x.size(), 0.0);
  // y[n] = sum_k x[k] * h(n - k - delay)  ==  convolution with a shifted
  // sinc; implemented output-side for clarity.
  for (std::size_t n = 0; n < out.size(); ++n) {
    const double center = static_cast<double>(n) - delay_samples;
    const auto first = static_cast<long>(std::ceil(center - half_width));
    const auto last = static_cast<long>(std::floor(center + half_width));
    double acc = 0.0;
    for (long k = std::max<long>(first, 0);
         k <= std::min<long>(last, static_cast<long>(x.size()) - 1); ++k) {
      acc += x[static_cast<std::size_t>(k)] *
             windowed_sinc(center - static_cast<double>(k), half_width);
    }
    out[n] = acc;
  }
  return out;
}

}  // namespace headtalk::dsp
