#include "dsp/biquad.h"

#include <cmath>
#include <complex>
#include <numbers>
#include <stdexcept>

namespace headtalk::dsp {

audio::Sample Biquad::process(audio::Sample x) noexcept {
  const double y = b0 * x + z1_;
  z1_ = b1 * x - a1 * y + z2_;
  z2_ = b2 * x - a2 * y;
  return y;
}

audio::Sample BiquadCascade::process(audio::Sample x) noexcept {
  for (auto& s : sections_) x = s.process(x);
  return x;
}

void BiquadCascade::reset() noexcept {
  for (auto& s : sections_) s.reset();
}

void BiquadCascade::process(std::span<audio::Sample> x) noexcept {
  for (auto& v : x) v = process(v);
}

audio::Buffer BiquadCascade::filtered(const audio::Buffer& x) {
  reset();
  audio::Buffer out = x;
  process(out.samples());
  return out;
}

double BiquadCascade::magnitude_response(double w) const {
  const std::complex<double> z = std::polar(1.0, -w);
  std::complex<double> h(1.0, 0.0);
  for (const auto& s : sections_) {
    const std::complex<double> num = s.b0 + s.b1 * z + s.b2 * z * z;
    const std::complex<double> den = 1.0 + s.a1 * z + s.a2 * z * z;
    h *= num / den;
  }
  return std::abs(h);
}

namespace {

void validate(int order, double cutoff_hz, double sample_rate) {
  if (order < 1) throw std::invalid_argument("butterworth: order must be >= 1");
  if (cutoff_hz <= 0.0 || cutoff_hz >= sample_rate / 2.0) {
    throw std::invalid_argument("butterworth: cutoff must lie in (0, Nyquist)");
  }
}

enum class Kind { kLowpass, kHighpass };

// RBJ cookbook second-order section for Butterworth pole pair with quality Q.
Biquad second_order(Kind kind, double cutoff_hz, double sample_rate, double q) {
  const double w0 = 2.0 * std::numbers::pi * cutoff_hz / sample_rate;
  const double cw = std::cos(w0);
  const double alpha = std::sin(w0) / (2.0 * q);
  const double a0 = 1.0 + alpha;
  Biquad s;
  if (kind == Kind::kLowpass) {
    s.b0 = (1.0 - cw) / 2.0 / a0;
    s.b1 = (1.0 - cw) / a0;
    s.b2 = s.b0;
  } else {
    s.b0 = (1.0 + cw) / 2.0 / a0;
    s.b1 = -(1.0 + cw) / a0;
    s.b2 = s.b0;
  }
  s.a1 = (-2.0 * cw) / a0;
  s.a2 = (1.0 - alpha) / a0;
  return s;
}

// First-order Butterworth section via the bilinear transform, expressed as a
// biquad with zeroed second-order terms.
Biquad first_order(Kind kind, double cutoff_hz, double sample_rate) {
  const double k = std::tan(std::numbers::pi * cutoff_hz / sample_rate);
  const double norm = 1.0 / (k + 1.0);
  Biquad s;
  if (kind == Kind::kLowpass) {
    s.b0 = k * norm;
    s.b1 = k * norm;
  } else {
    s.b0 = norm;
    s.b1 = -norm;
  }
  s.b2 = 0.0;
  s.a1 = (k - 1.0) * norm;
  s.a2 = 0.0;
  return s;
}

BiquadCascade design(Kind kind, int order, double cutoff_hz, double sample_rate) {
  validate(order, cutoff_hz, sample_rate);
  std::vector<Biquad> sections;
  const int pairs = order / 2;
  for (int k = 0; k < pairs; ++k) {
    // Butterworth pole pair k lies at angle psi = pi/2 - (2k+1)pi/(2N) from
    // the negative real axis, giving Q = 1 / (2 cos psi) = 1 / (2 sin theta).
    const double theta =
        std::numbers::pi * (2.0 * k + 1.0) / (2.0 * static_cast<double>(order));
    const double q = 1.0 / (2.0 * std::sin(theta));
    sections.push_back(second_order(kind, cutoff_hz, sample_rate, q));
  }
  if (order % 2 == 1) sections.push_back(first_order(kind, cutoff_hz, sample_rate));
  return BiquadCascade(std::move(sections));
}

}  // namespace

BiquadCascade butterworth_lowpass(int order, double cutoff_hz, double sample_rate) {
  return design(Kind::kLowpass, order, cutoff_hz, sample_rate);
}

BiquadCascade butterworth_highpass(int order, double cutoff_hz, double sample_rate) {
  return design(Kind::kHighpass, order, cutoff_hz, sample_rate);
}

BiquadCascade butterworth_bandpass(int order, double low_hz, double high_hz,
                                   double sample_rate) {
  if (low_hz >= high_hz) {
    throw std::invalid_argument("butterworth_bandpass: low_hz must be < high_hz");
  }
  validate(order, low_hz, sample_rate);
  validate(order, high_hz, sample_rate);
  std::vector<Biquad> all;
  auto append = [&all, order, sample_rate](Kind kind, double fc) {
    const int pairs = order / 2;
    for (int k = 0; k < pairs; ++k) {
      const double theta =
          std::numbers::pi * (2.0 * k + 1.0) / (2.0 * static_cast<double>(order));
      const double q = 1.0 / (2.0 * std::sin(theta));
      all.push_back(second_order(kind, fc, sample_rate, q));
    }
    if (order % 2 == 1) all.push_back(first_order(kind, fc, sample_rate));
  };
  append(Kind::kHighpass, low_hz);
  append(Kind::kLowpass, high_hz);
  return BiquadCascade(std::move(all));
}

}  // namespace headtalk::dsp
