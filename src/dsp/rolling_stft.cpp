#include "dsp/rolling_stft.h"

#include <algorithm>
#include <stdexcept>

namespace headtalk::dsp {

void RollingStft::reset(const Config& config) {
  if (config.channels == 0) {
    throw std::invalid_argument("RollingStft: need at least one channel");
  }
  if (config.frame_size == 0 || config.hop_size == 0) {
    throw std::invalid_argument("RollingStft: frame and hop must be positive");
  }
  const std::size_t fft_size =
      config.fft_size != 0 ? config.fft_size
                           : std::max<std::size_t>(2, next_pow2(config.frame_size));
  if (fft_size < config.frame_size) {
    throw std::invalid_argument("RollingStft: fft_size must cover the frame");
  }
  config_ = config;
  fft_size_ = fft_size;
  buffers_.assign(config.channels, {});
  base_ = 0;
  emitted_ = 0;
  finished_ = false;
  window_ = &shared_window(config.window, config.frame_size);
  windowed_.assign(config.channels, std::vector<audio::Sample>(config.frame_size, 0.0));
  spectra_.resize(config.channels);
}

void RollingStft::push(std::size_t channel, std::span<const audio::Sample> samples) {
  if (channel >= buffers_.size()) {
    throw std::out_of_range("RollingStft: channel out of range");
  }
  if (finished_) {
    throw std::logic_error("RollingStft: push after finish");
  }
  auto& buffer = buffers_[channel];
  buffer.insert(buffer.end(), samples.begin(), samples.end());
}

void RollingStft::finish() { finished_ = true; }

std::size_t RollingStft::samples_pushed() const noexcept {
  std::size_t least = buffers_.empty() ? 0 : buffers_.front().size();
  for (const auto& buffer : buffers_) least = std::min(least, buffer.size());
  return base_ + least;
}

bool RollingStft::pop(RollingStftFrame& frame) {
  const std::size_t start = emitted_ * config_.hop_size;
  const std::size_t avail = samples_pushed();
  if (!finished_) {
    // Eagerly emit only fully-populated frames; a frame the batch framing
    // rule would have stopped before cannot be fully populated (the break
    // fires when start + frame_size reaches the signal end), so the eager
    // sequence is always a prefix of the batch sequence.
    if (avail < start + config_.frame_size) return false;
  } else {
    // Replicate dsp::stft exactly: frames are emitted at every hop while
    // start < size, stopping after the first frame whose window reaches
    // the signal end.
    if (avail == 0 || start >= avail) return false;
    if (emitted_ > 0 && (emitted_ - 1) * config_.hop_size + config_.frame_size >= avail) {
      return false;
    }
  }

  const std::size_t valid = std::min(config_.frame_size, avail - start);
  const auto& window = *window_;
  for (std::size_t c = 0; c < config_.channels; ++c) {
    const auto& buffer = buffers_[c];
    auto& out = windowed_[c];
    const std::size_t offset = start - base_;
    for (std::size_t i = 0; i < valid; ++i) out[i] = buffer[offset + i] * window[i];
    std::fill(out.begin() + static_cast<std::ptrdiff_t>(valid), out.end(), 0.0);
    rfft_half_into(out, fft_size_, spectra_[c], fft_scratch_);
  }

  frame.index = emitted_;
  frame.valid = valid;
  frame.windowed = {windowed_.data(), windowed_.size()};
  frame.spectra = {spectra_.data(), spectra_.size()};
  ++emitted_;
  compact();
  return true;
}

void RollingStft::compact() {
  // Drop samples no future frame can read. Deferred until the dead prefix
  // is a few frames long so steady state is one memmove per ~4 frames,
  // not per pop.
  const std::size_t next_start = emitted_ * config_.hop_size;
  if (next_start <= base_) return;
  std::size_t drop = next_start - base_;
  if (drop < 4 * config_.frame_size) return;
  for (const auto& buffer : buffers_) drop = std::min(drop, buffer.size());
  if (drop == 0) return;
  for (auto& buffer : buffers_) {
    buffer.erase(buffer.begin(), buffer.begin() + static_cast<std::ptrdiff_t>(drop));
  }
  base_ += drop;
}

}  // namespace headtalk::dsp
