#include "dsp/convolve.h"

#include <algorithm>

#include "dsp/fft.h"

namespace headtalk::dsp {

std::vector<audio::Sample> convolve_direct(std::span<const audio::Sample> x,
                                           std::span<const audio::Sample> h) {
  if (x.empty() || h.empty()) return {};
  std::vector<audio::Sample> y(x.size() + h.size() - 1, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const audio::Sample xi = x[i];
    if (xi == 0.0) continue;
    for (std::size_t j = 0; j < h.size(); ++j) y[i + j] += xi * h[j];
  }
  return y;
}

std::vector<audio::Sample> convolve_fft(std::span<const audio::Sample> x,
                                        std::span<const audio::Sample> h) {
  if (x.empty() || h.empty()) return {};
  const std::size_t out_len = x.size() + h.size() - 1;
  const std::size_t n = std::max<std::size_t>(2, next_pow2(out_len));
  auto xs = rfft_half(x, n);
  xs.multiply(rfft_half(h, n));
  return irfft_half(xs, out_len);
}

audio::Buffer convolve(const audio::Buffer& x, std::span<const audio::Sample> h,
                       bool trim_to_input) {
  auto y = convolve_fft(x.samples(), h);
  if (trim_to_input) y.resize(x.size());
  return audio::Buffer(std::move(y), x.sample_rate());
}

}  // namespace headtalk::dsp
