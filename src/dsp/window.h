// Analysis window functions for STFT / spectral feature extraction.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "audio/sample_buffer.h"

namespace headtalk::dsp {

enum class WindowType {
  kRectangular,
  kHann,
  kHamming,
  kBlackman,
};

/// Returns the window coefficients of the given length (periodic form,
/// suitable for STFT analysis).
[[nodiscard]] std::vector<double> make_window(WindowType type, std::size_t length);

/// Interned make_window: returns a reference to a process-lifetime table,
/// built once per (type, length) behind a mutex. Thread-safe; the
/// reference never dangles. Use in hot loops (STFT) to skip rebuilding
/// the cosine table per call.
[[nodiscard]] const std::vector<double>& shared_window(WindowType type,
                                                       std::size_t length);

/// Multiplies `frame` by `window` element-wise (sizes must match).
void apply_window(std::span<audio::Sample> frame, std::span<const double> window);

}  // namespace headtalk::dsp
