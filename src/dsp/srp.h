// SRP-PHAT: Steered Response Power with Phase Transform (DiBiase [23],
// Do & Silverman [25]).
//
// Following Eq. 6 of the paper, the weighted SRP over a lag window is the
// sum of the GCC-PHAT sequences of all microphone pairs. HeadTalk is the
// first to use the SRP sequence (its peak structure, Fig. 6b) as a speaker
// *orientation* feature rather than for localization.
#pragma once

#include <cstddef>
#include <vector>

#include "audio/sample_buffer.h"
#include "dsp/correlation.h"

namespace headtalk::dsp {

/// GCC-PHAT sequences for every unordered microphone pair (i < j) of a
/// multichannel capture, all over the same symmetric lag window.
struct PairwiseGcc {
  struct Pair {
    std::size_t i = 0, j = 0;
    CorrelationSequence gcc;
  };
  std::vector<Pair> pairs;
  int max_lag = 0;
};

/// Computes GCC-PHAT for all channel pairs of `capture` over
/// [-max_lag, +max_lag] samples.
[[nodiscard]] PairwiseGcc pairwise_gcc_phat(const audio::MultiBuffer& capture,
                                            int max_lag);

/// Reusable scratch for repeated pairwise GCC extraction: the per-channel
/// spectra and the correlation workspace. One per thread.
struct SrpWorkspace {
  std::vector<HalfSpectrum> spectra;
  CorrelationWorkspace correlation;
  FftScratch fft;
};

/// pairwise_gcc_phat writing into caller-owned output/scratch; results are
/// bit-identical to the value-returning overload.
void pairwise_gcc_phat_into(const audio::MultiBuffer& capture, int max_lag,
                            PairwiseGcc& out, SrpWorkspace& workspace);

/// Weighted SRP-PHAT sequence (Eq. 6): element-wise sum of all pair GCCs.
[[nodiscard]] CorrelationSequence srp_phat(const PairwiseGcc& gcc);

/// Convenience: SRP-PHAT directly from a capture.
[[nodiscard]] CorrelationSequence srp_phat(const audio::MultiBuffer& capture,
                                           int max_lag);

/// The paper selects the SRP lag window from the array's maximum
/// inter-microphone spacing: N = d*fs/c samples on each side.
/// Returns that max_lag (at least 1).
[[nodiscard]] int srp_max_lag(double max_mic_distance_m, double sample_rate,
                              double speed_of_sound = 340.0);

/// Returns the values of the `k` largest local maxima of a sequence,
/// descending, requiring `min_separation` samples between peaks (Fig. 6b
/// shows 3-4 reverberation peaks; the top three are a feature).
///
/// A peak must be an *interior* sample that dominates both neighbours
/// (>= left, > right). The first and last samples never qualify: the edges
/// of a truncated correlation window routinely carry boundary artifacts,
/// and counting them as maxima displaced true SRP peaks. A monotone ramp
/// therefore has no peaks and yields `k` zero-padded values.
[[nodiscard]] std::vector<double> top_peaks(const std::vector<double>& seq,
                                            std::size_t k,
                                            std::size_t min_separation = 2);

}  // namespace headtalk::dsp
