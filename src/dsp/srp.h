// SRP-PHAT: Steered Response Power with Phase Transform (DiBiase [23],
// Do & Silverman [25]).
//
// Following Eq. 6 of the paper, the weighted SRP over a lag window is the
// sum of the GCC-PHAT sequences of all microphone pairs. HeadTalk is the
// first to use the SRP sequence (its peak structure, Fig. 6b) as a speaker
// *orientation* feature rather than for localization.
#pragma once

#include <cstddef>
#include <vector>

#include "audio/sample_buffer.h"
#include "dsp/correlation.h"

namespace headtalk::dsp {

/// GCC-PHAT sequences for every unordered microphone pair (i < j) of a
/// multichannel capture, all over the same symmetric lag window.
struct PairwiseGcc {
  struct Pair {
    std::size_t i = 0, j = 0;
    CorrelationSequence gcc;
    /// Mean cross-spectral coherence of the pair (1.0 when pruning is
    /// disabled — the estimate is only computed when a floor is set).
    double coherence = 1.0;
    /// True when the pair fell below the coherence floor: its gcc window
    /// is all zeros and it contributed nothing to SRP.
    bool pruned = false;
  };
  std::vector<Pair> pairs;
  int max_lag = 0;
};

/// Options for pairwise GCC extraction. With `coherence_floor > 0`, each
/// pair's mean magnitude-squared coherence is estimated from block-averaged
/// cross spectra (|sum XY*|^2 / (sum|X|^2 sum|Y|^2) over blocks of
/// `coherence_block` bins sampled every `coherence_stride`-th bin) and
/// pairs below the floor skip PHAT weighting and the inverse transform
/// entirely — their gcc window is zeroed and flagged. Independent noise
/// between two channels averages ~1/coherence_block (~0.016); genuinely
/// coupled channels sit near 1, so floors around 0.1–0.3 separate them
/// with a wide margin. The default floor 0 disables the estimate (and its
/// cost) completely.
struct PairwiseGccOptions {
  double coherence_floor = 0.0;
  std::size_t coherence_block = 64;
  std::size_t coherence_stride = 4;
};

/// Computes GCC-PHAT for all channel pairs of `capture` over
/// [-max_lag, +max_lag] samples.
[[nodiscard]] PairwiseGcc pairwise_gcc_phat(const audio::MultiBuffer& capture,
                                            int max_lag,
                                            const PairwiseGccOptions& options = {});

/// Reusable scratch for repeated pairwise GCC extraction and SRP peak
/// search: per-channel spectra, correlation scratch, the summed cross
/// spectrum, and the steering phasor table. One per thread.
struct SrpWorkspace {
  std::vector<HalfSpectrum> spectra;
  CorrelationWorkspace correlation;
  FftScratch fft;
  HalfSpectrum combined;          ///< summed PHAT cross spectrum (srp_peak_search)
  std::vector<Complex> rotation;  ///< steering phasors e^(i*2*pi*k*tau/N)
};

/// pairwise_gcc_phat writing into caller-owned output/scratch; results are
/// bit-identical to the value-returning overload.
void pairwise_gcc_phat_into(const audio::MultiBuffer& capture, int max_lag,
                            PairwiseGcc& out, SrpWorkspace& workspace,
                            const PairwiseGccOptions& options = {});

/// Weighted SRP-PHAT sequence (Eq. 6): element-wise sum of all pair GCCs.
[[nodiscard]] CorrelationSequence srp_phat(const PairwiseGcc& gcc);

/// Convenience: SRP-PHAT directly from a capture.
[[nodiscard]] CorrelationSequence srp_phat(const audio::MultiBuffer& capture,
                                           int max_lag);

/// Coarse-to-fine SRP peak search. Instead of materializing every pair's
/// GCC sequence and summing (dense srp_phat), the PHAT-weighted cross
/// spectra of all pairs are summed once in the frequency domain and the
/// SRP power is evaluated *per candidate lag* by steering-delay
/// accumulation: P(tau) = (1/N) sum_k Re(C_k e^(i*2*pi*k*tau/N)). A sparse
/// grid of every `coarse_stride`-th lag is scored first, then the
/// ±`refine_radius` neighbourhood of the coarse winner — O((W/s + 2r)·N/2)
/// instead of the dense O(P·N·logN), which wins as arrays grow and lag
/// windows widen. By linearity P(tau) equals the dense SRP value at tau up
/// to recurrence rounding (~1e-12 relative), so whenever the true peak
/// lies within refine_radius of the best coarse sample — any peak whose
/// main lobe spans a stride, i.e. every physical TDoA peak — the refined
/// argmax matches the dense argmax exactly.
struct SrpSearchConfig {
  int max_lag = 1;
  int coarse_stride = 4;
  int refine_radius = 4;
  double epsilon = 1e-12;  ///< PHAT regularizer, as in gcc_phat
  PairwiseGccOptions pair_options{};
};

struct SrpSearchResult {
  int peak_lag = 0;
  double peak_value = 0.0;
  std::size_t evaluated = 0;     ///< steered-power evaluations performed
  std::size_t pairs_pruned = 0;  ///< pairs dropped by the coherence floor
};

[[nodiscard]] SrpSearchResult srp_peak_search(const audio::MultiBuffer& capture,
                                              const SrpSearchConfig& config,
                                              SrpWorkspace& workspace);

/// The paper selects the SRP lag window from the array's maximum
/// inter-microphone spacing: N = d*fs/c samples on each side.
/// Returns that max_lag (at least 1).
[[nodiscard]] int srp_max_lag(double max_mic_distance_m, double sample_rate,
                              double speed_of_sound = 340.0);

/// Returns the values of the `k` largest local maxima of a sequence,
/// descending, requiring `min_separation` samples between peaks (Fig. 6b
/// shows 3-4 reverberation peaks; the top three are a feature).
///
/// A peak must be an *interior* sample that dominates both neighbours
/// (>= left, > right). The first and last samples never qualify: the edges
/// of a truncated correlation window routinely carry boundary artifacts,
/// and counting them as maxima displaced true SRP peaks. A monotone ramp
/// therefore has no peaks and yields `k` zero-padded values.
[[nodiscard]] std::vector<double> top_peaks(const std::vector<double>& seq,
                                            std::size_t k,
                                            std::size_t min_separation = 2);

}  // namespace headtalk::dsp
