// Fractional-delay impulse placement.
//
// The image-source room model produces echo arrival times that are not
// integer sample counts; rounding them would bias TDoA estimates by up to
// half a sample (== several degrees of bearing at these array apertures).
// We instead spread each impulse over a short windowed-sinc kernel centred
// at the exact fractional delay.
#pragma once

#include <span>
#include <vector>

#include "audio/sample_buffer.h"

namespace headtalk::dsp {

/// Adds `amplitude * sinc(t - delay_samples)` into `target`, windowed to
/// `half_width` taps on each side (Hann-windowed sinc). Contributions
/// falling outside the buffer are dropped.
void add_fractional_impulse(std::span<audio::Sample> target, double delay_samples,
                            double amplitude, int half_width = 32);

/// Returns a signal equal to `x` delayed by `delay_samples` (may be
/// fractional and/or negative), same length as x.
[[nodiscard]] std::vector<audio::Sample> fractional_delay(
    std::span<const audio::Sample> x, double delay_samples, int half_width = 32);

}  // namespace headtalk::dsp
