#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "sim/feature_cache.h"
#include "sim/spec.h"
#include "util/thread_pool.h"

namespace headtalk::sim {
namespace {

TEST(SampleSpec, KeyIsCompleteAndDistinct) {
  SampleSpec a;
  const std::string base = a.key();
  // Every field change must alter the key (cache correctness depends on it).
  auto differs = [&base](SampleSpec spec) { return spec.key() != base; };

  SampleSpec s = a;
  s.room = RoomId::kHome;
  EXPECT_TRUE(differs(s));
  s = a;
  s.placement = PlacementId::kB;
  EXPECT_TRUE(differs(s));
  s = a;
  s.device = room::DeviceId::kD3;
  EXPECT_TRUE(differs(s));
  s = a;
  s.word = speech::WakeWord::kAmazon;
  EXPECT_TRUE(differs(s));
  s = a;
  s.location = {GridRadial::kLeft, 1.0};
  EXPECT_TRUE(differs(s));
  s = a;
  s.angle_deg = 45.0;
  EXPECT_TRUE(differs(s));
  s = a;
  s.session = 1;
  EXPECT_TRUE(differs(s));
  s = a;
  s.repetition = 1;
  EXPECT_TRUE(differs(s));
  s = a;
  s.user_id = 3;
  EXPECT_TRUE(differs(s));
  s = a;
  s.loudness_db = 60.0;
  EXPECT_TRUE(differs(s));
  s = a;
  s.mouth_height_m = kSittingMouthHeight;
  EXPECT_TRUE(differs(s));
  s = a;
  s.replay = ReplaySource::kHighEnd;
  EXPECT_TRUE(differs(s));
  s = a;
  s.ambient_type = room::NoiseType::kBabbleTv;
  EXPECT_TRUE(differs(s));
  s = a;
  s.ambient_spl_db = 45.0;
  EXPECT_TRUE(differs(s));
  s = a;
  s.occlusion = OcclusionLevel::kFull;
  EXPECT_TRUE(differs(s));
  s = a;
  s.device_height_offset_m = 0.148;
  EXPECT_TRUE(differs(s));
  s = a;
  s.temporal_days = 7.0;
  EXPECT_TRUE(differs(s));
}

TEST(SampleSpec, KeyIsStable) {
  SampleSpec a, b;
  EXPECT_EQ(a.key(), b.key());
}

TEST(Fnv1a, KnownVectorsAndDispersion) {
  // FNV-1a 64 reference values.
  EXPECT_EQ(fnv1a64(""), 14695981039346656037ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_NE(fnv1a64("abc"), fnv1a64("acb"));
}

class FeatureCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("headtalk_cache_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::filesystem::path dir_;
};

TEST_F(FeatureCacheTest, StoreLoadRoundTrip) {
  FeatureCache cache(dir_);
  const ml::FeatureVector features{1.0, -2.5, 3.14159, 0.0};
  cache.store("some-key", features);
  const auto loaded = cache.load("some-key");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, features);
}

TEST_F(FeatureCacheTest, MissReturnsNullopt) {
  FeatureCache cache(dir_);
  EXPECT_FALSE(cache.load("never-stored").has_value());
}

TEST_F(FeatureCacheTest, KeyVerificationDetectsHashCollisionStyleMismatch) {
  FeatureCache cache(dir_);
  cache.store("key-a", {1.0});
  // Loading a different key that (hypothetically) hashed the same must not
  // return key-a's data; here we just verify a different key misses.
  EXPECT_FALSE(cache.load("key-b").has_value());
}

TEST_F(FeatureCacheTest, OverwriteReplaces) {
  FeatureCache cache(dir_);
  cache.store("k", {1.0});
  cache.store("k", {2.0, 3.0});
  const auto loaded = cache.load("k");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 2u);
}

TEST_F(FeatureCacheTest, DisabledCacheDropsEverything) {
  FeatureCache cache{std::filesystem::path{}};
  EXPECT_FALSE(cache.enabled());
  cache.store("k", {1.0});
  EXPECT_FALSE(cache.load("k").has_value());
}

TEST_F(FeatureCacheTest, CorruptFileIsTreatedAsMiss) {
  FeatureCache cache(dir_);
  cache.store("k", {1.0, 2.0});
  // Truncate the stored file.
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    std::filesystem::resize_file(entry.path(), 6);
  }
  EXPECT_FALSE(cache.load("k").has_value());
}

TEST_F(FeatureCacheTest, ConcurrentOverlappingStoresAndLoadsRoundTrip) {
  // N threads hammer one cache with overlapping keys: every thread stores
  // and loads every key (each key always maps to the same value, as in the
  // real cache, where a key renders deterministically). A load may miss —
  // the cache is best-effort — but a hit must round-trip exactly; a torn
  // temp-file write would surface here as a corrupt (missing/short/
  // mismatched) vector winning the rename.
  constexpr unsigned kThreads = 8;
  constexpr int kKeys = 12;
  constexpr int kRounds = 30;

  const auto value_for = [](int key) {
    ml::FeatureVector v;
    for (int j = 0; j <= key % 5 + 3; ++j) v.push_back(1000.0 * key + j + 0.25);
    return v;
  };

  FeatureCache cache(dir_);
  std::vector<std::string> failures(kThreads);
  util::parallel_for(kThreads, kThreads, [&](std::size_t t) {
    for (int round = 0; round < kRounds; ++round) {
      for (int key = 0; key < kKeys; ++key) {
        const std::string name = "shared-key-" + std::to_string(key);
        cache.store(name, value_for(key));
        if (const auto loaded = cache.load(name);
            loaded.has_value() && *loaded != value_for(key)) {
          failures[t] = "corrupt round-trip for " + name;
          return;
        }
      }
    }
  });
  for (const auto& failure : failures) EXPECT_TRUE(failure.empty()) << failure;

  // After the storm settles every key must be present and exact.
  for (int key = 0; key < kKeys; ++key) {
    const auto loaded = cache.load("shared-key-" + std::to_string(key));
    ASSERT_TRUE(loaded.has_value()) << key;
    EXPECT_EQ(*loaded, value_for(key)) << key;
  }
  // No temp files may be left behind.
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().extension(), ".bin") << entry.path();
  }
}

TEST_F(FeatureCacheTest, StatsCountHitsMissesAndStores) {
  FeatureCache cache(dir_);
  EXPECT_EQ(cache.stats().hits, 0u);

  cache.store("k", {1.0, 2.0});
  EXPECT_EQ(cache.stats().stores, 1u);

  (void)cache.load("k");
  (void)cache.load("k");
  (void)cache.load("absent");
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.stores, 1u);
  EXPECT_EQ(stats.evicted_bytes, 0u);
}

TEST_F(FeatureCacheTest, StatsAreSharedAcrossCopies) {
  FeatureCache cache(dir_);
  FeatureCache copy = cache;  // collector copies share one tally
  cache.store("k", {1.0});
  (void)copy.load("k");
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(copy.stats().stores, 1u);
}

TEST_F(FeatureCacheTest, DisabledCacheCountsNothing) {
  FeatureCache cache{std::filesystem::path{}};
  cache.store("k", {1.0});
  (void)cache.load("k");
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.stores, 0u);
}

TEST_F(FeatureCacheTest, CorruptEntryCountsAsMiss) {
  FeatureCache cache(dir_);
  cache.store("k", {1.0, 2.0});
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    std::filesystem::resize_file(entry.path(), 6);
  }
  (void)cache.load("k");
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST_F(FeatureCacheTest, ConcurrentStatsAreExact) {
  FeatureCache cache(dir_);
  cache.store("shared", {1.0});
  constexpr unsigned kThreads = 8;
  constexpr int kLoads = 200;
  util::parallel_for(kThreads, kThreads, [&](std::size_t) {
    for (int i = 0; i < kLoads; ++i) (void)cache.load("shared");
  });
  EXPECT_EQ(cache.stats().hits, kThreads * static_cast<std::uint64_t>(kLoads));
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST_F(FeatureCacheTest, EmptyVectorRoundTrips) {
  FeatureCache cache(dir_);
  cache.store("empty", {});
  const auto loaded = cache.load("empty");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->empty());
}

/// Stores `key`, finds the entry file it created (new .bin in the
/// directory), and back-dates its mtime by `age_minutes`.
std::filesystem::path store_and_age(const FeatureCache& cache, const std::string& key,
                                    const ml::FeatureVector& value, int age_minutes) {
  std::vector<std::filesystem::path> before;
  if (std::filesystem::exists(cache.directory())) {  // created lazily
    for (const auto& entry : std::filesystem::directory_iterator(cache.directory())) {
      before.push_back(entry.path());
    }
  }
  cache.store(key, value);
  for (const auto& entry : std::filesystem::directory_iterator(cache.directory())) {
    if (std::find(before.begin(), before.end(), entry.path()) == before.end()) {
      std::filesystem::last_write_time(
          entry.path(), std::filesystem::file_time_type::clock::now() -
                            std::chrono::minutes(age_minutes));
      return entry.path();
    }
  }
  ADD_FAILURE() << "store of '" << key << "' created no file";
  return {};
}

TEST_F(FeatureCacheTest, SizeCapPrunesLeastRecentlyUsedFirst) {
  const ml::FeatureVector value(8, 1.25);
  // Build four equal-size entries (keys share a length; the key is stored
  // in the file) with a known age order via an unlimited cache, so nothing
  // prunes while we arrange the scene.
  const FeatureCache unlimited(dir_, 0);
  (void)store_and_age(unlimited, "age-40", value, 40);
  (void)store_and_age(unlimited, "age-30", value, 30);
  (void)store_and_age(unlimited, "age-20", value, 20);
  (void)store_and_age(unlimited, "age-10", value, 10);

  std::uintmax_t entry_bytes = 0, total = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    entry_bytes = std::filesystem::file_size(entry.path());
    total += entry_bytes;
  }
  ASSERT_EQ(total, 4 * entry_bytes);

  // Cap at two entries: the two stalest must go, the two freshest stay.
  const FeatureCache capped(dir_, 2 * entry_bytes);
  capped.prune_now();
  EXPECT_FALSE(capped.load("age-40").has_value());
  EXPECT_FALSE(capped.load("age-30").has_value());
  EXPECT_TRUE(capped.load("age-20").has_value());
  EXPECT_TRUE(capped.load("age-10").has_value());
  const auto stats = capped.stats();
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.evicted_bytes, 2 * entry_bytes);
}

TEST_F(FeatureCacheTest, HitRefreshesRecencySoPruneSparesIt) {
  const ml::FeatureVector value(8, 0.5);
  const FeatureCache unlimited(dir_, 0);
  (void)store_and_age(unlimited, "aa-key", value, 60);  // stalest on disk...
  (void)store_and_age(unlimited, "bb-key", value, 30);
  const std::uintmax_t entry_bytes = std::filesystem::file_size(
      std::filesystem::directory_iterator(dir_)->path());

  // ...but a hit refreshes its mtime, flipping the LRU order.
  ASSERT_TRUE(unlimited.load("aa-key").has_value());

  const FeatureCache capped(dir_, entry_bytes);  // room for one entry
  capped.prune_now();
  EXPECT_TRUE(capped.load("aa-key").has_value());
  EXPECT_FALSE(capped.load("bb-key").has_value());
  EXPECT_EQ(capped.stats().evictions, 1u);
}

TEST_F(FeatureCacheTest, UnlimitedCacheNeverEvicts) {
  FeatureCache cache(dir_, 0);
  for (int i = 0; i < 8; ++i) {
    cache.store("key-" + std::to_string(i), ml::FeatureVector(64, 1.0));
  }
  cache.prune_now();
  EXPECT_EQ(cache.stats().evictions, 0u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(cache.load("key-" + std::to_string(i)).has_value()) << i;
  }
}

TEST_F(FeatureCacheTest, DefaultLimitReadsEnvironment) {
  const char* saved = std::getenv("HEADTALK_CACHE_LIMIT_MB");
  const std::string restore = saved != nullptr ? saved : "";

  ::setenv("HEADTALK_CACHE_LIMIT_MB", "5", 1);
  EXPECT_EQ(FeatureCache::default_limit_bytes(), 5ull << 20);
  ::setenv("HEADTALK_CACHE_LIMIT_MB", "not-a-number", 1);
  EXPECT_EQ(FeatureCache::default_limit_bytes(), 0u);
  ::unsetenv("HEADTALK_CACHE_LIMIT_MB");
  EXPECT_EQ(FeatureCache::default_limit_bytes(), 0u);

  if (saved != nullptr) {
    ::setenv("HEADTALK_CACHE_LIMIT_MB", restore.c_str(), 1);
  }
}

}  // namespace
}  // namespace headtalk::sim
