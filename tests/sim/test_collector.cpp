#include "sim/collector.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "audio/gain.h"

namespace headtalk::sim {
namespace {

CollectorConfig no_cache_config() {
  CollectorConfig cfg;
  cfg.cache_enabled = false;
  return cfg;
}

TEST(Collector, CaptureShapeFollowsDeviceChannels) {
  Collector collector(no_cache_config());
  SampleSpec spec;  // D2 default
  const auto cap = collector.capture(spec);
  EXPECT_EQ(cap.channel_count(), 4u);  // default 4-mic subset
  EXPECT_DOUBLE_EQ(cap.sample_rate(), 48000.0);
  EXPECT_GT(cap.frames(), 20000u);
  for (std::size_t c = 0; c < cap.channel_count(); ++c) {
    EXPECT_GT(audio::rms(cap.channel(c).samples()), 0.0);
  }
}

TEST(Collector, ExplicitChannelOverride) {
  CollectorConfig cfg = no_cache_config();
  cfg.channels = {0, 1, 2, 3, 4, 5};
  Collector collector(cfg);
  SampleSpec spec;
  EXPECT_EQ(collector.capture(spec).channel_count(), 6u);
}

TEST(Collector, CaptureIsDeterministic) {
  Collector collector(no_cache_config());
  SampleSpec spec;
  spec.angle_deg = 45.0;
  const auto a = collector.capture(spec);
  const auto b = collector.capture(spec);
  for (std::size_t i = 0; i < a.frames(); ++i) {
    ASSERT_DOUBLE_EQ(a.channel(0)[i], b.channel(0)[i]);
  }
}

TEST(Collector, RepetitionsDiffer) {
  Collector collector(no_cache_config());
  SampleSpec a, b;
  b.repetition = 1;
  const auto ca = collector.capture(a);
  const auto cb = collector.capture(b);
  double diff = 0.0;
  const std::size_t n = std::min(ca.frames(), cb.frames());
  for (std::size_t i = 0; i < n; ++i) {
    diff += std::abs(ca.channel(0)[i] - cb.channel(0)[i]);
  }
  EXPECT_GT(diff, 0.1);
}

TEST(Collector, UsersHaveDistinctVoices) {
  Collector collector(no_cache_config());
  SampleSpec a, b;
  a.user_id = 1;
  b.user_id = 2;
  const auto fa = collector.liveness_features(a);
  const auto fb = collector.liveness_features(b);
  double diff = 0.0;
  for (std::size_t i = 0; i < fa.size(); ++i) diff += std::abs(fa[i] - fb[i]);
  EXPECT_GT(diff, 1.0);
}

TEST(Collector, OrientationFeatureDimensionConsistent) {
  Collector collector(no_cache_config());
  SampleSpec spec;
  const auto extractor = collector.orientation_extractor(spec);
  const auto f = collector.orientation_features(spec);
  EXPECT_EQ(f.size(), extractor.dimension(4));
  for (double v : f) EXPECT_TRUE(std::isfinite(v));
}

TEST(Collector, LivenessFeaturesFinite) {
  Collector collector(no_cache_config());
  SampleSpec spec;
  spec.replay = ReplaySource::kSmartphone;
  for (double v : collector.liveness_features(spec)) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(Collector, ChannelsForDeviceDefaults) {
  Collector collector(no_cache_config());
  EXPECT_EQ(collector.channels_for(room::DeviceId::kD1),
            (std::vector<std::size_t>{1, 2, 4, 5}));
  EXPECT_EQ(collector.channels_for(room::DeviceId::kD3),
            (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(Collector, CacheMakesRepeatLookupsConsistent) {
  // Point the cache at a private temp dir via the environment override.
  const auto dir = std::filesystem::temp_directory_path() /
                   ("headtalk_collector_cache_" + std::to_string(::getpid()));
  ::setenv("HEADTALK_CACHE", dir.c_str(), 1);
  CollectorConfig cfg;
  cfg.cache_enabled = true;
  {
    Collector collector(cfg);
    SampleSpec spec;
    const auto first = collector.orientation_features(spec);
    const auto second = collector.orientation_features(spec);  // cache hit
    EXPECT_EQ(first, second);
    // A second collector instance (fresh process simulation) hits the same
    // cache file and must agree.
    Collector other(cfg);
    EXPECT_EQ(other.orientation_features(spec), first);
  }
  ::unsetenv("HEADTALK_CACHE");
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(Collector, DifferentBaseSeedsChangeTheUniverse) {
  CollectorConfig a = no_cache_config();
  CollectorConfig b = no_cache_config();
  b.base_seed = a.base_seed + 1;
  Collector ca(a), cb(b);
  SampleSpec spec;
  const auto fa = ca.orientation_features(spec);
  const auto fb = cb.orientation_features(spec);
  double diff = 0.0;
  for (std::size_t i = 0; i < fa.size(); ++i) diff += std::abs(fa[i] - fb[i]);
  EXPECT_GT(diff, 0.0);
}

}  // namespace
}  // namespace headtalk::sim
