#include "sim/experiment.h"

#include <gtest/gtest.h>

namespace headtalk::sim {
namespace {

// Synthetic OrientationSamples with hand-built features so experiment
// plumbing can be tested without rendering audio.
std::vector<OrientationSample> synthetic_samples() {
  std::vector<OrientationSample> out;
  unsigned counter = 0;
  for (unsigned session : {0u, 1u}) {
    for (double angle : protocol_angles()) {
      for (unsigned rep = 0; rep < 3; ++rep) {
        SampleSpec spec;
        spec.angle_deg = angle;
        spec.session = session;
        spec.repetition = rep;
        // Feature = cos(angle) + small deterministic wiggle: facing samples
        // land near +1, backward near -1 -> learnable.
        const double wiggle = 0.02 * static_cast<double>(counter % 7);
        ++counter;
        out.push_back(
            {spec, {std::cos(room::deg_to_rad(angle)) + wiggle, wiggle}});
      }
    }
  }
  return out;
}

TEST(Experiment, FilterByPredicate) {
  const auto samples = synthetic_samples();
  const auto session0 =
      filter(samples, [](const SampleSpec& s) { return s.session == 0; });
  EXPECT_EQ(session0.size(), samples.size() / 2);
}

TEST(Experiment, FacingDatasetDropsExcludedArcs) {
  const auto samples = synthetic_samples();
  const auto d4 = facing_dataset(samples, core::FacingDefinition::kDefinition4);
  // Def-4 uses 5 facing + 5 non-facing of the 14 protocol angles.
  EXPECT_EQ(d4.size(), samples.size() * 10 / 14);
  EXPECT_EQ(d4.count_label(core::kLabelFacing), samples.size() * 5 / 14);

  const auto d1 = facing_dataset(samples, core::FacingDefinition::kDefinition1);
  // Def-1 trains on 7 facing + 7 non-facing angles: every protocol angle.
  EXPECT_EQ(d1.size(), samples.size());
  EXPECT_EQ(d1.count_label(core::kLabelFacing), samples.size() * 7 / 14);
}

TEST(Experiment, GroundTruthDatasetKeepsEverything) {
  const auto samples = synthetic_samples();
  const auto d = ground_truth_dataset(samples);
  EXPECT_EQ(d.size(), samples.size());
  // 5 of 14 protocol angles are within the +/-30 facing zone.
  EXPECT_EQ(d.count_label(core::kLabelFacing), samples.size() * 5 / 14);
}

TEST(Experiment, EvaluateOrientationOnSeparableData) {
  const auto samples = synthetic_samples();
  const auto train = facing_dataset(
      filter(samples, [](const SampleSpec& s) { return s.session == 0; }),
      core::FacingDefinition::kDefinition4);
  const auto test = facing_dataset(
      filter(samples, [](const SampleSpec& s) { return s.session == 1; }),
      core::FacingDefinition::kDefinition4);
  const auto metrics = evaluate_orientation({}, train, test);
  EXPECT_GT(metrics.accuracy, 0.95);
  EXPECT_GT(metrics.f1, 0.95);
  EXPECT_LT(metrics.far, 0.05);
}

TEST(Experiment, CrossSessionProducesOnePairPerOrderedSessionPair) {
  const auto samples = synthetic_samples();
  const auto results =
      cross_session_evaluate(samples, core::FacingDefinition::kDefinition4);
  EXPECT_EQ(results.size(), 2u);  // (0->1) and (1->0)
  for (const auto& r : results) EXPECT_GT(r.accuracy, 0.9);
}

TEST(Experiment, MeanMetricsAverages) {
  std::vector<EvalMetrics> ms(2);
  ms[0].accuracy = 0.9;
  ms[1].accuracy = 0.7;
  ms[0].f1 = 1.0;
  ms[1].f1 = 0.0;
  const auto mean = mean_metrics(ms);
  EXPECT_DOUBLE_EQ(mean.accuracy, 0.8);
  EXPECT_DOUBLE_EQ(mean.f1, 0.5);
  EXPECT_DOUBLE_EQ(mean_metrics({}).accuracy, 0.0);
}

TEST(Experiment, CollectOrientationUsesCollector) {
  CollectorConfig cfg;
  cfg.cache_enabled = false;
  Collector collector(cfg);
  SampleSpec spec;
  const std::vector<SampleSpec> specs{spec};
  const auto samples = collect_orientation(collector, specs, /*progress=*/false);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].features, collector.orientation_features(spec));
}

TEST(Experiment, ParallelCollectionIsBitIdenticalToSerial) {
  // The determinism contract of the parallel engine: jobs=4 must return
  // the same specs in the same order with bit-identical feature vectors as
  // jobs=1, so every downstream train/test split is unaffected. Cache off:
  // both runs really render.
  CollectorConfig cfg;
  cfg.cache_enabled = false;
  Collector collector(cfg);

  std::vector<SampleSpec> specs;
  for (double angle : {0.0, 90.0}) {
    for (unsigned rep = 0; rep < 2; ++rep) {
      SampleSpec spec;
      spec.angle_deg = angle;
      spec.repetition = rep;
      specs.push_back(spec);
    }
  }

  const auto serial = collect_orientation(collector, specs, /*progress=*/false,
                                          /*jobs=*/1);
  const auto parallel = collect_orientation(collector, specs, /*progress=*/false,
                                            /*jobs=*/4);
  ASSERT_EQ(serial.size(), specs.size());
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i].spec.key(), serial[i].spec.key()) << i;
    EXPECT_EQ(parallel[i].features, serial[i].features) << i;  // exact doubles
  }
}

}  // namespace
}  // namespace headtalk::sim
