#include "sim/protocol.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace headtalk::sim {
namespace {

TEST(Protocol, AngleGridsMatchPaper) {
  EXPECT_EQ(protocol_angles().size(), 14u);   // §IV datasets
  EXPECT_EQ(extended_angles().size(), 16u);   // + the +/-75 verification pair
  EXPECT_EQ(ahuja_angles().size(), 8u);       // DoV dataset grid
  // The protocol grid contains no +/-75; the extended grid does.
  auto contains = [](const std::vector<double>& v, double x) {
    return std::any_of(v.begin(), v.end(), [x](double a) { return a == x; });
  };
  EXPECT_FALSE(contains(protocol_angles(), 75.0));
  EXPECT_TRUE(contains(extended_angles(), 75.0));
  EXPECT_TRUE(contains(extended_angles(), -75.0));
  // Ahuja's grid lacks +/-15 and +/-30.
  EXPECT_FALSE(contains(ahuja_angles(), 15.0));
  EXPECT_FALSE(contains(ahuja_angles(), 30.0));
  EXPECT_TRUE(contains(ahuja_angles(), 45.0));
}

TEST(Protocol, GridLocations) {
  EXPECT_EQ(all_grid_locations().size(), 9u);
  EXPECT_EQ(middle_grid_locations().size(), 3u);
  std::set<std::string> labels;
  for (const auto& loc : all_grid_locations()) labels.insert(loc.label());
  EXPECT_EQ(labels.size(), 9u);
  EXPECT_TRUE(labels.contains("M3"));
  EXPECT_TRUE(labels.contains("L1"));
  EXPECT_TRUE(labels.contains("R5"));
}

TEST(Protocol, RoomFactories) {
  EXPECT_EQ(make_room(RoomId::kLab).name, "lab");
  EXPECT_EQ(make_room(RoomId::kHome).name, "home");
  EXPECT_EQ(all_rooms().size(), 2u);
  EXPECT_EQ(room_id_name(RoomId::kHome), "home");
}

TEST(Protocol, PlacementHeightsMatchPaper) {
  // Lab A: study table 74 cm; B: coffee table 45 cm; C: work table 75 cm;
  // home A: TV shelf 83 cm (§IV).
  EXPECT_NEAR(placement_pose(RoomId::kLab, PlacementId::kA).center.z, 0.74, 1e-9);
  EXPECT_NEAR(placement_pose(RoomId::kLab, PlacementId::kB).center.z, 0.45, 1e-9);
  EXPECT_NEAR(placement_pose(RoomId::kLab, PlacementId::kC).center.z, 0.75, 1e-9);
  EXPECT_NEAR(placement_pose(RoomId::kHome, PlacementId::kA).center.z, 0.83, 1e-9);
}

TEST(Protocol, GridPositionsStayInsideRooms) {
  for (RoomId room_id : all_rooms()) {
    const auto dims = make_room(room_id).dims;
    for (PlacementId placement : {PlacementId::kA, PlacementId::kB, PlacementId::kC}) {
      for (const auto& loc : all_grid_locations()) {
        const auto p = grid_position(room_id, placement, loc, kStandingMouthHeight);
        EXPECT_GT(p.x, 0.0) << loc.label();
        EXPECT_LT(p.x, dims.x) << loc.label();
        EXPECT_GT(p.y, 0.0) << loc.label();
        EXPECT_LT(p.y, dims.y) << loc.label();
        EXPECT_DOUBLE_EQ(p.z, kStandingMouthHeight);
      }
    }
  }
}

TEST(Protocol, GridDistancesAreRespected) {
  const auto pose = placement_pose(RoomId::kLab, PlacementId::kA);
  for (const auto& loc : all_grid_locations()) {
    const auto p = grid_position(RoomId::kLab, PlacementId::kA, loc, 1.65);
    const double horizontal = std::hypot(p.x - pose.center.x, p.y - pose.center.y);
    EXPECT_NEAR(horizontal, loc.distance_m, 1e-9) << loc.label();
  }
}

TEST(Protocol, FacingAzimuthPointsAtDeviceForZeroAngle) {
  const auto pose = placement_pose(RoomId::kLab, PlacementId::kA);
  const auto p = grid_position(RoomId::kLab, PlacementId::kA, {GridRadial::kMiddle, 3.0},
                               1.65);
  const double az = facing_azimuth(p, pose, 0.0);
  const auto dir = room::azimuth_direction(az);
  // Walking along `dir` from p must approach the device.
  const room::Vec3 step{p.x + dir.x, p.y + dir.y, p.z};
  EXPECT_LT(std::hypot(step.x - pose.center.x, step.y - pose.center.y),
            std::hypot(p.x - pose.center.x, p.y - pose.center.y));
}

TEST(Protocol, FacingAzimuthOffsetsBySpokenAngle) {
  const auto pose = placement_pose(RoomId::kLab, PlacementId::kA);
  const auto p = grid_position(RoomId::kLab, PlacementId::kA, {GridRadial::kMiddle, 3.0},
                               1.65);
  const double az0 = facing_azimuth(p, pose, 0.0);
  const double az90 = facing_azimuth(p, pose, 90.0);
  EXPECT_NEAR(az90 - az0, room::deg_to_rad(90.0), 1e-12);
}

TEST(Protocol, RadialDirectionsFanOut) {
  const auto left = grid_position(RoomId::kLab, PlacementId::kA,
                                  {GridRadial::kLeft, 3.0}, 1.65);
  const auto mid = grid_position(RoomId::kLab, PlacementId::kA,
                                 {GridRadial::kMiddle, 3.0}, 1.65);
  const auto right = grid_position(RoomId::kLab, PlacementId::kA,
                                   {GridRadial::kRight, 3.0}, 1.65);
  EXPECT_LT(left.y, mid.y);
  EXPECT_GT(right.y, mid.y);
  EXPECT_NEAR(mid.y - left.y, right.y - mid.y, 1e-9);
}

}  // namespace
}  // namespace headtalk::sim
