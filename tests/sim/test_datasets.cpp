#include "sim/datasets.h"

#include <gtest/gtest.h>

#include <set>

namespace headtalk::sim {
namespace {

TEST(SpecGrid, CartesianProductCount) {
  SpecGrid grid;
  grid.rooms = {RoomId::kLab, RoomId::kHome};
  grid.devices = {room::DeviceId::kD1, room::DeviceId::kD2};
  grid.words = {speech::WakeWord::kComputer};
  grid.locations = middle_grid_locations();
  grid.angles = {0.0, 90.0};
  grid.sessions = {0, 1};
  grid.repetitions = 2;
  const auto specs = grid.build();
  EXPECT_EQ(specs.size(), 2u * 2u * 1u * 3u * 2u * 2u * 2u);
}

TEST(SpecGrid, ModifiersApplyToEverySpec) {
  SpecGrid grid;
  grid.loudness_db = 60.0;
  grid.replay = ReplaySource::kHighEnd;
  grid.temporal_days = 7.0;
  for (const auto& s : grid.build()) {
    EXPECT_DOUBLE_EQ(s.loudness_db, 60.0);
    EXPECT_EQ(s.replay, ReplaySource::kHighEnd);
    EXPECT_DOUBLE_EQ(s.temporal_days, 7.0);
  }
}

TEST(Datasets, FullProtocolMatchesTable2Count) {
  // Dataset-1 full protocol: 2 rooms x 3 devices x 3 words x 9 locations x
  // 14 angles x 2 reps x 2 sessions = 9072 (Table II).
  const auto specs =
      dataset1(all_rooms(),
               {room::DeviceId::kD1, room::DeviceId::kD2, room::DeviceId::kD3},
               speech::all_wake_words(), full_protocol());
  EXPECT_EQ(specs.size(), 9072u);
}

TEST(Datasets, Dataset2FullMatchesTable2) {
  // Sony replay: 2 words x 9 locations x 14 angles x 2 reps x 2 sessions =
  // 1008 (Table II; lab room).
  const auto specs = dataset2_replay(full_protocol());
  EXPECT_EQ(specs.size(), 1008u);
  for (const auto& s : specs) {
    EXPECT_EQ(s.replay, ReplaySource::kHighEnd);
    EXPECT_NE(s.word, speech::WakeWord::kAmazon);  // only 2 words in Dataset-2
  }
}

TEST(Datasets, Dataset3TemporalShape) {
  // "Computer", 3 locations, 14 angles, 2 sessions, 2 reps per time frame:
  // 168 specs per `days` value (336 total for week+month, Table II).
  const auto week = dataset3_temporal(7.0, full_protocol());
  EXPECT_EQ(week.size(), 168u);
  for (const auto& s : week) {
    EXPECT_DOUBLE_EQ(s.temporal_days, 7.0);
    EXPECT_EQ(s.word, speech::WakeWord::kComputer);
    EXPECT_EQ(s.location.radial, GridRadial::kMiddle);
  }
}

TEST(Datasets, Dataset4AmbientMatchesTable2) {
  // Per noise type: 3 distances x 14 angles x 1 session x 2 reps = 84
  // (168 across both types, Table II).
  const auto white = dataset4_ambient(room::NoiseType::kWhite);
  EXPECT_EQ(white.size(), 84u);
  for (const auto& s : white) {
    EXPECT_DOUBLE_EQ(s.ambient_spl_db, 45.0);
    EXPECT_EQ(s.session, 0u);
  }
}

TEST(Datasets, Dataset5SittingMatchesTable2) {
  const auto specs = dataset5_sitting();
  EXPECT_EQ(specs.size(), 84u);
  for (const auto& s : specs) {
    EXPECT_DOUBLE_EQ(s.mouth_height_m, kSittingMouthHeight);
  }
}

TEST(Datasets, Dataset6LoudnessMatchesTable2) {
  // Per loudness: 84; two levels = 168 (Table II).
  const auto quiet = dataset6_loudness(60.0);
  EXPECT_EQ(quiet.size(), 84u);
  for (const auto& s : quiet) EXPECT_DOUBLE_EQ(s.loudness_db, 60.0);
}

TEST(Datasets, Dataset7ObjectsMatchesTable2) {
  // Per setting: 84; three settings = 252 (Table II).
  const auto partial = dataset7_objects(OcclusionLevel::kPartial, false);
  EXPECT_EQ(partial.size(), 84u);
  const auto raised = dataset7_objects(OcclusionLevel::kFull, true);
  for (const auto& s : raised) {
    EXPECT_EQ(s.occlusion, OcclusionLevel::kFull);
    EXPECT_NEAR(s.device_height_offset_m, 0.148, 1e-9);
  }
}

TEST(Datasets, Dataset8MatchesTable2) {
  // 10 users x 9 locations x 8 angles x 2 reps = 1440 (Table II).
  const auto specs = dataset8_multi_user();
  EXPECT_EQ(specs.size(), 1440u);
  std::set<unsigned> users;
  for (const auto& s : specs) {
    users.insert(s.user_id);
    EXPECT_EQ(s.word, speech::WakeWord::kHeyAssistant);
  }
  EXPECT_EQ(users.size(), 10u);
  EXPECT_FALSE(users.contains(0u));  // user 0 is the enrolled default user
}

TEST(Datasets, ScaledDefaultsAreSmaller) {
  const auto scaled = dataset1({RoomId::kLab}, {room::DeviceId::kD2},
                               {speech::WakeWord::kComputer});
  const auto full = dataset1({RoomId::kLab}, {room::DeviceId::kD2},
                             {speech::WakeWord::kComputer}, full_protocol());
  EXPECT_LT(scaled.size(), full.size());
  EXPECT_EQ(scaled.size(), 84u);   // 3 locs x 14 angles x 2 sessions x 1 rep
  EXPECT_EQ(full.size(), 504u);    // 9 locs x 14 angles x 2 sessions x 2 reps
}

TEST(Datasets, ExtendedAnglesIncludeSeventyFive) {
  const auto specs = dataset1_extended_angles();
  bool has75 = false;
  for (const auto& s : specs) has75 |= s.angle_deg == 75.0;
  EXPECT_TRUE(has75);
  EXPECT_EQ(specs.size(), 96u);  // 3 locs x 16 angles x 2 sessions
}

}  // namespace
}  // namespace headtalk::sim
