// Endpointer state machine: onset confirmation, pre-roll clamping (stream
// start AND previous segment), sub-hangover gap merging, max-length
// force-close, minimum-length discards, and flush.
#include "stream/endpointer.h"

#include <gtest/gtest.h>

using namespace headtalk::stream;

namespace {

EndpointerConfig small_config() {
  EndpointerConfig config;
  config.pre_roll_frames = 3;
  config.onset_frames = 2;
  config.hangover_frames = 3;
  config.post_roll_frames = 2;
  config.min_utterance_frames = 2;
  config.max_utterance_frames = 100;
  return config;
}

/// Drives the machine with a 0/1 pattern, collecting closed segments.
std::vector<Segment> run(Endpointer& ep, const std::vector<int>& pattern) {
  std::vector<Segment> out;
  for (const int active : pattern) {
    if (auto segment = ep.on_frame(active != 0)) out.push_back(*segment);
  }
  return out;
}

}  // namespace

TEST(Endpointer, ConfirmsOnsetAndAppliesPreRollAndPostRoll) {
  Endpointer ep(small_config());
  // Frames:       0  1  2  3  4  5  6  7  8  9
  const auto segments = run(ep, {0, 0, 0, 0, 0, 1, 1, 0, 0, 0});
  ASSERT_EQ(segments.size(), 1u);
  // Onset at 5, confirmed at 6; pre-roll of 3 reaches back to frame 2.
  EXPECT_EQ(segments[0].begin_frame, 2u);
  // Gap of 3 closes at frame 9; post-roll caps the end at last_active+1+2.
  EXPECT_EQ(segments[0].end_frame, 9u);
  EXPECT_FALSE(segments[0].force_closed);
  EXPECT_EQ(ep.segments(), 1u);
}

TEST(Endpointer, UtteranceAtStreamStartHasNoPreRoll) {
  // Satellite case: speech from frame 0 — the pre-roll must clamp to the
  // stream start, not underflow.
  Endpointer ep(small_config());
  const auto segments = run(ep, {1, 1, 1, 1, 0, 0, 0});
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].begin_frame, 0u);
  EXPECT_EQ(segments[0].end_frame, 6u);  // last_active 3 + 1 + post-roll 2
}

TEST(Endpointer, SubHangoverGapMergesIntoOneUtterance) {
  // Satellite case: a pause shorter than the hangover is the same
  // utterance, not two.
  Endpointer ep(small_config());
  //                             gap of 2 < hangover 3
  const auto segments = run(ep, {1, 1, 1, 0, 0, 1, 1, 0, 0, 0});
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].begin_frame, 0u);
  EXPECT_EQ(segments[0].end_frame, 9u);  // last_active 6 + 1 + post-roll 2
  EXPECT_EQ(ep.segments(), 1u);
}

TEST(Endpointer, HangoverLengthGapSplitsAndSegmentsNeverOverlap) {
  Endpointer ep(small_config());
  // Two utterances with exactly hangover_frames of silence between them:
  // the second's pre-roll would reach into the first — it must clamp to
  // the first segment's end instead.
  const auto segments = run(ep, {1, 1, 1, 0, 0, 0, 1, 1, 0, 0, 0});
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0].begin_frame, 0u);
  EXPECT_EQ(segments[0].end_frame, 5u);  // last_active 2 + 1 + post-roll 2
  EXPECT_EQ(segments[1].begin_frame, 5u);  // pre-roll clamped to segment 0's end
  EXPECT_GE(segments[1].begin_frame, segments[0].end_frame);
  EXPECT_EQ(segments[1].end_frame, 10u);
}

TEST(Endpointer, MaxLengthForceCloses) {
  // Satellite case: unbroken speech force-closes at max length; continuing
  // speech re-onsets into the next segment.
  EndpointerConfig config = small_config();
  config.max_utterance_frames = 10;
  config.pre_roll_frames = 0;
  Endpointer ep(config);
  const auto segments = run(ep, std::vector<int>(25, 1));
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0].begin_frame, 0u);
  EXPECT_EQ(segments[0].end_frame, 10u);
  EXPECT_TRUE(segments[0].force_closed);
  EXPECT_EQ(segments[1].end_frame - segments[1].begin_frame, 10u);
  EXPECT_TRUE(segments[1].force_closed);
  EXPECT_EQ(ep.force_closed(), 2u);
  EXPECT_TRUE(ep.in_utterance());  // a third one is still open
}

TEST(Endpointer, FalseStartAndShortBurstAreDiscarded) {
  EndpointerConfig config = small_config();
  config.min_utterance_frames = 8;  // a 2-frame burst + rolls spans only 7
  Endpointer ep(config);
  // One active frame never confirms the onset (onset_frames = 2)...
  auto segments = run(ep, {0, 1, 0, 0, 0, 0});
  EXPECT_TRUE(segments.empty());
  EXPECT_EQ(ep.discarded(), 0u);  // never opened, nothing to discard
  // ...and a confirmed-but-short burst closes below min length: discarded.
  segments = run(ep, {1, 1, 0, 0, 0});
  EXPECT_TRUE(segments.empty());
  EXPECT_EQ(ep.discarded(), 1u);
  EXPECT_EQ(ep.segments(), 0u);
}

TEST(Endpointer, FlushClosesAnOpenUtterance) {
  Endpointer ep(small_config());
  (void)run(ep, {1, 1, 1, 1});
  EXPECT_TRUE(ep.in_utterance());
  const auto segment = ep.flush();
  ASSERT_TRUE(segment.has_value());
  EXPECT_EQ(segment->begin_frame, 0u);
  EXPECT_EQ(segment->end_frame, 4u);  // next_index caps the post-roll
  EXPECT_FALSE(ep.in_utterance());
}

TEST(Endpointer, FlushWhenIdleOrUnconfirmedEmitsNothing) {
  Endpointer idle(small_config());
  EXPECT_FALSE(idle.flush().has_value());

  Endpointer unconfirmed(small_config());
  (void)unconfirmed.on_frame(true);  // onset never confirmed
  EXPECT_FALSE(unconfirmed.flush().has_value());
  EXPECT_FALSE(unconfirmed.in_utterance());
}

TEST(Endpointer, BackToBackPreRollClampsToThePostRolledEnd) {
  // Regression guard: the overlap clamp must be against the previous
  // segment's *post-rolled* end, not its last active frame. Onset at 7
  // with pre-roll 3 reaches back to frame 4 — after the first segment's
  // last active frame (2) but inside its post-roll tail [3, 5) — and must
  // be cut at 5, the tail's end, so back-to-back utterances tile without
  // double-consuming the tail.
  Endpointer ep(small_config());
  //                             0  1  2  3  4  5  6  7  8  9 10 11
  const auto segments = run(ep, {1, 1, 1, 0, 0, 0, 0, 1, 1, 0, 0, 0});
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0].end_frame, 5u);    // last_active 2 + 1 + post-roll 2
  EXPECT_EQ(segments[1].begin_frame, 5u);  // pre-roll 7-3=4 clamped past the tail
  EXPECT_GE(segments[1].begin_frame, segments[0].end_frame);
  EXPECT_EQ(segments[1].end_frame, 11u);   // last_active 8 + 1 + post-roll 2
}

TEST(Endpointer, OpenSegmentAccessorsTrackTheConfirmedSegment) {
  Endpointer ep(small_config());
  EXPECT_FALSE(ep.segment_open());
  (void)ep.on_frame(true);  // tentative onset: open for in_utterance()…
  EXPECT_TRUE(ep.in_utterance());
  EXPECT_FALSE(ep.segment_open());  // …but not confirmed yet
  (void)ep.on_frame(true);  // onset_frames = 2: confirmed
  EXPECT_TRUE(ep.segment_open());
  EXPECT_EQ(ep.open_begin(), 0u);
  EXPECT_EQ(ep.last_active(), 1u);
  (void)ep.on_frame(true);
  EXPECT_EQ(ep.last_active(), 2u);
  (void)ep.on_frame(false);  // hangover: segment still open, last_active frozen
  EXPECT_TRUE(ep.segment_open());
  EXPECT_EQ(ep.last_active(), 2u);
}

TEST(Endpointer, DegenerateConfigIsClamped) {
  EndpointerConfig config;
  config.onset_frames = 0;
  config.hangover_frames = 0;
  config.post_roll_frames = 99;
  config.max_utterance_frames = 0;
  Endpointer ep(config);
  EXPECT_EQ(ep.config().onset_frames, 1u);
  EXPECT_EQ(ep.config().hangover_frames, 1u);
  EXPECT_LE(ep.config().post_roll_frames, ep.config().hangover_frames);
  EXPECT_EQ(ep.config().max_utterance_frames, 1u);
}

TEST(Endpointer, ResetClearsCountersAndState) {
  Endpointer ep(small_config());
  (void)run(ep, {1, 1, 1, 0, 0, 0});
  EXPECT_EQ(ep.segments(), 1u);
  ep.reset();
  EXPECT_EQ(ep.segments(), 0u);
  EXPECT_EQ(ep.frames_seen(), 0u);
  EXPECT_FALSE(ep.in_utterance());
  // Pre-roll clamps to the stream start again, not the pre-reset last_end.
  const auto segments = run(ep, {1, 1, 0, 0, 0});
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].begin_frame, 0u);
}
