// StreamingDetector: the absolute-indexed ring, chunked VAD + endpointing
// over a continuous multichannel stream, per-segment scoring through the
// resident pipeline (with the open-session flag carried across segments),
// flush, input validation, and force-close.
#include "stream/streaming_detector.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <span>

#include <gtest/gtest.h>

#include "serve_test_util.h"

using namespace headtalk;
using namespace headtalk::stream;

namespace {

const core::HeadTalkPipeline& test_pipeline() {
  static const core::HeadTalkPipeline pipeline = serve_test::make_test_pipeline();
  return pipeline;
}

/// Machinery-focused config: tight segmentation, cheap kNormal scoring.
StreamingDetectorConfig test_config() {
  StreamingDetectorConfig config;
  config.mode = core::VaMode::kNormal;
  config.endpoint.pre_roll_frames = 2;
  config.endpoint.onset_frames = 2;
  config.endpoint.hangover_frames = 3;
  config.endpoint.post_roll_frames = 2;
  config.endpoint.min_utterance_frames = 4;
  config.endpoint.max_utterance_frames = 200;
  return config;
}

/// Appends `frames` sample frames of a harmonic burst (tonal → VAD-active)
/// to an interleaved stream, identical on every channel.
void append_tone(std::vector<float>& stream, std::size_t frames, std::size_t channels,
                 double sample_rate = audio::kDefaultSampleRate) {
  for (std::size_t f = 0; f < frames; ++f) {
    const double t = static_cast<double>(f) / sample_rate;
    double v = 0.0;
    for (int h = 1; h <= 4; ++h) {
      v += 0.05 * std::sin(2.0 * std::numbers::pi * 220.0 * h * t);
    }
    for (std::size_t c = 0; c < channels; ++c) stream.push_back(static_cast<float>(v));
  }
}

void append_silence(std::vector<float>& stream, std::size_t frames,
                    std::size_t channels) {
  stream.insert(stream.end(), frames * channels, 0.0f);
}

/// Feeds an interleaved stream in fixed-size chunks, collecting every event.
std::vector<DecisionEvent> stream_in_chunks(StreamingDetector& detector,
                                            const std::vector<float>& stream,
                                            std::size_t chunk_frames) {
  std::vector<DecisionEvent> events;
  const std::size_t channels = detector.channels();
  for (std::size_t offset = 0; offset < stream.size();) {
    const std::size_t take =
        std::min(chunk_frames * channels, stream.size() - offset);
    const auto batch = detector.push_interleaved(
        std::span<const float>(stream).subspan(offset, take));
    events.insert(events.end(), batch.begin(), batch.end());
    offset += take;
  }
  return events;
}

/// Deinterleaves [begin, end) of the stream into a capture — the truth the
/// detector's ring extraction must match.
audio::MultiBuffer slice(const std::vector<float>& stream, std::size_t channels,
                         std::uint64_t begin, std::uint64_t end) {
  audio::MultiBuffer capture(channels, static_cast<std::size_t>(end - begin),
                             audio::kDefaultSampleRate);
  for (std::uint64_t f = begin; f < end; ++f) {
    for (std::size_t c = 0; c < channels; ++c) {
      capture.channel(c)[static_cast<std::size_t>(f - begin)] =
          stream[static_cast<std::size_t>(f) * channels + c];
    }
  }
  return capture;
}

}  // namespace

TEST(StreamRing, AbsoluteIndexingSurvivesWrapAround) {
  StreamRing ring;
  ring.reset(1, 4, 48000.0);
  ring.push(std::vector<float>{1, 2, 3, 4, 5, 6});  // frames 0..5, capacity 4
  EXPECT_EQ(ring.total_frames(), 6u);
  EXPECT_EQ(ring.oldest_frame(), 2u);

  // A begin older than the ring clamps to the oldest retained frame.
  auto capture = ring.extract(0, 6);
  ASSERT_EQ(capture.frames(), 4u);
  EXPECT_DOUBLE_EQ(capture.channel(0)[0], 3.0);
  EXPECT_DOUBLE_EQ(capture.channel(0)[3], 6.0);

  // An interior span comes back by its absolute indices.
  capture = ring.extract(4, 6);
  ASSERT_EQ(capture.frames(), 2u);
  EXPECT_DOUBLE_EQ(capture.channel(0)[0], 5.0);
  EXPECT_DOUBLE_EQ(capture.channel(0)[1], 6.0);

  // An end beyond the stream clamps to what was pushed.
  EXPECT_EQ(ring.extract(5, 100).frames(), 1u);
}

TEST(StreamingDetector, RejectsInvalidInput) {
  EXPECT_THROW(StreamingDetector(test_pipeline(), 0, 48000.0, test_config()),
               std::invalid_argument);

  StreamingDetector detector(test_pipeline(), 4, 48000.0, test_config());
  // 10 samples is not a multiple of 4 channels.
  EXPECT_THROW(detector.push_interleaved(std::vector<float>(10, 0.0f)),
               std::invalid_argument);
  // Deinterleaved chunks must match the stream's geometry.
  EXPECT_THROW(detector.push(audio::MultiBuffer(2, 64, 48000.0)),
               std::invalid_argument);
  EXPECT_THROW(detector.push(audio::MultiBuffer(4, 64, 16000.0)),
               std::invalid_argument);
}

TEST(StreamingDetector, EmitsOneDecisionPerBurstMatchingOfflineScoring) {
  const auto config = test_config();
  StreamingDetector detector(test_pipeline(), 4, audio::kDefaultSampleRate, config);
  const std::size_t frame_len = detector.vad().frame_length();

  // Three tonal bursts separated by silence wide enough to split them.
  std::vector<float> stream;
  append_silence(stream, 5 * frame_len, 4);
  for (int burst = 0; burst < 3; ++burst) {
    append_tone(stream, 12 * frame_len, 4);
    append_silence(stream, 10 * frame_len, 4);
  }

  // Chunk size deliberately not a multiple of the VAD frame length.
  auto events = stream_in_chunks(detector, stream, frame_len + 37);
  const auto tail = detector.flush();
  events.insert(events.end(), tail.begin(), tail.end());

  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(detector.segments(), 3u);
  EXPECT_EQ(detector.force_closed(), 0u);

  bool session_open = false;
  std::uint64_t previous_end = 0;
  for (const auto& event : events) {
    EXPECT_GE(event.begin_frame, previous_end);  // ordered, never overlapping
    EXPECT_GT(event.end_frame, event.begin_frame);
    EXPECT_DOUBLE_EQ(event.begin_seconds,
                     static_cast<double>(event.begin_frame) / audio::kDefaultSampleRate);
    EXPECT_FALSE(event.force_closed);
    EXPECT_EQ(event.truncated_frames, 0u);
    EXPECT_GE(event.latency_seconds, 0.0);
    previous_end = event.end_frame;

    // The streamed decision must equal scoring the same span offline with
    // the same carried session flag.
    const auto capture = slice(stream, 4, event.begin_frame, event.end_frame);
    const auto offline = test_pipeline().score_capture(capture, config.mode,
                                                       /*followup=*/false, session_open);
    EXPECT_EQ(event.result.decision, offline.decision);
    EXPECT_DOUBLE_EQ(event.result.liveness_score, offline.liveness_score);
    session_open = offline.session_open_after;
  }
  EXPECT_EQ(detector.session_open(), session_open);
}

TEST(StreamingDetector, StartFrameOffsetsEventsExactlyEvenPast32Bits) {
  // Satellite: a resumed/sharded stream passes its absolute origin via
  // start_frame. Events must shift by exactly that origin — with every
  // product kept in 64 bits, so an origin near 2^32 (where a truncated
  // frame*length multiply would wrap) stays exact — and the second
  // timestamps must be derived from the exact 64-bit frame indices.
  const std::uint64_t start = (std::uint64_t{1} << 32) - 1000;
  auto config = test_config();
  StreamingDetector baseline(test_pipeline(), 4, audio::kDefaultSampleRate, config);
  config.start_frame = start;
  StreamingDetector offset(test_pipeline(), 4, audio::kDefaultSampleRate, config);
  const std::size_t frame_len = baseline.vad().frame_length();

  std::vector<float> stream;
  append_silence(stream, 5 * frame_len, 4);
  append_tone(stream, 12 * frame_len, 4);
  append_silence(stream, 10 * frame_len, 4);

  const auto base_events = stream_in_chunks(baseline, stream, frame_len + 37);
  const auto off_events = stream_in_chunks(offset, stream, frame_len + 37);
  ASSERT_EQ(base_events.size(), 1u);
  ASSERT_EQ(off_events.size(), 1u);
  EXPECT_EQ(off_events[0].begin_frame, base_events[0].begin_frame + start);
  EXPECT_EQ(off_events[0].end_frame, base_events[0].end_frame + start);
  EXPECT_GT(off_events[0].end_frame, std::uint64_t{1} << 32);  // really crossed
  EXPECT_DOUBLE_EQ(
      off_events[0].begin_seconds,
      static_cast<double>(off_events[0].begin_frame) / audio::kDefaultSampleRate);
  EXPECT_DOUBLE_EQ(
      off_events[0].end_seconds,
      static_cast<double>(off_events[0].end_frame) / audio::kDefaultSampleRate);
  EXPECT_EQ(off_events[0].truncated_frames, 0u);
  EXPECT_EQ(off_events[0].result.decision, base_events[0].result.decision);
  EXPECT_EQ(offset.frames_streamed(), baseline.frames_streamed() + start);
}

TEST(StreamingDetector, HeadTalkStreamedDecisionMatchesBatchScoring) {
  // Tentpole equivalence at the decision level: in HeadTalk mode the
  // detector accumulates each open segment frame by frame and only
  // finalizes at the close. The verdict and both scores must equal
  // score_capture() on the same sample span — chunk invariance makes the
  // features bit-identical, so exact equality is the bar, not a tolerance.
  const auto config = [] {
    auto c = test_config();
    c.mode = core::VaMode::kHeadTalk;
    return c;
  }();
  StreamingDetector detector(test_pipeline(), 4, audio::kDefaultSampleRate, config);
  const std::size_t frame_len = detector.vad().frame_length();

  std::vector<float> stream;
  append_silence(stream, 5 * frame_len, 4);
  for (int burst = 0; burst < 2; ++burst) {
    append_tone(stream, 12 * frame_len, 4);
    append_silence(stream, 10 * frame_len, 4);
  }

  auto events = stream_in_chunks(detector, stream, frame_len + 37);
  const auto tail = detector.flush();
  events.insert(events.end(), tail.begin(), tail.end());
  ASSERT_EQ(events.size(), 2u);

  bool session_open = false;
  for (const auto& event : events) {
    const auto capture = slice(stream, 4, event.begin_frame, event.end_frame);
    const auto offline = test_pipeline().score_capture(capture, config.mode,
                                                       /*followup=*/false, session_open);
    EXPECT_EQ(event.result.decision, offline.decision);
    EXPECT_DOUBLE_EQ(event.result.liveness_score, offline.liveness_score);
    EXPECT_DOUBLE_EQ(event.result.orientation_score, offline.orientation_score);
    EXPECT_EQ(event.result.session_open_after, offline.session_open_after);
    session_open = offline.session_open_after;
  }
  EXPECT_EQ(detector.session_open(), session_open);
}

TEST(StreamingDetector, FlushClosesATrailingUtterance) {
  StreamingDetector detector(test_pipeline(), 4, audio::kDefaultSampleRate,
                             test_config());
  const std::size_t frame_len = detector.vad().frame_length();

  std::vector<float> stream;
  append_tone(stream, 10 * frame_len, 4);  // ends mid-speech
  const auto during = stream_in_chunks(detector, stream, 2 * frame_len);
  EXPECT_TRUE(during.empty());
  EXPECT_TRUE(detector.in_utterance());

  const auto tail = detector.flush();
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].end_frame, detector.frames_streamed());
  EXPECT_FALSE(detector.in_utterance());
}

TEST(StreamingDetector, LongSpeechForceClosesAtMaxLength) {
  auto config = test_config();
  config.endpoint.max_utterance_frames = 6;
  config.endpoint.min_utterance_frames = 1;
  StreamingDetector detector(test_pipeline(), 4, audio::kDefaultSampleRate, config);
  const std::size_t frame_len = detector.vad().frame_length();

  std::vector<float> stream;
  append_tone(stream, 20 * frame_len, 4);
  const auto events = stream_in_chunks(detector, stream, 4 * frame_len);

  ASSERT_GE(events.size(), 2u);
  for (const auto& event : events) {
    EXPECT_TRUE(event.force_closed);
    EXPECT_LE(event.end_frame - event.begin_frame, 6u * frame_len);
  }
  EXPECT_EQ(detector.force_closed(), events.size());
}

