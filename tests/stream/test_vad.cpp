// Frame-level VAD: framing/partial-frame carry, the energy and flatness
// gates, hysteresis, the adaptive noise floor, and hangover.
#include "stream/vad.h"

#include <cmath>
#include <numbers>
#include <random>

#include <gtest/gtest.h>

using namespace headtalk;
using namespace headtalk::stream;

namespace {

/// Harmonic (speech-like: tonal, low spectral flatness) signal at a target
/// frame RMS level in dBFS.
std::vector<audio::Sample> tone(std::size_t samples, double rms_db,
                                double sample_rate = audio::kDefaultSampleRate) {
  // Four incoherent harmonics at amplitude amp/2 each sum to an RMS of
  // amp/sqrt(2); solve for the target level.
  const double rms = std::pow(10.0, rms_db / 20.0);
  const double amp = rms * std::sqrt(2.0);
  std::vector<audio::Sample> out(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    const double t = static_cast<double>(i) / sample_rate;
    double v = 0.0;
    for (int h = 1; h <= 4; ++h) {
      v += 0.5 * amp * std::sin(2.0 * std::numbers::pi * 220.0 * h * t);
    }
    out[i] = v;
  }
  return out;
}

std::vector<audio::Sample> white_noise(std::size_t samples, double sigma,
                                       unsigned seed = 5) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> g(0.0, sigma);
  std::vector<audio::Sample> out(samples);
  for (auto& v : out) v = g(rng);
  return out;
}

}  // namespace

TEST(Vad, FrameLengthFollowsConfig) {
  const Vad vad(VadConfig{}, 48000.0);
  EXPECT_EQ(vad.frame_length(), 960u);  // 20 ms at 48 kHz

  VadConfig ten_ms;
  ten_ms.frame_ms = 10.0;
  EXPECT_EQ(Vad(ten_ms, 16000.0).frame_length(), 160u);
}

TEST(Vad, RejectsDegenerateConfig) {
  EXPECT_THROW(Vad(VadConfig{}, 0.0), std::invalid_argument);
  VadConfig bad;
  bad.frame_ms = 0.0;
  EXPECT_THROW(Vad(bad, 48000.0), std::invalid_argument);
}

TEST(Vad, PartialFramesCarryAcrossPushes) {
  Vad vad;
  const auto signal = tone(vad.frame_length() * 2, -20.0);
  const std::span<const audio::Sample> span(signal);

  // 1.5 frames: one completed, half carried.
  auto frames = vad.push(span.subspan(0, vad.frame_length() * 3 / 2));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].index, 0u);

  // The remaining half completes frame 1.
  frames = vad.push(span.subspan(vad.frame_length() * 3 / 2));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].index, 1u);
  EXPECT_EQ(vad.frames_emitted(), 2u);
}

TEST(Vad, SilenceIsInactive) {
  Vad vad;
  const std::vector<audio::Sample> silence(vad.frame_length() * 10, 0.0);
  for (const auto& frame : vad.push(silence)) {
    EXPECT_FALSE(frame.active);
    EXPECT_LE(frame.energy_db, -119.0);
  }
}

TEST(Vad, TonalSpeechIsActiveWhiteNoiseIsNot) {
  Vad vad;
  const auto speech = vad.push(tone(vad.frame_length() * 10, -20.0));
  ASSERT_EQ(speech.size(), 10u);
  for (const auto& frame : speech) {
    EXPECT_TRUE(frame.active) << "frame " << frame.index;
    EXPECT_LT(frame.flatness, vad.config().flatness_max);
  }

  Vad vad2;
  // Loud enough to clear every energy gate; only the flatness gate stands.
  const auto noise = vad2.push(white_noise(vad2.frame_length() * 10, 0.05));
  ASSERT_EQ(noise.size(), 10u);
  for (const auto& frame : noise) {
    EXPECT_FALSE(frame.active) << "frame " << frame.index
                               << " flatness " << frame.flatness;
    EXPECT_GT(frame.flatness, vad2.config().flatness_max);
  }
}

TEST(Vad, HysteresisKeepsFadingSpeechAttached) {
  // At floor + 6 dB (between offset 4 and onset 8) a frame stays active
  // only if the previous raw decision was active.
  VadConfig config;
  config.hangover_frames = 0;  // isolate the hysteresis
  const double fading_db = config.noise_floor_init_db + 6.0;

  Vad fresh(config);
  const auto cold = fresh.push(tone(fresh.frame_length(), fading_db));
  ASSERT_EQ(cold.size(), 1u);
  EXPECT_FALSE(cold[0].active);  // never cleared the onset threshold

  Vad warm(config);
  (void)warm.push(tone(warm.frame_length() * 2, -20.0));  // clearly active
  const auto warm_frames = warm.push(tone(warm.frame_length(), fading_db));
  ASSERT_EQ(warm_frames.size(), 1u);
  EXPECT_TRUE(warm_frames[0].active);  // above the offset threshold
}

TEST(Vad, NoiseFloorTracksQuietRoomFastAndLoudRoomSlowly) {
  Vad vad;
  const double init = vad.config().noise_floor_init_db;
  (void)vad.push(std::vector<audio::Sample>(vad.frame_length() * 20, 0.0));
  EXPECT_LT(vad.noise_floor_db(), init - 10.0);  // fell fast toward silence

  Vad loudening;
  // White noise well above the initial floor: inactive (flat), so the floor
  // adapts — but upward only slowly.
  (void)loudening.push(white_noise(loudening.frame_length() * 20, 0.05));
  EXPECT_GT(loudening.noise_floor_db(), init);
  EXPECT_LT(loudening.noise_floor_db(), init + 15.0);
}

TEST(Vad, NoiseFloorIsFrozenThroughALongUtterance) {
  // Regression: inter-word dips are raw-inactive (the flatness gate
  // rejects them) but still reported active through the hangover — and
  // their energy is speech spill, not room noise. The floor used to adapt
  // upward on every such frame, so a long utterance ratcheted it word by
  // word until its own offsets stopped clearing the SNR margin. Reported-
  // active frames must leave the floor exactly where it was.
  Vad vad;
  const std::size_t len = vad.frame_length();
  (void)vad.push(std::vector<audio::Sample>(len * 20, 0.0));  // settle on silence
  const double floor_before = vad.noise_floor_db();

  // 4 s of "speech": three tonal frames, then a two-frame breathy dip that
  // rides the hangover (hangover_frames = 2), repeated.
  std::vector<audio::Sample> utterance;
  for (unsigned rep = 0; rep < 40; ++rep) {
    const auto word = tone(len * 3, -20.0);
    const auto dip = white_noise(len * 2, 0.02, /*seed=*/100 + rep);
    utterance.insert(utterance.end(), word.begin(), word.end());
    utterance.insert(utterance.end(), dip.begin(), dip.end());
  }
  const auto frames = vad.push(utterance);
  ASSERT_EQ(frames.size(), 200u);
  for (const auto& frame : frames) {
    EXPECT_TRUE(frame.active) << "frame " << frame.index;
  }
  EXPECT_DOUBLE_EQ(vad.noise_floor_db(), floor_before);
}

TEST(Vad, OnsetLoudNonSpeechAdaptsOnlyDamped) {
  // A frame loud enough to have fired an onset but rejected by the speech
  // gates follows the floor at the damped rate: the floor still moves (a
  // genuinely louder room is eventually tracked) but a burst cannot yank
  // it up.
  Vad vad;
  const double init = vad.config().noise_floor_init_db;
  (void)vad.push(white_noise(vad.frame_length() * 10, 0.05));  // ~-26 dBFS, flat
  EXPECT_GT(vad.noise_floor_db(), init);
  EXPECT_LT(vad.noise_floor_db(), init + 2.0);  // undamped would be ~+5 dB here
}

TEST(Vad, HangoverExtendsUtteranceTail) {
  VadConfig config;
  config.hangover_frames = 2;
  Vad vad(config);
  (void)vad.push(tone(vad.frame_length() * 3, -20.0));
  const auto tail = vad.push(std::vector<audio::Sample>(vad.frame_length() * 4, 0.0));
  ASSERT_EQ(tail.size(), 4u);
  EXPECT_TRUE(tail[0].active);   // hangover frame 1
  EXPECT_TRUE(tail[1].active);   // hangover frame 2
  EXPECT_FALSE(tail[2].active);  // hangover spent
  EXPECT_FALSE(tail[3].active);
}

TEST(Vad, SkippedFlatnessIsMarkedUnmeasured) {
  // Frames far under the energy gate skip the flatness FFT. They must
  // report "not measured" (NaN + has_flatness() false), not the old
  // fabricated default that metrics consumers mistook for a reading.
  Vad vad;
  const auto quiet = vad.push(std::vector<audio::Sample>(vad.frame_length() * 3, 0.0));
  ASSERT_EQ(quiet.size(), 3u);
  for (const auto& frame : quiet) {
    EXPECT_FALSE(frame.has_flatness()) << "frame " << frame.index;
    EXPECT_TRUE(std::isnan(frame.flatness)) << "frame " << frame.index;
    EXPECT_FALSE(frame.active);
  }

  const auto loud = vad.push(tone(vad.frame_length(), -20.0));
  ASSERT_EQ(loud.size(), 1u);
  EXPECT_TRUE(loud[0].has_flatness());
  EXPECT_FALSE(std::isnan(loud[0].flatness));
}

TEST(Vad, NearGateFramesStillMeasureFlatness) {
  // The skip threshold sits 6 dB under the absolute gate: a frame between
  // the two is inactive but must still carry a real flatness measurement.
  Vad vad;
  const double near_gate_db = vad.config().min_energy_db - 3.0;
  const auto frames = vad.push(tone(vad.frame_length(), near_gate_db));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_TRUE(frames[0].has_flatness());
  EXPECT_FALSE(frames[0].active);
}

TEST(Vad, EmptyAndZeroInputAreSafe) {
  Vad vad;
  EXPECT_TRUE(vad.push({}).empty());
  EXPECT_EQ(vad.frames_emitted(), 0u);
  // All-zero frames must produce the silence floor, never a NaN energy.
  const auto frames = vad.push(std::vector<audio::Sample>(vad.frame_length(), 0.0));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_FALSE(std::isnan(frames[0].energy_db));
  EXPECT_DOUBLE_EQ(frames[0].energy_db, -120.0);
}

TEST(Vad, ResetForgetsEverything) {
  Vad vad;
  (void)vad.push(tone(vad.frame_length() * 5 + 7, -20.0));
  vad.reset();
  EXPECT_EQ(vad.frames_emitted(), 0u);
  EXPECT_DOUBLE_EQ(vad.noise_floor_db(), vad.config().noise_floor_init_db);
  const auto frames = vad.push(tone(vad.frame_length(), -20.0));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].index, 0u);
}
