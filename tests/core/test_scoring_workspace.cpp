// ScoringWorkspace determinism: extraction with reused scratch must be
// bit-identical to the workspace-free path, across repeated calls and
// across capture sizes, and score_batch must equal sequential scoring.
#include "core/scoring_workspace.h"

#include <gtest/gtest.h>

#include <random>

#include "core/liveness_features.h"
#include "core/orientation_features.h"
#include "core/pipeline.h"

namespace headtalk::core {
namespace {

// Band-limited noise at speech-ish level: cheap to synthesize, busy enough
// that preprocessing keeps it and every feature stage has real work.
audio::MultiBuffer make_capture(std::size_t frames, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(-0.1, 0.1);
  audio::MultiBuffer capture(4, frames, audio::kDefaultSampleRate);
  for (std::size_t c = 0; c < capture.channel_count(); ++c) {
    double smoothed = 0.0;
    for (std::size_t i = 0; i < frames; ++i) {
      smoothed = 0.7 * smoothed + 0.3 * u(rng);
      capture.channel(c)[i] = smoothed;
    }
  }
  return capture;
}

TEST(ScoringWorkspace, OrientationExtractionIsBitIdentical) {
  const OrientationFeatureExtractor extractor;
  const auto capture = make_capture(12000, 1);
  const auto without = extractor.extract(capture);
  ScoringWorkspace workspace;
  const auto with = extractor.extract(capture, &workspace);
  ASSERT_EQ(without.size(), with.size());
  for (std::size_t i = 0; i < without.size(); ++i) {
    EXPECT_EQ(without[i], with[i]) << "feature " << i;
  }
}

TEST(ScoringWorkspace, LivenessExtractionIsBitIdentical) {
  const LivenessFeatureExtractor extractor;
  const auto capture = make_capture(12000, 2);
  const auto without = extractor.extract(capture.channel(0));
  ScoringWorkspace workspace;
  const auto with = extractor.extract(capture.channel(0), &workspace);
  ASSERT_EQ(without.size(), with.size());
  for (std::size_t i = 0; i < without.size(); ++i) {
    EXPECT_EQ(without[i], with[i]) << "feature " << i;
  }
}

TEST(ScoringWorkspace, ReuseAcrossSizesStaysBitIdentical) {
  // Growing and shrinking captures through one workspace: stale buffer
  // contents or stale sizes from the previous call must never leak into
  // the next result.
  const OrientationFeatureExtractor extractor;
  ScoringWorkspace workspace;
  for (std::size_t frames : {12000u, 5000u, 16000u, 5000u}) {
    const auto capture = make_capture(frames, static_cast<unsigned>(frames));
    const auto fresh = extractor.extract(capture);
    const auto reused = extractor.extract(capture, &workspace);
    ASSERT_EQ(fresh.size(), reused.size());
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      EXPECT_EQ(fresh[i], reused[i]) << frames << " frames, feature " << i;
    }
  }
}

TEST(ScoringWorkspace, CountsUses) {
  const OrientationFeatureExtractor orientation;
  const LivenessFeatureExtractor liveness;
  const auto capture = make_capture(6000, 3);
  ScoringWorkspace workspace;
  EXPECT_EQ(workspace.uses(), 0u);
  (void)orientation.extract(capture, &workspace);
  EXPECT_EQ(workspace.uses(), 1u);
  (void)liveness.extract(capture.channel(0), &workspace);
  EXPECT_EQ(workspace.uses(), 2u);
}

TEST(ScoringWorkspace, ScoreBatchMatchesSequentialScoring) {
  // Synthetic-trained detectors (scoring math only cares about dimension),
  // then a batch through one shared workspace versus one-by-one scoring
  // without: every result field must agree exactly.
  const OrientationFeatureExtractor orientation_extractor;
  const LivenessFeatureExtractor liveness_extractor;
  std::mt19937 rng(4);
  std::normal_distribution<double> g(0.0, 1.0);
  ml::Dataset orientation_data, liveness_data;
  for (int i = 0; i < 40; ++i) {
    ml::FeatureVector a(orientation_extractor.dimension(4)), b(a.size());
    for (std::size_t j = 0; j < a.size(); ++j) {
      a[j] = g(rng) + 1.0;
      b[j] = g(rng) - 1.0;
    }
    orientation_data.add(std::move(a), kLabelFacing);
    orientation_data.add(std::move(b), kLabelNonFacing);
    ml::FeatureVector c(liveness_extractor.dimension()), d(c.size());
    for (std::size_t j = 0; j < c.size(); ++j) {
      c[j] = g(rng) + 1.0;
      d[j] = g(rng) - 1.0;
    }
    liveness_data.add(std::move(c), kLabelLive);
    liveness_data.add(std::move(d), kLabelReplay);
  }
  OrientationClassifier orientation;
  orientation.train(orientation_data);
  LivenessDetector liveness;
  liveness.train(liveness_data);
  const HeadTalkPipeline pipeline(std::move(orientation), std::move(liveness));

  std::vector<audio::MultiBuffer> batch;
  for (unsigned seed = 10; seed < 13; ++seed) batch.push_back(make_capture(9000, seed));

  ScoringWorkspace workspace;
  const auto batched = pipeline.score_batch(batch, VaMode::kHeadTalk, &workspace);
  ASSERT_EQ(batched.size(), batch.size());
  // Liveness always runs; orientation only when the liveness gate passes.
  EXPECT_GE(workspace.uses(), batch.size());
  EXPECT_LE(workspace.uses(), 2 * batch.size());

  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto single = pipeline.score_capture(batch[i], VaMode::kHeadTalk,
                                               /*followup=*/false,
                                               /*session_active=*/false);
    EXPECT_EQ(batched[i].decision, single.decision) << "capture " << i;
    EXPECT_EQ(batched[i].liveness_checked, single.liveness_checked);
    EXPECT_EQ(batched[i].live, single.live);
    EXPECT_EQ(batched[i].liveness_score, single.liveness_score);
    EXPECT_EQ(batched[i].orientation_checked, single.orientation_checked);
    EXPECT_EQ(batched[i].facing, single.facing);
    EXPECT_EQ(batched[i].orientation_score, single.orientation_score);
    EXPECT_EQ(batched[i].via_open_session, single.via_open_session);
    EXPECT_EQ(batched[i].session_open_after, single.session_open_after);
  }
}

}  // namespace
}  // namespace headtalk::core
