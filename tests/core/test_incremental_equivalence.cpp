// Incremental-vs-batch equivalence — the tentpole contract of the
// streaming feature path. The batch extractors delegate to the same
// IncrementalExtractor the StreamingDetector feeds frame by frame, and
// every piece of accumulator state advances on cumulative sample counts
// alone, so chunking must be unobservable: any split of the same samples
// — down to single-sample pushes — yields bit-identical features and
// identical pipeline verdicts. The suite asserts exact equality (stronger
// than the issue's 1e-9 budget) and re-runs the sweep at every SIMD
// dispatch level the host supports; ctest additionally launches the whole
// filter once under HEADTALK_SIMD=off and once native (label
// `simd-equivalence`).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>
#include <vector>

#include "audio/sample_buffer.h"
#include "core/incremental_extractor.h"
#include "core/liveness_features.h"
#include "core/orientation_features.h"
#include "core/pipeline.h"
#include "dsp/simd/dispatch.h"
#include "serve_test_util.h"

using namespace headtalk;
using namespace headtalk::core;

namespace {

/// Chunk splits swept everywhere: single samples, a prime, one VAD frame
/// at 48 kHz, a big power of two, and one oversized push.
constexpr std::size_t kChunks[] = {1, 7, 960, 4096, 1 << 20};

/// A capture with the structure the extractor actually sees in a stream:
/// quiet noise floor, a harmonic burst in the middle (per-channel phase
/// offsets so GCC/SRP have real lags), quiet tail — so the silence trim
/// selects a proper interior span.
audio::MultiBuffer make_segment_capture(std::size_t channels, std::size_t frames,
                                        double sample_rate, unsigned seed) {
  audio::MultiBuffer capture(channels, frames, sample_rate);
  std::mt19937 rng(seed);
  std::normal_distribution<double> g(0.0, 0.002);
  const std::size_t burst_begin = frames / 6;
  const std::size_t burst_end = frames - frames / 6;
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t f = 0; f < frames; ++f) {
      double v = g(rng);
      if (f >= burst_begin && f < burst_end) {
        const double t =
            (static_cast<double>(f) + 0.7 * static_cast<double>(c)) / sample_rate;
        for (int h = 1; h <= 5; ++h) {
          v += 0.08 * std::sin(2.0 * std::numbers::pi * 230.0 * h * t);
        }
      }
      capture.channel(c)[f] = v;
    }
  }
  return capture;
}

/// Feeds `capture` to `op` split into `chunk`-frame pieces.
void push_chunked(IncrementalExtractor& op, const audio::MultiBuffer& capture,
                  std::size_t chunk) {
  const std::size_t frames = capture.frames();
  for (std::size_t offset = 0; offset < frames; offset += chunk) {
    const std::size_t take = std::min(chunk, frames - offset);
    std::vector<audio::Buffer> pieces;
    pieces.reserve(capture.channel_count());
    for (std::size_t c = 0; c < capture.channel_count(); ++c) {
      pieces.push_back(capture.channel(c).slice(offset, take));
    }
    op.push(audio::MultiBuffer(std::move(pieces)));
  }
}

void expect_identical(const ml::FeatureVector& streamed,
                      const ml::FeatureVector& batch, std::size_t chunk) {
  ASSERT_EQ(streamed.size(), batch.size()) << "chunk " << chunk;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_DOUBLE_EQ(streamed[i], batch[i])
        << "chunk " << chunk << " feature " << i;
  }
}

void sweep_orientation_chunks() {
  const auto capture =
      make_segment_capture(4, 12000, audio::kDefaultSampleRate, /*seed=*/3);
  const OrientationFeatureExtractor extractor;
  const auto batch = extractor.extract(capture);

  IncrementalExtractorConfig config;
  config.orientation = extractor.config();
  config.enable_liveness = false;
  for (const std::size_t chunk : kChunks) {
    IncrementalExtractor op;
    op.begin(config, capture.channel_count(), capture.sample_rate());
    push_chunked(op, capture, chunk);
    expect_identical(op.finalize_orientation(), batch, chunk);
  }
}

void sweep_verdict_chunks() {
  static const HeadTalkPipeline pipeline = serve_test::make_test_pipeline();
  const auto capture =
      make_segment_capture(4, 12000, audio::kDefaultSampleRate, /*seed=*/5);
  FeatureCapture batch_features;
  const auto batch =
      pipeline.score_capture(capture, VaMode::kHeadTalk, /*followup=*/false,
                             /*session_active=*/false, nullptr, &batch_features);

  for (const std::size_t chunk : kChunks) {
    IncrementalExtractor op;
    op.begin(pipeline.incremental_config(), capture.channel_count(),
             capture.sample_rate());
    push_chunked(op, capture, chunk);
    FeatureCapture streamed_features;
    const auto streamed =
        pipeline.finalize_segment(op, VaMode::kHeadTalk, /*followup=*/false,
                                  /*session_active=*/false, &streamed_features);
    EXPECT_EQ(streamed.decision, batch.decision) << "chunk " << chunk;
    EXPECT_DOUBLE_EQ(streamed.liveness_score, batch.liveness_score)
        << "chunk " << chunk;
    EXPECT_DOUBLE_EQ(streamed.orientation_score, batch.orientation_score)
        << "chunk " << chunk;
    EXPECT_EQ(streamed.session_open_after, batch.session_open_after)
        << "chunk " << chunk;
    expect_identical(streamed_features.liveness, batch_features.liveness, chunk);
    expect_identical(streamed_features.orientation, batch_features.orientation,
                     chunk);
  }
}

}  // namespace

TEST(IncrementalEquivalence, OrientationMatchesBatchAtAnyChunking) {
  sweep_orientation_chunks();
}

TEST(IncrementalEquivalence, LivenessMatchesBatchAtAnyChunkingAndSampleRate) {
  // 48 kHz exercises the stateful integer decimator, 16 kHz the
  // passthrough, 44.1 kHz the buffered fallback for non-integer ratios.
  for (const double rate : {48000.0, 16000.0, 44100.0}) {
    const auto capture = make_segment_capture(1, static_cast<std::size_t>(rate / 4),
                                              rate, /*seed=*/7);
    const LivenessFeatureExtractor extractor;
    const auto batch = extractor.extract(capture.channel(0));

    IncrementalExtractorConfig config;
    config.liveness = extractor.config();
    config.enable_orientation = false;
    for (const std::size_t chunk : kChunks) {
      IncrementalExtractor op;
      op.begin(config, 1, rate);
      push_chunked(op, capture, chunk);
      expect_identical(op.finalize_liveness(), batch, chunk);
    }
  }
}

TEST(IncrementalEquivalence, PipelineVerdictMatchesScoreCapture) {
  sweep_verdict_chunks();
}

TEST(IncrementalEquivalence, HoldsAtEverySimdLevelInProcess) {
  const dsp::simd::Level previous = dsp::simd::active_level();
  const auto max = static_cast<int>(dsp::simd::max_supported_level());
  for (int l = 0; l <= max; ++l) {
    const auto level = static_cast<dsp::simd::Level>(l);
    dsp::simd::set_level(level);
    SCOPED_TRACE(dsp::simd::level_name(level));
    sweep_orientation_chunks();
    sweep_verdict_chunks();
  }
  dsp::simd::set_level(previous);
}
