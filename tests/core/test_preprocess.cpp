#include "core/preprocess.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "audio/gain.h"

namespace headtalk::core {
namespace {

constexpr double kFs = 48000.0;

audio::Buffer tone(double freq, std::size_t frames) {
  audio::Buffer b(frames, kFs);
  for (std::size_t i = 0; i < frames; ++i) {
    b[i] = 0.5 * std::sin(2.0 * std::numbers::pi * freq * static_cast<double>(i) / kFs);
  }
  return b;
}

TEST(Preprocess, RemovesSubsonicRumble) {
  // 30 Hz rumble + 1 kHz speech band tone: rumble must mostly vanish.
  auto x = tone(1000.0, 9600);
  const auto rumble = tone(30.0, 9600);
  x.add(rumble);
  PreprocessConfig cfg;
  cfg.trim_threshold_db = -200.0;  // disable trimming for this test
  const auto y = preprocess(x, cfg);
  // Correlate output with the rumble: residual low-frequency energy small.
  double rumble_power = 0.0, signal_power = 0.0;
  for (std::size_t i = 4800; i < y.size(); ++i) {
    rumble_power += y[i] * rumble[i];
    signal_power += y[i] * y[i];
  }
  EXPECT_LT(std::abs(rumble_power), 0.1 * signal_power);
}

TEST(Preprocess, KeepsSpeechBand) {
  auto x = tone(1000.0, 9600);
  PreprocessConfig cfg;
  cfg.trim_threshold_db = -200.0;
  const auto y = preprocess(x, cfg);
  const auto interior_in = x.slice(4800, 4000);
  const auto interior_out = y.slice(4800, 4000);
  EXPECT_NEAR(audio::rms(interior_out.samples()), audio::rms(interior_in.samples()),
              0.05 * audio::rms(interior_in.samples()));
}

TEST(Preprocess, TrimsLeadingAndTrailingSilence) {
  // 100 ms silence + 100 ms tone + 200 ms silence.
  audio::Buffer x(static_cast<std::size_t>(0.4 * kFs), kFs);
  const auto burst = tone(1000.0, static_cast<std::size_t>(0.1 * kFs));
  for (std::size_t i = 0; i < burst.size(); ++i) {
    x[static_cast<std::size_t>(0.1 * kFs) + i] = burst[i];
  }
  const auto y = preprocess(x);
  // Kept span ~ utterance + 2x40 ms padding.
  EXPECT_LT(y.size(), static_cast<std::size_t>(0.25 * kFs));
  EXPECT_GT(y.size(), static_cast<std::size_t>(0.09 * kFs));
  EXPECT_GT(audio::rms(y.samples()), 0.5 * audio::rms(burst.samples()));
}

TEST(Preprocess, MultichannelTrimIsSynchronized) {
  // Identical content on both channels but with an inter-channel delay of
  // 5 samples: trimming must keep the delay intact (same span cut).
  const std::size_t total = static_cast<std::size_t>(0.3 * kFs);
  audio::MultiBuffer m(2, total, kFs);
  const auto burst = tone(800.0, static_cast<std::size_t>(0.08 * kFs));
  const std::size_t off = static_cast<std::size_t>(0.1 * kFs);
  for (std::size_t i = 0; i < burst.size(); ++i) {
    m.channel(0)[off + i] = burst[i];
    m.channel(1)[off + 5 + i] = burst[i];
  }
  const auto y = preprocess(m);
  ASSERT_EQ(y.channel_count(), 2u);
  // Cross-correlate to confirm the 5-sample delay survives.
  double best = -1.0;
  long best_lag = 0;
  for (long lag = -20; lag <= 20; ++lag) {
    double acc = 0.0;
    for (std::size_t i = 100; i + 100 < y.frames(); ++i) {
      const long j = static_cast<long>(i) + lag;
      if (j < 0 || j >= static_cast<long>(y.frames())) continue;
      acc += y.channel(0)[i] * y.channel(1)[static_cast<std::size_t>(j)];
    }
    if (acc > best) {
      best = acc;
      best_lag = lag;
    }
  }
  EXPECT_EQ(best_lag, 5);
}

TEST(Preprocess, SilentInputSurvives) {
  audio::MultiBuffer m(2, 4800, kFs);
  const auto y = preprocess(m);
  EXPECT_EQ(y.channel_count(), 2u);
  EXPECT_EQ(y.frames(), 4800u);  // nothing to trim against
}

TEST(Preprocess, QuietCaptureBelowSilenceFloorIsNotTrimmed) {
  // Regression: a capture whose loudest frame sits under the absolute
  // silence floor used to be trimmed against its own noise wiggle (the
  // threshold is relative to the peak), collapsing near-silence to a
  // residual sliver. It must come back band-passed but full-length.
  const std::size_t total = static_cast<std::size_t>(0.4 * kFs);
  audio::MultiBuffer m(2, total, kFs);
  const auto burst = tone(1000.0, static_cast<std::size_t>(0.1 * kFs));
  const std::size_t off = static_cast<std::size_t>(0.15 * kFs);
  for (std::size_t i = 0; i < burst.size(); ++i) {
    // ~-80 dBFS: shaped like an utterance but far below the floor.
    m.channel(0)[off + i] = 2e-4 * burst[i];
    m.channel(1)[off + i] = 2e-4 * burst[i];
  }
  const auto y = preprocess(m);
  EXPECT_EQ(y.frames(), total);

  // The same shape at speech level still trims as before.
  audio::MultiBuffer loud(2, total, kFs);
  for (std::size_t i = 0; i < burst.size(); ++i) {
    loud.channel(0)[off + i] = burst[i];
    loud.channel(1)[off + i] = burst[i];
  }
  EXPECT_LT(preprocess(loud).frames(), total);
}

TEST(Preprocess, BriefClickDoesNotTriggerTrimming) {
  // A loud blip shorter than min_active_ms is a glitch, not an utterance:
  // trimming to it would throw away the whole capture.
  const std::size_t total = static_cast<std::size_t>(0.4 * kFs);
  audio::MultiBuffer m(1, total, kFs);
  const auto blip = tone(1000.0, static_cast<std::size_t>(0.03 * kFs));  // 30 ms
  const std::size_t off = static_cast<std::size_t>(0.2 * kFs);
  for (std::size_t i = 0; i < blip.size(); ++i) m.channel(0)[off + i] = blip[i];
  const auto y = preprocess(m);
  EXPECT_EQ(y.frames(), total);
}

TEST(Preprocess, MonoOverload) {
  const auto y = preprocess(tone(1000.0, 4800));
  EXPECT_GT(y.size(), 0u);
  EXPECT_DOUBLE_EQ(y.sample_rate(), kFs);
}

TEST(Preprocess, HighCutoffClampedBelowNyquist) {
  // 16 kHz upper edge with a 16 kHz-rate capture must not throw: the edge
  // clamps below Nyquist.
  audio::Buffer x(1600, 16000.0);
  x[800] = 0.5;
  PreprocessConfig cfg;
  EXPECT_NO_THROW((void)preprocess(x, cfg));
}

}  // namespace
}  // namespace headtalk::core
