#include "core/orientation_features.h"

#include <gtest/gtest.h>

#include <random>

#include "dsp/fractional_delay.h"

namespace headtalk::core {
namespace {

audio::MultiBuffer random_capture(std::size_t channels, std::size_t frames,
                                  unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(-0.5, 0.5);
  audio::MultiBuffer m(channels, frames, 48000.0);
  for (std::size_t c = 0; c < channels; ++c) {
    for (auto& v : m.channel(c).data()) v = u(rng);
  }
  return m;
}

TEST(OrientationFeatures, PaperLagWindows) {
  OrientationFeatureConfig cfg;
  cfg.max_mic_distance_m = 0.09;  // D2
  OrientationFeatureExtractor e(cfg);
  EXPECT_EQ(e.effective_max_lag(48000.0), 13);
  cfg.max_mic_distance_m = 0.085;  // D1
  EXPECT_EQ(OrientationFeatureExtractor(cfg).effective_max_lag(48000.0), 12);
  cfg.max_mic_distance_m = 0.065;  // D3
  EXPECT_EQ(OrientationFeatureExtractor(cfg).effective_max_lag(48000.0), 10);
}

TEST(OrientationFeatures, ExplicitMaxLagOverrides) {
  OrientationFeatureConfig cfg;
  cfg.max_lag = 7;
  EXPECT_EQ(OrientationFeatureExtractor(cfg).effective_max_lag(48000.0), 7);
}

TEST(OrientationFeatures, DimensionMatchesExtraction) {
  OrientationFeatureExtractor e;
  for (std::size_t channels : {2u, 3u, 4u, 5u, 6u}) {
    const auto capture = random_capture(channels, 4096, 1);
    const auto f = e.extract(capture);
    EXPECT_EQ(f.size(), e.dimension(channels)) << channels << " channels";
  }
}

TEST(OrientationFeatures, GccBlockMatchesPaperCount) {
  // §III-B3: for D2's 4 channels and a 13-sample window the GCC feature
  // block is 6 x 27 + 6 = 168 values.
  OrientationFeatureConfig cfg;
  cfg.max_mic_distance_m = 0.09;
  OrientationFeatureExtractor e(cfg);
  const std::size_t gcc_block = 6 * 27 + 6;
  // dimension = srp(3 + 5) + gcc_block + pair stats (6*5) + hlbr(1) + 60.
  EXPECT_EQ(e.dimension(4), 8 + gcc_block + 30 + 1 + 60);
}

TEST(OrientationFeatures, RequiresTwoChannels) {
  OrientationFeatureExtractor e;
  const auto mono = random_capture(1, 1024, 2);
  EXPECT_THROW((void)e.extract(mono), std::invalid_argument);
}

TEST(OrientationFeatures, DeterministicForSameCapture) {
  OrientationFeatureExtractor e;
  const auto capture = random_capture(4, 4096, 3);
  const auto a = e.extract(capture);
  const auto b = e.extract(capture);
  EXPECT_EQ(a, b);
}

TEST(OrientationFeatures, TdoaFeatureReflectsChannelDelays) {
  // Channel 1 delayed 6 samples w.r.t. channel 0: the first TDoA feature
  // (pair 0-1 peak lag) must be -6 (signal reaches ch0 first).
  const auto base = random_capture(1, 8192, 4).channel(0);
  std::vector<audio::Buffer> channels{base,
                                      audio::Buffer(dsp::fractional_delay(base.samples(), 6.0), 48000.0)};
  const audio::MultiBuffer capture(std::move(channels));
  OrientationFeatureConfig cfg;
  cfg.max_lag = 10;
  OrientationFeatureExtractor e(cfg);
  const auto f = e.extract(capture);
  // Layout: 3 peaks + 5 SRP stats + 1 pair x 21 GCC values, then 1 TDoA.
  const std::size_t tdoa_index = 3 + 5 + 21;
  EXPECT_DOUBLE_EQ(f[tdoa_index], -6.0);
}

TEST(OrientationFeatures, FeatureValuesAreFinite) {
  OrientationFeatureExtractor e;
  const auto capture = random_capture(4, 4096, 5);
  for (double v : e.extract(capture)) EXPECT_TRUE(std::isfinite(v));
}

TEST(OrientationFeatures, SilentCaptureDoesNotBlowUp) {
  OrientationFeatureExtractor e;
  audio::MultiBuffer silent(4, 4096, 48000.0);
  const auto f = e.extract(silent);
  for (double v : f) EXPECT_TRUE(std::isfinite(v));
}

}  // namespace
}  // namespace headtalk::core
