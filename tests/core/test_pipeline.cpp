// Pipeline mode state machine, exercised with real (small) renders so the
// feature extractors see realistic captures.
#include "core/pipeline.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <random>

#include "audio/gain.h"
#include "room/scene.h"
#include "speech/loudspeaker.h"
#include "speech/synthesizer.h"

namespace headtalk::core {
namespace {

struct PipelineFixture : ::testing::Test {
  static constexpr double kFs = 48000.0;

  // Renders a wake word from 2 m, at a head angle relative to the device,
  // optionally replayed through a phone speaker.
  static audio::MultiBuffer render(double angle_deg, bool replay, unsigned seed) {
    std::mt19937 rng(42);
    const auto profile = speech::SpeakerProfile::random(rng);
    audio::Buffer dry =
        speech::synthesize_wake_word(speech::WakeWord::kComputer, profile, seed);
    std::unique_ptr<speech::Directivity> dir;
    if (replay) {
      dry = speech::replay_through(dry, speech::LoudspeakerModel::smartphone(), seed);
      dir = std::make_unique<speech::LoudspeakerDirectivity>(0.012);
    } else {
      dir = std::make_unique<speech::HumanSpeechDirectivity>();
    }
    audio::set_spl(dry, 70.0);

    room::Scene scene(room::Room::lab(), room::DeviceSpec::d2(),
                      room::ArrayPose{{0.5, 2.1, 0.74}, 0.0}, 7);
    const room::Vec3 pos{2.5, 2.1, 1.65};
    const double toward = std::atan2(2.1 - pos.y, 0.5 - pos.x);
    room::RenderOptions opt;
    opt.channels = {0, 1, 3, 4};
    opt.noise_seed = seed;
    return scene.render(dry, {pos, toward + room::deg_to_rad(angle_deg)}, *dir, opt);
  }

  // Builds a trained pipeline from a handful of rendered captures.
  static HeadTalkPipeline make_pipeline() {
    PipelineConfig config;
    config.orientation_features.max_mic_distance_m = 0.09;
    OrientationFeatureExtractor ofe(config.orientation_features);
    LivenessFeatureExtractor lfe(config.liveness_features);

    ml::Dataset orientation_data;
    ml::Dataset liveness_data;
    unsigned seed = 100;
    // The extractors preprocess internally with the pipeline's config, so
    // the training features equal what score_capture computes on the raw
    // renders.
    for (int rep = 0; rep < 4; ++rep) {
      for (double angle : {0.0, 20.0, -20.0}) {
        const auto cap = render(angle, false, seed++);
        orientation_data.add(ofe.extract(cap, config.preprocess), kLabelFacing);
        liveness_data.add(lfe.extract(cap.channel(0), config.preprocess), kLabelLive);
      }
      for (double angle : {120.0, -120.0, 180.0}) {
        const auto cap = render(angle, false, seed++);
        orientation_data.add(ofe.extract(cap, config.preprocess), kLabelNonFacing);
        liveness_data.add(lfe.extract(cap.channel(0), config.preprocess), kLabelLive);
      }
      for (double angle : {0.0, 90.0}) {
        const auto cap = render(angle, true, seed++);
        liveness_data.add(lfe.extract(cap.channel(0), config.preprocess), kLabelReplay);
      }
    }
    OrientationClassifier orientation;
    orientation.train(orientation_data);
    LivenessDetectorConfig live_cfg;
    live_cfg.mlp.epochs = 40;
    LivenessDetector liveness(live_cfg);
    liveness.train(liveness_data);
    return HeadTalkPipeline(std::move(orientation), std::move(liveness), config);
  }

  static HeadTalkPipeline& pipeline() {
    static HeadTalkPipeline instance = make_pipeline();
    return instance;
  }
};

TEST_F(PipelineFixture, NormalModeAcceptsEverything) {
  auto& p = pipeline();
  p.set_mode(VaMode::kNormal);
  const auto r = p.process_wake_word(render(180.0, true, 900));
  EXPECT_EQ(r.decision, Decision::kAccepted);
  EXPECT_FALSE(r.liveness_checked);
}

TEST_F(PipelineFixture, MuteModeRejectsEverything) {
  auto& p = pipeline();
  p.set_mode(VaMode::kMute);
  const auto r = p.process_wake_word(render(0.0, false, 901));
  EXPECT_EQ(r.decision, Decision::kRejectedMuted);
}

TEST_F(PipelineFixture, HeadTalkAcceptsFacingHuman) {
  auto& p = pipeline();
  p.set_mode(VaMode::kHeadTalk);
  const auto r = p.process_wake_word(render(0.0, false, 902));
  EXPECT_EQ(r.decision, Decision::kAccepted);
  EXPECT_TRUE(r.liveness_checked);
  EXPECT_TRUE(r.live);
  EXPECT_TRUE(r.orientation_checked);
  EXPECT_TRUE(r.facing);
  EXPECT_TRUE(p.session_active());
}

TEST_F(PipelineFixture, HeadTalkRejectsBackwardHuman) {
  auto& p = pipeline();
  p.set_mode(VaMode::kHeadTalk);
  const auto r = p.process_wake_word(render(180.0, false, 903));
  EXPECT_EQ(r.decision, Decision::kRejectedNotFacing);
  EXPECT_TRUE(r.live);
  EXPECT_FALSE(p.session_active());
}

TEST_F(PipelineFixture, HeadTalkRejectsReplayEvenWhenFacing) {
  auto& p = pipeline();
  p.set_mode(VaMode::kHeadTalk);
  const auto r = p.process_wake_word(render(0.0, true, 904));
  EXPECT_EQ(r.decision, Decision::kRejectedReplay);
  EXPECT_FALSE(r.orientation_checked);  // liveness gate comes first (Fig. 2)
}

TEST_F(PipelineFixture, OpenSessionSkipsOrientationForFollowups) {
  auto& p = pipeline();
  p.set_mode(VaMode::kHeadTalk);
  ASSERT_EQ(p.process_wake_word(render(0.0, false, 905)).decision, Decision::kAccepted);
  ASSERT_TRUE(p.session_active());
  // Follow-up while facing away: still accepted via the open session (§I).
  const auto r = p.process_followup(render(180.0, false, 906));
  EXPECT_EQ(r.decision, Decision::kAccepted);
  EXPECT_TRUE(r.via_open_session);
  EXPECT_FALSE(r.orientation_checked);
  p.end_session();
  EXPECT_FALSE(p.session_active());
  const auto r2 = p.process_followup(render(180.0, false, 907));
  EXPECT_EQ(r2.decision, Decision::kRejectedNotFacing);
}

TEST_F(PipelineFixture, ReplayDuringSessionClosesIt) {
  auto& p = pipeline();
  p.set_mode(VaMode::kHeadTalk);
  ASSERT_EQ(p.process_wake_word(render(0.0, false, 908)).decision, Decision::kAccepted);
  const auto r = p.process_followup(render(0.0, true, 909));
  EXPECT_EQ(r.decision, Decision::kRejectedReplay);
  EXPECT_FALSE(p.session_active());
}

TEST_F(PipelineFixture, SetModeResetsSession) {
  auto& p = pipeline();
  p.set_mode(VaMode::kHeadTalk);
  ASSERT_EQ(p.process_wake_word(render(0.0, false, 910)).decision, Decision::kAccepted);
  p.set_mode(VaMode::kHeadTalk);
  EXPECT_FALSE(p.session_active());
}

TEST(PipelineConstruction, RequiresTrainedDetectors) {
  OrientationClassifier untrained_orientation;
  LivenessDetector untrained_liveness;
  EXPECT_THROW(HeadTalkPipeline(std::move(untrained_orientation),
                                std::move(untrained_liveness)),
               std::invalid_argument);
}

TEST(PipelineNames, Strings) {
  EXPECT_EQ(va_mode_name(VaMode::kHeadTalk), "headtalk");
  EXPECT_EQ(va_mode_name(VaMode::kMute), "mute");
  EXPECT_EQ(decision_name(Decision::kAccepted), "accepted");
  EXPECT_EQ(decision_name(Decision::kRejectedReplay), "rejected-replay");
}

}  // namespace
}  // namespace headtalk::core
