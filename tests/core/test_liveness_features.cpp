#include "core/liveness_features.h"

#include <gtest/gtest.h>

#include <random>

#include "speech/loudspeaker.h"
#include "speech/synthesizer.h"

namespace headtalk::core {
namespace {

audio::Buffer live_utterance(unsigned seed) {
  std::mt19937 rng(42);
  const auto profile = speech::SpeakerProfile::random(rng);
  return speech::synthesize_wake_word(speech::WakeWord::kComputer, profile, seed);
}

TEST(LivenessFeatures, DimensionMatchesExtraction) {
  LivenessFeatureExtractor e;
  const auto f = e.extract(live_utterance(1));
  EXPECT_EQ(f.size(), e.dimension());
}

TEST(LivenessFeatures, DeterministicForSameInput) {
  LivenessFeatureExtractor e;
  const auto x = live_utterance(2);
  EXPECT_EQ(e.extract(x), e.extract(x));
}

TEST(LivenessFeatures, FiniteOnSilence) {
  LivenessFeatureExtractor e;
  audio::Buffer silent(16000, 48000.0);
  for (double v : e.extract(silent)) EXPECT_TRUE(std::isfinite(v));
}

TEST(LivenessFeatures, SeparatesLiveFromReplay) {
  // The high-band log energies / slope must differ measurably between live
  // and replayed renditions of the same utterance (the Fig. 3 signature).
  LivenessFeatureExtractor e;
  const auto live = live_utterance(3);
  const auto replay =
      speech::replay_through(live, speech::LoudspeakerModel::smartphone(), 7);
  const auto fl = e.extract(live);
  const auto fr = e.extract(replay);
  ASSERT_EQ(fl.size(), fr.size());
  // Compare the top third of the log band energies (high bands).
  const std::size_t bands = e.config().log_bands;
  double live_high = 0.0, replay_high = 0.0;
  for (std::size_t b = 2 * bands / 3; b < bands; ++b) {
    live_high += fl[b];
    replay_high += fr[b];
  }
  EXPECT_GT(live_high, replay_high + 3.0);  // several dB higher per band sum
}

TEST(LivenessFeatures, AcceptsAnyInputRate) {
  LivenessFeatureExtractor e;
  audio::Buffer at16k(8000, 16000.0);
  for (std::size_t i = 0; i < at16k.size(); ++i) {
    at16k[i] = std::sin(0.3 * static_cast<double>(i));
  }
  const auto f = e.extract(at16k);  // no resampling needed, still works
  EXPECT_EQ(f.size(), e.dimension());
}

TEST(LivenessFeatures, ConfigurableBandCount) {
  LivenessFeatureConfig cfg;
  cfg.log_bands = 16;
  LivenessFeatureExtractor e(cfg);
  EXPECT_EQ(e.dimension(), 16u + 6u);
  EXPECT_EQ(e.extract(live_utterance(4)).size(), 22u);
}

}  // namespace
}  // namespace headtalk::core
