#include "core/facing.h"

#include <gtest/gtest.h>

namespace headtalk::core {
namespace {

TEST(Facing, GroundTruthZone) {
  // The paper's facing zone is [-30, +30].
  for (double a : {0.0, 15.0, -15.0, 30.0, -30.0}) {
    EXPECT_TRUE(is_facing_ground_truth(a)) << a;
  }
  for (double a : {45.0, -45.0, 60.0, 75.0, 90.0, 135.0, 180.0, -180.0}) {
    EXPECT_FALSE(is_facing_ground_truth(a)) << a;
  }
}

TEST(Facing, GroundTruthWrapsAngles) {
  EXPECT_TRUE(is_facing_ground_truth(360.0));
  EXPECT_TRUE(is_facing_ground_truth(-345.0));  // == +15
  EXPECT_FALSE(is_facing_ground_truth(270.0));  // == -90
}

TEST(Facing, Definition1Arcs) {
  const auto def = FacingDefinition::kDefinition1;
  for (double a : {0.0, 15.0, -15.0, 30.0, -30.0, 45.0, -45.0}) {
    EXPECT_EQ(training_arc(def, a), TrainingArc::kFacing) << a;
  }
  for (double a : {60.0, 75.0, 90.0, 135.0, 180.0, -60.0}) {
    EXPECT_EQ(training_arc(def, a), TrainingArc::kNonFacing) << a;
  }
}

TEST(Facing, Definition2MovesBoundary) {
  const auto def = FacingDefinition::kDefinition2;
  EXPECT_EQ(training_arc(def, 45.0), TrainingArc::kExcluded);
  EXPECT_EQ(training_arc(def, 30.0), TrainingArc::kFacing);
  EXPECT_EQ(training_arc(def, 60.0), TrainingArc::kNonFacing);
}

TEST(Facing, Definition3ExcludesSixty) {
  const auto def = FacingDefinition::kDefinition3;
  EXPECT_EQ(training_arc(def, 60.0), TrainingArc::kExcluded);
  EXPECT_EQ(training_arc(def, 75.0), TrainingArc::kNonFacing);
}

TEST(Facing, Definition4HasWidestSoftBoundary) {
  const auto def = FacingDefinition::kDefinition4;
  for (double a : {0.0, 15.0, -15.0, 30.0, -30.0}) {
    EXPECT_EQ(training_arc(def, a), TrainingArc::kFacing) << a;
  }
  for (double a : {45.0, -45.0, 60.0, -60.0, 75.0, -75.0}) {
    EXPECT_EQ(training_arc(def, a), TrainingArc::kExcluded) << a;
  }
  for (double a : {90.0, -90.0, 135.0, -135.0, 180.0}) {
    EXPECT_EQ(training_arc(def, a), TrainingArc::kNonFacing) << a;
  }
}

TEST(Facing, DefinitionsToleratePlacementError) {
  // Angles are matched with a +/-1 degree tolerance (human error, §VI).
  EXPECT_EQ(training_arc(FacingDefinition::kDefinition4, 30.4), TrainingArc::kFacing);
  EXPECT_EQ(training_arc(FacingDefinition::kDefinition4, 89.2), TrainingArc::kNonFacing);
}

TEST(Facing, NamesAndEnumeration) {
  EXPECT_EQ(all_facing_definitions().size(), 4u);
  EXPECT_EQ(facing_definition_name(FacingDefinition::kDefinition4), "Definition-4");
  EXPECT_NE(kLabelFacing, kLabelNonFacing);
}

}  // namespace
}  // namespace headtalk::core
