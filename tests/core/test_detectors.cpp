// OrientationClassifier + LivenessDetector on synthetic feature data.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "core/liveness_detector.h"
#include "core/orientation_classifier.h"

namespace headtalk::core {
namespace {

// Synthetic "orientation features": facing samples cluster at +2, others -2.
ml::Dataset orientation_blobs(std::size_t per_class, unsigned seed,
                              double separation = 4.0) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> g(0.0, 1.0);
  ml::Dataset d;
  for (std::size_t i = 0; i < per_class; ++i) {
    d.add({g(rng) + separation / 2.0, g(rng)}, kLabelFacing);
    d.add({g(rng) - separation / 2.0, g(rng)}, kLabelNonFacing);
  }
  return d;
}

class OrientationKindTest : public ::testing::TestWithParam<ClassifierKind> {};

TEST_P(OrientationKindTest, EveryModelFamilyLearnsTheTask) {
  OrientationClassifierConfig cfg;
  cfg.kind = GetParam();
  cfg.forest.tree_count = 30;  // keep the test fast
  OrientationClassifier clf(cfg);
  clf.train(orientation_blobs(60, 1, 5.0));
  const auto test = orientation_blobs(30, 2, 5.0);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    if (clf.predict(test.features[i]) == test.labels[i]) ++hits;
  }
  EXPECT_GE(static_cast<double>(hits) / static_cast<double>(test.size()), 0.92)
      << classifier_kind_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, OrientationKindTest,
                         ::testing::Values(ClassifierKind::kSvm,
                                           ClassifierKind::kRandomForest,
                                           ClassifierKind::kDecisionTree,
                                           ClassifierKind::kKnn));

TEST(OrientationClassifier, IsFacingMatchesPredict) {
  OrientationClassifier clf;
  clf.train(orientation_blobs(40, 3));
  EXPECT_TRUE(clf.is_facing({3.0, 0.0}));
  EXPECT_FALSE(clf.is_facing({-3.0, 0.0}));
}

TEST(OrientationClassifier, ScoreOrdersByConfidence) {
  OrientationClassifier clf;
  clf.train(orientation_blobs(40, 4));
  EXPECT_GT(clf.score({3.0, 0.0}), clf.score({0.3, 0.0}));
  EXPECT_GT(clf.score({0.3, 0.0}), clf.score({-3.0, 0.0}));
}

TEST(OrientationClassifier, ErrorsBeforeTraining) {
  OrientationClassifier clf;
  EXPECT_FALSE(clf.trained());
  EXPECT_THROW((void)clf.predict({1.0, 2.0}), std::logic_error);
  EXPECT_THROW(clf.train(ml::Dataset{}), std::invalid_argument);
}

TEST(OrientationClassifier, InternalScalingHandlesWildFeatureRanges) {
  // One dimension in [0, 1e6], another in [0, 1e-6]: without standardization
  // the SVM RBF would collapse; with it, the task stays solvable.
  std::mt19937 rng(5);
  std::normal_distribution<double> g(0.0, 1.0);
  ml::Dataset d;
  for (int i = 0; i < 60; ++i) {
    d.add({1e6 + 1e5 * g(rng), 1e-6 * g(rng)}, kLabelFacing);
    d.add({-1e6 + 1e5 * g(rng), 1e-6 * g(rng)}, kLabelNonFacing);
  }
  OrientationClassifier clf;
  clf.train(d);
  EXPECT_EQ(clf.predict({1e6, 0.0}), kLabelFacing);
  EXPECT_EQ(clf.predict({-1e6, 0.0}), kLabelNonFacing);
}

// --- Liveness detector ---

ml::Dataset liveness_blobs(std::size_t per_class, unsigned seed, double shift = 0.0) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> g(0.0, 1.0);
  ml::Dataset d;
  for (std::size_t i = 0; i < per_class; ++i) {
    d.add({g(rng) + 2.0 + shift, g(rng) + shift}, kLabelLive);
    d.add({g(rng) - 2.0 + shift, g(rng) + shift}, kLabelReplay);
  }
  return d;
}

TEST(LivenessDetector, LearnsAndScores) {
  LivenessDetector det;
  det.train(liveness_blobs(80, 1));
  EXPECT_TRUE(det.trained());
  EXPECT_GT(det.score({2.5, 0.0}), 0.9);
  EXPECT_LT(det.score({-2.5, 0.0}), 0.1);
  EXPECT_TRUE(det.is_live({2.5, 0.0}));
  EXPECT_FALSE(det.is_live({-2.5, 0.0}));
}

TEST(LivenessDetector, ThresholdIsConfigurable) {
  LivenessDetectorConfig cfg;
  cfg.threshold = 0.99;
  LivenessDetector strict(cfg);
  strict.train(liveness_blobs(80, 2));
  // A mild positive that passes at 0.5 can fail at 0.99.
  const double s = strict.score({0.4, 0.0});
  EXPECT_EQ(strict.is_live({0.4, 0.0}), s >= 0.99);
}

TEST(LivenessDetector, IncrementalUpdateImprovesNewDomain) {
  LivenessDetector det;
  det.train(liveness_blobs(80, 3));
  // New domain: same task, features shifted by +6 in both dims.
  const auto shifted = liveness_blobs(60, 4, 6.0);
  std::size_t before = 0;
  for (std::size_t i = 0; i < shifted.size(); ++i) {
    if ((det.score(shifted.features[i]) >= 0.5 ? kLabelLive : kLabelReplay) ==
        shifted.labels[i]) {
      ++before;
    }
  }
  det.incremental_update(shifted, 30);
  std::size_t after = 0;
  for (std::size_t i = 0; i < shifted.size(); ++i) {
    if ((det.score(shifted.features[i]) >= 0.5 ? kLabelLive : kLabelReplay) ==
        shifted.labels[i]) {
      ++after;
    }
  }
  EXPECT_GE(after, before);
  EXPECT_GE(static_cast<double>(after) / static_cast<double>(shifted.size()), 0.9);
}

TEST(OrientationClassifier, SaveLoadRoundTrip) {
  OrientationClassifier clf;
  clf.train(orientation_blobs(40, 6));
  std::stringstream stream;
  clf.save(stream);
  const auto loaded = OrientationClassifier::load(stream);
  const auto test = orientation_blobs(20, 7);
  for (const auto& row : test.features) {
    ASSERT_EQ(loaded.predict(row), clf.predict(row));
    ASSERT_DOUBLE_EQ(loaded.score(row), clf.score(row));
  }
}

class OrientationSaveLoadTest : public ::testing::TestWithParam<ClassifierKind> {};

TEST_P(OrientationSaveLoadTest, EveryBackendRoundTrips) {
  OrientationClassifierConfig cfg;
  cfg.kind = GetParam();
  cfg.forest.tree_count = 20;
  OrientationClassifier clf(cfg);
  clf.train(orientation_blobs(30, 8, 5.0));
  std::stringstream stream;
  clf.save(stream);
  const auto loaded = OrientationClassifier::load(stream);
  EXPECT_EQ(loaded.config().kind, GetParam());
  const auto test = orientation_blobs(15, 9, 5.0);
  for (const auto& row : test.features) {
    ASSERT_EQ(loaded.predict(row), clf.predict(row))
        << classifier_kind_name(GetParam());
    ASSERT_DOUBLE_EQ(loaded.score(row), clf.score(row));
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, OrientationSaveLoadTest,
                         ::testing::Values(ClassifierKind::kSvm,
                                           ClassifierKind::kRandomForest,
                                           ClassifierKind::kDecisionTree,
                                           ClassifierKind::kKnn));

TEST(OrientationClassifier, SaveRejectsUntrained) {
  OrientationClassifier clf;
  std::stringstream stream;
  EXPECT_THROW(clf.save(stream), std::logic_error);
}

TEST(LivenessDetector, SaveLoadRoundTrip) {
  LivenessDetectorConfig cfg;
  cfg.threshold = 0.6;
  LivenessDetector det(cfg);
  det.train(liveness_blobs(60, 9));
  std::stringstream stream;
  det.save(stream);
  const auto loaded = LivenessDetector::load(stream);
  EXPECT_DOUBLE_EQ(loaded.config().threshold, 0.6);
  const auto test = liveness_blobs(20, 10);
  for (const auto& row : test.features) {
    ASSERT_DOUBLE_EQ(loaded.score(row), det.score(row));
    ASSERT_EQ(loaded.is_live(row), det.is_live(row));
  }
}

TEST(LivenessDetector, LoadedDetectorSupportsIncrementalUpdate) {
  LivenessDetector det;
  det.train(liveness_blobs(60, 11));
  std::stringstream stream;
  det.save(stream);
  auto loaded = LivenessDetector::load(stream);
  EXPECT_NO_THROW(loaded.incremental_update(liveness_blobs(20, 12), 5));
}

TEST(LivenessDetector, ErrorsOnMisuse) {
  LivenessDetector det;
  EXPECT_THROW((void)det.score({1.0}), std::logic_error);
  EXPECT_THROW(det.incremental_update(liveness_blobs(5, 1), 5), std::logic_error);
  EXPECT_THROW(det.train(ml::Dataset{}), std::invalid_argument);
}

}  // namespace
}  // namespace headtalk::core
