// Session state machine: handshake ordering, limit enforcement, ring
// accumulation, and per-connection HeadTalk session tracking — all without
// a socket in sight.
#include "serve/session.h"

#include <gtest/gtest.h>

#include "serve/protocol.h"
#include "serve_test_util.h"

using namespace headtalk;
using namespace headtalk::serve;

namespace {

const core::HeadTalkPipeline& test_pipeline() {
  static const core::HeadTalkPipeline pipeline = serve_test::make_test_pipeline();
  return pipeline;
}

void feed(Session& session, const std::vector<std::uint8_t>& bytes, bool expect_alive) {
  EXPECT_EQ(session.on_bytes(bytes.data(), bytes.size()), expect_alive);
}

std::vector<Frame> drain(Session& session) {
  const auto bytes = session.take_output();
  FrameReader reader;
  reader.feed(bytes.data(), bytes.size());
  std::vector<Frame> frames;
  while (auto frame = reader.next()) frames.push_back(*std::move(frame));
  return frames;
}

SessionLimits normal_mode_limits() {
  SessionLimits limits;
  limits.mode = core::VaMode::kNormal;  // skips DSP: machinery-only tests
  return limits;
}

TEST(ServeSampleRing, AccumulatesAndDropsOldest) {
  SampleRing ring;
  ring.reset(2, 4, 48000.0);
  EXPECT_EQ(ring.frames(), 0u);

  // Frames are numbered through channel 0 so ordering is observable.
  const auto frame_values = [](float first, std::size_t count) {
    std::vector<float> interleaved;
    for (std::size_t f = 0; f < count; ++f) {
      interleaved.push_back(first + static_cast<float>(f));  // channel 0
      interleaved.push_back(0.0f);                           // channel 1
    }
    return interleaved;
  };

  ring.append(frame_values(0.0f, 3));
  EXPECT_EQ(ring.frames(), 3u);
  EXPECT_EQ(ring.dropped_frames(), 0u);

  ring.append(frame_values(3.0f, 3));  // frames 3,4,5: drops frames 0,1
  EXPECT_EQ(ring.frames(), 4u);
  EXPECT_EQ(ring.dropped_frames(), 2u);

  const audio::MultiBuffer capture = ring.snapshot();
  ASSERT_EQ(capture.frames(), 4u);
  EXPECT_DOUBLE_EQ(capture.channel(0)[0], 2.0);  // oldest surviving frame
  EXPECT_DOUBLE_EQ(capture.channel(0)[3], 5.0);
  EXPECT_DOUBLE_EQ(capture.sample_rate(), 48000.0);

  ring.clear();
  EXPECT_EQ(ring.frames(), 0u);
  EXPECT_EQ(ring.dropped_frames(), 0u);
  EXPECT_EQ(ring.capacity_frames(), 4u);
}

TEST(ServeSampleRing, OversizedAppendKeepsTail) {
  SampleRing ring;
  ring.reset(1, 3, 48000.0);
  std::vector<float> interleaved{1, 2, 3, 4, 5};
  ring.append(interleaved);
  EXPECT_EQ(ring.frames(), 3u);
  EXPECT_EQ(ring.dropped_frames(), 2u);
  const auto capture = ring.snapshot();
  EXPECT_DOUBLE_EQ(capture.channel(0)[0], 3.0);
  EXPECT_DOUBLE_EQ(capture.channel(0)[2], 5.0);
}

TEST(ServeSampleRing, OversizedAppendAfterWrapAroundKeepsNewestCapacityFrames) {
  // Regression: an oversized append landing on a ring whose head has
  // already wrapped must still leave exactly the newest `capacity` frames,
  // and dropped_frames() must count both the skipped chunk head and every
  // overwritten resident frame.
  SampleRing ring;
  ring.reset(1, 3, 48000.0);
  ring.append(std::vector<float>{1, 2});
  ring.append(std::vector<float>{3, 4});  // wraps: keeps 2,3,4 and drops 1
  EXPECT_EQ(ring.frames(), 3u);
  EXPECT_EQ(ring.dropped_frames(), 1u);

  ring.append(std::vector<float>{5, 6, 7, 8, 9});  // 5 frames into capacity 3
  EXPECT_EQ(ring.frames(), 3u);
  // 1 from before + 2 skipped at the chunk head (5,6) + 3 overwritten (2,3,4).
  EXPECT_EQ(ring.dropped_frames(), 6u);
  const auto capture = ring.snapshot();
  ASSERT_EQ(capture.frames(), 3u);
  EXPECT_DOUBLE_EQ(capture.channel(0)[0], 7.0);
  EXPECT_DOUBLE_EQ(capture.channel(0)[1], 8.0);
  EXPECT_DOUBLE_EQ(capture.channel(0)[2], 9.0);
}

TEST(ServeSession, HelloHandshakeAdvertisesLimits) {
  Session session(test_pipeline(), normal_mode_limits());
  EXPECT_FALSE(session.hello_done());
  feed(session, encode_hello(Hello{}), true);
  EXPECT_TRUE(session.hello_done());

  const auto frames = drain(session);
  ASSERT_EQ(frames.size(), 1u);
  const HelloOk ok = parse_hello_ok(frames[0]);
  EXPECT_EQ(ok.protocol_version, kProtocolVersion);
  EXPECT_EQ(ok.max_chunk_frames, session.limits().max_chunk_frames);
  EXPECT_EQ(ok.max_utterance_frames, session.limits().max_utterance_frames);
}

TEST(ServeSession, ChunkBeforeHelloFails) {
  Session session(test_pipeline(), normal_mode_limits());
  feed(session, encode_audio_chunk(std::vector<float>(16, 0.1f), 4), false);
  const auto frames = drain(session);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(parse_error(frames[0]).code, ErrorCode::kBadRequest);
  EXPECT_TRUE(session.finished());
}

TEST(ServeSession, UnsupportedVersionFails) {
  Session session(test_pipeline(), normal_mode_limits());
  Hello hello;
  hello.protocol_version = 42;
  feed(session, encode_hello(hello), false);
  const auto frames = drain(session);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(parse_error(frames[0]).code, ErrorCode::kUnsupportedVersion);
}

TEST(ServeSession, TooManyChannelsFails) {
  SessionLimits limits = normal_mode_limits();
  limits.max_channels = 4;
  Session session(test_pipeline(), limits);
  Hello hello;
  hello.channels = 8;
  feed(session, encode_hello(hello), false);
  const auto frames = drain(session);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(parse_error(frames[0]).code, ErrorCode::kTooLarge);
}

TEST(ServeSession, OversizedChunkFails) {
  SessionLimits limits = normal_mode_limits();
  limits.max_chunk_frames = 8;
  Session session(test_pipeline(), limits);
  feed(session, encode_hello(Hello{}), true);
  (void)drain(session);
  feed(session, encode_audio_chunk(std::vector<float>(16 * 4, 0.1f), 4), false);
  const auto frames = drain(session);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(parse_error(frames[0]).code, ErrorCode::kTooLarge);
}

TEST(ServeSession, EndOfUtteranceWithoutAudioFails) {
  Session session(test_pipeline(), normal_mode_limits());
  feed(session, encode_hello(Hello{}), true);
  (void)drain(session);
  feed(session, encode_end_of_utterance(false), false);
  const auto frames = drain(session);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(parse_error(frames[0]).code, ErrorCode::kBadRequest);
}

TEST(ServeSession, ServerOnlyFrameFromClientFails) {
  Session session(test_pipeline(), normal_mode_limits());
  feed(session, encode_hello(Hello{}), true);
  (void)drain(session);
  feed(session, encode_busy(), false);
  const auto frames = drain(session);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(parse_error(frames[0]).code, ErrorCode::kBadRequest);
}

TEST(ServeSession, MalformedBytesFail) {
  Session session(test_pipeline(), normal_mode_limits());
  const std::vector<std::uint8_t> garbage(16, 0xee);
  EXPECT_FALSE(session.on_bytes(garbage.data(), garbage.size()));
  const auto frames = drain(session);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(parse_error(frames[0]).code, ErrorCode::kBadRequest);
}

TEST(ServeSession, ScoresUtterancesBackToBack) {
  Session session(test_pipeline(), normal_mode_limits());
  std::vector<std::uint8_t> stream = encode_hello(Hello{});
  const auto chunk = encode_audio_chunk(std::vector<float>(480 * 4, 0.1f), 4);
  const auto end = encode_end_of_utterance(false);
  for (int u = 0; u < 3; ++u) {
    stream.insert(stream.end(), chunk.begin(), chunk.end());
    stream.insert(stream.end(), end.begin(), end.end());
  }
  // Everything in one write: frames must be processed in order.
  feed(session, stream, true);
  const auto frames = drain(session);
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_EQ(frames[0].type, FrameType::kHelloOk);
  for (int u = 1; u <= 3; ++u) {
    const DecisionFrame decision = parse_decision(frames[static_cast<std::size_t>(u)]);
    EXPECT_EQ(decision.decision,
              static_cast<std::uint8_t>(core::Decision::kAccepted));
  }
  EXPECT_EQ(session.decisions_sent(), 3u);
  EXPECT_FALSE(session.finished());
}

TEST(ServeSession, HeadTalkModeScoresRealCaptures) {
  // Full-DSP path: one real utterance through preprocess + both detectors.
  SessionLimits limits;  // default kHeadTalk
  Session session(test_pipeline(), limits);
  feed(session, encode_hello(Hello{}), true);
  (void)drain(session);

  const auto capture = serve_test::make_capture(4, 24000);
  std::vector<float> interleaved(capture.frames() * 4);
  for (std::size_t f = 0; f < capture.frames(); ++f) {
    for (std::size_t c = 0; c < 4; ++c) {
      interleaved[f * 4 + c] = static_cast<float>(capture.channel(c)[f]);
    }
  }
  feed(session, encode_audio_chunk(interleaved, 4), true);
  feed(session, encode_end_of_utterance(false), true);
  const auto frames = drain(session);
  ASSERT_EQ(frames.size(), 1u);
  const DecisionFrame decision = parse_decision(frames[0]);
  // The verdict depends on the synthetic models; the contract is that a
  // decision came back with the liveness stage populated.
  EXPECT_LE(decision.decision, 3);
  EXPECT_GE(decision.elapsed_seconds, 0.0);
  EXPECT_EQ(session.decisions_sent(), 1u);
}

}  // namespace
