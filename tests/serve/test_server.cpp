// End-to-end daemon tests over real Unix sockets: concurrent-client
// stress (every client gets exactly one well-formed DECISION), BUSY
// backpressure when the pending queue is full, graceful drain that still
// answers the in-flight utterance, and per-utterance deadline expiry.
#include "serve/server.h"

#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve_test_util.h"

using namespace headtalk;
using namespace headtalk::serve;

namespace {

const core::HeadTalkPipeline& test_pipeline() {
  static const core::HeadTalkPipeline pipeline = serve_test::make_test_pipeline();
  return pipeline;
}

std::filesystem::path test_socket_path(const std::string& tag) {
  return std::filesystem::temp_directory_path() /
         ("headtalk_test_" + std::to_string(::getpid()) + "_" + tag + ".sock");
}

ServerConfig normal_mode_config(const std::string& tag) {
  ServerConfig config;
  config.socket_path = test_socket_path(tag);
  config.session.mode = core::VaMode::kNormal;  // skip DSP: machinery tests
  config.request_deadline_ms = 60000;
  return config;
}

/// Polls `predicate` until it holds or ~5 s pass.
template <typename Predicate>
bool eventually(Predicate predicate) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return predicate();
}

TEST(ServeServer, StressManyConcurrentClientsOneDecisionEach) {
  constexpr unsigned kClients = 64;
  ServerConfig config = normal_mode_config("stress");
  config.max_pending = 2 * kClients;
  Server server(test_pipeline(), config);
  server.start();

  const auto capture = serve_test::make_capture(4, 1024);
  std::atomic<unsigned> decisions{0};
  std::vector<std::string> failures(kClients);
  {
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (unsigned i = 0; i < kClients; ++i) {
      threads.emplace_back([&, i] {
        try {
          auto client = BlockingClient::connect_unix(config.socket_path);
          (void)client.hello();
          const DecisionFrame decision = client.score(capture);
          // kNormal mode accepts everything without scoring.
          if (decision.decision != static_cast<std::uint8_t>(core::Decision::kAccepted)) {
            throw std::runtime_error("unexpected decision");
          }
          ++decisions;
          // No unsolicited frames follow the decision.
          EXPECT_THROW((void)client.read_frame(50), ClientError);
        } catch (const std::exception& error) {
          failures[i] = error.what();
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }

  for (unsigned i = 0; i < kClients; ++i) {
    EXPECT_EQ(failures[i], "") << "client " << i;
  }
  EXPECT_EQ(decisions.load(), kClients);
  server.stop();  // joins the workers, so the counters below are final
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.decisions, kClients);
  EXPECT_EQ(stats.connections_accepted, kClients);
  EXPECT_EQ(stats.busy_rejections, 0u);
}

TEST(ServeServer, BusyWhenPendingQueueFull) {
  ServerConfig config = normal_mode_config("busy");
  config.workers = 1;
  config.max_pending = 1;
  Server server(test_pipeline(), config);
  server.start();

  // A occupies the only worker (handshake done means the worker popped it).
  auto a = BlockingClient::connect_unix(config.socket_path);
  (void)a.hello();
  ASSERT_TRUE(eventually([&] { return server.stats().active_connections == 1; }));

  // B fills the single pending slot.
  auto b = BlockingClient::connect_unix(config.socket_path);
  ASSERT_TRUE(eventually([&] { return server.stats().connections_accepted == 2; }));

  // C overflows: the acceptor answers BUSY and closes without a worker.
  auto c = BlockingClient::connect_unix(config.socket_path);
  const Frame reply = c.read_frame(5000);
  EXPECT_EQ(reply.type, FrameType::kBusy);
  EXPECT_TRUE(eventually([&] { return server.stats().busy_rejections == 1; }));

  // Releasing A lets the worker serve B: overload was a fast reject for C
  // only, not a dropped or wedged B.
  a.close();
  (void)b.hello();
  const auto capture = serve_test::make_capture(4, 512);
  const DecisionFrame decision = b.score(capture);
  EXPECT_EQ(decision.decision, static_cast<std::uint8_t>(core::Decision::kAccepted));
  server.stop();
  EXPECT_EQ(server.stats().busy_rejections, 1u);
}

TEST(ServeServer, GracefulStopAnswersInFlightUtterance) {
  ServerConfig config = normal_mode_config("drain");
  Server server(test_pipeline(), config);
  server.start();

  auto client = BlockingClient::connect_unix(config.socket_path);
  (void)client.hello();
  const auto capture = serve_test::make_capture(4, 512);
  std::vector<float> interleaved(capture.frames() * 4);
  for (std::size_t f = 0; f < capture.frames(); ++f) {
    for (std::size_t c = 0; c < 4; ++c) {
      interleaved[f * 4 + c] = static_cast<float>(capture.channel(c)[f]);
    }
  }
  const auto chunk = encode_audio_chunk(interleaved, 4);
  client.send_bytes(chunk.data(), chunk.size());

  // Stop lands mid-utterance; the drain must still deliver this DECISION.
  server.request_stop();
  const auto end = encode_end_of_utterance(false);
  client.send_bytes(end.data(), end.size());
  const Frame reply = client.read_frame(10000);
  EXPECT_EQ(reply.type, FrameType::kDecision);
  const DecisionFrame decision = parse_decision(reply);
  EXPECT_EQ(decision.decision, static_cast<std::uint8_t>(core::Decision::kAccepted));

  server.stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.stats().decisions, 1u);
  // The socket file is gone; new connections are refused, not queued.
  EXPECT_FALSE(std::filesystem::exists(config.socket_path));
  EXPECT_THROW((void)BlockingClient::connect_unix(config.socket_path), ClientError);
}

TEST(ServeServer, DeadlineExpiryReturnsErrorAndCloses) {
  ServerConfig config = normal_mode_config("deadline");
  config.request_deadline_ms = 100;
  Server server(test_pipeline(), config);
  server.start();

  auto client = BlockingClient::connect_unix(config.socket_path);
  (void)client.hello();
  // Send nothing further: the utterance deadline expires on the server.
  const Frame reply = client.read_frame(5000);
  EXPECT_EQ(reply.type, FrameType::kError);
  EXPECT_EQ(parse_error(reply).code, ErrorCode::kDeadlineExceeded);
  // The server closes after the error; the next read sees EOF.
  EXPECT_THROW((void)client.read_frame(5000), ClientError);
  EXPECT_TRUE(eventually([&] { return server.stats().deadline_expirations == 1; }));
  server.stop();
}

TEST(ServeServer, MalformedBytesGetErrorFrame) {
  ServerConfig config = normal_mode_config("garbage");
  Server server(test_pipeline(), config);
  server.start();

  auto client = BlockingClient::connect_unix(config.socket_path);
  const std::vector<std::uint8_t> garbage(64, 0xee);
  client.send_bytes(garbage.data(), garbage.size());
  const Frame reply = client.read_frame(5000);
  EXPECT_EQ(reply.type, FrameType::kError);
  EXPECT_EQ(parse_error(reply).code, ErrorCode::kBadRequest);
  EXPECT_TRUE(eventually([&] { return server.stats().session_errors == 1; }));
  server.stop();
}

TEST(ServeServer, HeadTalkModeScoresConcurrently) {
  // Full-DSP scoring from several clients at once: exercises the shared
  // const pipeline under real concurrency (the TSan target for this file).
  constexpr unsigned kClients = 8;
  ServerConfig config;
  config.socket_path = test_socket_path("headtalk");
  config.request_deadline_ms = 120000;  // scoring on a loaded 1-CPU host
  Server server(test_pipeline(), config);
  server.start();

  const auto capture = serve_test::make_capture(4, 24000);
  std::vector<std::string> failures(kClients);
  {
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (unsigned i = 0; i < kClients; ++i) {
      threads.emplace_back([&, i] {
        try {
          auto client = BlockingClient::connect_unix(config.socket_path);
          (void)client.hello();
          const DecisionFrame decision = client.score(capture);
          if (decision.decision > 3) throw std::runtime_error("bad decision code");
        } catch (const std::exception& error) {
          failures[i] = error.what();
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }
  for (unsigned i = 0; i < kClients; ++i) {
    EXPECT_EQ(failures[i], "") << "client " << i;
  }
  server.stop();
  EXPECT_EQ(server.stats().decisions, kClients);
}

TEST(ServeServer, TcpLoopbackListenerServes) {
  ServerConfig config = normal_mode_config("tcp");
  config.tcp_port = 20000 + static_cast<int>(::getpid() % 20000);
  Server server(test_pipeline(), config);
  try {
    server.start();
  } catch (const std::runtime_error&) {
    GTEST_SKIP() << "port " << config.tcp_port << " unavailable";
  }

  auto client = BlockingClient::connect_tcp(config.tcp_port);
  (void)client.hello();
  const auto capture = serve_test::make_capture(4, 512);
  const DecisionFrame decision = client.score(capture);
  EXPECT_EQ(decision.decision, static_cast<std::uint8_t>(core::Decision::kAccepted));
  server.stop();
}

TEST(ServeServer, StopIsIdempotentAndRestartFails) {
  ServerConfig config = normal_mode_config("stop2");
  Server server(test_pipeline(), config);
  server.start();
  EXPECT_TRUE(server.running());
  server.stop();
  server.stop();  // second call is a no-op
  EXPECT_FALSE(server.running());
}

}  // namespace
